// Exploring the broadcast substrate itself: how the (1, m) index replication
// factor trades access latency against tuning time (Figure 2 and §2.1 of the
// paper), and what the sharing-based data filter does to both.
//
// Run:  ./build/examples/broadcast_tuning

#include <cstdio>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "onair/onair_knn.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

int main() {
  using namespace lbsq;

  const geom::Rect world{0.0, 0.0, 20.0, 20.0};
  Rng rng(5);
  std::vector<spatial::Poi> pois =
      spatial::GenerateUniformPois(&rng, world, 1500);
  const double density = 1500.0 / world.area();

  std::printf("(1, m) air-index organization, 1500 POIs, 5-NN queries:\n\n");
  std::printf("  m | cycle len | avg latency | avg tuning\n");
  for (int m : {1, 2, 4, 8, 16}) {
    broadcast::BroadcastParams params;
    params.m = m;
    const auto server_ptr =
        storage::SystemBuilder(world, params).BuildSystemFromPois(pois);
    const broadcast::BroadcastSystem& server = *server_ptr;
    RunningStat latency, tuning;
    Rng qrng(100 + static_cast<uint64_t>(m));
    for (int i = 0; i < 300; ++i) {
      const geom::Point q{qrng.Uniform(0.0, 20.0), qrng.Uniform(0.0, 20.0)};
      const int64_t now = static_cast<int64_t>(
          qrng.NextBelow(static_cast<uint64_t>(server.schedule().cycle_length())));
      const auto result = onair::OnAirKnn(server, q, 5, now);
      latency.Add(static_cast<double>(result.stats.access_latency));
      tuning.Add(static_cast<double>(result.stats.tuning_time));
    }
    std::printf("%3d | %9lld | %11.1f | %10.1f\n", m,
                static_cast<long long>(server.schedule().cycle_length()),
                latency.mean(), tuning.mean());
  }

  std::printf("\nsharing-based data filtering (partial peer knowledge, "
              "k = 10):\n\n");
  broadcast::BroadcastParams params;
  params.bucket_capacity = 4;  // finer packets make the filter visible
  const auto server_ptr =
      storage::SystemBuilder(world, params).BuildSystemFromPois(pois);
  const broadcast::BroadcastSystem& server = *server_ptr;
  core::EngineOptions filtered_options;
  filtered_options.sbnn.k = 10;
  filtered_options.sbnn.accept_approximate = false;
  filtered_options.sbnn.use_filtering = true;
  filtered_options.poi_density_override = density;
  core::EngineOptions plain_options = filtered_options;
  plain_options.sbnn.use_filtering = false;
  const core::QueryEngine filtered_engine(server, world, filtered_options);
  const core::QueryEngine plain_engine(server, world, plain_options);
  // One workspace per engine: 300 queries reuse the same scratch buffers.
  core::QueryWorkspace filtered_ws, plain_ws;
  core::QueryOutcome filtered_out, plain_out;
  RunningStat lat_filtered, lat_plain, buckets_filtered, buckets_plain;
  RunningStat skipped;
  Rng qrng(42);
  for (int i = 0; i < 300; ++i) {
    const geom::Point q{qrng.Uniform(2.0, 18.0), qrng.Uniform(2.0, 18.0)};
    const int64_t now = static_cast<int64_t>(qrng.NextBelow(
        static_cast<uint64_t>(server.schedule().cycle_length())));
    // One peer with a verified square large enough to fill the heap (so the
    // upper bound engages) but not to fully verify k = 10 (the boundary
    // distance stays below the 10-NN distance for most draws).
    core::VerifiedRegion vr;
    vr.region = geom::Rect::CenteredSquare(q, 0.9);
    for (const spatial::Poi& p : server.pois()) {
      if (vr.region.Contains(p.pos)) vr.pois.push_back(p);
    }
    const std::vector<core::PeerData> peers = {core::PeerData{{vr}}};
    core::QueryRequest request;
    request.kind = core::QueryKind::kKnn;
    request.position = q;
    request.slot = now;
    request.peers = peers;
    filtered_engine.Execute(request, filtered_ws, &filtered_out);
    plain_engine.Execute(request, plain_ws, &plain_out);
    const core::SbnnOutcome& filtered = *filtered_out.knn;
    const core::SbnnOutcome& plain = *plain_out.knn;
    if (filtered.resolved_by == core::ResolvedBy::kBroadcast) {
      lat_filtered.Add(static_cast<double>(filtered.stats.access_latency));
      buckets_filtered.Add(static_cast<double>(filtered.stats.buckets_read));
      skipped.Add(static_cast<double>(filtered.buckets_skipped));
    }
    if (plain.resolved_by == core::ResolvedBy::kBroadcast) {
      lat_plain.Add(static_cast<double>(plain.stats.access_latency));
      buckets_plain.Add(static_cast<double>(plain.stats.buckets_read));
    }
  }
  std::printf("  with filtering: avg latency %.1f slots, %.1f buckets "
              "(%.1f excused by the lower bound)\n",
              lat_filtered.mean(), buckets_filtered.mean(), skipped.mean());
  std::printf("  without       : avg latency %.1f slots, %.1f buckets\n",
              lat_plain.mean(), buckets_plain.mean());
  return 0;
}
