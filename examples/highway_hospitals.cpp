// The paper's motivating scenario: a motorist on a highway asks "find the
// top-3 nearest hospitals". An exact on-air answer can take most of a
// broadcast cycle to assemble — by which time a fast car has moved on — so
// the motorist prefers a prompt answer verified (or probabilistically
// scored) from the caches of nearby vehicles.
//
// This example drives a vehicle down a highway through a city, issuing a
// 3-NN hospital query every minute, with a handful of other vehicles around
// whose caches fill as they query too. It prints, per query, how the answer
// was obtained, what it cost, and how far the motorist would have driven at
// highway speed while a pure on-air query was still waiting for packets.
//
// Run:  ./build/examples/highway_hospitals

#include <cstdio>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "core/peer_cache.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "onair/onair_knn.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

int main() {
  using namespace lbsq;

  const geom::Rect world{0.0, 0.0, 20.0, 20.0};
  Rng rng(7);

  // ~60 hospitals in a 20 x 20 mile metro area.
  std::vector<spatial::Poi> hospitals =
      spatial::GenerateUniformPois(&rng, world, 60);
  const double density = 60.0 / world.area();

  broadcast::BroadcastParams params;
  params.bucket_capacity = 4;  // hospital records are big
  const auto server_ptr =
      storage::SystemBuilder(world, params).BuildSystemFromPois(hospitals);
  const broadcast::BroadcastSystem& server = *server_ptr;
  const double slots_per_minute = 50.0 * 60.0;

  // Our motorist drives east along y = 10 at 60 mph; 8 companion vehicles
  // drive nearby lanes with a small offset, querying too (and caching).
  const double speed_mi_per_min = 1.0;
  std::vector<core::PeerCache> caches(8, core::PeerCache(50, 8));
  std::vector<double> lane_offset;
  for (int i = 0; i < 8; ++i) lane_offset.push_back(rng.Uniform(-0.05, 0.05));

  std::printf("minute | resolved by          | latency (slots) | baseline "
              "latency | miles driven while waiting (baseline)\n");
  core::EngineOptions options;
  options.sbnn.k = 3;
  options.sbnn.min_correctness = 0.5;
  options.poi_density_override = density;
  const core::QueryEngine engine(server, world, options);
  // One workspace for the whole drive: every query reuses its scratch.
  core::QueryWorkspace workspace;
  core::QueryOutcome executed;

  int peer_hits = 0;
  for (int minute = 1; minute <= 18; ++minute) {
    const double t = static_cast<double>(minute);
    const geom::Point me{1.0 + speed_mi_per_min * t, 10.0};
    const int64_t slot = static_cast<int64_t>(t * slots_per_minute);

    // Companions in a loose convoy. Each minute a companion occasionally
    // runs its own query (paying the broadcast cost) and caches the result;
    // the convoy's shared knowledge builds up over the drive.
    std::vector<core::PeerData> peers;
    for (size_t i = 0; i < caches.size(); ++i) {
      const geom::Point pos{me.x + lane_offset[i] * 10.0,
                            10.0 + lane_offset[i]};
      if (rng.NextBool(0.3)) {
        core::QueryRequest refresh;
        refresh.kind = core::QueryKind::kKnn;
        refresh.position = pos;
        refresh.slot = slot - 100;
        engine.Execute(refresh, workspace, &executed);
        caches[i].Insert(executed.knn->cacheable, pos, pos, {1.0, 0.0});
      }
      const core::PeerData data = caches[i].Share();
      if (!data.empty()) peers.push_back(data);
    }

    core::QueryRequest request;
    request.kind = core::QueryKind::kKnn;
    request.position = me;
    request.slot = slot;
    request.peers = peers;
    engine.Execute(request, workspace, &executed);
    const core::SbnnOutcome& outcome = *executed.knn;
    const onair::OnAirKnnResult baseline =
        onair::OnAirKnn(server, me, 3, slot);

    const char* how = "broadcast            ";
    if (outcome.resolved_by == core::ResolvedBy::kPeersVerified) {
      how = "peers (verified)     ";
      ++peer_hits;
    } else if (outcome.resolved_by == core::ResolvedBy::kPeersApproximate) {
      how = "peers (approximate)  ";
      ++peer_hits;
    }
    const double baseline_minutes =
        static_cast<double>(baseline.stats.access_latency) / slots_per_minute;
    std::printf("%6d | %s | %15lld | %16lld | %.2f\n", minute, how,
                static_cast<long long>(outcome.stats.access_latency),
                static_cast<long long>(baseline.stats.access_latency),
                baseline_minutes * speed_mi_per_min);
  }
  std::printf("\n%d of 18 queries answered without touching the broadcast "
              "channel.\n", peer_hits);
  return 0;
}
