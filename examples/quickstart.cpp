// Quickstart: the 5-minute tour of the lbsq library.
//
// Builds a broadcast channel over a synthetic POI set, lets one mobile host
// ask a neighboring peer for cached data, and answers a 3-NN query three
// ways: from the peers (SBNN), from the broadcast channel (on-air baseline),
// and from a brute-force oracle, printing what each costs.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "broadcast/system.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "onair/onair_knn.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

int main() {
  using namespace lbsq;

  // 1) A 10 x 10 mile world with ~200 gas stations.
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  Rng rng(2024);
  std::vector<spatial::Poi> pois =
      spatial::GenerateUniformPois(&rng, world, 200);
  const double poi_density = 200.0 / world.area();

  // 2) The wireless information server: Hilbert-ordered data buckets with a
  //    (1, m) air index, broadcast cyclically.
  broadcast::BroadcastParams params;  // defaults are sensible
  const auto server_ptr =
      storage::SystemBuilder(world, params).BuildSystemFromPois(pois);
  const broadcast::BroadcastSystem& server = *server_ptr;
  std::printf("broadcast cycle: %lld data buckets + %d x %lld index buckets\n",
              static_cast<long long>(server.buckets().size()),
              server.schedule().m(),
              static_cast<long long>(server.schedule().index_buckets()));

  // 3) A peer that recently solved a query near us shares its verified
  //    region: an MBR within which its cache provably matches the server.
  const geom::Point me{5.0, 5.0};
  core::VerifiedRegion peer_knowledge;
  peer_knowledge.region = geom::Rect::CenteredSquare({5.2, 4.9}, 1.6);
  for (const spatial::Poi& p : server.pois()) {
    if (peer_knowledge.region.Contains(p.pos)) {
      peer_knowledge.pois.push_back(p);
    }
  }
  const std::vector<core::PeerData> peers = {
      core::PeerData{{peer_knowledge}}};

  // 4) SBNN through the query engine: verify the peer's candidates with
  //    Lemma 3.1 before trusting them. Fully verified answers cost zero
  //    broadcast access.
  core::EngineOptions options;
  options.sbnn.k = 3;
  options.poi_density_override = poi_density;
  const core::QueryEngine engine(server, world, options);
  core::QueryRequest request;
  request.kind = core::QueryKind::kKnn;
  request.position = me;
  request.peers = peers;
  const core::QueryOutcome outcome = engine.Execute(request);
  const core::SbnnOutcome& shared = *outcome.knn;
  const char* how =
      shared.resolved_by == core::ResolvedBy::kPeersVerified
          ? "peers (verified)"
          : shared.resolved_by == core::ResolvedBy::kPeersApproximate
                ? "peers (approximate)"
                : "broadcast fallback";
  std::printf("\nSBNN resolved by %s, latency %lld slots:\n", how,
              static_cast<long long>(shared.stats.access_latency));
  for (const auto& n : shared.neighbors) {
    std::printf("  poi %lld at (%.2f, %.2f), %.3f miles\n",
                static_cast<long long>(n.poi.id), n.poi.pos.x, n.poi.pos.y,
                n.distance);
  }

  // 5) The same query on the pure on-air baseline, for comparison.
  const onair::OnAirKnnResult onair = onair::OnAirKnn(server, me, 3, 0);
  std::printf("\non-air baseline: latency %lld slots, tuning %lld slots, "
              "%lld buckets\n",
              static_cast<long long>(onair.stats.access_latency),
              static_cast<long long>(onair.stats.tuning_time),
              static_cast<long long>(onair.stats.buckets_read));

  // 6) Both must agree with the oracle.
  const auto truth = spatial::BruteForceKnn(server.pois(), me, 3);
  bool agree = truth.size() == shared.neighbors.size();
  for (size_t i = 0; agree && i < truth.size(); ++i) {
    agree = truth[i].poi.id == shared.neighbors[i].poi.id &&
            truth[i].poi.id == onair.neighbors[i].poi.id;
  }
  std::printf("\nanswers match the brute-force oracle: %s\n",
              agree ? "yes" : "NO (bug!)");
  return agree ? 0 : 1;
}
