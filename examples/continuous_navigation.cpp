// Continuous navigation: "keep showing my 3 nearest charging stations" while
// driving across town. The ContinuousKnn driver re-verifies each position
// update against the car's own cache first (Lemma 3.1 with itself as the
// only peer); thanks to prefetching, a single broadcast refresh buys many
// miles of free updates, and nearby vehicles' caches absorb most of the
// remaining refreshes.
//
// Run:  ./build/examples/continuous_navigation

#include <cstdio>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "core/continuous_knn.h"
#include "core/query_engine.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

int main() {
  using namespace lbsq;

  const geom::Rect world{0.0, 0.0, 20.0, 20.0};
  Rng rng(17);
  std::vector<spatial::Poi> stations =
      spatial::GenerateUniformPois(&rng, world, 120);
  const double density = 120.0 / world.area();
  const auto server_ptr =
      storage::SystemBuilder(world, {}).BuildSystemFromPois(stations);
  const broadcast::BroadcastSystem& server = *server_ptr;

  core::EngineOptions options;
  options.sbnn.k = 3;
  options.sbnn.accept_approximate = false;
  options.sbnn.prefetch_radius_factor = 2.0;  // headroom around refreshes
  options.poi_density_override = density;
  const core::QueryEngine engine(server, world, options);

  // One companion vehicle a lane over shares a corridor of knowledge.
  core::VerifiedRegion corridor;
  corridor.region = geom::Rect{8.0, 7.0, 20.0, 13.0};
  for (const auto& p : server.pois()) {
    if (corridor.region.Contains(p.pos)) corridor.pois.push_back(p);
  }
  const std::vector<core::PeerData> peers = {core::PeerData{{corridor}}};

  core::ContinuousKnn navigator(engine);
  core::PeerCache cache(50);

  std::printf("mile | source          | nearest station (miles away)\n");
  int64_t slot = 0;
  int refreshes = 0;
  for (double x = 1.0; x <= 19.0; x += 0.5) {
    const geom::Point pos{x, 10.0};
    const auto update = navigator.Tick(pos, &cache, peers, slot);
    slot += update.stats.access_latency + 25;
    const char* source = update.from_own_cache ? "own cache (free)"
                         : update.resolved_by ==
                                 core::ResolvedBy::kPeersVerified
                             ? "peer verified   "
                             : "broadcast       ";
    if (!update.from_own_cache) ++refreshes;
    std::printf("%4.1f | %s | #%lld at %.2f\n", x, source,
                static_cast<long long>(update.neighbors[0].poi.id),
                update.neighbors[0].distance);
  }
  std::printf("\n%lld of %lld updates were free (own cache); %d needed a "
              "refresh.\n",
              static_cast<long long>(navigator.own_cache_hits()),
              static_cast<long long>(navigator.ticks()), refreshes);
  return 0;
}
