// Window queries in a dense city: "show every restaurant in the 6 blocks
// around the convention center". Restaurants cluster downtown, so we use the
// clustered generator; pedestrians nearby ran similar searches minutes ago
// and share their verified windows.
//
// The example demonstrates the three SBWQ outcomes:
//   1. the window lies inside the merged verified region -> answered free;
//   2. partial coverage -> the residual windows w' shrink the on-air range;
//   3. cold caches -> the full on-air window query runs.
//
// Run:  ./build/examples/city_window_search

#include <cstdio>
#include <utility>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "onair/onair_window.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

namespace {

// Pretty-prints one SBWQ outcome against the always-on-air baseline.
void Report(const char* label, const lbsq::core::SbwqOutcome& outcome,
            const lbsq::onair::OnAirWindowResult& baseline) {
  std::printf("%-28s: %2zu restaurants, %s, residual %.0f%%, "
              "latency %4lld vs baseline %4lld slots (buckets %lld vs %lld)\n",
              label, outcome.pois.size(),
              outcome.resolved_by_peers ? "from peers    " : "from broadcast",
              outcome.residual_fraction * 100.0,
              static_cast<long long>(outcome.stats.access_latency),
              static_cast<long long>(baseline.stats.access_latency),
              static_cast<long long>(outcome.stats.buckets_read),
              static_cast<long long>(baseline.stats.buckets_read));
}

}  // namespace

int main() {
  using namespace lbsq;

  const geom::Rect city{0.0, 0.0, 8.0, 8.0};
  Rng rng(99);
  // Restaurants cluster around 12 downtown blocks.
  std::vector<spatial::Poi> restaurants = spatial::GenerateClusteredPois(
      &rng, city, /*num_clusters=*/12, /*mean_per_cluster=*/25.0,
      /*spread=*/0.35);
  std::printf("city has %zu restaurants in 12 clusters\n\n",
              restaurants.size());

  broadcast::BroadcastParams params;
  params.hilbert_order = 6;
  const auto server_ptr =
      storage::SystemBuilder(city, params).BuildSystemFromPois(restaurants);
  const broadcast::BroadcastSystem& server = *server_ptr;

  // Three pedestrians around the convention center (4, 4) searched recently
  // and hold verified windows.
  auto verified = [&server](geom::Rect r) {
    core::VerifiedRegion vr;
    vr.region = r;
    for (const spatial::Poi& p : server.pois()) {
      if (r.Contains(p.pos)) vr.pois.push_back(p);
    }
    return core::PeerData{{vr}};
  };
  const std::vector<core::PeerData> peers = {
      verified(geom::Rect{3.0, 3.0, 5.0, 5.0}),
      verified(geom::Rect{4.5, 3.5, 6.0, 5.5}),
      verified(geom::Rect{2.5, 4.5, 4.5, 6.5}),
  };

  const core::QueryEngine engine(server, city, {});
  auto sbwq = [&engine, &peers](const geom::Rect& window) {
    core::QueryRequest request;
    request.kind = core::QueryKind::kWindow;
    request.window = window;
    request.peers = peers;
    core::QueryOutcome outcome = engine.Execute(request);
    return std::move(*outcome.window);
  };

  // Case 1: the query window is inside the pedestrians' joint knowledge.
  const geom::Rect covered{3.2, 3.8, 4.8, 5.2};
  Report("window fully covered",
         sbwq(covered),
         onair::OnAirWindow(server, covered, 0));

  // Case 2: the window pokes out of the verified area on the east side.
  const geom::Rect partial{3.5, 3.5, 6.8, 5.0};
  Report("window partially covered",
         sbwq(partial),
         onair::OnAirWindow(server, partial, 0));

  // Case 3: nobody nearby knows the waterfront.
  const geom::Rect cold{0.5, 6.5, 2.5, 7.8};
  Report("cold window (no coverage)",
         sbwq(cold),
         onair::OnAirWindow(server, cold, 0));

  // The partition refinement alone (no sharing) vs single span, for scale.
  const auto span = onair::OnAirWindow(server, partial, 0,
                                       onair::WindowRetrieval::kSingleSpan);
  const auto ranges = onair::OnAirWindow(
      server, partial, 0, onair::WindowRetrieval::kPartitionedRanges);
  std::printf("\npartitioned retrieval downloads %lld buckets vs %lld for "
              "the single span (same exact answer: %s)\n",
              static_cast<long long>(ranges.stats.buckets_read),
              static_cast<long long>(span.stats.buckets_read),
              ranges.pois == span.pois ? "yes" : "NO");
  return 0;
}
