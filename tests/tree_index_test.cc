#include "broadcast/tree_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "broadcast/system.h"
#include "common/rng.h"
#include "onair/onair_knn.h"
#include "onair/onair_window.h"
#include "spatial/generators.h"

namespace lbsq::broadcast {
namespace {

std::vector<AirIndex::Entry> MakeEntries(int n, uint64_t step = 3) {
  std::vector<AirIndex::Entry> entries;
  for (int i = 0; i < n; ++i) {
    entries.push_back(
        AirIndex::Entry{static_cast<uint64_t>(i) * step, i / 8});
  }
  return entries;
}

TEST(TreeAirIndexTest, EmptyDirectory) {
  TreeAirIndex tree({}, 8);
  EXPECT_EQ(tree.SizeInBuckets(), 1);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.ReadCostForRanges({{0, 100}}), 1);
}

TEST(TreeAirIndexTest, SingleLeaf) {
  TreeAirIndex tree(MakeEntries(5), 8);
  EXPECT_EQ(tree.SizeInBuckets(), 1);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.IndexBucketsForSpan(0, 100), (std::vector<int64_t>{0}));
}

TEST(TreeAirIndexTest, HeightGrowsLogarithmically) {
  EXPECT_EQ(TreeAirIndex(MakeEntries(8), 8).height(), 1);
  EXPECT_EQ(TreeAirIndex(MakeEntries(9), 8).height(), 2);
  EXPECT_EQ(TreeAirIndex(MakeEntries(64), 8).height(), 2);
  EXPECT_EQ(TreeAirIndex(MakeEntries(65), 8).height(), 3);
  EXPECT_EQ(TreeAirIndex(MakeEntries(512), 8).height(), 3);
}

TEST(TreeAirIndexTest, PointLookupCostsOnePathAndRootIsFirst) {
  TreeAirIndex tree(MakeEntries(512), 8);  // height 3
  for (uint64_t key : {0ull, 511ull * 3, 300ull}) {
    const auto path = tree.IndexBucketsForSpan(key, key);
    EXPECT_EQ(path.size(), 3u) << key;
    EXPECT_EQ(path.front(), 0);  // root is broadcast first
    // BFS order: each path node's offset increases with depth.
    EXPECT_TRUE(std::is_sorted(path.begin(), path.end()));
  }
}

TEST(TreeAirIndexTest, MissCostsRootOnly) {
  TreeAirIndex tree(MakeEntries(64, /*step=*/10), 8);
  // Keys are multiples of 10; span (1..9) between entries still descends to
  // the leaf that could contain it or prunes — cost must be small and >= 1.
  const int64_t cost = tree.ReadCostForRanges({{1000000, 2000000}});
  EXPECT_EQ(cost, 1);  // outside the root's range entirely
}

TEST(TreeAirIndexTest, SpanCostsSharedPrefixOnce) {
  TreeAirIndex tree(MakeEntries(512), 8);
  const auto single = tree.IndexBucketsForSpan(0, 0);
  const auto wide = tree.IndexBucketsForSpan(0, 511 * 3);
  EXPECT_EQ(wide.size(), 1u + 8u + 64u);  // whole tree
  EXPECT_LT(single.size(), wide.size());
  // Two adjacent point lookups share root and possibly internal nodes.
  const int64_t joint = tree.ReadCostForRanges({{0, 0}, {3, 3}});
  EXPECT_LE(joint, 2 * 3 - 1);  // root shared at minimum
}

TEST(TreeAirIndexTest, SpanCoversExactlyIntersectingLeaves) {
  const auto entries = MakeEntries(200, 5);
  TreeAirIndex tree(entries, 8);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const uint64_t a = rng.NextBelow(1100);
    const uint64_t b = rng.NextBelow(1100);
    const uint64_t lo = std::min(a, b);
    const uint64_t hi = std::max(a, b);
    const auto visited = tree.IndexBucketsForSpan(lo, hi);
    // Brute force: leaves are consecutive 8-entry chunks; count chunks whose
    // key range intersects [lo, hi].
    int64_t expected_leaves = 0;
    for (size_t start = 0; start < entries.size(); start += 8) {
      const size_t end = std::min(start + 8, entries.size());
      if (entries[start].hilbert <= hi && entries[end - 1].hilbert >= lo) {
        ++expected_leaves;
      }
    }
    // Visited = leaves + their ancestors; at least `expected_leaves`, and
    // every leaf bucket in `visited` must intersect the span.
    int64_t visited_leaves = 0;
    const int64_t first_leaf_offset =
        tree.SizeInBuckets() -
        static_cast<int64_t>((entries.size() + 7) / 8);
    for (int64_t offset : visited) {
      if (offset >= first_leaf_offset) ++visited_leaves;
    }
    EXPECT_EQ(visited_leaves, expected_leaves) << "span " << lo << ".." << hi;
  }
}

TEST(TreeIndexSystemTest, TreeReducesTuningNotCorrectness) {
  const geom::Rect world{0.0, 0.0, 20.0, 20.0};
  Rng rng(5);
  const auto pois = spatial::GenerateUniformPois(&rng, world, 1500);

  BroadcastParams flat_params;
  BroadcastParams tree_params;
  tree_params.index_kind = IndexKind::kTree;
  BroadcastSystem flat(pois, world, flat_params);
  BroadcastSystem tree(pois, world, tree_params);
  EXPECT_EQ(tree.tree_index()->height(), 2);

  int64_t flat_tuning = 0;
  int64_t tree_tuning = 0;
  Rng qrng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const geom::Point q{qrng.Uniform(0.0, 20.0), qrng.Uniform(0.0, 20.0)};
    const auto flat_result = onair::OnAirKnn(flat, q, 5, trial * 7);
    const auto tree_result = onair::OnAirKnn(tree, q, 5, trial * 7);
    // Identical answers.
    ASSERT_EQ(flat_result.neighbors.size(), tree_result.neighbors.size());
    for (size_t i = 0; i < flat_result.neighbors.size(); ++i) {
      EXPECT_EQ(flat_result.neighbors[i].poi.id,
                tree_result.neighbors[i].poi.id);
    }
    flat_tuning += flat_result.stats.tuning_time;
    tree_tuning += tree_result.stats.tuning_time;
  }
  EXPECT_LT(tree_tuning, flat_tuning);
}

TEST(TreeIndexSystemTest, WindowQueriesExactUnderTreeIndex) {
  const geom::Rect world{0.0, 0.0, 20.0, 20.0};
  Rng rng(7);
  const auto pois = spatial::GenerateUniformPois(&rng, world, 800);
  BroadcastParams params;
  params.index_kind = IndexKind::kTree;
  BroadcastSystem system(pois, world, params);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 15.0), rng.Uniform(0.0, 15.0)};
    const geom::Rect window{a.x, a.y, a.x + 4.0, a.y + 4.0};
    const auto result = onair::OnAirWindow(system, window, trial);
    EXPECT_EQ(result.pois, spatial::BruteForceWindow(pois, window));
    EXPECT_LE(result.stats.tuning_time, result.stats.access_latency);
  }
}

}  // namespace
}  // namespace lbsq::broadcast
