#include "spatial/rtree.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "spatial/generators.h"
#include "spatial/poi.h"

namespace lbsq::spatial {
namespace {

std::vector<Poi> RandomPois(int n, uint64_t seed) {
  Rng rng(seed);
  return GenerateUniformPois(&rng, geom::Rect{0.0, 0.0, 100.0, 100.0}, n);
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.WindowQuery(geom::Rect{0.0, 0.0, 100.0, 100.0}).empty());
  EXPECT_TRUE(tree.KnnBestFirst({0.0, 0.0}, 3).empty());
  EXPECT_TRUE(tree.KnnDepthFirst({0.0, 0.0}, 3).empty());
}

TEST(RTreeTest, SingleElement) {
  RTree tree;
  tree.Insert(Poi{7, {3.0, 4.0}});
  EXPECT_EQ(tree.size(), 1);
  EXPECT_EQ(tree.Height(), 1);
  const auto knn = tree.KnnBestFirst({0.0, 0.0}, 5);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].poi.id, 7);
  EXPECT_DOUBLE_EQ(knn[0].distance, 5.0);
}

TEST(RTreeTest, InvariantsHoldWhileGrowing) {
  RTree tree(8);
  Rng rng(5);
  const auto pois = RandomPois(500, 5);
  for (const Poi& p : pois) {
    tree.Insert(p);
    if (tree.size() % 50 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 500);
  EXPECT_GT(tree.Height(), 1);
}

TEST(RTreeTest, WindowQueryMatchesBruteForce) {
  const auto pois = RandomPois(800, 17);
  RTree tree;
  tree.InsertAll(pois);
  Rng rng(18);
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 90.0), rng.Uniform(0.0, 90.0)};
    const geom::Rect window{a.x, a.y, a.x + rng.Uniform(1.0, 30.0),
                            a.y + rng.Uniform(1.0, 30.0)};
    EXPECT_EQ(tree.WindowQuery(window), BruteForceWindow(pois, window));
  }
}

TEST(RTreeTest, KnnBestFirstMatchesBruteForce) {
  const auto pois = RandomPois(600, 23);
  RTree tree;
  tree.InsertAll(pois);
  Rng rng(24);
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Point q{rng.Uniform(-10.0, 110.0), rng.Uniform(-10.0, 110.0)};
    const int k = static_cast<int>(rng.UniformInt(1, 20));
    const auto got = tree.KnnBestFirst(q, k);
    const auto want = BruteForceKnn(pois, q, k);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].poi.id, want[i].poi.id) << "trial " << trial;
      EXPECT_DOUBLE_EQ(got[i].distance, want[i].distance);
    }
  }
}

TEST(RTreeTest, KnnDepthFirstMatchesBestFirst) {
  const auto pois = RandomPois(600, 29);
  RTree tree;
  tree.InsertAll(pois);
  Rng rng(30);
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    const int k = static_cast<int>(rng.UniformInt(1, 15));
    const auto bf = tree.KnnBestFirst(q, k);
    const auto df = tree.KnnDepthFirst(q, k);
    ASSERT_EQ(bf.size(), df.size());
    for (size_t i = 0; i < bf.size(); ++i) {
      EXPECT_EQ(bf[i].poi.id, df[i].poi.id);
    }
  }
}

TEST(RTreeTest, BestFirstNeverAccessesMoreNodesThanDepthFirst) {
  // Hjaltason & Samet's best-first search is I/O-optimal; the depth-first
  // branch-and-bound can only match or exceed its node accesses.
  const auto pois = RandomPois(1000, 31);
  RTree tree;
  tree.InsertAll(pois);
  Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    tree.KnnBestFirst(q, 10);
    const int64_t bf_accesses = tree.last_node_accesses();
    tree.KnnDepthFirst(q, 10);
    const int64_t df_accesses = tree.last_node_accesses();
    EXPECT_LE(bf_accesses, df_accesses);
  }
}

TEST(RTreeTest, KnnWithKLargerThanSize) {
  const auto pois = RandomPois(10, 37);
  RTree tree;
  tree.InsertAll(pois);
  EXPECT_EQ(tree.KnnBestFirst({50.0, 50.0}, 25).size(), 10u);
  EXPECT_EQ(tree.KnnDepthFirst({50.0, 50.0}, 25).size(), 10u);
}

TEST(RTreeTest, DuplicatePositionsSupported) {
  RTree tree;
  for (int i = 0; i < 40; ++i) tree.Insert(Poi{i, {1.0, 1.0}});
  tree.CheckInvariants();
  const auto knn = tree.KnnBestFirst({1.0, 1.0}, 5);
  ASSERT_EQ(knn.size(), 5u);
  // Deterministic id tie-break.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(knn[static_cast<size_t>(i)].poi.id, i);
}

TEST(RTreeTest, WindowQueryOnBoundaryIsClosed) {
  RTree tree;
  tree.Insert(Poi{1, {5.0, 5.0}});
  EXPECT_EQ(tree.WindowQuery(geom::Rect{5.0, 5.0, 6.0, 6.0}).size(), 1u);
  EXPECT_EQ(tree.WindowQuery(geom::Rect{4.0, 4.0, 5.0, 5.0}).size(), 1u);
  EXPECT_TRUE(tree.WindowQuery(geom::Rect{5.1, 5.0, 6.0, 6.0}).empty());
}

TEST(RTreeBulkLoadTest, EmptyAndTiny) {
  const RTree empty = RTree::BulkLoadStr({});
  EXPECT_EQ(empty.size(), 0);
  EXPECT_TRUE(empty.KnnBestFirst({0.0, 0.0}, 3).empty());

  const RTree tiny = RTree::BulkLoadStr({{7, {1.0, 2.0}}, {9, {3.0, 4.0}}});
  EXPECT_EQ(tiny.size(), 2);
  tiny.CheckInvariants();
  EXPECT_EQ(tiny.KnnBestFirst({0.0, 0.0}, 1)[0].poi.id, 7);
}

TEST(RTreeBulkLoadTest, InvariantsAndCorrectnessAcrossSizes) {
  for (int n : {1, 7, 8, 9, 63, 64, 65, 500, 3000}) {
    const auto pois = RandomPois(n, 100 + static_cast<uint64_t>(n));
    const RTree tree = RTree::BulkLoadStr(pois, 8);
    EXPECT_EQ(tree.size(), n);
    tree.CheckInvariants();
    Rng rng(200 + static_cast<uint64_t>(n));
    for (int trial = 0; trial < 8; ++trial) {
      const geom::Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
      const auto got = tree.KnnBestFirst(q, 5);
      const auto want = BruteForceKnn(pois, q, 5);
      ASSERT_EQ(got.size(), want.size()) << "n=" << n;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].poi.id, want[i].poi.id) << "n=" << n;
      }
      const geom::Rect window{q.x - 8.0, q.y - 8.0, q.x + 8.0, q.y + 8.0};
      EXPECT_EQ(tree.WindowQuery(window), BruteForceWindow(pois, window));
    }
  }
}

TEST(RTreeBulkLoadTest, PackedTreeIsShallowerOrEqual) {
  const auto pois = RandomPois(2000, 55);
  const RTree packed = RTree::BulkLoadStr(pois, 8);
  RTree dynamic(8);
  dynamic.InsertAll(pois);
  EXPECT_LE(packed.Height(), dynamic.Height());
}

TEST(RTreeBulkLoadTest, PackedTreeReadsFewerNodesOnWindows) {
  const auto pois = RandomPois(3000, 57);
  const RTree packed = RTree::BulkLoadStr(pois, 8);
  RTree dynamic(8);
  dynamic.InsertAll(pois);
  Rng rng(58);
  int64_t packed_accesses = 0;
  int64_t dynamic_accesses = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 90.0), rng.Uniform(0.0, 90.0)};
    const geom::Rect window{a.x, a.y, a.x + 10.0, a.y + 10.0};
    EXPECT_EQ(packed.WindowQuery(window), dynamic.WindowQuery(window));
    packed_accesses += packed.last_node_accesses();
    dynamic.WindowQuery(window);
    dynamic_accesses += dynamic.last_node_accesses();
  }
  EXPECT_LT(packed_accesses, dynamic_accesses);
}

class RTreeFanoutTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeFanoutTest, CorrectAcrossFanouts) {
  const int fanout = GetParam();
  const auto pois = RandomPois(400, 41);
  RTree tree(fanout);
  tree.InsertAll(pois);
  tree.CheckInvariants();
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    const auto got = tree.KnnBestFirst(q, 7);
    const auto want = BruteForceKnn(pois, q, 7);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].poi.id, want[i].poi.id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeFanoutTest,
                         ::testing::Values(4, 6, 8, 16, 32, 64));

}  // namespace
}  // namespace lbsq::spatial
