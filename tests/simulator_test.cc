#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "sim/config.h"

namespace lbsq::sim {
namespace {

// A small but live configuration: dense enough that all three resolution
// paths occur, tiny enough to run in milliseconds.
SimConfig SmallConfig(QueryType type) {
  SimConfig config;
  config.params = LosAngelesCity();
  config.query_type = type;
  config.world_side_mi = 1.0;
  config.warmup_min = 10.0;
  config.duration_min = 10.0;
  config.seed = 7;
  return config;
}

TEST(SimulatorTest, KnnRunProducesConsistentBreakdown) {
  Simulator sim(SmallConfig(QueryType::kKnn));
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.queries, 50);
  EXPECT_EQ(metrics.solved_verified + metrics.solved_approximate +
                metrics.solved_broadcast,
            metrics.queries);
  EXPECT_NEAR(metrics.PctVerified() + metrics.PctApproximate() +
                  metrics.PctBroadcast(),
              100.0, 1e-9);
}

TEST(SimulatorTest, WindowRunProducesConsistentBreakdown) {
  Simulator sim(SmallConfig(QueryType::kWindow));
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.queries, 50);
  EXPECT_EQ(metrics.solved_approximate, 0);  // windows are never approximate
  EXPECT_EQ(metrics.solved_verified + metrics.solved_broadcast,
            metrics.queries);
  EXPECT_GE(metrics.residual_fraction.mean(), 0.0);
  EXPECT_LE(metrics.residual_fraction.mean(), 1.0);
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  const SimConfig config = SmallConfig(QueryType::kKnn);
  Simulator a(config);
  Simulator b(config);
  const SimMetrics ma = a.Run();
  const SimMetrics mb = b.Run();
  EXPECT_EQ(ma.queries, mb.queries);
  EXPECT_EQ(ma.solved_verified, mb.solved_verified);
  EXPECT_EQ(ma.solved_approximate, mb.solved_approximate);
  EXPECT_EQ(ma.solved_broadcast, mb.solved_broadcast);
  EXPECT_DOUBLE_EQ(ma.broadcast_latency.sum(), mb.broadcast_latency.sum());
}

TEST(SimulatorTest, DifferentSeedsDiffer) {
  SimConfig config = SmallConfig(QueryType::kKnn);
  Simulator a(config);
  config.seed = 8;
  Simulator b(config);
  EXPECT_NE(a.Run().queries, b.Run().queries);
}

TEST(SimulatorTest, SharingReducesMeanLatencyVersusBaseline) {
  Simulator sim(SmallConfig(QueryType::kKnn));
  const SimMetrics metrics = sim.Run();
  // The headline effect: averaged over all queries (peer-resolved count as
  // zero), sharing must beat the always-on-air baseline.
  EXPECT_LT(metrics.MeanLatencyAllQueries(), metrics.baseline_latency.mean());
}

TEST(SimulatorTest, SomeQueriesResolvedByPeersInDenseWorld) {
  Simulator sim(SmallConfig(QueryType::kKnn));
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.solved_verified + metrics.solved_approximate, 0);
  EXPECT_GT(metrics.peers_per_query.mean(), 1.0);
}

TEST(SimulatorTest, TinyTransmissionRangeForcesBroadcast) {
  SimConfig config = SmallConfig(QueryType::kKnn);
  config.params.tx_range_m = 1.0;  // nobody in range
  Simulator sim(config);
  const SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.solved_verified + metrics.solved_approximate, 0);
  EXPECT_EQ(metrics.solved_broadcast, metrics.queries);
}

TEST(SimulatorTest, CachesPopulateDuringRun) {
  Simulator sim(SmallConfig(QueryType::kKnn));
  sim.Run();
  int64_t cached = 0;
  for (const auto& cache : sim.caches()) cached += cache.TotalPois();
  EXPECT_GT(cached, 0);
}

}  // namespace
}  // namespace lbsq::sim
