#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <unordered_set>

#include "broadcast/system.h"
#include "common/rng.h"
#include "engine_shim.h"
#include "core/nnv.h"
#include "core/peer_cache.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "core/sbnn.h"
#include "core/sbwq.h"
#include "dynamic/world_versioner.h"
#include "geom/rect_region.h"
#include "spatial/generators.h"

/// Parameterized property sweeps across densities, region sizes, and query
/// parameters — the invariants of DESIGN.md §4 exercised over wide input
/// spaces.

namespace lbsq {
namespace {

using core::PeerData;
using core::VerifiedRegion;
using spatial::Poi;

PeerData PeerWithRegion(const std::vector<Poi>& server, geom::Rect region) {
  VerifiedRegion vr;
  vr.region = region;
  for (const Poi& p : server) {
    if (region.Contains(p.pos)) vr.pois.push_back(p);
  }
  return PeerData{{vr}};
}

// --- Region algebra properties -------------------------------------------

class RegionAlgebraProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RegionAlgebraProperty, UnionInvariants) {
  const auto [num_rects, max_side] = GetParam();
  Rng rng(static_cast<uint64_t>(num_rects * 1000) +
          static_cast<uint64_t>(max_side * 10));
  for (int trial = 0; trial < 10; ++trial) {
    geom::RectRegion region;
    std::vector<geom::Rect> inputs;
    double bound_area = 0.0;
    for (int i = 0; i < num_rects; ++i) {
      const geom::Point a{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
      const geom::Rect r{a.x, a.y, a.x + rng.Uniform(0.05, max_side),
                         a.y + rng.Uniform(0.05, max_side)};
      inputs.push_back(r);
      region.Add(r);
      bound_area += r.area();
    }
    // Area is subadditive and at least the largest input.
    double max_input = 0.0;
    for (const auto& r : inputs) max_input = std::max(max_input, r.area());
    EXPECT_LE(region.Area(), bound_area + 1e-9);
    EXPECT_GE(region.Area(), max_input - 1e-9);
    // Membership: every input corner and center is in the region.
    for (const auto& r : inputs) {
      EXPECT_TRUE(region.Contains(r.center()));
      EXPECT_TRUE(region.Contains({r.x1, r.y1}));
      EXPECT_TRUE(region.Contains({r.x2, r.y2}));
      EXPECT_TRUE(region.ContainsRect(r));
    }
    // Random points: region membership == any input rect contains it.
    for (int probe = 0; probe < 200; ++probe) {
      const geom::Point p{rng.Uniform(-1.0, 12.0), rng.Uniform(-1.0, 12.0)};
      const bool in_any =
          std::any_of(inputs.begin(), inputs.end(),
                      [&p](const geom::Rect& r) { return r.Contains(p); });
      EXPECT_EQ(region.Contains(p), in_any);
    }
    // Idempotence: re-adding all inputs changes nothing.
    const double area_before = region.Area();
    for (const auto& r : inputs) region.Add(r);
    EXPECT_DOUBLE_EQ(region.Area(), area_before);
  }
}

TEST_P(RegionAlgebraProperty, SubtractComplementsContainment) {
  const auto [num_rects, max_side] = GetParam();
  Rng rng(77 + static_cast<uint64_t>(num_rects));
  for (int trial = 0; trial < 10; ++trial) {
    geom::RectRegion region;
    for (int i = 0; i < num_rects; ++i) {
      const geom::Point a{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
      region.Add(geom::Rect{a.x, a.y, a.x + rng.Uniform(0.1, max_side),
                            a.y + rng.Uniform(0.1, max_side)});
    }
    const geom::Point a{rng.Uniform(0.0, 8.0), rng.Uniform(0.0, 8.0)};
    const geom::Rect query{a.x, a.y, a.x + rng.Uniform(0.5, 4.0),
                           a.y + rng.Uniform(0.5, 4.0)};
    std::vector<geom::Rect> residual;
    region.SubtractFrom(query, &residual);
    double residual_area = 0.0;
    for (const auto& r : residual) {
      residual_area += r.area();
      EXPECT_TRUE(query.ContainsRect(r));
    }
    // area(query) = area(query ∩ region) + area(residual).
    geom::RectRegion clipped;
    for (const auto& piece : region.pieces()) {
      const geom::Rect overlap = piece.Intersection(query);
      if (!overlap.empty()) clipped.Add(overlap);
    }
    EXPECT_NEAR(residual_area + clipped.Area(), query.area(), 1e-9);
    // Empty residual <=> containment.
    EXPECT_EQ(residual.empty(), region.ContainsRect(query));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegionAlgebraProperty,
    ::testing::Combine(::testing::Values(1, 3, 8, 20, 50),
                       ::testing::Values(0.5, 2.0, 6.0)));

// --- Disc-coverage area against Monte Carlo -------------------------------

class DiscCoverageProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiscCoverageProperty, CoveredAreaMatchesMonteCarlo) {
  const int num_rects = GetParam();
  Rng rng(900 + static_cast<uint64_t>(num_rects));
  for (int trial = 0; trial < 5; ++trial) {
    geom::RectRegion region;
    for (int i = 0; i < num_rects; ++i) {
      const geom::Point c{rng.Uniform(2.0, 8.0), rng.Uniform(2.0, 8.0)};
      region.Add(geom::Rect::CenteredSquare(c, rng.Uniform(0.3, 1.5)));
    }
    const geom::Circle disc{{rng.Uniform(3.0, 7.0), rng.Uniform(3.0, 7.0)},
                            rng.Uniform(0.5, 2.5)};
    const double exact = region.DiscCoveredArea(disc);
    // Monte Carlo over the disc.
    int inside = 0;
    const int samples = 60000;
    for (int s = 0; s < samples; ++s) {
      const double radius = disc.radius * std::sqrt(rng.NextDouble());
      const double angle = rng.Uniform(0.0, 2.0 * M_PI);
      const geom::Point p{disc.center.x + radius * std::cos(angle),
                          disc.center.y + radius * std::sin(angle)};
      if (region.Contains(p)) ++inside;
    }
    const double mc =
        disc.area() * static_cast<double>(inside) / samples;
    const double sigma = disc.area() / std::sqrt(static_cast<double>(samples));
    EXPECT_NEAR(exact, mc, 4.0 * sigma + 1e-6)
        << "rects " << num_rects << " trial " << trial;
    // Bounds: covered <= disc area, uncovered >= 0.
    EXPECT_LE(exact, disc.area() + 1e-9);
    EXPECT_GE(region.DiscUncoveredArea(disc), -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiscCoverageProperty,
                         ::testing::Values(1, 4, 12, 30));

// --- SBWQ residual decomposition invariants --------------------------------

class SbwqResidualProperty : public ::testing::TestWithParam<int> {};

TEST_P(SbwqResidualProperty, ResidualsPartitionTheUncoveredWindow) {
  const int num_regions = GetParam();
  Rng rng(1300 + static_cast<uint64_t>(num_regions));
  for (int trial = 0; trial < 15; ++trial) {
    geom::RectRegion mvr;
    for (int i = 0; i < num_regions; ++i) {
      const geom::Point c{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
      mvr.Add(geom::Rect::CenteredSquare(c, rng.Uniform(0.4, 2.0)));
    }
    const geom::Point a{rng.Uniform(0.0, 7.0), rng.Uniform(0.0, 7.0)};
    const geom::Rect window{a.x, a.y, a.x + rng.Uniform(1.0, 3.0),
                            a.y + rng.Uniform(1.0, 3.0)};
    std::vector<geom::Rect> residuals;
    mvr.SubtractFrom(window, &residuals);
    // Residuals are inside the window, interior-disjoint, disjoint from the
    // MVR interior, and their area completes the covered part.
    double residual_area = 0.0;
    for (size_t i = 0; i < residuals.size(); ++i) {
      EXPECT_TRUE(window.ContainsRect(residuals[i]));
      residual_area += residuals[i].area();
      EXPECT_FALSE(mvr.Contains(residuals[i].center()));
      for (size_t j = i + 1; j < residuals.size(); ++j) {
        EXPECT_LE(residuals[i].Intersection(residuals[j]).area(), 0.0);
      }
    }
    geom::RectRegion covered;
    for (const auto& piece : mvr.pieces()) {
      const geom::Rect overlap = piece.Intersection(window);
      if (!overlap.empty()) covered.Add(overlap);
    }
    EXPECT_NEAR(residual_area + covered.Area(), window.area(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SbwqResidualProperty,
                         ::testing::Values(0, 2, 6, 15, 40));

// --- NNV soundness across POI densities and peer footprints ---------------

class NnvProperty
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(NnvProperty, VerifiedPrefixMatchesOracle) {
  const auto [n_pois, region_half, k] = GetParam();
  Rng rng(static_cast<uint64_t>(n_pois) * 31 +
          static_cast<uint64_t>(k) * 7);
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  for (int trial = 0; trial < 20; ++trial) {
    const auto server = spatial::GenerateUniformPois(&rng, world, n_pois);
    std::vector<PeerData> peers;
    const int n_peers = static_cast<int>(rng.UniformInt(0, 10));
    for (int p = 0; p < n_peers; ++p) {
      const geom::Point c{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
      peers.push_back(PeerWithRegion(
          server, geom::Rect::CenteredSquare(c, region_half)));
    }
    const geom::Point q{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    const core::NnvResult result = core::NearestNeighborVerify(
        q, k, peers, static_cast<double>(n_pois) / 100.0);
    const auto truth = spatial::BruteForceKnn(server, q, k);
    const auto& entries = result.heap.entries();
    // Property 1: the verified prefix equals the oracle prefix.
    for (size_t i = 0; i < entries.size() && entries[i].verified; ++i) {
      ASSERT_LT(i, truth.size());
      EXPECT_EQ(entries[i].poi.id, truth[i].poi.id);
    }
    // Property 2: the k-NN disc of the verified prefix is inside the MVR.
    const auto lower = result.heap.LowerBound();
    if (lower.has_value() && *lower > 0.0) {
      EXPECT_TRUE(
          result.mvr.ContainsDisc(geom::Circle{q, *lower * (1 - 1e-12)}));
    }
    // Property 3: correctness probabilities are valid and monotone
    // (later unverified entries have larger unverified regions).
    double prev_correctness = 1.0;
    for (const auto& e : entries) {
      EXPECT_GE(e.correctness, 0.0);
      EXPECT_LE(e.correctness, 1.0);
      if (!e.verified) {
        EXPECT_LE(e.correctness, prev_correctness + 1e-9);
        prev_correctness = e.correctness;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NnvProperty,
    ::testing::Combine(::testing::Values(20, 100, 400),
                       ::testing::Values(0.4, 1.0, 2.5),
                       ::testing::Values(1, 5, 12)));

// --- NNV soundness against real peer caches (Lemma 3.1) --------------------

// The sweep above hand-builds complete verified regions; this property runs
// NNV against peer data produced by actual PeerCache instances — including
// capacity-driven region shrinking and direction-based eviction — across
// 1000 randomized configurations. Lemma 3.1's claim under test: a POI
// reported as *verified* is always a member of the brute-force kNN answer
// (NNV may verify fewer than k, never a wrong one). Holds for the sound
// cache policy; kCollectiveMbr forfeits it by design.
TEST(NnvCacheSoundness, NeverVerifiesAPoiTheOracleRejects) {
  Rng rng(20240806);
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  int64_t verified_total = 0;
  for (int config = 0; config < 1000; ++config) {
    const int n_pois = static_cast<int>(rng.UniformInt(10, 250));
    const auto server = spatial::GenerateUniformPois(&rng, world, n_pois);

    // A handful of hosts, each with a capacity-constrained cache fed a few
    // complete regions (the insert invariant the simulator maintains).
    const int n_hosts = static_cast<int>(rng.UniformInt(1, 8));
    std::vector<PeerData> peers;
    for (int h = 0; h < n_hosts; ++h) {
      core::PeerCache cache(static_cast<int>(rng.UniformInt(1, 40)),
                            static_cast<int>(rng.UniformInt(1, 6)));
      const int n_inserts = static_cast<int>(rng.UniformInt(1, 5));
      for (int i = 0; i < n_inserts; ++i) {
        const geom::Point c{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
        const geom::Rect region =
            geom::Rect::CenteredSquare(c, rng.Uniform(0.2, 2.5));
        VerifiedRegion vr;
        vr.region = region;
        for (const Poi& p : server) {
          if (region.Contains(p.pos)) vr.pois.push_back(p);
        }
        const double angle = rng.Uniform(0.0, 2.0 * M_PI);
        cache.Insert(vr, c,
                     {rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)},
                     {std::cos(angle), std::sin(angle)});
      }
      PeerData shared = cache.Share();
      if (!shared.empty()) peers.push_back(std::move(shared));
    }

    const geom::Point q{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    const int k = static_cast<int>(rng.UniformInt(1, 10));
    const core::NnvResult result = core::NearestNeighborVerify(
        q, k, peers, static_cast<double>(n_pois) / world.area());
    const auto truth = spatial::BruteForceKnn(server, q, k);

    const auto& entries = result.heap.entries();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!entries[i].verified) break;  // verified entries form a prefix
      // The i-th verified entry IS the oracle's i-th nearest neighbor.
      ASSERT_LT(i, truth.size()) << "config " << config;
      EXPECT_EQ(entries[i].poi.id, truth[i].poi.id)
          << "config " << config << " rank " << i;
      ++verified_total;
    }
  }
  // The sweep must actually exercise verification, not vacuously pass.
  EXPECT_GT(verified_total, 100);
}

// --- SBNN / SBWQ end-to-end exactness across broadcast organizations ------

class SharingExactnessProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SharingExactnessProperty, SbnnAlwaysExact) {
  const auto [bucket_capacity, m, hilbert_order] = GetParam();
  const geom::Rect world{0.0, 0.0, 20.0, 20.0};
  Rng rng(static_cast<uint64_t>(bucket_capacity) * 131 +
          static_cast<uint64_t>(m) * 17 + static_cast<uint64_t>(hilbert_order));
  broadcast::BroadcastParams params;
  params.bucket_capacity = bucket_capacity;
  params.m = m;
  params.hilbert_order = hilbert_order;
  auto system = std::make_unique<broadcast::BroadcastSystem>(
      spatial::GenerateUniformPois(&rng, world, 250), world, params);
  for (int trial = 0; trial < 15; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
    std::vector<PeerData> peers;
    const int n_peers = static_cast<int>(rng.UniformInt(0, 3));
    for (int p = 0; p < n_peers; ++p) {
      peers.push_back(PeerWithRegion(
          system->pois(),
          geom::Rect::CenteredSquare(
              {q.x + rng.Uniform(-1.0, 1.0), q.y + rng.Uniform(-1.0, 1.0)},
              rng.Uniform(0.3, 2.0))));
    }
    core::SbnnOptions options;
    options.k = static_cast<int>(rng.UniformInt(1, 10));
    options.accept_approximate = false;
    const core::SbnnOutcome outcome = core::RunSbnn(
        q, options, peers, 250.0 / world.area(), *system, trial * 3);
    const auto truth =
        spatial::BruteForceKnn(system->pois(), q, options.k);
    ASSERT_EQ(outcome.neighbors.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_DOUBLE_EQ(outcome.neighbors[i].distance, truth[i].distance);
    }
  }
}

TEST_P(SharingExactnessProperty, SbwqAlwaysExact) {
  const auto [bucket_capacity, m, hilbert_order] = GetParam();
  const geom::Rect world{0.0, 0.0, 20.0, 20.0};
  Rng rng(static_cast<uint64_t>(bucket_capacity) * 57 +
          static_cast<uint64_t>(m) * 3 + static_cast<uint64_t>(hilbert_order));
  broadcast::BroadcastParams params;
  params.bucket_capacity = bucket_capacity;
  params.m = m;
  params.hilbert_order = hilbert_order;
  auto system = std::make_unique<broadcast::BroadcastSystem>(
      spatial::GenerateUniformPois(&rng, world, 250), world, params);
  for (int trial = 0; trial < 15; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 16.0), rng.Uniform(0.0, 16.0)};
    const geom::Rect window{a.x, a.y, a.x + rng.Uniform(0.5, 4.0),
                            a.y + rng.Uniform(0.5, 4.0)};
    std::vector<PeerData> peers;
    const int n_peers = static_cast<int>(rng.UniformInt(0, 3));
    for (int p = 0; p < n_peers; ++p) {
      peers.push_back(PeerWithRegion(
          system->pois(),
          geom::Rect::CenteredSquare(
              {a.x + rng.Uniform(-2.0, 2.0), a.y + rng.Uniform(-2.0, 2.0)},
              rng.Uniform(0.5, 3.0))));
    }
    const core::SbwqOutcome outcome =
        core::RunSbwq(window, {}, peers, *system, trial * 3);
    EXPECT_EQ(outcome.pois,
              spatial::BruteForceWindow(system->pois(), window));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SharingExactnessProperty,
    ::testing::Combine(::testing::Values(2, 8, 32),
                       ::testing::Values(1, 4),
                       ::testing::Values(3, 6)));

// --- Cache invariant under adversarial churn -------------------------------

class CacheChurnProperty : public ::testing::TestWithParam<int> {};

TEST_P(CacheChurnProperty, InvariantSurvivesChurn) {
  const int capacity = GetParam();
  Rng rng(500 + static_cast<uint64_t>(capacity));
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  const auto server = spatial::GenerateUniformPois(&rng, world, 300);
  core::PeerCache cache(capacity, 6);
  for (int step = 0; step < 100; ++step) {
    const geom::Point c{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    const geom::Rect region =
        geom::Rect::CenteredSquare(c, rng.Uniform(0.2, 2.0));
    VerifiedRegion vr;
    vr.region = region;
    for (const Poi& p : server) {
      if (region.Contains(p.pos)) vr.pois.push_back(p);
    }
    const geom::Point host{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    cache.Insert(vr, c, host, {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)});
    EXPECT_LE(cache.TotalPois(), capacity);
    for (const VerifiedRegion& entry : cache.entries()) {
      for (const Poi& p : server) {
        if (!entry.region.Contains(p.pos)) continue;
        EXPECT_TRUE(std::any_of(
            entry.pois.begin(), entry.pois.end(),
            [&p](const Poi& c2) { return c2.id == p.id; }))
            << "step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheChurnProperty,
                         ::testing::Values(1, 5, 20, 100));

// --- Snapshot isolation under randomized update/query interleavings --------

// 1000 randomized interleavings of POI update batches and epoch-pinned
// queries. The property of MVCC-lite snapshot isolation: a query pinned to
// epoch e sees exactly the epoch-e POI database — it never observes a POI
// deleted at or before e, never misses one inserted at or before e, and its
// kNN / window answers equal the brute-force oracle over the epoch-e
// snapshot, regardless of how many later epochs exist by the time it runs.
TEST(DynamicWorldProperty, PinnedQueriesMatchTheirEpochSnapshot) {
  Rng rng(20260808);
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  int64_t steps_total = 0;
  int64_t deleted_checks = 0;
  int64_t inserted_checks = 0;
  for (int config = 0; config < 50; ++config) {
    const int n_pois = static_cast<int>(rng.UniformInt(20, 120));
    std::vector<Poi> initial = spatial::GenerateUniformPois(&rng, world,
                                                            n_pois);
    broadcast::BroadcastParams params;
    params.bucket_capacity = static_cast<int>(rng.UniformInt(2, 16));
    params.m = static_cast<int>(rng.UniformInt(1, 4));
    core::EngineOptions options;
    options.sbnn.accept_approximate = false;
    dynamic::WorldVersioner versioner(initial, world, params, options,
                                      /*retain_history=*/true);
    int64_t next_id = 1000000;  // disjoint from generated ids

    // Cumulative-by-epoch bookkeeping: ids deleted at or before epoch e,
    // POIs inserted at or before epoch e (and not re-deleted by then).
    std::vector<std::unordered_set<int64_t>> deleted_by{{}};
    std::vector<std::vector<Poi>> inserted_by{{}};

    core::QueryWorkspace workspace;
    core::QueryOutcome outcome;
    for (int step = 0; step < 20; ++step) {
      ++steps_total;
      if (rng.NextBool(0.4)) {
        // Apply a random update batch -> publish the next epoch.
        const std::vector<Poi>& live = versioner.Current()->pois;
        std::vector<dynamic::PoiUpdate> batch;
        deleted_by.push_back(deleted_by.back());
        inserted_by.push_back(inserted_by.back());
        const int n_ops = static_cast<int>(rng.UniformInt(1, 6));
        for (int op = 0; op < n_ops; ++op) {
          const double kind = rng.NextDouble();
          dynamic::PoiUpdate u;
          if (kind < 0.4 && !live.empty()) {
            u.kind = dynamic::PoiUpdate::Kind::kDelete;
            u.id = live[rng.NextBelow(live.size())].id;
            deleted_by.back().insert(u.id);
            std::erase_if(inserted_by.back(),
                          [&u](const Poi& p) { return p.id == u.id; });
          } else if (kind < 0.7 && !live.empty()) {
            u.kind = dynamic::PoiUpdate::Kind::kMove;
            u.id = live[rng.NextBelow(live.size())].id;
            u.pos = {rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
            std::erase_if(inserted_by.back(),
                          [&u](const Poi& p) { return p.id == u.id; });
          } else {
            u.kind = dynamic::PoiUpdate::Kind::kInsert;
            u.id = next_id++;
            u.pos = {rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
            inserted_by.back().push_back(Poi{u.id, u.pos});
          }
          batch.push_back(u);
        }
        versioner.Apply(std::move(batch));
        ASSERT_EQ(versioner.latest_epoch() + 1, deleted_by.size());
      }

      // Pin a (possibly historical) epoch and query it.
      const uint64_t e = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(versioner.latest_epoch())));
      const std::shared_ptr<const dynamic::WorldEpoch> epoch =
          versioner.EpochAt(e);
      ASSERT_NE(epoch, nullptr);

      core::QueryRequest knn;
      knn.kind = core::QueryKind::kKnn;
      knn.position = {rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
      knn.k = static_cast<int>(rng.UniformInt(1, 8));
      knn.slot = step * 5;
      epoch->engine->Execute(knn, workspace, &outcome);
      const auto truth =
          spatial::BruteForceKnn(epoch->pois, knn.position, knn.k);
      ASSERT_EQ(outcome.knn->neighbors.size(), truth.size());
      for (size_t i = 0; i < truth.size(); ++i) {
        EXPECT_EQ(outcome.knn->neighbors[i].poi.id, truth[i].poi.id)
            << "config " << config << " step " << step << " epoch " << e;
        // Never observe a POI deleted at or before the pinned epoch.
        EXPECT_FALSE(deleted_by[e].contains(outcome.knn->neighbors[i].poi.id));
        ++deleted_checks;
      }

      core::QueryRequest win;
      win.kind = core::QueryKind::kWindow;
      const geom::Point a{rng.Uniform(0.0, 7.0), rng.Uniform(0.0, 7.0)};
      win.window = {a.x, a.y, a.x + rng.Uniform(0.5, 3.0),
                    a.y + rng.Uniform(0.5, 3.0)};
      win.slot = step * 5;
      epoch->engine->Execute(win, workspace, &outcome);
      EXPECT_EQ(outcome.window->pois,
                spatial::BruteForceWindow(epoch->pois, win.window))
          << "config " << config << " step " << step << " epoch " << e;
      for (const Poi& p : outcome.window->pois) {
        EXPECT_FALSE(deleted_by[e].contains(p.id));
        ++deleted_checks;
      }
      // Never miss a POI inserted at or before the pinned epoch.
      for (const Poi& p : inserted_by[e]) {
        if (!win.window.Contains(p.pos)) continue;
        EXPECT_TRUE(std::any_of(
            outcome.window->pois.begin(), outcome.window->pois.end(),
            [&p](const Poi& q) { return q.id == p.id; }))
            << "config " << config << " step " << step << " epoch " << e;
        ++inserted_checks;
      }
    }
  }
  EXPECT_EQ(steps_total, 1000);
  // The sweep must actually exercise the staleness hazards, not vacuously
  // pass.
  EXPECT_GT(deleted_checks, 500);
  EXPECT_GT(inserted_checks, 50);
}

}  // namespace
}  // namespace lbsq
