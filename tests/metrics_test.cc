#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace lbsq::sim {
namespace {

TEST(MetricsTest, EmptyMetrics) {
  SimMetrics m;
  EXPECT_EQ(m.PctVerified(), 0.0);
  EXPECT_EQ(m.PctApproximate(), 0.0);
  EXPECT_EQ(m.PctBroadcast(), 0.0);
  EXPECT_EQ(m.MeanLatencyAllQueries(), 0.0);
}

TEST(MetricsTest, PercentagesSumToHundred) {
  SimMetrics m;
  m.queries = 10;
  m.solved_verified = 5;
  m.solved_approximate = 2;
  m.solved_broadcast = 3;
  EXPECT_DOUBLE_EQ(m.PctVerified(), 50.0);
  EXPECT_DOUBLE_EQ(m.PctApproximate(), 20.0);
  EXPECT_DOUBLE_EQ(m.PctBroadcast(), 30.0);
  EXPECT_DOUBLE_EQ(
      m.PctVerified() + m.PctApproximate() + m.PctBroadcast(), 100.0);
}

TEST(MetricsTest, MeanLatencyCountsPeerHitsAsZero) {
  SimMetrics m;
  m.queries = 4;
  m.solved_verified = 2;
  m.solved_broadcast = 2;
  m.broadcast_latency.Add(100.0);
  m.broadcast_latency.Add(200.0);
  // (0 + 0 + 100 + 200) / 4.
  EXPECT_DOUBLE_EQ(m.MeanLatencyAllQueries(), 75.0);
}

SimMetrics SampleMetrics(int offset) {
  SimMetrics m;
  m.queries = 10 + offset;
  m.solved_verified = 4;
  m.solved_approximate = 2 + offset;
  m.solved_broadcast = 4;
  m.peers_per_query.Add(3.0 + offset);
  m.peers_per_query.Add(5.0);
  m.broadcast_latency.Add(120.0);
  m.baseline_latency.Add(140.0 + offset);
  m.residual_fraction.Add(0.25);
  return m;
}

TEST(MetricsTest, EqualityComparesEveryAccumulator) {
  EXPECT_EQ(SampleMetrics(0), SampleMetrics(0));
  EXPECT_FALSE(SampleMetrics(0) == SampleMetrics(1));
  // A single extra observation in one stat breaks equality.
  SimMetrics a = SampleMetrics(0);
  SimMetrics b = SampleMetrics(0);
  b.buckets_skipped.Add(1.0);
  EXPECT_FALSE(a == b);
}

TEST(MetricsTest, MergeMatchesSequentialAccumulation) {
  // Counters and counts merge exactly; moments merge up to rounding (the
  // reason the parallel engine folds in event order instead — see Merge docs).
  SimMetrics a = SampleMetrics(0);
  const SimMetrics b = SampleMetrics(3);
  a.Merge(b);
  EXPECT_EQ(a.queries, 23);
  EXPECT_EQ(a.solved_verified, 8);
  EXPECT_EQ(a.solved_approximate, 7);
  EXPECT_EQ(a.peers_per_query.count(), 4);
  EXPECT_NEAR(a.peers_per_query.mean(), (3.0 + 5.0 + 6.0 + 5.0) / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.broadcast_latency.sum(), 240.0);
  EXPECT_DOUBLE_EQ(a.baseline_latency.max(), 143.0);
}

TEST(MetricsTest, MergeWithEmptyIsIdentity) {
  SimMetrics a = SampleMetrics(0);
  a.Merge(SimMetrics{});
  EXPECT_EQ(a, SampleMetrics(0));
  SimMetrics empty;
  empty.Merge(SampleMetrics(0));
  EXPECT_EQ(empty, SampleMetrics(0));
}

TEST(MetricsTest, ToStringMentionsKeyNumbers) {
  SimMetrics m;
  m.queries = 7;
  m.solved_broadcast = 7;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("queries=7"), std::string::npos);
  EXPECT_NE(s.find("broadcast=100.0%"), std::string::npos);
}

}  // namespace
}  // namespace lbsq::sim
