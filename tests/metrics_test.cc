#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace lbsq::sim {
namespace {

TEST(MetricsTest, EmptyMetrics) {
  SimMetrics m;
  EXPECT_EQ(m.PctVerified(), 0.0);
  EXPECT_EQ(m.PctApproximate(), 0.0);
  EXPECT_EQ(m.PctBroadcast(), 0.0);
  EXPECT_EQ(m.MeanLatencyAllQueries(), 0.0);
}

TEST(MetricsTest, PercentagesSumToHundred) {
  SimMetrics m;
  m.queries = 10;
  m.solved_verified = 5;
  m.solved_approximate = 2;
  m.solved_broadcast = 3;
  EXPECT_DOUBLE_EQ(m.PctVerified(), 50.0);
  EXPECT_DOUBLE_EQ(m.PctApproximate(), 20.0);
  EXPECT_DOUBLE_EQ(m.PctBroadcast(), 30.0);
  EXPECT_DOUBLE_EQ(
      m.PctVerified() + m.PctApproximate() + m.PctBroadcast(), 100.0);
}

TEST(MetricsTest, MeanLatencyCountsPeerHitsAsZero) {
  SimMetrics m;
  m.queries = 4;
  m.solved_verified = 2;
  m.solved_broadcast = 2;
  m.broadcast_latency.Add(100.0);
  m.broadcast_latency.Add(200.0);
  // (0 + 0 + 100 + 200) / 4.
  EXPECT_DOUBLE_EQ(m.MeanLatencyAllQueries(), 75.0);
}

TEST(MetricsTest, ToStringMentionsKeyNumbers) {
  SimMetrics m;
  m.queries = 7;
  m.solved_broadcast = 7;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("queries=7"), std::string::npos);
  EXPECT_NE(s.find("broadcast=100.0%"), std::string::npos);
}

}  // namespace
}  // namespace lbsq::sim
