#include "hilbert/hilbert.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "common/rng.h"
#include "geom/rect.h"

namespace lbsq::hilbert {
namespace {

TEST(HilbertCurveTest, Order1Layout) {
  // The canonical order-1 curve visits (0,0), (0,1), (1,1), (1,0).
  EXPECT_EQ(XyToIndex(1, {0, 0}), 0u);
  EXPECT_EQ(XyToIndex(1, {0, 1}), 1u);
  EXPECT_EQ(XyToIndex(1, {1, 1}), 2u);
  EXPECT_EQ(XyToIndex(1, {1, 0}), 3u);
}

TEST(HilbertCurveTest, RoundTripSmallOrders) {
  // Exhaustive in both directions: index -> xy -> index over every index,
  // and xy -> index -> xy over every cell of the grid, for orders 1-6
  // (4..4096 cells). Together they prove the mapping is a bijection at
  // these orders, with no reliance on sampling.
  for (int order = 1; order <= 6; ++order) {
    const uint64_t cells = 1ull << (2 * order);
    for (uint64_t d = 0; d < cells; ++d) {
      const CellXY cell = IndexToXy(order, d);
      EXPECT_EQ(XyToIndex(order, cell), d) << "order " << order;
    }
    const uint32_t side = 1u << order;
    for (uint32_t x = 0; x < side; ++x) {
      for (uint32_t y = 0; y < side; ++y) {
        const CellXY cell{x, y};
        EXPECT_EQ(IndexToXy(order, XyToIndex(order, cell)), cell)
            << "order " << order << " cell (" << x << "," << y << ")";
      }
    }
  }
}

TEST(HilbertCurveTest, RoundTripLargeOrderSpotChecks) {
  Rng rng(3);
  const int order = 16;
  for (int i = 0; i < 10000; ++i) {
    const CellXY cell{static_cast<uint32_t>(rng.NextBelow(1u << order)),
                      static_cast<uint32_t>(rng.NextBelow(1u << order))};
    EXPECT_EQ(IndexToXy(order, XyToIndex(order, cell)), cell);
  }
}

TEST(HilbertCurveTest, IsBijectionOrder4) {
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      seen.insert(XyToIndex(4, {x, y}));
    }
  }
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(*seen.rbegin(), 255u);
}

TEST(HilbertCurveTest, ConsecutiveIndexesAreGridNeighbors) {
  // The defining continuity property of the Hilbert curve.
  for (int order = 1; order <= 7; ++order) {
    const uint64_t cells = 1ull << (2 * order);
    CellXY prev = IndexToXy(order, 0);
    for (uint64_t d = 1; d < cells; ++d) {
      const CellXY cur = IndexToXy(order, d);
      const int dx = std::abs(static_cast<int>(cur.x) -
                              static_cast<int>(prev.x));
      const int dy = std::abs(static_cast<int>(cur.y) -
                              static_cast<int>(prev.y));
      EXPECT_EQ(dx + dy, 1) << "order " << order << " d " << d;
      prev = cur;
    }
  }
}

TEST(MortonCurveTest, KnownSmallLayout) {
  // Z-order: index = interleave(y, x) bitwise.
  EXPECT_EQ(MortonXyToIndex(2, {0, 0}), 0u);
  EXPECT_EQ(MortonXyToIndex(2, {1, 0}), 1u);
  EXPECT_EQ(MortonXyToIndex(2, {0, 1}), 2u);
  EXPECT_EQ(MortonXyToIndex(2, {1, 1}), 3u);
  EXPECT_EQ(MortonXyToIndex(2, {2, 0}), 4u);
  EXPECT_EQ(MortonXyToIndex(2, {3, 3}), 15u);
}

TEST(MortonCurveTest, RoundTrip) {
  // Exhaustive in both directions at orders 1-6 (see the Hilbert twin).
  for (int order = 1; order <= 6; ++order) {
    const uint64_t cells = 1ull << (2 * order);
    for (uint64_t d = 0; d < cells; ++d) {
      EXPECT_EQ(MortonXyToIndex(order, MortonIndexToXy(order, d)), d);
    }
    const uint32_t side = 1u << order;
    for (uint32_t x = 0; x < side; ++x) {
      for (uint32_t y = 0; y < side; ++y) {
        const CellXY cell{x, y};
        EXPECT_EQ(MortonIndexToXy(order, MortonXyToIndex(order, cell)), cell)
            << "order " << order << " cell (" << x << "," << y << ")";
      }
    }
  }
}

TEST(MortonCurveTest, RoundTripLargeOrder) {
  Rng rng(5);
  const int order = 16;
  for (int i = 0; i < 5000; ++i) {
    const CellXY cell{static_cast<uint32_t>(rng.NextBelow(1u << order)),
                      static_cast<uint32_t>(rng.NextBelow(1u << order))};
    EXPECT_EQ(MortonIndexToXy(order, MortonXyToIndex(order, cell)), cell);
  }
}

TEST(MortonGridTest, CoverRectExactness) {
  HilbertGrid grid(geom::Rect{0.0, 0.0, 16.0, 16.0}, 4, CurveKind::kMorton);
  Rng rng(19);
  for (int trial = 0; trial < 25; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 15.0), rng.Uniform(0.0, 15.0)};
    const geom::Rect query{a.x, a.y, a.x + rng.Uniform(0.5, 6.0),
                           a.y + rng.Uniform(0.5, 6.0)};
    const auto ranges = grid.CoverRect(query);
    auto covered = [&ranges](uint64_t d) {
      for (const IndexRange& r : ranges) {
        if (d >= r.lo && d <= r.hi) return true;
      }
      return false;
    };
    for (uint64_t d = 0; d < grid.num_cells(); ++d) {
      EXPECT_EQ(covered(d), grid.CellRect(d).Intersects(query));
    }
  }
}

TEST(MortonGridTest, HilbertFragmentsLessThanMorton) {
  // The defining comparison: on average the Hilbert cover of a window
  // consists of fewer contiguous runs than the Morton cover.
  const geom::Rect world{0.0, 0.0, 32.0, 32.0};
  HilbertGrid hilbert(world, 5, CurveKind::kHilbert);
  HilbertGrid morton(world, 5, CurveKind::kMorton);
  Rng rng(23);
  int64_t hilbert_fragments = 0;
  int64_t morton_fragments = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 24.0), rng.Uniform(0.0, 24.0)};
    const geom::Rect query{a.x, a.y, a.x + rng.Uniform(2.0, 8.0),
                           a.y + rng.Uniform(2.0, 8.0)};
    hilbert_fragments += static_cast<int64_t>(hilbert.CoverRect(query).size());
    morton_fragments += static_cast<int64_t>(morton.CoverRect(query).size());
  }
  EXPECT_LT(hilbert_fragments, morton_fragments);
}

TEST(HilbertGridTest, CellOfCorners) {
  const geom::Rect world{0.0, 0.0, 8.0, 8.0};
  HilbertGrid grid(world, 3);  // 8x8 cells of size 1
  EXPECT_EQ(grid.CellOf({0.5, 0.5}), (CellXY{0, 0}));
  EXPECT_EQ(grid.CellOf({7.5, 7.5}), (CellXY{7, 7}));
  // The world's max corner clamps into the last cell.
  EXPECT_EQ(grid.CellOf({8.0, 8.0}), (CellXY{7, 7}));
  // Outside points clamp to the border.
  EXPECT_EQ(grid.CellOf({-3.0, 100.0}), (CellXY{0, 7}));
}

TEST(HilbertGridTest, CellRectRoundTrip) {
  const geom::Rect world{-4.0, 2.0, 12.0, 10.0};
  HilbertGrid grid(world, 4);
  for (uint64_t d = 0; d < grid.num_cells(); d += 7) {
    const geom::Rect cell = grid.CellRect(d);
    EXPECT_EQ(grid.IndexOf(cell.center()), d);
  }
}

TEST(HilbertGridTest, CoverRectWholeWorldIsOneRange) {
  HilbertGrid grid(geom::Rect{0.0, 0.0, 1.0, 1.0}, 4);
  const auto ranges = grid.CoverRect(geom::Rect{0.0, 0.0, 1.0, 1.0});
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].lo, 0u);
  EXPECT_EQ(ranges[0].hi, grid.num_cells() - 1);
}

TEST(HilbertGridTest, CoverRectExactness) {
  // Every cell intersecting the query must be covered by some range, and
  // every range endpoint must correspond to an intersecting cell.
  HilbertGrid grid(geom::Rect{0.0, 0.0, 16.0, 16.0}, 4);
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 15.0), rng.Uniform(0.0, 15.0)};
    const geom::Rect query{a.x, a.y, a.x + rng.Uniform(0.5, 6.0),
                           a.y + rng.Uniform(0.5, 6.0)};
    const auto ranges = grid.CoverRect(query);
    auto covered = [&ranges](uint64_t d) {
      for (const IndexRange& r : ranges) {
        if (d >= r.lo && d <= r.hi) return true;
      }
      return false;
    };
    for (uint64_t d = 0; d < grid.num_cells(); ++d) {
      const bool intersects = grid.CellRect(d).Intersects(query);
      EXPECT_EQ(covered(d), intersects) << "cell " << d;
    }
    // Ranges are sorted and non-adjacent (maximally merged).
    for (size_t i = 1; i < ranges.size(); ++i) {
      EXPECT_GT(ranges[i].lo, ranges[i - 1].hi + 1);
    }
  }
}

TEST(HilbertGridTest, CoverRectOutsideWorldIsEmpty) {
  HilbertGrid grid(geom::Rect{0.0, 0.0, 1.0, 1.0}, 3);
  EXPECT_TRUE(grid.CoverRect(geom::Rect{2.0, 2.0, 3.0, 3.0}).empty());
}

TEST(HilbertGridTest, ClusteringBeatsRowMajorOrder) {
  // The locality property the broadcast server relies on (Jagadish; Moon et
  // al.): the cells of a query window form fewer contiguous runs along the
  // Hilbert curve than along a row-major order, so fewer disjoint on-air
  // segments must be retrieved. For a w x h window row-major always needs
  // exactly h runs; Hilbert averages about perimeter/4.
  const int order = 5;
  const uint32_t n = 1u << order;
  auto clusters = [](std::vector<uint64_t> keys) {
    std::sort(keys.begin(), keys.end());
    int runs = keys.empty() ? 0 : 1;
    for (size_t i = 1; i < keys.size(); ++i) {
      if (keys[i] != keys[i - 1] + 1) ++runs;
    }
    return runs;
  };
  double hilbert_total = 0.0;
  double rowmajor_total = 0.0;
  int windows = 0;
  const uint32_t w = 2, h = 8;  // tall windows, the row-major worst case
  for (uint32_t x0 = 0; x0 + w <= n; x0 += 3) {
    for (uint32_t y0 = 0; y0 + h <= n; y0 += 3) {
      std::vector<uint64_t> hilbert_keys;
      std::vector<uint64_t> rowmajor_keys;
      for (uint32_t dx = 0; dx < w; ++dx) {
        for (uint32_t dy = 0; dy < h; ++dy) {
          hilbert_keys.push_back(XyToIndex(order, {x0 + dx, y0 + dy}));
          rowmajor_keys.push_back(static_cast<uint64_t>(x0 + dx) +
                                  static_cast<uint64_t>(y0 + dy) * n);
        }
      }
      hilbert_total += clusters(hilbert_keys);
      rowmajor_total += clusters(rowmajor_keys);
      ++windows;
    }
  }
  EXPECT_LT(hilbert_total / windows, rowmajor_total / windows);
}

}  // namespace
}  // namespace lbsq::hilbert
