#include <gtest/gtest.h>

#include "fault/fault_model.h"
#include "sim/config.h"
#include "sim/metrics.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"

// End-to-end contracts of the fault-injection subsystem:
//  1. Disabled faults change nothing: a SimConfig with a default FaultConfig
//     produces metrics identical to one that never heard of faults.
//  2. Thread-count invariance survives injection: fault schedules are keyed
//     by query id, so metrics (including fault counters) are bitwise equal
//     at any thread count.
//  3. Graceful degradation: heavy burst loss + corruption never crashes and
//     never manufactures wrong "exact" answers — channel-only faults with an
//     unlimited retry budget stay exact, and bounded budgets surface
//     degraded queries instead of errors.

namespace lbsq::sim {
namespace {

SimConfig SmallConfig(QueryType type) {
  SimConfig config;
  config.params = LosAngelesCity();
  config.query_type = type;
  config.world_side_mi = 1.0;
  config.warmup_min = 8.0;
  config.duration_min = 8.0;
  config.seed = 7;
  return config;
}

fault::ChannelFaultConfig HeavyBurst() {
  fault::ChannelFaultConfig channel;
  channel.model = fault::LossModel::kGilbertElliott;
  // Stationary bad fraction 0.3, mean burst length 10 slots, 80% loss in
  // the bad state: ~24% of receptions lost in bursts.
  channel.p_bad_to_good = 0.1;
  channel.p_good_to_bad = 0.3 / 0.7 * 0.1;
  channel.loss_bad = 0.8;
  channel.corruption_prob = 0.05;
  return channel;
}

SimMetrics RunWithThreads(SimConfig config, int threads) {
  config.threads = threads;
  ParallelSimulator sim(config);
  return sim.Run();
}

TEST(FaultResilienceTest, DefaultFaultConfigIsInert) {
  // The seed metrics contract: merely carrying a (disabled) FaultConfig in
  // SimConfig must not perturb a single counter.
  const SimConfig config = SmallConfig(QueryType::kMixed);
  EXPECT_FALSE(config.fault.enabled());
  Simulator sim(config);
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.queries, 50);
  EXPECT_EQ(metrics.degraded_queries, 0);
  EXPECT_EQ(metrics.fault_losses, 0);
  EXPECT_EQ(metrics.fault_corruptions, 0);
  EXPECT_EQ(metrics.fault_deadline_hits, 0);
  EXPECT_EQ(metrics.regions_rejected, 0);
}

TEST(FaultResilienceTest, FaultScheduleIsThreadCountInvariant) {
  SimConfig config = SmallConfig(QueryType::kMixed);
  config.fault.channel = HeavyBurst();
  config.fault.peer.stale_prob = 0.05;
  config.fault.peer.truncate_prob = 0.05;
  config.fault.screen_peers = true;
  config.fault.policy.deadline_slots = 4000;
  const SimMetrics one = RunWithThreads(config, 1);
  EXPECT_GT(one.queries, 50);
  EXPECT_GT(one.fault_losses, 0);
  EXPECT_EQ(one, RunWithThreads(config, 2));
  EXPECT_EQ(one, RunWithThreads(config, 8));
}

TEST(FaultResilienceTest, UnlimitedRetriesStayExactUnderChannelFaults) {
  // Channel faults only delay when the client may retry forever: every
  // query still completes with the correct answer (no degradation, no
  // errors), it just pays latency and tuning for the losses.
  SimConfig config = SmallConfig(QueryType::kKnn);
  config.fault.channel = HeavyBurst();
  config.fault.policy.max_retries_per_bucket = 1000000;
  config.fault.policy.deadline_slots = 0;  // unlimited

  SimConfig baseline = config;
  baseline.fault = fault::FaultConfig{};

  Simulator sim(config);
  const SimMetrics faulty = sim.Run();
  Simulator base_sim(baseline);
  const SimMetrics base = base_sim.Run();

  EXPECT_EQ(faulty.queries, base.queries);
  EXPECT_EQ(faulty.answer_errors, 0);
  EXPECT_EQ(faulty.degraded_queries, 0);
  EXPECT_GT(faulty.fault_losses, 0);
  EXPECT_GT(faulty.fault_corruptions, 0);
  // Losses cost air time: mean access latency can only grow.
  EXPECT_GE(faulty.MeanLatencyAllQueries(), base.MeanLatencyAllQueries());
}

TEST(FaultResilienceTest, BoundedRetriesDegradeGracefully) {
  // 30% burst loss + 5% corruption with a tight retry budget: some queries
  // must give up, and they are reported as degraded — never as silent wrong
  // answers (channel faults cannot corrupt content, only availability, so
  // answer_errors stays zero).
  SimConfig config = SmallConfig(QueryType::kMixed);
  config.fault.channel = HeavyBurst();
  config.fault.policy.max_retries_per_bucket = 1;
  config.fault.policy.deadline_slots = 2000;

  Simulator sim(config);
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.queries, 50);
  EXPECT_GT(metrics.degraded_queries, 0);
  EXPECT_LT(metrics.degraded_queries, metrics.queries);
  EXPECT_EQ(metrics.answer_errors, 0);
}

TEST(FaultResilienceTest, ScreeningRejectsFaultyPeerRegions) {
  // With peer corruption on and screening enabled, the screen must fire;
  // honest traffic (no injection) must sail through with zero rejections.
  SimConfig faulty = SmallConfig(QueryType::kKnn);
  faulty.fault.peer.stale_prob = 0.2;
  faulty.fault.peer.truncate_prob = 0.2;
  faulty.fault.screen_peers = true;
  Simulator faulty_sim(faulty);
  const SimMetrics corrupted = faulty_sim.Run();
  EXPECT_GT(corrupted.regions_rejected, 0);

  SimConfig honest = SmallConfig(QueryType::kKnn);
  honest.fault.screen_peers = true;  // defense on, injection off
  Simulator honest_sim(honest);
  const SimMetrics clean = honest_sim.Run();
  EXPECT_EQ(clean.regions_rejected, 0);
  EXPECT_EQ(clean.answer_errors, 0);
}

TEST(FaultResilienceTest, SequentialAndParallelAgreeUnderFaults) {
  SimConfig config = SmallConfig(QueryType::kKnn);
  config.fault.channel = HeavyBurst();
  config.fault.policy.deadline_slots = 4000;
  config.events_per_epoch = 1;
  Simulator sequential(config);
  const SimMetrics expected = sequential.Run();
  EXPECT_EQ(expected, RunWithThreads(config, 4));
}

}  // namespace
}  // namespace lbsq::sim
