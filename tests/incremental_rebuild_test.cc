#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "broadcast/incremental.h"
#include "broadcast/system.h"
#include "common/rng.h"
#include "dynamic/sharded_world.h"
#include "dynamic/update_log.h"
#include "dynamic/world_versioner.h"
#include "sim/config.h"
#include "sim/parallel_simulator.h"
#include "spatial/generators.h"
#include "spatial/poi.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "storage/system_builder.h"

/// The diff-aware incremental epoch rebuild: PatchFrom must be
/// *bit-identical* to a cold full build at every epoch — same buckets, same
/// air-index entries, same schedule, same id-sorted CSR runs — across a
/// thousand randomized churn batches (uniform and skewed, with adversarial
/// per-id op chains), and the simulators' answer digests must not depend on
/// which publication path produced the epochs, at 1 and 8 threads.

namespace lbsq {
namespace {

using broadcast::BroadcastParams;
using broadcast::BroadcastSystem;
using dynamic::PoiUpdate;
using spatial::Poi;

constexpr geom::Rect kWorld{0.0, 0.0, 10.0, 10.0};

/// Full structural diff of two systems, double-for-double. EXPECT (not
/// ASSERT) so one divergent epoch reports every divergent facet at once;
/// the caller stops on the first failed epoch.
void ExpectIdenticalSystems(const BroadcastSystem& a,
                            const BroadcastSystem& b) {
  // POI database, in generation order.
  ASSERT_EQ(a.pois().size(), b.pois().size());
  for (size_t i = 0; i < a.pois().size(); ++i) {
    EXPECT_EQ(a.pois()[i], b.pois()[i]) << "poi " << i;
  }
  // The bucketized data file.
  ASSERT_EQ(a.buckets().size(), b.buckets().size());
  for (size_t k = 0; k < a.buckets().size(); ++k) {
    const broadcast::DataBucket& ba = a.buckets()[k];
    const broadcast::DataBucket& bb = b.buckets()[k];
    EXPECT_EQ(ba.id, bb.id);
    EXPECT_EQ(ba.epoch, bb.epoch);
    EXPECT_EQ(ba.hilbert_lo, bb.hilbert_lo) << "bucket " << k;
    EXPECT_EQ(ba.hilbert_hi, bb.hilbert_hi) << "bucket " << k;
    EXPECT_EQ(ba.mbr, bb.mbr) << "bucket " << k;
    ASSERT_EQ(ba.pois.size(), bb.pois.size()) << "bucket " << k;
    for (size_t i = 0; i < ba.pois.size(); ++i) {
      EXPECT_EQ(ba.pois[i], bb.pois[i]) << "bucket " << k << " poi " << i;
    }
  }
  // The air-index directory, entry for entry, including the SoA centers.
  ASSERT_EQ(a.index().entries().size(), b.index().entries().size());
  for (size_t i = 0; i < a.index().entries().size(); ++i) {
    EXPECT_EQ(a.index().entries()[i].hilbert, b.index().entries()[i].hilbert)
        << "entry " << i;
    EXPECT_EQ(a.index().entries()[i].bucket, b.index().entries()[i].bucket)
        << "entry " << i;
    EXPECT_EQ(a.index().center_xs()[i], b.index().center_xs()[i]);
    EXPECT_EQ(a.index().center_ys()[i], b.index().center_ys()[i]);
  }
  EXPECT_EQ(a.index().bucket_ranges(), b.index().bucket_ranges());
  EXPECT_EQ(a.index().half_cell_diagonal(), b.index().half_cell_diagonal());
  EXPECT_EQ(a.index().SizeInBuckets(), b.index().SizeInBuckets());
  // The (1, m) schedule.
  EXPECT_EQ(a.schedule().num_data_buckets(), b.schedule().num_data_buckets());
  EXPECT_EQ(a.schedule().index_buckets(), b.schedule().index_buckets());
  EXPECT_EQ(a.schedule().m(), b.schedule().m());
  EXPECT_EQ(a.schedule().cycle_length(), b.schedule().cycle_length());
  EXPECT_EQ(a.schedule().epoch(), b.schedule().epoch());
  EXPECT_EQ(a.epoch(), b.epoch());
  // The id-sorted CSR runs behind CollectPois, bucket by bucket.
  for (size_t k = 0; k < a.buckets().size(); ++k) {
    const std::vector<Poi> run_a =
        a.CollectPois({static_cast<int64_t>(k)});
    const std::vector<Poi> run_b =
        b.CollectPois({static_cast<int64_t>(k)});
    ASSERT_EQ(run_a.size(), run_b.size()) << "run " << k;
    for (size_t i = 0; i < run_a.size(); ++i) {
      EXPECT_EQ(run_a[i], run_b[i]) << "run " << k << " poi " << i;
    }
  }
  // Tree index, when configured: same serialized size and per-range read
  // cost derivation (it is re-bulk-loaded from identical entries).
  ASSERT_EQ(a.tree_index() != nullptr, b.tree_index() != nullptr);
  if (a.tree_index() != nullptr) {
    EXPECT_EQ(a.tree_index()->SizeInBuckets(),
              b.tree_index()->SizeInBuckets());
  }
}

geom::Point RandomPoint(Rng* rng, bool skewed) {
  if (!skewed) {
    return {rng->Uniform(kWorld.x1, kWorld.x2),
            rng->Uniform(kWorld.y1, kWorld.y2)};
  }
  // Skewed churn: everything lands in one hot corner cell cluster, so the
  // same few buckets are dirtied over and over while the rest stay clean.
  return {rng->Uniform(kWorld.x1, kWorld.x1 + 0.8),
          rng->Uniform(kWorld.y1, kWorld.y1 + 0.8)};
}

/// One randomized batch: inserts, deletes, moves, plus deliberately
/// adversarial per-id chains (delete+reinsert of the same id, double moves)
/// that only net-delta extraction handles correctly.
std::vector<PoiUpdate> RandomBatch(Rng* rng, const std::vector<Poi>& pois,
                                   int64_t* next_id, bool skewed) {
  std::vector<PoiUpdate> batch;
  const auto live_id = [&]() {
    return pois[static_cast<size_t>(rng->UniformInt(
                    0, static_cast<int64_t>(pois.size()) - 1))]
        .id;
  };
  const int inserts = static_cast<int>(rng->UniformInt(0, 3));
  const int deletes = pois.size() > 8 ? static_cast<int>(rng->UniformInt(0, 2))
                                      : 0;
  const int moves = static_cast<int>(rng->UniformInt(0, 3));
  for (int i = 0; i < inserts; ++i) {
    batch.push_back(
        {PoiUpdate::Kind::kInsert, (*next_id)++, RandomPoint(rng, skewed), {}});
  }
  for (int i = 0; i < deletes; ++i) {
    batch.push_back({PoiUpdate::Kind::kDelete, live_id(), {}, {}});
  }
  for (int i = 0; i < moves; ++i) {
    batch.push_back(
        {PoiUpdate::Kind::kMove, live_id(), RandomPoint(rng, skewed), {}});
  }
  if (rng->UniformInt(0, 4) == 0 && pois.size() > 8) {
    // Delete then re-insert the same id elsewhere, then move it again: three
    // ops, one id, netting to removal + addition at the final position.
    const int64_t id = live_id();
    batch.push_back({PoiUpdate::Kind::kDelete, id, {}, {}});
    batch.push_back(
        {PoiUpdate::Kind::kInsert, id, RandomPoint(rng, skewed), {}});
    batch.push_back(
        {PoiUpdate::Kind::kMove, id, RandomPoint(rng, skewed), {}});
  }
  return batch;
}

void RunChurnIdentity(bool skewed, BroadcastParams params, uint64_t seed,
                      int batches) {
  Rng rng(seed);
  std::vector<Poi> pois = spatial::GenerateUniformPois(&rng, kWorld, 150);
  int64_t next_id = 100000;
  params.epoch = 0;
  auto incremental =
      std::make_unique<BroadcastSystem>(pois, kWorld, params);

  int64_t patched_epochs = 0;
  for (int b = 1; b <= batches; ++b) {
    std::vector<PoiUpdate> batch = RandomBatch(&rng, pois, &next_id, skewed);
    dynamic::ApplyUpdates(&batch, &pois);
    const broadcast::SystemDelta delta = dynamic::DeltaFromBatch(batch);
    params.epoch = static_cast<uint64_t>(b);

    broadcast::PatchStats stats;
    std::unique_ptr<BroadcastSystem> patched = BroadcastSystem::PatchFrom(
        *incremental, pois, delta, params, &stats);
    // Reference: the cold full build of the same epoch.
    const BroadcastSystem full(pois, kWorld, params);
    if (patched != nullptr) {
      ++patched_epochs;
      EXPECT_EQ(stats.buckets_patched + stats.buckets_shared,
                static_cast<int64_t>(full.buckets().size()));
      incremental = std::move(patched);
    } else {
      // Structural decline (e.g. the world emptied): full-build and keep
      // chaining — the next patch works from this base.
      incremental = std::make_unique<BroadcastSystem>(pois, kWorld, params);
    }
    ExpectIdenticalSystems(*incremental, full);
    if (::testing::Test::HasFailure()) {
      FAIL() << "incremental != full at epoch " << b
             << (skewed ? " (skewed)" : " (uniform)");
    }
  }
  // The property is vacuous if patching never engaged.
  EXPECT_GT(patched_epochs, batches / 2);
}

// 1000 randomized batches: 4 param/skew scenarios x 250 chained epochs,
// every epoch diffed facet-by-facet against a cold build.
TEST(IncrementalRebuildProperty, UniformChurnFlatIndex) {
  RunChurnIdentity(/*skewed=*/false, BroadcastParams{}, /*seed=*/101, 250);
}

TEST(IncrementalRebuildProperty, SkewedChurnFlatIndex) {
  RunChurnIdentity(/*skewed=*/true, BroadcastParams{}, /*seed=*/202, 250);
}

TEST(IncrementalRebuildProperty, UniformChurnTreeIndexSmallBuckets) {
  BroadcastParams params;
  params.index_kind = broadcast::IndexKind::kTree;
  params.bucket_capacity = 4;
  RunChurnIdentity(/*skewed=*/false, params, /*seed=*/303, 250);
}

TEST(IncrementalRebuildProperty, SkewedChurnTreeIndexMorton) {
  BroadcastParams params;
  params.index_kind = broadcast::IndexKind::kTree;
  params.curve = hilbert::CurveKind::kMorton;
  RunChurnIdentity(/*skewed=*/true, params, /*seed=*/404, 250);
}

// Structural decliners: patching refuses rather than guessing.
TEST(IncrementalRebuildTest, DeclinesEmptyBaseAndParamsMismatch) {
  Rng rng(7);
  std::vector<Poi> pois = spatial::GenerateUniformPois(&rng, kWorld, 40);
  const BroadcastParams params;
  const BroadcastSystem base(pois, kWorld, params);
  broadcast::SystemDelta empty_delta;

  // Params disagreeing in anything but the epoch: declined.
  BroadcastParams other = params;
  other.bucket_capacity = params.bucket_capacity * 2;
  EXPECT_EQ(BroadcastSystem::PatchFrom(base, pois, empty_delta, other,
                                       nullptr),
            nullptr);

  // Empty base: declined (the placeholder bucket has no entries to merge).
  const BroadcastSystem empty_base({}, kWorld, params);
  EXPECT_EQ(BroadcastSystem::PatchFrom(empty_base, pois, empty_delta, params,
                                       nullptr),
            nullptr);

  // Same params modulo epoch: accepted, and a no-op delta shares every
  // bucket.
  BroadcastParams next = params;
  next.epoch = 1;
  broadcast::PatchStats stats;
  const auto patched =
      BroadcastSystem::PatchFrom(base, pois, empty_delta, next, &stats);
  ASSERT_NE(patched, nullptr);
  EXPECT_EQ(stats.buckets_patched, 0);
  EXPECT_EQ(stats.buckets_shared,
            static_cast<int64_t>(base.buckets().size()));
  EXPECT_EQ(patched->epoch(), 1u);
}

// The versioner's heuristic fallback: over-threshold churn full-builds and
// is counted, never silent.
TEST(IncrementalRebuildTest, ChurnThresholdFallbackIsCounted) {
  Rng rng(11);
  std::vector<Poi> pois = spatial::GenerateUniformPois(&rng, kWorld, 60);
  dynamic::WorldVersioner versioner(pois, kWorld, BroadcastParams{},
                                    core::EngineOptions{});
  dynamic::RebuildPolicy policy;
  policy.full_rebuild_churn_fraction = 0.05;  // 60 POIs -> max 3 net ops
  versioner.set_rebuild_policy(policy);

  // Two net ops: patched.
  versioner.Apply({{PoiUpdate::Kind::kMove, pois[0].id, {5.5, 5.5}, {}},
                   {PoiUpdate::Kind::kDelete, pois[1].id, {}, {}}});
  dynamic::PublicationStats stats = versioner.publication_stats();
  EXPECT_EQ(stats.epochs_patched, 1);
  EXPECT_EQ(stats.full_rebuild_fallbacks, 0);

  // Ten net ops on a 59-POI base: over the 5% threshold, counted fallback.
  std::vector<PoiUpdate> big;
  for (int i = 0; i < 10; ++i) {
    big.push_back({PoiUpdate::Kind::kInsert, 5000 + i,
                   geom::Point{0.5 + 0.1 * i, 0.5}, {}});
  }
  versioner.Apply(std::move(big));
  stats = versioner.publication_stats();
  EXPECT_EQ(stats.epochs_published, 2);
  EXPECT_EQ(stats.epochs_patched, 1);
  EXPECT_EQ(stats.full_rebuild_fallbacks, 1);

  // force_full publishes full but is not a fallback.
  policy.force_full = true;
  versioner.set_rebuild_policy(policy);
  versioner.Apply({{PoiUpdate::Kind::kMove, pois[2].id, {1.0, 9.0}, {}}});
  stats = versioner.publication_stats();
  EXPECT_EQ(stats.epochs_published, 3);
  EXPECT_EQ(stats.epochs_patched, 1);
  EXPECT_EQ(stats.full_rebuild_fallbacks, 1);
}

// The sharded world patches per dirty shard and shares the rest; the
// patched deployment is identical to the full-rebuilt one.
TEST(IncrementalRebuildTest, ShardedPatchMatchesShardedFullRebuild) {
  Rng rng(23);
  const std::vector<Poi> initial =
      spatial::GenerateUniformPois(&rng, kWorld, 200);

  dynamic::ShardedWorld patched(initial, kWorld, BroadcastParams{},
                                core::EngineOptions{}, /*num_shards=*/4);
  dynamic::ShardedWorld full(initial, kWorld, BroadcastParams{},
                             core::EngineOptions{}, /*num_shards=*/4);
  dynamic::RebuildPolicy force;
  force.force_full = true;
  full.set_rebuild_policy(force);

  Rng churn(31);
  std::vector<Poi> mirror = initial;
  int64_t next_id = 100000;
  for (int b = 0; b < 40; ++b) {
    const std::vector<PoiUpdate> batch =
        RandomBatch(&churn, mirror, &next_id, b % 2 == 1);
    {
      std::vector<PoiUpdate> copy = batch;
      dynamic::ApplyUpdates(&copy, &mirror);
    }
    {
      std::vector<PoiUpdate> copy = batch;
      patched.Apply(std::move(copy));
    }
    {
      std::vector<PoiUpdate> copy = batch;
      full.Apply(std::move(copy));
    }
    const auto ep = patched.Current();
    const auto ef = full.Current();
    ASSERT_EQ(ep->id, ef->id);
    ASSERT_EQ(ep->rebuilt_shards, ef->rebuilt_shards);
    for (int s = 0; s < patched.num_shards(); ++s) {
      const BroadcastSystem* sp = ep->engine->shard_system(s);
      const BroadcastSystem* sf = ef->engine->shard_system(s);
      ASSERT_EQ(sp != nullptr, sf != nullptr) << "shard " << s;
      if (sp != nullptr) ExpectIdenticalSystems(*sp, *sf);
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "sharded incremental != full at epoch " << b + 1;
    }
  }
  const dynamic::PublicationStats stats = patched.publication_stats();
  EXPECT_GT(stats.epochs_patched, 0);
  EXPECT_GT(stats.buckets_shared, 0);
}

// The incremental path composes with OpenFromStore: a system reopened from
// a persisted page store is a valid patch base, and patching it produces
// exactly what patching the originally built system produces (both
// bit-identical to the cold build of the new epoch).
TEST(IncrementalRebuildTest, PatchComposesWithOpenFromStore) {
  Rng rng(47);
  std::vector<Poi> pois = spatial::GenerateUniformPois(&rng, kWorld, 120);
  const storage::SystemBuilder builder(kWorld, BroadcastParams{});
  const auto built_engine = builder.BuildFromPois(pois);

  storage::MemoryStorageManager store;
  storage::BufferPool pool(&store, /*capacity=*/16);
  ASSERT_TRUE(builder.WriteStore(*built_engine, &store));
  storage::OpenStatus status = storage::OpenStatus::kOk;
  const auto reopened = builder.OpenFromStore(store, &pool, &status);
  ASSERT_NE(reopened, nullptr) << storage::OpenStatusName(status);

  int64_t next_id = 100000;
  std::vector<PoiUpdate> batch =
      RandomBatch(&rng, pois, &next_id, /*skewed=*/false);
  dynamic::ApplyUpdates(&batch, &pois);
  const broadcast::SystemDelta delta = dynamic::DeltaFromBatch(batch);

  BroadcastParams next = builder.params();
  next.epoch = 1;
  broadcast::PatchStats from_built_stats;
  broadcast::PatchStats from_store_stats;
  const auto from_built = BroadcastSystem::PatchFrom(
      *built_engine->shard_system(0), pois, delta, next, &from_built_stats);
  const auto from_store = BroadcastSystem::PatchFrom(
      *reopened->shard_system(0), pois, delta, next, &from_store_stats);
  ASSERT_NE(from_built, nullptr);
  ASSERT_NE(from_store, nullptr);
  EXPECT_EQ(from_built_stats.buckets_shared, from_store_stats.buckets_shared);
  const BroadcastSystem cold(pois, kWorld, next);
  ExpectIdenticalSystems(*from_store, *from_built);
  ExpectIdenticalSystems(*from_store, cold);
}

// Answer digests are independent of the publication path and the thread
// count: {incremental, full} x {1 thread, 8 threads} all agree.
TEST(IncrementalRebuildTest, AnswerDigestsMatchAcrossPathAndThreads) {
  const auto config = [](int threads, bool force_full) {
    sim::SimConfig c;
    c.world_side_mi = 1.5;
    c.warmup_min = 1.0;
    c.duration_min = 3.0;
    c.seed = 42;
    c.threads = threads;
    c.updates.interval_events = 10;
    c.updates.force_full_rebuild = force_full;
    return c;
  };
  sim::ParallelSimulator inc1(config(1, false));
  sim::ParallelSimulator inc8(config(8, false));
  sim::ParallelSimulator full1(config(1, true));
  sim::ParallelSimulator full8(config(8, true));
  const sim::SimMetrics mi1 = inc1.Run();
  const sim::SimMetrics mi8 = inc8.Run();
  const sim::SimMetrics mf1 = full1.Run();
  const sim::SimMetrics mf8 = full8.Run();
  EXPECT_TRUE(mi1 == mi8);
  EXPECT_TRUE(mf1 == mf8);
  EXPECT_TRUE(mi1 == mf1);
  EXPECT_EQ(mi1.answer_digest, mf8.answer_digest);
  EXPECT_GT(mi1.epochs_published, 0);
  // The incremental run actually patched; the forced run never did.
  EXPECT_GT(inc1.versioner().publication_stats().epochs_patched, 0);
  EXPECT_EQ(full1.versioner().publication_stats().epochs_patched, 0);
  EXPECT_EQ(full1.versioner().publication_stats().full_rebuild_fallbacks, 0);
}

}  // namespace
}  // namespace lbsq
