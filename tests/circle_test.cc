#include "geom/circle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace lbsq::geom {
namespace {

// Monte-Carlo reference for the disc-rect intersection area.
double MonteCarloArea(const Circle& c, const Rect& r, int samples,
                      uint64_t seed) {
  Rng rng(seed);
  int inside = 0;
  for (int i = 0; i < samples; ++i) {
    const Point p{rng.Uniform(r.x1, r.x2), rng.Uniform(r.y1, r.y2)};
    if (c.Contains(p)) ++inside;
  }
  return r.area() * static_cast<double>(inside) / samples;
}

TEST(CircleTest, BasicAccessors) {
  const Circle c{{1.0, 2.0}, 3.0};
  EXPECT_DOUBLE_EQ(c.area(), M_PI * 9.0);
  EXPECT_TRUE(c.Contains({1.0, 5.0}));   // on the boundary
  EXPECT_FALSE(c.Contains({1.0, 5.01}));
  EXPECT_EQ(c.Mbr(), (Rect{-2.0, -1.0, 4.0, 5.0}));
}

TEST(CircleTest, ContainsRect) {
  const Circle c{{0.0, 0.0}, 2.0};
  EXPECT_TRUE(c.ContainsRect(Rect{-1.0, -1.0, 1.0, 1.0}));
  EXPECT_FALSE(c.ContainsRect(Rect{-2.0, -2.0, 2.0, 2.0}));  // corners out
  // Inscribed square: corners at exactly radius.
  const double h = 2.0 / std::sqrt(2.0);
  EXPECT_TRUE(c.ContainsRect(Rect{-h, -h, h, h}));
}

TEST(DiscRectAreaTest, RectFullyInsideDisc) {
  const Circle c{{0.0, 0.0}, 10.0};
  const Rect r{-1.0, -2.0, 3.0, 1.0};
  EXPECT_DOUBLE_EQ(DiscRectIntersectionArea(c, r), r.area());
}

TEST(DiscRectAreaTest, DiscFullyInsideRect) {
  const Circle c{{0.0, 0.0}, 1.0};
  const Rect r{-5.0, -5.0, 5.0, 5.0};
  EXPECT_NEAR(DiscRectIntersectionArea(c, r), M_PI, 1e-12);
}

TEST(DiscRectAreaTest, Disjoint) {
  const Circle c{{0.0, 0.0}, 1.0};
  EXPECT_EQ(DiscRectIntersectionArea(c, Rect{2.0, 2.0, 3.0, 3.0}), 0.0);
}

TEST(DiscRectAreaTest, HalfPlaneCut) {
  // Rect covers exactly the right half of the disc.
  const Circle c{{0.0, 0.0}, 2.0};
  const Rect r{0.0, -10.0, 10.0, 10.0};
  EXPECT_NEAR(DiscRectIntersectionArea(c, r), M_PI * 4.0 / 2.0, 1e-9);
}

TEST(DiscRectAreaTest, QuarterCut) {
  const Circle c{{0.0, 0.0}, 2.0};
  const Rect r{0.0, 0.0, 10.0, 10.0};
  EXPECT_NEAR(DiscRectIntersectionArea(c, r), M_PI, 1e-9);
}

TEST(DiscRectAreaTest, ZeroRadius) {
  const Circle c{{0.5, 0.5}, 0.0};
  EXPECT_EQ(DiscRectIntersectionArea(c, Rect{0.0, 0.0, 1.0, 1.0}), 0.0);
}

TEST(DiscRectAreaTest, EmptyRect) {
  const Circle c{{0.0, 0.0}, 1.0};
  EXPECT_EQ(DiscRectIntersectionArea(c, Rect{}), 0.0);
}

TEST(DiscRectAreaTest, KnownCircularSegment) {
  // Rect slices the disc at x >= 1 (radius 2): circular segment with
  // half-angle acos(1/2) = pi/3. Area = r^2 (theta - sin theta cos theta)
  // with theta = pi/3.
  const Circle c{{0.0, 0.0}, 2.0};
  const Rect r{1.0, -10.0, 10.0, 10.0};
  const double theta = std::acos(0.5);
  const double expected =
      4.0 * (theta - std::sin(theta) * std::cos(theta));
  EXPECT_NEAR(DiscRectIntersectionArea(c, r), expected, 1e-9);
}

TEST(DiscRectAreaTest, TangentFromOutsideIsZero) {
  // Rect edge exactly tangent to the disc from outside: the chord interval
  // degenerates to a point and no area may be counted.
  const Circle c{{0.0, 2.0}, 1.0};
  EXPECT_NEAR(DiscRectIntersectionArea(c, Rect{-3.0, 0.0, 3.0, 1.0}), 0.0,
              1e-9);
  // Corner exactly touching the circle, rect otherwise outside.
  EXPECT_NEAR(DiscRectIntersectionArea(Circle{{0.0, 0.0}, 1.0},
                                       Rect{1.0, 1.0, 4.0, 4.0}),
              0.0, 1e-9);
}

TEST(DiscRectAreaTest, TangentFromInsideKeepsFullDisc) {
  // Rect contains the disc with one edge exactly tangent: area is the whole
  // disc, not the disc minus a spurious degenerate segment.
  const Circle c{{0.0, 0.0}, 1.0};
  const Rect r{-3.0, -1.0, 3.0, 4.0};  // bottom edge tangent at (0, -1)
  EXPECT_NEAR(DiscRectIntersectionArea(c, r), M_PI, 1e-9);
}

TEST(DiscRectAreaTest, DoubleChordBand) {
  // Rect |y| <= 1/2 slices two chords off the unit disc (both edge endpoints
  // strictly outside): band area = sqrt(3)/2 + pi/3.
  const Circle c{{0.0, 0.0}, 1.0};
  const Rect r{-2.0, -0.5, 2.0, 0.5};
  EXPECT_NEAR(DiscRectIntersectionArea(c, r),
              std::sqrt(3.0) / 2.0 + M_PI / 3.0, 1e-9);
}

TEST(DiscRectAreaTest, CornerExactlyOnCircleKeepsSegment) {
  // Corner (3, 4) lies exactly on the radius-5 circle; the rect occupies the
  // x >= 3 half plane below y = 4, so the intersection is the full circular
  // segment x >= 3 (the y = 4 edge only touches at the corner). A strict
  // interior-root test used to drop this segment when a chord endpoint sat
  // numerically on the circle.
  const Circle c{{0.0, 0.0}, 5.0};
  const Rect r{3.0, -10.0, 20.0, 4.0};
  const double expected = 25.0 * std::acos(0.6) - 12.0;
  EXPECT_NEAR(DiscRectIntersectionArea(c, r), expected, 1e-9);
}

TEST(DiscRectAreaTest, CornerOnBoundaryMatchesMonteCarlo) {
  // Adversarial sweep for the corner-exact chord rule: one rect corner is
  // placed exactly on the circle (floating point lands it a few ulp inside
  // or outside at random), which used to lose the adjacent segment area.
  Rng rng(7701);
  for (int trial = 0; trial < 20; ++trial) {
    const Circle c{{rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)},
                   rng.Uniform(0.5, 2.0)};
    const double phi = rng.Uniform(0.0, 2.0 * M_PI);
    const Point corner{c.center.x + c.radius * std::cos(phi),
                       c.center.y + c.radius * std::sin(phi)};
    const Rect r = Rect::FromCorners(
        corner, {corner.x + rng.Uniform(0.5, 3.0) * (rng.NextBool(0.5) ? 1 : -1),
                 corner.y + rng.Uniform(0.5, 3.0) * (rng.NextBool(0.5) ? 1 : -1)});
    const double exact = DiscRectIntersectionArea(c, r);
    const double mc = MonteCarloArea(c, r, 200000, 4000 + trial);
    const double sigma = r.area() / std::sqrt(200000.0);
    EXPECT_NEAR(exact, mc, 4.0 * sigma + 1e-6)
        << "trial " << trial << " phi=" << phi;
  }
}

TEST(DiscRectAreaTest, MatchesMonteCarloOnRandomConfigurations) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const Circle c{{rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0)},
                   rng.Uniform(0.2, 3.0)};
    const Rect r = Rect::FromCorners(
        {rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)},
        {rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)});
    if (r.area() <= 0.0) continue;
    const double exact = DiscRectIntersectionArea(c, r);
    const double mc = MonteCarloArea(c, r, 200000, 1000 + trial);
    // MC tolerance ~ 3 sigma of the estimator.
    const double sigma = r.area() / std::sqrt(200000.0);
    EXPECT_NEAR(exact, mc, 4.0 * sigma + 1e-6)
        << "trial " << trial << " circle r=" << c.radius;
  }
}

TEST(DiscRectAreaTest, SymmetryUnderTranslation) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const Point shift{rng.Uniform(-10.0, 10.0), rng.Uniform(-10.0, 10.0)};
    const Circle c{{0.3, -0.7}, 1.7};
    const Rect r{-1.0, -0.5, 2.0, 1.5};
    const Circle c2{c.center + shift, c.radius};
    const Rect r2{r.x1 + shift.x, r.y1 + shift.y, r.x2 + shift.x,
                  r.y2 + shift.y};
    EXPECT_NEAR(DiscRectIntersectionArea(c, r),
                DiscRectIntersectionArea(c2, r2), 1e-9);
  }
}

TEST(DiscRectAreaTest, MonotoneInRadius) {
  const Rect r{-1.0, -1.0, 1.5, 2.0};
  double prev = 0.0;
  for (double radius = 0.1; radius < 4.0; radius += 0.1) {
    const double area =
        DiscRectIntersectionArea(Circle{{0.2, 0.3}, radius}, r);
    EXPECT_GE(area, prev - 1e-12);
    prev = area;
  }
  EXPECT_NEAR(prev, r.area(), 1e-9);  // large disc covers the rect
}

}  // namespace
}  // namespace lbsq::geom
