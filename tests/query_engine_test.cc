#include "core/query_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "core/query_workspace.h"
#include "spatial/generators.h"

namespace lbsq::core {
namespace {

const geom::Rect kWorld{0.0, 0.0, 20.0, 20.0};

struct Fixture {
  std::unique_ptr<broadcast::BroadcastSystem> system;
  double poi_density;

  explicit Fixture(int n_pois, uint64_t seed = 1) {
    Rng rng(seed);
    broadcast::BroadcastParams params;
    params.hilbert_order = 5;
    params.bucket_capacity = 8;
    system = std::make_unique<broadcast::BroadcastSystem>(
        spatial::GenerateUniformPois(&rng, kWorld, n_pois), kWorld, params);
    poi_density = static_cast<double>(n_pois) / kWorld.area();
  }

  PeerData PeerWithRegion(geom::Rect region) const {
    VerifiedRegion vr;
    vr.region = region;
    for (const spatial::Poi& p : system->pois()) {
      if (region.Contains(p.pos)) vr.pois.push_back(p);
    }
    return PeerData{{vr}};
  }
};

TEST(QueryEngineTest, KnnExecutionModesMatch) {
  Fixture f(300);
  EngineOptions options;
  options.sbnn.k = 5;
  const QueryEngine engine(*f.system, kWorld, options);
  EXPECT_DOUBLE_EQ(engine.poi_density(), f.poi_density);

  const std::vector<PeerData> peers = {
      f.PeerWithRegion(geom::Rect{6.0, 6.0, 14.0, 14.0})};
  QueryRequest request;
  request.kind = QueryKind::kKnn;
  request.position = {10.0, 10.0};
  request.k = 5;
  request.slot = 17;
  request.peers = peers;
  const QueryOutcome outcome = engine.Execute(request);
  ASSERT_EQ(outcome.kind, QueryKind::kKnn);
  ASSERT_TRUE(outcome.knn.has_value());

  // The workspace form and a single-element batch must agree with the
  // convenience form exactly.
  QueryWorkspace workspace;
  QueryOutcome reused;
  engine.Execute(request, workspace, &reused);
  ASSERT_TRUE(reused.knn.has_value());
  const std::span<const QueryOutcome> batch =
      engine.ExecuteBatch(std::span<const QueryRequest>(&request, 1),
                          workspace);
  ASSERT_EQ(batch.size(), 1u);
  const QueryOutcome* const knn_modes[] = {&reused, &batch[0]};
  for (const QueryOutcome* other : knn_modes) {
    const SbnnOutcome& direct = *other->knn;
    EXPECT_EQ(outcome.knn->resolved_by, direct.resolved_by);
    EXPECT_EQ(outcome.knn->stats.access_latency, direct.stats.access_latency);
    EXPECT_EQ(outcome.knn->stats.tuning_time, direct.stats.tuning_time);
    ASSERT_EQ(outcome.knn->neighbors.size(), direct.neighbors.size());
    for (size_t i = 0; i < direct.neighbors.size(); ++i) {
      EXPECT_EQ(outcome.knn->neighbors[i].poi.id, direct.neighbors[i].poi.id);
    }
    EXPECT_EQ(outcome.ResolvedByPeers(),
              direct.resolved_by != ResolvedBy::kBroadcast);
    EXPECT_EQ(outcome.Stats().access_latency, direct.stats.access_latency);
  }
}

TEST(QueryEngineTest, ZeroKFallsBackToConfiguredDefault) {
  Fixture f(200);
  EngineOptions options;
  options.sbnn.k = 7;
  const QueryEngine engine(*f.system, kWorld, options);

  QueryRequest request;
  request.kind = QueryKind::kKnn;
  request.position = {10.0, 10.0};
  request.k = 0;  // "use the engine's default"
  const QueryOutcome outcome = engine.Execute(request);
  ASSERT_TRUE(outcome.knn.has_value());
  EXPECT_EQ(outcome.knn->neighbors.size(), 7u);
}

TEST(QueryEngineTest, WindowExecutionModesMatch) {
  Fixture f(300);
  const QueryEngine engine(*f.system, kWorld, EngineOptions{});

  const geom::Rect window{8.0, 8.0, 12.0, 12.0};
  QueryRequest request;
  request.kind = QueryKind::kWindow;
  request.window = window;
  request.slot = 5;
  const QueryOutcome outcome = engine.Execute(request);
  ASSERT_EQ(outcome.kind, QueryKind::kWindow);
  ASSERT_TRUE(outcome.window.has_value());
  // The window answer matches the oracle (the engine is the only public
  // entry point, so this doubles as the algorithm-level sanity check).
  const std::vector<spatial::Poi> truth =
      spatial::BruteForceWindow(f.system->pois(), window);
  EXPECT_EQ(outcome.window->pois, truth);

  QueryWorkspace workspace;
  QueryOutcome reused;
  engine.Execute(request, workspace, &reused);
  ASSERT_TRUE(reused.window.has_value());
  const std::span<const QueryOutcome> batch =
      engine.ExecuteBatch(std::span<const QueryRequest>(&request, 1),
                          workspace);
  ASSERT_EQ(batch.size(), 1u);
  const QueryOutcome* const window_modes[] = {&reused, &batch[0]};
  for (const QueryOutcome* other : window_modes) {
    const SbwqOutcome& direct = *other->window;
    EXPECT_EQ(outcome.window->resolved_by_peers, direct.resolved_by_peers);
    EXPECT_EQ(outcome.window->stats.access_latency,
              direct.stats.access_latency);
    ASSERT_EQ(outcome.window->pois.size(), direct.pois.size());
    for (size_t i = 0; i < direct.pois.size(); ++i) {
      EXPECT_EQ(outcome.window->pois[i].id, direct.pois[i].id);
    }
  }
}

TEST(QueryEngineTest, ValidateRejectsBadOptions) {
  Fixture f(50);
  EngineOptions bad_k;
  bad_k.sbnn.k = 0;
  EXPECT_DEATH(QueryEngine(*f.system, kWorld, bad_k), "LBSQ_CHECK");

  EngineOptions bad_correctness;
  bad_correctness.sbnn.min_correctness = 1.5;
  EXPECT_DEATH(QueryEngine(*f.system, kWorld, bad_correctness), "LBSQ_CHECK");

  EngineOptions bad_prefetch;
  bad_prefetch.sbnn.prefetch_radius_factor = 0.5;
  EXPECT_DEATH(QueryEngine(*f.system, kWorld, bad_prefetch), "LBSQ_CHECK");
}

TEST(QueryEngineTest, TraceRecordsBroadcastSpans) {
  if (!obs::kObservabilityCompiledIn) GTEST_SKIP();
  Fixture f(300);
  EngineOptions options;
  options.sbnn.accept_approximate = false;
  const QueryEngine engine(*f.system, kWorld, options);

  obs::TraceRecorder trace;
  trace.Reset(1, 0, "knn");
  QueryRequest request;
  request.kind = QueryKind::kKnn;
  request.position = {10.0, 10.0};
  request.slot = 0;
  request.trace = &trace;
  const QueryOutcome outcome = engine.Execute(request);
  ASSERT_EQ(outcome.knn->resolved_by, ResolvedBy::kBroadcast);

  bool saw_nnv = false, saw_fallback = false, saw_probe = false;
  for (const obs::TraceEvent& event : trace.events()) {
    if (std::string(event.name) == "sbnn.nnv") saw_nnv = true;
    if (std::string(event.name) == "sbnn.fallback") saw_fallback = true;
    if (std::string(event.name) == "bcast.probe") saw_probe = true;
  }
  EXPECT_TRUE(saw_nnv);
  EXPECT_TRUE(saw_fallback);
  EXPECT_TRUE(saw_probe);
}

}  // namespace
}  // namespace lbsq::core
