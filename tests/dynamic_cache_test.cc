#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "engine_shim.h"
#include "core/peer_cache.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "core/verified_region.h"
#include "dynamic/dynamic_engine.h"
#include "dynamic/update_log.h"
#include "dynamic/world_versioner.h"
#include "fault/peer_faults.h"
#include "spatial/generators.h"

/// Cross-epoch peer-cache sharing. A cached verified region is complete
/// only with respect to the POI database of the epoch it was verified on;
/// when it is shared into a query pinned to a different epoch it must be
/// revalidated (kept iff no separating update touched it) or rejected.
/// The same completeness oracle also judges fault-injected stale regions
/// (fault/peer_faults), so epoch drift and link corruption are held to one
/// standard: a region may be served only if it is complete w.r.t. the
/// snapshot the query executes against.

namespace lbsq {
namespace {

using core::PeerData;
using core::VerifiedRegion;
using spatial::Poi;

/// The shared oracle: `vr` is complete and exact w.r.t. `server` — every
/// server POI inside the region is cached at its server position, and
/// every cached POI matches a server POI. This is the precondition of
/// Lemma 3.1; both the epoch revalidator and the fault screen exist to
/// keep regions that violate it away from queries.
bool RegionCompleteOn(const std::vector<Poi>& server,
                      const VerifiedRegion& vr) {
  for (const Poi& p : server) {
    if (!vr.region.Contains(p.pos)) continue;
    const bool present = std::any_of(
        vr.pois.begin(), vr.pois.end(),
        [&p](const Poi& c) { return c.id == p.id && c.pos == p.pos; });
    if (!present) return false;
  }
  for (const Poi& c : vr.pois) {
    const bool matches = std::any_of(
        server.begin(), server.end(),
        [&c](const Poi& p) { return p.id == c.id && p.pos == c.pos; });
    if (!matches) return false;
  }
  return true;
}

VerifiedRegion CompleteRegionOn(const std::vector<Poi>& server,
                                geom::Rect region, uint64_t epoch) {
  VerifiedRegion vr;
  vr.region = region;
  vr.epoch = epoch;
  for (const Poi& p : server) {
    if (region.Contains(p.pos)) vr.pois.push_back(p);
  }
  return vr;
}

TEST(DynamicCacheTest, CacheEntriesCarryTheirEpochTag) {
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  Rng rng(101);
  std::vector<Poi> pois = spatial::GenerateUniformPois(&rng, world, 120);
  broadcast::BroadcastParams params;
  params.bucket_capacity = 8;
  dynamic::WorldVersioner versioner(pois, world, params, {});

  // Run one broadcast-path query per epoch as the world advances and cache
  // its outcome: the cacheable region must carry the serving epoch through
  // engine stamping, PeerCache insertion, capacity shrinking, and Share().
  core::PeerCache cache(400, 8);
  core::QueryWorkspace ws;
  core::QueryOutcome outcome;
  for (uint64_t e = 0; e <= 2; ++e) {
    const std::shared_ptr<const dynamic::WorldEpoch> epoch =
        versioner.Current();
    ASSERT_EQ(epoch->id, e);
    core::QueryRequest request;
    request.kind = core::QueryKind::kKnn;
    request.position = {2.0 + 3.0 * static_cast<double>(e), 5.0};
    request.k = 4;
    epoch->engine->Execute(request, ws, &outcome);
    EXPECT_EQ(outcome.Cacheable().epoch, e);
    cache.Insert(outcome.Cacheable(), request.position, request.position,
                 {1.0, 0.0});
    versioner.Apply({dynamic::PoiUpdate{
        dynamic::PoiUpdate::Kind::kInsert,
        static_cast<int64_t>(5000 + e), {1.0, 1.0}, {}}});
  }
  ASSERT_FALSE(cache.entries().empty());
  const PeerData shared = cache.Share();
  ASSERT_EQ(shared.regions.size(), cache.entries().size());
  uint64_t max_epoch = 0;
  for (size_t i = 0; i < shared.regions.size(); ++i) {
    // Share() preserves each entry's tag exactly.
    EXPECT_EQ(shared.regions[i].epoch, cache.entries()[i].epoch);
    max_epoch = std::max(max_epoch, shared.regions[i].epoch);
  }
  // Entries verified on distinct epochs coexist, each keeping its own tag.
  EXPECT_GT(max_epoch, 0u);
}

TEST(DynamicCacheTest, RevalidationKeepsCleanRegionsRejectsDirtyOnes) {
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  Rng rng(202);
  std::vector<Poi> pois = spatial::GenerateUniformPois(&rng, world, 150);
  broadcast::BroadcastParams params;
  dynamic::WorldVersioner versioner(pois, world, params, {});
  const std::vector<Poi> epoch0 = versioner.Current()->pois;

  // Two epoch-0 regions: `clean` in the top-right, `dirty` in the
  // bottom-left where the update batch will land.
  const geom::Rect clean_rect{6.0, 6.0, 9.0, 9.0};
  const geom::Rect dirty_rect{1.0, 1.0, 4.0, 4.0};
  PeerData peer;
  peer.regions.push_back(CompleteRegionOn(epoch0, clean_rect, 0));
  peer.regions.push_back(CompleteRegionOn(epoch0, dirty_rect, 0));

  // Epoch 1: one insert inside the dirty rect, far from the clean one.
  versioner.Apply({dynamic::PoiUpdate{dynamic::PoiUpdate::Kind::kInsert,
                                      7000, {2.0, 2.0}, {}}});

  std::vector<PeerData> peers{peer};
  const dynamic::RevalidationStats stats =
      dynamic::RevalidatePeerData(versioner, 1, &peers);
  EXPECT_EQ(stats.revalidated, 1);
  EXPECT_EQ(stats.rejected, 1);
  ASSERT_EQ(peers[0].regions.size(), 1u);
  EXPECT_EQ(peers[0].regions[0].region.x1, clean_rect.x1);
  // The survivor is retagged to the pinned epoch and satisfies the oracle
  // on the pinned snapshot.
  EXPECT_EQ(peers[0].regions[0].epoch, 1u);
  EXPECT_TRUE(RegionCompleteOn(versioner.Current()->pois, peers[0].regions[0]));

  // Same-epoch regions are never touched.
  std::vector<PeerData> fresh{PeerData{
      {CompleteRegionOn(versioner.Current()->pois, dirty_rect, 1)}}};
  const dynamic::RevalidationStats none =
      dynamic::RevalidatePeerData(versioner, 1, &fresh);
  EXPECT_EQ(none.revalidated, 0);
  EXPECT_EQ(none.rejected, 0);
  EXPECT_EQ(fresh[0].regions.size(), 1u);
}

// Randomized sweep of the revalidation soundness contract: gather regions
// verified on arbitrary historical epochs, revalidate against the latest,
// and require every survivor to satisfy the completeness oracle on the
// pinned snapshot. Rejection is allowed to be conservative (a dirty batch
// elsewhere in the region is grounds for rejection even if no POI actually
// changed); serving an incomplete region is not.
TEST(DynamicCacheTest, SurvivorsOfRevalidationAlwaysSatisfyTheOracle) {
  Rng rng(303);
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  int64_t survivors = 0;
  int64_t rejected = 0;
  for (int config = 0; config < 30; ++config) {
    const int n = static_cast<int>(rng.UniformInt(30, 150));
    std::vector<Poi> pois = spatial::GenerateUniformPois(&rng, world, n);
    broadcast::BroadcastParams params;
    dynamic::WorldVersioner versioner(pois, world, params, {},
                                      /*retain_history=*/true);
    int64_t next_id = 900000;

    // Regions captured per epoch, complete w.r.t. that epoch's snapshot.
    std::vector<PeerData> gathered;
    const int epochs = static_cast<int>(rng.UniformInt(1, 6));
    for (int e = 0; e <= epochs; ++e) {
      const std::vector<Poi>& snapshot = versioner.Current()->pois;
      PeerData peer;
      const int n_regions = static_cast<int>(rng.UniformInt(1, 4));
      for (int r = 0; r < n_regions; ++r) {
        const geom::Point c{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
        VerifiedRegion vr = CompleteRegionOn(
            snapshot, geom::Rect::CenteredSquare(c, rng.Uniform(0.3, 2.0)),
            versioner.latest_epoch());
        if (!vr.pois.empty()) peer.regions.push_back(std::move(vr));
      }
      if (!peer.regions.empty()) gathered.push_back(std::move(peer));
      if (e == epochs) break;
      // Random batch: inserts, deletes, moves against the live snapshot.
      std::vector<dynamic::PoiUpdate> batch;
      const int ops = static_cast<int>(rng.UniformInt(1, 5));
      const std::vector<Poi>& live = versioner.Current()->pois;
      for (int op = 0; op < ops; ++op) {
        dynamic::PoiUpdate u;
        const double kind = rng.NextDouble();
        if (kind < 0.35 && !live.empty()) {
          u.kind = dynamic::PoiUpdate::Kind::kDelete;
          u.id = live[rng.NextBelow(live.size())].id;
        } else if (kind < 0.65 && !live.empty()) {
          u.kind = dynamic::PoiUpdate::Kind::kMove;
          u.id = live[rng.NextBelow(live.size())].id;
          u.pos = {rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
        } else {
          u.kind = dynamic::PoiUpdate::Kind::kInsert;
          u.id = next_id++;
          u.pos = {rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
        }
        batch.push_back(u);
      }
      versioner.Apply(std::move(batch));
    }

    const uint64_t pinned = versioner.latest_epoch();
    const std::vector<Poi>& pinned_pois = versioner.Current()->pois;
    const dynamic::RevalidationStats stats =
        dynamic::RevalidatePeerData(versioner, pinned, &gathered);
    rejected += stats.rejected;
    for (const PeerData& peer : gathered) {
      for (const VerifiedRegion& vr : peer.regions) {
        EXPECT_EQ(vr.epoch, pinned);
        EXPECT_TRUE(RegionCompleteOn(pinned_pois, vr)) << "config " << config;
        ++survivors;
      }
    }
  }
  // The sweep must exercise both outcomes.
  EXPECT_GT(survivors, 50);
  EXPECT_GT(rejected, 20);
}

// The fault-injection staleness path is held to the same oracle: a region
// that CorruptPeerData marked stale (drifted POI positions — the peer
// cached an old world) fails RegionCompleteOn against the live snapshot,
// exactly like a cross-epoch region the revalidator rejects. One oracle,
// two staleness sources.
TEST(DynamicCacheTest, FaultInjectedStaleRegionsFailTheSharedOracle) {
  Rng rng(404);
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  std::vector<Poi> pois = spatial::GenerateUniformPois(&rng, world, 200);

  fault::PeerFaultConfig config;
  config.stale_prob = 1.0;
  config.stale_drift = 0.2;

  int stale_and_incomplete = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point c{rng.Uniform(1.0, 9.0), rng.Uniform(1.0, 9.0)};
    VerifiedRegion vr =
        CompleteRegionOn(pois, geom::Rect::CenteredSquare(c, 1.5), 0);
    if (vr.pois.empty()) continue;
    ASSERT_TRUE(RegionCompleteOn(pois, vr));

    std::vector<PeerData> peers{PeerData{{vr}}};
    Rng fault_rng(9000 + static_cast<uint64_t>(trial));
    const fault::PeerFaultStats stats =
        fault::CorruptPeerData(config, &fault_rng, &peers);
    ASSERT_EQ(stats.regions_stale, 1);
    if (!RegionCompleteOn(pois, peers[0].regions[0])) ++stale_and_incomplete;
  }
  // Drifted positions must be caught by the oracle (every non-empty region
  // has at least one moved POI).
  EXPECT_GT(stale_and_incomplete, 15);
}

}  // namespace
}  // namespace lbsq
