#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "core/nnv.h"
#include "core/peer_cache.h"
#include "core/sbnn.h"
#include "core/sbwq.h"
#include "engine_shim.h"
#include "spatial/generators.h"

/// Degenerate and adversarial configurations: peers with nothing useful,
/// empty databases, one-object worlds, queries outside all knowledge, and
/// stale-looking (but honest) caches. The system must stay sound and never
/// crash — approximate quality may degrade, correctness may not.

namespace lbsq {
namespace {

using core::PeerData;
using core::VerifiedRegion;
using spatial::Poi;

const geom::Rect kWorld{0.0, 0.0, 20.0, 20.0};

std::unique_ptr<broadcast::BroadcastSystem> MakeSystem(
    std::vector<Poi> pois) {
  broadcast::BroadcastParams params;
  params.hilbert_order = 4;
  return std::make_unique<broadcast::BroadcastSystem>(std::move(pois), kWorld,
                                                      params);
}

TEST(FailureInjectionTest, SingleObjectDatabase) {
  auto system = MakeSystem({Poi{0, {5.0, 5.0}}});
  core::SbnnOptions options;
  options.k = 3;
  const auto outcome =
      core::RunSbnn({10.0, 10.0}, options, {}, 0.01, *system, 0);
  ASSERT_EQ(outcome.neighbors.size(), 1u);
  EXPECT_EQ(outcome.neighbors[0].poi.id, 0);
}

TEST(FailureInjectionTest, EmptyDatabaseWindowQuery) {
  auto system = MakeSystem({});
  const auto outcome =
      core::RunSbwq(geom::Rect{1.0, 1.0, 5.0, 5.0}, {}, {}, *system, 0);
  EXPECT_TRUE(outcome.pois.empty());
}

TEST(FailureInjectionTest, PeersWithEmptyRegions) {
  Rng rng(1);
  auto system = MakeSystem(spatial::GenerateUniformPois(&rng, kWorld, 100));
  // Peers that respond with zero regions must be harmless.
  std::vector<PeerData> peers(5);
  core::SbnnOptions options;
  options.k = 4;
  const auto outcome =
      core::RunSbnn({10.0, 10.0}, options, peers, 0.25, *system, 0);
  const auto truth = spatial::BruteForceKnn(system->pois(), {10.0, 10.0}, 4);
  ASSERT_EQ(outcome.neighbors.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(outcome.neighbors[i].poi.id, truth[i].poi.id);
  }
}

TEST(FailureInjectionTest, PeerRegionFarFromQuery) {
  Rng rng(2);
  auto system = MakeSystem(spatial::GenerateUniformPois(&rng, kWorld, 150));
  VerifiedRegion vr;
  vr.region = geom::Rect{0.0, 0.0, 2.0, 2.0};
  for (const Poi& p : system->pois()) {
    if (vr.region.Contains(p.pos)) vr.pois.push_back(p);
  }
  core::SbnnOptions options;
  options.k = 3;
  options.accept_approximate = false;
  // Query on the opposite corner: nothing verifiable, exact via broadcast.
  const auto outcome = core::RunSbnn({19.0, 19.0}, options, {PeerData{{vr}}},
                                     150.0 / 400.0, *system, 0);
  EXPECT_EQ(outcome.resolved_by, core::ResolvedBy::kBroadcast);
  const auto truth = spatial::BruteForceKnn(system->pois(), {19.0, 19.0}, 3);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(outcome.neighbors[i].poi.id, truth[i].poi.id);
  }
}

TEST(FailureInjectionTest, PeerWithRegionButNoPois) {
  // An honest peer whose verified region genuinely holds no POIs. Its
  // emptiness is information: it proves the region contains nothing.
  Rng rng(3);
  std::vector<Poi> pois = {{0, {15.0, 15.0}}};
  auto system = MakeSystem(pois);
  VerifiedRegion vr;
  vr.region = geom::Rect{0.0, 0.0, 10.0, 10.0};  // empty of POIs, honestly
  core::SbnnOptions options;
  options.k = 1;
  options.accept_approximate = false;
  const auto outcome = core::RunSbnn({5.0, 5.0}, options, {PeerData{{vr}}},
                                     0.0025, *system, 0);
  // The only POI is outside the verified region; nothing verified, exact
  // fallback.
  ASSERT_EQ(outcome.neighbors.size(), 1u);
  EXPECT_EQ(outcome.neighbors[0].poi.id, 0);
}

TEST(FailureInjectionTest, WindowEntirelyOutsideWorld) {
  Rng rng(4);
  auto system = MakeSystem(spatial::GenerateUniformPois(&rng, kWorld, 80));
  const auto outcome = core::RunSbwq(geom::Rect{50.0, 50.0, 55.0, 55.0}, {},
                                     {}, *system, 0);
  EXPECT_TRUE(outcome.pois.empty());
}

TEST(FailureInjectionTest, ZeroCapacityCacheNeverStores) {
  Rng rng(5);
  const auto server = spatial::GenerateUniformPois(&rng, kWorld, 100);
  core::PeerCache cache(0);
  for (int i = 0; i < 20; ++i) {
    const geom::Point c{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
    VerifiedRegion vr;
    vr.region = geom::Rect::CenteredSquare(c, 1.0);
    for (const Poi& p : server) {
      if (vr.region.Contains(p.pos)) vr.pois.push_back(p);
    }
    cache.Insert(vr, c, c, {1.0, 0.0});
  }
  EXPECT_EQ(cache.TotalPois(), 0);
}

TEST(FailureInjectionTest, NnvWithZeroDensityGivesFullConfidence) {
  // poi_density 0 means "no other POI can exist": every unverified entry
  // gets correctness 1.
  const std::vector<Poi> server = {{0, {3.0, 0.0}}};
  VerifiedRegion vr;
  vr.region = geom::Rect{-1.0, -1.0, 1.0, 1.0};
  PeerData peer{{vr}};
  peer.regions[0].pois.push_back(server[0]);  // known but outside the region
  const auto result = core::NearestNeighborVerify({0.0, 0.0}, 1, {peer}, 0.0);
  ASSERT_EQ(result.heap.entries().size(), 1u);
  EXPECT_FALSE(result.heap.entries()[0].verified);
  EXPECT_DOUBLE_EQ(result.heap.entries()[0].correctness, 1.0);
}

TEST(FailureInjectionTest, ManyPeersWithIdenticalRegions) {
  Rng rng(6);
  auto system = MakeSystem(spatial::GenerateUniformPois(&rng, kWorld, 200));
  VerifiedRegion vr;
  vr.region = geom::Rect{8.0, 8.0, 12.0, 12.0};
  for (const Poi& p : system->pois()) {
    if (vr.region.Contains(p.pos)) vr.pois.push_back(p);
  }
  std::vector<PeerData> peers(40, PeerData{{vr}});
  core::SbnnOptions options;
  options.k = 2;
  const auto outcome =
      core::RunSbnn({10.0, 10.0}, options, peers, 0.5, *system, 0);
  const auto truth = spatial::BruteForceKnn(system->pois(), {10.0, 10.0}, 2);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(outcome.neighbors[i].poi.id, truth[i].poi.id);
  }
}

TEST(FailureInjectionTest, QueryAtWorldCorner) {
  Rng rng(7);
  auto system = MakeSystem(spatial::GenerateUniformPois(&rng, kWorld, 120));
  core::SbnnOptions options;
  options.k = 5;
  const auto outcome =
      core::RunSbnn({0.0, 0.0}, options, {}, 0.3, *system, 0);
  const auto truth = spatial::BruteForceKnn(system->pois(), {0.0, 0.0}, 5);
  ASSERT_EQ(outcome.neighbors.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(outcome.neighbors[i].poi.id, truth[i].poi.id);
  }
}

TEST(FailureInjectionTest, DishonestPeerBreaksVerification) {
  // The system's trust model, demonstrated: NNV is only as sound as the
  // peers' completeness invariant. A peer claiming a verified region while
  // silently omitting a POI inside it makes NNV "verify" a wrong neighbor —
  // exactly the failure mode the collective-MBR cache policy produces and
  // the reason the sound shrink policy is the default.
  const std::vector<Poi> server = {{0, {0.2, 0.0}}, {1, {1.0, 0.0}}};
  VerifiedRegion lying;
  lying.region = geom::Rect{-2.0, -2.0, 2.0, 2.0};
  lying.pois.push_back(server[1]);  // omits POI 0, which is inside
  const auto result =
      core::NearestNeighborVerify({0.0, 0.0}, 1, {PeerData{{lying}}}, 0.1);
  ASSERT_EQ(result.heap.entries().size(), 1u);
  EXPECT_TRUE(result.heap.entries()[0].verified);   // NNV believes the peer
  EXPECT_EQ(result.heap.entries()[0].poi.id, 1);    // ...and is wrong
}

TEST(FailureInjectionTest, LossyChannelPreservesExactness) {
  // Packet loss delays queries but never corrupts results: retries fetch
  // the same buckets.
  Rng rng(9);
  auto system = MakeSystem(spatial::GenerateUniformPois(&rng, kWorld, 150));
  const auto needed = onair::BucketsForWindow(
      *system, geom::Rect{5.0, 5.0, 12.0, 12.0},
      onair::WindowRetrieval::kSingleSpan);
  Rng loss_rng(10);
  const auto stats = broadcast::RetrieveBucketsLossy(
      system->schedule(), 3, needed, 0.5, &loss_rng);
  EXPECT_EQ(stats.buckets_read, static_cast<int64_t>(needed.size()));
  // The payload a client assembles is identical regardless of retries.
  const auto pois = system->CollectPois(needed);
  const auto truth = spatial::BruteForceWindow(
      system->pois(), geom::Rect{5.0, 5.0, 12.0, 12.0});
  for (const auto& t : truth) {
    EXPECT_TRUE(std::any_of(pois.begin(), pois.end(), [&t](const Poi& p) {
      return p.id == t.id;
    }));
  }
}

TEST(FailureInjectionTest, DegenerateZeroAreaWindow) {
  Rng rng(8);
  auto system = MakeSystem(spatial::GenerateUniformPois(&rng, kWorld, 60));
  const geom::Rect line{5.0, 5.0, 5.0, 9.0};  // zero width
  const auto outcome = core::RunSbwq(line, {}, {}, *system, 0);
  EXPECT_EQ(outcome.pois, spatial::BruteForceWindow(system->pois(), line));
}

}  // namespace
}  // namespace lbsq
