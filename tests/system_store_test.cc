// SystemBuilder store round trips: WriteStore / OpenFromStore state
// identity (answer digests over the Table 3 LA workload must be
// bit-identical between a fresh build and a cold open, over both storage
// backends), plus the typed rejection paths.

#include "storage/system_builder.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/metrics.h"
#include "spatial/generators.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"

namespace lbsq::storage {
namespace {

// Table 3, Los Angeles City: 2750 POIs over a 20 x 20 mi world, k = 5,
// 3% windows.
constexpr double kWorldSide = 20.0;
constexpr int kPoiNumber = 2750;
constexpr int kKnnK = 5;
constexpr uint64_t kDatasetTag = 0x1a2b3c4d5e6f7081ull;

const geom::Rect kWorld{0.0, 0.0, kWorldSide, kWorldSide};

std::vector<spatial::Poi> LaPois(uint64_t seed = 1) {
  Rng rng(seed);
  return spatial::GenerateUniformPois(&rng, kWorld, kPoiNumber);
}

SystemBuilder LaBuilder(int shards = 1) {
  SystemBuilder builder(kWorld, broadcast::BroadcastParams{});
  builder.SetShards(shards).SetDatasetTag(kDatasetTag);
  return builder;
}

/// Folds every bit of the answer plane — neighbor ids and distances,
/// window POI sets — plus the cost stats of a deterministic LA query mix
/// into one FNV digest. Two engines share the digest iff they answer the
/// whole workload bit-identically.
uint64_t WorkloadDigest(const core::ShardedQueryEngine& engine) {
  Rng rng(13);
  const double window_side = kWorldSide * std::sqrt(0.03);
  uint64_t acc = 1469598103934665603ull;  // FNV-1a offset basis
  for (int i = 0; i < 300; ++i) {
    const geom::Point q{rng.Uniform(0.0, kWorldSide),
                        rng.Uniform(0.0, kWorldSide)};
    core::QueryRequest request;
    request.slot = static_cast<int64_t>(rng.NextBelow(100000));
    if (i % 2 == 0) {
      request.kind = core::QueryKind::kKnn;
      request.position = q;
      request.k = kKnnK;
      const core::QueryOutcome outcome = engine.Execute(request);
      for (const spatial::PoiDistance& n : outcome.knn->neighbors) {
        acc = sim::DigestFold(acc, static_cast<uint64_t>(n.poi.id));
        acc = sim::DigestFold(acc, std::bit_cast<uint64_t>(n.distance));
      }
      acc = sim::DigestFold(
          acc, static_cast<uint64_t>(outcome.knn->stats.access_latency));
      acc = sim::DigestFold(
          acc, static_cast<uint64_t>(outcome.knn->stats.tuning_time));
    } else {
      request.kind = core::QueryKind::kWindow;
      request.window = geom::Rect::CenteredSquare(q, window_side / 2.0);
      const core::QueryOutcome outcome = engine.Execute(request);
      for (const spatial::Poi& p : outcome.window->pois) {
        acc = sim::DigestFold(acc, static_cast<uint64_t>(p.id));
        acc = sim::DigestFold(acc, std::bit_cast<uint64_t>(p.pos.x));
        acc = sim::DigestFold(acc, std::bit_cast<uint64_t>(p.pos.y));
      }
      acc = sim::DigestFold(
          acc, static_cast<uint64_t>(outcome.window->stats.buckets_read));
    }
  }
  return acc;
}

TEST(SystemStoreTest, MemoryRoundTripIsStateIdentical) {
  const SystemBuilder builder = LaBuilder();
  const auto built = builder.BuildFromPois(LaPois());

  MemoryStorageManager store;
  ASSERT_TRUE(builder.WriteStore(*built, &store));
  EXPECT_EQ(store.meta().dataset_digest, kDatasetTag);
  EXPECT_EQ(store.meta().poi_count, static_cast<uint64_t>(kPoiNumber));

  OpenStatus status = OpenStatus::kIoError;
  const auto opened = builder.OpenFromStore(store, /*pool=*/nullptr, &status);
  ASSERT_NE(opened, nullptr) << OpenStatusName(status);
  EXPECT_EQ(status, OpenStatus::kOk);

  // Structural identity: same POIs in the same order, same channel shape.
  ASSERT_EQ(opened->total_pois(), built->total_pois());
  const broadcast::BroadcastSystem& a = *built->shard_system(0);
  const broadcast::BroadcastSystem& b = *opened->shard_system(0);
  ASSERT_EQ(a.pois().size(), b.pois().size());
  for (size_t i = 0; i < a.pois().size(); ++i) {
    EXPECT_TRUE(a.pois()[i] == b.pois()[i]) << i;
  }
  EXPECT_EQ(a.buckets().size(), b.buckets().size());
  EXPECT_EQ(a.schedule().cycle_length(), b.schedule().cycle_length());

  // Answer identity: the Table 3 workload digests bit-identically.
  EXPECT_EQ(WorkloadDigest(*built), WorkloadDigest(*opened));
}

TEST(SystemStoreTest, ShardedRoundTripIsStateIdentical) {
  const SystemBuilder builder = LaBuilder(/*shards=*/4);
  const auto built = builder.BuildFromPois(LaPois());

  MemoryStorageManager store;
  ASSERT_TRUE(builder.WriteStore(*built, &store));
  OpenStatus status = OpenStatus::kIoError;
  const auto opened = builder.OpenFromStore(store, /*pool=*/nullptr, &status);
  ASSERT_NE(opened, nullptr) << OpenStatusName(status);

  ASSERT_EQ(opened->num_shards(), 4);
  EXPECT_EQ(opened->total_pois(), built->total_pois());
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(opened->shard_poi_count(s), built->shard_poi_count(s)) << s;
  }
  EXPECT_EQ(WorkloadDigest(*built), WorkloadDigest(*opened));
}

TEST(SystemStoreTest, FileBackendColdOpenThroughTinyPool) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "la.lbsq").string();
  const SystemBuilder builder = LaBuilder();
  const auto built = builder.BuildFromPois(LaPois());
  {
    auto store = FileStorageManager::Create(path, kDefaultPageSize);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(builder.WriteStore(*built, store.get()));
  }

  OpenStatus status = OpenStatus::kIoError;
  auto store = FileStorageManager::Open(path, &status);
  ASSERT_NE(store, nullptr) << OpenStatusName(status);

  // A 2-frame pool forces evictions while the open streams the blobs.
  BufferPool pool(store.get(), 2);
  const auto opened = builder.OpenFromStore(*store, &pool, &status);
  ASSERT_NE(opened, nullptr) << OpenStatusName(status);
  EXPECT_GT(pool.misses(), 0u);
  EXPECT_GT(pool.evictions(), 0u);

  EXPECT_EQ(WorkloadDigest(*built), WorkloadDigest(*opened));
}

TEST(SystemStoreTest, RejectsDatasetMismatch) {
  const SystemBuilder builder = LaBuilder();
  const auto built = builder.BuildFromPois(LaPois());
  MemoryStorageManager store;
  ASSERT_TRUE(builder.WriteStore(*built, &store));

  SystemBuilder other(kWorld, broadcast::BroadcastParams{});
  other.SetDatasetTag(kDatasetTag + 1);
  OpenStatus status = OpenStatus::kOk;
  EXPECT_EQ(other.OpenFromStore(store, nullptr, &status), nullptr);
  EXPECT_EQ(status, OpenStatus::kDatasetMismatch);
}

TEST(SystemStoreTest, RejectsParamsMismatch) {
  const SystemBuilder builder = LaBuilder();
  const auto built = builder.BuildFromPois(LaPois());
  MemoryStorageManager store;
  ASSERT_TRUE(builder.WriteStore(*built, &store));
  OpenStatus status = OpenStatus::kOk;

  // Different channel organization (m).
  broadcast::BroadcastParams different_m;
  different_m.m += 1;
  SystemBuilder m_builder(kWorld, different_m);
  m_builder.SetDatasetTag(kDatasetTag);
  EXPECT_EQ(m_builder.OpenFromStore(store, nullptr, &status), nullptr);
  EXPECT_EQ(status, OpenStatus::kParamsMismatch);

  // Different world rectangle.
  SystemBuilder world_builder(geom::Rect{0.0, 0.0, 10.0, 10.0},
                              broadcast::BroadcastParams{});
  world_builder.SetDatasetTag(kDatasetTag);
  EXPECT_EQ(world_builder.OpenFromStore(store, nullptr, &status), nullptr);
  EXPECT_EQ(status, OpenStatus::kParamsMismatch);

  // Different shard count.
  SystemBuilder shard_builder = LaBuilder(/*shards=*/2);
  EXPECT_EQ(shard_builder.OpenFromStore(store, nullptr, &status), nullptr);
  EXPECT_EQ(status, OpenStatus::kParamsMismatch);
}

TEST(SystemStoreTest, RejectsCorruptedBlob) {
  const SystemBuilder builder = LaBuilder();
  const auto built = builder.BuildFromPois(LaPois());
  MemoryStorageManager store;
  ASSERT_TRUE(builder.WriteStore(*built, &store));

  // Flip the first payload byte of the first blob page (right past the
  // 8-byte chain pointer — inside every blob's live range): its CRC breaks.
  std::vector<uint8_t> page(store.page_size());
  store.ReadPage(1, page.data());
  page[8] ^= 0x01;
  store.WritePage(1, page.data());

  OpenStatus status = OpenStatus::kOk;
  EXPECT_EQ(builder.OpenFromStore(store, nullptr, &status), nullptr);
  EXPECT_EQ(status, OpenStatus::kBadBlob);
}

}  // namespace
}  // namespace lbsq::storage
