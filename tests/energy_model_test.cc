#include "analysis/energy_model.h"

#include <gtest/gtest.h>

namespace lbsq::analysis {
namespace {

TEST(EnergyModelTest, HandComputedValue) {
  RadioPowerModel model;
  model.active_rx_watts = 1.0;
  model.doze_watts = 0.1;
  model.slot_seconds = 0.02;
  // 10 slots tuned, 90 dozing.
  broadcast::AccessStats stats{100, 10, 5};
  EXPECT_NEAR(QueryEnergyJoules(model, stats),
              10 * 0.02 * 1.0 + 90 * 0.02 * 0.1, 1e-12);
}

TEST(EnergyModelTest, ZeroCostQueryIsFree) {
  RadioPowerModel model;
  broadcast::AccessStats stats{0, 0, 0};
  EXPECT_EQ(QueryEnergyJoules(model, stats), 0.0);
}

TEST(EnergyModelTest, IndexSavesEnergyVersusAlwaysOn) {
  // The entire point of the air index: dozing between known slots beats
  // listening continuously whenever tuning < latency.
  RadioPowerModel model;
  broadcast::AccessStats stats{400, 25, 20};
  EXPECT_LT(QueryEnergyJoules(model, stats),
            AlwaysOnEnergyJoules(model, stats) / 5.0);
}

TEST(EnergyModelTest, MonotoneInTuning) {
  RadioPowerModel model;
  double prev = -1.0;
  for (int64_t tuning = 0; tuning <= 100; tuning += 20) {
    broadcast::AccessStats stats{100, tuning, tuning};
    const double joules = QueryEnergyJoules(model, stats);
    EXPECT_GT(joules, prev);
    prev = joules;
  }
}

}  // namespace
}  // namespace lbsq::analysis
