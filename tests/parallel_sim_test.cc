#include "sim/parallel_simulator.h"

#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/simulator.h"

// The parallel engine's two contracts, tested differentially:
//  1. Thread-count invariance: for a fixed config + seed, metrics are
//     bitwise identical at any thread count (the operator== below compares
//     every counter and every floating-point accumulator moment exactly).
//  2. Sequential equivalence: with events_per_epoch = 1 the epoch snapshot
//     is always fresh, so the parallel engine reproduces the sequential
//     Simulator bit-for-bit — at any thread count.
// The suite doubles as the ThreadSanitizer workload for the engine: every
// test drives real multi-threaded epochs (build with -DLBSQ_SANITIZE=thread).

namespace lbsq::sim {
namespace {

SimConfig SmallConfig(QueryType type) {
  SimConfig config;
  config.params = LosAngelesCity();
  config.query_type = type;
  config.world_side_mi = 1.0;
  config.warmup_min = 8.0;
  config.duration_min = 8.0;
  config.seed = 7;
  return config;
}

SimMetrics RunWithThreads(SimConfig config, int threads) {
  config.threads = threads;
  ParallelSimulator sim(config);
  return sim.Run();
}

TEST(ParallelSimTest, ThreadCountInvarianceKnn) {
  const SimConfig config = SmallConfig(QueryType::kKnn);
  const SimMetrics one = RunWithThreads(config, 1);
  EXPECT_GT(one.queries, 50);
  EXPECT_EQ(one, RunWithThreads(config, 2));
  EXPECT_EQ(one, RunWithThreads(config, 8));
}

TEST(ParallelSimTest, ThreadCountInvarianceWindow) {
  const SimConfig config = SmallConfig(QueryType::kWindow);
  const SimMetrics one = RunWithThreads(config, 1);
  EXPECT_GT(one.queries, 50);
  EXPECT_EQ(one, RunWithThreads(config, 2));
  EXPECT_EQ(one, RunWithThreads(config, 8));
}

TEST(ParallelSimTest, ThreadCountInvarianceMixed) {
  const SimConfig config = SmallConfig(QueryType::kMixed);
  const SimMetrics one = RunWithThreads(config, 1);
  EXPECT_GT(one.queries, 50);
  EXPECT_EQ(one, RunWithThreads(config, 2));
  EXPECT_EQ(one, RunWithThreads(config, 8));
}

TEST(ParallelSimTest, ThreadCountInvarianceAcrossEpochSizes) {
  SimConfig config = SmallConfig(QueryType::kMixed);
  for (int epoch : {1, 5, 200}) {
    config.events_per_epoch = epoch;
    EXPECT_EQ(RunWithThreads(config, 1), RunWithThreads(config, 8))
        << "epoch " << epoch;
  }
}

TEST(ParallelSimTest, EpochOneMatchesSequentialEngine) {
  for (QueryType type :
       {QueryType::kKnn, QueryType::kWindow, QueryType::kMixed}) {
    SimConfig config = SmallConfig(type);
    config.events_per_epoch = 1;
    Simulator sequential(config);
    const SimMetrics expected = sequential.Run();
    EXPECT_EQ(expected, RunWithThreads(config, 1));
    EXPECT_EQ(expected, RunWithThreads(config, 4));
  }
}

TEST(ParallelSimTest, EpochSizeChangesSemanticsNotValidity) {
  // Larger epochs serve staler peer data — a different (still valid)
  // simulation, not a broken one. The resolved-by breakdown must stay
  // consistent; the exact split may differ from the sequential engine's.
  SimConfig config = SmallConfig(QueryType::kKnn);
  config.events_per_epoch = 64;
  const SimMetrics metrics = RunWithThreads(config, 4);
  EXPECT_GT(metrics.queries, 50);
  EXPECT_EQ(metrics.solved_verified + metrics.solved_approximate +
                metrics.solved_broadcast,
            metrics.queries);
}

TEST(ParallelSimTest, WorkloadsIdenticalAcrossEngines) {
  // Both engines generate the workload from the same counter-based streams,
  // so their traces are interchangeable.
  SimConfig config = SmallConfig(QueryType::kMixed);
  config.record_trace = true;
  Simulator sequential(config);
  sequential.Run();
  config.threads = 4;
  ParallelSimulator parallel(config);
  parallel.Run();
  ASSERT_EQ(sequential.trace().size(), parallel.trace().size());
  for (size_t i = 0; i < sequential.trace().size(); ++i) {
    EXPECT_EQ(sequential.trace()[i], parallel.trace()[i]) << "event " << i;
  }
}

TEST(ParallelSimTest, ReplayReproducesRunExactly) {
  SimConfig config = SmallConfig(QueryType::kMixed);
  config.threads = 4;
  config.record_trace = true;
  ParallelSimulator recorder(config);
  const SimMetrics recorded = recorder.Run();
  ASSERT_GT(recorder.trace().size(), 0u);

  ParallelSimulator replayer(config);
  EXPECT_EQ(recorded, replayer.Replay(recorder.trace()));
}

TEST(ParallelSimTest, CrossEngineReplay) {
  // A trace recorded by the sequential engine replays on the parallel one
  // (and at epoch 1 reproduces the recorded metrics bitwise).
  SimConfig config = SmallConfig(QueryType::kKnn);
  config.events_per_epoch = 1;
  config.record_trace = true;
  Simulator recorder(config);
  const SimMetrics recorded = recorder.Run();

  config.threads = 8;
  ParallelSimulator replayer(config);
  EXPECT_EQ(recorded, replayer.Replay(recorder.trace()));
}

TEST(ParallelSimTest, CacheInvariantHoldsUnderParallelism) {
  // With one writer per cache the completeness invariant (the soundness
  // basis of Lemma 3.1) must survive concurrent epochs.
  SimConfig config = SmallConfig(QueryType::kMixed);
  config.warmup_min = 4.0;
  config.duration_min = 4.0;
  config.check_cache_invariant = true;
  config.check_answers = true;
  const SimMetrics metrics = RunWithThreads(config, 4);
  EXPECT_GT(metrics.queries, 0);
  EXPECT_EQ(metrics.answer_errors, 0);
}

TEST(ParallelSimTest, MoreThreadsThanHostsStillDeterministic) {
  SimConfig config = SmallConfig(QueryType::kKnn);
  // A tiny world: fewer hosts than workers leaves some workers idle.
  config.world_side_mi = 0.5;
  const SimMetrics one = RunWithThreads(config, 1);
  EXPECT_EQ(one, RunWithThreads(config, 16));
}

}  // namespace
}  // namespace lbsq::sim
