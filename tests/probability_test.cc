#include "core/probability.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace lbsq::core {
namespace {

TEST(CorrectnessProbabilityTest, PaperExample) {
  // §3.3.2: lambda = 0.3 POIs per square unit, unverified region of 2
  // square units -> e^-0.6 ~ 0.5488 (the paper's "55%").
  EXPECT_NEAR(CorrectnessProbability(0.3, 2.0), 0.5488, 0.0001);
}

TEST(CorrectnessProbabilityTest, ZeroAreaIsCertain) {
  EXPECT_DOUBLE_EQ(CorrectnessProbability(0.5, 0.0), 1.0);
}

TEST(CorrectnessProbabilityTest, ZeroDensityIsCertain) {
  EXPECT_DOUBLE_EQ(CorrectnessProbability(0.0, 100.0), 1.0);
}

TEST(CorrectnessProbabilityTest, DecreasesWithArea) {
  double prev = 1.1;
  for (double area = 0.0; area < 10.0; area += 0.5) {
    const double p = CorrectnessProbability(0.4, area);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(CorrectnessProbabilityTest, MatchesEmpiricalPoissonVoidProbability) {
  // Scatter Poisson POIs over a big region and measure how often a given
  // sub-area is empty.
  Rng rng(7);
  const double lambda = 0.3;
  const double area = 2.0;  // a 1 x 2 box
  int empty = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    if (rng.Poisson(lambda * area) == 0) ++empty;
  }
  EXPECT_NEAR(static_cast<double>(empty) / trials,
              CorrectnessProbability(lambda, area), 0.005);
}

TEST(SurpassingRatioTest, PaperTable2) {
  // o4 at 5 miles vs last verified o5 at 3 miles -> 1.67; o3 at 6 -> 2.0.
  EXPECT_NEAR(SurpassingRatio(5.0, 3.0), 1.6667, 0.001);
  EXPECT_DOUBLE_EQ(SurpassingRatio(6.0, 3.0), 2.0);
}

TEST(SurpassingRatioTest, NoVerifiedNeighborIsInfinite) {
  EXPECT_TRUE(std::isinf(SurpassingRatio(4.0, 0.0)));
}

TEST(SurpassingRatioTest, ZeroOverZeroIsOne) {
  // Regression: an unverified candidate coincident with the query point while
  // the verified frontier is also at distance 0 means zero extra travel — the
  // ratio is 1, not 0/0 = inf (which made downstream extra-travel estimates
  // blow up for co-located POIs).
  EXPECT_DOUBLE_EQ(SurpassingRatio(0.0, 0.0), 1.0);
  // Still infinite when the candidate is strictly farther than the (empty)
  // frontier.
  EXPECT_TRUE(std::isinf(SurpassingRatio(1e-9, 0.0)));
}

TEST(KthNeighborDistanceCdfTest, IsAValidCdf) {
  const double lambda = 2.0;
  for (int k : {1, 3, 8}) {
    EXPECT_DOUBLE_EQ(KthNeighborDistanceCdf(lambda, k, 0.0), 0.0);
    double prev = 0.0;
    for (double r = 0.05; r < 5.0; r += 0.05) {
      const double c = KthNeighborDistanceCdf(lambda, k, r);
      EXPECT_GE(c, prev - 1e-12);
      EXPECT_LE(c, 1.0);
      prev = c;
    }
    EXPECT_NEAR(prev, 1.0, 1e-6);
  }
}

TEST(KthNeighborDistanceCdfTest, FirstNeighborClosedForm) {
  // P(d_1 <= r) = 1 - e^(-lambda pi r^2).
  const double lambda = 1.5;
  for (double r : {0.1, 0.5, 1.0}) {
    EXPECT_NEAR(KthNeighborDistanceCdf(lambda, 1, r),
                1.0 - std::exp(-lambda * M_PI * r * r), 1e-12);
  }
}

TEST(KthNeighborDistanceCdfTest, StochasticallyOrderedInK) {
  // The k-th neighbor is farther than the (k-1)-th.
  const double lambda = 1.0;
  for (double r : {0.3, 0.6, 1.0, 1.5}) {
    for (int k = 2; k <= 6; ++k) {
      EXPECT_LE(KthNeighborDistanceCdf(lambda, k, r),
                KthNeighborDistanceCdf(lambda, k - 1, r) + 1e-12);
    }
  }
}

TEST(KthNeighborDistanceMeanTest, FirstNeighborClosedForm) {
  // E[d_1] = 1 / (2 sqrt(lambda)).
  EXPECT_NEAR(KthNeighborDistanceMean(1.0, 1), 0.5, 1e-9);
  EXPECT_NEAR(KthNeighborDistanceMean(4.0, 1), 0.25, 1e-9);
}

TEST(KthNeighborDistanceMeanTest, MatchesEmpiricalKnnDistance) {
  // Empirical check by sampling Poisson point sets around the origin.
  Rng rng(11);
  const double lambda = 2.0;
  const int k = 3;
  const double world = 10.0;  // large enough that edge effects vanish
  double total = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const int64_t n = rng.Poisson(lambda * world * world);
    std::vector<double> d2;
    for (int64_t i = 0; i < n; ++i) {
      const double x = rng.Uniform(-world / 2, world / 2);
      const double y = rng.Uniform(-world / 2, world / 2);
      d2.push_back(x * x + y * y);
    }
    std::nth_element(d2.begin(), d2.begin() + (k - 1), d2.end());
    total += std::sqrt(d2[k - 1]);
  }
  EXPECT_NEAR(total / trials, KthNeighborDistanceMean(lambda, k), 0.01);
}

}  // namespace
}  // namespace lbsq::core
