#include "spatial/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace lbsq::spatial {
namespace {

const geom::Rect kWorld{0.0, 0.0, 20.0, 10.0};

TEST(GeneratorsTest, UniformCountAndBounds) {
  Rng rng(1);
  const auto pois = GenerateUniformPois(&rng, kWorld, 250);
  EXPECT_EQ(pois.size(), 250u);
  for (const Poi& p : pois) {
    EXPECT_TRUE(kWorld.Contains(p.pos));
  }
}

TEST(GeneratorsTest, UniformIdsAreSequential) {
  Rng rng(2);
  const auto pois = GenerateUniformPois(&rng, kWorld, 50);
  for (size_t i = 0; i < pois.size(); ++i) {
    EXPECT_EQ(pois[i].id, static_cast<int64_t>(i));
  }
}

TEST(GeneratorsTest, UniformZeroCount) {
  Rng rng(3);
  EXPECT_TRUE(GenerateUniformPois(&rng, kWorld, 0).empty());
}

TEST(GeneratorsTest, UniformSpreadAcrossQuadrants) {
  Rng rng(4);
  const auto pois = GenerateUniformPois(&rng, kWorld, 4000);
  int quadrants[4] = {0};
  for (const Poi& p : pois) {
    const int ix = p.pos.x < 10.0 ? 0 : 1;
    const int iy = p.pos.y < 5.0 ? 0 : 2;
    ++quadrants[ix + iy];
  }
  for (int q : quadrants) EXPECT_NEAR(q, 1000, 120);
}

TEST(GeneratorsTest, PoissonMeanMatchesDensityTimesArea) {
  Rng rng(5);
  double total = 0.0;
  const int runs = 200;
  for (int i = 0; i < runs; ++i) {
    total += static_cast<double>(GeneratePoissonPois(&rng, kWorld, 0.5).size());
  }
  // Mean should be density * area = 0.5 * 200 = 100.
  EXPECT_NEAR(total / runs, 100.0, 3.0);
}

TEST(GeneratorsTest, PoissonZeroDensity) {
  Rng rng(6);
  EXPECT_TRUE(GeneratePoissonPois(&rng, kWorld, 0.0).empty());
}

TEST(GeneratorsTest, ClusteredStaysInWorldAndClusters) {
  Rng rng(7);
  const auto pois =
      GenerateClusteredPois(&rng, kWorld, /*num_clusters=*/5,
                            /*mean_per_cluster=*/40.0, /*spread=*/0.3);
  EXPECT_GT(pois.size(), 100u);
  std::set<int64_t> ids;
  for (const Poi& p : pois) {
    EXPECT_TRUE(kWorld.Contains(p.pos));
    ids.insert(p.id);
  }
  EXPECT_EQ(ids.size(), pois.size());  // unique ids

  // Clustering: the average nearest-neighbor distance should be much
  // smaller than for a uniform set of the same size.
  auto mean_nn = [](const std::vector<Poi>& set) {
    double total = 0.0;
    for (const Poi& a : set) {
      double best = 1e18;
      for (const Poi& b : set) {
        if (a.id == b.id) continue;
        best = std::min(best, geom::Distance(a.pos, b.pos));
      }
      total += best;
    }
    return total / static_cast<double>(set.size());
  };
  Rng rng2(8);
  const auto uniform =
      GenerateUniformPois(&rng2, kWorld, static_cast<int64_t>(pois.size()));
  EXPECT_LT(mean_nn(pois), mean_nn(uniform) * 0.7);
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  const auto first = GenerateUniformPois(&a, kWorld, 30);
  const auto second = GenerateUniformPois(&b, kWorld, 30);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace lbsq::spatial
