#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "core/sharded_query_engine.h"
#include "dynamic/sharded_world.h"
#include "dynamic/update_log.h"
#include "dynamic/world_versioner.h"
#include "geom/rect.h"
#include "hilbert/partition.h"
#include "spatial/generators.h"

/// The sharding differential contract:
///  - 1 shard: `ShardedQueryEngine` is field-for-field identical to an
///    unsharded `QueryEngine` over the same POIs (byte identity — the
///    partitioner preserves input order, so even the schedule matches).
///  - N shards: the *answer plane* (neighbor ids + distances, window POI
///    sets) is bit-identical to the 1-shard answer at any shard count, over
///    randomized workloads with peers, seam-straddling windows, and query
///    points pinned to shard-boundary cell corners.
///  - Under churn, `dynamic::ShardedWorld` publishes the same epoch/POI
///    sequence as the unsharded `WorldVersioner`, rebuilds only dirty
///    shards (clean shards share their broadcast systems with the previous
///    epoch), and restamps every outcome with the global pinned epoch.

namespace lbsq::core {
namespace {

const geom::Rect kWorld{0.0, 0.0, 20.0, 20.0};

broadcast::BroadcastParams TestParams() {
  broadcast::BroadcastParams params;
  params.hilbert_order = 6;
  params.bucket_capacity = 4;
  return params;
}

std::vector<spatial::Poi> TestPois(int n, uint64_t seed = 1) {
  Rng rng(seed);
  return spatial::GenerateUniformPois(&rng, kWorld, n);
}

// A peer holding the verified content of `region` — honest by construction.
PeerData PeerWithRegion(const std::vector<spatial::Poi>& pois,
                        const geom::Rect& region, uint64_t epoch = 0) {
  VerifiedRegion vr;
  vr.region = region;
  vr.epoch = epoch;
  for (const spatial::Poi& p : pois) {
    if (region.Contains(p.pos)) vr.pois.push_back(p);
  }
  return PeerData{{vr}};
}

// A request batch plus the peer storage backing its requests' spans.
struct RequestSet {
  std::vector<QueryRequest> requests;
  std::vector<std::vector<PeerData>> peer_storage;

  // Bind spans only after all storage is final (no more vector growth).
  void BindPeers() {
    for (size_t i = 0; i < requests.size(); ++i) {
      requests[i].peers = peer_storage[i];
    }
  }
};

// A randomized mixed workload over the sharded deployment: kNN and window
// queries, varying k, window sizes, slots, and peer knowledge.
RequestSet MakeRequests(const std::vector<spatial::Poi>& pois, int n,
                        uint64_t seed) {
  Rng rng(seed);
  RequestSet set;
  set.requests.reserve(static_cast<size_t>(n));
  set.peer_storage.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    QueryRequest r;
    const geom::Point q{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
    if (rng.NextBool(0.5)) {
      r.kind = QueryKind::kKnn;
      r.position = q;
      r.k = 1 + static_cast<int>(rng.NextBelow(6));
    } else {
      r.kind = QueryKind::kWindow;
      r.window = geom::Rect::CenteredSquare(q, rng.Uniform(0.3, 2.5));
    }
    r.slot = static_cast<int64_t>(rng.NextBelow(4096));
    if (rng.NextBool(0.6)) {
      set.peer_storage[static_cast<size_t>(i)].push_back(PeerWithRegion(
          pois, geom::Rect::CenteredSquare(q, rng.Uniform(0.5, 2.0))));
    }
    set.requests.push_back(std::move(r));
  }
  set.BindPeers();
  return set;
}

// Targeted seam workload for an N-shard deployment: for every internal
// shard boundary, a window straddling the seam cell's corner and a kNN
// query point pinned exactly to it (the degenerate on-the-boundary case).
RequestSet MakeSeamRequests(const ShardedQueryEngine& engine,
                            const std::vector<spatial::Poi>& pois,
                            uint64_t seed) {
  Rng rng(seed);
  RequestSet set;
  const hilbert::ShardMap& map = engine.map();
  for (int s = 1; s < map.num_shards(); ++s) {
    const uint64_t seam_cell = map.RangeOf(s).lo;
    const geom::Rect cell = engine.routing_grid().CellRect(seam_cell);
    const geom::Point corner{cell.x1, cell.y1};

    QueryRequest knn;
    knn.kind = QueryKind::kKnn;
    knn.position = corner;
    knn.k = 1 + static_cast<int>(rng.NextBelow(6));
    knn.slot = static_cast<int64_t>(rng.NextBelow(4096));
    set.requests.push_back(knn);
    set.peer_storage.emplace_back();

    QueryRequest window;
    window.kind = QueryKind::kWindow;
    window.window = geom::Rect::CenteredSquare(corner, rng.Uniform(0.8, 3.0));
    window.slot = static_cast<int64_t>(rng.NextBelow(4096));
    set.requests.push_back(window);
    set.peer_storage.emplace_back();
    set.peer_storage.back().push_back(PeerWithRegion(
        pois, geom::Rect::CenteredSquare(corner, rng.Uniform(0.5, 1.5))));
  }
  set.BindPeers();
  return set;
}

void ExpectCommonEq(const QueryResultCommon& a, const QueryResultCommon& b) {
  EXPECT_EQ(a.stats.access_latency, b.stats.access_latency);
  EXPECT_EQ(a.stats.tuning_time, b.stats.tuning_time);
  EXPECT_EQ(a.stats.buckets_read, b.stats.buckets_read);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.cacheable.region, b.cacheable.region);
  EXPECT_EQ(a.cacheable.pois, b.cacheable.pois);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.failed_buckets, b.failed_buckets);
  EXPECT_EQ(a.fault_losses, b.fault_losses);
  EXPECT_EQ(a.fault_corruptions, b.fault_corruptions);
  EXPECT_EQ(a.fault_deadline_hit, b.fault_deadline_hit);
}

void ExpectHeapEq(const ResultHeap& a, const ResultHeap& b) {
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_EQ(a.entries()[i].poi, b.entries()[i].poi);
    EXPECT_EQ(a.entries()[i].distance, b.entries()[i].distance);
    EXPECT_EQ(a.entries()[i].verified, b.entries()[i].verified);
    EXPECT_EQ(a.entries()[i].correctness, b.entries()[i].correctness);
    EXPECT_EQ(a.entries()[i].surpassing_ratio,
              b.entries()[i].surpassing_ratio);
  }
}

// Full field-for-field equality — the 1-shard byte-identity bar.
void ExpectOutcomeEq(const QueryOutcome& a, const QueryOutcome& b) {
  ASSERT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.regions_rejected, b.regions_rejected);
  if (a.kind == QueryKind::kKnn) {
    ASSERT_TRUE(a.knn.has_value());
    ASSERT_TRUE(b.knn.has_value());
    EXPECT_FALSE(b.window.has_value());
    const SbnnOutcome& x = *a.knn;
    const SbnnOutcome& y = *b.knn;
    ExpectCommonEq(x, y);
    EXPECT_EQ(x.resolved_by, y.resolved_by);
    ASSERT_EQ(x.neighbors.size(), y.neighbors.size());
    for (size_t i = 0; i < x.neighbors.size(); ++i) {
      EXPECT_EQ(x.neighbors[i].poi, y.neighbors[i].poi);
      EXPECT_EQ(x.neighbors[i].distance, y.neighbors[i].distance);
    }
    ExpectHeapEq(x.nnv.heap, y.nnv.heap);
    EXPECT_EQ(x.nnv.mvr.pieces(), y.nnv.mvr.pieces());
    EXPECT_EQ(x.nnv.boundary_distance, y.nnv.boundary_distance);
    EXPECT_EQ(x.nnv.candidate_count, y.nnv.candidate_count);
    ASSERT_EQ(x.nnv.candidates.size(), y.nnv.candidates.size());
    for (size_t i = 0; i < x.nnv.candidates.size(); ++i) {
      EXPECT_EQ(x.nnv.candidates[i].poi, y.nnv.candidates[i].poi);
      EXPECT_EQ(x.nnv.candidates[i].distance, y.nnv.candidates[i].distance);
    }
    EXPECT_EQ(x.buckets_skipped, y.buckets_skipped);
  } else {
    ASSERT_TRUE(a.window.has_value());
    ASSERT_TRUE(b.window.has_value());
    EXPECT_FALSE(b.knn.has_value());
    const SbwqOutcome& x = *a.window;
    const SbwqOutcome& y = *b.window;
    ExpectCommonEq(x, y);
    EXPECT_EQ(x.resolved_by_peers, y.resolved_by_peers);
    EXPECT_EQ(x.pois, y.pois);
    EXPECT_EQ(x.mvr.pieces(), y.mvr.pieces());
    EXPECT_EQ(x.residual_windows, y.residual_windows);
    EXPECT_EQ(x.residual_fraction, y.residual_fraction);
  }
}

// Answer-plane equality — the cross-shard-count invariance bar. Costs and
// cacheable shapes legitimately differ between deployments; the neighbors
// (ids and bit-exact distances) and the window POI sequences may not.
void ExpectAnswerEq(const QueryOutcome& a, const QueryOutcome& b) {
  ASSERT_EQ(a.kind, b.kind);
  if (a.kind == QueryKind::kKnn) {
    ASSERT_TRUE(a.knn.has_value());
    ASSERT_TRUE(b.knn.has_value());
    ASSERT_EQ(a.knn->neighbors.size(), b.knn->neighbors.size());
    for (size_t i = 0; i < a.knn->neighbors.size(); ++i) {
      EXPECT_EQ(a.knn->neighbors[i].poi, b.knn->neighbors[i].poi);
      EXPECT_EQ(a.knn->neighbors[i].distance, b.knn->neighbors[i].distance);
    }
  } else {
    ASSERT_TRUE(a.window.has_value());
    ASSERT_TRUE(b.window.has_value());
    EXPECT_EQ(a.window->pois, b.window->pois);
  }
}

TEST(ShardedEngineTest, OneShardByteIdenticalToUnsharded) {
  std::vector<spatial::Poi> pois = TestPois(600);
  const broadcast::BroadcastSystem system(pois, kWorld, TestParams());
  const QueryEngine unsharded(system, kWorld, EngineOptions{});
  const ShardedQueryEngine sharded(pois, kWorld, TestParams(),
                                   EngineOptions{}, 1);
  ASSERT_EQ(sharded.num_shards(), 1);
  EXPECT_EQ(sharded.total_pois(), pois.size());

  const RequestSet set = MakeRequests(pois, 80, /*seed=*/17);
  ShardedQueryWorkspace workspace;
  QueryOutcome outcome;
  for (size_t i = 0; i < set.requests.size(); ++i) {
    SCOPED_TRACE(i);
    sharded.Execute(set.requests[i], workspace, &outcome);
    ExpectOutcomeEq(unsharded.Execute(set.requests[i]), outcome);
    // The convenience form is the workspace form with throwaway scratch.
    ExpectOutcomeEq(sharded.Execute(set.requests[i]), outcome);
  }
}

TEST(ShardedEngineTest, AnswerPlaneInvariantAcrossShardCounts) {
  std::vector<spatial::Poi> pois = TestPois(800, /*seed=*/5);
  const ShardedQueryEngine oracle(pois, kWorld, TestParams(),
                                  EngineOptions{}, 1);
  ShardedQueryWorkspace oracle_ws;
  QueryOutcome expected;
  QueryOutcome actual;
  for (const int num_shards : {2, 3, 5, 8}) {
    SCOPED_TRACE(num_shards);
    const ShardedQueryEngine sharded(pois, kWorld, TestParams(),
                                     EngineOptions{}, num_shards);
    ASSERT_EQ(sharded.num_shards(), num_shards);
    EXPECT_EQ(sharded.total_pois(), pois.size());
    ShardedQueryWorkspace ws;

    const RequestSet set = MakeRequests(pois, 120, /*seed=*/1000 + num_shards);
    const RequestSet seams = MakeSeamRequests(sharded, pois, /*seed=*/42);
    for (const RequestSet* requests : {&set, &seams}) {
      for (size_t i = 0; i < requests->requests.size(); ++i) {
        SCOPED_TRACE(i);
        const QueryRequest& r = requests->requests[i];
        oracle.Execute(r, oracle_ws, &expected);
        sharded.Execute(r, ws, &actual);
        ExpectAnswerEq(expected, actual);
      }
    }
  }
}

TEST(ShardedEngineTest, SeamWindowsHaveNoDuplicatePois) {
  std::vector<spatial::Poi> pois = TestPois(800, /*seed=*/9);
  const ShardedQueryEngine sharded(pois, kWorld, TestParams(),
                                   EngineOptions{}, 8);
  ShardedQueryWorkspace ws;
  QueryOutcome outcome;
  const RequestSet seams = MakeSeamRequests(sharded, pois, /*seed=*/77);
  for (size_t i = 0; i < seams.requests.size(); ++i) {
    const QueryRequest& r = seams.requests[i];
    if (r.kind != QueryKind::kWindow) continue;
    SCOPED_TRACE(i);
    sharded.Execute(r, ws, &outcome);
    ASSERT_TRUE(outcome.window.has_value());
    std::vector<int64_t> ids;
    for (const spatial::Poi& p : outcome.window->pois) ids.push_back(p.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
        << "duplicate POI across a shard seam";
  }
}

TEST(ShardedEngineTest, BatchMatchesSequentialExecute) {
  std::vector<spatial::Poi> pois = TestPois(500, /*seed=*/13);
  const ShardedQueryEngine sharded(pois, kWorld, TestParams(),
                                   EngineOptions{}, 5);
  const RequestSet set = MakeRequests(pois, 60, /*seed=*/23);

  ShardedQueryWorkspace sequential_ws;
  std::vector<QueryOutcome> sequential(set.requests.size());
  for (size_t i = 0; i < set.requests.size(); ++i) {
    sharded.Execute(set.requests[i], sequential_ws, &sequential[i]);
  }

  ShardedQueryWorkspace batch_ws;
  const std::span<const QueryOutcome> batch =
      sharded.ExecuteBatch(set.requests, batch_ws);
  ASSERT_EQ(batch.size(), set.requests.size());
  for (size_t i = 0; i < set.requests.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectOutcomeEq(sequential[i], batch[i]);
  }
}

TEST(ShardedEngineTest, BatchValidationHoistedBeforeExecution) {
  std::vector<spatial::Poi> pois = TestPois(300, /*seed=*/3);
  const ShardedQueryEngine sharded(pois, kWorld, TestParams(),
                                   EngineOptions{}, 4);
  // A malformed request *mid-batch* (window request carrying a kNN k) must
  // fail batch validation before any request executes or any arena slot is
  // written — the whole batch is validated up front.
  std::vector<QueryRequest> requests(3);
  requests[0].kind = QueryKind::kKnn;
  requests[0].position = {10.0, 10.0};
  requests[0].k = 3;
  requests[1].kind = QueryKind::kWindow;
  requests[1].window = geom::Rect::CenteredSquare({5.0, 5.0}, 1.0);
  requests[1].k = 3;  // malformed: k belongs to kNN requests
  requests[2].kind = QueryKind::kKnn;
  requests[2].position = {3.0, 3.0};
  requests[2].k = 2;
  ShardedQueryWorkspace ws;
  EXPECT_DEATH(
      sharded.ExecuteBatch(std::span<const QueryRequest>(requests), ws),
      "k == 0");
}

// Rebuilds every shard's broadcast system with a hand-picked epoch stamp,
// keeping the POI split and the shard map — the static-engine model of a
// dynamic::ShardedWorld partial rebuild, where clean shards share
// prior-epoch systems and contributing shards carry divergent epochs.
ShardedQueryEngine WithShardEpochs(const ShardedQueryEngine& base,
                                   const std::vector<uint64_t>& epochs) {
  std::vector<std::shared_ptr<const broadcast::BroadcastSystem>> systems;
  for (int s = 0; s < base.num_shards(); ++s) {
    if (base.shard_system(s) == nullptr) {
      systems.push_back(nullptr);
      continue;
    }
    broadcast::BroadcastParams params = TestParams();
    params.epoch = epochs[static_cast<size_t>(s)];
    systems.push_back(std::make_shared<broadcast::BroadcastSystem>(
        base.shard_system(s)->pois(), kWorld, params));
  }
  return ShardedQueryEngine(kWorld, TestParams(), EngineOptions{}, base.map(),
                            std::move(systems));
}

TEST(ShardedEngineTest, MergedEpochStampIsMinOverContributingShards) {
  std::vector<spatial::Poi> pois = TestPois(300, /*seed=*/11);
  const ShardedQueryEngine base(pois, kWorld, TestParams(), EngineOptions{},
                                3);
  ASSERT_EQ(base.num_shards(), 3);
  for (int s = 0; s < 3; ++s) ASSERT_NE(base.shard_system(s), nullptr);
  // Shard s broadcasts epoch s: shard 0 is the oldest channel.
  const ShardedQueryEngine engine =
      WithShardEpochs(base, {0, 1, 2});

  // A kNN homed on the *newest* shard with k larger than any one shard's
  // POI count: the home answer cannot be complete, so every shard
  // contributes and the merged knowledge is only as fresh as the oldest
  // contributor. (The pre-fix code stamped the home epoch — here 2.)
  geom::Point home_pos;
  for (const spatial::Poi& p : pois) {
    if (engine.map().ShardOfIndex(engine.routing_grid().IndexOf(p.pos)) == 2) {
      home_pos = p.pos;
      break;
    }
  }
  QueryRequest knn;
  knn.kind = QueryKind::kKnn;
  knn.position = home_pos;
  knn.k = static_cast<int>(pois.size());  // forces every shard to contribute
  QueryOutcome outcome = engine.Execute(knn);
  ASSERT_EQ(outcome.knn->resolved_by, ResolvedBy::kBroadcast);
  EXPECT_EQ(outcome.Cacheable().epoch, 0u);

  // A window covering the whole world touches every shard — same rule.
  QueryRequest window;
  window.kind = QueryKind::kWindow;
  window.window = kWorld;
  outcome = engine.Execute(window);
  EXPECT_EQ(outcome.window->pois.size(), pois.size());
  EXPECT_EQ(outcome.Cacheable().epoch, 0u);

  // A query confined to one shard keeps that shard's own (newer) stamp:
  // min over contributing shards, not min over all shards. Inset the cell
  // rect so the closed-rect cover cannot brush adjacent cells.
  const geom::Rect cell = engine.routing_grid().CellRect(
      engine.routing_grid().IndexOf(home_pos));
  const double inset_x = cell.width() / 4.0;
  const double inset_y = cell.height() / 4.0;
  QueryRequest local;
  local.kind = QueryKind::kWindow;
  local.window = geom::Rect{cell.x1 + inset_x, cell.y1 + inset_y,
                            cell.x2 - inset_x, cell.y2 - inset_y};
  outcome = engine.Execute(local);
  EXPECT_EQ(outcome.Cacheable().epoch, 2u);
}

TEST(ShardedWorldTest, CleanHomeWithRebuiltContributorStampsMinEpoch) {
  std::vector<spatial::Poi> initial = TestPois(600, /*seed=*/21);
  dynamic::ShardedWorld world(initial, kWorld, TestParams(), EngineOptions{},
                              4);
  const auto base = world.Current();
  const auto shard_of = [&base](geom::Point p) {
    return base->engine->map().ShardOfIndex(
        base->engine->routing_grid().IndexOf(p));
  };

  // Dirty exactly one shard (move one of its POIs within its own cell).
  const int dirty = shard_of(initial[0].pos);
  const geom::Rect cell = base->engine->routing_grid().CellRect(
      base->engine->routing_grid().IndexOf(initial[0].pos));
  dynamic::PoiUpdate u;
  u.kind = dynamic::PoiUpdate::Kind::kMove;
  u.id = initial[0].id;
  u.pos = {(cell.x1 + cell.x2) / 2.0, (cell.y1 + cell.y2) / 2.0};
  ASSERT_EQ(world.Apply({u}), 1u);
  const auto next = world.Current();
  ASSERT_EQ(next->rebuilt_shards, std::vector<int>{dirty});

  // Home the query on a *clean* shard (epoch 0 system, shared with the base
  // epoch) and force the rebuilt shard (epoch 1) to contribute via a large
  // k. Engine-level execution — no world-level restamp — must report the
  // minimum epoch over the contributors, here the clean home's 0.
  geom::Point clean_pos;
  bool found = false;
  for (const spatial::Poi& p : next->pois) {
    if (shard_of(p.pos) != dirty) {
      clean_pos = p.pos;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  QueryRequest knn;
  knn.kind = QueryKind::kKnn;
  knn.position = clean_pos;
  knn.k = static_cast<int>(next->pois.size());
  QueryOutcome outcome = next->engine->Execute(knn);
  ASSERT_EQ(outcome.knn->resolved_by, ResolvedBy::kBroadcast);
  EXPECT_EQ(outcome.Cacheable().epoch, 0u);

  // Homed on the rebuilt shard with clean contributors — the pre-fix code
  // stamped the home's 1 here, claiming knowledge fresher than the clean
  // channels that supplied part of it.
  geom::Point dirty_pos;
  found = false;
  for (const spatial::Poi& p : next->pois) {
    if (shard_of(p.pos) == dirty) {
      dirty_pos = p.pos;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  knn.position = dirty_pos;
  outcome = next->engine->Execute(knn);
  ASSERT_EQ(outcome.knn->resolved_by, ResolvedBy::kBroadcast);
  EXPECT_EQ(outcome.Cacheable().epoch, 0u);
}

// Deterministic hand-rolled churn: inserts into a hot rect, moves and
// deletes of live POIs drawn from the evolving snapshot.
std::vector<dynamic::PoiUpdate> MakeBatch(
    const std::vector<spatial::Poi>& snapshot, Rng* rng,
    int64_t* next_insert_id) {
  std::vector<dynamic::PoiUpdate> updates;
  for (int i = 0; i < 4; ++i) {
    dynamic::PoiUpdate u;
    u.kind = dynamic::PoiUpdate::Kind::kInsert;
    u.id = (*next_insert_id)++;
    u.pos = {rng->Uniform(0.0, 20.0), rng->Uniform(0.0, 20.0)};
    updates.push_back(u);
  }
  for (int i = 0; i < 4 && !snapshot.empty(); ++i) {
    const spatial::Poi& victim =
        snapshot[static_cast<size_t>(rng->NextBelow(snapshot.size()))];
    dynamic::PoiUpdate u;
    u.id = victim.id;
    if (rng->NextBool(0.5)) {
      u.kind = dynamic::PoiUpdate::Kind::kMove;
      u.pos = {rng->Uniform(0.0, 20.0), rng->Uniform(0.0, 20.0)};
    } else {
      u.kind = dynamic::PoiUpdate::Kind::kDelete;
    }
    updates.push_back(u);
  }
  return updates;
}

TEST(ShardedWorldTest, MatchesUnshardedWorldUnderChurn) {
  std::vector<spatial::Poi> initial = TestPois(400, /*seed=*/2);
  dynamic::WorldVersioner versioner(initial, kWorld, TestParams(),
                                    EngineOptions{});
  dynamic::ShardedWorld sharded(initial, kWorld, TestParams(),
                                EngineOptions{}, 4);
  ASSERT_EQ(sharded.num_shards(), 4);

  Rng rng(31);
  int64_t next_insert_id = 400;
  ShardedQueryWorkspace ws;
  QueryOutcome outcome;
  for (uint64_t epoch = 1; epoch <= 6; ++epoch) {
    const std::vector<dynamic::PoiUpdate> batch =
        MakeBatch(sharded.Current()->pois, &rng, &next_insert_id);
    EXPECT_EQ(versioner.Apply(batch), epoch);
    EXPECT_EQ(sharded.Apply(batch), epoch);
    ASSERT_EQ(sharded.latest_epoch(), versioner.latest_epoch());

    // The global mirror advances exactly like the unsharded snapshot:
    // same merge, same invalid-update filtering, same order.
    const auto pinned_unsharded = versioner.Current();
    const auto pinned_sharded = sharded.Current();
    ASSERT_EQ(pinned_sharded->pois, pinned_unsharded->pois);
    EXPECT_EQ(sharded.updates_applied(), versioner.updates_applied());

    // Answers on the sharded epoch match the unsharded engine, and every
    // outcome is restamped with the global pinned epoch.
    const RequestSet set =
        MakeRequests(pinned_sharded->pois, 30, /*seed=*/500 + epoch);
    for (size_t i = 0; i < set.requests.size(); ++i) {
      SCOPED_TRACE(i);
      QueryRequest r = set.requests[i];
      r.peers = {};
      std::vector<PeerData> peers = set.peer_storage[i];
      for (PeerData& peer : peers) {
        for (VerifiedRegion& region : peer.regions) region.epoch = epoch;
      }
      const auto pinned = sharded.Execute(r, &peers, ws, &outcome);
      EXPECT_EQ(pinned->id, epoch);
      EXPECT_EQ(outcome.Cacheable().epoch, epoch);

      QueryRequest unsharded_request = r;
      unsharded_request.peers = peers;  // post-revalidation peer state
      ExpectAnswerEq(pinned_unsharded->engine->Execute(unsharded_request),
                     outcome);
    }
  }
}

TEST(ShardedWorldTest, RebuildsOnlyDirtyShards) {
  std::vector<spatial::Poi> initial = TestPois(600, /*seed=*/21);
  dynamic::ShardedWorld world(initial, kWorld, TestParams(),
                              EngineOptions{}, 8);
  ASSERT_EQ(world.num_shards(), 8);
  // Epoch 0 builds every non-empty shard but the incremental counter
  // starts at zero — it measures Apply-time work only.
  EXPECT_EQ(world.shards_rebuilt(), 0);

  const auto base = world.Current();
  const ShardedQueryEngine& engine = *base->engine;
  const auto shard_of = [&engine](geom::Point p) {
    return engine.map().ShardOfIndex(engine.routing_grid().IndexOf(p));
  };

  // A batch confined to one shard: move its POIs within their own cells.
  const int target = shard_of(initial[0].pos);
  std::vector<dynamic::PoiUpdate> updates;
  for (const spatial::Poi& p : base->pois) {
    if (shard_of(p.pos) != target) continue;
    const geom::Rect cell =
        engine.routing_grid().CellRect(engine.routing_grid().IndexOf(p.pos));
    dynamic::PoiUpdate u;
    u.kind = dynamic::PoiUpdate::Kind::kMove;
    u.id = p.id;
    u.pos = {(cell.x1 + cell.x2) / 2.0, (cell.y1 + cell.y2) / 2.0};
    updates.push_back(u);
    if (updates.size() == 8) break;
  }
  ASSERT_FALSE(updates.empty());

  EXPECT_EQ(world.Apply(updates), 1u);
  EXPECT_EQ(world.shards_rebuilt(), 1);
  const auto next = world.Current();
  EXPECT_EQ(next->rebuilt_shards, std::vector<int>{target});

  // Clean shards share their broadcast systems with the base epoch; the
  // dirty shard carries a fresh one stamped with the new epoch.
  for (int s = 0; s < world.num_shards(); ++s) {
    SCOPED_TRACE(s);
    if (s == target) {
      EXPECT_NE(next->engine->shard_system_ptr(s).get(),
                engine.shard_system_ptr(s).get());
      ASSERT_NE(next->engine->shard_system(s), nullptr);
      EXPECT_EQ(next->engine->shard_system(s)->epoch(), 1u);
    } else {
      EXPECT_EQ(next->engine->shard_system_ptr(s).get(),
                engine.shard_system_ptr(s).get());
    }
  }

  // A world-wide batch dirties many shards at once.
  Rng rng(51);
  int64_t next_insert_id = 10'000;
  world.Apply(MakeBatch(next->pois, &rng, &next_insert_id));
  EXPECT_GT(world.shards_rebuilt(), 1);
  EXPECT_LE(world.shards_rebuilt(), 1 + world.num_shards());
}

}  // namespace
}  // namespace lbsq::core
