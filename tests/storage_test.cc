#include "storage/storage_manager.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "storage/buffer_pool.h"

namespace lbsq::storage {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// A page filled with a recognizable per-page byte pattern.
std::vector<uint8_t> PatternPage(size_t page_size, int64_t page) {
  std::vector<uint8_t> data(page_size);
  for (size_t i = 0; i < page_size; ++i) {
    data[i] = static_cast<uint8_t>((static_cast<size_t>(page) * 131 + i) & 0xff);
  }
  return data;
}

TEST(MemoryStorageManagerTest, RoundTripAndFreeListReuse) {
  MemoryStorageManager store(kMinPageSize);
  EXPECT_EQ(store.page_size(), kMinPageSize);
  EXPECT_EQ(store.page_count(), 1);  // page 0 = header

  const int64_t a = store.AllocatePage();
  const int64_t b = store.AllocatePage();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  store.WritePage(a, PatternPage(kMinPageSize, a).data());
  store.WritePage(b, PatternPage(kMinPageSize, b).data());

  std::vector<uint8_t> out(kMinPageSize);
  store.ReadPage(a, out.data());
  EXPECT_EQ(out, PatternPage(kMinPageSize, a));
  store.ReadPage(b, out.data());
  EXPECT_EQ(out, PatternPage(kMinPageSize, b));

  // A freed page is reused before the store grows.
  store.FreePage(a);
  EXPECT_EQ(store.AllocatePage(), a);
  EXPECT_EQ(store.page_count(), 3);
  EXPECT_EQ(store.AllocatePage(), 3);
}

TEST(FileStorageManagerTest, CreateFlushReopenRoundTrip) {
  const std::string path = TempPath("roundtrip.lbsq");
  StoreMeta meta;
  meta.dataset_digest = 0xdeadbeefcafef00dull;
  meta.epoch = 7;
  meta.shards = 3;
  meta.world_x2 = 20.0;
  meta.world_y2 = 20.0;
  meta.bucket_capacity = 10;
  meta.hilbert_order = 8;
  meta.poi_count = 2750;
  {
    auto store = FileStorageManager::Create(path, kMinPageSize);
    ASSERT_NE(store, nullptr);
    const int64_t a = store->AllocatePage();
    const int64_t b = store->AllocatePage();
    store->WritePage(a, PatternPage(kMinPageSize, a).data());
    store->WritePage(b, PatternPage(kMinPageSize, b).data());
    store->set_meta(meta);
    ASSERT_TRUE(store->Flush());
  }
  OpenStatus status = OpenStatus::kOk;
  auto store = FileStorageManager::Open(path, &status);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(status, OpenStatus::kOk);
  EXPECT_EQ(store->page_size(), kMinPageSize);
  EXPECT_EQ(store->page_count(), 3);
  EXPECT_EQ(store->meta().dataset_digest, meta.dataset_digest);
  EXPECT_EQ(store->meta().epoch, meta.epoch);
  EXPECT_EQ(store->meta().shards, meta.shards);
  EXPECT_EQ(store->meta().world_x2, meta.world_x2);
  EXPECT_EQ(store->meta().bucket_capacity, meta.bucket_capacity);
  EXPECT_EQ(store->meta().hilbert_order, meta.hilbert_order);
  EXPECT_EQ(store->meta().poi_count, meta.poi_count);
  std::vector<uint8_t> out(kMinPageSize);
  store->ReadPage(1, out.data());
  EXPECT_EQ(out, PatternPage(kMinPageSize, 1));
  store->ReadPage(2, out.data());
  EXPECT_EQ(out, PatternPage(kMinPageSize, 2));
}

TEST(FileStorageManagerTest, FreeListSurvivesReopen) {
  const std::string path = TempPath("freelist.lbsq");
  {
    auto store = FileStorageManager::Create(path, kMinPageSize);
    ASSERT_NE(store, nullptr);
    store->AllocatePage();  // 1
    store->AllocatePage();  // 2
    store->AllocatePage();  // 3
    store->FreePage(2);
    ASSERT_TRUE(store->Flush());
  }
  OpenStatus status = OpenStatus::kOk;
  auto store = FileStorageManager::Open(path, &status);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->AllocatePage(), 2);  // from the persisted free chain
  EXPECT_EQ(store->AllocatePage(), 4);  // chain exhausted: grows the file
}

TEST(FileStorageManagerTest, OpenMissingFileIsIoError) {
  OpenStatus status = OpenStatus::kOk;
  EXPECT_EQ(FileStorageManager::Open(TempPath("does-not-exist.lbsq"), &status),
            nullptr);
  EXPECT_EQ(status, OpenStatus::kIoError);
}

TEST(FileStorageManagerTest, OpenRejectsBadMagic) {
  const std::string path = TempPath("badmagic.lbsq");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::vector<uint8_t> junk(kMinPageSize, uint8_t{'X'});
    ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
    std::fclose(f);
  }
  OpenStatus status = OpenStatus::kOk;
  EXPECT_EQ(FileStorageManager::Open(path, &status), nullptr);
  EXPECT_EQ(status, OpenStatus::kBadMagic);
}

TEST(FileStorageManagerTest, OpenRejectsCorruptedHeader) {
  const std::string path = TempPath("corrupt.lbsq");
  {
    auto store = FileStorageManager::Create(path, kMinPageSize);
    ASSERT_NE(store, nullptr);
    store->AllocatePage();
    ASSERT_TRUE(store->Flush());
  }
  {
    // Flip one byte inside the header payload (past magic + length).
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 20, SEEK_SET), 0);
    const uint8_t corrupt = 0xff;
    ASSERT_EQ(std::fwrite(&corrupt, 1, 1, f), 1u);
    std::fclose(f);
  }
  OpenStatus status = OpenStatus::kOk;
  EXPECT_EQ(FileStorageManager::Open(path, &status), nullptr);
  EXPECT_EQ(status, OpenStatus::kBadHeaderChecksum);
}

TEST(FileStorageManagerTest, OpenRejectsTruncatedFile) {
  const std::string path = TempPath("truncated.lbsq");
  {
    auto store = FileStorageManager::Create(path, kMinPageSize);
    ASSERT_NE(store, nullptr);
    const int64_t a = store->AllocatePage();
    store->WritePage(a, PatternPage(kMinPageSize, a).data());
    ASSERT_TRUE(store->Flush());
  }
  // Chop the tail of the last page: the header still parses, but the store
  // no longer covers the page count it declares.
  std::filesystem::resize_file(path, 2 * kMinPageSize - 1);
  OpenStatus status = OpenStatus::kOk;
  EXPECT_EQ(FileStorageManager::Open(path, &status), nullptr);
  EXPECT_EQ(status, OpenStatus::kTruncated);

  // A file shorter than the header prefix is truncated too, not bad-magic.
  std::filesystem::resize_file(path, 8);
  EXPECT_EQ(FileStorageManager::Open(path, &status), nullptr);
  EXPECT_EQ(status, OpenStatus::kTruncated);
}

TEST(BlobTest, RoundTripAcrossPageChain) {
  MemoryStorageManager store(kMinPageSize);
  Rng rng(5);
  for (const size_t size : {size_t{0}, size_t{1}, size_t{247}, size_t{248},
                            size_t{249}, size_t{4000}}) {
    std::vector<uint8_t> blob(size);
    for (uint8_t& b : blob) b = static_cast<uint8_t>(rng.NextBelow(256));
    const BlobRef ref = WriteBlob(&store, blob.data(), blob.size());
    std::vector<uint8_t> out;
    ASSERT_TRUE(ReadBlob(store, /*pool=*/nullptr, ref, &out)) << size;
    EXPECT_EQ(out, blob) << size;

    // The same bytes must come back through a (tiny, evicting) pool.
    BufferPool pool(&store, 2);
    ASSERT_TRUE(ReadBlob(store, &pool, ref, &out)) << size;
    EXPECT_EQ(out, blob) << size;
  }
}

TEST(BlobTest, CorruptedPayloadFailsCrc) {
  MemoryStorageManager store(kMinPageSize);
  std::vector<uint8_t> blob(1000, uint8_t{0x5a});
  const BlobRef ref = WriteBlob(&store, blob.data(), blob.size());

  std::vector<uint8_t> page(kMinPageSize);
  store.ReadPage(ref.first_page, page.data());
  page[12] ^= 0x01;  // one payload bit, past the 8-byte chain pointer
  store.WritePage(ref.first_page, page.data());

  std::vector<uint8_t> out;
  EXPECT_FALSE(ReadBlob(store, /*pool=*/nullptr, ref, &out));
}

TEST(BlobTest, BrokenChainFails) {
  MemoryStorageManager store(kMinPageSize);
  std::vector<uint8_t> blob(1000, uint8_t{0x33});
  const BlobRef ref = WriteBlob(&store, blob.data(), blob.size());

  // Point the first page's chain pointer out of bounds.
  std::vector<uint8_t> page(kMinPageSize);
  store.ReadPage(ref.first_page, page.data());
  page[0] = 0xff;
  page[7] = 0x7f;
  store.WritePage(ref.first_page, page.data());

  std::vector<uint8_t> out;
  EXPECT_FALSE(ReadBlob(store, /*pool=*/nullptr, ref, &out));
}

// ---------------------------------------------------------------------------
// BufferPool

/// Fills `store` with `n` payload pages, each carrying its pattern.
void FillPages(MemoryStorageManager* store, int n) {
  for (int i = 0; i < n; ++i) {
    const int64_t page = store->AllocatePage();
    store->WritePage(page, PatternPage(kMinPageSize, page).data());
  }
}

TEST(BufferPoolTest, HitsAndMisses) {
  MemoryStorageManager store(kMinPageSize);
  FillPages(&store, 3);
  BufferPool pool(&store, 4);
  EXPECT_EQ(pool.HitRatio(), 0.0);

  const uint8_t* p1 = pool.Pin(1);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(std::memcmp(p1, PatternPage(kMinPageSize, 1).data(), kMinPageSize),
            0);
  pool.Unpin(1);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 1u);

  const uint8_t* again = pool.Pin(1);
  EXPECT_EQ(again, p1);  // same resident frame
  pool.Unpin(1);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.evictions(), 0u);
  EXPECT_DOUBLE_EQ(pool.HitRatio(), 0.5);
}

TEST(BufferPoolTest, ClockEvictionOrder) {
  MemoryStorageManager store(kMinPageSize);
  FillPages(&store, 3);
  BufferPool pool(&store, 2);
  pool.Pin(1);
  pool.Unpin(1);
  pool.Pin(2);
  pool.Unpin(2);
  // Both frames referenced: the first sweep clears both bits, the second
  // evicts the page the hand reaches first — page 1, the older frame.
  pool.Pin(3);
  pool.Unpin(3);
  EXPECT_EQ(pool.evictions(), 1u);

  const uint64_t misses_before = pool.misses();
  pool.Pin(2);  // survivor: still resident
  pool.Unpin(2);
  EXPECT_EQ(pool.misses(), misses_before);
  pool.Pin(1);  // victim: faulted back in
  pool.Unpin(1);
  EXPECT_EQ(pool.misses(), misses_before + 1);
  EXPECT_EQ(pool.evictions(), 2u);
}

TEST(BufferPoolTest, PinnedPagesAreNeverEvicted) {
  MemoryStorageManager store(kMinPageSize);
  FillPages(&store, 8);
  BufferPool pool(&store, 2);
  const uint8_t* pinned = pool.Pin(1);  // held across the churn below

  // Churn every other page through the one remaining frame.
  for (int64_t page = 2; page <= 8; ++page) {
    const uint8_t* p = pool.Pin(page);
    EXPECT_EQ(
        std::memcmp(p, PatternPage(kMinPageSize, page).data(), kMinPageSize),
        0);
    pool.Unpin(page);
  }
  EXPECT_GE(pool.evictions(), 6u);

  // The pinned frame never moved or changed.
  EXPECT_EQ(std::memcmp(pinned, PatternPage(kMinPageSize, 1).data(),
                        kMinPageSize),
            0);
  const uint8_t* still = pool.Pin(1);
  EXPECT_EQ(still, pinned);
  pool.Unpin(1);
  pool.Unpin(1);
}

TEST(BufferPoolTest, NestedPinsKeepFrameResident) {
  MemoryStorageManager store(kMinPageSize);
  FillPages(&store, 4);
  BufferPool pool(&store, 2);
  pool.Pin(1);
  pool.Pin(1);  // nested
  pool.Unpin(1);
  // One pin still outstanding: page 1 must survive a full churn.
  pool.Pin(2);
  pool.Unpin(2);
  pool.Pin(3);
  pool.Unpin(3);
  pool.Pin(4);
  pool.Unpin(4);
  const uint64_t misses_before = pool.misses();
  pool.Pin(1);
  EXPECT_EQ(pool.misses(), misses_before);  // hit: never left the pool
  pool.Unpin(1);
  pool.Unpin(1);
}

TEST(BufferPoolTest, ExportMetrics) {
  MemoryStorageManager store(kMinPageSize);
  FillPages(&store, 3);
  BufferPool pool(&store, 2);
  pool.Pin(1);
  pool.Unpin(1);
  pool.Pin(1);
  pool.Unpin(1);
  pool.Pin(2);
  pool.Unpin(2);
  pool.Pin(3);
  pool.Unpin(3);

  MetricsRegistry registry;
  pool.ExportMetrics(&registry);
  EXPECT_EQ(registry.counter("storage.pool_hits"),
            static_cast<int64_t>(pool.hits()));
  EXPECT_EQ(registry.counter("storage.pool_misses"),
            static_cast<int64_t>(pool.misses()));
  EXPECT_EQ(registry.counter("storage.pool_evictions"),
            static_cast<int64_t>(pool.evictions()));
  EXPECT_EQ(registry.counter("storage.pool_hits"), 1);
  EXPECT_EQ(registry.counter("storage.pool_misses"), 3);
  EXPECT_EQ(registry.counter("storage.pool_evictions"), 1);
}

}  // namespace
}  // namespace lbsq::storage
