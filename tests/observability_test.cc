#include "common/observability.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/stats.h"
#include "sim/config.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"

namespace lbsq {
namespace {

// ---------------------------------------------------------------------------
// Histogram percentile edge cases.

TEST(HistogramTest, EmptyReportsLowerBound) {
  Histogram h(0.0, 100.0, 10);
  EXPECT_EQ(h.total(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.P99(), 0.0);
}

TEST(HistogramTest, SingleSampleReportsItselfAtEveryPercentile) {
  Histogram h(0.0, 100.0, 10);
  h.Add(37.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 37.5);
  EXPECT_DOUBLE_EQ(h.P50(), 37.5);
  EXPECT_DOUBLE_EQ(h.P99(), 37.5);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 37.5);
}

TEST(HistogramTest, AllEqualSamplesCollapseToTheValue) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 1000; ++i) h.Add(42.0);
  EXPECT_DOUBLE_EQ(h.P50(), 42.0);
  EXPECT_DOUBLE_EQ(h.P95(), 42.0);
  EXPECT_DOUBLE_EQ(h.P99(), 42.0);
  EXPECT_DOUBLE_EQ(h.sample_min(), 42.0);
  EXPECT_DOUBLE_EQ(h.sample_max(), 42.0);
}

TEST(HistogramTest, OverflowSamplesClampToExactMax) {
  Histogram h(0.0, 10.0, 10);
  h.Add(5.0);
  h.Add(250.0);  // beyond hi: lands in the last bucket
  h.Add(975.0);  // beyond hi: lands in the last bucket
  EXPECT_EQ(h.overflow_count(), 2);
  EXPECT_EQ(h.bucket_count(9), 2);
  // Percentiles never exceed the true maximum even though the bucket
  // boundary (10.0) is far below it.
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 975.0);
  EXPECT_LE(h.P50(), 975.0);
  EXPECT_DOUBLE_EQ(h.sample_max(), 975.0);
}

TEST(HistogramTest, UnderflowSamplesClampToExactMin) {
  Histogram h(10.0, 20.0, 5);
  h.Add(-3.0);
  h.Add(15.0);
  EXPECT_EQ(h.underflow_count(), 1);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), -3.0);
  EXPECT_DOUBLE_EQ(h.sample_min(), -3.0);
}

TEST(HistogramTest, MergeMatchesSingleStreamExactly) {
  Histogram a(0.0, 50.0, 25), b(0.0, 50.0, 25), all(0.0, 50.0, 25);
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>((i * 37) % 60);  // some overflow
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a, all);
}

TEST(HistogramTest, MergeRejectsMismatchedGeometry) {
  Histogram a(0.0, 50.0, 25);
  Histogram b(0.0, 50.0, 10);
  EXPECT_DEATH(a.Merge(b), "LBSQ_CHECK");
}

// ---------------------------------------------------------------------------
// FormatDouble: shortest representation that round-trips.

TEST(FormatDoubleTest, IntegersAndShortFractions) {
  EXPECT_EQ(obs::FormatDouble(0.0), "0");
  EXPECT_EQ(obs::FormatDouble(14.0), "14");
  EXPECT_EQ(obs::FormatDouble(0.1), "0.1");
  EXPECT_EQ(obs::FormatDouble(-2.5), "-2.5");
}

TEST(FormatDoubleTest, RoundTripsExactly) {
  for (const double x : {1.0 / 3.0, 0.1 + 0.2, 1e-300, 123456.789}) {
    double parsed = 0.0;
    ASSERT_EQ(std::sscanf(obs::FormatDouble(x).c_str(), "%lf", &parsed), 1);
    EXPECT_EQ(parsed, x);
  }
}

// ---------------------------------------------------------------------------
// TraceRecorder + TraceSink.

TEST(TraceTest, RecorderCapturesSpansAndCounters) {
  if (!obs::kObservabilityCompiledIn) GTEST_SKIP();
  obs::TraceRecorder r;
  r.Reset(7, 42, "knn");
  r.Span("phase.a", 10, 25);
  r.Counter("hits", 3.0);
  ASSERT_EQ(r.events().size(), 2u);
  EXPECT_EQ(r.events()[0].kind, obs::TraceEvent::Kind::kSpan);
  EXPECT_EQ(r.events()[0].begin, 10);
  EXPECT_EQ(r.events()[0].end, 25);
  EXPECT_EQ(r.events()[1].kind, obs::TraceEvent::Kind::kCounter);
  EXPECT_DOUBLE_EQ(r.events()[1].value, 3.0);

  r.Reset(8, 42, "knn");  // Reset clears prior events
  EXPECT_TRUE(r.events().empty());
}

TEST(TraceTest, SinkSerializesJsonlInAppendOrder) {
  if (!obs::kObservabilityCompiledIn) GTEST_SKIP();
  obs::TraceRecorder r;
  r.Reset(3, 11, "window");
  r.Span("bcast.data", 100, 140);
  r.Counter("bcast.data_retries", 2.0);
  obs::TraceSink sink;
  sink.Append(r);
  EXPECT_EQ(sink.event_count(), 2);
  EXPECT_EQ(sink.jsonl(),
            "{\"q\":3,\"host\":11,\"type\":\"window\",\"kind\":\"span\","
            "\"name\":\"bcast.data\",\"begin\":100,\"end\":140}\n"
            "{\"q\":3,\"host\":11,\"type\":\"window\",\"kind\":\"counter\","
            "\"name\":\"bcast.data_retries\",\"value\":2}\n");
}

// ---------------------------------------------------------------------------
// MetricsRegistry.

TEST(MetricsRegistryTest, ReRegisteringReturnsTheSameHistogram) {
  MetricsRegistry registry;
  Histogram* first = registry.AddHistogram("lat", 0.0, 10.0, 5);
  Histogram* again = registry.AddHistogram("lat", 0.0, 99.0, 7);
  EXPECT_EQ(first, again);
  EXPECT_EQ(first->num_buckets(), 5);
}

TEST(MetricsRegistryTest, ObserveUnregisteredNameIsDropped) {
  MetricsRegistry registry;
  registry.Observe("nobody_home", 1.0);
  EXPECT_EQ(registry.FindHistogram("nobody_home"), nullptr);
  EXPECT_TRUE(registry.HistogramNames().empty());
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.IncrementCounter("queries");
  registry.IncrementCounter("queries");
  registry.IncrementCounter("queries", 3);
  EXPECT_EQ(registry.counter("queries"), 5);
  EXPECT_EQ(registry.counter("never_touched"), 0);
}

TEST(MetricsRegistryTest, JsonExportContainsSummaryFields) {
  MetricsRegistry registry;
  registry.AddHistogram("lat", 0.0, 10.0, 2);
  registry.Observe("lat", 4.0);
  registry.IncrementCounter("queries");
  const std::string json = registry.ExportJson();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"queries\": 1"), std::string::npos);
}

TEST(MetricsRegistryTest, CsvExportHasHeaderAndRows) {
  MetricsRegistry registry;
  registry.AddHistogram("lat", 0.0, 10.0, 2);
  registry.Observe("lat", 4.0);
  registry.IncrementCounter("queries", 2);
  const std::string csv = registry.ExportCsv();
  EXPECT_EQ(csv.rfind("row,name,field1,field2,field3\n", 0), 0u);
  EXPECT_NE(csv.find("histogram_bucket,lat,0,5,1\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,queries,2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: the trace and registry exports are a pure
// function of config + seed, independent of the thread count and engine.

sim::SimConfig TraceConfig(sim::QueryType type) {
  sim::SimConfig config;
  config.params = sim::LosAngelesCity();
  config.query_type = type;
  config.world_side_mi = 1.0;
  config.warmup_min = 6.0;
  config.duration_min = 6.0;
  config.seed = 13;
  return config;
}

struct Observed {
  std::string jsonl;
  std::string metrics_json;
};

Observed RunObserved(sim::SimConfig config, int threads, int epoch = 32) {
  config.threads = threads;
  config.events_per_epoch = epoch;
  sim::ParallelSimulator simulator(config);
  obs::TraceSink sink;
  MetricsRegistry registry;
  registry.AddHistogram("access_latency", 0.0, 4096.0, 64);
  registry.AddHistogram("tuning_time", 0.0, 1024.0, 64);
  simulator.SetObserver(&sink, &registry);
  simulator.Run();
  return Observed{sink.jsonl(), registry.ExportJson()};
}

TEST(TraceDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  const sim::SimConfig config = TraceConfig(sim::QueryType::kKnn);
  const Observed one = RunObserved(config, 1);
  // With recording compiled out the trace is empty (and trivially
  // identical); the registry equality below still bites.
  if (obs::kObservabilityCompiledIn) EXPECT_FALSE(one.jsonl.empty());
  const Observed two = RunObserved(config, 2);
  const Observed eight = RunObserved(config, 8);
  EXPECT_EQ(one.jsonl, two.jsonl);
  EXPECT_EQ(one.jsonl, eight.jsonl);
  EXPECT_EQ(one.metrics_json, two.metrics_json);
  EXPECT_EQ(one.metrics_json, eight.metrics_json);
}

TEST(TraceDeterminismTest, SequentialEngineMatchesParallelAtEpochOne) {
  const sim::SimConfig config = TraceConfig(sim::QueryType::kWindow);

  sim::Simulator sequential(config);
  obs::TraceSink seq_sink;
  MetricsRegistry seq_registry;
  seq_registry.AddHistogram("access_latency", 0.0, 4096.0, 64);
  seq_registry.AddHistogram("tuning_time", 0.0, 1024.0, 64);
  sequential.SetObserver(&seq_sink, &seq_registry);
  sequential.Run();

  const Observed parallel = RunObserved(config, 4, /*epoch=*/1);
  if (obs::kObservabilityCompiledIn) EXPECT_FALSE(seq_sink.jsonl().empty());
  EXPECT_EQ(seq_sink.jsonl(), parallel.jsonl);
  EXPECT_EQ(seq_registry.ExportJson(), parallel.metrics_json);
}

}  // namespace
}  // namespace lbsq
