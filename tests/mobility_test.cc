#include "sim/mobility.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lbsq::sim {
namespace {

const geom::Rect kWorld{0.0, 0.0, 10.0, 10.0};

TEST(MobilityTest, PositionsStayInWorld) {
  RandomWaypointModel model(kWorld, 20, 0.5, 1.0, 1);
  for (double t = 0.0; t < 100.0; t += 0.37) {
    for (int64_t h = 0; h < 20; ++h) {
      const geom::Point p = model.Position(h, t);
      EXPECT_TRUE(kWorld.Contains(p)) << "host " << h << " t " << t;
    }
  }
}

TEST(MobilityTest, MovementRespectsSpeedBounds) {
  RandomWaypointModel model(kWorld, 10, 0.5, 1.0, 2);
  std::vector<geom::Point> prev(10);
  for (int64_t h = 0; h < 10; ++h) prev[static_cast<size_t>(h)] = model.Position(h, 0.0);
  const double dt = 0.01;
  for (double t = dt; t < 20.0; t += dt) {
    for (int64_t h = 0; h < 10; ++h) {
      const geom::Point p = model.Position(h, t);
      const double moved = geom::Distance(p, prev[static_cast<size_t>(h)]);
      // Within one leg speed <= max; across a waypoint turn the path is two
      // segments, so displacement is still bounded by max speed * dt.
      EXPECT_LE(moved, 1.0 * dt + 1e-9);
      prev[static_cast<size_t>(h)] = p;
    }
  }
}

TEST(MobilityTest, HostsActuallyMove) {
  RandomWaypointModel model(kWorld, 5, 0.5, 1.0, 3);
  for (int64_t h = 0; h < 5; ++h) {
    const geom::Point a = model.Position(h, 0.0);
    const geom::Point b = model.Position(h, 5.0);
    EXPECT_GT(geom::Distance(a, b), 1e-6);
  }
}

TEST(MobilityTest, HeadingIsUnitVector) {
  RandomWaypointModel model(kWorld, 8, 0.5, 1.0, 4);
  for (int64_t h = 0; h < 8; ++h) {
    model.Position(h, 3.0);
    const geom::Point dir = model.Heading(h);
    EXPECT_NEAR(geom::Norm(dir), 1.0, 1e-9);
  }
}

TEST(MobilityTest, DeterministicAcrossInstances) {
  RandomWaypointModel a(kWorld, 6, 0.5, 1.0, 77);
  RandomWaypointModel b(kWorld, 6, 0.5, 1.0, 77);
  for (double t = 0.0; t < 30.0; t += 1.3) {
    for (int64_t h = 0; h < 6; ++h) {
      EXPECT_EQ(a.Position(h, t), b.Position(h, t));
    }
  }
}

TEST(MobilityTest, LongHorizonAdvancesManyLegs) {
  RandomWaypointModel model(kWorld, 3, 1.0, 2.0, 5);
  // 10000 minutes at ~1.5 world-units/minute crosses the world many times.
  for (int64_t h = 0; h < 3; ++h) {
    const geom::Point p = model.Position(h, 10000.0);
    EXPECT_TRUE(kWorld.Contains(p));
  }
}

TEST(MobilityTest, HeadingPointsTowardDestination) {
  RandomWaypointModel model(kWorld, 10, 0.5, 1.0, 6);
  for (int64_t h = 0; h < 10; ++h) {
    const geom::Point p0 = model.Position(h, 0.0);
    const geom::Point dir = model.Heading(h);
    const geom::Point p1 = model.Position(h, 0.001);
    // Short-horizon displacement aligns with the reported heading.
    const geom::Point d = p1 - p0;
    if (geom::Norm(d) > 0.0) {
      EXPECT_GT(geom::Dot(d, dir), 0.0);
    }
  }
}

}  // namespace
}  // namespace lbsq::sim
