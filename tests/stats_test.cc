#include "common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace lbsq {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4 -> sample variance = 4 * 8 / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStat b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(HistogramTest, CountsAndTotal) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.total(), 10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(h.bucket_count(i), 1);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(25.0);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(9), 1);
}

TEST(HistogramTest, PercentileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Percentile(50.0), 50.0, 1.5);
  EXPECT_NEAR(h.Percentile(90.0), 90.0, 1.5);
  EXPECT_NEAR(h.Percentile(100.0), 100.0, 1.5);
}

TEST(HistogramTest, PercentileEmpty) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 2.0);
}

TEST(HistogramTest, ToStringRendersAllBuckets) {
  Histogram h(0.0, 4.0, 4);
  h.Add(0.5);
  h.Add(1.5);
  const std::string s = h.ToString();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

}  // namespace
}  // namespace lbsq
