#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/simulator.h"

namespace lbsq::sim {
namespace {

// End-to-end runs with every internal validity check enabled: every
// sharing-based answer is compared against a brute-force oracle over the
// server database, and every cache entry is re-validated for completeness
// after each insertion. These runs are slow per query, so the worlds are
// small; the point is that thousands of end-to-end queries execute without
// a single soundness violation.

SimConfig CheckedConfig(QueryType type, uint64_t seed) {
  SimConfig config;
  config.params = LosAngelesCity();
  config.query_type = type;
  config.world_side_mi = 1.0;
  config.warmup_min = 8.0;
  config.duration_min = 8.0;
  config.check_answers = true;
  config.check_cache_invariant = true;
  config.seed = seed;
  return config;
}

TEST(IntegrationTest, KnnEndToEndWithOracleChecks) {
  Simulator sim(CheckedConfig(QueryType::kKnn, 11));
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.queries, 30);
}

TEST(IntegrationTest, WindowEndToEndWithOracleChecks) {
  Simulator sim(CheckedConfig(QueryType::kWindow, 13));
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.queries, 30);
}

TEST(IntegrationTest, KnnCheckedAcrossParameterSets) {
  for (const ParameterSet& params :
       {LosAngelesCity(), SyntheticSuburbia(), RiversideCounty()}) {
    SimConfig config = CheckedConfig(QueryType::kKnn, 17);
    config.params = params;
    // Denser world for Riverside so some peers exist at all.
    config.world_side_mi = params.mh_number < 20000 ? 2.0 : 1.0;
    Simulator sim(config);
    const SimMetrics metrics = sim.Run();
    EXPECT_GT(metrics.queries, 10) << params.name;
  }
}

TEST(IntegrationTest, FilteringAblationStaysSound) {
  for (bool filtering : {true, false}) {
    SimConfig config = CheckedConfig(QueryType::kKnn, 19);
    config.use_filtering = filtering;
    Simulator sim(config);
    sim.Run();
  }
}

TEST(IntegrationTest, WindowReductionAblationStaysSound) {
  for (bool reduction : {true, false}) {
    SimConfig config = CheckedConfig(QueryType::kWindow, 23);
    config.use_window_reduction = reduction;
    Simulator sim(config);
    sim.Run();
  }
}

TEST(IntegrationTest, PartitionedRetrievalStaysSound) {
  SimConfig config = CheckedConfig(QueryType::kWindow, 29);
  config.retrieval = onair::WindowRetrieval::kPartitionedRanges;
  Simulator sim(config);
  sim.Run();
}

TEST(IntegrationTest, ApproximateDisabledStaysSound) {
  SimConfig config = CheckedConfig(QueryType::kKnn, 31);
  config.accept_approximate = false;
  Simulator sim(config);
  const SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.solved_approximate, 0);
}

TEST(IntegrationTest, TightCacheCapacityStaysSound) {
  SimConfig config = CheckedConfig(QueryType::kKnn, 37);
  config.params.csize = 3;  // forces aggressive region shrinking
  Simulator sim(config);
  sim.Run();
}

}  // namespace
}  // namespace lbsq::sim
