#include "spatial/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "geom/point.h"

namespace lbsq::spatial {
namespace {

const geom::Rect kWorld{0.0, 0.0, 10.0, 10.0};

std::vector<int64_t> BruteForceDisc(const std::vector<geom::Point>& pts,
                                    geom::Point center, double radius) {
  std::vector<int64_t> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (geom::Distance(pts[i], center) <= radius) {
      out.push_back(static_cast<int64_t>(i));
    }
  }
  return out;
}

TEST(GridIndexTest, EmptyIndex) {
  GridIndex index(kWorld, 1.0);
  index.Rebuild({});
  std::vector<int64_t> out;
  index.QueryDisc({5.0, 5.0}, 3.0, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(index.size(), 0);
}

TEST(GridIndexTest, MatchesBruteForce) {
  Rng rng(3);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)});
  }
  GridIndex index(kWorld, 0.7);
  index.Rebuild(pts);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Point c{rng.Uniform(-1.0, 11.0), rng.Uniform(-1.0, 11.0)};
    const double r = rng.Uniform(0.1, 3.0);
    std::vector<int64_t> got;
    index.QueryDisc(c, r, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceDisc(pts, c, r));
  }
}

TEST(GridIndexTest, ClosedBallIncludesBoundary) {
  GridIndex index(kWorld, 1.0);
  index.Rebuild({{2.0, 2.0}, {5.0, 2.0}});
  std::vector<int64_t> out;
  index.QueryDisc({2.0, 2.0}, 3.0, &out);  // second point at exactly r
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int64_t>{0, 1}));
}

TEST(GridIndexTest, RebuildReplacesContent) {
  GridIndex index(kWorld, 1.0);
  index.Rebuild({{1.0, 1.0}});
  index.Rebuild({{9.0, 9.0}});
  std::vector<int64_t> out;
  index.QueryDisc({1.0, 1.0}, 0.5, &out);
  EXPECT_TRUE(out.empty());
  index.QueryDisc({9.0, 9.0}, 0.5, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(index.position(0), (geom::Point{9.0, 9.0}));
}

TEST(GridIndexTest, PointsOutsideWorldClampIntoBorderCells) {
  GridIndex index(kWorld, 1.0);
  index.Rebuild({{-5.0, -5.0}, {15.0, 15.0}});
  std::vector<int64_t> out;
  index.QueryDisc({-5.0, -5.0}, 1.0, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0);
}

// Unsorted world-covering scan: QueryDisc appends each row of the CSR slab
// in storage order, so an all-covering disc reads the entire slab back in
// layout order. Equal unsorted scans mean equal slabs — the bit-identity
// ApplyMoves promises against Rebuild.
std::vector<int64_t> SlabScan(const GridIndex& index) {
  std::vector<int64_t> out;
  index.QueryDisc({5.0, 5.0}, 100.0, &out);
  return out;
}

TEST(GridIndexTest, ApplyMovesMatchesRebuildUnderJitter) {
  Rng rng(11);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)});
  }
  GridIndex patched(kWorld, 0.9);
  GridIndex rebuilt(kWorld, 0.9);
  patched.Rebuild(pts);
  for (int step = 0; step < 60; ++step) {
    // Small jitter: most points stay in their cell, a few cross.
    for (geom::Point& p : pts) {
      p.x = std::clamp(p.x + rng.Uniform(-0.3, 0.3), 0.0, 10.0);
      p.y = std::clamp(p.y + rng.Uniform(-0.3, 0.3), 0.0, 10.0);
    }
    patched.ApplyMoves(pts);
    rebuilt.Rebuild(pts);
    ASSERT_EQ(SlabScan(patched), SlabScan(rebuilt)) << "step " << step;
    const geom::Point c{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    const double r = rng.Uniform(0.2, 2.5);
    std::vector<int64_t> got;
    patched.QueryDisc(c, r, &got);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceDisc(pts, c, r)) << "step " << step;
  }
}

TEST(GridIndexTest, ApplyMovesMatchesRebuildUnderTeleports) {
  // Every point relocates uniformly each step: worst case, everything
  // crosses cells and every row is dirty.
  Rng rng(17);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)});
  }
  GridIndex patched(kWorld, 1.2);
  GridIndex rebuilt(kWorld, 1.2);
  patched.Rebuild(pts);
  for (int step = 0; step < 30; ++step) {
    for (geom::Point& p : pts) {
      p = {rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    }
    patched.ApplyMoves(pts);
    rebuilt.Rebuild(pts);
    ASSERT_EQ(SlabScan(patched), SlabScan(rebuilt)) << "step " << step;
  }
}

TEST(GridIndexTest, ApplyMovesNoMoversIsIdentity) {
  Rng rng(23);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)});
  }
  GridIndex index(kWorld, 1.0);
  index.Rebuild(pts);
  const std::vector<int64_t> before = SlabScan(index);
  index.ApplyMoves(pts);
  EXPECT_EQ(SlabScan(index), before);
}

TEST(GridIndexTest, ApplyMovesFallsBackOnSizeChange) {
  GridIndex index(kWorld, 1.0);
  index.Rebuild({{1.0, 1.0}, {2.0, 2.0}});
  index.ApplyMoves({{3.0, 3.0}});  // Shrink: must take the Rebuild path.
  EXPECT_EQ(index.size(), 1);
  EXPECT_EQ(index.position(0), (geom::Point{3.0, 3.0}));
  index.ApplyMoves({{4.0, 4.0}, {5.0, 5.0}, {6.0, 6.0}});  // Grow.
  EXPECT_EQ(index.size(), 3);
  std::vector<int64_t> out;
  index.QueryDisc({5.0, 5.0}, 0.5, &out);
  EXPECT_EQ(out, (std::vector<int64_t>{1}));
}

TEST(GridIndexTest, TinyCellSizeClamped) {
  // Requested cell size far below the 1024-per-axis cap must not blow up.
  GridIndex index(kWorld, 1e-9);
  Rng rng(5);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)});
  }
  index.Rebuild(pts);
  std::vector<int64_t> out;
  index.QueryDisc({5.0, 5.0}, 10.0, &out);
  EXPECT_EQ(out.size(), 100u);
}

}  // namespace
}  // namespace lbsq::spatial
