#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "engine_shim.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "core/sbnn.h"
#include "core/sbwq.h"
#include "dynamic/dynamic_engine.h"
#include "dynamic/world_versioner.h"
#include "onair/onair_knn.h"
#include "onair/onair_window.h"
#include "spatial/generators.h"
#include "spatial/quadtree.h"
#include "spatial/rstar_tree.h"
#include "spatial/rtree.h"

/// Differential testing: every implementation of the same query answers the
/// same random instances identically. One shared world per seed; window
/// queries are answered by the Guttman R-tree (dynamic and bulk-loaded), the
/// R*-tree, the PR quadtree, the on-air client (both retrieval modes), SBWQ
/// with random peers, and brute force; kNN by both R-tree strategies, the
/// R*-tree, the quadtree, the on-air client, SBNN, and brute force.

namespace lbsq {
namespace {

using spatial::Poi;

struct World {
  std::vector<Poi> pois;
  std::unique_ptr<broadcast::BroadcastSystem> system;
  spatial::RTree rtree;
  spatial::RTree packed;
  spatial::RStarTree rstar;
  std::unique_ptr<spatial::QuadTree> quad;
  double density;

  explicit World(uint64_t seed) {
    const geom::Rect bounds{0.0, 0.0, 15.0, 15.0};
    Rng rng(seed);
    const int n = static_cast<int>(rng.UniformInt(50, 600));
    pois = rng.NextBool(0.3)
               ? spatial::GenerateClusteredPois(&rng, bounds, 8,
                                                n / 8.0, 0.8)
               : spatial::GenerateUniformPois(&rng, bounds, n);
    density = static_cast<double>(pois.size()) / bounds.area();
    broadcast::BroadcastParams params;
    params.hilbert_order = 5;
    params.bucket_capacity = static_cast<int>(rng.UniformInt(2, 12));
    if (rng.NextBool(0.5)) params.index_kind = broadcast::IndexKind::kTree;
    system = std::make_unique<broadcast::BroadcastSystem>(pois, bounds,
                                                          params);
    rtree.InsertAll(pois);
    packed = spatial::RTree::BulkLoadStr(pois);
    rstar.InsertAll(pois);
    quad = std::make_unique<spatial::QuadTree>(bounds, 8);
    quad->InsertAll(pois);
  }

  core::PeerData RandomPeer(Rng* rng) const {
    core::VerifiedRegion vr;
    vr.region = geom::Rect::CenteredSquare(
        {rng->Uniform(0.0, 15.0), rng->Uniform(0.0, 15.0)},
        rng->Uniform(0.5, 3.0));
    for (const Poi& p : pois) {
      if (vr.region.Contains(p.pos)) vr.pois.push_back(p);
    }
    return core::PeerData{{vr}};
  }
};

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllWindowImplementationsAgree) {
  World world(GetParam());
  Rng rng(GetParam() * 31 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 12.0), rng.Uniform(0.0, 12.0)};
    const geom::Rect window{a.x, a.y, a.x + rng.Uniform(0.5, 4.0),
                            a.y + rng.Uniform(0.5, 4.0)};
    const auto truth = spatial::BruteForceWindow(world.pois, window);
    EXPECT_EQ(world.rtree.WindowQuery(window), truth);
    EXPECT_EQ(world.packed.WindowQuery(window), truth);
    EXPECT_EQ(world.rstar.WindowQuery(window), truth);
    EXPECT_EQ(world.quad->WindowQuery(window), truth);
    EXPECT_EQ(
        onair::OnAirWindow(*world.system, window, trial * 3).pois, truth);
    EXPECT_EQ(onair::OnAirWindow(*world.system, window, trial * 3,
                                 onair::WindowRetrieval::kPartitionedRanges)
                  .pois,
              truth);
    std::vector<core::PeerData> peers;
    const int n_peers = static_cast<int>(rng.UniformInt(0, 3));
    for (int p = 0; p < n_peers; ++p) peers.push_back(world.RandomPeer(&rng));
    EXPECT_EQ(core::RunSbwq(window, {}, peers, *world.system, trial).pois,
              truth);
  }
}

TEST_P(DifferentialTest, AllKnnImplementationsAgree) {
  World world(GetParam());
  Rng rng(GetParam() * 37 + 2);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 15.0), rng.Uniform(0.0, 15.0)};
    const int k = static_cast<int>(rng.UniformInt(1, 12));
    const auto truth = spatial::BruteForceKnn(world.pois, q, k);
    auto expect_ids = [&truth](const std::vector<spatial::PoiDistance>& got,
                               const char* what) {
      ASSERT_EQ(got.size(), truth.size()) << what;
      for (size_t i = 0; i < truth.size(); ++i) {
        EXPECT_EQ(got[i].poi.id, truth[i].poi.id) << what << " i=" << i;
      }
    };
    expect_ids(world.rtree.KnnBestFirst(q, k), "rtree best-first");
    expect_ids(world.rtree.KnnDepthFirst(q, k), "rtree depth-first");
    expect_ids(world.packed.KnnBestFirst(q, k), "packed rtree");
    expect_ids(world.rstar.Knn(q, k), "rstar");
    expect_ids(world.quad->Knn(q, k), "quadtree");
    expect_ids(onair::OnAirKnn(*world.system, q, k, trial * 5).neighbors,
               "on-air");
    std::vector<core::PeerData> peers;
    const int n_peers = static_cast<int>(rng.UniformInt(0, 3));
    for (int p = 0; p < n_peers; ++p) peers.push_back(world.RandomPeer(&rng));
    core::SbnnOptions options;
    options.k = k;
    options.accept_approximate = false;
    expect_ids(core::RunSbnn(q, options, peers, world.density, *world.system,
                             trial)
                   .neighbors,
               "sbnn");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 16));

// --- Dynamic engine with zero updates == static engine ---------------------

// The updates-off contract of the dynamic world: a WorldVersioner that never
// receives a batch serves epoch 0 forever, and queries executed through the
// DynamicQueryEngine are bit-identical — answers, access stats, and
// cacheable regions — to the same queries against a directly constructed
// static QueryEngine over the same POIs.
TEST_P(DifferentialTest, ZeroUpdateDynamicEngineMatchesStatic) {
  World world(GetParam());
  Rng rng(GetParam() * 41 + 3);
  const geom::Rect bounds{0.0, 0.0, 15.0, 15.0};

  core::EngineOptions options;
  options.sbnn.accept_approximate = false;
  broadcast::BroadcastParams params;
  params.hilbert_order = 5;
  params.bucket_capacity = world.system->params().bucket_capacity;
  params.index_kind = world.system->params().index_kind;
  broadcast::BroadcastSystem static_system(world.pois, bounds, params);
  core::QueryEngine static_engine(static_system, bounds, options);

  dynamic::WorldVersioner versioner(world.pois, bounds, params, options);
  dynamic::DynamicQueryEngine dyn(versioner);
  EXPECT_EQ(versioner.latest_epoch(), 0u);

  core::QueryWorkspace static_ws;
  core::QueryWorkspace dyn_ws;
  core::QueryOutcome static_out;
  core::QueryOutcome dyn_out;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<core::PeerData> peers;
    const int n_peers = static_cast<int>(rng.UniformInt(0, 3));
    for (int p = 0; p < n_peers; ++p) peers.push_back(world.RandomPeer(&rng));

    core::QueryRequest request;
    if (rng.NextBool(0.5)) {
      request.kind = core::QueryKind::kKnn;
      request.position = {rng.Uniform(0.0, 15.0), rng.Uniform(0.0, 15.0)};
      request.k = static_cast<int>(rng.UniformInt(1, 10));
    } else {
      request.kind = core::QueryKind::kWindow;
      const geom::Point a{rng.Uniform(0.0, 12.0), rng.Uniform(0.0, 12.0)};
      request.window = {a.x, a.y, a.x + rng.Uniform(0.5, 4.0),
                        a.y + rng.Uniform(0.5, 4.0)};
    }
    request.slot = trial * 7;

    // The static engine reads `peers` through the request's span; the
    // dynamic engine takes the same vector as its mutable snapshot (with
    // zero updates, revalidation never edits it).
    request.peers = peers;
    static_engine.Execute(request, static_ws, &static_out);
    request.peers = {};
    dynamic::RevalidationStats stats;
    const std::shared_ptr<const dynamic::WorldEpoch> pinned =
        dyn.Execute(request, &peers, dyn_ws, &dyn_out, &stats);

    EXPECT_EQ(pinned->id, 0u);
    // Revalidation with no updates never touches anything.
    EXPECT_EQ(stats.revalidated, 0);
    EXPECT_EQ(stats.rejected, 0);
    if (request.kind == core::QueryKind::kKnn) {
      ASSERT_TRUE(static_out.knn.has_value());
      ASSERT_TRUE(dyn_out.knn.has_value());
      ASSERT_EQ(dyn_out.knn->neighbors.size(),
                static_out.knn->neighbors.size());
      for (size_t i = 0; i < static_out.knn->neighbors.size(); ++i) {
        EXPECT_EQ(dyn_out.knn->neighbors[i].poi.id,
                  static_out.knn->neighbors[i].poi.id);
        EXPECT_EQ(dyn_out.knn->neighbors[i].distance,
                  static_out.knn->neighbors[i].distance);
      }
    } else {
      ASSERT_TRUE(static_out.window.has_value());
      ASSERT_TRUE(dyn_out.window.has_value());
      EXPECT_EQ(dyn_out.window->pois, static_out.window->pois);
    }
    EXPECT_EQ(dyn_out.Stats().access_latency,
              static_out.Stats().access_latency);
    EXPECT_EQ(dyn_out.Stats().tuning_time, static_out.Stats().tuning_time);
    EXPECT_EQ(dyn_out.Stats().buckets_read, static_out.Stats().buckets_read);
    EXPECT_EQ(dyn_out.Cacheable().region.x1, static_out.Cacheable().region.x1);
    EXPECT_EQ(dyn_out.Cacheable().region.y2, static_out.Cacheable().region.y2);
    EXPECT_EQ(dyn_out.Cacheable().pois, static_out.Cacheable().pois);
    // Epoch-0 cacheables carry the legacy tag: byte-compatible with every
    // pre-dynamic consumer.
    EXPECT_EQ(dyn_out.Cacheable().epoch, 0u);
    EXPECT_EQ(static_out.Cacheable().epoch, 0u);
  }
}

}  // namespace
}  // namespace lbsq
