#include "broadcast/air_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "spatial/generators.h"
#include "spatial/poi.h"

namespace lbsq::broadcast {
namespace {

const geom::Rect kWorld{0.0, 0.0, 32.0, 32.0};

struct Fixture {
  hilbert::HilbertGrid grid{kWorld, 5};
  std::vector<spatial::Poi> pois;
  std::vector<DataBucket> buckets;

  explicit Fixture(int n, int capacity = 8, uint64_t seed = 1) {
    Rng rng(seed);
    pois = spatial::GenerateUniformPois(&rng, kWorld, n);
    buckets = BuildBuckets(pois, grid, capacity);
  }
};

TEST(AirIndexTest, OneEntryPerObject) {
  Fixture f(120);
  AirIndex index(f.buckets, f.grid, 16);
  EXPECT_EQ(index.entries().size(), 120u);
}

TEST(AirIndexTest, SizeInBuckets) {
  Fixture f(120);
  AirIndex index(f.buckets, f.grid, 16);
  EXPECT_EQ(index.SizeInBuckets(), 8);  // ceil(120 / 16)
  AirIndex big(f.buckets, f.grid, 1000);
  EXPECT_EQ(big.SizeInBuckets(), 1);
}

TEST(AirIndexTest, KthDistanceUpperBoundIsSound) {
  Fixture f(200);
  AirIndex index(f.buckets, f.grid, 16);
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 32.0), rng.Uniform(0.0, 32.0)};
    for (int k : {1, 3, 10, 50}) {
      const double bound = index.KthDistanceUpperBound(q, k);
      const auto truth = spatial::BruteForceKnn(f.pois, q, k);
      EXPECT_GE(bound, truth.back().distance)
          << "k=" << k << " trial=" << trial;
    }
  }
}

TEST(AirIndexTest, KthDistanceUpperBoundIsTight) {
  // The bound overshoots by at most one cell diagonal.
  Fixture f(300);
  AirIndex index(f.buckets, f.grid, 16);
  const double diag = std::sqrt(2.0) * 32.0 / 32.0;  // cell size 1
  Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 32.0), rng.Uniform(0.0, 32.0)};
    const double bound = index.KthDistanceUpperBound(q, 5);
    const auto truth = spatial::BruteForceKnn(f.pois, q, 5);
    EXPECT_LE(bound, truth.back().distance + 2.0 * diag);
  }
}

TEST(AirIndexTest, KthDistanceUpperBoundInsufficientData) {
  Fixture f(3);
  AirIndex index(f.buckets, f.grid, 16);
  EXPECT_TRUE(std::isinf(index.KthDistanceUpperBound({1.0, 1.0}, 5)));
  EXPECT_TRUE(std::isfinite(index.KthDistanceUpperBound({1.0, 1.0}, 3)));
}

TEST(AirIndexTest, BucketsForSpanFindsAllContainingPois) {
  Fixture f(250, 6);
  AirIndex index(f.buckets, f.grid, 16);
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const uint64_t a = rng.NextBelow(f.grid.num_cells());
    const uint64_t b = rng.NextBelow(f.grid.num_cells());
    const uint64_t lo = std::min(a, b);
    const uint64_t hi = std::max(a, b);
    const auto got = index.BucketsForSpan(lo, hi);
    // Every POI whose Hilbert value is in the span must live in a returned
    // bucket.
    for (const DataBucket& bucket : f.buckets) {
      for (const spatial::Poi& p : bucket.pois) {
        const uint64_t h = f.grid.IndexOf(p.pos);
        if (h >= lo && h <= hi) {
          EXPECT_TRUE(std::binary_search(got.begin(), got.end(), bucket.id));
        }
      }
    }
    // And every returned bucket genuinely overlaps the span.
    for (int64_t id : got) {
      const DataBucket& bucket = f.buckets[static_cast<size_t>(id)];
      EXPECT_TRUE(bucket.hilbert_lo <= hi && bucket.hilbert_hi >= lo);
    }
  }
}

TEST(AirIndexTest, BucketsForRangesSubsetOfSpan) {
  Fixture f(250, 6);
  AirIndex index(f.buckets, f.grid, 16);
  const std::vector<hilbert::IndexRange> ranges = {
      {10, 20}, {100, 150}, {800, 810}};
  const auto by_ranges = index.BucketsForRanges(ranges);
  const auto by_span = index.BucketsForSpan(10, 810);
  for (int64_t id : by_ranges) {
    EXPECT_TRUE(std::binary_search(by_span.begin(), by_span.end(), id));
  }
  EXPECT_LE(by_ranges.size(), by_span.size());
}

TEST(AirIndexTest, BucketsForRangesNoDuplicates) {
  Fixture f(100, 4);
  AirIndex index(f.buckets, f.grid, 16);
  // Overlapping ranges must not duplicate buckets.
  const std::vector<hilbert::IndexRange> ranges = {{0, 500}, {200, 900}};
  const auto got = index.BucketsForRanges(ranges);
  for (size_t i = 1; i < got.size(); ++i) EXPECT_GT(got[i], got[i - 1]);
}

}  // namespace
}  // namespace lbsq::broadcast
