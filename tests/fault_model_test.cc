#include "fault/fault_model.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"

namespace lbsq::fault {
namespace {

TEST(ChannelFaultConfigTest, EnabledPredicate) {
  ChannelFaultConfig config;
  EXPECT_FALSE(config.enabled());
  config.loss_prob = 0.1;  // ignored while model is kNone
  EXPECT_FALSE(config.enabled());
  config.model = LossModel::kIid;
  EXPECT_TRUE(config.enabled());
  config.loss_prob = 0.0;
  EXPECT_FALSE(config.enabled());
  config.model = LossModel::kGilbertElliott;
  EXPECT_TRUE(config.enabled());
  config.model = LossModel::kNone;
  config.corruption_prob = 0.01;
  EXPECT_TRUE(config.enabled());
}

TEST(ChannelFaultConfigTest, SteadyStateLossRate) {
  ChannelFaultConfig config;
  EXPECT_DOUBLE_EQ(config.SteadyStateLossRate(), 0.0);

  config.model = LossModel::kIid;
  config.loss_prob = 0.17;
  EXPECT_DOUBLE_EQ(config.SteadyStateLossRate(), 0.17);

  config.model = LossModel::kGilbertElliott;
  config.p_good_to_bad = 0.02;
  config.p_bad_to_good = 0.08;
  config.loss_good = 0.0;
  config.loss_bad = 0.5;
  // Stationary bad fraction = 0.02 / 0.10 = 0.2 -> rate 0.2 * 0.5.
  EXPECT_DOUBLE_EQ(config.SteadyStateLossRate(), 0.1);

  // Degenerate chain that never leaves Good.
  config.p_good_to_bad = 0.0;
  config.p_bad_to_good = 0.0;
  config.loss_good = 0.05;
  EXPECT_DOUBLE_EQ(config.SteadyStateLossRate(), 0.05);
}

TEST(ChannelFaultConfigTest, ValidateRejectsOutOfRange) {
  ChannelFaultConfig config;
  config.Validate();  // defaults are legal
  config.loss_prob = 1.0;  // must be < 1 (loss_prob == 1 never terminates)
  EXPECT_DEATH(config.Validate(), "LBSQ_CHECK");
  config.loss_prob = 0.0;
  config.p_good_to_bad = -0.1;
  EXPECT_DEATH(config.Validate(), "LBSQ_CHECK");
  config.p_good_to_bad = 0.0;
  config.corruption_prob = 2.0;
  EXPECT_DEATH(config.Validate(), "LBSQ_CHECK");
}

TEST(PeerFaultConfigTest, ValidateAndEnabled) {
  PeerFaultConfig config;
  config.Validate();
  EXPECT_FALSE(config.enabled());
  config.stale_prob = 0.3;
  EXPECT_TRUE(config.enabled());
  config.stale_drift = -1.0;
  EXPECT_DEATH(config.Validate(), "LBSQ_CHECK");
}

TEST(FaultPolicyTest, ValidateRejectsNegatives) {
  FaultPolicy policy;
  policy.Validate();
  policy.max_retries_per_bucket = -1;
  EXPECT_DEATH(policy.Validate(), "LBSQ_CHECK");
  policy.max_retries_per_bucket = 0;
  policy.deadline_slots = -5;
  EXPECT_DEATH(policy.Validate(), "LBSQ_CHECK");
}

TEST(GilbertElliottChannelTest, DeterministicGivenSeed) {
  ChannelFaultConfig config;
  config.model = LossModel::kGilbertElliott;
  config.p_good_to_bad = 0.05;
  config.p_bad_to_good = 0.2;
  config.loss_bad = 0.7;

  GilbertElliottChannel a(config);
  GilbertElliottChannel b(config);
  Rng rng_a(42);
  Rng rng_b(42);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(a.NextLost(&rng_a), b.NextLost(&rng_b)) << "slot " << i;
    ASSERT_EQ(a.bad(), b.bad());
  }
}

TEST(GilbertElliottChannelTest, EmpiricalLossMatchesSteadyState) {
  ChannelFaultConfig config;
  config.model = LossModel::kGilbertElliott;
  config.p_good_to_bad = 0.03;
  config.p_bad_to_good = 0.12;
  config.loss_good = 0.01;
  config.loss_bad = 0.8;

  GilbertElliottChannel channel(config);
  Rng rng(7);
  const int slots = 400000;
  int lost = 0;
  for (int i = 0; i < slots; ++i) {
    if (channel.NextLost(&rng)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / slots,
              config.SteadyStateLossRate(), 0.01);
}

TEST(GilbertElliottChannelTest, LossesAreBursty) {
  // Under burst fading, P(loss | previous loss) must exceed the marginal
  // loss rate — the property the iid model lacks.
  ChannelFaultConfig config;
  config.model = LossModel::kGilbertElliott;
  config.p_good_to_bad = 0.02;
  config.p_bad_to_good = 0.1;
  config.loss_good = 0.0;
  config.loss_bad = 0.9;

  GilbertElliottChannel channel(config);
  Rng rng(11);
  const int slots = 200000;
  int losses = 0, pairs = 0, loss_after_loss = 0;
  bool prev = false;
  for (int i = 0; i < slots; ++i) {
    const bool lost = channel.NextLost(&rng);
    if (lost) ++losses;
    if (prev) {
      ++pairs;
      if (lost) ++loss_after_loss;
    }
    prev = lost;
  }
  const double marginal = static_cast<double>(losses) / slots;
  const double conditional = static_cast<double>(loss_after_loss) / pairs;
  EXPECT_GT(conditional, 2.0 * marginal);
}

TEST(StreamSeedTest, StreamsAreDistinctAndStable) {
  // Same inputs -> same seed (reproducibility), different query ids or
  // domains -> different seeds (independence).
  EXPECT_EQ(ChannelStreamSeed(1, 5), ChannelStreamSeed(1, 5));
  EXPECT_EQ(PeerStreamSeed(1, 5), PeerStreamSeed(1, 5));
  EXPECT_NE(ChannelStreamSeed(1, 5), PeerStreamSeed(1, 5));

  std::set<uint64_t> seen;
  for (uint64_t seed : {1ull, 2ull, 99ull}) {
    for (uint64_t query = 0; query < 50; ++query) {
      seen.insert(ChannelStreamSeed(seed, query));
      seen.insert(PeerStreamSeed(seed, query));
    }
  }
  EXPECT_EQ(seen.size(), 3u * 50u * 2u);
}

}  // namespace
}  // namespace lbsq::fault
