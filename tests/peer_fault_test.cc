#include "fault/peer_faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/verified_region.h"
#include "fault/peer_screen.h"
#include "geom/rect.h"

namespace lbsq::fault {
namespace {

using core::PeerData;
using core::VerifiedRegion;
using spatial::Poi;

const geom::Rect kWorld{0.0, 0.0, 10.0, 10.0};

VerifiedRegion MakeRegion(geom::Rect rect, std::vector<Poi> pois) {
  VerifiedRegion vr;
  vr.region = rect;
  vr.pois = std::move(pois);
  return vr;
}

std::vector<PeerData> SamplePeers() {
  // Two peers, three regions, all consistent with one underlying POI set:
  // every POI inside an overlapping region's rect is listed there at the
  // identical position (honest peers can never disagree).
  std::vector<PeerData> peers(2);
  peers[0].regions.push_back(MakeRegion(
      {1.0, 1.0, 4.0, 4.0},
      {{1, {1.5, 1.5}}, {2, {3.0, 3.5}}, {3, {2.5, 3.0}}, {4, {3.5, 1.5}}}));
  peers[0].regions.push_back(
      MakeRegion({5.0, 5.0, 7.0, 7.0}, {{7, {6.0, 6.0}}, {8, {6.5, 5.5}}}));
  peers[1].regions.push_back(MakeRegion(
      {2.0, 2.0, 6.0, 6.0},
      {{2, {3.0, 3.5}}, {3, {2.5, 3.0}}, {7, {6.0, 6.0}}, {9, {4.0, 5.0}}}));
  return peers;
}

PeerFaultConfig AllFaults() {
  PeerFaultConfig config;
  config.stale_prob = 0.3;
  config.truncate_prob = 0.3;
  config.flip_prob = 0.3;
  return config;
}

TEST(CorruptPeerDataTest, DisabledConfigIsIdentity) {
  std::vector<PeerData> peers = SamplePeers();
  const std::vector<PeerData> before = peers;
  Rng rng(1);
  const PeerFaultStats stats = CorruptPeerData(PeerFaultConfig{}, &rng, &peers);
  EXPECT_EQ(stats.total(), 0);
  ASSERT_EQ(peers.size(), before.size());
  for (size_t p = 0; p < peers.size(); ++p) {
    ASSERT_EQ(peers[p].regions.size(), before[p].regions.size());
    for (size_t r = 0; r < peers[p].regions.size(); ++r) {
      EXPECT_EQ(peers[p].regions[r].pois, before[p].regions[r].pois);
    }
  }
}

TEST(CorruptPeerDataTest, DeterministicGivenSeed) {
  std::vector<PeerData> a = SamplePeers();
  std::vector<PeerData> b = SamplePeers();
  Rng rng_a(42);
  Rng rng_b(42);
  const PeerFaultStats sa = CorruptPeerData(AllFaults(), &rng_a, &a);
  const PeerFaultStats sb = CorruptPeerData(AllFaults(), &rng_b, &b);
  EXPECT_EQ(sa.regions_stale, sb.regions_stale);
  EXPECT_EQ(sa.regions_truncated, sb.regions_truncated);
  EXPECT_EQ(sa.regions_flipped, sb.regions_flipped);
  for (size_t p = 0; p < a.size(); ++p) {
    for (size_t r = 0; r < a[p].regions.size(); ++r) {
      EXPECT_EQ(a[p].regions[r].pois, b[p].regions[r].pois);
    }
  }
}

TEST(CorruptPeerDataTest, StaleDriftIsBounded) {
  PeerFaultConfig config;
  config.stale_prob = 1.0;
  config.stale_drift = 0.05;
  std::vector<PeerData> peers = SamplePeers();
  const std::vector<PeerData> before = peers;
  Rng rng(7);
  const PeerFaultStats stats = CorruptPeerData(config, &rng, &peers);
  EXPECT_EQ(stats.regions_stale, 3);
  for (size_t p = 0; p < peers.size(); ++p) {
    for (size_t r = 0; r < peers[p].regions.size(); ++r) {
      const auto& now = peers[p].regions[r].pois;
      const auto& was = before[p].regions[r].pois;
      ASSERT_EQ(now.size(), was.size());
      for (size_t i = 0; i < now.size(); ++i) {
        EXPECT_EQ(now[i].id, was[i].id);
        EXPECT_LE(std::abs(now[i].pos.x - was[i].pos.x), 0.05);
        EXPECT_LE(std::abs(now[i].pos.y - was[i].pos.y), 0.05);
      }
    }
  }
}

TEST(CorruptPeerDataTest, TruncateDropsEveryOtherPoi) {
  PeerFaultConfig config;
  config.truncate_prob = 1.0;
  std::vector<PeerData> peers(1);
  peers[0].regions.push_back(MakeRegion(
      {1.0, 1.0, 4.0, 4.0},
      {{1, {2.0, 2.0}}, {2, {3.0, 3.5}}, {3, {2.5, 3.0}}, {4, {3.5, 1.5}}}));
  // Single-POI region: never truncated (nothing to hide).
  peers[0].regions.push_back(
      MakeRegion({5.0, 5.0, 7.0, 7.0}, {{7, {6.0, 6.0}}}));
  Rng rng(3);
  const PeerFaultStats stats = CorruptPeerData(config, &rng, &peers);
  EXPECT_EQ(stats.regions_truncated, 1);
  EXPECT_EQ(peers[0].regions[0].pois.size(), 2u);  // kept indices 0 and 2
  EXPECT_EQ(peers[0].regions[0].pois[0].id, 1);
  EXPECT_EQ(peers[0].regions[0].pois[1].id, 3);
  EXPECT_EQ(peers[0].regions[1].pois.size(), 1u);
  // The region rectangle is still the full (now-lying) claim.
  EXPECT_EQ(peers[0].regions[0].region, (geom::Rect{1.0, 1.0, 4.0, 4.0}));
}

TEST(CorruptPeerDataTest, FlipTransposesCoordinates) {
  PeerFaultConfig config;
  config.flip_prob = 1.0;
  std::vector<PeerData> peers(1);
  peers[0].regions.push_back(
      MakeRegion({1.0, 1.0, 4.0, 4.0}, {{1, {2.0, 3.0}}}));
  Rng rng(5);
  CorruptPeerData(config, &rng, &peers);
  EXPECT_EQ(peers[0].regions[0].pois[0].pos, (geom::Point{3.0, 2.0}));
}

TEST(ScreenPeerDataTest, HonestDataPassesUntouched) {
  std::vector<PeerData> peers = SamplePeers();
  const ScreenResult result = ScreenPeerData(kWorld, &peers);
  EXPECT_EQ(result.regions_rejected, 0);
  EXPECT_EQ(result.regions_kept, 3);
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0].regions.size(), 2u);
  EXPECT_EQ(peers[1].regions.size(), 1u);
}

TEST(ScreenPeerDataTest, TruncatedRegionCaughtByOverlappingHonestPeer) {
  // Peer 1's region claims the rect that contains POI 2 at (3.0, 3.5) but
  // does not list it; honest peer 0 does. Both overlapping regions go.
  std::vector<PeerData> peers(2);
  peers[0].regions.push_back(MakeRegion(
      {1.0, 1.0, 4.0, 4.0}, {{1, {2.0, 2.0}}, {2, {3.0, 3.5}}}));
  peers[1].regions.push_back(
      MakeRegion({2.0, 2.0, 6.0, 6.0}, {{9, {4.0, 5.0}}}));  // omits POI 2
  const ScreenResult result = ScreenPeerData(kWorld, &peers);
  EXPECT_EQ(result.regions_rejected, 2);
  EXPECT_EQ(result.regions_kept, 0);
  EXPECT_TRUE(peers.empty());
}

TEST(ScreenPeerDataTest, PositionMismatchRejectsBothClaimants) {
  // Same POI id at two positions (e.g. one copy is stale): both regions are
  // implicated; an unrelated consistent region survives.
  std::vector<PeerData> peers(3);
  peers[0].regions.push_back(
      MakeRegion({1.0, 1.0, 4.0, 4.0}, {{1, {2.0, 2.0}}}));
  peers[1].regions.push_back(
      MakeRegion({1.5, 1.5, 4.5, 4.5}, {{1, {2.0, 2.1}}}));  // drifted copy
  peers[2].regions.push_back(
      MakeRegion({6.0, 6.0, 9.0, 9.0}, {{5, {7.0, 7.0}}}));
  const ScreenResult result = ScreenPeerData(kWorld, &peers);
  EXPECT_EQ(result.regions_rejected, 2);
  EXPECT_EQ(result.regions_kept, 1);
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].regions[0].pois[0].id, 5);
}

TEST(ScreenPeerDataTest, LocalSanityRejectsOutOfWorldAndNonFinite) {
  std::vector<PeerData> peers(1);
  peers[0].regions.push_back(
      MakeRegion({1.0, 1.0, 4.0, 4.0}, {{1, {20.0, 2.0}}}));  // outside world
  peers[0].regions.push_back(MakeRegion(
      {5.0, 5.0, 7.0, 7.0},
      {{2, {std::numeric_limits<double>::quiet_NaN(), 6.0}}}));
  peers[0].regions.push_back(
      MakeRegion({7.0, 7.0, 9.0, 9.0}, {{3, {8.0, 8.0}}}));
  const ScreenResult result = ScreenPeerData(kWorld, &peers);
  EXPECT_EQ(result.regions_rejected, 2);
  EXPECT_EQ(result.regions_kept, 1);
  ASSERT_EQ(peers.size(), 1u);
  ASSERT_EQ(peers[0].regions.size(), 1u);
  EXPECT_EQ(peers[0].regions[0].pois[0].id, 3);
}

TEST(ScreenPeerDataTest, FlippedCoordinatesCaughtByConsistencyCheck) {
  // A flipped copy of POI 1 lands at (3.5, 2.0) inside the honest region
  // that lists it at (2.0, 3.5): position mismatch, both rejected.
  std::vector<PeerData> peers(2);
  peers[0].regions.push_back(
      MakeRegion({1.0, 1.0, 4.0, 4.0}, {{1, {2.0, 3.5}}}));
  peers[1].regions.push_back(
      MakeRegion({1.0, 1.0, 4.0, 4.0}, {{1, {3.5, 2.0}}}));
  const ScreenResult result = ScreenPeerData(kWorld, &peers);
  EXPECT_EQ(result.regions_rejected, 2);
  EXPECT_TRUE(peers.empty());
}

}  // namespace
}  // namespace lbsq::fault
