#include "broadcast/wire.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "hilbert/hilbert.h"
#include "spatial/generators.h"

namespace lbsq::broadcast {
namespace {

DataBucket SampleBucket(int n_pois, uint64_t seed = 1) {
  const geom::Rect world{0.0, 0.0, 16.0, 16.0};
  hilbert::HilbertGrid grid(world, 4);
  Rng rng(seed);
  const auto pois = spatial::GenerateUniformPois(&rng, world, n_pois);
  auto buckets = BuildBuckets(pois, grid, n_pois > 0 ? n_pois : 1);
  return buckets.front();
}

TEST(WireVarintTest, RoundTripEdgeValues) {
  for (uint64_t value :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, 0xffffffffull,
        0x7fffffffffffffffull, 0xffffffffffffffffull}) {
    ByteWriter writer;
    writer.PutVarint(value);
    ByteReader reader(writer.bytes().data(), writer.bytes().size());
    EXPECT_EQ(reader.GetVarint(), value);
    EXPECT_TRUE(reader.ok());
    EXPECT_EQ(reader.remaining(), 0u);
  }
}

TEST(WireVarintTest, TruncatedVarintFails) {
  ByteWriter writer;
  writer.PutVarint(1ull << 40);
  ByteReader reader(writer.bytes().data(), writer.bytes().size() - 2);
  reader.GetVarint();
  EXPECT_FALSE(reader.ok());
}

TEST(WireDoubleTest, RoundTripSpecials) {
  for (double value : {0.0, -0.0, 1.5, -3.25e100, 1e-300}) {
    ByteWriter writer;
    writer.PutDouble(value);
    ByteReader reader(writer.bytes().data(), writer.bytes().size());
    EXPECT_EQ(reader.GetDouble(), value);
  }
}

TEST(WireBucketTest, RoundTrip) {
  const DataBucket bucket = SampleBucket(23);
  const auto bytes = EncodeBucket(bucket);
  DataBucket decoded;
  ASSERT_TRUE(DecodeBucket(bytes.data(), bytes.size(), &decoded));
  EXPECT_EQ(decoded.id, bucket.id);
  EXPECT_EQ(decoded.hilbert_lo, bucket.hilbert_lo);
  EXPECT_EQ(decoded.hilbert_hi, bucket.hilbert_hi);
  EXPECT_EQ(decoded.mbr, bucket.mbr);
  ASSERT_EQ(decoded.pois.size(), bucket.pois.size());
  for (size_t i = 0; i < bucket.pois.size(); ++i) {
    EXPECT_EQ(decoded.pois[i], bucket.pois[i]);
  }
}

TEST(WireBucketTest, EmptyBucketRoundTrip) {
  DataBucket bucket;
  const auto bytes = EncodeBucket(bucket);
  DataBucket decoded;
  decoded.pois.push_back(spatial::Poi{});  // must be cleared by decode
  ASSERT_TRUE(DecodeBucket(bytes.data(), bytes.size(), &decoded));
  EXPECT_TRUE(decoded.pois.empty());
}

TEST(WireBucketTest, WireSizeMatchesEncoding) {
  for (int n : {0, 1, 8, 100}) {
    const DataBucket bucket = SampleBucket(n, 7 + static_cast<uint64_t>(n));
    EXPECT_EQ(BucketWireSize(bucket),
              static_cast<int64_t>(EncodeBucket(bucket).size()));
  }
}

TEST(WireBucketTest, RejectsBadMagic) {
  auto bytes = EncodeBucket(SampleBucket(3));
  bytes[0] = 'X';
  DataBucket decoded;
  EXPECT_FALSE(DecodeBucket(bytes.data(), bytes.size(), &decoded));
}

TEST(WireBucketTest, RejectsBadVersion) {
  // 0x7f is no valid version (v1 legacy, v2 epoch-tagged are the only ones).
  auto bytes = EncodeBucket(SampleBucket(3));
  bytes[4] = 0x7f;
  DataBucket decoded;
  EXPECT_FALSE(DecodeBucket(bytes.data(), bytes.size(), &decoded));
  bytes[4] = 0;
  EXPECT_FALSE(DecodeBucket(bytes.data(), bytes.size(), &decoded));
}

TEST(WireBucketTest, RejectsEveryTruncation) {
  const auto bytes = EncodeBucket(SampleBucket(5));
  DataBucket decoded;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeBucket(bytes.data(), cut, &decoded))
        << "accepted truncation at " << cut;
  }
}

TEST(WireBucketTest, RejectsTrailingGarbage) {
  auto bytes = EncodeBucket(SampleBucket(4));
  bytes.push_back(0x00);
  DataBucket decoded;
  EXPECT_FALSE(DecodeBucket(bytes.data(), bytes.size(), &decoded));
}

TEST(WireBucketTest, RejectsAbsurdPoiCount) {
  // Hand-craft a header claiming 2^40 POIs in a tiny buffer.
  ByteWriter writer;
  const uint8_t magic[4] = {'L', 'B', 'Q', 'B'};
  writer.PutBytes(magic, 4);
  writer.PutU8(kWireVersion);
  writer.PutVarint(0);  // id
  writer.PutVarint(0);  // lo
  writer.PutVarint(0);  // hi
  for (int i = 0; i < 4; ++i) writer.PutDouble(0.0);
  writer.PutVarint(1ull << 40);
  DataBucket decoded;
  EXPECT_FALSE(
      DecodeBucket(writer.bytes().data(), writer.bytes().size(), &decoded));
}

TEST(WireIndexTest, RoundTrip) {
  std::vector<AirIndex::Entry> entries;
  for (int i = 0; i < 200; ++i) {
    entries.push_back(AirIndex::Entry{static_cast<uint64_t>(i * 37), i / 8});
  }
  const auto bytes = EncodeIndexSegment(entries);
  std::vector<AirIndex::Entry> decoded;
  ASSERT_TRUE(DecodeIndexSegment(bytes.data(), bytes.size(), &decoded));
  ASSERT_EQ(decoded.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].hilbert, entries[i].hilbert);
    EXPECT_EQ(decoded[i].bucket, entries[i].bucket);
  }
}

TEST(WireIndexTest, RejectsFlippedBit) {
  std::vector<AirIndex::Entry> entries = {{5, 0}, {9, 1}};
  auto bytes = EncodeIndexSegment(entries);
  bytes[1] ^= 0xff;  // corrupt the magic
  std::vector<AirIndex::Entry> decoded;
  EXPECT_FALSE(DecodeIndexSegment(bytes.data(), bytes.size(), &decoded));
}

TEST(WireIndexTest, EmptySegment) {
  const auto bytes = EncodeIndexSegment({});
  std::vector<AirIndex::Entry> decoded;
  ASSERT_TRUE(DecodeIndexSegment(bytes.data(), bytes.size(), &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(WireFuzzTest, RandomBytesNeverCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> junk(rng.NextBelow(200));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextBelow(256));
    DataBucket bucket;
    DecodeBucket(junk.data(), junk.size(), &bucket);
    std::vector<AirIndex::Entry> entries;
    DecodeIndexSegment(junk.data(), junk.size(), &entries);
  }
}

TEST(WireFuzzTest, MutatedValidBucketsNeverCrash) {
  Rng rng(101);
  const auto bytes = EncodeBucket(SampleBucket(12));
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = bytes;
    const size_t where = rng.NextBelow(mutated.size());
    mutated[where] = static_cast<uint8_t>(rng.NextBelow(256));
    DataBucket bucket;
    DecodeBucket(mutated.data(), mutated.size(), &bucket);  // must not crash
  }
}

TEST(WireCrcTest, KnownVectors) {
  // IEEE 802.3 check value: CRC-32 of "123456789" is 0xCBF43926.
  const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(check, sizeof(check)), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(WireCrcTest, AppendAndVerifyRoundTrip) {
  std::vector<uint8_t> buf = {0xde, 0xad, 0xbe, 0xef};
  AppendCrc32(&buf);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_TRUE(VerifyCrc32(buf.data(), buf.size()));
  // An empty payload frames to just its (zero) CRC and still verifies.
  std::vector<uint8_t> empty;
  AppendCrc32(&empty);
  ASSERT_EQ(empty.size(), 4u);
  EXPECT_TRUE(VerifyCrc32(empty.data(), empty.size()));
}

TEST(WireCrcTest, AnySingleBitFlipIsDetected) {
  std::vector<uint8_t> buf = {1, 2, 3, 4, 5, 6, 7, 8};
  AppendCrc32(&buf);
  for (size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = buf;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(VerifyCrc32(flipped.data(), flipped.size()))
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(WireFramedTest, BucketRoundTripAndCorruptionRejected) {
  const DataBucket bucket = SampleBucket(17);
  const auto framed = EncodeBucketFramed(bucket);
  const auto plain = EncodeBucket(bucket);
  ASSERT_EQ(framed.size(), plain.size() + 4);
  DataBucket decoded;
  ASSERT_TRUE(DecodeBucketFramed(framed.data(), framed.size(), &decoded));
  EXPECT_EQ(decoded.id, bucket.id);
  ASSERT_EQ(decoded.pois.size(), bucket.pois.size());

  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = framed;
    const size_t where = rng.NextBelow(mutated.size());
    const uint8_t mask = static_cast<uint8_t>(1 + rng.NextBelow(255));
    mutated[where] ^= mask;
    DataBucket out;
    EXPECT_FALSE(DecodeBucketFramed(mutated.data(), mutated.size(), &out))
        << "flip at byte " << where;
  }
  // Truncated below the trailer size is rejected, not read out of bounds.
  EXPECT_FALSE(DecodeBucketFramed(framed.data(), 3, &decoded));
}

// --- Epoch-tagged (v2) frames ----------------------------------------------

TEST(WireEpochTest, BucketEpochRoundTrips) {
  for (uint64_t epoch : {1ull, 127ull, 128ull, 1ull << 40}) {
    DataBucket bucket = SampleBucket(9);
    bucket.epoch = epoch;
    const auto bytes = EncodeBucket(bucket);
    EXPECT_EQ(bytes[4], kWireVersionEpoch);
    DataBucket decoded;
    ASSERT_TRUE(DecodeBucket(bytes.data(), bytes.size(), &decoded));
    EXPECT_EQ(decoded.epoch, epoch);
    EXPECT_EQ(decoded.id, bucket.id);
    ASSERT_EQ(decoded.pois.size(), bucket.pois.size());
    EXPECT_EQ(BucketWireSize(bucket), static_cast<int64_t>(bytes.size()));
  }
}

TEST(WireEpochTest, EpochZeroEncodesToExactLegacyBytes) {
  // The updates-off contract at the byte level: an epoch-0 bucket is
  // indistinguishable from one encoded before epochs existed, and legacy v1
  // frames decode with epoch 0.
  DataBucket bucket = SampleBucket(11);
  bucket.epoch = 3;
  const auto v2 = EncodeBucket(bucket);
  bucket.epoch = 0;
  const auto v1 = EncodeBucket(bucket);
  EXPECT_EQ(v1[4], kWireVersion);
  // The v2 frame is the v1 frame with the epoch varint spliced in after the
  // version byte.
  ASSERT_EQ(v2.size(), v1.size() + 1);
  EXPECT_TRUE(std::equal(v1.begin() + 5, v1.end(), v2.begin() + 6));
  DataBucket decoded;
  decoded.epoch = 99;  // must be reset by the legacy decode path
  ASSERT_TRUE(DecodeBucket(v1.data(), v1.size(), &decoded));
  EXPECT_EQ(decoded.epoch, 0u);
}

TEST(WireEpochTest, RejectsNonCanonicalV2EpochZero) {
  // A v2 frame whose epoch is 0 must have been encoded as v1; accepting it
  // would make two byte strings decode to the same bucket.
  DataBucket bucket = SampleBucket(6);
  bucket.epoch = 1;
  auto bytes = EncodeBucket(bucket);
  ASSERT_EQ(bytes[4], kWireVersionEpoch);
  ASSERT_EQ(bytes[5], 0x01);  // single-byte epoch varint
  bytes[5] = 0x00;
  DataBucket decoded;
  EXPECT_FALSE(DecodeBucket(bytes.data(), bytes.size(), &decoded));
}

TEST(WireEpochTest, RejectsEveryTruncationOfV2Frames) {
  // Includes every prefix ending inside the multi-byte epoch varint.
  DataBucket bucket = SampleBucket(5);
  bucket.epoch = 1ull << 40;
  const auto bytes = EncodeBucket(bucket);
  DataBucket decoded;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeBucket(bytes.data(), cut, &decoded))
        << "accepted truncation at " << cut;
  }
}

TEST(WireEpochTest, IndexSegmentEpochRoundTrips) {
  const std::vector<AirIndex::Entry> entries = {{5, 0}, {9, 1}, {40, 2}};
  const auto bytes = EncodeIndexSegment(entries, 12);
  EXPECT_EQ(bytes[4], kWireVersionEpoch);
  std::vector<AirIndex::Entry> decoded;
  uint64_t epoch = 0;
  ASSERT_TRUE(DecodeIndexSegment(bytes.data(), bytes.size(), &decoded, &epoch));
  EXPECT_EQ(epoch, 12u);
  ASSERT_EQ(decoded.size(), entries.size());
  // The epoch-less decode overload accepts v2 frames too.
  ASSERT_TRUE(DecodeIndexSegment(bytes.data(), bytes.size(), &decoded));

  // Epoch 0 is byte-identical to the legacy single-argument encoder, and
  // legacy frames report epoch 0.
  const auto legacy = EncodeIndexSegment(entries);
  EXPECT_EQ(EncodeIndexSegment(entries, 0), legacy);
  epoch = 99;
  ASSERT_TRUE(
      DecodeIndexSegment(legacy.data(), legacy.size(), &decoded, &epoch));
  EXPECT_EQ(epoch, 0u);
}

TEST(WireEpochTest, FramedVariantsCarryTheEpoch) {
  DataBucket bucket = SampleBucket(8);
  bucket.epoch = 21;
  const auto framed = EncodeBucketFramed(bucket);
  DataBucket decoded;
  ASSERT_TRUE(DecodeBucketFramed(framed.data(), framed.size(), &decoded));
  EXPECT_EQ(decoded.epoch, 21u);

  const std::vector<AirIndex::Entry> entries = {{3, 0}, {7, 1}};
  const auto seg = EncodeIndexSegmentFramed(entries, 21);
  std::vector<AirIndex::Entry> out;
  uint64_t epoch = 0;
  ASSERT_TRUE(DecodeIndexSegmentFramed(seg.data(), seg.size(), &out, &epoch));
  EXPECT_EQ(epoch, 21u);
  ASSERT_EQ(out.size(), entries.size());

  // Corrupting the epoch varint trips the CRC.
  auto mutated = seg;
  mutated[5] ^= 0x02;
  EXPECT_FALSE(
      DecodeIndexSegmentFramed(mutated.data(), mutated.size(), &out, &epoch));
}

TEST(WireFramedTest, IndexSegmentRoundTripAndCorruptionRejected) {
  const std::vector<AirIndex::Entry> entries = {{5, 0}, {9, 1}, {40, 2}};
  const auto framed = EncodeIndexSegmentFramed(entries);
  std::vector<AirIndex::Entry> decoded;
  ASSERT_TRUE(
      DecodeIndexSegmentFramed(framed.data(), framed.size(), &decoded));
  ASSERT_EQ(decoded.size(), entries.size());

  auto mutated = framed;
  mutated[framed.size() / 2] ^= 0x10;
  EXPECT_FALSE(
      DecodeIndexSegmentFramed(mutated.data(), mutated.size(), &decoded));
}

}  // namespace
}  // namespace lbsq::broadcast
