#include "broadcast/system.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "spatial/generators.h"

namespace lbsq::broadcast {
namespace {

const geom::Rect kWorld{0.0, 0.0, 16.0, 16.0};

TEST(BroadcastSystemTest, ComponentsAreConsistent) {
  Rng rng(1);
  BroadcastParams params;
  params.bucket_capacity = 8;
  BroadcastSystem system(spatial::GenerateUniformPois(&rng, kWorld, 200),
                         kWorld, params);
  EXPECT_EQ(system.pois().size(), 200u);
  EXPECT_EQ(system.buckets().size(), 25u);
  EXPECT_EQ(system.index().entries().size(), 200u);
  EXPECT_EQ(system.schedule().num_data_buckets(), 25);
  EXPECT_EQ(system.schedule().index_buckets(), system.index().SizeInBuckets());
  EXPECT_EQ(system.params().bucket_capacity, 8);
}

TEST(BroadcastSystemTest, EmptyDatabaseStillBuildsAChannel) {
  BroadcastSystem system({}, kWorld, BroadcastParams{});
  EXPECT_EQ(system.buckets().size(), 1u);
  EXPECT_GE(system.schedule().cycle_length(), 2);
}

TEST(BroadcastSystemTest, MClampedToBucketCount) {
  Rng rng(2);
  BroadcastParams params;
  params.m = 64;  // far more than the handful of buckets
  BroadcastSystem system(spatial::GenerateUniformPois(&rng, kWorld, 20),
                         kWorld, params);
  EXPECT_LE(system.schedule().m(),
            static_cast<int>(system.buckets().size()));
}

TEST(BroadcastSystemTest, CollectPoisGathersAndDeduplicates) {
  Rng rng(3);
  BroadcastSystem system(spatial::GenerateUniformPois(&rng, kWorld, 100),
                         kWorld, BroadcastParams{});
  std::vector<int64_t> all;
  for (const DataBucket& b : system.buckets()) all.push_back(b.id);
  // Duplicates in the request must not duplicate results.
  std::vector<int64_t> doubled = all;
  doubled.insert(doubled.end(), all.begin(), all.end());
  const auto pois = system.CollectPois(doubled);
  EXPECT_EQ(pois.size(), 100u);
  std::set<int64_t> ids;
  for (const auto& p : pois) ids.insert(p.id);
  EXPECT_EQ(ids.size(), 100u);
}

TEST(BroadcastSystemTest, CollectPoisEmptyRequest) {
  Rng rng(4);
  BroadcastSystem system(spatial::GenerateUniformPois(&rng, kWorld, 50),
                         kWorld, BroadcastParams{});
  EXPECT_TRUE(system.CollectPois({}).empty());
}

TEST(BroadcastSystemDeathTest, CollectPoisRejectsBadBucketId) {
  Rng rng(5);
  BroadcastSystem system(spatial::GenerateUniformPois(&rng, kWorld, 50),
                         kWorld, BroadcastParams{});
  EXPECT_DEATH(system.CollectPois({9999}), "LBSQ_CHECK");
}

TEST(BroadcastSystemTest, EveryPoiReachableThroughSomeBucket) {
  Rng rng(6);
  BroadcastSystem system(spatial::GenerateUniformPois(&rng, kWorld, 150),
                         kWorld, BroadcastParams{});
  std::set<int64_t> seen;
  for (const DataBucket& bucket : system.buckets()) {
    for (const auto& poi : bucket.pois) seen.insert(poi.id);
  }
  EXPECT_EQ(seen.size(), 150u);
}

}  // namespace
}  // namespace lbsq::broadcast
