#include "sim/config.h"

#include <gtest/gtest.h>

namespace lbsq::sim {
namespace {

TEST(ConfigTest, Table3LosAngeles) {
  const ParameterSet p = LosAngelesCity();
  EXPECT_EQ(p.poi_number, 2750);
  EXPECT_EQ(p.mh_number, 93300);
  EXPECT_EQ(p.csize, 50);
  EXPECT_EQ(p.query_per_min, 6220);
  EXPECT_EQ(p.tx_range_m, 200);
  EXPECT_EQ(p.knn_k, 5);
  EXPECT_EQ(p.window_pct, 3);
  EXPECT_EQ(p.distance_mi, 1);
  EXPECT_EQ(p.t_execution_hr, 10);
}

TEST(ConfigTest, Table3Riverside) {
  const ParameterSet p = RiversideCounty();
  EXPECT_EQ(p.poi_number, 1450);
  EXPECT_EQ(p.mh_number, 9700);
  EXPECT_EQ(p.query_per_min, 650);
}

TEST(ConfigTest, Table3Suburbia) {
  const ParameterSet p = SyntheticSuburbia();
  EXPECT_EQ(p.poi_number, 2100);
  EXPECT_EQ(p.mh_number, 51500);
  EXPECT_EQ(p.query_per_min, 3440);
  // Suburbia lies between LA and Riverside on every density.
  EXPECT_GT(p.MhDensity(), RiversideCounty().MhDensity());
  EXPECT_LT(p.MhDensity(), LosAngelesCity().MhDensity());
  EXPECT_GT(p.PoiDensity(), RiversideCounty().PoiDensity());
  EXPECT_LT(p.PoiDensity(), LosAngelesCity().PoiDensity());
}

TEST(ConfigTest, DensitiesUseFullArea) {
  const ParameterSet p = LosAngelesCity();
  EXPECT_DOUBLE_EQ(p.PoiDensity(), 2750.0 / 400.0);
  EXPECT_DOUBLE_EQ(p.MhDensity(), 93300.0 / 400.0);
  EXPECT_DOUBLE_EQ(p.QueryRatePerSqMiPerMin(), 6220.0 / 400.0);
}

TEST(ConfigTest, FullScaleRoundTrips) {
  SimConfig config;
  config.params = LosAngelesCity();
  config.world_side_mi = kPaperWorldSideMiles;
  EXPECT_DOUBLE_EQ(config.Scale(), 1.0);
  EXPECT_EQ(config.ScaledMhCount(), 93300);
  EXPECT_EQ(config.ScaledPoiCount(), 2750);
  EXPECT_DOUBLE_EQ(config.ScaledQueriesPerMin(), 6220.0);
}

TEST(ConfigTest, ScaledWorldPreservesDensities) {
  SimConfig config;
  config.params = SyntheticSuburbia();
  config.world_side_mi = 4.0;
  const double area = 16.0;
  EXPECT_NEAR(static_cast<double>(config.ScaledMhCount()) / area,
              config.params.MhDensity(), 0.5);
  EXPECT_NEAR(static_cast<double>(config.ScaledPoiCount()) / area,
              config.params.PoiDensity(), 0.5);
  EXPECT_NEAR(config.ScaledQueriesPerMin() / area,
              config.params.QueryRatePerSqMiPerMin(), 1e-9);
}

TEST(ConfigTest, ScaledCountsNeverZero) {
  SimConfig config;
  config.params = RiversideCounty();
  config.world_side_mi = 0.1;
  EXPECT_GE(config.ScaledMhCount(), 1);
  EXPECT_GE(config.ScaledPoiCount(), 1);
}

TEST(ConfigTest, MetersToMiles) {
  EXPECT_NEAR(200.0 * kMilesPerMeter, 0.1243, 0.0001);
}

TEST(ConfigTest, ValidateAcceptsDefaults) {
  SimConfig config;
  config.Validate();  // must not abort
}

TEST(ConfigTest, ValidateRejectsBadKnobs) {
  SimConfig zero_world;
  zero_world.world_side_mi = 0.0;
  EXPECT_DEATH(zero_world.Validate(), "LBSQ_CHECK");

  SimConfig zero_threads;
  zero_threads.threads = 0;
  EXPECT_DEATH(zero_threads.Validate(), "LBSQ_CHECK");

  SimConfig bad_fraction;
  bad_fraction.mixed_window_fraction = 1.5;
  EXPECT_DEATH(bad_fraction.Validate(), "LBSQ_CHECK");

  SimConfig bad_correctness;
  bad_correctness.min_correctness = -0.1;
  EXPECT_DEATH(bad_correctness.Validate(), "LBSQ_CHECK");

  SimConfig negative_duration;
  negative_duration.duration_min = -5.0;
  EXPECT_DEATH(negative_duration.Validate(), "LBSQ_CHECK");
}

}  // namespace
}  // namespace lbsq::sim
