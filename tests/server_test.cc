#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/sharded_query_engine.h"
#include "server/client.h"
#include "server/load_gen.h"
#include "server/server.h"
#include "sim/config.h"
#include "sim/query_exec.h"
#include "sim/simulator.h"
#include "sim/workload.h"
#include "spatial/generators.h"

/// End-to-end server tests over real sockets: a Server on an ephemeral
/// port, the load generator replaying the simulator's workload, and the
/// answer digest diffed against a `sim::Simulator` run on the same config
/// — the executable form of the lbsq_load ↔ lbsq_sim parity claim. Plus
/// the failure modes a network server must survive: mid-session
/// disconnects, version mismatch over the wire, and overload (backpressure
/// sheds queries but the replay still lands the exact digest).

namespace lbsq::server {
namespace {

/// Small but non-trivial run: ~hundreds of measured queries in well under
/// a second of wall time. accept_approximate=false is what makes the
/// digest a pure function of (config, seed) — see load_gen.h.
sim::SimConfig TestConfig() {
  sim::SimConfig config;
  config.params = sim::LosAngelesCity();
  config.world_side_mi = 2.0;
  config.warmup_min = 5.0;
  config.duration_min = 5.0;
  config.seed = 3;
  config.shards = 2;
  config.accept_approximate = false;
  return config;
}

/// Builds the engine exactly as tools/lbsq_server.cc does: same POI RNG
/// stream, same options — required for digest parity with the simulator.
core::ShardedQueryEngine BuildEngine(const sim::SimConfig& config) {
  const geom::Rect world{0.0, 0.0, config.world_side_mi,
                         config.world_side_mi};
  Rng poi_rng(DeriveStreamSeed(config.seed, sim::kStreamPois));
  std::vector<spatial::Poi> pois =
      spatial::GenerateUniformPois(&poi_rng, world, config.ScaledPoiCount());
  return core::ShardedQueryEngine(std::move(pois), world, config.broadcast,
                                  sim::EngineOptionsFromConfig(config),
                                  config.shards);
}

uint64_t SimulatorDigest(const sim::SimConfig& config) {
  sim::Simulator simulator(config);
  return simulator.Run().answer_digest;
}

/// Polls `predicate` until true or the deadline passes.
template <typename Predicate>
bool WaitFor(Predicate predicate, int timeout_ms = 2000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!predicate()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

int ConnectRaw(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(ServerTest, ReplayDigestMatchesSimulator) {
  const sim::SimConfig config = TestConfig();
  const uint64_t expected = SimulatorDigest(config);

  const core::ShardedQueryEngine engine = BuildEngine(config);
  ServerOptions options;
  options.num_workers = 2;
  Server server(engine, /*epoch=*/0, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  LoadOptions load;
  load.port = server.port();
  load.connections = 2;
  load.pipeline = 8;
  load.queries_per_session = 64;
  const LoadResult result = ReplayWorkload(config, load);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.queries, 0);
  EXPECT_GT(result.sessions, 0);
  EXPECT_EQ(result.digest, expected);
  server.Stop();
  EXPECT_EQ(server.counters().queries_executed.load(), result.queries);
}

TEST(ServerTest, BackpressureShedsButDigestStaysExact) {
  const sim::SimConfig config = TestConfig();
  const uint64_t expected = SimulatorDigest(config);

  const core::ShardedQueryEngine engine = BuildEngine(config);
  // Starved deployment: one worker, tiny queue and in-flight budget, so an
  // overloading client must see RETRY_AFTER frames.
  ServerOptions options;
  options.num_workers = 1;
  options.worker_queue_capacity = 2;
  options.session_inflight_limit = 2;
  options.retry_after_ms = 1;
  Server server(engine, /*epoch=*/0, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  LoadOptions load;
  load.port = server.port();
  load.connections = 2;
  load.pipeline = 32;
  load.overload = true;  // resend immediately, ignore the suggested delay
  const LoadResult result = ReplayWorkload(config, load);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.retries_received, 0);
  // Shedding loses no answers: every shed query was retried to completion
  // and the digest still matches the simulator bit-for-bit.
  EXPECT_EQ(result.digest, expected);
  server.Stop();
  EXPECT_EQ(server.counters().retry_after_sent.load(),
            result.retries_received);
}

TEST(ServerTest, MidSessionDisconnectIsSurvived) {
  const sim::SimConfig config = TestConfig();
  const core::ShardedQueryEngine engine = BuildEngine(config);
  Server server(engine, /*epoch=*/0, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Abrupt close mid-frame: two bytes of a length prefix, then gone.
  {
    const int fd = ConnectRaw(server.port());
    ASSERT_GE(fd, 0);
    const uint8_t partial[] = {0x10, 0x00};
    ASSERT_EQ(::send(fd, partial, sizeof(partial), 0),
              static_cast<ssize_t>(sizeof(partial)));
    ::close(fd);
  }
  // Abrupt close after a successful handshake, no BYE.
  {
    Client client;
    ASSERT_TRUE(client.Connect(server.port(), 1, 2, &error)) << error;
  }  // destructor closes the socket without BYE
  ASSERT_TRUE(WaitFor([&] {
    return server.counters().sessions_closed.load() >= 2;
  })) << "server did not reap the dropped connections";

  // The server still serves new sessions correctly after both drops.
  Client client;
  ASSERT_TRUE(client.Connect(server.port(), 1, 2, &error)) << error;
  EXPECT_EQ(client.hello().num_shards, 2u);
  QueryCall call;
  call.request_id = 1;
  call.kind = core::QueryKind::kKnn;
  call.position = {1.0, 1.0};
  call.k = 3;
  ASSERT_TRUE(client.SendQuery(call, &error)) << error;
  QueryAnswer answer;
  RetryAfter retry;
  ASSERT_EQ(client.Receive(&answer, &retry, &error), Client::Reply::kAnswer)
      << error;
  EXPECT_EQ(answer.request_id, 1u);
  EXPECT_EQ(answer.neighbor_ids.size(), 3u);
  client.Close();
  server.Stop();
}

TEST(ServerTest, VersionMismatchIsRejectedOverTheWire) {
  const sim::SimConfig config = TestConfig();
  const core::ShardedQueryEngine engine = BuildEngine(config);
  Server server(engine, /*epoch=*/0, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client;
  EXPECT_FALSE(client.Connect(server.port(), 99, 100, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  // The rejection didn't poison the listener.
  Client ok;
  ASSERT_TRUE(ok.Connect(server.port(), 1, 2, &error)) << error;
  ok.Close();
  server.Stop();
  EXPECT_GE(server.counters().protocol_errors.load(), 1);
}

TEST(ServerTest, V1SessionServesEpochFreeBroadcastFrames) {
  const sim::SimConfig config = TestConfig();
  const core::ShardedQueryEngine engine = BuildEngine(config);
  Server server(engine, /*epoch=*/0, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(server.port(), 1, 1, &error)) << error;
  EXPECT_EQ(client.hello().version, 1u);
  EXPECT_EQ(client.hello().epoch, 0u);

  // The three-step access protocol end to end: probe the directory, then
  // fetch a bucket it points at; both must match the shard's in-memory
  // broadcast system.
  std::vector<broadcast::AirIndex::Entry> entries;
  uint64_t epoch = 99;
  ASSERT_TRUE(client.FetchIndex(0, &entries, &epoch, &error)) << error;
  EXPECT_EQ(epoch, 0u);
  const broadcast::BroadcastSystem* system = engine.shard_system(0);
  ASSERT_NE(system, nullptr);
  ASSERT_EQ(entries.size(), system->index().entries().size());

  broadcast::DataBucket bucket;
  ASSERT_TRUE(client.FetchBucket(0, 0, &bucket, &error)) << error;
  ASSERT_FALSE(bucket.pois.empty());
  EXPECT_EQ(bucket.pois.size(), system->buckets()[0].pois.size());
  client.Close();
  server.Stop();
}

}  // namespace
}  // namespace lbsq::server
