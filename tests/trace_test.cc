#include "sim/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/simulator.h"

namespace lbsq::sim {
namespace {

std::vector<QueryEvent> SampleEvents() {
  std::vector<QueryEvent> events;
  QueryEvent knn;
  knn.time_min = 1.25;
  knn.host = 42;
  knn.type = QueryType::kKnn;
  knn.k = 5;
  events.push_back(knn);
  QueryEvent window;
  window.time_min = 2.5;
  window.host = 7;
  window.type = QueryType::kWindow;
  window.window = geom::Rect{0.1, 0.2, 0.3, 0.4};
  events.push_back(window);
  return events;
}

TEST(TraceTest, SerializeParseRoundTrip) {
  const auto events = SampleEvents();
  std::vector<QueryEvent> parsed;
  ASSERT_TRUE(ParseTrace(SerializeTrace(events), &parsed));
  ASSERT_EQ(parsed.size(), events.size());
  EXPECT_EQ(parsed[0], events[0]);
  EXPECT_EQ(parsed[1], events[1]);
}

TEST(TraceTest, RoundTripPreservesExactDoubles) {
  std::vector<QueryEvent> events;
  QueryEvent e;
  e.time_min = 0.1 + 0.2;  // not exactly representable as decimal text
  e.host = 1;
  e.type = QueryType::kKnn;
  e.k = 3;
  events.push_back(e);
  std::vector<QueryEvent> parsed;
  ASSERT_TRUE(ParseTrace(SerializeTrace(events), &parsed));
  EXPECT_EQ(parsed[0].time_min, events[0].time_min);  // bit-exact
}

TEST(TraceTest, RejectsBadHeader) {
  std::vector<QueryEvent> parsed;
  EXPECT_FALSE(ParseTrace("nonsense\nK 0x1p+0 1 3\n", &parsed));
}

TEST(TraceTest, RejectsMalformedLines) {
  std::vector<QueryEvent> parsed;
  EXPECT_FALSE(ParseTrace("lbsq-trace v1\nX 1 2 3\n", &parsed));
  EXPECT_FALSE(ParseTrace("lbsq-trace v1\nK 1.0 5\n", &parsed));
  EXPECT_FALSE(ParseTrace("lbsq-trace v1\nK 1.0 -2 3\n", &parsed));
  EXPECT_FALSE(ParseTrace("lbsq-trace v1\nK 1.0 2 0\n", &parsed));
}

TEST(TraceTest, EmptyTrace) {
  std::vector<QueryEvent> parsed;
  ASSERT_TRUE(ParseTrace(SerializeTrace({}), &parsed));
  EXPECT_TRUE(parsed.empty());
}

TEST(TraceTest, SaveLoadRoundTrip) {
  const auto events = SampleEvents();
  const std::string path = testing::TempDir() + "/lbsq_trace_test.txt";
  ASSERT_TRUE(SaveTrace(path, events));
  std::vector<QueryEvent> loaded;
  ASSERT_TRUE(LoadTrace(path, &loaded));
  EXPECT_EQ(loaded.size(), events.size());
  EXPECT_EQ(loaded[0], events[0]);
  std::remove(path.c_str());
}

TEST(TraceTest, LoadMissingFileFails) {
  std::vector<QueryEvent> loaded;
  EXPECT_FALSE(LoadTrace("/nonexistent/path/trace.txt", &loaded));
}

SimConfig SmallConfig(QueryType type) {
  SimConfig config;
  config.params = LosAngelesCity();
  config.query_type = type;
  config.world_side_mi = 1.0;
  config.warmup_min = 6.0;
  config.duration_min = 6.0;
  config.seed = 31;
  return config;
}

TEST(TraceReplayTest, ReplayReproducesRunExactly) {
  for (QueryType type :
       {QueryType::kKnn, QueryType::kWindow, QueryType::kMixed}) {
    SimConfig config = SmallConfig(type);
    config.record_trace = true;
    Simulator recorder(config);
    const SimMetrics recorded = recorder.Run();
    ASSERT_GT(recorder.trace().size(), 0u);

    Simulator replayer(config);
    const SimMetrics replayed = replayer.Replay(recorder.trace());
    EXPECT_EQ(replayed.queries, recorded.queries);
    EXPECT_EQ(replayed.solved_verified, recorded.solved_verified);
    EXPECT_EQ(replayed.solved_approximate, recorded.solved_approximate);
    EXPECT_EQ(replayed.solved_broadcast, recorded.solved_broadcast);
    EXPECT_DOUBLE_EQ(replayed.broadcast_latency.sum(),
                     recorded.broadcast_latency.sum());
  }
}

TEST(TraceReplayTest, ReplayThroughTextRoundTrip) {
  SimConfig config = SmallConfig(QueryType::kKnn);
  config.record_trace = true;
  Simulator recorder(config);
  const SimMetrics recorded = recorder.Run();

  std::vector<QueryEvent> reloaded;
  ASSERT_TRUE(ParseTrace(SerializeTrace(recorder.trace()), &reloaded));
  Simulator replayer(config);
  const SimMetrics replayed = replayer.Replay(reloaded);
  EXPECT_EQ(replayed.solved_verified, recorded.solved_verified);
  EXPECT_EQ(replayed.solved_broadcast, recorded.solved_broadcast);
}

TEST(TraceReplayTest, AlgorithmVariantsOnIdenticalWorkload) {
  // The point of traces: compare configurations on exactly the same
  // queries. Disable filtering on the replay and verify the workload is
  // identical while the costs differ.
  SimConfig config = SmallConfig(QueryType::kKnn);
  // A seed whose workload actually exercises the data filter in this small
  // world (some seeds resolve every broadcast query without excusable
  // buckets, making filtering a no-op).
  config.seed = 11;
  config.record_trace = true;
  Simulator recorder(config);
  const SimMetrics baseline = recorder.Run();

  SimConfig variant = config;
  variant.use_filtering = false;
  Simulator replayer(variant);
  const SimMetrics unfiltered = replayer.Replay(recorder.trace());
  EXPECT_EQ(unfiltered.queries, baseline.queries);
  EXPECT_NE(unfiltered.buckets_read.sum(), baseline.buckets_read.sum());
}

}  // namespace
}  // namespace lbsq::sim
