#include "spatial/rstar_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "spatial/generators.h"
#include "spatial/rtree.h"

namespace lbsq::spatial {
namespace {

std::vector<Poi> RandomPois(int n, uint64_t seed) {
  Rng rng(seed);
  return GenerateUniformPois(&rng, geom::Rect{0.0, 0.0, 100.0, 100.0}, n);
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree;
  EXPECT_EQ(tree.size(), 0);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.WindowQuery(geom::Rect{0.0, 0.0, 100.0, 100.0}).empty());
  EXPECT_TRUE(tree.Knn({0.0, 0.0}, 3).empty());
}

TEST(RStarTreeTest, SingleElement) {
  RStarTree tree;
  tree.Insert(Poi{9, {3.0, 4.0}});
  const auto knn = tree.Knn({0.0, 0.0}, 1);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].poi.id, 9);
  EXPECT_DOUBLE_EQ(knn[0].distance, 5.0);
}

TEST(RStarTreeTest, InvariantsHoldWhileGrowing) {
  RStarTree tree(8);
  const auto pois = RandomPois(800, 3);
  for (const Poi& p : pois) {
    tree.Insert(p);
    if (tree.size() % 100 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 800);
  EXPECT_GT(tree.Height(), 1);
}

TEST(RStarTreeTest, WindowQueryMatchesBruteForce) {
  const auto pois = RandomPois(700, 7);
  RStarTree tree;
  tree.InsertAll(pois);
  Rng rng(8);
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 85.0), rng.Uniform(0.0, 85.0)};
    const geom::Rect window{a.x, a.y, a.x + rng.Uniform(1.0, 25.0),
                            a.y + rng.Uniform(1.0, 25.0)};
    EXPECT_EQ(tree.WindowQuery(window), BruteForceWindow(pois, window));
  }
}

TEST(RStarTreeTest, KnnMatchesBruteForce) {
  const auto pois = RandomPois(600, 11);
  RStarTree tree;
  tree.InsertAll(pois);
  Rng rng(12);
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Point q{rng.Uniform(-5.0, 105.0), rng.Uniform(-5.0, 105.0)};
    const int k = static_cast<int>(rng.UniformInt(1, 20));
    const auto got = tree.Knn(q, k);
    const auto want = BruteForceKnn(pois, q, k);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].poi.id, want[i].poi.id) << "trial " << trial;
    }
  }
}

TEST(RStarTreeTest, AgreesWithGuttmanTree) {
  const auto pois = RandomPois(500, 13);
  RStarTree rstar;
  rstar.InsertAll(pois);
  RTree guttman;
  guttman.InsertAll(pois);
  Rng rng(14);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    const auto a = rstar.Knn(q, 9);
    const auto b = guttman.KnnBestFirst(q, 9);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].poi.id, b[i].poi.id);
    }
  }
}

TEST(RStarTreeTest, BetterOrEqualNodeAccessesOnClusteredData) {
  // The R* split/reinsertion machinery should not be worse than the Guttman
  // quadratic split for range queries on clustered data (the workload it
  // was designed for). Compare total node accesses over many queries.
  Rng rng(15);
  const geom::Rect world{0.0, 0.0, 100.0, 100.0};
  const auto pois =
      GenerateClusteredPois(&rng, world, 20, 100.0, 2.0);
  RStarTree rstar;
  rstar.InsertAll(pois);
  RTree guttman;
  guttman.InsertAll(pois);
  int64_t rstar_accesses = 0;
  int64_t guttman_accesses = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 90.0), rng.Uniform(0.0, 90.0)};
    const geom::Rect window{a.x, a.y, a.x + 10.0, a.y + 10.0};
    const auto r1 = rstar.WindowQuery(window);
    rstar_accesses += rstar.last_node_accesses();
    const auto r2 = guttman.WindowQuery(window);
    guttman_accesses += guttman.last_node_accesses();
    EXPECT_EQ(r1, r2);
  }
  EXPECT_LE(rstar_accesses, guttman_accesses * 11 / 10);  // within 10%
}

TEST(RStarTreeTest, DuplicatePositions) {
  RStarTree tree;
  for (int i = 0; i < 50; ++i) tree.Insert(Poi{i, {5.0, 5.0}});
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 50);
  EXPECT_EQ(tree.WindowQuery(geom::Rect{4.0, 4.0, 6.0, 6.0}).size(), 50u);
}

class RStarFanoutTest : public ::testing::TestWithParam<int> {};

TEST_P(RStarFanoutTest, CorrectAcrossFanouts) {
  const auto pois = RandomPois(400, 17);
  RStarTree tree(GetParam());
  tree.InsertAll(pois);
  tree.CheckInvariants();
  Rng rng(18);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    const auto got = tree.Knn(q, 6);
    const auto want = BruteForceKnn(pois, q, 6);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].poi.id, want[i].poi.id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RStarFanoutTest,
                         ::testing::Values(4, 8, 16, 50));

}  // namespace
}  // namespace lbsq::spatial
