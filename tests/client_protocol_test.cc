#include "broadcast/client_protocol.h"

#include <gtest/gtest.h>

#include <cmath>

#include "broadcast/schedule.h"

namespace lbsq::broadcast {
namespace {

TEST(ClientProtocolTest, EmptyRequestStillPaysProbeAndIndex) {
  BroadcastSchedule s(50, 4, 2);
  const AccessStats stats = RetrieveBuckets(s, 0, {});
  EXPECT_EQ(stats.buckets_read, 0);
  EXPECT_EQ(stats.tuning_time, 1 + 4);
  // Latency: probe (1) + wait to index + read index. At t=0 the next index
  // segment starts at slot 1's search... it starts at the next segment
  // boundary after slot 1.
  EXPECT_GE(stats.access_latency, 5);
}

TEST(ClientProtocolTest, SingleBucketCosts) {
  BroadcastSchedule s(10, 1, 1);  // cycle: [I][0][1]...[9], length 11
  // Query at t=0: probe slot 0, index starts at 11 (slot 0 is the index but
  // the probe consumes it), ends 12; bucket 0 airs at slot 12.
  const AccessStats stats = RetrieveBuckets(s, 0, {0});
  EXPECT_EQ(stats.buckets_read, 1);
  EXPECT_EQ(stats.tuning_time, 1 + 1 + 1);
  EXPECT_EQ(stats.access_latency, 13 - 0);
}

TEST(ClientProtocolTest, DuplicatesAreDeduplicated) {
  BroadcastSchedule s(20, 2, 2);
  const AccessStats once = RetrieveBuckets(s, 5, {7});
  const AccessStats twice = RetrieveBuckets(s, 5, {7, 7, 7});
  EXPECT_EQ(once.access_latency, twice.access_latency);
  EXPECT_EQ(once.tuning_time, twice.tuning_time);
  EXPECT_EQ(twice.buckets_read, 1);
}

TEST(ClientProtocolTest, LatencyIsLastNeededBucket) {
  BroadcastSchedule s(30, 1, 1);
  const AccessStats first = RetrieveBuckets(s, 0, {0});
  const AccessStats last = RetrieveBuckets(s, 0, {29});
  const AccessStats both = RetrieveBuckets(s, 0, {0, 29});
  EXPECT_LT(first.access_latency, last.access_latency);
  EXPECT_EQ(both.access_latency, last.access_latency);
  EXPECT_EQ(both.tuning_time, 1 + 1 + 2);
}

TEST(ClientProtocolTest, LatencyBoundedByTwoCycles) {
  BroadcastSchedule s(40, 3, 4);
  for (int64_t t = 0; t < 2 * s.cycle_length(); t += 5) {
    std::vector<int64_t> all;
    for (int64_t b = 0; b < 40; ++b) all.push_back(b);
    const AccessStats stats = RetrieveBuckets(s, t, all);
    EXPECT_LE(stats.access_latency, 2 * s.cycle_length() + 1);
    EXPECT_EQ(stats.buckets_read, 40);
  }
}

TEST(ClientProtocolTest, TuningNeverExceedsLatency) {
  BroadcastSchedule s(60, 4, 3);
  for (int64_t t = 0; t < s.cycle_length(); t += 11) {
    const AccessStats stats = RetrieveBuckets(s, t, {3, 17, 42, 55});
    EXPECT_LE(stats.tuning_time, stats.access_latency);
  }
}

TEST(ClientProtocolTest, MoreIndexReplicasReduceProbeWait) {
  // Average latency to reach the index falls as m grows (the classic (1,m)
  // trade-off; the cycle itself grows, so data latency rises).
  const int64_t data = 120;
  const int64_t index_len = 6;
  auto average_index_wait = [&](int m) {
    BroadcastSchedule s(data, index_len, m);
    double total = 0.0;
    const int64_t cycle = s.cycle_length();
    for (int64_t t = 0; t < cycle; ++t) {
      total += static_cast<double>(s.NextIndexSegmentStart(t + 1) - t);
    }
    return total / static_cast<double>(cycle);
  };
  EXPECT_GT(average_index_wait(1), average_index_wait(4));
  EXPECT_GT(average_index_wait(4), average_index_wait(12));
}

TEST(LossyChannelTest, ZeroLossMatchesReliable) {
  BroadcastSchedule s(40, 3, 4);
  Rng rng(1);
  for (int64_t t = 0; t < s.cycle_length(); t += 7) {
    const AccessStats reliable = RetrieveBuckets(s, t, {2, 15, 33});
    const AccessStats lossy = RetrieveBucketsLossy(s, t, {2, 15, 33}, 0.0, &rng);
    EXPECT_EQ(reliable.access_latency, lossy.access_latency);
    EXPECT_EQ(reliable.tuning_time, lossy.tuning_time);
    EXPECT_EQ(reliable.buckets_read, lossy.buckets_read);
  }
}

TEST(LossyChannelTest, LossNeverSpeedsUp) {
  BroadcastSchedule s(60, 2, 3);
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t t = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(s.cycle_length())));
    const AccessStats reliable = RetrieveBuckets(s, t, {5, 30});
    const AccessStats lossy =
        RetrieveBucketsLossy(s, t, {5, 30}, 0.4, &rng);
    EXPECT_GE(lossy.access_latency, reliable.access_latency);
    EXPECT_GE(lossy.tuning_time, reliable.tuning_time);
  }
}

TEST(LossyChannelTest, RetryCountMatchesGeometricMean) {
  // Average data-bucket tuning attempts should approach 1 / (1 - p).
  BroadcastSchedule s(50, 1, 1);
  Rng rng(3);
  const double p = 0.3;
  double attempts = 0.0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const AccessStats stats = RetrieveBucketsLossy(s, 0, {25}, p, &rng);
    // tuning = probe(1) + index attempts + data attempts; index attempts are
    // geometric too, subtract their expectation.
    attempts += static_cast<double>(stats.tuning_time);
  }
  const double mean_tuning = attempts / trials;
  const double expected = 1.0 + 1.0 / (1.0 - p) + 1.0 / (1.0 - p);
  EXPECT_NEAR(mean_tuning, expected, 0.1);
}

TEST(LossyChannelTest, HighLossStillTerminates) {
  BroadcastSchedule s(30, 2, 2);
  Rng rng(4);
  const AccessStats stats =
      RetrieveBucketsLossy(s, 11, {0, 10, 20, 29}, 0.9, &rng);
  EXPECT_EQ(stats.buckets_read, 4);
  EXPECT_GT(stats.access_latency, 0);
}

TEST(ClientProtocolTest, AccumulateAddsFields) {
  AccessStats a{10, 5, 2};
  const AccessStats b{7, 3, 1};
  a.Accumulate(b);
  EXPECT_EQ(a.access_latency, 17);
  EXPECT_EQ(a.tuning_time, 8);
  EXPECT_EQ(a.buckets_read, 3);
}

TEST(ClientProtocolTest, IndexReadModeBucketsToRead) {
  BroadcastSchedule s(50, 4, 2);
  EXPECT_EQ(IndexReadMode::FlatDirectory().BucketsToRead(s),
            s.index_buckets());
  EXPECT_EQ(IndexReadMode::TreePaths(3).BucketsToRead(s), 3);
}

TEST(LossyChannelTest, RetryStatisticsMatchLossProbAcrossSeeds) {
  // Over many independent seeds, the extra tuning attempts (retries) per
  // reception should match the geometric-retry expectation p / (1 - p).
  // Every reception is Bernoulli(p): one index segment + two data buckets
  // per retrieval, so expected retries per retrieval = 3 p / (1 - p).
  BroadcastSchedule s(50, 1, 1);
  for (double p : {0.1, 0.25, 0.5}) {
    const AccessStats reliable = RetrieveBuckets(s, 0, {10, 40});
    double total_retries = 0.0;
    const double seeds = 3000.0;
    for (uint64_t seed = 1; seed <= 3000; ++seed) {
      Rng rng(seed);
      const AccessStats lossy = RetrieveBucketsLossy(s, 0, {10, 40}, p, &rng);
      total_retries +=
          static_cast<double>(lossy.tuning_time - reliable.tuning_time);
    }
    const double mean_retries = total_retries / seeds;
    const double expected = 3.0 * p / (1.0 - p);
    // Var of one geometric retry count is p/(1-p)^2; 3 per trial, so the
    // standard error over `seeds` trials allows a generous 5-sigma band.
    const double sigma =
        std::sqrt(3.0 * p / ((1.0 - p) * (1.0 - p)) / seeds);
    EXPECT_NEAR(mean_retries, expected, 5.0 * sigma) << "p=" << p;
  }
}

TEST(LossyChannelTest, ZeroLossTraceMatchesReliableSpans) {
  // With loss_prob = 0 the lossy path must walk the identical schedule: same
  // stats and the same protocol spans, with both retry counters at zero.
  BroadcastSchedule s(40, 3, 4);
  for (int64_t t : {0L, 9L, 57L}) {
    obs::TraceRecorder reliable_trace;
    obs::TraceRecorder lossy_trace;
    Rng rng(11);
    const AccessStats reliable =
        RetrieveBuckets(s, t, {2, 15, 33}, IndexReadMode{}, &reliable_trace);
    const AccessStats lossy =
        RetrieveBucketsLossy(s, t, {2, 15, 33}, 0.0, &rng, &lossy_trace);
    EXPECT_EQ(reliable.access_latency, lossy.access_latency);
    EXPECT_EQ(reliable.tuning_time, lossy.tuning_time);
    EXPECT_EQ(reliable.buckets_read, lossy.buckets_read);
    // The lossy trace adds the two retry counters; its spans must be
    // identical to the reliable ones.
    std::vector<obs::TraceEvent> lossy_spans;
    for (const obs::TraceEvent& e : lossy_trace.events()) {
      if (e.kind == obs::TraceEvent::Kind::kSpan) {
        lossy_spans.push_back(e);
      } else {
        EXPECT_EQ(e.value, 0.0) << e.name;
      }
    }
    ASSERT_EQ(lossy_spans.size(), reliable_trace.events().size());
    for (size_t i = 0; i < lossy_spans.size(); ++i) {
      EXPECT_EQ(lossy_spans[i], reliable_trace.events()[i]);
    }
  }
}

}  // namespace
}  // namespace lbsq::broadcast
