#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace lbsq {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-3.5, 12.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 12.25);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, NextBelowCoversRangeUniformly) {
  Rng rng(13);
  int counts[7] = {0};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBelow(7)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, 400.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(19);
  int trues = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++trues;
  }
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.7));
  EXPECT_NEAR(sum / n, 3.7, 0.05);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(41);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.02);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(55);
  Rng forked = a.Fork();
  // The fork must differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == forked.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(99);
  const uint64_t first = rng.NextUint64();
  rng.NextUint64();
  rng.Seed(99);
  EXPECT_EQ(rng.NextUint64(), first);
}

}  // namespace
}  // namespace lbsq
