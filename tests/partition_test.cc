#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "hilbert/hilbert.h"
#include "hilbert/partition.h"

/// The ShardMap contract: contiguous, non-overlapping, domain-covering curve
/// ranges; ShardOfIndex/RangeOf consistency; sorted-dedup ShardsTouching;
/// and the PartitionByOccupancy invariants (balance, cell-snapping, N == 1
/// identity, legality of empty shards).

namespace lbsq::hilbert {
namespace {

const geom::Rect kWorld{0.0, 0.0, 20.0, 20.0};

TEST(ShardMapTest, IdentityPartition) {
  const ShardMap map(64);
  EXPECT_EQ(map.num_shards(), 1);
  EXPECT_EQ(map.num_cells(), 64u);
  EXPECT_EQ(map.RangeOf(0), (IndexRange{0, 63}));
  EXPECT_EQ(map.ShardOfIndex(0), 0);
  EXPECT_EQ(map.ShardOfIndex(63), 0);
}

TEST(ShardMapTest, ExplicitBoundsRanges) {
  const ShardMap map(16, {4, 8, 16});
  EXPECT_EQ(map.num_shards(), 3);
  EXPECT_EQ(map.RangeOf(0), (IndexRange{0, 3}));
  EXPECT_EQ(map.RangeOf(1), (IndexRange{4, 7}));
  EXPECT_EQ(map.RangeOf(2), (IndexRange{8, 15}));
  // Boundary cells land in the shard whose half-open range owns them.
  EXPECT_EQ(map.ShardOfIndex(0), 0);
  EXPECT_EQ(map.ShardOfIndex(3), 0);
  EXPECT_EQ(map.ShardOfIndex(4), 1);
  EXPECT_EQ(map.ShardOfIndex(7), 1);
  EXPECT_EQ(map.ShardOfIndex(8), 2);
  EXPECT_EQ(map.ShardOfIndex(15), 2);
}

TEST(ShardMapTest, RangesPartitionTheDomain) {
  const ShardMap map(32, {5, 6, 20, 32});
  uint64_t expected_lo = 0;
  for (int s = 0; s < map.num_shards(); ++s) {
    const IndexRange r = map.RangeOf(s);
    EXPECT_EQ(r.lo, expected_lo);
    EXPECT_GE(r.hi, r.lo);
    for (uint64_t i = r.lo; i <= r.hi; ++i) {
      EXPECT_EQ(map.ShardOfIndex(i), s);
    }
    expected_lo = r.hi + 1;
  }
  EXPECT_EQ(expected_lo, map.num_cells());
}

TEST(ShardMapTest, EqualityComparesCellsAndBounds) {
  EXPECT_EQ(ShardMap(16, {4, 16}), ShardMap(16, {4, 16}));
  EXPECT_FALSE(ShardMap(16, {4, 16}) == ShardMap(16, {8, 16}));
  EXPECT_FALSE(ShardMap(16) == ShardMap(16, {4, 16}));
}

TEST(ShardMapTest, ShardsTouchingSortedDeduplicated) {
  const ShardMap map(16, {4, 8, 12, 16});
  std::vector<int> out{99};  // pre-filled: ShardsTouching must clear it

  // One range inside one shard.
  std::vector<IndexRange> cover{{1, 2}};
  map.ShardsTouching(cover, &out);
  EXPECT_EQ(out, (std::vector<int>{0}));

  // A range straddling a seam hits both sides.
  cover = {{3, 4}};
  map.ShardsTouching(cover, &out);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));

  // Disjoint cover fragments landing in the same shard dedup.
  cover = {{0, 1}, {2, 3}, {5, 6}};
  map.ShardsTouching(cover, &out);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));

  // A range spanning every shard enumerates them all, ascending.
  cover = {{0, 15}};
  map.ShardsTouching(cover, &out);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));

  // An empty cover touches nothing.
  cover.clear();
  map.ShardsTouching(cover, &out);
  EXPECT_TRUE(out.empty());
}

TEST(PartitionByOccupancyTest, SingleShardIsIdentity) {
  const HilbertGrid grid(kWorld, 4);
  Rng rng(7);
  std::vector<geom::Point> positions;
  for (int i = 0; i < 100; ++i) {
    positions.push_back({rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)});
  }
  EXPECT_EQ(PartitionByOccupancy(grid, positions, 1),
            ShardMap(grid.num_cells()));
}

TEST(PartitionByOccupancyTest, CoversDomainAndBalancesOccupancy) {
  const HilbertGrid grid(kWorld, 6);
  Rng rng(11);
  std::vector<geom::Point> positions;
  for (int i = 0; i < 4000; ++i) {
    positions.push_back({rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)});
  }
  for (const int num_shards : {2, 3, 8, 16}) {
    SCOPED_TRACE(num_shards);
    const ShardMap map = PartitionByOccupancy(grid, positions, num_shards);
    ASSERT_EQ(map.num_shards(), num_shards);
    EXPECT_EQ(map.num_cells(), grid.num_cells());

    // Ranges are contiguous and cover [0, num_cells).
    uint64_t expected_lo = 0;
    for (int s = 0; s < num_shards; ++s) {
      const IndexRange r = map.RangeOf(s);
      EXPECT_EQ(r.lo, expected_lo);
      expected_lo = r.hi + 1;
    }
    EXPECT_EQ(expected_lo, grid.num_cells());

    // Occupancy is within a cell's worth of the perfect quantile split:
    // cuts snap to cell boundaries, so a shard can exceed n/N only by the
    // population of the single cell straddling its cut.
    std::vector<int64_t> occupancy(static_cast<size_t>(num_shards), 0);
    std::vector<int64_t> cell_count(static_cast<size_t>(grid.num_cells()), 0);
    for (const geom::Point& p : positions) {
      ++occupancy[static_cast<size_t>(map.ShardOfIndex(grid.IndexOf(p)))];
      ++cell_count[static_cast<size_t>(grid.IndexOf(p))];
    }
    const int64_t max_cell =
        *std::max_element(cell_count.begin(), cell_count.end());
    const int64_t ideal =
        static_cast<int64_t>(positions.size()) / num_shards;
    for (int s = 0; s < num_shards; ++s) {
      EXPECT_LE(occupancy[static_cast<size_t>(s)], ideal + max_cell + 1);
    }
  }
}

TEST(PartitionByOccupancyTest, CellMatesNeverStraddleShards) {
  const HilbertGrid grid(kWorld, 5);
  // Heavy duplication: many points share exact positions (and so cells).
  Rng rng(3);
  std::vector<geom::Point> positions;
  for (int i = 0; i < 50; ++i) {
    const geom::Point p{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
    const int copies = 1 + static_cast<int>(rng.NextBelow(40));
    for (int c = 0; c < copies; ++c) positions.push_back(p);
  }
  for (const int num_shards : {2, 5, 13}) {
    SCOPED_TRACE(num_shards);
    const ShardMap map = PartitionByOccupancy(grid, positions, num_shards);
    for (const geom::Point& p : positions) {
      // Every point in a cell maps to the cell's one shard — the shard
      // assignment factors through the curve index by construction, so it
      // suffices that the cell's whole index range sits inside one shard.
      const uint64_t index = grid.IndexOf(p);
      EXPECT_EQ(map.ShardOfIndex(index),
                map.ShardOfIndex(grid.ToIndex(grid.CellOf(p))));
    }
  }
}

TEST(PartitionByOccupancyTest, DegenerateWorkloadsStillCoverTheDomain) {
  const HilbertGrid grid(kWorld, 3);
  // All POIs in one cell: N-1 shards own zero POIs but every shard still
  // owns at least one cell and the ranges still cover the domain.
  std::vector<geom::Point> positions(100, geom::Point{1.0, 1.0});
  const ShardMap map = PartitionByOccupancy(grid, positions, 8);
  ASSERT_EQ(map.num_shards(), 8);
  uint64_t expected_lo = 0;
  for (int s = 0; s < 8; ++s) {
    const IndexRange r = map.RangeOf(s);
    EXPECT_EQ(r.lo, expected_lo);
    EXPECT_GE(r.hi, r.lo);
    expected_lo = r.hi + 1;
  }
  EXPECT_EQ(expected_lo, grid.num_cells());
  const uint64_t hot = grid.IndexOf(positions[0]);
  int populated = 0;
  for (int s = 0; s < 8; ++s) {
    const IndexRange r = map.RangeOf(s);
    if (hot >= r.lo && hot <= r.hi) ++populated;
  }
  EXPECT_EQ(populated, 1);

  // An empty position set degrades to an even cell split.
  const ShardMap empty = PartitionByOccupancy(grid, {}, 4);
  ASSERT_EQ(empty.num_shards(), 4);
  EXPECT_EQ(empty.RangeOf(3).hi, grid.num_cells() - 1);
}

TEST(PartitionByOccupancyTest, RandomizedShardOfIndexMatchesRanges) {
  const HilbertGrid grid(kWorld, 6);
  Rng rng(29);
  std::vector<geom::Point> positions;
  for (int i = 0; i < 700; ++i) {
    positions.push_back({rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)});
  }
  const ShardMap map = PartitionByOccupancy(grid, positions, 7);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t index = rng.NextBelow(grid.num_cells());
    const int s = map.ShardOfIndex(index);
    const IndexRange r = map.RangeOf(s);
    EXPECT_GE(index, r.lo);
    EXPECT_LE(index, r.hi);
  }
}

}  // namespace
}  // namespace lbsq::hilbert
