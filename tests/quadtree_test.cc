#include "spatial/quadtree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "spatial/generators.h"
#include "spatial/poi.h"
#include "spatial/rtree.h"

namespace lbsq::spatial {
namespace {

const geom::Rect kWorld{0.0, 0.0, 64.0, 64.0};

TEST(QuadTreeTest, EmptyTree) {
  QuadTree tree(kWorld);
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.WindowQuery(kWorld).empty());
}

TEST(QuadTreeTest, SingleInsertAndQuery) {
  QuadTree tree(kWorld);
  tree.Insert(Poi{3, {10.0, 20.0}});
  const auto result = tree.WindowQuery(geom::Rect{5.0, 15.0, 15.0, 25.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 3);
}

TEST(QuadTreeTest, SplitsBeyondBucketCapacity) {
  QuadTree tree(kWorld, /*bucket_capacity=*/4);
  Rng rng(1);
  const auto pois = GenerateUniformPois(&rng, kWorld, 100);
  tree.InsertAll(pois);
  EXPECT_EQ(tree.size(), 100);
  // Full-world query returns everything.
  EXPECT_EQ(tree.WindowQuery(kWorld).size(), 100u);
}

TEST(QuadTreeTest, WindowQueryMatchesBruteForce) {
  Rng rng(7);
  const auto pois = GenerateUniformPois(&rng, kWorld, 700);
  QuadTree tree(kWorld, 8);
  tree.InsertAll(pois);
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 60.0), rng.Uniform(0.0, 60.0)};
    const geom::Rect window{a.x, a.y, a.x + rng.Uniform(1.0, 20.0),
                            a.y + rng.Uniform(1.0, 20.0)};
    EXPECT_EQ(tree.WindowQuery(window), BruteForceWindow(pois, window));
  }
}

TEST(QuadTreeTest, MatchesRTreeOnIdenticalData) {
  Rng rng(11);
  const auto pois = GenerateUniformPois(&rng, kWorld, 500);
  QuadTree qt(kWorld, 8);
  qt.InsertAll(pois);
  RTree rt;
  rt.InsertAll(pois);
  for (int trial = 0; trial < 25; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 55.0), rng.Uniform(0.0, 55.0)};
    const geom::Rect window{a.x, a.y, a.x + rng.Uniform(2.0, 25.0),
                            a.y + rng.Uniform(2.0, 25.0)};
    EXPECT_EQ(qt.WindowQuery(window), rt.WindowQuery(window));
  }
}

TEST(QuadTreeTest, CoincidentPointsOverflowGracefully) {
  // More identical points than bucket capacity: depth limit stops splitting.
  QuadTree tree(kWorld, 2, /*max_depth=*/6);
  for (int i = 0; i < 20; ++i) tree.Insert(Poi{i, {32.0, 32.0}});
  EXPECT_EQ(tree.size(), 20);
  EXPECT_EQ(tree.WindowQuery(geom::Rect{31.0, 31.0, 33.0, 33.0}).size(), 20u);
}

TEST(QuadTreeTest, BoundaryPointsQueryClosed) {
  QuadTree tree(kWorld);
  tree.Insert(Poi{1, {32.0, 32.0}});  // exactly on the split lines
  tree.Insert(Poi{2, {0.0, 0.0}});
  tree.Insert(Poi{3, {64.0, 64.0}});
  EXPECT_EQ(tree.WindowQuery(kWorld).size(), 3u);
  EXPECT_EQ(tree.WindowQuery(geom::Rect{32.0, 32.0, 32.0, 32.0}).size(), 1u);
}

TEST(QuadTreeTest, KnnMatchesBruteForce) {
  Rng rng(21);
  const auto pois = GenerateUniformPois(&rng, kWorld, 500);
  QuadTree tree(kWorld, 6);
  tree.InsertAll(pois);
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Point q{rng.Uniform(-5.0, 70.0), rng.Uniform(-5.0, 70.0)};
    const int k = static_cast<int>(rng.UniformInt(1, 15));
    const auto got = tree.Knn(q, k);
    const auto want = BruteForceKnn(pois, q, k);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].poi.id, want[i].poi.id) << "trial " << trial;
    }
  }
}

TEST(QuadTreeTest, KnnEmptyAndOversizedK) {
  QuadTree tree(kWorld);
  EXPECT_TRUE(tree.Knn({1.0, 1.0}, 5).empty());
  tree.Insert(Poi{0, {2.0, 2.0}});
  EXPECT_EQ(tree.Knn({1.0, 1.0}, 5).size(), 1u);
}

TEST(QuadTreeTest, KnnAgreesWithRTree) {
  Rng rng(22);
  const auto pois = GenerateUniformPois(&rng, kWorld, 400);
  QuadTree qt(kWorld, 8);
  qt.InsertAll(pois);
  RTree rt;
  rt.InsertAll(pois);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 64.0), rng.Uniform(0.0, 64.0)};
    const auto a = qt.Knn(q, 8);
    const auto b = rt.KnnBestFirst(q, 8);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].poi.id, b[i].poi.id);
    }
  }
}

TEST(QuadTreeTest, NodeAccessCounterRuns) {
  Rng rng(13);
  QuadTree tree(kWorld, 4);
  tree.InsertAll(GenerateUniformPois(&rng, kWorld, 300));
  tree.WindowQuery(geom::Rect{0.0, 0.0, 4.0, 4.0});
  const int64_t small_query = tree.last_node_accesses();
  tree.WindowQuery(kWorld);
  const int64_t full_query = tree.last_node_accesses();
  EXPECT_GT(small_query, 0);
  EXPECT_GT(full_query, small_query);
}

}  // namespace
}  // namespace lbsq::spatial
