#include "ondemand/ondemand.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace lbsq::ondemand {
namespace {

TEST(MM1Test, ClosedFormValues) {
  // lambda = 0.5, mu = 1: E[T] = 1 / (1 - 0.5) = 2.
  OnDemandParams params{0.5, 1.0};
  EXPECT_DOUBLE_EQ(MM1ExpectedResponseTime(params), 2.0);
  EXPECT_DOUBLE_EQ(MM1Utilization(params), 0.5);
}

TEST(MM1Test, UnstableQueueIsInfinite) {
  OnDemandParams params{2.0, 1.0};
  EXPECT_TRUE(std::isinf(MM1ExpectedResponseTime(params)));
  EXPECT_DOUBLE_EQ(MM1Utilization(params), 2.0);
}

TEST(OnDemandSimTest, MatchesMM1AtModerateLoad) {
  Rng rng(1);
  for (double rho : {0.2, 0.5, 0.8}) {
    OnDemandParams params{rho, 1.0};
    const OnDemandResult result =
        SimulateOnDemandServer(params, 200000, &rng);
    const double expected = MM1ExpectedResponseTime(params);
    EXPECT_NEAR(result.response_time.mean(), expected, 0.08 * expected)
        << "rho=" << rho;
    EXPECT_NEAR(result.utilization, rho, 0.03);
  }
}

TEST(OnDemandSimTest, ResponseTimeExplodesNearSaturation) {
  Rng rng(2);
  const OnDemandResult light =
      SimulateOnDemandServer({0.3, 1.0}, 50000, &rng);
  const OnDemandResult heavy =
      SimulateOnDemandServer({0.95, 1.0}, 50000, &rng);
  EXPECT_GT(heavy.response_time.mean(), 5.0 * light.response_time.mean());
}

TEST(OnDemandSimTest, ResponseAtLeastServiceTime) {
  Rng rng(3);
  const OnDemandResult result = SimulateOnDemandServer({0.1, 2.0}, 20000, &rng);
  EXPECT_GE(result.response_time.mean(), 2.0 * 0.9);
  EXPECT_GT(result.response_time.min(), 0.0);
}

TEST(OnDemandSimTest, DeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  const OnDemandResult ra = SimulateOnDemandServer({0.5, 1.0}, 1000, &a);
  const OnDemandResult rb = SimulateOnDemandServer({0.5, 1.0}, 1000, &b);
  EXPECT_DOUBLE_EQ(ra.response_time.mean(), rb.response_time.mean());
}

}  // namespace
}  // namespace lbsq::ondemand
