#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "engine_shim.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "dynamic/dynamic_engine.h"
#include "dynamic/update_log.h"
#include "dynamic/world_versioner.h"
#include "sim/config.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"
#include "sim/update_workload.h"
#include "spatial/generators.h"

/// The dynamic-world subsystem: UpdateLog semantics, WorldVersioner epoch
/// publication (synchronous and via the builder thread), snapshot pinning
/// under concurrent churn (the TSan target), and bitwise determinism of
/// the simulators with updates enabled.

namespace lbsq {
namespace {

using dynamic::PoiUpdate;
using dynamic::UpdateBatch;
using spatial::Poi;

std::vector<Poi> TestPois() {
  return {{0, {1.0, 1.0}}, {1, {2.0, 2.0}}, {2, {5.0, 5.0}},
          {3, {8.0, 8.0}}, {4, {9.0, 1.0}}};
}

// --- ApplyUpdates ----------------------------------------------------------

TEST(ApplyUpdatesTest, InsertDeleteMoveSemantics) {
  std::vector<Poi> pois = TestPois();
  std::vector<PoiUpdate> updates;
  updates.push_back({PoiUpdate::Kind::kDelete, 1, {}, {}});
  updates.push_back({PoiUpdate::Kind::kMove, 2, {6.0, 6.0}, {}});
  updates.push_back({PoiUpdate::Kind::kInsert, 10, {3.0, 3.0}, {}});
  EXPECT_EQ(dynamic::ApplyUpdates(&updates, &pois), 3);
  ASSERT_EQ(pois.size(), 5u);
  // Generation order preserved: delete compacts, move rewrites in place,
  // insert appends.
  EXPECT_EQ(pois[0].id, 0);
  EXPECT_EQ(pois[1].id, 2);
  EXPECT_EQ(pois[1].pos, (geom::Point{6.0, 6.0}));
  EXPECT_EQ(pois[4].id, 10);
  // The applied batch records the authoritative old position of the move.
  ASSERT_EQ(updates.size(), 3u);
  EXPECT_EQ(updates[1].old_pos, (geom::Point{5.0, 5.0}));
}

TEST(ApplyUpdatesTest, InvalidOpsAreSkippedAndRemovedFromTheBatch) {
  std::vector<Poi> pois = TestPois();
  std::vector<PoiUpdate> updates;
  updates.push_back({PoiUpdate::Kind::kDelete, 99, {}, {}});   // no such id
  updates.push_back({PoiUpdate::Kind::kInsert, 3, {4.0, 4.0}, {}});  // dup id
  updates.push_back({PoiUpdate::Kind::kMove, 98, {1.0, 1.0}, {}});   // no id
  updates.push_back({PoiUpdate::Kind::kDelete, 0, {}, {}});    // valid
  updates.push_back({PoiUpdate::Kind::kDelete, 0, {}, {}});    // dup delete
  EXPECT_EQ(dynamic::ApplyUpdates(&updates, &pois), 1);
  EXPECT_EQ(pois.size(), 4u);
  // The batch is compacted to exactly the applied ops, so the logged batch
  // is an exact record of what changed.
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].kind, PoiUpdate::Kind::kDelete);
  EXPECT_EQ(updates[0].id, 0);
  EXPECT_EQ(updates[0].old_pos, (geom::Point{1.0, 1.0}));
}

// --- UpdateLog dirtiness ---------------------------------------------------

TEST(UpdateLogTest, RegionDirtyBetweenSeesAllThreeKinds) {
  dynamic::UpdateLog log;
  UpdateBatch b1;
  b1.epoch = 1;
  b1.updates.push_back({PoiUpdate::Kind::kInsert, 10, {2.0, 2.0}, {}});
  log.Append(std::move(b1));
  UpdateBatch b2;
  b2.epoch = 2;
  b2.updates.push_back({PoiUpdate::Kind::kDelete, 3, {}, {8.0, 8.0}});
  b2.updates.push_back(
      {PoiUpdate::Kind::kMove, 4, {5.5, 5.5}, {9.0, 1.0}});
  log.Append(std::move(b2));
  EXPECT_EQ(log.latest_epoch(), 2u);

  // Insert position dirties (1..]; delete old_pos and both move endpoints
  // dirty (2..].
  EXPECT_TRUE(log.RegionDirtyBetween({1.5, 1.5, 2.5, 2.5}, 0, 1));
  EXPECT_FALSE(log.RegionDirtyBetween({1.5, 1.5, 2.5, 2.5}, 1, 2));
  EXPECT_TRUE(log.RegionDirtyBetween({7.5, 7.5, 8.5, 8.5}, 1, 2));
  EXPECT_TRUE(log.RegionDirtyBetween({5.0, 5.0, 6.0, 6.0}, 1, 2));  // move to
  EXPECT_TRUE(log.RegionDirtyBetween({8.5, 0.5, 9.5, 1.5}, 1, 2));  // move from
  EXPECT_FALSE(log.RegionDirtyBetween({0.0, 6.0, 1.0, 7.0}, 0, 2));
}

// --- WorldVersioner epochs -------------------------------------------------

TEST(WorldVersionerTest, PublishesSequentialEpochsAndPinsSnapshots) {
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  broadcast::BroadcastParams params;
  dynamic::WorldVersioner versioner(TestPois(), world, params, {});
  EXPECT_EQ(versioner.latest_epoch(), 0u);
  EXPECT_EQ(versioner.Current()->system->epoch(), 0u);

  const std::shared_ptr<const dynamic::WorldEpoch> pinned =
      versioner.Current();
  versioner.Apply({{PoiUpdate::Kind::kDelete, 2, {}, {}}});
  EXPECT_EQ(versioner.latest_epoch(), 1u);
  EXPECT_EQ(versioner.updates_applied(), 1);
  EXPECT_EQ(versioner.Current()->pois.size(), 4u);
  EXPECT_EQ(versioner.Current()->system->epoch(), 1u);
  // The pinned epoch-0 snapshot is untouched by the publication.
  EXPECT_EQ(pinned->id, 0u);
  EXPECT_EQ(pinned->pois.size(), 5u);
  EXPECT_EQ(pinned->pois[2].id, 2);
}

TEST(WorldVersionerTest, HistoryRetentionServesEveryEpoch) {
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  broadcast::BroadcastParams params;
  dynamic::WorldVersioner versioner(TestPois(), world, params, {},
                                    /*retain_history=*/true);
  versioner.Apply({{PoiUpdate::Kind::kDelete, 0, {}, {}}});
  versioner.Apply({{PoiUpdate::Kind::kInsert, 50, {4.0, 4.0}, {}}});
  ASSERT_EQ(versioner.latest_epoch(), 2u);
  EXPECT_EQ(versioner.EpochAt(0)->pois.size(), 5u);
  EXPECT_EQ(versioner.EpochAt(1)->pois.size(), 4u);
  EXPECT_EQ(versioner.EpochAt(2)->pois.size(), 5u);
  EXPECT_EQ(versioner.EpochAt(3), nullptr);
}

TEST(WorldVersionerTest, BuilderThreadPublishesEnqueuedBatches) {
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  broadcast::BroadcastParams params;
  dynamic::WorldVersioner versioner(TestPois(), world, params, {});
  versioner.StartBuilder();
  versioner.EnqueueBatch({{PoiUpdate::Kind::kDelete, 4, {}, {}}});
  versioner.EnqueueBatch({{PoiUpdate::Kind::kInsert, 60, {7.0, 7.0}, {}}});
  versioner.WaitForEpoch(2);
  EXPECT_EQ(versioner.latest_epoch(), 2u);
  EXPECT_EQ(versioner.Current()->pois.size(), 5u);
  versioner.StopBuilder();
  // Restartable after a stop.
  versioner.StartBuilder();
  versioner.EnqueueBatch({{PoiUpdate::Kind::kDelete, 0, {}, {}}});
  versioner.WaitForEpoch(3);
  versioner.StopBuilder();
  EXPECT_EQ(versioner.Current()->pois.size(), 4u);
}

// --- Builder churn vs. concurrent query threads (the TSan target) ----------

// A builder thread continuously publishes epochs while query threads pin
// snapshots and execute against them. Every query must observe exactly the
// world of its pinned epoch: the answer it computes against the pinned
// engine equals the brute-force answer over the pinned POI vector. TSan
// (the dynamic-world CI job) proves the pin/publish handoff is race-free;
// the assertions prove it is also *correct* under the race.
TEST(DynamicWorldChurnTest, QueriesStaySnapshotConsistentUnderLiveChurn) {
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  Rng rng(777);
  std::vector<Poi> initial = spatial::GenerateUniformPois(&rng, world, 80);
  broadcast::BroadcastParams params;
  params.bucket_capacity = 8;
  core::EngineOptions options;
  options.sbnn.accept_approximate = false;
  dynamic::WorldVersioner versioner(initial, world, params, options);
  dynamic::DynamicQueryEngine engine(versioner);

  versioner.StartBuilder();
  std::atomic<bool> stop{false};

  // Producer: enqueue randomized batches as fast as the builder drains.
  std::thread producer([&] {
    Rng prng(778);
    int64_t next_id = 100000;
    for (int batch = 0; batch < 60; ++batch) {
      const std::shared_ptr<const dynamic::WorldEpoch> snap =
          versioner.Current();
      std::vector<PoiUpdate> updates;
      for (int op = 0; op < 4; ++op) {
        PoiUpdate u;
        const double kind = prng.NextDouble();
        if (kind < 0.3 && !snap->pois.empty()) {
          u.kind = PoiUpdate::Kind::kDelete;
          u.id = snap->pois[prng.NextBelow(snap->pois.size())].id;
        } else if (kind < 0.6 && !snap->pois.empty()) {
          u.kind = PoiUpdate::Kind::kMove;
          u.id = snap->pois[prng.NextBelow(snap->pois.size())].id;
          u.pos = {prng.Uniform(0.0, 10.0), prng.Uniform(0.0, 10.0)};
        } else {
          u.kind = PoiUpdate::Kind::kInsert;
          u.id = next_id++;
          u.pos = {prng.Uniform(0.0, 10.0), prng.Uniform(0.0, 10.0)};
        }
        updates.push_back(u);
      }
      versioner.EnqueueBatch(std::move(updates));
    }
    versioner.WaitForEpoch(60);
    stop.store(true);
  });

  // Query threads: pin, execute, verify against the pinned snapshot.
  std::vector<std::thread> queriers;
  std::atomic<int64_t> queries_run{0};
  std::atomic<int64_t> failures{0};
  for (int t = 0; t < 4; ++t) {
    queriers.emplace_back([&, t] {
      Rng qrng(900 + static_cast<uint64_t>(t));
      core::QueryWorkspace workspace;
      core::QueryOutcome outcome;
      while (!stop.load()) {
        core::QueryRequest request;
        if (qrng.NextBool(0.5)) {
          request.kind = core::QueryKind::kKnn;
          request.position = {qrng.Uniform(0.0, 10.0),
                              qrng.Uniform(0.0, 10.0)};
          request.k = static_cast<int>(qrng.UniformInt(1, 6));
        } else {
          request.kind = core::QueryKind::kWindow;
          const geom::Point a{qrng.Uniform(0.0, 7.0),
                              qrng.Uniform(0.0, 7.0)};
          request.window = {a.x, a.y, a.x + 2.0, a.y + 2.0};
        }
        const std::shared_ptr<const dynamic::WorldEpoch> pinned =
            engine.Execute(request, /*peers=*/nullptr, workspace, &outcome);
        if (request.kind == core::QueryKind::kKnn) {
          const auto truth = spatial::BruteForceKnn(
              pinned->pois, request.position, request.k);
          if (outcome.knn->neighbors.size() != truth.size()) {
            failures.fetch_add(1);
          } else {
            for (size_t i = 0; i < truth.size(); ++i) {
              if (outcome.knn->neighbors[i].poi.id != truth[i].poi.id) {
                failures.fetch_add(1);
                break;
              }
            }
          }
        } else {
          if (outcome.window->pois !=
              spatial::BruteForceWindow(pinned->pois, request.window)) {
            failures.fetch_add(1);
          }
        }
        queries_run.fetch_add(1);
      }
    });
  }

  producer.join();
  for (std::thread& q : queriers) q.join();
  versioner.StopBuilder();

  EXPECT_EQ(versioner.latest_epoch(), 60u);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(queries_run.load(), 0);
}

// --- Simulator determinism with updates enabled ----------------------------

sim::SimConfig ChurnConfig(int threads) {
  sim::SimConfig config;
  config.world_side_mi = 1.5;
  config.warmup_min = 1.0;
  config.duration_min = 3.0;
  config.seed = 42;
  config.threads = threads;
  config.updates.interval_events = 10;
  config.updates.inserts_per_batch = 2;
  config.updates.deletes_per_batch = 1;
  config.updates.moves_per_batch = 2;
  return config;
}

TEST(DynamicWorldChurnTest, SequentialEngineDeterministicUnderChurn) {
  sim::Simulator a(ChurnConfig(1));
  sim::Simulator b(ChurnConfig(1));
  const sim::SimMetrics ma = a.Run();
  const sim::SimMetrics mb = b.Run();
  EXPECT_TRUE(ma == mb);
  EXPECT_GT(ma.updates_applied, 0);
  EXPECT_GT(ma.epochs_published, 0);
}

TEST(DynamicWorldChurnTest, ParallelEngineThreadCountInvariantUnderChurn) {
  sim::ParallelSimulator t1(ChurnConfig(1));
  sim::ParallelSimulator t4(ChurnConfig(4));
  const sim::SimMetrics m1 = t1.Run();
  const sim::SimMetrics m4 = t4.Run();
  EXPECT_TRUE(m1 == m4);
  EXPECT_GT(m1.updates_applied, 0);
  EXPECT_GT(m1.epochs_published, 0);
  EXPECT_GT(m1.regions_revalidated + m1.regions_stale_rejected, 0);
}

// With updates *disabled*, the dynamic-capable engines reproduce the
// static seed metrics exactly (the updates-off byte-identity contract at
// the metrics level; the CI job diffs the full tool output).
TEST(DynamicWorldChurnTest, UpdatesOffMatchesStaticMetrics) {
  sim::SimConfig off = ChurnConfig(1);
  off.updates = sim::UpdateWorkloadConfig{};
  off.events_per_epoch = 1;  // parallel == sequential exactly at epoch 1
  sim::Simulator seq(off);
  sim::ParallelSimulator par(off);
  const sim::SimMetrics ms = seq.Run();
  const sim::SimMetrics mp = par.Run();
  EXPECT_TRUE(ms == mp);
  EXPECT_EQ(ms.updates_applied, 0);
  EXPECT_EQ(ms.epochs_published, 0);
  EXPECT_EQ(ms.regions_revalidated, 0);
  EXPECT_EQ(ms.regions_stale_rejected, 0);
}

// --- Deterministic update workload -----------------------------------------

TEST(UpdateWorkloadTest, BatchesArePureFunctionsOfSeedAndIndex) {
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  Rng rng(55);
  const std::vector<Poi> snapshot =
      spatial::GenerateUniformPois(&rng, world, 60);
  sim::UpdateWorkloadConfig config;
  config.interval_events = 5;
  const int64_t base = sim::FirstInsertId(snapshot);

  const auto a = sim::GenerateUpdateBatch(config, 7, 3, snapshot, world, base);
  const auto b = sim::GenerateUpdateBatch(config, 7, 3, snapshot, world, base);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].pos, b[i].pos);
  }
  // Different batch index, different draws; insert ids never collide
  // across batches.
  const auto c = sim::GenerateUpdateBatch(config, 7, 4, snapshot, world, base);
  for (const PoiUpdate& ua : a) {
    if (ua.kind != PoiUpdate::Kind::kInsert) continue;
    for (const PoiUpdate& uc : c) {
      if (uc.kind != PoiUpdate::Kind::kInsert) continue;
      EXPECT_NE(ua.id, uc.id);
    }
  }
  // A batch never deletes and moves the same POI.
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      if (a[i].kind == PoiUpdate::Kind::kInsert ||
          a[j].kind == PoiUpdate::Kind::kInsert) {
        continue;
      }
      EXPECT_NE(a[i].id, a[j].id);
    }
  }
}

}  // namespace
}  // namespace lbsq
