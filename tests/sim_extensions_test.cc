#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/simulator.h"

/// Tests for the simulator extensions beyond the paper's base setup:
/// Manhattan-grid mobility, multi-hop peer discovery, the paper-geometry
/// window scaling, and the unsound collective-MBR cache policy ablation.

namespace lbsq::sim {
namespace {

SimConfig SmallConfig(QueryType type) {
  SimConfig config;
  config.params = LosAngelesCity();
  config.query_type = type;
  config.world_side_mi = 1.0;
  config.warmup_min = 10.0;
  config.duration_min = 10.0;
  config.seed = 7;
  return config;
}

TEST(SimExtensionsTest, ManhattanMobilityRunsChecked) {
  SimConfig config = SmallConfig(QueryType::kKnn);
  config.mobility = MobilityType::kManhattanGrid;
  config.check_answers = true;
  config.check_cache_invariant = true;
  Simulator sim(config);
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.queries, 50);
  EXPECT_EQ(metrics.answer_errors, 0);
}

TEST(SimExtensionsTest, MultiHopReachesMorePeers) {
  SimConfig config = SmallConfig(QueryType::kKnn);
  config.params.tx_range_m = 60.0;  // sparse single-hop neighborhoods
  Simulator one_hop(config);
  const double peers1 = one_hop.Run().peers_per_query.mean();
  config.p2p_hops = 3;
  Simulator three_hop(config);
  const double peers3 = three_hop.Run().peers_per_query.mean();
  EXPECT_GT(peers3, peers1);
}

TEST(SimExtensionsTest, MultiHopImprovesSharing) {
  SimConfig config = SmallConfig(QueryType::kKnn);
  config.params.tx_range_m = 60.0;
  Simulator one_hop(config);
  const SimMetrics m1 = one_hop.Run();
  config.p2p_hops = 3;
  Simulator three_hop(config);
  const SimMetrics m3 = three_hop.Run();
  EXPECT_GE(m3.solved_verified + m3.solved_approximate,
            m1.solved_verified + m1.solved_approximate);
}

TEST(SimExtensionsTest, MultiHopStaysSound) {
  SimConfig config = SmallConfig(QueryType::kKnn);
  config.p2p_hops = 2;
  config.check_answers = true;
  Simulator sim(config);
  EXPECT_EQ(sim.Run().answer_errors, 0);
}

TEST(SimExtensionsTest, PaperWindowGeometryKeepsPoiCount) {
  SimConfig config = SmallConfig(QueryType::kWindow);
  config.paper_window_geometry = true;
  EXPECT_EQ(config.ScaledPoiCount(), 2750);
  config.paper_window_geometry = false;
  EXPECT_LT(config.ScaledPoiCount(), 100);
}

TEST(SimExtensionsTest, PaperWindowGeometryRunsChecked) {
  SimConfig config = SmallConfig(QueryType::kWindow);
  config.paper_window_geometry = true;
  config.warmup_min = 5.0;
  config.duration_min = 5.0;
  config.check_answers = true;
  Simulator sim(config);
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.queries, 10);
  EXPECT_EQ(metrics.answer_errors, 0);
}

TEST(SimExtensionsTest, SoundPolicyNeverErrs) {
  for (QueryType type : {QueryType::kKnn, QueryType::kWindow}) {
    SimConfig config = SmallConfig(type);
    config.cache_policy = core::CachePolicy::kSoundShrink;
    Simulator sim(config);
    EXPECT_EQ(sim.Run().answer_errors, 0);
  }
}

TEST(SimExtensionsTest, CollectiveMbrPolicyRuns) {
  // The unsound policy must not crash; errors are counted, not asserted.
  SimConfig config = SmallConfig(QueryType::kWindow);
  config.paper_window_geometry = true;
  config.warmup_min = 5.0;
  config.duration_min = 5.0;
  config.cache_policy = core::CachePolicy::kCollectiveMbr;
  Simulator sim(config);
  const SimMetrics metrics = sim.Run();
  EXPECT_GE(metrics.answer_errors, 0);
  EXPECT_GT(metrics.queries, 10);
}

TEST(SimExtensionsTest, ApproxExactCounterBounded) {
  SimConfig config = SmallConfig(QueryType::kKnn);
  Simulator sim(config);
  const SimMetrics metrics = sim.Run();
  EXPECT_LE(metrics.approx_exact, metrics.solved_approximate);
}

}  // namespace
}  // namespace lbsq::sim
