#include "core/nnv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "spatial/generators.h"
#include "spatial/poi.h"

namespace lbsq::core {
namespace {

using spatial::Poi;

// Builds the PeerData of a peer holding the complete server content of
// `region` (the completeness invariant by construction).
PeerData PeerWithRegion(const std::vector<Poi>& server, geom::Rect region) {
  VerifiedRegion vr;
  vr.region = region;
  for (const Poi& p : server) {
    if (region.Contains(p.pos)) vr.pois.push_back(p);
  }
  return PeerData{{vr}};
}

TEST(NnvTest, NoPeersVerifiesNothing) {
  const NnvResult result = NearestNeighborVerify({0.0, 0.0}, 3, {}, 1.0);
  EXPECT_EQ(result.heap.State(), HeapState::kEmpty);
  EXPECT_EQ(result.boundary_distance, 0.0);
  EXPECT_TRUE(result.mvr.empty());
}

TEST(NnvTest, SinglePeerVerifiesNearNeighbor) {
  // Server: POIs at distance 1 and 10; peer knows [-3,3]^2 around q.
  const std::vector<Poi> server = {{0, {1.0, 0.0}}, {1, {10.0, 0.0}}};
  const PeerData peer = PeerWithRegion(server, geom::Rect{-3.0, -3.0, 3.0, 3.0});
  const NnvResult result = NearestNeighborVerify({0.0, 0.0}, 2, {peer}, 0.1);
  EXPECT_DOUBLE_EQ(result.boundary_distance, 3.0);
  ASSERT_EQ(result.heap.entries().size(), 1u);  // only one candidate known
  EXPECT_TRUE(result.heap.entries()[0].verified);
  EXPECT_EQ(result.heap.entries()[0].poi.id, 0);
}

TEST(NnvTest, FarCandidateStaysUnverified) {
  // A POI in the region's corner lies beyond the boundary distance (3.0), so
  // it cannot be verified even though it is the true NN: a closer POI could
  // hide just outside the region.
  const std::vector<Poi> server = {{0, {2.9, 2.9}}};
  const PeerData peer = PeerWithRegion(server, geom::Rect{-3.0, -3.0, 3.0, 3.0});
  const NnvResult result = NearestNeighborVerify({0.0, 0.0}, 1, {peer}, 0.1);
  ASSERT_EQ(result.heap.entries().size(), 1u);
  EXPECT_FALSE(result.heap.entries()[0].verified);
  EXPECT_GT(result.heap.entries()[0].correctness, 0.0);
  EXPECT_LT(result.heap.entries()[0].correctness, 1.0);
}

TEST(NnvTest, QueryOutsideMvrVerifiesNothing) {
  const std::vector<Poi> server = {{0, {1.0, 1.0}}};
  const PeerData peer = PeerWithRegion(server, geom::Rect{0.0, 0.0, 2.0, 2.0});
  const NnvResult result =
      NearestNeighborVerify({10.0, 10.0}, 1, {peer}, 0.1);
  EXPECT_EQ(result.boundary_distance, 0.0);
  ASSERT_EQ(result.heap.entries().size(), 1u);
  EXPECT_FALSE(result.heap.entries()[0].verified);
}

TEST(NnvTest, MergedRegionsVerifyAcrossSeams) {
  // Two peers whose regions together surround q; neither alone suffices.
  const std::vector<Poi> server = {{0, {0.5, 0.0}}, {1, {-0.5, 0.0}}};
  const PeerData left = PeerWithRegion(server, geom::Rect{-2.0, -2.0, 0.0, 2.0});
  const PeerData right = PeerWithRegion(server, geom::Rect{0.0, -2.0, 2.0, 2.0});
  const NnvResult result =
      NearestNeighborVerify({0.0, 0.0}, 2, {left, right}, 0.1);
  EXPECT_DOUBLE_EQ(result.boundary_distance, 2.0);
  EXPECT_EQ(result.heap.verified_count(), 2);
}

TEST(NnvTest, UnverifiedRegionHoleBlocksVerification) {
  // Paper Figure 6: a hole in the MVR between q and the candidate keeps the
  // candidate unverified even though the candidate itself is inside the MVR.
  std::vector<Poi> server = {{0, {0.0, 1.8}}};
  // Frame around q with a hole at the top middle.
  PeerData frame;
  auto add = [&frame, &server](geom::Rect r) {
    VerifiedRegion vr;
    vr.region = r;
    for (const Poi& p : server) {
      if (r.Contains(p.pos)) vr.pois.push_back(p);
    }
    frame.regions.push_back(vr);
  };
  add(geom::Rect{-2.0, -2.0, 2.0, 1.0});   // bottom block (contains q)
  add(geom::Rect{-2.0, 1.0, -0.5, 2.0});   // top-left
  add(geom::Rect{0.5, 1.0, 2.0, 2.0});     // top-right
  add(geom::Rect{-0.5, 1.5, 0.5, 2.0});    // top-center upper (hole below)
  const NnvResult result =
      NearestNeighborVerify({0.0, 0.0}, 1, {frame}, 0.1);
  // Boundary distance is limited by the hole ([-0.5,1.0]x[0.5,1.5]).
  EXPECT_DOUBLE_EQ(result.boundary_distance, 1.0);
  ASSERT_EQ(result.heap.entries().size(), 1u);
  EXPECT_FALSE(result.heap.entries()[0].verified);
  // Its unverified region is the part of disc(q, 1.8) in the hole.
  EXPECT_GT(result.heap.entries()[0].correctness, 0.0);
  EXPECT_LT(result.heap.entries()[0].correctness, 1.0);
}

TEST(NnvTest, DuplicateCandidatesFromMultiplePeersDeduplicated) {
  const std::vector<Poi> server = {{0, {0.5, 0.5}}};
  const PeerData a = PeerWithRegion(server, geom::Rect{-1.0, -1.0, 1.0, 1.0});
  const PeerData b = PeerWithRegion(server, geom::Rect{0.0, 0.0, 2.0, 2.0});
  const NnvResult result = NearestNeighborVerify({0.4, 0.4}, 3, {a, b}, 0.1);
  EXPECT_EQ(result.candidate_count, 1);
  EXPECT_EQ(result.heap.entries().size(), 1u);
}

TEST(NnvTest, CorrectnessAnnotationsMatchLemma) {
  // One verified then one unverified entry: surpassing ratio must be the
  // distance ratio, correctness must equal e^(-lambda * uncovered).
  const std::vector<Poi> server = {{0, {1.0, 0.0}}, {1, {5.0, 0.0}}};
  // The peer knows the square around q plus a small island holding the far
  // POI, so the far POI is a candidate but stays unverified.
  PeerData peer = PeerWithRegion(server, geom::Rect{-2.0, -2.0, 2.0, 2.0});
  const PeerData island =
      PeerWithRegion(server, geom::Rect{4.9, -0.1, 5.1, 0.1});
  peer.regions.push_back(island.regions[0]);
  const double lambda = 0.3;
  const NnvResult result =
      NearestNeighborVerify({0.0, 0.0}, 2, {peer}, lambda);
  ASSERT_EQ(result.heap.entries().size(), 2u);
  const HeapEntry& verified = result.heap.entries()[0];
  const HeapEntry& unverified = result.heap.entries()[1];
  ASSERT_TRUE(verified.verified);
  ASSERT_FALSE(unverified.verified);
  EXPECT_DOUBLE_EQ(unverified.surpassing_ratio, 5.0);
  const double uncovered =
      result.mvr.DiscUncoveredArea(geom::Circle{{0.0, 0.0}, 5.0});
  EXPECT_NEAR(unverified.correctness, std::exp(-lambda * uncovered), 1e-12);
}

TEST(NnvTest, CandidatesAreSortedAndComplete) {
  const std::vector<Poi> server = {
      {0, {1.0, 0.0}}, {1, {0.5, 0.5}}, {2, {3.0, 3.0}}};
  const PeerData peer =
      PeerWithRegion(server, geom::Rect{-4.0, -4.0, 4.0, 4.0});
  const NnvResult result = NearestNeighborVerify({0.0, 0.0}, 2, {peer}, 0.1);
  ASSERT_EQ(result.candidates.size(), 3u);
  EXPECT_EQ(result.candidate_count, 3);
  for (size_t i = 1; i < result.candidates.size(); ++i) {
    EXPECT_LE(result.candidates[i - 1].distance,
              result.candidates[i].distance);
  }
  // The heap holds only k entries but candidates keep everything.
  EXPECT_EQ(result.heap.entries().size(), 2u);
}

TEST(NnvTest, SurpassingRatioInfiniteWithoutVerifiedPrefix) {
  const std::vector<Poi> server = {{0, {5.0, 5.0}}};
  const PeerData peer =
      PeerWithRegion(server, geom::Rect{4.0, 4.0, 6.0, 6.0});
  // q far outside the region: candidate known but nothing verified.
  const NnvResult result =
      NearestNeighborVerify({0.0, 0.0}, 1, {peer}, 0.1);
  ASSERT_EQ(result.heap.entries().size(), 1u);
  EXPECT_FALSE(result.heap.entries()[0].verified);
  EXPECT_TRUE(std::isinf(result.heap.entries()[0].surpassing_ratio));
}

// The soundness property (Lemma 3.1): every POI NNV marks verified is a true
// top-v nearest neighbor, across random configurations.
class NnvSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(NnvSoundnessTest, VerifiedEntriesMatchOracle) {
  const int num_peers = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(num_peers));
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  for (int trial = 0; trial < 60; ++trial) {
    const auto server = spatial::GenerateUniformPois(&rng, world, 120);
    std::vector<PeerData> peers;
    for (int p = 0; p < num_peers; ++p) {
      const geom::Point c{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
      peers.push_back(PeerWithRegion(
          server, geom::Rect::CenteredSquare(c, rng.Uniform(0.3, 1.5))));
    }
    const geom::Point q{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    const int k = static_cast<int>(rng.UniformInt(1, 8));
    const NnvResult result = NearestNeighborVerify(q, k, peers, 1.2);
    const auto truth = spatial::BruteForceKnn(server, q, k);
    const auto& entries = result.heap.entries();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!entries[i].verified) break;
      EXPECT_EQ(entries[i].poi.id, truth[i].poi.id)
          << "trial " << trial << " i " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PeerCounts, NnvSoundnessTest,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace lbsq::core
