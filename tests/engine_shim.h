#ifndef LBSQ_TESTS_ENGINE_SHIM_H_
#define LBSQ_TESTS_ENGINE_SHIM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "broadcast/system.h"
#include "core/query_engine.h"
#include "core/sbnn.h"
#include "core/sbwq.h"
#include "geom/point.h"
#include "geom/rect.h"

/// \file
/// Test-only replacements for the retired free functions `core::RunSbnn` /
/// `core::RunSbwq`. The production entry point is `core::QueryEngine`; the
/// algorithm tests, however, are phrased as single direct calls with an
/// explicit POI density, so this shim keeps their call sites unchanged by
/// routing each call through a one-shot engine (the engine's
/// `poi_density_override` carries the test's density verbatim).

namespace lbsq::core {

inline SbnnOutcome RunSbnn(geom::Point q, const SbnnOptions& options,
                           const std::vector<PeerData>& peers,
                           double poi_density,
                           const broadcast::BroadcastSystem& system,
                           int64_t now) {
  EngineOptions engine_options;
  engine_options.sbnn = options;
  engine_options.poi_density_override = poi_density;
  const QueryEngine engine(system, system.grid().world(), engine_options);
  QueryRequest request;
  request.kind = QueryKind::kKnn;
  request.position = q;
  request.slot = now;
  request.peers = peers;
  QueryOutcome outcome = engine.Execute(request);
  return std::move(*outcome.knn);
}

inline SbwqOutcome RunSbwq(const geom::Rect& window,
                           const SbwqOptions& options,
                           const std::vector<PeerData>& peers,
                           const broadcast::BroadcastSystem& system,
                           int64_t now) {
  EngineOptions engine_options;
  engine_options.sbwq = options;
  const QueryEngine engine(system, system.grid().world(), engine_options);
  QueryRequest request;
  request.kind = QueryKind::kWindow;
  request.window = window;
  request.slot = now;
  request.peers = peers;
  QueryOutcome outcome = engine.Execute(request);
  return std::move(*outcome.window);
}

}  // namespace lbsq::core

#endif  // LBSQ_TESTS_ENGINE_SHIM_H_
