#include "broadcast/schedule.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace lbsq::broadcast {
namespace {

TEST(ScheduleTest, CycleLength) {
  BroadcastSchedule s(/*num_data_buckets=*/100, /*index_buckets=*/5, /*m=*/4);
  EXPECT_EQ(s.cycle_length(), 4 * 5 + 100);
}

TEST(ScheduleTest, OneCycleCoversEveryDataBucketOnce) {
  BroadcastSchedule s(97, 3, 5);  // uneven chunking
  std::set<int64_t> seen;
  int64_t index_slots = 0;
  for (int64_t t = 0; t < s.cycle_length(); ++t) {
    const auto slot = s.SlotAt(t);
    if (slot.kind == BroadcastSchedule::Slot::Kind::kIndex) {
      ++index_slots;
      EXPECT_GE(slot.value, 0);
      EXPECT_LT(slot.value, 3);
    } else {
      EXPECT_TRUE(seen.insert(slot.value).second)
          << "bucket " << slot.value << " repeated";
    }
  }
  EXPECT_EQ(seen.size(), 97u);
  EXPECT_EQ(index_slots, 3 * 5);
}

TEST(ScheduleTest, DataBucketsBroadcastInOrder) {
  BroadcastSchedule s(50, 2, 3);
  int64_t prev = -1;
  for (int64_t t = 0; t < s.cycle_length(); ++t) {
    const auto slot = s.SlotAt(t);
    if (slot.kind == BroadcastSchedule::Slot::Kind::kData) {
      EXPECT_EQ(slot.value, prev + 1);
      prev = slot.value;
    }
  }
  EXPECT_EQ(prev, 49);
}

TEST(ScheduleTest, ScheduleRepeatsAcrossCycles) {
  BroadcastSchedule s(20, 2, 2);
  for (int64_t t = 0; t < s.cycle_length(); ++t) {
    const auto a = s.SlotAt(t);
    const auto b = s.SlotAt(t + 3 * s.cycle_length());
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.value, b.value);
  }
}

TEST(ScheduleTest, EachSegmentPrecedesItsChunk) {
  // With m=4 over 40 buckets, each index segment must be immediately
  // followed by its 10-bucket chunk.
  BroadcastSchedule s(40, 3, 4);
  for (int64_t j = 0; j < 4; ++j) {
    const int64_t seg_start = j * (3 + 10);
    for (int64_t i = 0; i < 3; ++i) {
      EXPECT_EQ(s.SlotAt(seg_start + i).kind,
                BroadcastSchedule::Slot::Kind::kIndex);
    }
    for (int64_t i = 0; i < 10; ++i) {
      const auto slot = s.SlotAt(seg_start + 3 + i);
      EXPECT_EQ(slot.kind, BroadcastSchedule::Slot::Kind::kData);
      EXPECT_EQ(slot.value, j * 10 + i);
    }
  }
}

TEST(ScheduleTest, NextIndexSegmentStartBruteForce) {
  BroadcastSchedule s(37, 2, 3);
  auto brute = [&s](int64_t t) {
    for (int64_t u = t;; ++u) {
      if (s.SlotAt(u).kind == BroadcastSchedule::Slot::Kind::kIndex &&
          s.SlotAt(u).value == 0) {
        return u;
      }
    }
  };
  for (int64_t t = 0; t < 2 * s.cycle_length(); ++t) {
    EXPECT_EQ(s.NextIndexSegmentStart(t), brute(t)) << "t=" << t;
  }
}

TEST(ScheduleTest, NextBucketSlotBruteForce) {
  BroadcastSchedule s(23, 2, 4);
  auto brute = [&s](int64_t t, int64_t bucket) {
    for (int64_t u = t;; ++u) {
      const auto slot = s.SlotAt(u);
      if (slot.kind == BroadcastSchedule::Slot::Kind::kData &&
          slot.value == bucket) {
        return u;
      }
    }
  };
  for (int64_t t = 0; t < s.cycle_length(); t += 3) {
    for (int64_t bucket = 0; bucket < 23; bucket += 5) {
      EXPECT_EQ(s.NextBucketSlot(t, bucket), brute(t, bucket))
          << "t=" << t << " bucket=" << bucket;
    }
  }
}

TEST(ScheduleTest, NextBucketSlotIsNeverBeforeT) {
  BroadcastSchedule s(31, 1, 2);
  for (int64_t t = 0; t < 3 * s.cycle_length(); t += 7) {
    for (int64_t bucket = 0; bucket < 31; bucket += 3) {
      const int64_t slot = s.NextBucketSlot(t, bucket);
      EXPECT_GE(slot, t);
      EXPECT_LT(slot, t + s.cycle_length());
      EXPECT_EQ(s.SlotAt(slot).value, bucket);
    }
  }
}

TEST(ScheduleTest, MEqualsOne) {
  BroadcastSchedule s(10, 4, 1);
  EXPECT_EQ(s.cycle_length(), 14);
  EXPECT_EQ(s.NextIndexSegmentStart(0), 0);
  EXPECT_EQ(s.NextIndexSegmentStart(1), 14);
}

TEST(ScheduleTest, MEqualsDataBuckets) {
  // One data bucket per chunk.
  BroadcastSchedule s(5, 1, 5);
  std::vector<int64_t> data_slots;
  for (int64_t t = 0; t < s.cycle_length(); ++t) {
    if (s.SlotAt(t).kind == BroadcastSchedule::Slot::Kind::kData) {
      data_slots.push_back(t);
    }
  }
  EXPECT_EQ(data_slots, (std::vector<int64_t>{1, 3, 5, 7, 9}));
}

}  // namespace
}  // namespace lbsq::broadcast
