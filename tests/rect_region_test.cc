#include "geom/rect_region.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/circle.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace lbsq::geom {
namespace {

TEST(RectRegionTest, EmptyRegion) {
  RectRegion region;
  EXPECT_TRUE(region.empty());
  EXPECT_EQ(region.Area(), 0.0);
  EXPECT_FALSE(region.Contains({0.0, 0.0}));
  EXPECT_EQ(region.BoundaryDistance({0.0, 0.0}), 0.0);
  EXPECT_TRUE(region.BoundingBox().empty());
}

TEST(RectRegionTest, SingleRect) {
  RectRegion region(Rect{0.0, 0.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(region.Area(), 2.0);
  EXPECT_TRUE(region.Contains({1.0, 0.5}));
  EXPECT_TRUE(region.Contains({0.0, 0.0}));  // closed
  EXPECT_FALSE(region.Contains({2.1, 0.5}));
  EXPECT_DOUBLE_EQ(region.BoundaryDistance({1.0, 0.5}), 0.5);
  EXPECT_EQ(region.BoundingBox(), (Rect{0.0, 0.0, 2.0, 1.0}));
}

TEST(RectRegionTest, DisjointUnionAreaAdds) {
  RectRegion region;
  region.Add(Rect{0.0, 0.0, 1.0, 1.0});
  region.Add(Rect{5.0, 5.0, 7.0, 6.0});
  EXPECT_DOUBLE_EQ(region.Area(), 3.0);
}

TEST(RectRegionTest, OverlappingUnionAreaExact) {
  RectRegion region;
  region.Add(Rect{0.0, 0.0, 2.0, 2.0});
  region.Add(Rect{1.0, 1.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(region.Area(), 4.0 + 4.0 - 1.0);
}

TEST(RectRegionTest, DuplicateAddIsIdempotent) {
  RectRegion region;
  region.Add(Rect{0.0, 0.0, 2.0, 2.0});
  region.Add(Rect{0.0, 0.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(region.Area(), 4.0);
  EXPECT_EQ(region.pieces().size(), 1u);
}

TEST(RectRegionTest, ContainedAddIsNoop) {
  RectRegion region;
  region.Add(Rect{0.0, 0.0, 4.0, 4.0});
  region.Add(Rect{1.0, 1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(region.Area(), 16.0);
  EXPECT_EQ(region.pieces().size(), 1u);
}

TEST(RectRegionTest, ZeroAreaRectIgnored) {
  RectRegion region;
  region.Add(Rect{0.0, 0.0, 0.0, 5.0});
  EXPECT_TRUE(region.empty());
}

TEST(RectRegionTest, PiecesAreInteriorDisjoint) {
  Rng rng(7);
  RectRegion region;
  for (int i = 0; i < 25; ++i) {
    const Point a{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    const Point b{a.x + rng.Uniform(0.1, 3.0), a.y + rng.Uniform(0.1, 3.0)};
    region.Add(Rect::FromCorners(a, b));
  }
  const auto& pieces = region.pieces();
  for (size_t i = 0; i < pieces.size(); ++i) {
    for (size_t j = i + 1; j < pieces.size(); ++j) {
      EXPECT_LE(pieces[i].Intersection(pieces[j]).area(), 0.0);
    }
  }
}

TEST(RectRegionTest, AreaMatchesMonteCarlo) {
  Rng rng(11);
  RectRegion region;
  const Rect domain{0.0, 0.0, 10.0, 10.0};
  for (int i = 0; i < 15; ++i) {
    // Keep every rectangle inside the Monte-Carlo sampling domain.
    const Point a{rng.Uniform(0.0, 7.0), rng.Uniform(0.0, 7.0)};
    region.Add(Rect{a.x, a.y, a.x + rng.Uniform(0.5, 3.0),
                    a.y + rng.Uniform(0.5, 3.0)});
  }
  int inside = 0;
  const int samples = 200000;
  Rng sample_rng(12);
  for (int i = 0; i < samples; ++i) {
    const Point p{sample_rng.Uniform(0.0, 10.0), sample_rng.Uniform(0.0, 10.0)};
    if (region.Contains(p)) ++inside;
  }
  const double mc = 100.0 * static_cast<double>(inside) / samples;
  EXPECT_NEAR(region.Area(), mc, 1.0);
}

TEST(RectRegionTest, MergeEqualsSequentialAdds) {
  RectRegion a;
  a.Add(Rect{0.0, 0.0, 2.0, 2.0});
  RectRegion b;
  b.Add(Rect{1.0, 1.0, 3.0, 3.0});
  b.Add(Rect{4.0, 0.0, 5.0, 1.0});
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Area(), 7.0 + 1.0);
}

TEST(RectRegionTest, BoundarySegmentsOfSingleRect) {
  RectRegion region(Rect{0.0, 0.0, 2.0, 1.0});
  const auto segments = region.BoundarySegments();
  double perimeter = 0.0;
  for (const Segment& s : segments) perimeter += s.Length();
  EXPECT_DOUBLE_EQ(perimeter, 6.0);
}

TEST(RectRegionTest, SharedEdgeIsInterior) {
  // Two rects sharing a full edge: the shared edge is not boundary.
  RectRegion region;
  region.Add(Rect{0.0, 0.0, 1.0, 1.0});
  region.Add(Rect{1.0, 0.0, 2.0, 1.0});
  double perimeter = 0.0;
  for (const Segment& s : region.BoundarySegments()) perimeter += s.Length();
  EXPECT_DOUBLE_EQ(perimeter, 6.0);  // 2x1 rectangle outline
  // A point on the (former) shared edge is interior: boundary distance 1.
  EXPECT_DOUBLE_EQ(region.BoundaryDistance({1.0, 0.5}), 0.5);
}

TEST(RectRegionTest, HoleBoundaryCounts) {
  // Frame: big square minus an inner hole built from four strips.
  RectRegion region;
  region.Add(Rect{0.0, 0.0, 4.0, 1.0});   // bottom strip
  region.Add(Rect{0.0, 3.0, 4.0, 4.0});   // top strip
  region.Add(Rect{0.0, 1.0, 1.0, 3.0});   // left strip
  region.Add(Rect{3.0, 1.0, 4.0, 3.0});   // right strip
  EXPECT_DOUBLE_EQ(region.Area(), 16.0 - 4.0);
  EXPECT_FALSE(region.Contains({2.0, 2.0}));  // the hole
  double perimeter = 0.0;
  for (const Segment& s : region.BoundarySegments()) perimeter += s.Length();
  EXPECT_DOUBLE_EQ(perimeter, 16.0 + 8.0);  // outer + hole outline
  // Distance from a point in the frame to the nearest boundary (hole edge).
  EXPECT_DOUBLE_EQ(region.BoundaryDistance({0.5, 2.0}), 0.5);
}

TEST(RectRegionTest, BoundaryDistanceOutsideIsZero) {
  RectRegion region(Rect{0.0, 0.0, 1.0, 1.0});
  EXPECT_EQ(region.BoundaryDistance({5.0, 5.0}), 0.0);
}

TEST(RectRegionTest, ContainsRectExact) {
  RectRegion region;
  region.Add(Rect{0.0, 0.0, 2.0, 2.0});
  region.Add(Rect{2.0, 0.0, 4.0, 2.0});
  // Straddles the internal seam but is fully covered.
  EXPECT_TRUE(region.ContainsRect(Rect{1.0, 0.5, 3.0, 1.5}));
  EXPECT_FALSE(region.ContainsRect(Rect{1.0, 0.5, 3.0, 2.5}));
}

TEST(RectRegionTest, ContainsDisc) {
  RectRegion region;
  region.Add(Rect{0.0, 0.0, 2.0, 2.0});
  region.Add(Rect{2.0, 0.0, 4.0, 2.0});
  EXPECT_TRUE(region.ContainsDisc(Circle{{2.0, 1.0}, 1.0}));
  EXPECT_FALSE(region.ContainsDisc(Circle{{2.0, 1.0}, 1.01}));
  EXPECT_FALSE(region.ContainsDisc(Circle{{10.0, 10.0}, 0.1}));
}

TEST(RectRegionTest, DiscCoveredAreaAcrossSeam) {
  RectRegion region;
  region.Add(Rect{0.0, -10.0, 10.0, 10.0});
  region.Add(Rect{-10.0, -10.0, 0.0, 10.0});
  // The seam at x=0 splits the disc into two halves; the union covers all.
  const Circle disc{{0.0, 0.0}, 1.0};
  EXPECT_NEAR(region.DiscCoveredArea(disc), M_PI, 1e-9);
  EXPECT_NEAR(region.DiscUncoveredArea(disc), 0.0, 1e-9);
}

TEST(RectRegionTest, DiscUncoveredAreaHalf) {
  RectRegion region(Rect{0.0, -10.0, 10.0, 10.0});
  const Circle disc{{0.0, 0.0}, 2.0};
  EXPECT_NEAR(region.DiscUncoveredArea(disc), 2.0 * M_PI, 1e-9);
}

TEST(RectRegionTest, SubtractFromYieldsResidualRects) {
  RectRegion region(Rect{0.0, 0.0, 2.0, 2.0});
  std::vector<Rect> residual;
  region.SubtractFrom(Rect{1.0, 1.0, 3.0, 3.0}, &residual);
  double area = 0.0;
  for (const Rect& r : residual) area += r.area();
  EXPECT_DOUBLE_EQ(area, 3.0);
  for (const Rect& r : residual) {
    EXPECT_LE(region.BoundingBox().Intersection(r).area(),
              r.area());  // sanity
    EXPECT_FALSE(region.ContainsRect(r));
  }
}

TEST(RectRegionTest, SubtractFromFullyCovered) {
  RectRegion region(Rect{0.0, 0.0, 4.0, 4.0});
  std::vector<Rect> residual;
  region.SubtractFrom(Rect{1.0, 1.0, 2.0, 2.0}, &residual);
  EXPECT_TRUE(residual.empty());
}

TEST(RectRegionTest, BoundaryDistanceMatchesBruteForceProbe) {
  // Random union; for interior points, walking to the boundary distance in
  // any direction must stay inside a closed ball of that radius.
  Rng rng(31);
  RectRegion region;
  for (int i = 0; i < 12; ++i) {
    const Point a{rng.Uniform(0.0, 8.0), rng.Uniform(0.0, 8.0)};
    region.Add(Rect{a.x, a.y, a.x + rng.Uniform(0.5, 3.0),
                    a.y + rng.Uniform(0.5, 3.0)});
  }
  for (int trial = 0; trial < 2000; ++trial) {
    const Point p{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    if (!region.Contains(p)) continue;
    const double d = region.BoundaryDistance(p);
    // Any point strictly inside the radius-d ball must be inside the region.
    for (int probe = 0; probe < 16; ++probe) {
      const double angle = rng.Uniform(0.0, 2.0 * M_PI);
      const double radius = rng.Uniform(0.0, d * 0.999);
      const Point inside{p.x + radius * std::cos(angle),
                         p.y + radius * std::sin(angle)};
      EXPECT_TRUE(region.Contains(inside))
          << "p=(" << p.x << "," << p.y << ") d=" << d;
    }
  }
}

}  // namespace
}  // namespace lbsq::geom
