#include "core/result_heap.h"

#include <gtest/gtest.h>

namespace lbsq::core {
namespace {

HeapEntry Entry(int64_t id, double distance, bool verified) {
  HeapEntry e;
  e.poi = spatial::Poi{id, {distance, 0.0}};
  e.distance = distance;
  e.verified = verified;
  return e;
}

TEST(ResultHeapTest, EmptyState) {
  ResultHeap heap(3);
  EXPECT_EQ(heap.State(), HeapState::kEmpty);
  EXPECT_FALSE(heap.full());
  EXPECT_EQ(heap.verified_count(), 0);
  EXPECT_FALSE(heap.UpperBound().has_value());
  EXPECT_FALSE(heap.LowerBound().has_value());
}

TEST(ResultHeapTest, FulfilledState) {
  ResultHeap heap(2);
  EXPECT_TRUE(heap.Push(Entry(1, 1.0, true)));
  EXPECT_TRUE(heap.Push(Entry(2, 2.0, true)));
  EXPECT_TRUE(heap.fully_verified());
  EXPECT_EQ(heap.State(), HeapState::kFulfilled);
  EXPECT_EQ(*heap.UpperBound(), 2.0);
  EXPECT_EQ(*heap.LowerBound(), 2.0);
}

TEST(ResultHeapTest, State1FullMixed) {
  ResultHeap heap(3);
  heap.Push(Entry(1, 1.0, true));
  heap.Push(Entry(2, 2.0, true));
  heap.Push(Entry(3, 5.0, false));
  EXPECT_EQ(heap.State(), HeapState::kFullMixed);
  EXPECT_EQ(*heap.UpperBound(), 5.0);
  EXPECT_EQ(*heap.LowerBound(), 2.0);
}

TEST(ResultHeapTest, State2FullUnverified) {
  ResultHeap heap(2);
  heap.Push(Entry(1, 1.0, false));
  heap.Push(Entry(2, 2.0, false));
  EXPECT_EQ(heap.State(), HeapState::kFullUnverified);
  EXPECT_EQ(*heap.UpperBound(), 2.0);
  EXPECT_FALSE(heap.LowerBound().has_value());
}

TEST(ResultHeapTest, State3PartialMixed) {
  ResultHeap heap(5);
  heap.Push(Entry(1, 1.0, true));
  heap.Push(Entry(2, 4.0, false));
  EXPECT_EQ(heap.State(), HeapState::kPartialMixed);
  EXPECT_FALSE(heap.UpperBound().has_value());
  EXPECT_EQ(*heap.LowerBound(), 1.0);
}

TEST(ResultHeapTest, State4PartialVerified) {
  ResultHeap heap(5);
  heap.Push(Entry(1, 1.0, true));
  heap.Push(Entry(2, 2.0, true));
  EXPECT_EQ(heap.State(), HeapState::kPartialVerified);
  EXPECT_FALSE(heap.UpperBound().has_value());
  EXPECT_EQ(*heap.LowerBound(), 2.0);
}

TEST(ResultHeapTest, State5PartialUnverified) {
  ResultHeap heap(5);
  heap.Push(Entry(1, 3.0, false));
  EXPECT_EQ(heap.State(), HeapState::kPartialUnverified);
  EXPECT_FALSE(heap.UpperBound().has_value());
  EXPECT_FALSE(heap.LowerBound().has_value());
}

TEST(ResultHeapTest, PushBeyondCapacityRejected) {
  ResultHeap heap(1);
  EXPECT_TRUE(heap.Push(Entry(1, 1.0, true)));
  EXPECT_FALSE(heap.Push(Entry(2, 2.0, false)));
  EXPECT_EQ(heap.entries().size(), 1u);
}

TEST(ResultHeapTest, CountersAreConsistent) {
  ResultHeap heap(4);
  heap.Push(Entry(1, 1.0, true));
  heap.Push(Entry(2, 2.0, false));
  heap.Push(Entry(3, 3.0, false));
  EXPECT_EQ(heap.verified_count(), 1);
  EXPECT_EQ(heap.unverified_count(), 2);
  EXPECT_EQ(heap.k(), 4);
}

TEST(ResultHeapDeathTest, OutOfOrderPushAborts) {
  ResultHeap heap(3);
  heap.Push(Entry(1, 5.0, false));
  EXPECT_DEATH(heap.Push(Entry(2, 1.0, false)), "LBSQ_CHECK");
}

TEST(ResultHeapDeathTest, VerifiedAfterUnverifiedAborts) {
  ResultHeap heap(3);
  heap.Push(Entry(1, 1.0, false));
  EXPECT_DEATH(heap.Push(Entry(2, 2.0, true)), "LBSQ_CHECK");
}

}  // namespace
}  // namespace lbsq::core
