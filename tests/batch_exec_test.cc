#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "broadcast/system.h"
#include "common/observability.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "spatial/generators.h"

/// The batched zero-allocation execution contract: for any request mix,
/// `ExecuteBatch` (and the workspace `Execute` overload it is built on) is
/// field-for-field identical to a sequential loop of convenience `Execute`
/// calls — with faults on or off, with tracing on or off, on one thread or
/// on many with per-thread workspaces, and through an arbitrarily reused
/// (warm, kind-flipped) workspace.

namespace lbsq::core {
namespace {

const geom::Rect kWorld{0.0, 0.0, 20.0, 20.0};

struct Fixture {
  std::unique_ptr<broadcast::BroadcastSystem> system;

  explicit Fixture(int n_pois, uint64_t seed = 1) {
    Rng rng(seed);
    broadcast::BroadcastParams params;
    params.hilbert_order = 6;
    params.bucket_capacity = 4;
    system = std::make_unique<broadcast::BroadcastSystem>(
        spatial::GenerateUniformPois(&rng, kWorld, n_pois), kWorld, params);
  }
};

// A peer holding the verified content of `region` — honest by construction.
PeerData PeerWithRegion(const broadcast::BroadcastSystem& system,
                        const geom::Rect& region) {
  VerifiedRegion vr;
  vr.region = region;
  for (const spatial::Poi& p : system.pois()) {
    if (region.Contains(p.pos)) vr.pois.push_back(p);
  }
  return PeerData{{vr}};
}

// A request batch plus the peer storage backing its requests' spans (the
// requests hold non-owning views; the storage must outlive every Execute).
struct RequestSet {
  std::vector<QueryRequest> requests;
  std::vector<std::vector<PeerData>> peer_storage;
};

// A randomized mixed workload: kNN and window queries, varying k, window
// sizes, slots across several broadcast cycles, and peer knowledge.
RequestSet MakeRequests(const broadcast::BroadcastSystem& system, int n,
                        uint64_t seed) {
  Rng rng(seed);
  const int64_t cycle = system.schedule().cycle_length();
  RequestSet set;
  set.requests.reserve(static_cast<size_t>(n));
  set.peer_storage.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    QueryRequest r;
    const geom::Point q{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
    if (rng.NextBool(0.5)) {
      r.kind = QueryKind::kKnn;
      r.position = q;
      r.k = 1 + static_cast<int>(rng.NextBelow(6));
    } else {
      r.kind = QueryKind::kWindow;
      r.window = geom::Rect::CenteredSquare(q, rng.Uniform(0.3, 2.5));
    }
    r.slot = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(3 * cycle)));
    if (rng.NextBool(0.6)) {
      set.peer_storage[static_cast<size_t>(i)].push_back(PeerWithRegion(
          system, geom::Rect::CenteredSquare(q, rng.Uniform(0.5, 2.0))));
    }
    r.fault_stream = static_cast<uint64_t>(i);
    set.requests.push_back(std::move(r));
  }
  // Bind spans only after all storage is final (no more vector growth).
  for (int i = 0; i < n; ++i) {
    set.requests[static_cast<size_t>(i)].peers =
        set.peer_storage[static_cast<size_t>(i)];
  }
  return set;
}

void ExpectCommonEq(const QueryResultCommon& a, const QueryResultCommon& b) {
  EXPECT_EQ(a.stats.access_latency, b.stats.access_latency);
  EXPECT_EQ(a.stats.tuning_time, b.stats.tuning_time);
  EXPECT_EQ(a.stats.buckets_read, b.stats.buckets_read);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.cacheable.region, b.cacheable.region);
  EXPECT_EQ(a.cacheable.pois, b.cacheable.pois);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.failed_buckets, b.failed_buckets);
  EXPECT_EQ(a.fault_losses, b.fault_losses);
  EXPECT_EQ(a.fault_corruptions, b.fault_corruptions);
  EXPECT_EQ(a.fault_deadline_hit, b.fault_deadline_hit);
}

void ExpectHeapEq(const ResultHeap& a, const ResultHeap& b) {
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_EQ(a.entries()[i].poi, b.entries()[i].poi);
    EXPECT_EQ(a.entries()[i].distance, b.entries()[i].distance);
    EXPECT_EQ(a.entries()[i].verified, b.entries()[i].verified);
    EXPECT_EQ(a.entries()[i].correctness, b.entries()[i].correctness);
    EXPECT_EQ(a.entries()[i].surpassing_ratio,
              b.entries()[i].surpassing_ratio);
  }
}

void ExpectOutcomeEq(const QueryOutcome& a, const QueryOutcome& b) {
  ASSERT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.regions_rejected, b.regions_rejected);
  if (a.kind == QueryKind::kKnn) {
    ASSERT_TRUE(a.knn.has_value());
    ASSERT_TRUE(b.knn.has_value());
    EXPECT_FALSE(b.window.has_value());
    const SbnnOutcome& x = *a.knn;
    const SbnnOutcome& y = *b.knn;
    ExpectCommonEq(x, y);
    EXPECT_EQ(x.resolved_by, y.resolved_by);
    ASSERT_EQ(x.neighbors.size(), y.neighbors.size());
    for (size_t i = 0; i < x.neighbors.size(); ++i) {
      EXPECT_EQ(x.neighbors[i].poi, y.neighbors[i].poi);
      EXPECT_EQ(x.neighbors[i].distance, y.neighbors[i].distance);
    }
    ExpectHeapEq(x.nnv.heap, y.nnv.heap);
    EXPECT_EQ(x.nnv.mvr.pieces(), y.nnv.mvr.pieces());
    EXPECT_EQ(x.nnv.boundary_distance, y.nnv.boundary_distance);
    EXPECT_EQ(x.nnv.candidate_count, y.nnv.candidate_count);
    ASSERT_EQ(x.nnv.candidates.size(), y.nnv.candidates.size());
    for (size_t i = 0; i < x.nnv.candidates.size(); ++i) {
      EXPECT_EQ(x.nnv.candidates[i].poi, y.nnv.candidates[i].poi);
      EXPECT_EQ(x.nnv.candidates[i].distance, y.nnv.candidates[i].distance);
    }
    EXPECT_EQ(x.buckets_skipped, y.buckets_skipped);
  } else {
    ASSERT_TRUE(a.window.has_value());
    ASSERT_TRUE(b.window.has_value());
    EXPECT_FALSE(b.knn.has_value());
    const SbwqOutcome& x = *a.window;
    const SbwqOutcome& y = *b.window;
    ExpectCommonEq(x, y);
    EXPECT_EQ(x.resolved_by_peers, y.resolved_by_peers);
    EXPECT_EQ(x.pois, y.pois);
    EXPECT_EQ(x.mvr.pieces(), y.mvr.pieces());
    EXPECT_EQ(x.residual_windows, y.residual_windows);
    EXPECT_EQ(x.residual_fraction, y.residual_fraction);
  }
}

EngineOptions FaultyOptions() {
  EngineOptions options;
  options.fault.channel.model = fault::LossModel::kGilbertElliott;
  options.fault.channel.p_bad_to_good = 0.1;
  options.fault.channel.p_good_to_bad = 0.3 / 0.7 * 0.1;
  options.fault.channel.loss_bad = 0.8;
  options.fault.channel.corruption_prob = 0.05;
  options.fault.screen_peers = true;
  return options;
}

TEST(BatchExecTest, BatchMatchesSequentialExecute) {
  Fixture f(600);
  const QueryEngine engine(*f.system, kWorld, EngineOptions{});
  const RequestSet set = MakeRequests(*f.system, 60, /*seed=*/11);
  const std::vector<QueryRequest>& requests = set.requests;

  std::vector<QueryOutcome> sequential;
  for (const QueryRequest& r : requests) sequential.push_back(engine.Execute(r));

  QueryWorkspace workspace;
  const std::span<const QueryOutcome> batch =
      engine.ExecuteBatch(requests, workspace);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectOutcomeEq(sequential[i], batch[i]);
  }
  // Co-located queries within a cycle must actually share cover work.
  EXPECT_GT(workspace.memo_size(), 0u);
  EXPECT_LT(workspace.memo_size(), requests.size());
}

TEST(BatchExecTest, BatchMatchesSequentialUnderFaults) {
  Fixture f(600, /*seed=*/3);
  const QueryEngine engine(*f.system, kWorld, FaultyOptions());
  const RequestSet set = MakeRequests(*f.system, 50, /*seed=*/23);
  const std::vector<QueryRequest>& requests = set.requests;

  std::vector<QueryOutcome> sequential;
  for (const QueryRequest& r : requests) sequential.push_back(engine.Execute(r));
  // The fault schedule is keyed by fault_stream, so at least one query must
  // actually have exercised the faulty path for this test to mean anything.
  int64_t losses = 0;
  for (const QueryOutcome& o : sequential) losses += o.Common().fault_losses;
  EXPECT_GT(losses, 0);

  QueryWorkspace workspace;
  const std::span<const QueryOutcome> batch =
      engine.ExecuteBatch(requests, workspace);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectOutcomeEq(sequential[i], batch[i]);
  }
}

TEST(BatchExecTest, TraceEventsIdenticalAcrossModes) {
  if (!obs::kObservabilityCompiledIn) GTEST_SKIP();
  Fixture f(600);
  const QueryEngine engine(*f.system, kWorld, EngineOptions{});
  RequestSet set = MakeRequests(*f.system, 20, 31);
  std::vector<QueryRequest>& requests = set.requests;

  QueryWorkspace workspace;
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    obs::TraceRecorder plain_trace, reuse_trace;
    plain_trace.Reset(static_cast<int64_t>(i), 0, "q");
    reuse_trace.Reset(static_cast<int64_t>(i), 0, "q");

    requests[i].trace = &plain_trace;
    const QueryOutcome plain = engine.Execute(requests[i]);

    requests[i].trace = &reuse_trace;
    QueryOutcome reused;
    engine.Execute(requests[i], workspace, &reused);
    requests[i].trace = nullptr;

    ExpectOutcomeEq(plain, reused);
    ASSERT_EQ(plain_trace.events().size(), reuse_trace.events().size());
    for (size_t e = 0; e < plain_trace.events().size(); ++e) {
      EXPECT_EQ(plain_trace.events()[e], reuse_trace.events()[e]);
    }
  }
}

TEST(BatchExecTest, ShardedWorkspacesMatchSingleThread) {
  Fixture f(600, /*seed=*/5);
  const QueryEngine engine(*f.system, kWorld, EngineOptions{});
  const RequestSet set = MakeRequests(*f.system, 64, /*seed=*/47);
  const std::vector<QueryRequest>& requests = set.requests;

  QueryWorkspace single;
  const std::span<const QueryOutcome> reference =
      engine.ExecuteBatch(requests, single);

  for (int threads : {1, 4}) {
    std::vector<QueryOutcome> sharded(requests.size());
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t]() {
        QueryWorkspace workspace;  // one per thread
        for (size_t i = static_cast<size_t>(t); i < requests.size();
             i += static_cast<size_t>(threads)) {
          engine.Execute(requests[i], workspace, &sharded[i]);
        }
      });
    }
    for (std::thread& th : pool) th.join();
    for (size_t i = 0; i < requests.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads << " i=" << i);
      ExpectOutcomeEq(reference[i], sharded[i]);
    }
  }
}

TEST(BatchExecTest, WarmWorkspaceAndKindFlipsStayIdentical) {
  Fixture f(600, /*seed=*/9);
  const QueryEngine engine(*f.system, kWorld, EngineOptions{});
  const RequestSet set = MakeRequests(*f.system, 40, /*seed=*/71);
  const std::vector<QueryRequest>& mixed = set.requests;

  // Reference outcomes from the convenience path, once.
  std::vector<QueryOutcome> reference;
  for (const QueryRequest& r : mixed) reference.push_back(engine.Execute(r));

  // The same batch through one workspace repeatedly: outcome slots flip
  // between kNN and window as the arena is recycled, capacities stay warm.
  QueryWorkspace workspace;
  for (int round = 0; round < 3; ++round) {
    const std::span<const QueryOutcome> batch =
        engine.ExecuteBatch(mixed, workspace);
    ASSERT_EQ(batch.size(), mixed.size());
    for (size_t i = 0; i < mixed.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "round=" << round << " i=" << i);
      ExpectOutcomeEq(reference[i], batch[i]);
    }
  }

  // Reversing the batch remaps every arena slot to the opposite mix of
  // kinds; the reset logic must still produce identical outcomes.
  std::vector<QueryRequest> reversed(mixed.rbegin(), mixed.rend());
  const std::span<const QueryOutcome> flipped =
      engine.ExecuteBatch(reversed, workspace);
  for (size_t i = 0; i < reversed.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectOutcomeEq(reference[mixed.size() - 1 - i], flipped[i]);
  }
}

}  // namespace
}  // namespace lbsq::core
