#include "analysis/air_index_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "broadcast/client_protocol.h"
#include "broadcast/schedule.h"

namespace lbsq::analysis {
namespace {

// Empirical averages over every query slot and every bucket.
struct Empirical {
  double index_latency = 0.0;
  double bucket_latency = 0.0;
};

Empirical Measure(const AirIndexModel& model) {
  broadcast::BroadcastSchedule schedule(model.num_data_buckets,
                                        model.index_buckets, model.m);
  Empirical result;
  const int64_t cycle = schedule.cycle_length();
  int64_t samples = 0;
  double index_total = 0.0;
  double bucket_total = 0.0;
  for (int64_t t = 0; t < cycle; ++t) {
    const int64_t index_start = schedule.NextIndexSegmentStart(t + 1);
    index_total +=
        static_cast<double>(index_start + model.index_buckets - t);
    for (int64_t b = 0; b < model.num_data_buckets; ++b) {
      const broadcast::AccessStats stats =
          broadcast::RetrieveBuckets(schedule, t, {b});
      bucket_total += static_cast<double>(stats.access_latency);
      ++samples;
    }
  }
  result.index_latency = index_total / static_cast<double>(cycle);
  result.bucket_latency = bucket_total / static_cast<double>(samples);
  return result;
}

TEST(AirIndexModelTest, CycleLength) {
  const AirIndexModel model{100, 5, 4};
  EXPECT_EQ(model.CycleLength(), 120);
}

TEST(AirIndexModelTest, IndexLatencyMatchesEmpirical) {
  for (int m : {1, 2, 4, 8}) {
    const AirIndexModel model{96, 4, m};
    const Empirical empirical = Measure(model);
    EXPECT_NEAR(ExpectedIndexLatency(model), empirical.index_latency,
                0.05 * empirical.index_latency + 1.5)
        << "m=" << m;
  }
}

TEST(AirIndexModelTest, SingleBucketLatencyMatchesEmpirical) {
  for (int m : {1, 2, 4, 8}) {
    const AirIndexModel model{96, 4, m};
    const Empirical empirical = Measure(model);
    EXPECT_NEAR(ExpectedSingleBucketLatency(model), empirical.bucket_latency,
                0.08 * empirical.bucket_latency + 2.0)
        << "m=" << m;
  }
}

TEST(AirIndexModelTest, TuningTimeIsExact) {
  const AirIndexModel model{96, 4, 4};
  broadcast::BroadcastSchedule schedule(96, 4, 4);
  const broadcast::AccessStats stats =
      broadcast::RetrieveBuckets(schedule, 17, {3, 40, 77});
  EXPECT_EQ(TuningTime(model, 3), stats.tuning_time);
}

TEST(AirIndexModelTest, OptimalMNearSquareRootRule) {
  // Imielinski et al.: the latency-optimal replication factor is about
  // sqrt(data / index).
  for (const auto& [data, index] : {std::pair<int64_t, int64_t>{1024, 16},
                                    {4096, 4}, {900, 9}}) {
    const int optimal = OptimalM(data, index);
    const double rule = std::sqrt(static_cast<double>(data) /
                                  static_cast<double>(index));
    EXPECT_GE(optimal, static_cast<int>(rule / 2.0)) << data << "/" << index;
    EXPECT_LE(optimal, static_cast<int>(rule * 2.0) + 1)
        << data << "/" << index;
  }
}

TEST(AirIndexModelTest, MoreReplicasShortenIndexWait) {
  double prev = 1e18;
  for (int m : {1, 2, 4, 8, 16}) {
    const AirIndexModel model{256, 4, m};
    const double latency = ExpectedIndexLatency(model);
    EXPECT_LT(latency, prev);
    prev = latency;
  }
}

}  // namespace
}  // namespace lbsq::analysis
