#include "analysis/hit_ratio.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/probability.h"

namespace lbsq::analysis {
namespace {

HitRatioModel LaLikeModel() {
  HitRatioModel model;
  model.peer_density = 233.0;   // MHs per sq mi (LA)
  model.tx_range = 0.124;       // 200 m in miles
  model.vr_side = 1.0;          // ~2x the 5-NN distance at 6.9 POI/sq mi
  model.center_spread = 0.2;
  model.poi_density = 6.875;
  model.k = 5;
  return model;
}

TEST(HitRatioTest, SampledDistancesFollowCdf) {
  HitRatioModel model = LaLikeModel();
  Rng rng(1);
  int below_median = 0;
  const int trials = 4000;
  // Median of d_k: CDF^-1(0.5).
  double lo = 0.0, hi = 10.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (core::KthNeighborDistanceCdf(model.poi_density, model.k, mid) < 0.5) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double median = (lo + hi) / 2.0;
  for (int i = 0; i < trials; ++i) {
    if (SampleKthNeighborDistance(model, &rng) <= median) ++below_median;
  }
  EXPECT_NEAR(static_cast<double>(below_median) / trials, 0.5, 0.03);
}

TEST(HitRatioTest, AnalyticBoundIsALowerBound) {
  HitRatioModel model = LaLikeModel();
  Rng rng(2);
  const double analytic = AnalyticHitRatioLowerBound(model);
  const double mc = MonteCarloHitRatio(model, &rng, 3000);
  EXPECT_LE(analytic, mc + 0.05);  // MC noise allowance
  EXPECT_GT(mc, 0.0);
}

TEST(HitRatioTest, HitRatioGrowsWithTransmissionRange) {
  HitRatioModel model = LaLikeModel();
  Rng rng(3);
  double prev = -1.0;
  for (double range : {0.01, 0.05, 0.124}) {
    model.tx_range = range;
    const double hit = MonteCarloHitRatio(model, &rng, 2000);
    EXPECT_GE(hit, prev - 0.03);
    prev = hit;
  }
}

TEST(HitRatioTest, HitRatioGrowsWithPeerDensity) {
  HitRatioModel model = LaLikeModel();
  Rng rng(4);
  model.peer_density = 24.25;  // Riverside
  const double sparse = MonteCarloHitRatio(model, &rng, 2000);
  model.peer_density = 233.0;  // LA
  const double dense = MonteCarloHitRatio(model, &rng, 2000);
  EXPECT_GT(dense, sparse);
}

TEST(HitRatioTest, HitRatioFallsWithK) {
  HitRatioModel model = LaLikeModel();
  Rng rng(5);
  model.k = 3;
  const double k3 = MonteCarloHitRatio(model, &rng, 2000);
  model.k = 15;
  const double k15 = MonteCarloHitRatio(model, &rng, 2000);
  EXPECT_GT(k3, k15);
}

TEST(HitRatioTest, ZeroRangeMeansNoHits) {
  HitRatioModel model = LaLikeModel();
  model.tx_range = 0.0;
  Rng rng(6);
  EXPECT_EQ(MonteCarloHitRatio(model, &rng, 500), 0.0);
}

TEST(HitRatioTest, AnalyticBoundZeroWhenVrTooSmall) {
  HitRatioModel model = LaLikeModel();
  model.vr_side = 1e-6;  // cannot possibly contain a k-NN disc
  EXPECT_NEAR(AnalyticHitRatioLowerBound(model), 0.0, 1e-9);
}

}  // namespace
}  // namespace lbsq::analysis
