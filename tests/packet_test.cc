#include "broadcast/packet.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "spatial/generators.h"

namespace lbsq::broadcast {
namespace {

const geom::Rect kWorld{0.0, 0.0, 16.0, 16.0};

TEST(PacketTest, EmptyDataSetYieldsPlaceholderBucket) {
  hilbert::HilbertGrid grid(kWorld, 4);
  const auto buckets = BuildBuckets({}, grid, 8);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_TRUE(buckets[0].pois.empty());
}

TEST(PacketTest, BucketsRespectCapacity) {
  hilbert::HilbertGrid grid(kWorld, 4);
  Rng rng(1);
  const auto pois = spatial::GenerateUniformPois(&rng, kWorld, 100);
  const auto buckets = BuildBuckets(pois, grid, 8);
  EXPECT_EQ(buckets.size(), 13u);  // ceil(100 / 8)
  for (const DataBucket& b : buckets) {
    EXPECT_LE(b.pois.size(), 8u);
    EXPECT_FALSE(b.pois.empty());
  }
}

TEST(PacketTest, EveryPoiAppearsExactlyOnce) {
  hilbert::HilbertGrid grid(kWorld, 5);
  Rng rng(2);
  const auto pois = spatial::GenerateUniformPois(&rng, kWorld, 333);
  const auto buckets = BuildBuckets(pois, grid, 7);
  std::set<int64_t> ids;
  for (const DataBucket& b : buckets) {
    for (const spatial::Poi& p : b.pois) {
      EXPECT_TRUE(ids.insert(p.id).second) << "duplicate id " << p.id;
    }
  }
  EXPECT_EQ(ids.size(), pois.size());
}

TEST(PacketTest, BucketsAreInHilbertOrder) {
  hilbert::HilbertGrid grid(kWorld, 5);
  Rng rng(3);
  const auto pois = spatial::GenerateUniformPois(&rng, kWorld, 200);
  const auto buckets = BuildBuckets(pois, grid, 6);
  uint64_t prev = 0;
  for (const DataBucket& b : buckets) {
    EXPECT_LE(b.hilbert_lo, b.hilbert_hi);
    EXPECT_GE(b.hilbert_lo, prev);
    prev = b.hilbert_hi;
    // Per-bucket metadata matches the payload.
    uint64_t lo = ~0ull, hi = 0;
    geom::Rect mbr;
    for (const spatial::Poi& p : b.pois) {
      const uint64_t h = grid.IndexOf(p.pos);
      lo = std::min(lo, h);
      hi = std::max(hi, h);
      mbr.Expand(p.pos);
    }
    EXPECT_EQ(b.hilbert_lo, lo);
    EXPECT_EQ(b.hilbert_hi, hi);
    EXPECT_EQ(b.mbr, mbr);
  }
}

TEST(PacketTest, SequentialIds) {
  hilbert::HilbertGrid grid(kWorld, 4);
  Rng rng(4);
  const auto pois = spatial::GenerateUniformPois(&rng, kWorld, 50);
  const auto buckets = BuildBuckets(pois, grid, 4);
  for (size_t i = 0; i < buckets.size(); ++i) {
    EXPECT_EQ(buckets[i].id, static_cast<int64_t>(i));
  }
}

}  // namespace
}  // namespace lbsq::broadcast
