#include "core/peer_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "spatial/generators.h"

namespace lbsq::core {
namespace {

using spatial::Poi;

// Builds a complete verified region over `server`.
VerifiedRegion MakeRegion(const std::vector<Poi>& server, geom::Rect region) {
  VerifiedRegion vr;
  vr.region = region;
  for (const Poi& p : server) {
    if (region.Contains(p.pos)) vr.pois.push_back(p);
  }
  return vr;
}

// Checks the completeness invariant of every entry against `server`.
void CheckInvariant(const PeerCache& cache, const std::vector<Poi>& server) {
  for (const VerifiedRegion& vr : cache.entries()) {
    for (const Poi& p : server) {
      if (!vr.region.Contains(p.pos)) continue;
      EXPECT_TRUE(std::any_of(
          vr.pois.begin(), vr.pois.end(),
          [&p](const Poi& c) { return c.id == p.id; }));
    }
    for (const Poi& p : vr.pois) {
      EXPECT_TRUE(vr.region.Contains(p.pos));
    }
  }
}

TEST(PeerCacheTest, EmptyCacheSharesNothing) {
  PeerCache cache(10);
  EXPECT_TRUE(cache.Share().empty());
  EXPECT_EQ(cache.TotalPois(), 0);
}

TEST(PeerCacheTest, InsertWithinCapacityKeepsRegion) {
  const std::vector<Poi> server = {{0, {1.0, 1.0}}, {1, {2.0, 2.0}}};
  PeerCache cache(10);
  cache.Insert(MakeRegion(server, geom::Rect{0.0, 0.0, 3.0, 3.0}),
               {1.5, 1.5}, {1.5, 1.5}, {1.0, 0.0});
  ASSERT_EQ(cache.entries().size(), 1u);
  EXPECT_EQ(cache.TotalPois(), 2);
  CheckInvariant(cache, server);
}

TEST(PeerCacheTest, ShrinkPreservesCompleteness) {
  Rng rng(3);
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  const auto server = spatial::GenerateUniformPois(&rng, world, 200);
  PeerCache cache(8);  // far below the ~200 POIs of the full region
  cache.Insert(MakeRegion(server, world), {5.0, 5.0}, {5.0, 5.0}, {1.0, 0.0});
  ASSERT_EQ(cache.entries().size(), 1u);
  EXPECT_LE(cache.TotalPois(), 8);
  EXPECT_GT(cache.TotalPois(), 0);
  CheckInvariant(cache, server);
  // The shrunken region is centered on the anchor.
  EXPECT_TRUE(cache.entries()[0].region.Contains({5.0, 5.0}));
}

TEST(PeerCacheTest, ShrinkToCapacityStatic) {
  std::vector<Poi> server;
  for (int i = 0; i < 20; ++i) {
    server.push_back(Poi{i, {static_cast<double>(i), 0.0}});
  }
  const VerifiedRegion vr =
      MakeRegion(server, geom::Rect{-1.0, -1.0, 20.0, 1.0});
  const VerifiedRegion shrunk =
      PeerCache::ShrinkToCapacity(vr, {0.0, 0.0}, 5);
  EXPECT_LE(static_cast<int>(shrunk.pois.size()), 5);
  EXPECT_FALSE(shrunk.region.empty());
  // Keeps the nearest POIs to the anchor.
  for (const Poi& p : shrunk.pois) EXPECT_LT(p.pos.x, 5.5);
}

TEST(PeerCacheTest, ShrinkWithZeroCapacityYieldsEmpty) {
  const std::vector<Poi> server = {{0, {0.0, 0.0}}};
  const VerifiedRegion vr =
      MakeRegion(server, geom::Rect{-1.0, -1.0, 1.0, 1.0});
  const VerifiedRegion shrunk =
      PeerCache::ShrinkToCapacity(vr, {0.0, 0.0}, 0);
  EXPECT_TRUE(shrunk.region.empty());
}

TEST(PeerCacheTest, CoincidentPoisBeyondCapacityDegrade) {
  // More POIs at the exact anchor than capacity: no region can be kept.
  std::vector<Poi> server;
  for (int i = 0; i < 5; ++i) server.push_back(Poi{i, {2.0, 2.0}});
  const VerifiedRegion vr =
      MakeRegion(server, geom::Rect{0.0, 0.0, 4.0, 4.0});
  const VerifiedRegion shrunk =
      PeerCache::ShrinkToCapacity(vr, {2.0, 2.0}, 3);
  EXPECT_TRUE(shrunk.region.empty());
}

TEST(PeerCacheTest, SubsumedInsertIsDropped) {
  const std::vector<Poi> server = {{0, {5.0, 5.0}}};
  PeerCache cache(20);
  cache.Insert(MakeRegion(server, geom::Rect{0.0, 0.0, 10.0, 10.0}),
               {5.0, 5.0}, {5.0, 5.0}, {1.0, 0.0});
  cache.Insert(MakeRegion(server, geom::Rect{4.0, 4.0, 6.0, 6.0}),
               {5.0, 5.0}, {5.0, 5.0}, {1.0, 0.0});
  EXPECT_EQ(cache.entries().size(), 1u);
  EXPECT_EQ(cache.entries()[0].region, (geom::Rect{0.0, 0.0, 10.0, 10.0}));
}

TEST(PeerCacheTest, SubsumingInsertReplacesExisting) {
  const std::vector<Poi> server = {{0, {5.0, 5.0}}};
  PeerCache cache(20);
  cache.Insert(MakeRegion(server, geom::Rect{4.0, 4.0, 6.0, 6.0}),
               {5.0, 5.0}, {5.0, 5.0}, {1.0, 0.0});
  cache.Insert(MakeRegion(server, geom::Rect{0.0, 0.0, 10.0, 10.0}),
               {5.0, 5.0}, {5.0, 5.0}, {1.0, 0.0});
  EXPECT_EQ(cache.entries().size(), 1u);
  EXPECT_EQ(cache.entries()[0].region, (geom::Rect{0.0, 0.0, 10.0, 10.0}));
}

TEST(PeerCacheTest, RegionLimitEnforced) {
  const std::vector<Poi> server = {};
  PeerCache cache(100, /*max_regions=*/3);
  for (int i = 0; i < 10; ++i) {
    const double x = static_cast<double>(i) * 5.0;
    VerifiedRegion vr;
    vr.region = geom::Rect{x, 0.0, x + 1.0, 1.0};
    cache.Insert(vr, {x + 0.5, 0.5}, {0.0, 0.5}, {1.0, 0.0});
  }
  EXPECT_LE(cache.entries().size(), 3u);
}

TEST(PeerCacheTest, EvictionPrefersFarBehindEntries) {
  PeerCache cache(100, /*max_regions=*/2);
  // Host at origin moving +x. Entry A: ahead and near. Entry B: behind and
  // far. Entry C triggers eviction; B must go.
  VerifiedRegion ahead;
  ahead.region = geom::Rect{1.0, -0.5, 2.0, 0.5};
  VerifiedRegion behind;
  behind.region = geom::Rect{-10.0, -0.5, -9.0, 0.5};
  VerifiedRegion fresh;
  fresh.region = geom::Rect{3.0, -0.5, 4.0, 0.5};
  const geom::Point host{0.0, 0.0};
  const geom::Point heading{1.0, 0.0};
  cache.Insert(ahead, ahead.region.center(), host, heading);
  cache.Insert(behind, behind.region.center(), host, heading);
  cache.Insert(fresh, fresh.region.center(), host, heading);
  ASSERT_EQ(cache.entries().size(), 2u);
  for (const VerifiedRegion& vr : cache.entries()) {
    EXPECT_GT(vr.region.center().x, 0.0);  // the behind entry was evicted
  }
}

TEST(PeerCacheTest, PoiCapacityEnforcedAcrossEntries) {
  Rng rng(5);
  const geom::Rect world{0.0, 0.0, 20.0, 20.0};
  const auto server = spatial::GenerateUniformPois(&rng, world, 400);
  PeerCache cache(30, 8);
  for (int i = 0; i < 12; ++i) {
    const geom::Point c{rng.Uniform(2.0, 18.0), rng.Uniform(2.0, 18.0)};
    cache.Insert(MakeRegion(server, geom::Rect::CenteredSquare(c, 1.5)), c,
                 {10.0, 10.0}, {1.0, 0.0});
    EXPECT_LE(cache.TotalPois(), 30);
    CheckInvariant(cache, server);
  }
}

TEST(PeerCacheTest, EmptyRegionInsertIgnored) {
  PeerCache cache(10);
  cache.Insert(VerifiedRegion{}, {0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0});
  EXPECT_TRUE(cache.entries().empty());
}

TEST(PeerCachePolicyTest, CollectiveMbrKeepsNearestAndClaimsMbr) {
  std::vector<Poi> server;
  for (int i = 0; i < 10; ++i) {
    server.push_back(Poi{i, {static_cast<double>(i), 0.0}});
  }
  const VerifiedRegion vr =
      MakeRegion(server, geom::Rect{-1.0, -1.0, 10.0, 1.0});
  const VerifiedRegion reduced =
      PeerCache::ReduceToCollectiveMbr(vr, {0.0, 0.0}, 4);
  ASSERT_EQ(reduced.pois.size(), 4u);
  for (const Poi& p : reduced.pois) EXPECT_LT(p.pos.x, 4.0 + 1e-9);
  // The collective MBR spans the kept POIs.
  EXPECT_DOUBLE_EQ(reduced.region.x2, 3.0);
}

TEST(PeerCachePolicyTest, CollectiveMbrViolatesCompletenessWhenBinding) {
  // A deterministic counter-example: the two nearest POIs sit at opposite
  // corners of a square, a dropped third POI sits in the middle of that
  // square — strictly inside the claimed collective MBR.
  const std::vector<Poi> server = {
      {0, {0.0, 0.0}}, {1, {1.0, 1.0}}, {2, {0.5, 0.55}}};
  const VerifiedRegion vr =
      MakeRegion(server, geom::Rect{-1.0, -1.0, 2.0, 2.0});
  // Anchor at (0,0): distances are 0 (id 0), 1.41 (id 1), 0.74 (id 2) —
  // capacity 2 keeps ids {0, 2}... keep the far corner instead by anchoring
  // between the corners but slightly away from the middle POI.
  const VerifiedRegion reduced =
      PeerCache::ReduceToCollectiveMbr(vr, {0.5, 0.0}, 2);
  // Distances from (0.5, 0): id0 = 0.5, id1 ~ 1.12, id2 ~ 0.55 ->
  // kept {0, 2}; their MBR [0,0.5]x[0,0.55] excludes id1: consistent here,
  // so check the opposite anchoring which keeps the straddling pair.
  const VerifiedRegion reduced2 =
      PeerCache::ReduceToCollectiveMbr(vr, {1.0, 0.25}, 2);
  // Distances from (1, 0.25): id0 ~ 1.03, id1 = 0.75, id2 ~ 0.58 ->
  // kept {1, 2}: MBR [0.5,1]x[0.55,1] excludes id0: also consistent.
  // Two-point MBRs of adjacent-by-distance POIs rarely trap a third in
  // tiny examples; the flaw fires statistically on dense data below.
  EXPECT_EQ(reduced.pois.size(), 2u);
  EXPECT_EQ(reduced2.pois.size(), 2u);

  // Statistical demonstration: over random dense regions, the collective
  // MBR frequently contains server POIs that were not stored, while the
  // sound shrink never does.
  Rng rng(123);
  const geom::Rect world{0.0, 0.0, 10.0, 10.0};
  const auto big = spatial::GenerateUniformPois(&rng, world, 400);
  int collective_violations = 0;
  int sound_violations = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Point anchor{rng.Uniform(2.0, 8.0), rng.Uniform(2.0, 8.0)};
    const geom::Rect region = geom::Rect::CenteredSquare(anchor, 2.0);
    const VerifiedRegion full = MakeRegion(big, region);
    auto violates = [&big](const VerifiedRegion& entry) {
      for (const Poi& p : big) {
        if (!entry.region.Contains(p.pos)) continue;
        const bool stored = std::any_of(
            entry.pois.begin(), entry.pois.end(),
            [&p](const Poi& c) { return c.id == p.id; });
        if (!stored) return true;
      }
      return false;
    };
    if (violates(PeerCache::ReduceToCollectiveMbr(full, anchor, 10))) {
      ++collective_violations;
    }
    if (violates(PeerCache::ShrinkToCapacity(full, anchor, 10))) {
      ++sound_violations;
    }
  }
  EXPECT_GT(collective_violations, 10);  // the flaw fires routinely
  EXPECT_EQ(sound_violations, 0);        // the sound policy never does
}

TEST(PeerCachePolicyTest, CollectiveMbrUnderCapacityIsUnchanged) {
  const std::vector<Poi> server = {{0, {1.0, 1.0}}, {1, {2.0, 2.0}}};
  const VerifiedRegion vr =
      MakeRegion(server, geom::Rect{0.0, 0.0, 3.0, 3.0});
  const VerifiedRegion reduced =
      PeerCache::ReduceToCollectiveMbr(vr, {1.5, 1.5}, 10);
  EXPECT_EQ(reduced.region, vr.region);
  EXPECT_EQ(reduced.pois.size(), 2u);
}

TEST(PeerCacheTest, ClearEmptiesEverything) {
  const std::vector<Poi> server = {{0, {1.0, 1.0}}};
  PeerCache cache(10);
  cache.Insert(MakeRegion(server, geom::Rect{0.0, 0.0, 2.0, 2.0}),
               {1.0, 1.0}, {1.0, 1.0}, {1.0, 0.0});
  cache.Clear();
  EXPECT_EQ(cache.TotalPois(), 0);
  EXPECT_TRUE(cache.Share().empty());
}

}  // namespace
}  // namespace lbsq::core
