#include "core/continuous_knn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "broadcast/system.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "spatial/generators.h"

namespace lbsq::core {
namespace {

const geom::Rect kWorld{0.0, 0.0, 20.0, 20.0};

struct Fixture {
  std::unique_ptr<broadcast::BroadcastSystem> system;
  double poi_density;

  explicit Fixture(int n_pois, uint64_t seed = 1) {
    Rng rng(seed);
    broadcast::BroadcastParams params;
    params.hilbert_order = 5;
    system = std::make_unique<broadcast::BroadcastSystem>(
        spatial::GenerateUniformPois(&rng, kWorld, n_pois), kWorld, params);
    poi_density = static_cast<double>(n_pois) / kWorld.area();
  }
};

SbnnOptions ExactOptions(int k) {
  SbnnOptions options;
  options.k = k;
  options.accept_approximate = false;
  // Continuous queries need headroom around the refresh point.
  options.prefetch_radius_factor = 2.0;
  return options;
}

EngineOptions MakeEngineOptions(int k) {
  EngineOptions options;
  options.sbnn = ExactOptions(k);
  return options;
}

TEST(ContinuousKnnTest, FirstTickFallsBack) {
  Fixture f(300);
  const QueryEngine engine(*f.system, kWorld, MakeEngineOptions(3));
  ContinuousKnn query(engine);
  PeerCache cache(50);
  const auto update = query.Tick({10.0, 10.0}, &cache, {}, 0);
  EXPECT_FALSE(update.from_own_cache);
  EXPECT_EQ(update.resolved_by, ResolvedBy::kBroadcast);
  EXPECT_EQ(query.own_cache_hits(), 0);
  EXPECT_GT(cache.TotalPois(), 0);  // the refresh fed the cache
}

TEST(ContinuousKnnTest, SmallStepsServedFromOwnCache) {
  Fixture f(300);
  const QueryEngine engine(*f.system, kWorld, MakeEngineOptions(3));
  ContinuousKnn query(engine);
  PeerCache cache(50);
  query.Tick({10.0, 10.0}, &cache, {}, 0);  // warms the cache
  // Tiny steps around the refresh point stay inside the verified MBR.
  for (int i = 1; i <= 5; ++i) {
    const geom::Point pos{10.0 + 0.01 * i, 10.0};
    const auto update = query.Tick(pos, &cache, {}, i * 10);
    EXPECT_TRUE(update.from_own_cache) << "step " << i;
    EXPECT_EQ(update.stats.access_latency, 0);
  }
  EXPECT_EQ(query.own_cache_hits(), 5);
}

TEST(ContinuousKnnTest, AnswersAlwaysExactAlongADrive) {
  Fixture f(400);
  const QueryEngine engine(*f.system, kWorld, MakeEngineOptions(4));
  ContinuousKnn query(engine);
  PeerCache cache(50);
  int64_t slot = 0;
  for (double x = 2.0; x <= 18.0; x += 0.25) {
    const geom::Point pos{x, 10.0};
    const auto update = query.Tick(pos, &cache, {}, slot);
    slot += update.stats.access_latency + 10;
    const auto truth = spatial::BruteForceKnn(f.system->pois(), pos, 4);
    ASSERT_EQ(update.neighbors.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_DOUBLE_EQ(update.neighbors[i].distance, truth[i].distance)
          << "x=" << x;
    }
  }
  // A 16-mile drive with quarter-mile ticks must hit the cache often.
  EXPECT_GT(query.own_cache_hits(), query.ticks() / 4);
  EXPECT_LT(query.own_cache_hits(), query.ticks());  // but it must refresh
}

TEST(ContinuousKnnTest, PeersReduceBroadcastRefreshes) {
  Fixture f(400);
  // A peer that knows a wide corridor along the drive.
  VerifiedRegion corridor;
  corridor.region = geom::Rect{0.0, 8.0, 20.0, 12.0};
  for (const auto& p : f.system->pois()) {
    if (corridor.region.Contains(p.pos)) corridor.pois.push_back(p);
  }
  const std::vector<PeerData> peers = {PeerData{{corridor}}};

  auto drive = [&f](const std::vector<PeerData>& available) {
    const QueryEngine engine(*f.system, kWorld, MakeEngineOptions(3));
    ContinuousKnn query(engine);
    PeerCache cache(50);
    int64_t broadcast_refreshes = 0;
    for (double x = 2.0; x <= 18.0; x += 0.5) {
      const auto update = query.Tick({x, 10.0}, &cache, available, 0);
      if (!update.from_own_cache &&
          update.resolved_by == ResolvedBy::kBroadcast) {
        ++broadcast_refreshes;
      }
    }
    return broadcast_refreshes;
  };
  EXPECT_LT(drive(peers), drive({}));
}

TEST(ContinuousKnnTest, ZeroCapacityCacheAlwaysFallsBack) {
  Fixture f(200);
  const QueryEngine engine(*f.system, kWorld, MakeEngineOptions(2));
  ContinuousKnn query(engine);
  PeerCache cache(0);
  for (int i = 0; i < 5; ++i) {
    const auto update =
        query.Tick({10.0 + i * 0.1, 10.0}, &cache, {}, i);
    EXPECT_FALSE(update.from_own_cache);
  }
  EXPECT_EQ(query.own_cache_hits(), 0);
}

}  // namespace
}  // namespace lbsq::core
