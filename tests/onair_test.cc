#include "onair/onair_knn.h"
#include "onair/onair_window.h"

#include <gtest/gtest.h>

#include <memory>

#include "broadcast/system.h"
#include "common/rng.h"
#include "spatial/generators.h"

namespace lbsq::onair {
namespace {

const geom::Rect kWorld{0.0, 0.0, 20.0, 20.0};

std::unique_ptr<broadcast::BroadcastSystem> MakeSystem(int n_pois,
                                                       uint64_t seed = 1) {
  Rng rng(seed);
  broadcast::BroadcastParams params;
  params.bucket_capacity = 8;
  params.index_entries_per_bucket = 32;
  params.m = 4;
  params.hilbert_order = 5;
  return std::make_unique<broadcast::BroadcastSystem>(
      spatial::GenerateUniformPois(&rng, kWorld, n_pois), kWorld, params);
}

TEST(OnAirKnnTest, ExactAcrossRandomQueries) {
  auto system = MakeSystem(300);
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
    const int k = static_cast<int>(rng.UniformInt(1, 12));
    const auto result = OnAirKnn(*system, q, k, trial * 13);
    const auto truth = spatial::BruteForceKnn(system->pois(), q, k);
    ASSERT_EQ(result.neighbors.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_DOUBLE_EQ(result.neighbors[i].distance, truth[i].distance);
    }
  }
}

TEST(OnAirKnnTest, KLargerThanDatabase) {
  auto system = MakeSystem(5);
  const auto result = OnAirKnn(*system, {10.0, 10.0}, 20, 0);
  EXPECT_EQ(result.neighbors.size(), 5u);
}

TEST(OnAirKnnTest, StatsAreConsistent) {
  auto system = MakeSystem(400);
  const auto result = OnAirKnn(*system, {10.0, 10.0}, 5, 7);
  EXPECT_GT(result.stats.access_latency, 0);
  EXPECT_LE(result.stats.tuning_time, result.stats.access_latency);
  EXPECT_EQ(result.stats.buckets_read,
            static_cast<int64_t>(result.buckets.size()));
}

TEST(OnAirKnnTest, SearchCircleContainsResults) {
  auto system = MakeSystem(300);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point q{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
    const auto result = OnAirKnn(*system, q, 7, 0);
    for (const auto& n : result.neighbors) {
      EXPECT_LE(n.distance, result.search_circle.radius + 1e-12);
    }
  }
}

TEST(OnAirKnnTest, LargerKDownloadsMoreBuckets) {
  auto system = MakeSystem(500);
  const auto small = OnAirKnn(*system, {10.0, 10.0}, 1, 0);
  const auto large = OnAirKnn(*system, {10.0, 10.0}, 50, 0);
  EXPECT_LT(small.buckets.size(), large.buckets.size());
}

TEST(OnAirKnnTest, PartitionedCircleRetrievalIsSubsetAndSufficient) {
  auto system = MakeSystem(400);
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const geom::Point q{rng.Uniform(2.0, 18.0), rng.Uniform(2.0, 18.0)};
    const geom::Circle circle{q, rng.Uniform(0.5, 4.0)};
    const auto span = BucketsForCircle(*system, circle,
                                       KnnRetrieval::kSingleSpan);
    const auto part = BucketsForCircle(*system, circle,
                                       KnnRetrieval::kPartitionedRanges);
    EXPECT_LE(part.size(), span.size());
    // Every POI inside the circle's MBR must be in a partition bucket.
    const auto received = system->CollectPois(part);
    for (const auto& poi : system->pois()) {
      if (!circle.Mbr().Contains(poi.pos)) continue;
      EXPECT_TRUE(std::any_of(
          received.begin(), received.end(),
          [&poi](const spatial::Poi& p) { return p.id == poi.id; }));
    }
  }
}

TEST(OnAirWindowTest, ExactAcrossRandomQueries) {
  auto system = MakeSystem(300);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 18.0), rng.Uniform(0.0, 18.0)};
    const geom::Rect window{a.x, a.y, a.x + rng.Uniform(0.5, 6.0),
                            a.y + rng.Uniform(0.5, 6.0)};
    for (const WindowRetrieval retrieval :
         {WindowRetrieval::kSingleSpan, WindowRetrieval::kPartitionedRanges}) {
      const auto result = OnAirWindow(*system, window, trial * 7, retrieval);
      EXPECT_EQ(result.pois, spatial::BruteForceWindow(system->pois(), window));
    }
  }
}

TEST(OnAirWindowTest, PartitionedRangesNeverDownloadMore) {
  auto system = MakeSystem(400);
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 15.0), rng.Uniform(0.0, 15.0)};
    const geom::Rect window{a.x, a.y, a.x + rng.Uniform(1.0, 5.0),
                            a.y + rng.Uniform(1.0, 5.0)};
    const auto span = BucketsForWindow(*system, window,
                                       WindowRetrieval::kSingleSpan);
    const auto ranges = BucketsForWindow(*system, window,
                                         WindowRetrieval::kPartitionedRanges);
    EXPECT_LE(ranges.size(), span.size());
  }
}

TEST(OnAirWindowTest, EmptyWindowReturnsNothing) {
  auto system = MakeSystem(100);
  const auto result =
      OnAirWindow(*system, geom::Rect{30.0, 30.0, 31.0, 31.0}, 0);
  EXPECT_TRUE(result.pois.empty());
}

TEST(OnAirWindowTest, WholeWorldWindowReturnsAll) {
  auto system = MakeSystem(150);
  const auto result = OnAirWindow(*system, kWorld, 0);
  EXPECT_EQ(result.pois.size(), 150u);
  // Single span over the whole world downloads the whole file.
  EXPECT_EQ(result.buckets.size(), system->buckets().size());
}

}  // namespace
}  // namespace lbsq::onair
