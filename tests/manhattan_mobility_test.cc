#include "sim/manhattan_mobility.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lbsq::sim {
namespace {

const geom::Rect kWorld{0.0, 0.0, 4.0, 4.0};

TEST(ManhattanMobilityTest, PositionsStayInWorld) {
  ManhattanGridModel model(kWorld, 20, 0.25, 0.3, 0.8, 1);
  for (double t = 0.0; t < 60.0; t += 0.17) {
    for (int64_t h = 0; h < 20; ++h) {
      const geom::Point p = model.Position(h, t);
      EXPECT_GE(p.x, kWorld.x1 - 1e-9);
      EXPECT_LE(p.x, kWorld.x2 + 1e-9);
      EXPECT_GE(p.y, kWorld.y1 - 1e-9);
      EXPECT_LE(p.y, kWorld.y2 + 1e-9);
    }
  }
}

TEST(ManhattanMobilityTest, PositionsSnapToStreets) {
  ManhattanGridModel model(kWorld, 15, 0.25, 0.3, 0.8, 2);
  const double block = model.block();
  for (double t = 0.0; t < 30.0; t += 0.31) {
    for (int64_t h = 0; h < 15; ++h) {
      const geom::Point p = model.Position(h, t);
      // At least one coordinate lies exactly on a street line.
      const double fx = std::abs(
          p.x / block - std::round(p.x / block));
      const double fy = std::abs(
          p.y / block - std::round(p.y / block));
      EXPECT_TRUE(fx < 1e-9 || fy < 1e-9)
          << "host " << h << " off-street at (" << p.x << "," << p.y << ")";
    }
  }
}

TEST(ManhattanMobilityTest, HeadingIsAxisAligned) {
  ManhattanGridModel model(kWorld, 10, 0.25, 0.3, 0.8, 3);
  for (int64_t h = 0; h < 10; ++h) {
    model.Position(h, 5.0);
    const geom::Point dir = model.Heading(h);
    EXPECT_DOUBLE_EQ(std::abs(dir.x) + std::abs(dir.y), 1.0);
    EXPECT_TRUE(dir.x == 0.0 || dir.y == 0.0);
  }
}

TEST(ManhattanMobilityTest, SpeedBounded) {
  ManhattanGridModel model(kWorld, 8, 0.3, 0.6, 1.6, 4);
  std::vector<geom::Point> prev(8);
  for (int64_t h = 0; h < 8; ++h) prev[static_cast<size_t>(h)] = model.Position(h, 0.0);
  const double dt = 0.01;
  for (double t = dt; t < 10.0; t += dt) {
    for (int64_t h = 0; h < 8; ++h) {
      const geom::Point p = model.Position(h, t);
      // Straight-line displacement cannot exceed max speed * dt.
      EXPECT_LE(geom::Distance(p, prev[static_cast<size_t>(h)]),
                1.6 * dt + 1e-9);
      prev[static_cast<size_t>(h)] = p;
    }
  }
}

TEST(ManhattanMobilityTest, Deterministic) {
  ManhattanGridModel a(kWorld, 6, 0.25, 0.3, 0.8, 42);
  ManhattanGridModel b(kWorld, 6, 0.25, 0.3, 0.8, 42);
  for (double t = 0.0; t < 20.0; t += 0.7) {
    for (int64_t h = 0; h < 6; ++h) {
      EXPECT_EQ(a.Position(h, t), b.Position(h, t));
    }
  }
}

TEST(ManhattanMobilityTest, HostsTraverseTheGrid) {
  ManhattanGridModel model(kWorld, 5, 0.25, 0.5, 1.0, 5);
  for (int64_t h = 0; h < 5; ++h) {
    const geom::Point start = model.Position(h, 0.0);
    double max_travel = 0.0;
    for (double t = 1.0; t < 60.0; t += 1.0) {
      max_travel = std::max(max_travel,
                            geom::Distance(model.Position(h, t), start));
    }
    EXPECT_GT(max_travel, 0.5);  // not stuck at the origin intersection
  }
}

TEST(ManhattanMobilityTest, TinyBlockClampedToGrid) {
  // Requested block bigger than half the world: clamped so a grid exists.
  ManhattanGridModel model(kWorld, 3, 10.0, 0.3, 0.8, 6);
  EXPECT_LE(model.block(), 2.0);
  for (int64_t h = 0; h < 3; ++h) {
    EXPECT_TRUE(kWorld.Contains(model.Position(h, 7.0)));
  }
}

}  // namespace
}  // namespace lbsq::sim
