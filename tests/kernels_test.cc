#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "kernels/dispatch.h"
#include "kernels/poi_slab.h"
#include "sim/config.h"
#include "sim/simulator.h"
#include "spatial/poi.h"

namespace lbsq::kernels {
namespace {

// Sizes chosen to cross every lane boundary: empty, single, below / at /
// above the 2-lane (SSE2) and 4-lane (AVX2) widths, and a few larger blocks
// with ragged tails.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 100,
                         257, 1000};

std::vector<SimdTier> RunnableTiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier t : {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2}) {
    if (TierIsRunnable(t)) tiers.push_back(t);
  }
  return tiers;
}

struct Slab {
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<int64_t> ids;
};

// `quantized` draws coordinates from a coarse integer grid so that many
// points land at exactly equal distances from the query, exercising the
// (distance, id) tie-break; otherwise coordinates are continuous.
Slab RandomSlab(Rng* rng, size_t n, bool quantized) {
  Slab s;
  s.xs.reserve(n);
  s.ys.reserve(n);
  s.ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (quantized) {
      s.xs.push_back(static_cast<double>(rng->UniformInt(-4, 4)));
      s.ys.push_back(static_cast<double>(rng->UniformInt(-4, 4)));
    } else {
      s.xs.push_back(rng->Uniform(-10.0, 10.0));
      s.ys.push_back(rng->Uniform(-10.0, 10.0));
    }
    // Occasional duplicate ids so fully equal (distance, id) keys occur and
    // the earliest-input-index rule is observable.
    s.ids.push_back(quantized ? rng->UniformInt(0, 8)
                              : static_cast<int64_t>(i) * 3 + 1);
  }
  return s;
}

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

// --- Differential suite: every runnable tier vs the scalar reference -------

TEST(KernelsDifferentialTest, DistanceBatchBitIdenticalAcrossTiers) {
  Rng rng(11);
  for (size_t n : kSizes) {
    for (bool quantized : {false, true}) {
      const Slab s = RandomSlab(&rng, n, quantized);
      const double qx = rng.Uniform(-10.0, 10.0);
      const double qy = rng.Uniform(-10.0, 10.0);
      std::vector<double> ref(n), got(n);
      internal::DistanceBatchScalar(s.xs.data(), s.ys.data(), n, qx, qy,
                                    ref.data());
      for (size_t i = 0; i < n; ++i) {
        const double dx = s.xs[i] - qx;
        const double dy = s.ys[i] - qy;
        ASSERT_EQ(Bits(ref[i]), Bits(std::sqrt(dx * dx + dy * dy)));
      }
      for (SimdTier tier : RunnableTiers()) {
        std::fill(got.begin(), got.end(), -1.0);
        OpsForTier(tier).distance_batch(s.xs.data(), s.ys.data(), n, qx, qy,
                                        got.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(Bits(ref[i]), Bits(got[i]))
              << "tier=" << TierName(tier) << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelsDifferentialTest, DistanceSquaredBatchBitIdenticalAcrossTiers) {
  Rng rng(12);
  for (size_t n : kSizes) {
    const Slab s = RandomSlab(&rng, n, false);
    const double qx = rng.Uniform(-10.0, 10.0);
    const double qy = rng.Uniform(-10.0, 10.0);
    std::vector<double> ref(n), got(n);
    internal::DistanceSquaredBatchScalar(s.xs.data(), s.ys.data(), n, qx, qy,
                                         ref.data());
    for (SimdTier tier : RunnableTiers()) {
      std::fill(got.begin(), got.end(), -1.0);
      OpsForTier(tier).distance_squared_batch(s.xs.data(), s.ys.data(), n, qx,
                                              qy, got.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(ref[i]), Bits(got[i]))
            << "tier=" << TierName(tier) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(KernelsDifferentialTest, AppendIdsWithinRadiusMatchesScalar) {
  Rng rng(13);
  for (size_t n : kSizes) {
    for (bool quantized : {false, true}) {
      const Slab s = RandomSlab(&rng, n, quantized);
      const double cx = rng.Uniform(-5.0, 5.0);
      const double cy = rng.Uniform(-5.0, 5.0);
      // Radii chosen so boundary hits (d^2 == r2, closed predicate) occur in
      // the quantized runs.
      const double r = quantized ? 3.0 : rng.Uniform(0.0, 12.0);
      const double r2 = r * r;
      std::vector<int64_t> ref = {-77};  // appended, not overwritten
      const size_t ref_count = internal::AppendIdsWithinRadiusScalar(
          s.xs.data(), s.ys.data(), s.ids.data(), n, cx, cy, r2, &ref);
      ASSERT_EQ(ref.size(), ref_count + 1);
      ASSERT_EQ(ref.front(), -77);
      for (SimdTier tier : RunnableTiers()) {
        std::vector<int64_t> got = {-77};
        const size_t got_count =
            OpsForTier(tier).append_ids_within_radius(
                s.xs.data(), s.ys.data(), s.ids.data(), n, cx, cy, r2, &got);
        EXPECT_EQ(ref_count, got_count)
            << "tier=" << TierName(tier) << " n=" << n;
        EXPECT_EQ(ref, got) << "tier=" << TierName(tier) << " n=" << n;
      }
    }
  }
}

TEST(KernelsDifferentialTest, SelectInWindowMatchesScalar) {
  Rng rng(14);
  for (size_t n : kSizes) {
    for (bool quantized : {false, true}) {
      const Slab s = RandomSlab(&rng, n, quantized);
      // Quantized runs use integer window edges so points sit exactly on the
      // closed boundary.
      const double x1 = quantized ? -2.0 : rng.Uniform(-10.0, 0.0);
      const double y1 = quantized ? -3.0 : rng.Uniform(-10.0, 0.0);
      const double x2 = quantized ? 2.0 : rng.Uniform(0.0, 10.0);
      const double y2 = quantized ? 1.0 : rng.Uniform(0.0, 10.0);
      std::vector<uint32_t> ref(n + 1, 0xdeadbeef), got(n + 1, 0xdeadbeef);
      const size_t ref_count = internal::SelectInWindowScalar(
          s.xs.data(), s.ys.data(), n, x1, y1, x2, y2, ref.data());
      for (size_t j = 0; j < ref_count; ++j) {
        const uint32_t i = ref[j];
        ASSERT_TRUE(x1 <= s.xs[i] && s.xs[i] <= x2);
        ASSERT_TRUE(y1 <= s.ys[i] && s.ys[i] <= y2);
        if (j > 0) {
          ASSERT_LT(ref[j - 1], i);  // ascending input order
        }
      }
      for (SimdTier tier : RunnableTiers()) {
        const size_t got_count = OpsForTier(tier).select_in_window(
            s.xs.data(), s.ys.data(), n, x1, y1, x2, y2, got.data());
        ASSERT_EQ(ref_count, got_count)
            << "tier=" << TierName(tier) << " n=" << n;
        for (size_t j = 0; j < ref_count; ++j) {
          ASSERT_EQ(ref[j], got[j])
              << "tier=" << TierName(tier) << " n=" << n << " j=" << j;
        }
      }
    }
  }
}

TEST(KernelsDifferentialTest, KSmallestMatchesStableSortReference) {
  Rng rng(15);
  for (size_t n : kSizes) {
    for (bool quantized : {false, true}) {
      const Slab s = RandomSlab(&rng, n, quantized);
      std::vector<double> dist(n);
      const double qx = rng.Uniform(-4.0, 4.0);
      const double qy = rng.Uniform(-4.0, 4.0);
      internal::DistanceBatchScalar(s.xs.data(), s.ys.data(), n, qx, qy,
                                    dist.data());
      for (size_t k : {size_t{0}, size_t{1}, size_t{3}, size_t{5}, n / 2,
                       n, n + 4}) {
        // Independent reference: stable sort by (distance, id) keeps the
        // earliest input index on fully equal keys — exactly the contract.
        std::vector<uint32_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](uint32_t a, uint32_t b) {
                           if (dist[a] != dist[b]) return dist[a] < dist[b];
                           return s.ids[a] < s.ids[b];
                         });
        const size_t take = std::min(k, n);
        std::vector<uint32_t> ref(order.begin(), order.begin() + take);
        for (SimdTier tier : RunnableTiers()) {
          std::vector<uint32_t> got(k + 1, 0xdeadbeef);
          const size_t got_count = OpsForTier(tier).k_smallest(
              dist.data(), s.ids.data(), n, k, got.data());
          ASSERT_EQ(take, got_count)
              << "tier=" << TierName(tier) << " n=" << n << " k=" << k;
          for (size_t j = 0; j < take; ++j) {
            ASSERT_EQ(ref[j], got[j]) << "tier=" << TierName(tier)
                                      << " n=" << n << " k=" << k
                                      << " j=" << j;
          }
        }
      }
    }
  }
}

TEST(KernelsDifferentialTest, IsSortedUniqueMatchesScalar) {
  Rng rng(16);
  for (size_t n : kSizes) {
    for (int variant = 0; variant < 4; ++variant) {
      std::vector<int64_t> v(n);
      for (size_t i = 0; i < n; ++i) {
        v[i] = static_cast<int64_t>(i) * 2;
      }
      if (variant == 1 && n >= 2) {  // one duplicate at a random position
        const size_t at = 1 + rng.NextBelow(n - 1);
        v[at] = v[at - 1];
      } else if (variant == 2 && n >= 2) {  // one inversion
        const size_t at = 1 + rng.NextBelow(n - 1);
        std::swap(v[at - 1], v[at]);
      } else if (variant == 3) {  // fully random
        for (size_t i = 0; i < n; ++i) v[i] = rng.UniformInt(-50, 50);
      }
      const bool ref = internal::IsSortedUniqueI64Scalar(v.data(), n);
      for (SimdTier tier : RunnableTiers()) {
        EXPECT_EQ(ref, OpsForTier(tier).is_sorted_unique_i64(v.data(), n))
            << "tier=" << TierName(tier) << " n=" << n
            << " variant=" << variant;
      }
    }
  }
}

// --- PoiSlab / scratch ------------------------------------------------------

TEST(PoiSlabTest, AssignTransposesAndReassigns) {
  std::vector<spatial::Poi> pois = {
      {.id = 5, .pos = {1.0, 2.0}}, {.id = 9, .pos = {3.0, 4.0}}};
  PoiSlab slab;
  slab.Assign(pois.data(), pois.size());
  ASSERT_EQ(slab.size(), 2u);
  EXPECT_EQ(slab.ids()[0], 5);
  EXPECT_EQ(slab.ids()[1], 9);
  EXPECT_EQ(slab.xs()[1], 3.0);
  EXPECT_EQ(slab.ys()[0], 2.0);
  slab.Assign(pois.data(), 1);  // shrink reassign keeps only the prefix
  ASSERT_EQ(slab.size(), 1u);
  EXPECT_EQ(slab.ids()[0], 5);
  slab.Assign(pois.data(), 0);
  EXPECT_TRUE(slab.empty());
}

TEST(PoiSlabTest, ScratchBuffersAreGrowOnly) {
  SlabScratch scratch;
  double* d1 = scratch.DistFor(64);
  uint32_t* i1 = scratch.IdxFor(64);
  ASSERT_NE(d1, nullptr);
  ASSERT_NE(i1, nullptr);
  // A smaller request must not reallocate (steady-state zero-alloc path).
  EXPECT_EQ(scratch.DistFor(8), d1);
  EXPECT_EQ(scratch.IdxFor(8), i1);
}

// --- Dispatch ---------------------------------------------------------------

TEST(DispatchTest, ParseTier) {
  SimdTier tier = SimdTier::kAvx2;
  bool is_auto = false;
  EXPECT_TRUE(ParseTier("scalar", &tier, &is_auto));
  EXPECT_EQ(tier, SimdTier::kScalar);
  EXPECT_FALSE(is_auto);
  EXPECT_TRUE(ParseTier("sse2", &tier, &is_auto));
  EXPECT_EQ(tier, SimdTier::kSse2);
  EXPECT_TRUE(ParseTier("avx2", &tier, &is_auto));
  EXPECT_EQ(tier, SimdTier::kAvx2);
  EXPECT_TRUE(ParseTier("auto", &tier, &is_auto));
  EXPECT_TRUE(is_auto);
  EXPECT_FALSE(ParseTier("", &tier, &is_auto));
  EXPECT_FALSE(ParseTier("AVX2", &tier, &is_auto));
  EXPECT_FALSE(ParseTier("avx512", &tier, &is_auto));
}

TEST(DispatchTest, ScalarAlwaysRunnableAndOrdered) {
  EXPECT_TRUE(TierIsRunnable(SimdTier::kScalar));
  EXPECT_EQ(&OpsForTier(SimdTier::kScalar), &internal::kScalarOps);
  // Runnability is downward-closed: any tier at or below the max works.
  const SimdTier max = MaxSupportedTier();
  for (int t = 0; t <= static_cast<int>(max); ++t) {
    EXPECT_TRUE(TierIsRunnable(static_cast<SimdTier>(t)));
  }
}

TEST(DispatchTest, SetActiveTierSwitchesTable) {
  const SimdTier before = ActiveTier();
  ASSERT_TRUE(SetActiveTier(SimdTier::kScalar));
  EXPECT_EQ(ActiveTier(), SimdTier::kScalar);
  EXPECT_EQ(&Ops(), &internal::kScalarOps);
  ASSERT_TRUE(SetActiveTier(before));
  EXPECT_EQ(ActiveTier(), before);
}

// --- End-to-end: the simulator is tier-invariant ----------------------------

TEST(KernelsEndToEndTest, SimulatorMetricsIdenticalScalarVsMaxTier) {
  sim::SimConfig config;
  config.params = sim::LosAngelesCity();
  config.query_type = sim::QueryType::kKnn;
  config.world_side_mi = 1.0;
  config.warmup_min = 10.0;
  config.duration_min = 10.0;
  config.seed = 7;

  const SimdTier before = ActiveTier();
  ASSERT_TRUE(SetActiveTier(SimdTier::kScalar));
  sim::Simulator scalar_sim(config);
  const sim::SimMetrics scalar_metrics = scalar_sim.Run();

  ASSERT_TRUE(SetActiveTier(MaxSupportedTier()));
  sim::Simulator simd_sim(config);
  const sim::SimMetrics simd_metrics = simd_sim.Run();
  ASSERT_TRUE(SetActiveTier(before));

  EXPECT_TRUE(scalar_metrics == simd_metrics)
      << "simulation diverged between scalar and "
      << TierName(MaxSupportedTier());
}

}  // namespace
}  // namespace lbsq::kernels
