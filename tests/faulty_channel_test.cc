#include "fault/faulty_channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "broadcast/client_protocol.h"
#include "broadcast/schedule.h"
#include "common/observability.h"

namespace lbsq::fault {
namespace {

using broadcast::AccessStats;
using broadcast::BroadcastSchedule;
using broadcast::IndexReadMode;
using broadcast::RetrieveBuckets;

ChannelFaultConfig IidLoss(double p) {
  ChannelFaultConfig config;
  config.model = LossModel::kIid;
  config.loss_prob = p;
  return config;
}

TEST(ChannelSessionTest, FaultFreeSessionMatchesRetrieveBuckets) {
  // A Gilbert-Elliott channel with zero loss in both states (and no
  // corruption) is "enabled" but can never perturb anything: its schedule,
  // stats, and trace spans must match the reliable protocol exactly, with
  // every fault counter at zero.
  ChannelFaultConfig config;
  config.model = LossModel::kGilbertElliott;
  config.p_good_to_bad = 0.5;
  config.p_bad_to_good = 0.5;
  config.loss_good = 0.0;
  config.loss_bad = 0.0;

  BroadcastSchedule s(40, 3, 4);
  for (int64_t t : {0L, 13L, 111L}) {
    ChannelSession session(config, FaultPolicy{}, 77);
    obs::TraceRecorder fault_trace;
    obs::TraceRecorder reliable_trace;
    const FaultyRetrievalResult r = session.Retrieve(
        s, t, {2, 15, 33}, IndexReadMode::FlatDirectory(), &fault_trace);
    const AccessStats reliable = RetrieveBuckets(s, t, {2, 15, 33},
                                                 IndexReadMode::FlatDirectory(),
                                                 &reliable_trace);
    EXPECT_TRUE(r.complete());
    EXPECT_EQ(r.received, (std::vector<int64_t>{2, 15, 33}));
    EXPECT_EQ(r.losses, 0);
    EXPECT_EQ(r.corruptions, 0);
    EXPECT_FALSE(r.deadline_hit);
    EXPECT_EQ(r.stats.access_latency, reliable.access_latency);
    EXPECT_EQ(r.stats.tuning_time, reliable.tuning_time);
    EXPECT_EQ(r.stats.buckets_read, reliable.buckets_read);
    // Spans identical; the session only adds (zero-valued) fault counters.
    std::vector<obs::TraceEvent> spans;
    for (const obs::TraceEvent& e : fault_trace.events()) {
      if (e.kind == obs::TraceEvent::Kind::kSpan) {
        spans.push_back(e);
      } else {
        EXPECT_EQ(e.value, 0.0) << e.name;
      }
    }
    ASSERT_EQ(spans.size(), reliable_trace.events().size());
    for (size_t i = 0; i < spans.size(); ++i) {
      EXPECT_EQ(spans[i], reliable_trace.events()[i]);
    }
  }
}

TEST(ChannelSessionTest, LossesOnlyDelayWithUnlimitedBudget) {
  // With a generous retry budget and no deadline every bucket is eventually
  // received; losses cost latency and tuning, never completeness.
  BroadcastSchedule s(60, 2, 3);
  FaultPolicy policy;
  policy.max_retries_per_bucket = 1000;
  const AccessStats reliable = RetrieveBuckets(s, 5, {7, 30, 55});
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ChannelSession session(IidLoss(0.4), policy, seed);
    const FaultyRetrievalResult r =
        session.Retrieve(s, 5, {7, 30, 55}, IndexReadMode::FlatDirectory());
    ASSERT_TRUE(r.complete()) << "seed " << seed;
    EXPECT_EQ(r.received.size(), 3u);
    EXPECT_GE(r.stats.access_latency, reliable.access_latency);
    EXPECT_GE(r.stats.tuning_time, reliable.tuning_time);
    // Tuning grows by exactly one slot per lost/corrupted data reception
    // plus one whole index segment per failed segment read; at minimum each
    // loss cost one extra listening slot somewhere.
    EXPECT_GE(r.stats.tuning_time - reliable.tuning_time, 0);
  }
}

TEST(ChannelSessionTest, DeterministicGivenStreamSeed) {
  BroadcastSchedule s(50, 2, 2);
  ChannelFaultConfig config = IidLoss(0.3);
  config.corruption_prob = 0.1;
  ChannelSession a(config, FaultPolicy{}, 999);
  ChannelSession b(config, FaultPolicy{}, 999);
  for (int64_t t : {0L, 20L, 40L}) {
    const FaultyRetrievalResult ra =
        a.Retrieve(s, t, {1, 25, 49}, IndexReadMode::FlatDirectory());
    const FaultyRetrievalResult rb =
        b.Retrieve(s, t, {1, 25, 49}, IndexReadMode::FlatDirectory());
    EXPECT_EQ(ra.stats.access_latency, rb.stats.access_latency);
    EXPECT_EQ(ra.stats.tuning_time, rb.stats.tuning_time);
    EXPECT_EQ(ra.received, rb.received);
    EXPECT_EQ(ra.failed, rb.failed);
    EXPECT_EQ(ra.losses, rb.losses);
    EXPECT_EQ(ra.corruptions, rb.corruptions);
  }
}

TEST(ChannelSessionTest, DeadlineProducesFailedBuckets) {
  // A deadline shorter than one index segment cannot even complete the
  // index search: everything fails, deadline_hit is set.
  BroadcastSchedule s(30, 2, 2);
  FaultPolicy policy;
  policy.deadline_slots = 2;  // probe alone costs 1 slot
  ChannelSession session(IidLoss(0.2), policy, 5);
  const FaultyRetrievalResult r =
      session.Retrieve(s, 0, {3, 20}, IndexReadMode::FlatDirectory());
  EXPECT_FALSE(r.complete());
  EXPECT_TRUE(r.deadline_hit);
  EXPECT_EQ(r.failed, (std::vector<int64_t>{3, 20}));
  EXPECT_TRUE(r.received.empty());
  EXPECT_EQ(r.stats.buckets_read, 0);
}

TEST(ChannelSessionTest, ExhaustedIndexRetriesFailEverything) {
  // Without the index the client cannot locate any bucket; when the retry
  // budget runs out during the index search every requested bucket fails.
  BroadcastSchedule s(30, 4, 1);
  FaultPolicy policy;
  policy.max_retries_per_bucket = 0;  // one shot at everything
  bool saw_index_failure = false;
  for (uint64_t seed = 1; seed <= 40 && !saw_index_failure; ++seed) {
    ChannelSession session(IidLoss(0.9), policy, seed);
    const FaultyRetrievalResult r =
        session.Retrieve(s, 0, {5, 17, 29}, IndexReadMode::FlatDirectory());
    // received + failed always partition the requested set.
    std::vector<int64_t> all = r.received;
    all.insert(all.end(), r.failed.begin(), r.failed.end());
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all, (std::vector<int64_t>{5, 17, 29}));
    if (r.failed.size() == 3 && r.losses > 0 && r.stats.buckets_read == 0) {
      saw_index_failure = true;
    }
  }
  // At 90% loss per reception and a 4-bucket segment with zero retries,
  // index failure is near-certain within 40 seeds.
  EXPECT_TRUE(saw_index_failure);
}

TEST(ChannelSessionTest, RetryBudgetBoundsDataAttempts) {
  // Per-bucket data attempts never exceed 1 + max_retries_per_bucket: with
  // budget b and loss p, extra tuning is bounded even at high loss.
  BroadcastSchedule s(50, 1, 1);
  FaultPolicy policy;
  policy.max_retries_per_bucket = 3;
  const AccessStats reliable = RetrieveBuckets(s, 0, {10, 40});
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ChannelSession session(IidLoss(0.8), policy, seed);
    const FaultyRetrievalResult r =
        session.Retrieve(s, 0, {10, 40}, IndexReadMode::FlatDirectory());
    // Index: at most 1 + 3 segment reads of 1 bucket; data: at most
    // 2 * (1 + 3) attempts.
    EXPECT_LE(r.stats.tuning_time,
              reliable.tuning_time + 3 + 2 * 3);
  }
}

}  // namespace
}  // namespace lbsq::fault
