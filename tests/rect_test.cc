#include "geom/rect.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/point.h"

namespace lbsq::geom {
namespace {

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.area(), 0.0);
  EXPECT_EQ(r.width(), 0.0);
}

TEST(RectTest, FromCornersNormalizesOrder) {
  const Rect r = Rect::FromCorners({5.0, 1.0}, {2.0, 7.0});
  EXPECT_EQ(r.x1, 2.0);
  EXPECT_EQ(r.y1, 1.0);
  EXPECT_EQ(r.x2, 5.0);
  EXPECT_EQ(r.y2, 7.0);
}

TEST(RectTest, CenteredSquare) {
  const Rect r = Rect::CenteredSquare({1.0, 2.0}, 0.5);
  EXPECT_EQ(r, (Rect{0.5, 1.5, 1.5, 2.5}));
  EXPECT_EQ(r.center(), (Point{1.0, 2.0}));
}

TEST(RectTest, ContainsIsClosed) {
  const Rect r{0.0, 0.0, 1.0, 1.0};
  EXPECT_TRUE(r.Contains({0.0, 0.0}));
  EXPECT_TRUE(r.Contains({1.0, 1.0}));
  EXPECT_TRUE(r.Contains({0.5, 1.0}));
  EXPECT_FALSE(r.Contains({1.0001, 0.5}));
}

TEST(RectTest, ContainsRect) {
  const Rect outer{0.0, 0.0, 10.0, 10.0};
  EXPECT_TRUE(outer.ContainsRect(Rect{1.0, 1.0, 9.0, 9.0}));
  EXPECT_TRUE(outer.ContainsRect(outer));
  EXPECT_FALSE(outer.ContainsRect(Rect{1.0, 1.0, 10.5, 9.0}));
  // Empty rectangles are vacuously contained.
  EXPECT_TRUE(outer.ContainsRect(Rect{}));
}

TEST(RectTest, IntersectsIncludesTouching) {
  const Rect a{0.0, 0.0, 1.0, 1.0};
  EXPECT_TRUE(a.Intersects(Rect{1.0, 0.0, 2.0, 1.0}));  // shared edge
  EXPECT_TRUE(a.Intersects(Rect{1.0, 1.0, 2.0, 2.0}));  // shared corner
  EXPECT_FALSE(a.Intersects(Rect{1.1, 0.0, 2.0, 1.0}));
  EXPECT_FALSE(a.Intersects(Rect{}));
}

TEST(RectTest, IntersectionAndUnion) {
  const Rect a{0.0, 0.0, 4.0, 4.0};
  const Rect b{2.0, 1.0, 6.0, 3.0};
  EXPECT_EQ(a.Intersection(b), (Rect{2.0, 1.0, 4.0, 3.0}));
  EXPECT_EQ(a.Union(b), (Rect{0.0, 0.0, 6.0, 4.0}));
  EXPECT_TRUE(a.Intersection(Rect{5.0, 5.0, 6.0, 6.0}).empty());
}

TEST(RectTest, UnionWithEmptyIsIdentity) {
  const Rect a{0.0, 0.0, 4.0, 4.0};
  EXPECT_EQ(a.Union(Rect{}), a);
  EXPECT_EQ(Rect{}.Union(a), a);
}

TEST(RectTest, ExpandGrowsToPoint) {
  Rect r;
  r.Expand({3.0, 4.0});
  EXPECT_EQ(r, (Rect{3.0, 4.0, 3.0, 4.0}));
  r.Expand({1.0, 6.0});
  EXPECT_EQ(r, (Rect{1.0, 4.0, 3.0, 6.0}));
}

TEST(RectTest, MinDistanceInsideIsZero) {
  const Rect r{0.0, 0.0, 2.0, 2.0};
  EXPECT_EQ(r.MinDistance({1.0, 1.0}), 0.0);
  EXPECT_EQ(r.MinDistance({0.0, 2.0}), 0.0);  // boundary
}

TEST(RectTest, MinDistanceOutside) {
  const Rect r{0.0, 0.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r.MinDistance({5.0, 1.0}), 3.0);          // right side
  EXPECT_DOUBLE_EQ(r.MinDistance({1.0, -2.0}), 2.0);         // below
  EXPECT_DOUBLE_EQ(r.MinDistance({5.0, 6.0}), 5.0);          // corner 3-4-5
}

TEST(RectTest, MaxDistance) {
  const Rect r{0.0, 0.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r.MaxDistance({0.0, 0.0}), std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(r.MaxDistance({1.0, 1.0}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(r.MaxDistance({3.0, 1.0}), std::sqrt(9.0 + 1.0));
}

TEST(SubtractRectTest, NoOverlapKeepsWhole) {
  std::vector<Rect> out;
  SubtractRect(Rect{0.0, 0.0, 1.0, 1.0}, Rect{2.0, 2.0, 3.0, 3.0}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Rect{0.0, 0.0, 1.0, 1.0}));
}

TEST(SubtractRectTest, FullyCoveredYieldsNothing) {
  std::vector<Rect> out;
  SubtractRect(Rect{1.0, 1.0, 2.0, 2.0}, Rect{0.0, 0.0, 3.0, 3.0}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(SubtractRectTest, CenterHoleYieldsFourPieces) {
  std::vector<Rect> out;
  SubtractRect(Rect{0.0, 0.0, 3.0, 3.0}, Rect{1.0, 1.0, 2.0, 2.0}, &out);
  ASSERT_EQ(out.size(), 4u);
  double total = 0.0;
  for (const Rect& r : out) {
    total += r.area();
    // Pieces must be disjoint from the subtracted rect's interior.
    EXPECT_LE(r.Intersection(Rect{1.0, 1.0, 2.0, 2.0}).area(), 0.0);
  }
  EXPECT_DOUBLE_EQ(total, 8.0);
}

TEST(SubtractRectTest, EdgeTouchingOnlyKeepsWhole) {
  std::vector<Rect> out;
  SubtractRect(Rect{0.0, 0.0, 1.0, 1.0}, Rect{1.0, 0.0, 2.0, 1.0}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Rect{0.0, 0.0, 1.0, 1.0}));
}

TEST(SubtractRectTest, PartialOverlapAreaConserved) {
  const Rect a{0.0, 0.0, 4.0, 4.0};
  const Rect b{2.0, -1.0, 6.0, 2.0};
  std::vector<Rect> out;
  SubtractRect(a, b, &out);
  double total = 0.0;
  for (const Rect& r : out) total += r.area();
  EXPECT_DOUBLE_EQ(total, a.area() - a.Intersection(b).area());
  // Pieces pairwise interior-disjoint.
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t j = i + 1; j < out.size(); ++j) {
      EXPECT_LE(out[i].Intersection(out[j]).area(), 0.0);
    }
  }
}

}  // namespace
}  // namespace lbsq::geom
