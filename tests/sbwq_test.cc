#include "core/sbwq.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "broadcast/system.h"
#include "common/rng.h"
#include "engine_shim.h"
#include "spatial/generators.h"

namespace lbsq::core {
namespace {

const geom::Rect kWorld{0.0, 0.0, 20.0, 20.0};

struct Fixture {
  std::unique_ptr<broadcast::BroadcastSystem> system;

  explicit Fixture(int n_pois, uint64_t seed = 1) {
    Rng rng(seed);
    broadcast::BroadcastParams params;
    params.hilbert_order = 5;
    system = std::make_unique<broadcast::BroadcastSystem>(
        spatial::GenerateUniformPois(&rng, kWorld, n_pois), kWorld, params);
  }

  PeerData PeerWithRegion(geom::Rect region) const {
    VerifiedRegion vr;
    vr.region = region;
    for (const spatial::Poi& p : system->pois()) {
      if (region.Contains(p.pos)) vr.pois.push_back(p);
    }
    return PeerData{{vr}};
  }
};

TEST(SbwqTest, WindowInsideMvrResolvedByPeers) {
  Fixture f(300);
  const geom::Rect window{8.0, 8.0, 12.0, 12.0};
  const std::vector<PeerData> peers = {
      f.PeerWithRegion(geom::Rect{5.0, 5.0, 15.0, 15.0})};
  const SbwqOutcome outcome = RunSbwq(window, {}, peers, *f.system, 0);
  EXPECT_TRUE(outcome.resolved_by_peers);
  EXPECT_EQ(outcome.stats.access_latency, 0);
  EXPECT_EQ(outcome.residual_fraction, 0.0);
  EXPECT_EQ(outcome.pois, spatial::BruteForceWindow(f.system->pois(), window));
}

TEST(SbwqTest, WindowCoveredByMultiplePeersJointly) {
  Fixture f(300);
  const geom::Rect window{8.0, 8.0, 12.0, 12.0};
  const std::vector<PeerData> peers = {
      f.PeerWithRegion(geom::Rect{7.0, 7.0, 10.0, 13.0}),
      f.PeerWithRegion(geom::Rect{10.0, 7.0, 13.0, 13.0})};
  const SbwqOutcome outcome = RunSbwq(window, {}, peers, *f.system, 0);
  EXPECT_TRUE(outcome.resolved_by_peers);
  EXPECT_EQ(outcome.pois, spatial::BruteForceWindow(f.system->pois(), window));
}

TEST(SbwqTest, NoPeersFallsBackExactly) {
  Fixture f(300);
  const geom::Rect window{3.0, 5.0, 9.0, 11.0};
  const SbwqOutcome outcome = RunSbwq(window, {}, {}, *f.system, 0);
  EXPECT_FALSE(outcome.resolved_by_peers);
  EXPECT_EQ(outcome.residual_fraction, 1.0);
  EXPECT_GT(outcome.stats.access_latency, 0);
  EXPECT_EQ(outcome.pois, spatial::BruteForceWindow(f.system->pois(), window));
}

TEST(SbwqTest, PartialCoverageStaysExact) {
  Fixture f(400);
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 15.0), rng.Uniform(0.0, 15.0)};
    const geom::Rect window{a.x, a.y, a.x + rng.Uniform(1.0, 5.0),
                            a.y + rng.Uniform(1.0, 5.0)};
    std::vector<PeerData> peers;
    const int n_peers = static_cast<int>(rng.UniformInt(0, 4));
    for (int p = 0; p < n_peers; ++p) {
      const geom::Point c{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
      peers.push_back(f.PeerWithRegion(
          geom::Rect::CenteredSquare(c, rng.Uniform(0.5, 3.0))));
    }
    for (bool reduce : {true, false}) {
      SbwqOptions options;
      options.use_window_reduction = reduce;
      const SbwqOutcome outcome =
          RunSbwq(window, options, peers, *f.system, trial * 5);
      EXPECT_EQ(outcome.pois,
                spatial::BruteForceWindow(f.system->pois(), window))
          << "trial " << trial << " reduce " << reduce;
    }
  }
}

TEST(SbwqTest, WindowReductionDownloadsNoMoreThanBaseline) {
  Fixture f(400);
  Rng rng(5);
  int64_t reduced = 0;
  int64_t unreduced = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 14.0), rng.Uniform(0.0, 14.0)};
    const geom::Rect window{a.x, a.y, a.x + 4.0, a.y + 4.0};
    // Peer covers the window's left half.
    const std::vector<PeerData> peers = {f.PeerWithRegion(
        geom::Rect{a.x - 0.5, a.y - 0.5, a.x + 2.0, a.y + 4.5})};
    SbwqOptions options;
    options.use_window_reduction = true;
    reduced +=
        RunSbwq(window, options, peers, *f.system, 0).stats.buckets_read;
    options.use_window_reduction = false;
    unreduced +=
        RunSbwq(window, options, peers, *f.system, 0).stats.buckets_read;
  }
  EXPECT_LE(reduced, unreduced);
  EXPECT_LT(reduced, unreduced);  // it must help at least once
}

TEST(SbwqTest, ResidualFractionReflectsCoverage) {
  Fixture f(100);
  const geom::Rect window{0.0, 0.0, 4.0, 4.0};
  // Peer covers exactly the left half.
  const std::vector<PeerData> peers = {
      f.PeerWithRegion(geom::Rect{0.0, 0.0, 2.0, 4.0})};
  const SbwqOutcome outcome = RunSbwq(window, {}, peers, *f.system, 0);
  EXPECT_NEAR(outcome.residual_fraction, 0.5, 1e-12);
  ASSERT_EQ(outcome.residual_windows.size(), 1u);
  EXPECT_EQ(outcome.residual_windows[0], (geom::Rect{2.0, 0.0, 4.0, 4.0}));
}

TEST(SbwqTest, CacheableEqualsWindowAnswer) {
  Fixture f(250);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 16.0), rng.Uniform(0.0, 16.0)};
    const geom::Rect window{a.x, a.y, a.x + 3.0, a.y + 3.0};
    const SbwqOutcome outcome = RunSbwq(window, {}, {}, *f.system, 0);
    EXPECT_EQ(outcome.cacheable.region, window);
    EXPECT_EQ(outcome.cacheable.pois, outcome.pois);
  }
}

TEST(SbwqTest, PartitionedRetrievalStaysExact) {
  Fixture f(350);
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point a{rng.Uniform(0.0, 14.0), rng.Uniform(0.0, 14.0)};
    const geom::Rect window{a.x, a.y, a.x + rng.Uniform(2.0, 6.0),
                            a.y + rng.Uniform(2.0, 6.0)};
    SbwqOptions options;
    options.retrieval = onair::WindowRetrieval::kPartitionedRanges;
    const SbwqOutcome outcome = RunSbwq(window, options, {}, *f.system, 0);
    EXPECT_EQ(outcome.pois,
              spatial::BruteForceWindow(f.system->pois(), window));
  }
}

}  // namespace
}  // namespace lbsq::core
