#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/sharded_query_engine.h"
#include "geom/rect.h"
#include "server/protocol.h"
#include "server/session.h"
#include "spatial/generators.h"

/// Wire-level tests for the lbsq_server protocol: framing (truncated
/// prefixes, oversized frames, garbage), message round-trips, and the
/// session state machine (version negotiation, bad-state transitions,
/// malformed payloads) — all socket-free, driving the exact code the
/// server runs. The invariant under test: arbitrary client bytes produce
/// an ERROR frame and a closed session, never a crash or an LBSQ_CHECK
/// abort.

namespace lbsq::server {
namespace {

const geom::Rect kWorld{0.0, 0.0, 10.0, 10.0};

broadcast::BroadcastParams TestParams() {
  broadcast::BroadcastParams params;
  params.bucket_capacity = 4;
  params.hilbert_order = 5;
  return params;
}

std::vector<spatial::Poi> TestPois(int n, uint64_t seed = 7) {
  Rng rng(seed);
  return spatial::GenerateUniformPois(&rng, kWorld, n);
}

/// Parses every complete frame out of a reply byte stream.
std::vector<Frame> ParseAll(const std::vector<uint8_t>& bytes) {
  FrameAssembler assembler;
  assembler.Feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  Frame frame;
  while (assembler.Next(&frame) == FrameAssembler::Result::kFrame) {
    frames.push_back(frame);
  }
  return frames;
}

class SessionHarness {
 public:
  SessionHarness()
      : engine_(TestPois(120), kWorld, TestParams(), core::EngineOptions{},
                2),
        session_(MakeContext()) {}

  Session& session() { return session_; }
  const core::ShardedQueryEngine& engine() { return engine_; }
  ServerCounters& counters() { return counters_; }

  /// Sends one frame; returns the parsed replies.
  std::vector<Frame> Send(FrameType type, const std::vector<uint8_t>& payload,
                          FrameResult* result = nullptr) {
    std::vector<uint8_t> wire;
    Frame frame;
    frame.type = type;
    frame.payload = payload;
    FrameResult r = session_.OnFrame(frame, &wire);
    if (result != nullptr) *result = r;
    return ParseAll(wire);
  }

  /// Performs a successful HELLO with the given range.
  HelloAck Handshake(uint32_t min_version = 1, uint32_t max_version = 2) {
    HelloRequest hello;
    hello.min_version = min_version;
    hello.max_version = max_version;
    const std::vector<Frame> replies =
        Send(FrameType::kHello, EncodeHello(hello));
    EXPECT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].type, FrameType::kHelloAck);
    HelloAck ack;
    EXPECT_TRUE(DecodeHelloAck(replies[0].payload, &ack));
    return ack;
  }

 private:
  SessionContext MakeContext() {
    SessionContext context;
    context.engine = &engine_;
    context.epoch = 0;
    context.counters = &counters_;
    return context;
  }

  core::ShardedQueryEngine engine_;
  ServerCounters counters_;
  Session session_;
};

TEST(FrameAssemblerTest, ReassemblesAcrossArbitraryChunks) {
  std::vector<uint8_t> wire;
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  AppendFrame(FrameType::kQuery, payload, &wire);
  AppendFrame(FrameType::kBye, {}, &wire);

  // Feed one byte at a time — frames must come out intact and in order.
  FrameAssembler assembler;
  std::vector<Frame> frames;
  Frame frame;
  for (const uint8_t byte : wire) {
    assembler.Feed(&byte, 1);
    while (assembler.Next(&frame) == FrameAssembler::Result::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kQuery);
  EXPECT_EQ(frames[0].payload, payload);
  EXPECT_EQ(frames[1].type, FrameType::kBye);
  EXPECT_TRUE(frames[1].payload.empty());
}

TEST(FrameAssemblerTest, TruncatedPrefixNeedsMore) {
  std::vector<uint8_t> wire;
  const std::vector<uint8_t> payload = {9, 9, 9};
  AppendFrame(FrameType::kHello, payload, &wire);
  FrameAssembler assembler;
  Frame frame;
  // Every strict prefix of the wire bytes parses to "need more", not error.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameAssembler fresh;
    fresh.Feed(wire.data(), cut);
    EXPECT_EQ(fresh.Next(&frame), FrameAssembler::Result::kNeedMore);
  }
  assembler.Feed(wire.data(), wire.size());
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Result::kFrame);
}

TEST(FrameAssemblerTest, OversizedFrameIsLatchedError) {
  // Length prefix just above the cap.
  const uint32_t length = kMaxFrameBytes + 1;
  const std::vector<uint8_t> wire = {
      static_cast<uint8_t>(length & 0xFF),
      static_cast<uint8_t>((length >> 8) & 0xFF),
      static_cast<uint8_t>((length >> 16) & 0xFF),
      static_cast<uint8_t>((length >> 24) & 0xFF)};
  FrameAssembler assembler;
  assembler.Feed(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Result::kError);
  // Latched: no amount of further bytes recovers the stream.
  const uint8_t more[] = {0, 0, 0, 0};
  assembler.Feed(more, sizeof(more));
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Result::kError);
  EXPECT_FALSE(assembler.error().empty());
}

TEST(FrameAssemblerTest, ZeroLengthFrameIsError) {
  const uint8_t wire[] = {0, 0, 0, 0};
  FrameAssembler assembler;
  assembler.Feed(wire, sizeof(wire));
  Frame frame;
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Result::kError);
}

TEST(ProtocolTest, MessageRoundTrips) {
  HelloRequest hello{1, 2};
  HelloRequest hello_out;
  ASSERT_TRUE(DecodeHello(EncodeHello(hello), &hello_out));
  EXPECT_EQ(hello_out.min_version, 1u);
  EXPECT_EQ(hello_out.max_version, 2u);

  HelloAck ack;
  ack.version = 2;
  ack.num_shards = 4;
  ack.epoch = 17;
  ack.poi_count = 123;
  ack.world = kWorld;
  HelloAck ack_out;
  ASSERT_TRUE(DecodeHelloAck(EncodeHelloAck(ack), &ack_out));
  EXPECT_EQ(ack_out.version, 2u);
  EXPECT_EQ(ack_out.num_shards, 4u);
  EXPECT_EQ(ack_out.epoch, 17u);
  EXPECT_EQ(ack_out.poi_count, 123u);
  EXPECT_EQ(ack_out.world, kWorld);

  QueryCall knn;
  knn.request_id = 42;
  knn.kind = core::QueryKind::kKnn;
  knn.position = {1.5, 2.5};
  knn.k = 7;
  knn.slot = 999;
  QueryCall knn_out;
  ASSERT_TRUE(DecodeQueryCall(EncodeQueryCall(knn), &knn_out));
  EXPECT_EQ(knn_out.request_id, 42u);
  EXPECT_EQ(knn_out.kind, core::QueryKind::kKnn);
  EXPECT_EQ(knn_out.position.x, 1.5);
  EXPECT_EQ(knn_out.position.y, 2.5);
  EXPECT_EQ(knn_out.k, 7);
  EXPECT_EQ(knn_out.slot, 999);
  EXPECT_TRUE(knn_out.window.empty());

  QueryCall window;
  window.request_id = 43;
  window.kind = core::QueryKind::kWindow;
  window.window = geom::Rect{1.0, 1.0, 2.0, 2.0};
  window.slot = 5;
  QueryCall window_out;
  ASSERT_TRUE(DecodeQueryCall(EncodeQueryCall(window), &window_out));
  EXPECT_EQ(window_out.kind, core::QueryKind::kWindow);
  EXPECT_EQ(window_out.window, (geom::Rect{1.0, 1.0, 2.0, 2.0}));
  EXPECT_EQ(window_out.k, 0);

  QueryAnswer answer;
  answer.request_id = 42;
  answer.kind = core::QueryKind::kKnn;
  answer.epoch = 3;
  answer.neighbor_ids = {10, 20};
  answer.neighbor_distances = {0.25, 0.5};
  answer.access_latency = 12;
  answer.tuning_time = 4;
  answer.buckets_read = 2;
  QueryAnswer answer_out;
  ASSERT_TRUE(DecodeQueryAnswer(EncodeQueryAnswer(answer), &answer_out));
  EXPECT_EQ(answer_out.request_id, 42u);
  EXPECT_EQ(answer_out.epoch, 3u);
  EXPECT_EQ(answer_out.neighbor_ids, (std::vector<int64_t>{10, 20}));
  EXPECT_EQ(answer_out.neighbor_distances, (std::vector<double>{0.25, 0.5}));
  EXPECT_EQ(answer_out.access_latency, 12);
  EXPECT_EQ(answer_out.tuning_time, 4);
  EXPECT_EQ(answer_out.buckets_read, 2);

  RetryAfter retry{7, 25};
  RetryAfter retry_out;
  ASSERT_TRUE(DecodeRetryAfter(EncodeRetryAfter(retry), &retry_out));
  EXPECT_EQ(retry_out.request_id, 7u);
  EXPECT_EQ(retry_out.delay_ms, 25u);

  ErrorReply error{ErrorCode::kBadShard, "shard out of range"};
  ErrorReply error_out;
  ASSERT_TRUE(DecodeErrorReply(EncodeErrorReply(error), &error_out));
  EXPECT_EQ(error_out.code, ErrorCode::kBadShard);
  EXPECT_EQ(error_out.message, "shard out of range");
}

TEST(ProtocolTest, DecodersRejectTruncationAndTrailingBytes) {
  QueryCall call;
  call.kind = core::QueryKind::kKnn;
  call.position = {1.0, 2.0};
  call.k = 3;
  const std::vector<uint8_t> good = EncodeQueryCall(call);
  QueryCall out;
  // Every strict prefix is rejected.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeQueryCall(
        std::span<const uint8_t>(good.data(), cut), &out))
        << "prefix of length " << cut << " decoded";
  }
  // Trailing garbage is rejected.
  std::vector<uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(DecodeQueryCall(padded, &out));
}

TEST(ProtocolTest, DecodersSurviveGarbage) {
  // Deterministic pseudo-random byte soup must never crash any decoder.
  Rng rng(99);
  std::vector<uint8_t> soup(64);
  for (int round = 0; round < 200; ++round) {
    for (uint8_t& b : soup) {
      b = static_cast<uint8_t>(rng.NextUint64() & 0xFF);
    }
    const std::span<const uint8_t> bytes(soup.data(),
                                         round % (soup.size() + 1));
    HelloRequest hello;
    HelloAck ack;
    QueryCall call;
    QueryAnswer answer;
    RetryAfter retry;
    ErrorReply error;
    DecodeHello(bytes, &hello);
    DecodeHelloAck(bytes, &ack);
    DecodeQueryCall(bytes, &call);
    DecodeQueryAnswer(bytes, &answer);
    DecodeRetryAfter(bytes, &retry);
    DecodeErrorReply(bytes, &error);
  }
}

TEST(SessionTest, HandshakeNegotiatesHighestCommonVersion) {
  SessionHarness harness;
  const HelloAck ack = harness.Handshake(1, 2);
  EXPECT_EQ(ack.version, 2u);
  EXPECT_EQ(ack.num_shards, 2u);
  EXPECT_EQ(ack.poi_count, 120u);
  EXPECT_EQ(ack.world, kWorld);
  EXPECT_EQ(harness.session().state(), Session::State::kReady);
  EXPECT_EQ(harness.session().version(), 2u);
}

TEST(SessionTest, V1OnlyClientNegotiatesV1) {
  SessionHarness harness;
  const HelloAck ack = harness.Handshake(1, 1);
  EXPECT_EQ(ack.version, 1u);
  // v1 sessions are epoch-free.
  EXPECT_EQ(ack.epoch, 0u);
}

TEST(SessionTest, VersionMismatchRejectsSession) {
  SessionHarness harness;
  HelloRequest hello;
  hello.min_version = 40;
  hello.max_version = 50;
  FrameResult result;
  const std::vector<Frame> replies =
      harness.Send(FrameType::kHello, EncodeHello(hello), &result);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, FrameType::kError);
  ErrorReply error;
  ASSERT_TRUE(DecodeErrorReply(replies[0].payload, &error));
  EXPECT_EQ(error.code, ErrorCode::kVersionMismatch);
  EXPECT_TRUE(result.close);
  EXPECT_EQ(harness.session().state(), Session::State::kClosed);
  EXPECT_EQ(harness.counters().protocol_errors.load(), 1);
}

TEST(SessionTest, QueryBeforeHelloIsBadState) {
  SessionHarness harness;
  QueryCall call;
  call.kind = core::QueryKind::kKnn;
  call.position = {5.0, 5.0};
  call.k = 1;
  FrameResult result;
  const std::vector<Frame> replies =
      harness.Send(FrameType::kQuery, EncodeQueryCall(call), &result);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, FrameType::kError);
  EXPECT_TRUE(result.close);
  EXPECT_TRUE(result.queries.empty());
}

TEST(SessionTest, MalformedQueryClosesWithoutDispatch) {
  SessionHarness harness;
  harness.Handshake();
  FrameResult result;
  const std::vector<Frame> replies =
      harness.Send(FrameType::kQuery, {0xFF, 0xFF, 0xFF}, &result);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, FrameType::kError);
  ErrorReply error;
  ASSERT_TRUE(DecodeErrorReply(replies[0].payload, &error));
  EXPECT_EQ(error.code, ErrorCode::kMalformedPayload);
  EXPECT_TRUE(result.close);
  EXPECT_TRUE(result.queries.empty());
}

TEST(SessionTest, WellFormedQueryIsDispatchedNotAnsweredInline) {
  SessionHarness harness;
  harness.Handshake();
  QueryCall call;
  call.request_id = 5;
  call.kind = core::QueryKind::kKnn;
  call.position = {5.0, 5.0};
  call.k = 3;
  FrameResult result;
  const std::vector<Frame> replies =
      harness.Send(FrameType::kQuery, EncodeQueryCall(call), &result);
  EXPECT_TRUE(replies.empty());  // answers come from workers
  EXPECT_FALSE(result.close);
  ASSERT_EQ(result.queries.size(), 1u);
  EXPECT_EQ(result.queries[0].request_id, 5u);
  EXPECT_EQ(result.queries[0].k, 3);
}

TEST(SessionTest, IndexAndBucketServeBroadcastWireBytes) {
  SessionHarness harness;
  harness.Handshake();

  // Probe shard 0: the directory must round-trip through the broadcast
  // wire decoder and match the shard's in-memory index exactly.
  IndexProbe probe;
  probe.shard = 0;
  std::vector<Frame> replies =
      harness.Send(FrameType::kIndexProbe, EncodeIndexProbe(probe));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].type, FrameType::kIndexData);
  uint32_t shard = 99;
  std::vector<broadcast::AirIndex::Entry> entries;
  uint64_t epoch = 99;
  ASSERT_TRUE(DecodeIndexData(replies[0].payload, &shard, &entries, &epoch));
  EXPECT_EQ(shard, 0u);
  EXPECT_EQ(epoch, 0u);
  const broadcast::BroadcastSystem* system = harness.engine().shard_system(0);
  ASSERT_NE(system, nullptr);
  ASSERT_EQ(entries.size(), system->index().entries().size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].hilbert, system->index().entries()[i].hilbert);
    EXPECT_EQ(entries[i].bucket, system->index().entries()[i].bucket);
  }

  // Fetch bucket 0 and compare contents.
  BucketGet get;
  get.shard = 0;
  get.bucket = 0;
  replies = harness.Send(FrameType::kBucketGet, EncodeBucketGet(get));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].type, FrameType::kBucketData);
  broadcast::DataBucket bucket;
  ASSERT_TRUE(DecodeBucketData(replies[0].payload, &shard, &bucket));
  const broadcast::DataBucket& expect = system->buckets()[0];
  EXPECT_EQ(bucket.id, expect.id);
  ASSERT_EQ(bucket.pois.size(), expect.pois.size());
  for (size_t i = 0; i < bucket.pois.size(); ++i) {
    EXPECT_EQ(bucket.pois[i].id, expect.pois[i].id);
  }

  // Out-of-range shard / bucket close the session with the right code.
  get.shard = 0;
  get.bucket = system->buckets().size();
  replies = harness.Send(FrameType::kBucketGet, EncodeBucketGet(get));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].type, FrameType::kError);
  ErrorReply error;
  ASSERT_TRUE(DecodeErrorReply(replies[0].payload, &error));
  EXPECT_EQ(error.code, ErrorCode::kBadBucket);
  EXPECT_EQ(harness.session().state(), Session::State::kClosed);
}

TEST(SessionTest, ByeClosesCleanly) {
  SessionHarness harness;
  harness.Handshake();
  FrameResult result;
  const std::vector<Frame> replies = harness.Send(FrameType::kBye, {}, &result);
  EXPECT_TRUE(replies.empty());
  EXPECT_TRUE(result.close);
  EXPECT_EQ(harness.session().state(), Session::State::kClosed);
  // A clean close is not a protocol error.
  EXPECT_EQ(harness.counters().protocol_errors.load(), 0);
}

}  // namespace
}  // namespace lbsq::server
