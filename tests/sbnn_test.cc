#include "core/sbnn.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "engine_shim.h"
#include "spatial/generators.h"

namespace lbsq::core {
namespace {

const geom::Rect kWorld{0.0, 0.0, 20.0, 20.0};

struct Fixture {
  std::unique_ptr<broadcast::BroadcastSystem> system;
  double poi_density;

  explicit Fixture(int n_pois, uint64_t seed = 1, int bucket_capacity = 8) {
    Rng rng(seed);
    broadcast::BroadcastParams params;
    params.hilbert_order = 5;
    params.bucket_capacity = bucket_capacity;
    system = std::make_unique<broadcast::BroadcastSystem>(
        spatial::GenerateUniformPois(&rng, kWorld, n_pois), kWorld, params);
    poi_density = static_cast<double>(n_pois) / kWorld.area();
  }

  // A peer that knows the complete server content of `region`.
  PeerData PeerWithRegion(geom::Rect region) const {
    VerifiedRegion vr;
    vr.region = region;
    for (const spatial::Poi& p : system->pois()) {
      if (region.Contains(p.pos)) vr.pois.push_back(p);
    }
    return PeerData{{vr}};
  }
};

TEST(SbnnTest, NoPeersFallsBackToBroadcastExactly) {
  Fixture f(300);
  SbnnOptions options;
  options.k = 5;
  const SbnnOutcome outcome =
      RunSbnn({10.0, 10.0}, options, {}, f.poi_density, *f.system, 0);
  EXPECT_EQ(outcome.resolved_by, ResolvedBy::kBroadcast);
  EXPECT_GT(outcome.stats.access_latency, 0);
  const auto truth = spatial::BruteForceKnn(f.system->pois(), {10.0, 10.0}, 5);
  ASSERT_EQ(outcome.neighbors.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(outcome.neighbors[i].poi.id, truth[i].poi.id);
  }
}

TEST(SbnnTest, LargePeerRegionResolvesWithoutBroadcast) {
  Fixture f(300);
  SbnnOptions options;
  options.k = 3;
  const std::vector<PeerData> peers = {
      f.PeerWithRegion(geom::Rect{5.0, 5.0, 15.0, 15.0})};
  const SbnnOutcome outcome =
      RunSbnn({10.0, 10.0}, options, peers, f.poi_density, *f.system, 0);
  EXPECT_EQ(outcome.resolved_by, ResolvedBy::kPeersVerified);
  EXPECT_EQ(outcome.stats.access_latency, 0);
  EXPECT_EQ(outcome.stats.tuning_time, 0);
  const auto truth = spatial::BruteForceKnn(f.system->pois(), {10.0, 10.0}, 3);
  ASSERT_EQ(outcome.neighbors.size(), 3u);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(outcome.neighbors[i].poi.id, truth[i].poi.id);
  }
}

TEST(SbnnTest, ApproximateAcceptedWhenCorrectnessHigh) {
  // Sparse data: the peer's region covers most of the relevant disc, so the
  // unverified tail has high correctness.
  Fixture f(40);
  SbnnOptions options;
  options.k = 5;
  options.accept_approximate = true;
  options.min_correctness = 0.2;
  const std::vector<PeerData> peers = {
      f.PeerWithRegion(geom::Rect{0.0, 0.0, 20.0, 14.0})};
  const SbnnOutcome outcome =
      RunSbnn({10.0, 7.0}, options, peers, f.poi_density, *f.system, 0);
  // Depending on the draw this may fully verify; both peer paths are fine,
  // but it must not touch the channel.
  EXPECT_NE(outcome.resolved_by, ResolvedBy::kBroadcast);
  EXPECT_EQ(outcome.stats.access_latency, 0);
}

TEST(SbnnTest, ApproximateRejectedWhenThresholdHigh) {
  Fixture f(40);
  SbnnOptions options;
  options.k = 5;
  options.accept_approximate = true;
  options.min_correctness = 0.999999;  // effectively requires verification
  const std::vector<PeerData> peers = {
      f.PeerWithRegion(geom::Rect{8.0, 5.0, 12.0, 9.0})};
  const SbnnOutcome outcome =
      RunSbnn({10.0, 7.0}, options, peers, f.poi_density, *f.system, 0);
  if (outcome.resolved_by != ResolvedBy::kPeersVerified) {
    EXPECT_EQ(outcome.resolved_by, ResolvedBy::kBroadcast);
    // Fallback answers are exact.
    const auto truth =
        spatial::BruteForceKnn(f.system->pois(), {10.0, 7.0}, 5);
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(outcome.neighbors[i].poi.id, truth[i].poi.id);
    }
  }
}

TEST(SbnnTest, FilteringSkipsBucketsButStaysExact) {
  // Dense data and tiny buckets so bucket MBRs are small relative to the
  // lower-bound circle C_i.
  Fixture f(4000, /*seed=*/1, /*bucket_capacity=*/2);
  Rng rng(3);
  int skipped_total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Point q{rng.Uniform(3.0, 17.0), rng.Uniform(3.0, 17.0)};
    SbnnOptions options;
    options.k = 30;
    options.accept_approximate = false;
    options.use_filtering = true;
    // Peer region sized for strong partial (not full) verification.
    const std::vector<PeerData> peers = {f.PeerWithRegion(
        geom::Rect::CenteredSquare(q, rng.Uniform(0.6, 0.8)))};
    const SbnnOutcome outcome =
        RunSbnn(q, options, peers, f.poi_density, *f.system, trial * 11);
    const auto truth = spatial::BruteForceKnn(f.system->pois(), q, options.k);
    ASSERT_EQ(outcome.neighbors.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_DOUBLE_EQ(outcome.neighbors[i].distance, truth[i].distance)
          << "trial " << trial;
    }
    skipped_total += static_cast<int>(outcome.buckets_skipped);
  }
  EXPECT_GT(skipped_total, 0);  // the filter must actually fire sometimes
}

TEST(SbnnTest, FilteringReducesDownloadsVsUnfiltered) {
  Fixture f(500);
  Rng rng(5);
  int64_t filtered = 0;
  int64_t unfiltered = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const geom::Point q{rng.Uniform(2.0, 18.0), rng.Uniform(2.0, 18.0)};
    const std::vector<PeerData> peers = {
        f.PeerWithRegion(geom::Rect::CenteredSquare(q, 1.5))};
    SbnnOptions options;
    options.k = 10;
    options.accept_approximate = false;
    options.use_filtering = true;
    filtered += RunSbnn(q, options, peers, f.poi_density, *f.system, 0)
                    .stats.buckets_read;
    options.use_filtering = false;
    unfiltered += RunSbnn(q, options, peers, f.poi_density, *f.system, 0)
                      .stats.buckets_read;
  }
  EXPECT_LT(filtered, unfiltered);
}

TEST(SbnnTest, CacheableRegionIsComplete) {
  Fixture f(400);
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const geom::Point q{rng.Uniform(1.0, 19.0), rng.Uniform(1.0, 19.0)};
    SbnnOptions options;
    options.k = 5;
    options.accept_approximate = trial % 2 == 0;
    std::vector<PeerData> peers;
    if (trial % 3 != 0) {
      peers.push_back(f.PeerWithRegion(
          geom::Rect::CenteredSquare(q, rng.Uniform(0.3, 3.0))));
    }
    const SbnnOutcome outcome =
        RunSbnn(q, options, peers, f.poi_density, *f.system, 0);
    if (outcome.cacheable.region.empty()) continue;
    // Completeness: every server POI inside the cacheable region is present.
    for (const spatial::Poi& p : f.system->pois()) {
      if (!outcome.cacheable.region.Contains(p.pos)) continue;
      const bool present = std::any_of(
          outcome.cacheable.pois.begin(), outcome.cacheable.pois.end(),
          [&p](const spatial::Poi& c) { return c.id == p.id; });
      EXPECT_TRUE(present) << "trial " << trial << " poi " << p.id;
    }
  }
}

TEST(SbnnTest, IndexBoundTighteningNeverDownloadsMoreAndStaysExact) {
  Fixture f(800);
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const geom::Point q{rng.Uniform(2.0, 18.0), rng.Uniform(2.0, 18.0)};
    const std::vector<PeerData> peers = {f.PeerWithRegion(
        geom::Rect::CenteredSquare(q, rng.Uniform(0.8, 1.6)))};
    SbnnOptions options;
    options.k = 12;
    options.accept_approximate = false;
    options.tighten_with_index_bound = false;
    const SbnnOutcome paper =
        RunSbnn(q, options, peers, f.poi_density, *f.system, 0);
    options.tighten_with_index_bound = true;
    const SbnnOutcome tightened =
        RunSbnn(q, options, peers, f.poi_density, *f.system, 0);
    if (paper.resolved_by == ResolvedBy::kBroadcast &&
        tightened.resolved_by == ResolvedBy::kBroadcast) {
      EXPECT_LE(tightened.stats.buckets_read, paper.stats.buckets_read);
    }
    const auto truth = spatial::BruteForceKnn(f.system->pois(), q, 12);
    ASSERT_EQ(tightened.neighbors.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_DOUBLE_EQ(tightened.neighbors[i].distance, truth[i].distance);
      EXPECT_DOUBLE_EQ(paper.neighbors[i].distance, truth[i].distance);
    }
  }
}

TEST(SbnnTest, PrefetchWidensCacheableRegionAndStaysExact) {
  Fixture f(500);
  const geom::Point q{10.0, 10.0};
  SbnnOptions options;
  options.k = 5;
  options.accept_approximate = false;
  const SbnnOutcome base = RunSbnn(q, options, {}, f.poi_density, *f.system, 0);
  options.prefetch_radius_factor = 2.0;
  const SbnnOutcome wide = RunSbnn(q, options, {}, f.poi_density, *f.system, 0);
  EXPECT_GT(wide.cacheable.region.area(), base.cacheable.region.area());
  EXPECT_GE(wide.stats.buckets_read, base.stats.buckets_read);
  const auto truth = spatial::BruteForceKnn(f.system->pois(), q, 5);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(wide.neighbors[i].poi.id, truth[i].poi.id);
    EXPECT_EQ(base.neighbors[i].poi.id, truth[i].poi.id);
  }
  // The widened cacheable region still satisfies completeness.
  for (const spatial::Poi& p : f.system->pois()) {
    if (!wide.cacheable.region.Contains(p.pos)) continue;
    EXPECT_TRUE(std::any_of(
        wide.cacheable.pois.begin(), wide.cacheable.pois.end(),
        [&p](const spatial::Poi& c) { return c.id == p.id; }));
  }
}

TEST(SbnnTest, ApproximateOutcomeCacheableUsesVerifiedPrefixOnly) {
  Fixture f(60);
  Rng rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    const geom::Point q{rng.Uniform(2.0, 18.0), rng.Uniform(2.0, 18.0)};
    SbnnOptions options;
    options.k = 6;
    options.accept_approximate = true;
    options.min_correctness = 0.0;  // accept anything
    const std::vector<PeerData> peers = {f.PeerWithRegion(
        geom::Rect::CenteredSquare(q, rng.Uniform(1.0, 3.0)))};
    const SbnnOutcome outcome =
        RunSbnn(q, options, peers, f.poi_density, *f.system, 0);
    if (outcome.resolved_by != ResolvedBy::kPeersApproximate) continue;
    if (outcome.cacheable.region.empty()) continue;
    // Completeness of whatever was claimed.
    for (const spatial::Poi& p : f.system->pois()) {
      if (!outcome.cacheable.region.Contains(p.pos)) continue;
      EXPECT_TRUE(std::any_of(
          outcome.cacheable.pois.begin(), outcome.cacheable.pois.end(),
          [&p](const spatial::Poi& c) { return c.id == p.id; }))
          << "trial " << trial;
    }
  }
}

TEST(SbnnTest, KGreaterThanDatabase) {
  Fixture f(4);
  SbnnOptions options;
  options.k = 10;
  const SbnnOutcome outcome =
      RunSbnn({10.0, 10.0}, options, {}, f.poi_density, *f.system, 0);
  EXPECT_EQ(outcome.resolved_by, ResolvedBy::kBroadcast);
  EXPECT_EQ(outcome.neighbors.size(), 4u);
}

}  // namespace
}  // namespace lbsq::core
