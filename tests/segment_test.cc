#include "geom/segment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace lbsq::geom {
namespace {

TEST(SegmentTest, Length) {
  const Segment s{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(s.Length(), 5.0);
}

TEST(SegmentTest, DegenerateSegmentIsAPoint) {
  const Segment s{{2.0, 2.0}, {2.0, 2.0}};
  EXPECT_EQ(s.Length(), 0.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo({5.0, 6.0}), 5.0);
}

TEST(SegmentTest, DistancePerpendicularFoot) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.DistanceTo({5.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo({5.0, -3.0}), 3.0);
}

TEST(SegmentTest, DistanceClampsToEndpoints) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.DistanceTo({-3.0, 4.0}), 5.0);   // before a
  EXPECT_DOUBLE_EQ(s.DistanceTo({13.0, -4.0}), 5.0);  // past b
}

TEST(SegmentTest, PointOnSegmentIsZero) {
  const Segment s{{1.0, 1.0}, {5.0, 5.0}};
  EXPECT_DOUBLE_EQ(s.DistanceTo({3.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo({1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo({5.0, 5.0}), 0.0);
}

TEST(SegmentTest, MatchesBruteForceSampling) {
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const Segment s{{rng.Uniform(-5.0, 5.0), rng.Uniform(-5.0, 5.0)},
                    {rng.Uniform(-5.0, 5.0), rng.Uniform(-5.0, 5.0)}};
    const Point p{rng.Uniform(-8.0, 8.0), rng.Uniform(-8.0, 8.0)};
    // Brute force: dense parameter sampling.
    double best = 1e18;
    for (int i = 0; i <= 2000; ++i) {
      const double t = static_cast<double>(i) / 2000.0;
      best = std::min(best, Distance(p, s.a + (s.b - s.a) * t));
    }
    EXPECT_NEAR(s.DistanceTo(p), best, 1e-3);
    EXPECT_LE(s.DistanceTo(p), best + 1e-12);  // exact <= sampled
  }
}

TEST(SegmentTest, SymmetricInEndpoints) {
  Rng rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    const Point a{rng.Uniform(-5.0, 5.0), rng.Uniform(-5.0, 5.0)};
    const Point b{rng.Uniform(-5.0, 5.0), rng.Uniform(-5.0, 5.0)};
    const Point p{rng.Uniform(-8.0, 8.0), rng.Uniform(-8.0, 8.0)};
    const Segment forward{a, b};
    const Segment backward{b, a};
    // Symmetric up to floating-point rounding of the projection parameter.
    EXPECT_NEAR(forward.DistanceTo(p), backward.DistanceTo(p), 1e-12);
  }
}

}  // namespace
}  // namespace lbsq::geom
