// lbsq_load: deterministic workload replay against a running lbsq_server.
//
// Regenerates the simulator's query workload (same RNG streams, same
// mobility, same arrivals) from the flags, replays the measured events
// over binary client sessions, and reports throughput (sessions/sec,
// queries/sec), latency percentiles, and the simulator-compatible answer
// digest — directly diffable against `lbsq_sim --no-approximate` with the
// same dataset/workload flags and seed.
//
// Examples:
//   lbsq_load --port=4750 --connections=4 --pipeline=16
//   lbsq_load --port=4750 --expect-digest=5b3f... # digest gate
//   lbsq_load --port=4750 --overload --min-retries=1  # backpressure gate
//   lbsq_load --port=4750 --out=BENCH_server.json --baseline=...
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/load_gen.h"
#include "sim/config.h"

namespace {

void PrintUsage() {
  std::printf(
      "lbsq_load: workload replay and load generator for lbsq_server\n"
      "\n"
      "Connection:\n"
      "  --port=<n>                       server port (required)\n"
      "  --connections=<n>                concurrent sessions (1)\n"
      "  --pipeline=<n>                   outstanding queries/session (16)\n"
      "  --session-queries=<n>            queries per session before "
      "reconnect (256)\n"
      "  --overload                       resend on RETRY_AFTER without "
      "backoff\n"
      "  --min-version=<n> --max-version=<n>  protocol range (1..2)\n"
      "\n"
      "Workload (must match the lbsq_server dataset flags):\n"
      "  --params=la|suburbia|riverside   Table 3 parameter set (la)\n"
      "  --query=knn|window|mixed         query type (knn)\n"
      "  --world=<miles>                  world side (3.0)\n"
      "  --warmup=<min> --duration=<min>  periods (45 / 30)\n"
      "  --seed=<n>                       RNG seed (1)\n"
      "  --k=<n>                          kNN k (parameter set default)\n"
      "  --window-pct=<p>                 window size, %% of space\n"
      "\n"
      "Checks and reporting:\n"
      "  --expect-digest=<hex>            fail unless the digest matches\n"
      "  --min-retries=<n>                fail unless >= n RETRY_AFTER "
      "frames arrived\n"
      "  --out=<file>                     write BENCH_server.json-style "
      "results\n"
      "  --baseline=<file>                fail unless the digest equals the "
      "baseline's\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

bool ReadJsonString(const std::string& path, const std::string& key,
                    std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  const std::string needle = "\"" + key + "\": \"";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const size_t start = pos + needle.size();
  const size_t end = text.find('"', start);
  if (end == std::string::npos) return false;
  *out = text.substr(start, end - start);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsq;

  sim::SimConfig config;
  config.params = sim::LosAngelesCity();
  config.world_side_mi = 3.0;
  config.warmup_min = 45.0;
  config.duration_min = 30.0;
  server::LoadOptions options;
  std::string expect_digest;
  std::string out_path;
  std::string baseline_path;
  int64_t min_retries = -1;
  bool have_port = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* arg = argv[i];
    if (ParseFlag(arg, "--help", &value)) {
      PrintUsage();
      return 0;
    } else if (ParseFlag(arg, "--port", &value)) {
      options.port = static_cast<uint16_t>(std::atoi(value.c_str()));
      have_port = true;
    } else if (ParseFlag(arg, "--connections", &value)) {
      options.connections = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--pipeline", &value)) {
      options.pipeline = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--session-queries", &value)) {
      options.queries_per_session = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--overload", &value)) {
      options.overload = true;
    } else if (ParseFlag(arg, "--min-version", &value)) {
      options.min_version = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "--max-version", &value)) {
      options.max_version = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "--params", &value)) {
      if (value == "la") {
        config.params = sim::LosAngelesCity();
      } else if (value == "suburbia") {
        config.params = sim::SyntheticSuburbia();
      } else if (value == "riverside") {
        config.params = sim::RiversideCounty();
      } else {
        std::fprintf(stderr, "unknown --params value: %s\n", value.c_str());
        return 1;
      }
    } else if (ParseFlag(arg, "--query", &value)) {
      if (value == "knn") {
        config.query_type = sim::QueryType::kKnn;
      } else if (value == "window") {
        config.query_type = sim::QueryType::kWindow;
      } else if (value == "mixed") {
        config.query_type = sim::QueryType::kMixed;
      } else {
        std::fprintf(stderr, "unknown --query value: %s\n", value.c_str());
        return 1;
      }
    } else if (ParseFlag(arg, "--world", &value)) {
      config.world_side_mi = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--warmup", &value)) {
      config.warmup_min = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--duration", &value)) {
      config.duration_min = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--seed", &value)) {
      config.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "--k", &value)) {
      config.params.knn_k = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--window-pct", &value)) {
      config.params.window_pct = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--expect-digest", &value)) {
      expect_digest = value;
    } else if (ParseFlag(arg, "--min-retries", &value)) {
      min_retries = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--out", &value)) {
      out_path = value;
    } else if (ParseFlag(arg, "--baseline", &value)) {
      baseline_path = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      PrintUsage();
      return 1;
    }
  }
  if (!have_port) {
    std::fprintf(stderr, "FATAL: --port is required\n");
    PrintUsage();
    return 1;
  }

  const server::LoadResult result = server::ReplayWorkload(config, options);
  if (!result.ok) {
    std::fprintf(stderr, "FATAL: replay failed: %s\n", result.error.c_str());
    return 1;
  }

  char digest_hex[17];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016" PRIx64, result.digest);
  std::printf(
      "queries                 : %lld\n"
      "sessions                : %lld\n"
      "elapsed                 : %.3f s\n"
      "sessions/sec            : %.1f\n"
      "queries/sec             : %.1f\n"
      "latency p50/p95/p99     : %.1f / %.1f / %.1f us\n"
      "retry-after received    : %lld\n"
      "answer digest           : %s\n",
      static_cast<long long>(result.queries),
      static_cast<long long>(result.sessions), result.elapsed_s,
      result.sessions_per_sec, result.queries_per_sec, result.p50_us,
      result.p95_us, result.p99_us,
      static_cast<long long>(result.retries_received), digest_hex);

  bool failed = false;
  if (!expect_digest.empty() && expect_digest != digest_hex) {
    std::fprintf(stderr, "FAIL: digest %s != expected %s\n", digest_hex,
                 expect_digest.c_str());
    failed = true;
  }
  if (min_retries >= 0 && result.retries_received < min_retries) {
    std::fprintf(stderr,
                 "FAIL: %lld RETRY_AFTER frames received, expected >= %lld "
                 "(backpressure not observed)\n",
                 static_cast<long long>(result.retries_received),
                 static_cast<long long>(min_retries));
    failed = true;
  }
  if (!baseline_path.empty()) {
    // The digest is the machine-independent field: equality vs the checked-
    // in baseline is the gate. Throughput and latency are recorded for
    // humans, never gated (they measure the CI machine, not the code).
    std::string baseline_digest;
    if (!ReadJsonString(baseline_path, "digest", &baseline_digest)) {
      std::fprintf(stderr, "FAIL: no usable \"digest\" in baseline %s\n",
                   baseline_path.c_str());
      failed = true;
    } else if (baseline_digest != digest_hex) {
      std::fprintf(stderr, "FAIL: digest %s != baseline %s\n", digest_hex,
                   baseline_digest.c_str());
      failed = true;
    } else {
      std::printf("baseline digest match   : ok\n");
    }
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"lbsq_load\",\n"
        "  \"workload\": {\n"
        "    \"world_side_mi\": %.1f,\n"
        "    \"warmup_min\": %.1f,\n"
        "    \"duration_min\": %.1f,\n"
        "    \"seed\": %llu,\n"
        "    \"connections\": %d,\n"
        "    \"pipeline\": %d\n"
        "  },\n"
        "  \"digest\": \"%s\",\n"
        "  \"queries\": %lld,\n"
        "  \"sessions\": %lld,\n"
        "  \"sessions_per_sec\": %.1f,\n"
        "  \"queries_per_sec\": %.1f,\n"
        "  \"p50_us\": %.1f,\n"
        "  \"p95_us\": %.1f,\n"
        "  \"p99_us\": %.1f,\n"
        "  \"retry_after_received\": %lld\n"
        "}\n",
        config.world_side_mi, config.warmup_min, config.duration_min,
        static_cast<unsigned long long>(config.seed), options.connections,
        options.pipeline, digest_hex, static_cast<long long>(result.queries),
        static_cast<long long>(result.sessions), result.sessions_per_sec,
        result.queries_per_sec, result.p50_us, result.p95_us, result.p99_us,
        static_cast<long long>(result.retries_received));
    std::fclose(f);
    std::printf("results written to %s\n", out_path.c_str());
  }

  return failed ? 1 : 0;
}
