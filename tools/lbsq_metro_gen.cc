// lbsq_metro_gen — metro-scale workload generator and sharding smoke driver.
//
// The paper's Table 3 worlds top out at a few thousand POIs — a single
// broadcast channel carries them comfortably. This tool generates a
// metropolitan-scale POI database (default one million points: downtown
// clusters over a uniform background), partitions it into Hilbert-range
// shards, and runs a mixed kNN/window query batch end-to-end through
// core::ShardedQueryEngine, printing shard occupancy, per-channel cycle
// lengths, and query throughput. It is the quickest way to see why the
// sharded deployment exists: rerun with --shards=1 and watch the access
// latency track the (enormous) single-channel cycle.
//
// Examples:
//   lbsq_metro_gen                         # 1M POIs, 16 shards
//   lbsq_metro_gen --pois=2000000 --shards=64
//   lbsq_metro_gen --shards=1 --queries=200   # single-channel comparison
//
// The answer plane is shard-count invariant; tests/sharded_engine_test.cc
// holds the engine to that bit-for-bit, and bench/bench_shard_scale.cc
// gates the zero-allocation guarantee this driver relies on.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "broadcast/system.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/sharded_query_engine.h"
#include "geom/rect.h"
#include "spatial/generators.h"

namespace {

using namespace lbsq;

struct Options {
  int64_t pois = 1'000'000;
  int shards = 16;
  double clustered_fraction = 0.6;
  int clusters = 80;
  double spread_mi = 0.5;
  double world_side_mi = 40.0;
  int hilbert_order = 9;
  int queries = 20'000;
  double knn_fraction = 0.7;
  int k = 5;
  double window_pct = 0.05;
  uint64_t seed = 1;
};

void PrintUsage() {
  std::printf(
      "usage: lbsq_metro_gen [options]\n"
      "  --pois=<n>            POI count (1000000)\n"
      "  --shards=<n>          Hilbert-range shards / channels (16)\n"
      "  --clustered-frac=<f>  fraction drawn from downtown clusters (0.6)\n"
      "  --clusters=<n>        downtown cluster cores (80)\n"
      "  --spread=<mi>         cluster standard deviation (0.5)\n"
      "  --world=<mi>          world side (40)\n"
      "  --order=<n>           Hilbert curve order (9)\n"
      "  --queries=<n>         query batch size (20000)\n"
      "  --knn-frac=<f>        kNN share of the mix (0.7)\n"
      "  --k=<n>               kNN k (5)\n"
      "  --window-pct=<p>      window area, %% of the world (0.05)\n"
      "  --seed=<n>            RNG seed (1)\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* arg = argv[i];
    if (ParseFlag(arg, "--pois", &value)) {
      opt.pois = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--shards", &value)) {
      opt.shards = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--clustered-frac", &value)) {
      opt.clustered_fraction = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--clusters", &value)) {
      opt.clusters = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--spread", &value)) {
      opt.spread_mi = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--world", &value)) {
      opt.world_side_mi = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--order", &value)) {
      opt.hilbert_order = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--queries", &value)) {
      opt.queries = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--knn-frac", &value)) {
      opt.knn_fraction = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--k", &value)) {
      opt.k = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--window-pct", &value)) {
      opt.window_pct = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--seed", &value)) {
      opt.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      PrintUsage();
      return 2;
    }
  }
  if (opt.pois < 1 || opt.shards < 1 || opt.queries < 1 || opt.k < 1 ||
      opt.world_side_mi <= 0.0 || opt.hilbert_order < 1) {
    std::fprintf(stderr, "invalid option values\n");
    return 2;
  }

  const geom::Rect world{0.0, 0.0, opt.world_side_mi, opt.world_side_mi};

  // 1. Generate the metro POI database.
  double t0 = Now();
  Rng rng(opt.seed);
  std::vector<spatial::Poi> pois = spatial::GenerateMetroPois(
      &rng, world, opt.pois, opt.clustered_fraction, opt.clusters,
      opt.spread_mi);
  const double gen_s = Now() - t0;
  std::printf("generated      : %lld POIs (%.0f%% clustered over %d cores, "
              "rest uniform) in %.2f s\n",
              static_cast<long long>(pois.size()),
              opt.clustered_fraction * 100.0, opt.clusters, gen_s);

  // 2. Build the sharded deployment.
  broadcast::BroadcastParams params;
  params.hilbert_order = opt.hilbert_order;
  core::EngineOptions options;
  options.sbnn.k = opt.k;
  t0 = Now();
  core::ShardedQueryEngine engine(std::move(pois), world, params, options,
                                  opt.shards);
  const double build_s = Now() - t0;

  size_t min_occ = SIZE_MAX, max_occ = 0;
  int64_t min_cycle = INT64_MAX, max_cycle = 0;
  int nonempty = 0;
  for (int s = 0; s < engine.num_shards(); ++s) {
    const broadcast::BroadcastSystem* sys = engine.shard_system(s);
    if (sys == nullptr) continue;
    ++nonempty;
    min_occ = std::min(min_occ, engine.shard_poi_count(s));
    max_occ = std::max(max_occ, engine.shard_poi_count(s));
    const int64_t cycle = sys->schedule().cycle_length();
    min_cycle = std::min(min_cycle, cycle);
    max_cycle = std::max(max_cycle, cycle);
  }
  std::printf("sharded build  : %d shard%s (%d non-empty) in %.2f s\n",
              engine.num_shards(), engine.num_shards() == 1 ? "" : "s",
              nonempty, build_s);
  std::printf("occupancy      : %zu..%zu POIs/shard (balanced Hilbert "
              "ranges)\n", min_occ, max_occ);
  std::printf("channel cycles : %lld..%lld slots\n",
              static_cast<long long>(min_cycle),
              static_cast<long long>(max_cycle));

  // 3. A mixed peerless query batch around the cluster cores.
  const double window_side =
      opt.world_side_mi * std::sqrt(opt.window_pct / 100.0);
  std::vector<core::QueryRequest> requests;
  requests.reserve(static_cast<size_t>(opt.queries));
  Rng qrng(opt.seed ^ 0x9e3779b97f4a7c15ull);
  for (int i = 0; i < opt.queries; ++i) {
    const geom::Point q{qrng.Uniform(world.x1, world.x2),
                        qrng.Uniform(world.y1, world.y2)};
    core::QueryRequest r;
    if (qrng.NextBool(opt.knn_fraction)) {
      r.kind = core::QueryKind::kKnn;
      r.position = q;
      r.k = opt.k;
    } else {
      r.kind = core::QueryKind::kWindow;
      r.window = geom::Rect::CenteredSquare(q, window_side);
    }
    r.slot = static_cast<int64_t>(qrng.NextBelow(
        static_cast<uint64_t>(std::max<int64_t>(1, max_cycle))));
    requests.push_back(r);
  }

  // 4. Execute: one warm-up pass grows the workspace, the second measures.
  core::ShardedQueryWorkspace workspace;
  engine.ExecuteBatch(requests, workspace);
  t0 = Now();
  std::span<const core::QueryOutcome> outcomes =
      engine.ExecuteBatch(requests, workspace);
  const double run_s = Now() - t0;

  double latency_sum = 0.0, tuning_sum = 0.0;
  int64_t broadcast_queries = 0;
  for (const core::QueryOutcome& outcome : outcomes) {
    const core::QueryResultCommon& common =
        outcome.knn ? static_cast<const core::QueryResultCommon&>(*outcome.knn)
                    : *outcome.window;
    if (common.stats.access_latency > 0) {
      ++broadcast_queries;
      latency_sum += static_cast<double>(common.stats.access_latency);
      tuning_sum += static_cast<double>(common.stats.tuning_time);
    }
  }
  std::printf("executed       : %d queries in %.2f s (%.0f queries/s, warm "
              "workspace)\n", opt.queries, run_s,
              run_s > 0.0 ? opt.queries / run_s : 0.0);
  if (broadcast_queries > 0) {
    std::printf("access latency : %.1f slots (avg over %lld channel queries; "
                "max over queried channels per query)\n",
                latency_sum / static_cast<double>(broadcast_queries),
                static_cast<long long>(broadcast_queries));
    std::printf("tuning time    : %.1f slots (avg; summed over queried "
                "channels per query)\n",
                tuning_sum / static_cast<double>(broadcast_queries));
  }
  return 0;
}
