// lbsq_sim — command-line driver for the end-to-end simulator.
//
// Runs one simulation with the paper's parameter sets and prints the
// resolved-by breakdown plus the latency/tuning accounting. Every knob of
// sim::SimConfig is reachable from the command line; defaults reproduce the
// Los Angeles City kNN setup at bench scale.
//
// Examples:
//   lbsq_sim                                      # LA City, kNN, defaults
//   lbsq_sim --params=riverside --tx=100          # sparse set, 100 m radios
//   lbsq_sim --query=window --paper-window-geometry
//   lbsq_sim --mobility=manhattan --hops=2 --seed=9
//   lbsq_sim --threads=8                          # parallel engine, 8 workers
//
// --threads selects the epoch-based parallel engine, which is bitwise
// deterministic across thread counts: --threads=8 prints exactly the
// numbers --threads=1 does, only faster.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/config.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"

namespace {

using namespace lbsq;

void PrintUsage() {
  std::printf(
      "usage: lbsq_sim [options]\n"
      "  --params=la|suburbia|riverside   Table 3 parameter set (la)\n"
      "  --query=knn|window               query type (knn)\n"
      "  --world=<miles>                  world side (3.0; 20 = full scale)\n"
      "  --warmup=<min> --duration=<min>  run lengths (45 / 30)\n"
      "  --tx=<meters>                    transmission range override\n"
      "  --csize=<pois>                   cache capacity override\n"
      "  --k=<mean>                       mean kNN k override\n"
      "  --window-pct=<pct>               mean window size override\n"
      "  --mobility=waypoint|manhattan    mobility model (waypoint)\n"
      "  --hops=<n>                       peer-discovery hops (1)\n"
      "  --policy=sound|collective        cache overflow policy (sound)\n"
      "  --paper-window-geometry          hold the paper's absolute window\n"
      "                                   geometry in scaled worlds\n"
      "  --no-filtering                   disable \xc2\xa73.3.3 data filtering\n"
      "  --no-approximate                 reject approximate kNN answers\n"
      "  --index=flat|tree                air-index organization (flat)\n"
      "  --check                          oracle-check every answer (slow)\n"
      "  --save-trace=<path>              record the workload to a file\n"
      "  --replay-trace=<path>            replay a recorded workload\n"
      "  --threads=<n>                    worker threads; any n > 1 selects\n"
      "                                   the parallel engine, whose metrics\n"
      "                                   are bitwise identical at every n\n"
      "  --epoch=<events>                 events per parallel epoch (32);\n"
      "                                   1 = sequential-engine semantics\n"
      "  --seed=<n>                       RNG seed (1)\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SimConfig config;
  config.params = sim::LosAngelesCity();
  config.world_side_mi = 3.0;
  config.warmup_min = 45.0;
  config.duration_min = 30.0;
  std::string save_trace_path;
  std::string replay_trace_path;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* arg = argv[i];
    if (ParseFlag(arg, "--params", &value)) {
      if (value == "la") {
        config.params = sim::LosAngelesCity();
      } else if (value == "suburbia") {
        config.params = sim::SyntheticSuburbia();
      } else if (value == "riverside") {
        config.params = sim::RiversideCounty();
      } else {
        std::fprintf(stderr, "unknown parameter set '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--query", &value)) {
      if (value == "knn") {
        config.query_type = sim::QueryType::kKnn;
      } else if (value == "window") {
        config.query_type = sim::QueryType::kWindow;
      } else {
        std::fprintf(stderr, "unknown query type '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--world", &value)) {
      config.world_side_mi = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--warmup", &value)) {
      config.warmup_min = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--duration", &value)) {
      config.duration_min = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--tx", &value)) {
      config.params.tx_range_m = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--csize", &value)) {
      config.params.csize = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--k", &value)) {
      config.params.knn_k = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--window-pct", &value)) {
      config.params.window_pct = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--mobility", &value)) {
      if (value == "waypoint") {
        config.mobility = sim::MobilityType::kRandomWaypoint;
      } else if (value == "manhattan") {
        config.mobility = sim::MobilityType::kManhattanGrid;
      } else {
        std::fprintf(stderr, "unknown mobility model '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--hops", &value)) {
      config.p2p_hops = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--policy", &value)) {
      if (value == "sound") {
        config.cache_policy = core::CachePolicy::kSoundShrink;
      } else if (value == "collective") {
        config.cache_policy = core::CachePolicy::kCollectiveMbr;
      } else {
        std::fprintf(stderr, "unknown cache policy '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--paper-window-geometry", &value)) {
      config.paper_window_geometry = true;
    } else if (ParseFlag(arg, "--no-filtering", &value)) {
      config.use_filtering = false;
    } else if (ParseFlag(arg, "--no-approximate", &value)) {
      config.accept_approximate = false;
    } else if (ParseFlag(arg, "--check", &value)) {
      config.check_answers = true;
      config.check_cache_invariant = true;
    } else if (ParseFlag(arg, "--index", &value)) {
      if (value == "flat") {
        config.broadcast.index_kind = broadcast::IndexKind::kFlat;
      } else if (value == "tree") {
        config.broadcast.index_kind = broadcast::IndexKind::kTree;
      } else {
        std::fprintf(stderr, "unknown index kind '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--save-trace", &value)) {
      save_trace_path = value;
      config.record_trace = true;
    } else if (ParseFlag(arg, "--replay-trace", &value)) {
      replay_trace_path = value;
    } else if (ParseFlag(arg, "--threads", &value)) {
      config.threads = std::atoi(value.c_str());
      if (config.threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
    } else if (ParseFlag(arg, "--epoch", &value)) {
      config.events_per_epoch = std::atoi(value.c_str());
      if (config.events_per_epoch < 1) {
        std::fprintf(stderr, "--epoch must be >= 1\n");
        return 2;
      }
    } else if (ParseFlag(arg, "--seed", &value)) {
      config.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      PrintUsage();
      return 2;
    }
  }

  std::printf("parameter set : %s\n", config.params.name.c_str());
  std::printf("query type    : %s\n",
              config.query_type == sim::QueryType::kKnn ? "kNN" : "window");
  std::printf("world         : %.1f x %.1f mi (%lld hosts, %lld POIs, "
              "%.1f queries/min)\n",
              config.world_side_mi, config.world_side_mi,
              static_cast<long long>(config.ScaledMhCount()),
              static_cast<long long>(config.ScaledPoiCount()),
              config.ScaledQueriesPerMin());
  std::printf("tx range      : %.0f m; CSize %d; k %.0f; window %.0f%%\n",
              config.params.tx_range_m, config.params.csize,
              config.params.knn_k, config.params.window_pct);
  std::printf("engine        : %d thread%s, %d events/epoch "
              "(metrics independent of thread count)\n\n",
              config.threads, config.threads == 1 ? "" : "s",
              config.events_per_epoch);

  sim::ParallelSimulator simulator(config);
  sim::SimMetrics m;
  const auto start = std::chrono::steady_clock::now();
  if (!replay_trace_path.empty()) {
    std::vector<sim::QueryEvent> events;
    if (!sim::LoadTrace(replay_trace_path, &events)) {
      std::fprintf(stderr, "failed to load trace '%s'\n",
                   replay_trace_path.c_str());
      return 1;
    }
    std::printf("replaying %zu recorded events\n\n", events.size());
    m = simulator.Replay(events);
  } else {
    m = simulator.Run();
    if (!save_trace_path.empty()) {
      if (!sim::SaveTrace(save_trace_path, simulator.trace())) {
        std::fprintf(stderr, "failed to save trace '%s'\n",
                     save_trace_path.c_str());
        return 1;
      }
      std::printf("recorded %zu events to %s\n", simulator.trace().size(),
                  save_trace_path.c_str());
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("wall time               : %.2f s (%.0f queries/s)\n", seconds,
              seconds > 0.0 ? static_cast<double>(m.queries) / seconds : 0.0);
  std::printf("measured queries        : %lld\n",
              static_cast<long long>(m.queries));
  std::printf("resolved by sharing     : %.1f%% verified, %.1f%% approximate\n",
              m.PctVerified(), m.PctApproximate());
  std::printf("resolved by broadcast   : %.1f%%\n", m.PctBroadcast());
  std::printf("answer errors           : %.2f%%\n", m.PctAnswerErrors());
  std::printf("peers per query         : %.1f (avg)\n",
              m.peers_per_query.mean());
  std::printf("broadcast latency       : %.1f slots (avg over channel "
              "queries)\n", m.broadcast_latency.mean());
  std::printf("latency, all queries    : %.1f slots (peer hits count as 0)\n",
              m.MeanLatencyAllQueries());
  std::printf("pure on-air baseline    : %.1f slots\n",
              m.baseline_latency.mean());
  std::printf("broadcast tuning        : %.1f slots (avg)\n",
              m.broadcast_tuning.mean());
  if (config.query_type == sim::QueryType::kWindow) {
    std::printf("residual window fraction: %.1f%%\n",
                m.residual_fraction.mean() * 100.0);
  }
  return 0;
}
