// lbsq_sim — command-line driver for the end-to-end simulator.
//
// Runs one simulation with the paper's parameter sets and prints the
// resolved-by breakdown plus the latency/tuning accounting. Every knob of
// sim::SimConfig is reachable from the command line; defaults reproduce the
// Los Angeles City kNN setup at bench scale.
//
// Examples:
//   lbsq_sim                                      # LA City, kNN, defaults
//   lbsq_sim --params=riverside --tx=100          # sparse set, 100 m radios
//   lbsq_sim --query=window --paper-window-geometry
//   lbsq_sim --mobility=manhattan --hops=2 --seed=9
//   lbsq_sim --threads=8                          # parallel engine, 8 workers
//
// --threads selects the epoch-based parallel engine, which is bitwise
// deterministic across thread counts: --threads=8 prints exactly the
// numbers --threads=1 does, only faster.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/observability.h"
#include "sim/config.h"
#include "sim/dataset.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"

namespace {

using namespace lbsq;

/// Distributions the simulation can record (--hist accepts any subset).
constexpr const char* kKnownHistograms[] = {
    "access_latency", "tuning_time",       "access_latency_all",
    "buckets_read",   "buckets_skipped",   "baseline_latency",
    "residual_fraction", "peers_per_query",
};

/// Splits a comma-separated --hist value into names, rejecting unknowns.
bool ParseHistogramList(const std::string& value,
                        std::vector<std::string>* names) {
  size_t begin = 0;
  while (begin <= value.size()) {
    size_t end = value.find(',', begin);
    if (end == std::string::npos) end = value.size();
    const std::string name = value.substr(begin, end - begin);
    if (!name.empty()) {
      bool known = false;
      for (const char* candidate : kKnownHistograms) {
        if (name == candidate) known = true;
      }
      if (!known) {
        std::fprintf(stderr, "unknown histogram '%s'; known names:",
                     name.c_str());
        for (const char* candidate : kKnownHistograms) {
          std::fprintf(stderr, " %s", candidate);
        }
        std::fprintf(stderr, "\n");
        return false;
      }
      names->push_back(name);
    }
    begin = end + 1;
  }
  return true;
}

/// Registers `name` with a bucket range sized from the broadcast cycle
/// (latency-like metrics live in [0, cycle]; fractions in [0, 1]).
void RegisterHistogram(MetricsRegistry* registry, const std::string& name,
                       int64_t cycle_length) {
  const double cycle = static_cast<double>(cycle_length);
  if (name == "residual_fraction") {
    registry->AddHistogram(name, 0.0, 1.0, 50);
  } else if (name == "peers_per_query") {
    registry->AddHistogram(name, 0.0, 256.0, 64);
  } else if (name == "access_latency" || name == "access_latency_all" ||
             name == "baseline_latency") {
    // Access latency can exceed one cycle (miss the index, wait for the
    // next); anything beyond two lands in the overflow bucket.
    registry->AddHistogram(name, 0.0, 2.0 * cycle, 64);
  } else {
    registry->AddHistogram(name, 0.0, cycle, 64);
  }
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool closed = std::fclose(file) == 0;
  return written == content.size() && closed;
}

void PrintUsage() {
  std::printf(
      "usage: lbsq_sim [options]\n"
      "dataset flags (shared with lbsq_server / lbsq_store_build):\n"
      "%s"
      "other options:\n"
      "  --query=knn|window               query type (knn)\n"
      "  --warmup=<min> --duration=<min>  run lengths (45 / 30)\n"
      "  --mobility=waypoint|manhattan    mobility model (waypoint)\n",
      sim::DatasetFlagsHelp());
  std::printf(
      "  --hops=<n>                       peer-discovery hops (1)\n"
      "  --policy=sound|collective        cache overflow policy (sound)\n"
      "  --paper-window-geometry          hold the paper's absolute window\n"
      "                                   geometry in scaled worlds\n"
      "  --no-approximate                 reject approximate kNN answers\n"
      "  --index=flat|tree                air-index organization (flat)\n"
      "  --check                          oracle-check every answer (slow)\n"
      "  --save-trace=<path>              record the workload to a file\n"
      "  --replay-trace=<path>            replay a recorded workload\n"
      "  --trace=<path>                   write per-query span/counter\n"
      "                                   events as JSONL (byte-identical\n"
      "                                   at every thread count)\n"
      "  --metrics=<path>                 write run metrics; .csv suffix\n"
      "                                   selects CSV, anything else JSON\n"
      "  --hist=<name,...>                distributions to record\n"
      "                                   (access_latency,tuning_time)\n"
      "  --threads=<n>                    worker threads; any n > 1 selects\n"
      "                                   the parallel engine, whose metrics\n"
      "                                   are bitwise identical at every n\n"
      "  --epoch=<events>                 events per parallel epoch (32);\n"
      "                                   1 = sequential-engine semantics\n"
      "fault injection (all off by default; off = byte-identical output):\n"
      "  --fault-loss=<p>                 iid reception loss probability\n"
      "  --fault-burst-loss=<p>           Gilbert-Elliott bad-state loss\n"
      "                                   probability (selects burst model)\n"
      "  --fault-burst-len=<slots>        mean burst length (10)\n"
      "  --fault-burst-frac=<f>           long-run fraction of slots spent\n"
      "                                   in the bad state (0.1)\n"
      "  --fault-corrupt=<p>              CRC-detected corruption probability\n"
      "  --fault-retries=<n>              per-bucket retry budget (32)\n"
      "  --fault-deadline=<slots>         per-query deadline (0 = unlimited)\n"
      "  --fault-peer-stale=<p>           stale shared-region probability\n"
      "  --fault-peer-truncate=<p>        truncated shared-region probability\n"
      "  --fault-peer-flip=<p>            coordinate-flip probability\n"
      "  --fault-screen                   cross-check and reject inconsistent\n"
      "                                   peer regions before each query\n"
      "  --fault-seed=<n>                 fault stream seed (1)\n"
      "\n"
      "dynamic world (off by default; off = byte-identical output):\n"
      "  --update-interval-events=<n>     apply a POI update batch every n\n"
      "                                   query events (0 = static world)\n"
      "  --update-inserts=<n>             POI inserts per batch (2)\n"
      "  --update-deletes=<n>             POI deletes per batch (1)\n"
      "  --update-moves=<n>               POI moves per batch (2)\n"
      "  --update-move-radius=<mi>        max per-axis move distance (0.25)\n"
      "  --update-full-rebuild            publish epochs via cold full\n"
      "                                   rebuilds instead of the diff-aware\n"
      "                                   incremental patch (reference side\n"
      "                                   of the incremental-vs-full diff)\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  sim::DatasetSpec spec;
  sim::SimConfig config;
  config.warmup_min = 45.0;
  config.duration_min = 30.0;
  std::string save_trace_path;
  std::string replay_trace_path;
  std::string trace_path;
  std::string metrics_path;
  std::string hist_value = "access_latency,tuning_time";
  bool burst = false;
  double burst_len = 10.0;
  double burst_frac = 0.1;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* arg = argv[i];
    std::string spec_error;
    switch (sim::ParseDatasetFlag(arg, &spec, &spec_error)) {
      case sim::DatasetFlagResult::kParsed:
        continue;
      case sim::DatasetFlagResult::kError:
        std::fprintf(stderr, "%s\n", spec_error.c_str());
        return 2;
      case sim::DatasetFlagResult::kNotDatasetFlag:
        break;
    }
    if (ParseFlag(arg, "--query", &value)) {
      if (value == "knn") {
        config.query_type = sim::QueryType::kKnn;
      } else if (value == "window") {
        config.query_type = sim::QueryType::kWindow;
      } else {
        std::fprintf(stderr, "unknown query type '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--warmup", &value)) {
      config.warmup_min = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--duration", &value)) {
      config.duration_min = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--mobility", &value)) {
      if (value == "waypoint") {
        config.mobility = sim::MobilityType::kRandomWaypoint;
      } else if (value == "manhattan") {
        config.mobility = sim::MobilityType::kManhattanGrid;
      } else {
        std::fprintf(stderr, "unknown mobility model '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--hops", &value)) {
      config.p2p_hops = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--policy", &value)) {
      if (value == "sound") {
        config.cache_policy = core::CachePolicy::kSoundShrink;
      } else if (value == "collective") {
        config.cache_policy = core::CachePolicy::kCollectiveMbr;
      } else {
        std::fprintf(stderr, "unknown cache policy '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--paper-window-geometry", &value)) {
      config.paper_window_geometry = true;
    } else if (ParseFlag(arg, "--no-approximate", &value)) {
      config.accept_approximate = false;
    } else if (ParseFlag(arg, "--check", &value)) {
      config.check_answers = true;
      config.check_cache_invariant = true;
    } else if (ParseFlag(arg, "--index", &value)) {
      if (value == "flat") {
        config.broadcast.index_kind = broadcast::IndexKind::kFlat;
      } else if (value == "tree") {
        config.broadcast.index_kind = broadcast::IndexKind::kTree;
      } else {
        std::fprintf(stderr, "unknown index kind '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--save-trace", &value)) {
      save_trace_path = value;
      config.record_trace = true;
    } else if (ParseFlag(arg, "--replay-trace", &value)) {
      replay_trace_path = value;
    } else if (ParseFlag(arg, "--trace", &value)) {
      trace_path = value;
    } else if (ParseFlag(arg, "--metrics", &value)) {
      metrics_path = value;
    } else if (ParseFlag(arg, "--hist", &value)) {
      hist_value = value;
    } else if (ParseFlag(arg, "--threads", &value)) {
      config.threads = std::atoi(value.c_str());
      if (config.threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
    } else if (ParseFlag(arg, "--epoch", &value)) {
      config.events_per_epoch = std::atoi(value.c_str());
      if (config.events_per_epoch < 1) {
        std::fprintf(stderr, "--epoch must be >= 1\n");
        return 2;
      }
    } else if (ParseFlag(arg, "--fault-loss", &value)) {
      config.fault.channel.model = fault::LossModel::kIid;
      config.fault.channel.loss_prob = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-burst-loss", &value)) {
      burst = true;
      config.fault.channel.loss_bad = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-burst-len", &value)) {
      burst = true;
      burst_len = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-burst-frac", &value)) {
      burst = true;
      burst_frac = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-corrupt", &value)) {
      config.fault.channel.corruption_prob = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-retries", &value)) {
      config.fault.policy.max_retries_per_bucket = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--fault-deadline", &value)) {
      config.fault.policy.deadline_slots = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "--fault-peer-stale", &value)) {
      config.fault.peer.stale_prob = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-peer-truncate", &value)) {
      config.fault.peer.truncate_prob = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-peer-flip", &value)) {
      config.fault.peer.flip_prob = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--fault-screen", &value)) {
      config.fault.screen_peers = true;
    } else if (ParseFlag(arg, "--fault-seed", &value)) {
      config.fault.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "--update-interval-events", &value)) {
      config.updates.interval_events = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--update-inserts", &value)) {
      config.updates.inserts_per_batch = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--update-deletes", &value)) {
      config.updates.deletes_per_batch = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--update-moves", &value)) {
      config.updates.moves_per_batch = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--update-move-radius", &value)) {
      config.updates.move_radius_mi = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--update-full-rebuild", &value)) {
      config.updates.force_full_rebuild = true;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      PrintUsage();
      return 2;
    }
  }

  spec.ApplyTo(&config);

  if (burst) {
    if (burst_len < 1.0 || burst_frac <= 0.0 || burst_frac >= 1.0) {
      std::fprintf(stderr,
                   "--fault-burst-len must be >= 1 and --fault-burst-frac "
                   "in (0, 1)\n");
      return 2;
    }
    config.fault.channel.model = fault::LossModel::kGilbertElliott;
    config.fault.channel.p_bad_to_good = 1.0 / burst_len;
    config.fault.channel.p_good_to_bad =
        burst_frac / (1.0 - burst_frac) / burst_len;
  }

  std::printf("parameter set : %s\n", config.params.name.c_str());
  std::printf("query type    : %s\n",
              config.query_type == sim::QueryType::kKnn ? "kNN" : "window");
  std::printf("world         : %.1f x %.1f mi (%lld hosts, %lld POIs, "
              "%.1f queries/min)\n",
              config.world_side_mi, config.world_side_mi,
              static_cast<long long>(config.ScaledMhCount()),
              static_cast<long long>(config.ScaledPoiCount()),
              config.ScaledQueriesPerMin());
  std::printf("tx range      : %.0f m; CSize %d; k %.0f; window %.0f%%\n",
              config.params.tx_range_m, config.params.csize,
              config.params.knn_k, config.params.window_pct);
  if (config.fault.enabled()) {
    std::printf(
        "faults        : %s loss=%.1f%% corrupt=%.1f%%; retries=%d "
        "deadline=%lld\n"
        "                peer stale/truncate/flip=%.0f%%/%.0f%%/%.0f%% "
        "screen=%s fault-seed=%llu\n",
        config.fault.channel.model == fault::LossModel::kGilbertElliott
            ? "burst"
            : "iid",
        config.fault.channel.SteadyStateLossRate() * 100.0,
        config.fault.channel.corruption_prob * 100.0,
        config.fault.policy.max_retries_per_bucket,
        static_cast<long long>(config.fault.policy.deadline_slots),
        config.fault.peer.stale_prob * 100.0,
        config.fault.peer.truncate_prob * 100.0,
        config.fault.peer.flip_prob * 100.0,
        config.fault.screen_peers ? "on" : "off",
        static_cast<unsigned long long>(config.fault.seed));
  }
  if (config.updates.enabled()) {
    std::printf(
        "updates       : batch every %d events "
        "(%d inserts, %d deletes, %d moves; move radius %.2f mi)\n",
        config.updates.interval_events, config.updates.inserts_per_batch,
        config.updates.deletes_per_batch, config.updates.moves_per_batch,
        config.updates.move_radius_mi);
  }
  if (config.shards > 1) {
    std::printf("shards        : %d Hilbert-range broadcast channels "
                "(latency = max, tuning = sum over queried channels)\n",
                config.shards);
  }
  std::printf("engine        : %d thread%s, %d events/epoch "
              "(metrics independent of thread count)\n\n",
              config.threads, config.threads == 1 ? "" : "s",
              config.events_per_epoch);

  std::vector<std::string> hist_names;
  if (!ParseHistogramList(hist_value, &hist_names)) return 2;

  sim::ParallelSimulator simulator(config);

  obs::TraceSink trace_sink;
  MetricsRegistry registry;
  if (!metrics_path.empty()) {
    // Sharded deployments size latency buckets by the longest channel's
    // cycle (the merged latency is a max over queried channels).
    int64_t cycle = 0;
    if (config.shards > 1) {
      const auto epoch = simulator.sharded_world()->Current();
      for (int s = 0; s < epoch->engine->num_shards(); ++s) {
        const broadcast::BroadcastSystem* sys = epoch->engine->shard_system(s);
        if (sys != nullptr) {
          cycle = std::max(cycle, sys->schedule().cycle_length());
        }
      }
    } else {
      cycle = simulator.system().schedule().cycle_length();
    }
    for (const std::string& name : hist_names) {
      RegisterHistogram(&registry, name, cycle);
    }
  }
  if (!trace_path.empty() || !metrics_path.empty()) {
    simulator.SetObserver(trace_path.empty() ? nullptr : &trace_sink,
                          metrics_path.empty() ? nullptr : &registry);
  }

  sim::SimMetrics m;
  const auto start = std::chrono::steady_clock::now();
  if (!replay_trace_path.empty()) {
    std::vector<sim::QueryEvent> events;
    if (!sim::LoadTrace(replay_trace_path, &events)) {
      std::fprintf(stderr, "failed to load trace '%s'\n",
                   replay_trace_path.c_str());
      return 1;
    }
    std::printf("replaying %zu recorded events\n\n", events.size());
    m = simulator.Replay(events);
  } else {
    m = simulator.Run();
    if (!save_trace_path.empty()) {
      if (!sim::SaveTrace(save_trace_path, simulator.trace())) {
        std::fprintf(stderr, "failed to save trace '%s'\n",
                     save_trace_path.c_str());
        return 1;
      }
      std::printf("recorded %zu events to %s\n", simulator.trace().size(),
                  save_trace_path.c_str());
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("wall time               : %.2f s (%.0f queries/s)\n", seconds,
              seconds > 0.0 ? static_cast<double>(m.queries) / seconds : 0.0);
  std::printf("measured queries        : %lld\n",
              static_cast<long long>(m.queries));
  std::printf("resolved by sharing     : %.1f%% verified, %.1f%% approximate\n",
              m.PctVerified(), m.PctApproximate());
  std::printf("resolved by broadcast   : %.1f%%\n", m.PctBroadcast());
  std::printf("answer errors           : %.2f%%\n", m.PctAnswerErrors());
  std::printf("peers per query         : %.1f (avg)\n",
              m.peers_per_query.mean());
  std::printf("broadcast latency       : %.1f slots (avg over channel "
              "queries)\n", m.broadcast_latency.mean());
  std::printf("latency, all queries    : %.1f slots (peer hits count as 0)\n",
              m.MeanLatencyAllQueries());
  std::printf("pure on-air baseline    : %.1f slots\n",
              m.baseline_latency.mean());
  std::printf("broadcast tuning        : %.1f slots (avg)\n",
              m.broadcast_tuning.mean());
  std::printf("answer digest           : %016llx\n",
              static_cast<unsigned long long>(m.answer_digest));
  if (config.query_type == sim::QueryType::kWindow) {
    std::printf("residual window fraction: %.1f%%\n",
                m.residual_fraction.mean() * 100.0);
  }
  if (config.fault.enabled()) {
    std::printf("degraded queries        : %lld (%.2f%% of measured)\n",
                static_cast<long long>(m.degraded_queries),
                m.queries > 0 ? 100.0 * static_cast<double>(m.degraded_queries) /
                                    static_cast<double>(m.queries)
                              : 0.0);
    std::printf("channel losses          : %lld receptions\n",
                static_cast<long long>(m.fault_losses));
    std::printf("corrupted receptions    : %lld (CRC rejects)\n",
                static_cast<long long>(m.fault_corruptions));
    std::printf("deadline hits           : %lld queries\n",
                static_cast<long long>(m.fault_deadline_hits));
    std::printf("peer regions rejected   : %lld\n",
                static_cast<long long>(m.regions_rejected));
  }
  if (config.updates.enabled()) {
    std::printf("updates applied         : %lld (%lld epochs)\n",
                static_cast<long long>(m.updates_applied),
                static_cast<long long>(m.epochs_published));
    std::printf("peer regions revalidated: %lld (%lld rejected stale)\n",
                static_cast<long long>(m.regions_revalidated),
                static_cast<long long>(m.regions_stale_rejected));
    const dynamic::PublicationStats pub =
        config.shards > 1 ? simulator.sharded_world()->publication_stats()
                          : simulator.versioner().publication_stats();
    std::printf("epoch publication       : %lld incremental, %lld full "
                "fallbacks, %lld shard rebuilds\n",
                static_cast<long long>(pub.epochs_patched),
                static_cast<long long>(pub.full_rebuild_fallbacks),
                static_cast<long long>(pub.shards_rebuilt));
    std::printf("buckets patched/shared  : %lld / %lld\n",
                static_cast<long long>(pub.buckets_patched),
                static_cast<long long>(pub.buckets_shared));
    if (!metrics_path.empty()) pub.ExportTo(&registry);
  }

  if (!trace_path.empty()) {
    if (!trace_sink.WriteFile(trace_path)) {
      std::fprintf(stderr, "failed to write trace '%s'\n", trace_path.c_str());
      return 1;
    }
    std::printf("query trace             : %lld events -> %s\n",
                static_cast<long long>(trace_sink.event_count()),
                trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    const bool csv =
        metrics_path.size() >= 4 &&
        metrics_path.compare(metrics_path.size() - 4, 4, ".csv") == 0;
    if (!WriteTextFile(metrics_path,
                       csv ? registry.ExportCsv() : registry.ExportJson())) {
      std::fprintf(stderr, "failed to write metrics '%s'\n",
                   metrics_path.c_str());
      return 1;
    }
    std::printf("metrics (%s)           : %s\n", csv ? "csv " : "json",
                metrics_path.c_str());
    for (const std::string& name : registry.HistogramNames()) {
      const Histogram* h = registry.FindHistogram(name);
      std::printf("  %-22s: n=%lld p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
                  name.c_str(), static_cast<long long>(h->total()), h->P50(),
                  h->P95(), h->P99(),
                  h->total() > 0 ? h->sample_max() : 0.0);
    }
  }
  return 0;
}
