// lbsq_server: standalone broadcast query server.
//
// Loads (or generates) a POI dataset, builds the — optionally sharded —
// broadcast system, and serves the three-step access protocol over
// length-prefixed binary client sessions (see src/server/protocol.h).
// The POI set is generated with the simulator's deterministic RNG stream,
// so `lbsq_load` replaying the same config's workload receives answers
// whose digest matches `lbsq_sim --no-approximate` bit-for-bit.
//
// Examples:
//   lbsq_server --port=4750 --shards=4 --workers=4
//   lbsq_server --port=0 --run-seconds=60     # ephemeral port, timed run
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "core/sharded_query_engine.h"
#include "server/server.h"
#include "sim/config.h"
#include "sim/query_exec.h"
#include "sim/workload.h"
#include "spatial/generators.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void PrintUsage() {
  std::printf(
      "lbsq_server: broadcast query server over binary client sessions\n"
      "\n"
      "Deployment:\n"
      "  --port=<n>                       TCP port on 127.0.0.1 (0 = "
      "ephemeral; default 0)\n"
      "  --workers=<n>                    query worker threads (2)\n"
      "  --queue-capacity=<n>             bounded per-worker queue (256)\n"
      "  --inflight-limit=<n>             per-session outstanding budget "
      "(64)\n"
      "  --retry-ms=<n>                   RETRY_AFTER suggested delay (10)\n"
      "  --run-seconds=<n>                exit after n seconds (0 = until "
      "SIGINT/SIGTERM)\n"
      "\n"
      "Dataset (must match the lbsq_load / lbsq_sim run to compare "
      "digests):\n"
      "  --params=la|suburbia|riverside   Table 3 parameter set (la)\n"
      "  --world=<miles>                  world side (3.0)\n"
      "  --seed=<n>                       RNG seed (1)\n"
      "  --shards=<n>                     broadcast channels (1)\n"
      "  --k=<n>                          default kNN k override\n"
      "  --no-filtering                   disable the 3.3.3 data filter\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsq;

  sim::SimConfig config;
  config.params = sim::LosAngelesCity();
  config.world_side_mi = 3.0;
  server::ServerOptions options;
  options.num_workers = 2;
  int run_seconds = 0;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* arg = argv[i];
    if (ParseFlag(arg, "--help", &value)) {
      PrintUsage();
      return 0;
    } else if (ParseFlag(arg, "--port", &value)) {
      options.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "--workers", &value)) {
      options.num_workers = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--queue-capacity", &value)) {
      options.worker_queue_capacity =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "--inflight-limit", &value)) {
      options.session_inflight_limit =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "--retry-ms", &value)) {
      options.retry_after_ms = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "--run-seconds", &value)) {
      run_seconds = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--params", &value)) {
      if (value == "la") {
        config.params = sim::LosAngelesCity();
      } else if (value == "suburbia") {
        config.params = sim::SyntheticSuburbia();
      } else if (value == "riverside") {
        config.params = sim::RiversideCounty();
      } else {
        std::fprintf(stderr, "unknown --params value: %s\n", value.c_str());
        return 1;
      }
    } else if (ParseFlag(arg, "--world", &value)) {
      config.world_side_mi = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--seed", &value)) {
      config.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "--shards", &value)) {
      config.shards = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--k", &value)) {
      config.params.knn_k = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--no-filtering", &value)) {
      config.use_filtering = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      PrintUsage();
      return 1;
    }
  }

  // The simulator's deterministic POI stream: same seed, same world, same
  // POIs — the foundation of the lbsq_load digest check.
  const geom::Rect world{0.0, 0.0, config.world_side_mi,
                         config.world_side_mi};
  Rng poi_rng(DeriveStreamSeed(config.seed, sim::kStreamPois));
  std::vector<spatial::Poi> pois =
      spatial::GenerateUniformPois(&poi_rng, world, config.ScaledPoiCount());
  std::printf("dataset: %zu POIs, world %.1f mi, %d shard(s), seed %llu\n",
              pois.size(), config.world_side_mi, config.shards,
              static_cast<unsigned long long>(config.seed));

  const core::ShardedQueryEngine engine(std::move(pois), world,
                                        config.broadcast,
                                        sim::EngineOptionsFromConfig(config),
                                        config.shards);

  server::Server server(engine, /*epoch=*/0, options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "FATAL: %s\n", error.c_str());
    return 1;
  }
  // Scripts parse this line (and need it before the first connect).
  std::printf("lbsq_server listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const auto started = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (run_seconds > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(run_seconds)) {
      break;
    }
  }

  server.Stop();
  const server::ServerCounters& counters = server.counters();
  std::printf(
      "sessions opened/closed  : %lld / %lld\n"
      "frames in/out           : %lld / %lld\n"
      "queries executed        : %lld\n"
      "index probes            : %lld\n"
      "buckets served          : %lld\n"
      "retry-after sent        : %lld\n"
      "protocol errors         : %lld\n",
      static_cast<long long>(counters.sessions_opened.load()),
      static_cast<long long>(counters.sessions_closed.load()),
      static_cast<long long>(counters.frames_received.load()),
      static_cast<long long>(counters.frames_sent.load()),
      static_cast<long long>(counters.queries_executed.load()),
      static_cast<long long>(counters.index_probes.load()),
      static_cast<long long>(counters.buckets_served.load()),
      static_cast<long long>(counters.retry_after_sent.load()),
      static_cast<long long>(counters.protocol_errors.load()));

  lbsq::MetricsRegistry registry;
  server.ExportMetrics(&registry);
  return 0;
}
