// lbsq_server: standalone broadcast query server.
//
// Loads (or generates) a POI dataset, builds the — optionally sharded —
// broadcast system, and serves the three-step access protocol over
// length-prefixed binary client sessions (see src/server/protocol.h).
// The POI set is generated with the simulator's deterministic RNG stream,
// so `lbsq_load` replaying the same config's workload receives answers
// whose digest matches `lbsq_sim --no-approximate` bit-for-bit.
//
// Examples:
//   lbsq_server --port=4750 --shards=4 --workers=4
//   lbsq_server --port=0 --run-seconds=60     # ephemeral port, timed run
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "core/sharded_query_engine.h"
#include "dynamic/rebuild_policy.h"
#include "server/server.h"
#include "sim/config.h"
#include "sim/dataset.h"
#include "sim/query_exec.h"
#include "sim/workload.h"
#include "spatial/generators.h"
#include "storage/buffer_pool.h"
#include "storage/system_builder.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void PrintUsage() {
  std::printf(
      "lbsq_server: broadcast query server over binary client sessions\n"
      "\n"
      "Deployment:\n"
      "  --port=<n>                       TCP port on 127.0.0.1 (0 = "
      "ephemeral; default 0)\n"
      "  --workers=<n>                    query worker threads (2)\n"
      "  --queue-capacity=<n>             bounded per-worker queue (256)\n"
      "  --inflight-limit=<n>             per-session outstanding budget "
      "(64)\n"
      "  --retry-ms=<n>                   RETRY_AFTER suggested delay (10)\n"
      "  --run-seconds=<n>                exit after n seconds (0 = until "
      "SIGINT/SIGTERM)\n"
      "\n"
      "Storage:\n"
      "  --store=<path>                   open a persisted page store\n"
      "                                   (lbsq_store_build output) instead\n"
      "                                   of rebuilding; the dataset flags\n"
      "                                   must match the store or the open\n"
      "                                   is refused with a typed error\n"
      "  --pool-pages=<n>                 buffer-pool capacity in pages "
      "(1024)\n"
      "\n"
      "Dataset (must match the lbsq_load / lbsq_sim run to compare "
      "digests):\n%s",
      lbsq::sim::DatasetFlagsHelp());
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsq;

  sim::DatasetSpec spec;
  server::ServerOptions options;
  options.num_workers = 2;
  int run_seconds = 0;
  std::string store_path;
  size_t pool_pages = 1024;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* arg = argv[i];
    std::string spec_error;
    switch (sim::ParseDatasetFlag(arg, &spec, &spec_error)) {
      case sim::DatasetFlagResult::kParsed:
        continue;
      case sim::DatasetFlagResult::kError:
        std::fprintf(stderr, "%s\n", spec_error.c_str());
        return 1;
      case sim::DatasetFlagResult::kNotDatasetFlag:
        break;
    }
    if (ParseFlag(arg, "--help", &value)) {
      PrintUsage();
      return 0;
    } else if (ParseFlag(arg, "--port", &value)) {
      options.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "--workers", &value)) {
      options.num_workers = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--queue-capacity", &value)) {
      options.worker_queue_capacity =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "--inflight-limit", &value)) {
      options.session_inflight_limit =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "--retry-ms", &value)) {
      options.retry_after_ms = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "--run-seconds", &value)) {
      run_seconds = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--store", &value)) {
      store_path = value;
    } else if (ParseFlag(arg, "--pool-pages", &value)) {
      pool_pages = static_cast<size_t>(std::atoll(value.c_str()));
      if (pool_pages < 1) {
        std::fprintf(stderr, "--pool-pages must be >= 1\n");
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      PrintUsage();
      return 1;
    }
  }
  spec.Validate();

  sim::SimConfig config;
  spec.ApplyTo(&config);
  const geom::Rect world{0.0, 0.0, spec.world_side_mi, spec.world_side_mi};
  storage::SystemBuilder builder(world, config.broadcast);
  builder.SetOptions(sim::EngineOptionsFromConfig(config))
      .SetShards(spec.shards)
      .SetDatasetTag(spec.Digest());

  std::unique_ptr<storage::FileStorageManager> store;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<core::ShardedQueryEngine> engine;
  if (!store_path.empty()) {
    // Cold start from the persisted store: decode pages through the buffer
    // pool instead of regenerating POIs and re-running the Hilbert build.
    // The store header must name exactly this deployment.
    storage::OpenStatus status = storage::OpenStatus::kOk;
    store = storage::FileStorageManager::Open(store_path, &status);
    if (store == nullptr) {
      std::fprintf(stderr, "FATAL: cannot open store '%s': %s\n",
                   store_path.c_str(), storage::OpenStatusName(status));
      return 1;
    }
    pool = std::make_unique<storage::BufferPool>(store.get(), pool_pages);
    engine = builder.OpenFromStore(*store, pool.get(), &status);
    if (engine == nullptr) {
      std::fprintf(stderr, "FATAL: store '%s' rejected: %s\n",
                   store_path.c_str(), storage::OpenStatusName(status));
      return 1;
    }
    std::printf(
        "store: %s (%lld pages, pool %zu pages, "
        "hits/misses/evictions %llu/%llu/%llu)\n",
        store_path.c_str(), static_cast<long long>(store->page_count()),
        pool->capacity(), static_cast<unsigned long long>(pool->hits()),
        static_cast<unsigned long long>(pool->misses()),
        static_cast<unsigned long long>(pool->evictions()));
  } else {
    // The simulator's deterministic POI stream: same seed, same world, same
    // POIs — the foundation of the lbsq_load digest check.
    Rng poi_rng(DeriveStreamSeed(spec.seed, sim::kStreamPois));
    std::vector<spatial::Poi> pois = spatial::GenerateUniformPois(
        &poi_rng, world, config.ScaledPoiCount());
    engine = builder.BuildFromPois(std::move(pois));
  }
  std::printf("dataset: %zu POIs, world %.1f mi, %d shard(s), seed %llu\n",
              engine->total_pois(), spec.world_side_mi, spec.shards,
              static_cast<unsigned long long>(spec.seed));

  server::Server server(*engine, /*epoch=*/0, options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "FATAL: %s\n", error.c_str());
    return 1;
  }
  // Scripts parse this line (and need it before the first connect).
  std::printf("lbsq_server listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const auto started = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (run_seconds > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(run_seconds)) {
      break;
    }
  }

  server.Stop();
  const server::ServerCounters& counters = server.counters();
  std::printf(
      "sessions opened/closed  : %lld / %lld\n"
      "frames in/out           : %lld / %lld\n"
      "queries executed        : %lld\n"
      "index probes            : %lld\n"
      "buckets served          : %lld\n"
      "retry-after sent        : %lld\n"
      "protocol errors         : %lld\n",
      static_cast<long long>(counters.sessions_opened.load()),
      static_cast<long long>(counters.sessions_closed.load()),
      static_cast<long long>(counters.frames_received.load()),
      static_cast<long long>(counters.frames_sent.load()),
      static_cast<long long>(counters.queries_executed.load()),
      static_cast<long long>(counters.index_probes.load()),
      static_cast<long long>(counters.buckets_served.load()),
      static_cast<long long>(counters.retry_after_sent.load()),
      static_cast<long long>(counters.protocol_errors.load()));

  lbsq::MetricsRegistry registry;
  server.ExportMetrics(&registry);
  // The server serves one static epoch; the dynamic.* publication counters
  // are exported at zero so fleet dashboards see one schema for static and
  // churning deployments.
  const dynamic::PublicationStats publication;
  publication.ExportTo(&registry);
  std::printf("epoch publication       : %lld epochs, %lld incremental, "
              "%lld full fallbacks\n",
              static_cast<long long>(
                  registry.counter("dynamic.epochs_published")),
              static_cast<long long>(registry.counter("dynamic.epochs_patched")),
              static_cast<long long>(
                  registry.counter("dynamic.full_rebuild_fallbacks")));
  if (pool != nullptr) {
    pool->ExportMetrics(&registry);
    std::printf(
        "storage pool            : %lld hits / %lld misses / %lld "
        "evictions (%.1f%% hit ratio)\n",
        static_cast<long long>(registry.counter("storage.pool_hits")),
        static_cast<long long>(registry.counter("storage.pool_misses")),
        static_cast<long long>(registry.counter("storage.pool_evictions")),
        pool->HitRatio() * 100.0);
  }
  return 0;
}
