// lbsq_store_build: one-shot builder for persisted broadcast stores.
//
// Generates the dataset named by the shared DatasetSpec flags (the
// simulator's deterministic POI stream), builds the sharded broadcast
// deployment through SystemBuilder, and persists every built artifact —
// per-shard POIs, the CRC-framed bucket wire bytes, the air-index segment,
// the shard map — into a single-file page store. `lbsq_server
// --store=<file>` then serves the deployment by decoding pages instead of
// re-running the Hilbert build, and refuses a store whose header digest or
// build parameters disagree with its own flags.
//
// Examples:
//   lbsq_store_build --out=la.lbsq                        # LA City, bench scale
//   lbsq_store_build --out=metro.lbsq --world=20 --pois=1000000 --shards=8
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "sim/dataset.h"
#include "sim/query_exec.h"
#include "sim/workload.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

namespace {

void PrintUsage() {
  std::printf(
      "lbsq_store_build: build a dataset once, persist it as a page store\n"
      "\n"
      "Output:\n"
      "  --out=<path>                     store file to write (required)\n"
      "  --page-size=<bytes>              page size (4096, min 256)\n"
      "\n"
      "Dataset (must match the lbsq_server --store run):\n%s",
      lbsq::sim::DatasetFlagsHelp());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsq;

  sim::DatasetSpec spec;
  std::string out_path;
  size_t page_size = storage::kDefaultPageSize;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string error;
    switch (sim::ParseDatasetFlag(arg, &spec, &error)) {
      case sim::DatasetFlagResult::kParsed:
        continue;
      case sim::DatasetFlagResult::kError:
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      case sim::DatasetFlagResult::kNotDatasetFlag:
        break;
    }
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--page-size=", 12) == 0) {
      page_size = static_cast<size_t>(std::atoll(arg + 12));
      if (page_size < storage::kMinPageSize) {
        std::fprintf(stderr, "--page-size must be >= %zu\n",
                     storage::kMinPageSize);
        return 2;
      }
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      PrintUsage();
      return 2;
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "--out=<path> is required\n");
    PrintUsage();
    return 2;
  }
  spec.Validate();

  sim::SimConfig config;
  spec.ApplyTo(&config);
  const geom::Rect world{0.0, 0.0, spec.world_side_mi, spec.world_side_mi};
  Rng poi_rng(DeriveStreamSeed(spec.seed, sim::kStreamPois));

  const auto gen_start = std::chrono::steady_clock::now();
  std::vector<spatial::Poi> pois =
      spatial::GenerateUniformPois(&poi_rng, world, config.ScaledPoiCount());
  std::printf("dataset   : %zu POIs, world %.1f mi, %d shard(s), seed %llu\n",
              pois.size(), spec.world_side_mi, spec.shards,
              static_cast<unsigned long long>(spec.seed));

  storage::SystemBuilder builder(world, config.broadcast);
  builder.SetOptions(sim::EngineOptionsFromConfig(config))
      .SetShards(spec.shards)
      .SetDatasetTag(spec.Digest());
  const auto build_start = std::chrono::steady_clock::now();
  const auto engine = builder.BuildFromPois(std::move(pois));
  const auto build_end = std::chrono::steady_clock::now();

  auto store = storage::FileStorageManager::Create(out_path, page_size);
  if (store == nullptr) {
    std::fprintf(stderr, "FATAL: cannot create '%s'\n", out_path.c_str());
    return 1;
  }
  if (!builder.WriteStore(*engine, store.get())) {
    std::fprintf(stderr, "FATAL: write to '%s' failed\n", out_path.c_str());
    return 1;
  }
  const auto write_end = std::chrono::steady_clock::now();

  const auto secs = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count();
  };
  std::printf(
      "store     : %s (%lld pages x %zu B = %.1f MiB)\n"
      "digest    : %016llx\n"
      "timing    : generate %.2f s, build %.2f s, persist %.2f s\n",
      out_path.c_str(), static_cast<long long>(store->page_count()), page_size,
      static_cast<double>(store->page_count()) * static_cast<double>(page_size) /
          (1024.0 * 1024.0),
      static_cast<unsigned long long>(spec.Digest()),
      secs(gen_start, build_start), secs(build_start, build_end),
      secs(build_end, write_end));
  return 0;
}
