// lbsq_inspect — dumps the broadcast-channel organization a given POI
// workload produces: bucketization, air-index shape (flat and tree), cycle
// layout, wire sizes, and the expected client costs from the analytic
// models. Useful for sizing a deployment before running simulations.
//
// Usage: lbsq_inspect [--pois=N] [--world=MILES] [--capacity=N] [--m=N]
//                     [--order=N] [--seed=N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/air_index_model.h"
#include "broadcast/system.h"
#include "broadcast/tree_index.h"
#include "broadcast/wire.h"
#include "common/rng.h"
#include "common/stats.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsq;

  int64_t n_pois = 2750;
  double world_side = 20.0;
  broadcast::BroadcastParams params;
  uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--pois", &value)) {
      n_pois = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--world", &value)) {
      world_side = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--capacity", &value)) {
      params.bucket_capacity = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--m", &value)) {
      params.m = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--order", &value)) {
      params.hilbert_order = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else {
      std::fprintf(stderr,
                   "usage: lbsq_inspect [--pois=N] [--world=MILES] "
                   "[--capacity=N] [--m=N] [--order=N] [--seed=N]\n");
      return 2;
    }
  }

  const geom::Rect world{0.0, 0.0, world_side, world_side};
  Rng rng(seed);
  const auto system_ptr =
      storage::SystemBuilder(world, params)
          .BuildSystemFromPois(spatial::GenerateUniformPois(&rng, world, n_pois));
  const broadcast::BroadcastSystem& system = *system_ptr;

  std::printf("=== data organization ===\n");
  std::printf("POIs                : %lld over %.0f x %.0f mi\n",
              static_cast<long long>(n_pois), world_side, world_side);
  std::printf("Hilbert grid        : order %d (%u x %u cells)\n",
              system.grid().order(), system.grid().cells_per_axis(),
              system.grid().cells_per_axis());
  std::printf("data buckets        : %zu (capacity %d)\n",
              system.buckets().size(), params.bucket_capacity);

  RunningStat bucket_bytes, bucket_span, bucket_extent;
  for (const broadcast::DataBucket& bucket : system.buckets()) {
    bucket_bytes.Add(static_cast<double>(broadcast::BucketWireSize(bucket)));
    bucket_span.Add(
        static_cast<double>(bucket.hilbert_hi - bucket.hilbert_lo));
    bucket_extent.Add(bucket.mbr.width() * bucket.mbr.height());
  }
  std::printf("bucket wire size    : %.0f B avg (min %.0f, max %.0f)\n",
              bucket_bytes.mean(), bucket_bytes.min(), bucket_bytes.max());
  std::printf("bucket curve span   : %.1f cells avg\n", bucket_span.mean());
  std::printf("bucket MBR area     : %.3f sq mi avg\n", bucket_extent.mean());

  std::printf("\n=== air index ===\n");
  std::printf("directory entries   : %zu (%d per index bucket)\n",
              system.index().entries().size(),
              params.index_entries_per_bucket);
  std::printf("flat segment        : %lld buckets\n",
              static_cast<long long>(system.index().SizeInBuckets()));
  const broadcast::TreeAirIndex tree(system.index().entries(),
                                     params.index_entries_per_bucket);
  std::printf("tree segment        : %lld buckets, height %d "
              "(point lookup reads %d)\n",
              static_cast<long long>(tree.SizeInBuckets()), tree.height(),
              tree.height());

  std::printf("\n=== (1, m) cycle ===\n");
  const auto& schedule = system.schedule();
  std::printf("m                   : %d\n", schedule.m());
  std::printf("cycle length        : %lld slots\n",
              static_cast<long long>(schedule.cycle_length()));
  const analysis::AirIndexModel model{schedule.num_data_buckets(),
                                      schedule.index_buckets(),
                                      schedule.m()};
  std::printf("E[index latency]    : %.1f slots\n",
              analysis::ExpectedIndexLatency(model));
  std::printf("E[1-bucket latency] : %.1f slots\n",
              analysis::ExpectedSingleBucketLatency(model));
  std::printf("optimal m (1-bucket): %d\n",
              analysis::OptimalM(schedule.num_data_buckets(),
                                 schedule.index_buckets()));
  return 0;
}
