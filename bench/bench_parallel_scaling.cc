// Thread-scaling benchmark of the parallel simulation engine on the
// Figure 10 workload (Los Angeles City, kNN, TxRange 200 m): wall time,
// throughput (MH queries/second), and speedup over one thread at 1/2/4/8
// workers — verifying at each point that the metrics are bitwise identical
// to the single-threaded run, since determinism that only holds when nobody
// checks is no determinism at all.
//
// Speedup is bounded by the physical core count; on a single-core machine
// every row reports ~1x (the determinism check still exercises the
// multi-threaded code paths). LBSQ_BENCH_FAST=1 shortens the run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "sim/config.h"
#include "sim/parallel_simulator.h"
#include "sim_bench_util.h"

int main() {
  using lbsq::sim::ParallelSimulator;
  using lbsq::sim::SimMetrics;

  lbsq::sim::SimConfig config = lbsq::bench::BaseConfig(
      lbsq::sim::LosAngelesCity(), lbsq::sim::QueryType::kKnn);
  config.params.tx_range_m = 200.0;

  std::printf("Parallel engine scaling, Fig. 10 workload "
              "(%s, kNN, TxRange %.0f m)\n",
              config.params.name.c_str(), config.params.tx_range_m);
  std::printf("world %.1f mi, %lld hosts, %lld POIs, epoch %d, "
              "hardware threads %u\n\n",
              config.world_side_mi,
              static_cast<long long>(config.ScaledMhCount()),
              static_cast<long long>(config.ScaledPoiCount()),
              config.events_per_epoch,
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %14s %10s %12s\n", "threads", "wall(s)", "queries/s",
              "speedup", "metrics");

  SimMetrics reference;
  double reference_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    config.threads = threads;
    ParallelSimulator sim(config);
    const auto start = std::chrono::steady_clock::now();
    const SimMetrics metrics = sim.Run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    if (threads == 1) {
      reference = metrics;
      reference_seconds = seconds;
    } else if (!(metrics == reference)) {
      std::fprintf(stderr,
                   "FATAL: metrics at %d threads differ from 1 thread — "
                   "determinism contract violated\n",
                   threads);
      return 1;
    }
    std::printf("%8d %12.2f %14.0f %9.2fx %12s\n", threads, seconds,
                seconds > 0.0 ? static_cast<double>(metrics.queries) / seconds
                              : 0.0,
                seconds > 0.0 ? reference_seconds / seconds : 0.0,
                threads == 1 ? "reference" : "identical");
  }
  return 0;
}
