// §3.3.2 / Table 2: the approximate-answer machinery. Validates Lemma 3.2
// empirically — the probability that an unverified i-th NN is the true i-th
// NN must equal e^(-lambda * u) — and reports the surpassing-ratio
// distribution of unverified answers, reproducing the paper's Table 2
// worked example along the way.

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/nnv.h"
#include "core/probability.h"
#include "spatial/generators.h"

int main() {
  using namespace lbsq;

  std::printf("=== Table 2 worked example ===\n");
  std::printf("lambda = 0.3 POIs/sq-unit, unverified region u = 2 sq units\n");
  std::printf("correctness probability e^(-0.6) = %.4f (paper: ~55%%)\n",
              core::CorrectnessProbability(0.3, 2.0));
  std::printf("surpassing ratio of o4 (5 mi vs o5 at 3 mi) = %.2f "
              "(paper: 1.67)\n\n", core::SurpassingRatio(5.0, 3.0));

  std::printf("=== Lemma 3.2: predicted vs empirical correctness ===\n");
  std::printf("(first unverified NN candidate over Poisson POI fields; "
              "3000 trials per row)\n\n");
  std::printf("%8s | %12s %12s %9s\n", "lambda", "predicted", "empirical",
              "trials");

  // For each density: scatter POIs, give the query host one peer knowing a
  // square region; look at the first unverified heap entry, record the
  // Lemma 3.2 prediction, and check against ground truth (is it really the
  // i-th NN of q over the full POI set?).
  for (double lambda : {0.5, 1.0, 2.0, 4.0}) {
    Rng rng(static_cast<uint64_t>(lambda * 1000));
    const geom::Rect world{0.0, 0.0, 12.0, 12.0};
    RunningStat predicted;
    int64_t correct = 0;
    int64_t total = 0;
    for (int trial = 0; trial < 3000; ++trial) {
      const auto pois = spatial::GeneratePoissonPois(&rng, world, lambda);
      if (pois.empty()) continue;
      const geom::Point q{6.0, 6.0};
      core::VerifiedRegion vr;
      vr.region = geom::Rect::CenteredSquare(q, rng.Uniform(0.4, 1.2));
      for (const auto& p : pois) {
        if (vr.region.Contains(p.pos)) vr.pois.push_back(p);
      }
      // Let the peer also know ONE random POI outside its region (not the
      // nearest — that would condition the unverified region to be empty
      // and bias the empirical rate to 1).
      const auto truth = spatial::BruteForceKnn(pois, q, 16);
      std::vector<spatial::PoiDistance> outside;
      for (const auto& t : truth) {
        if (!vr.region.Contains(t.poi.pos)) outside.push_back(t);
      }
      if (outside.empty()) continue;
      const auto& pick = outside[rng.NextBelow(outside.size())];
      core::VerifiedRegion island;
      island.region = geom::Rect::CenteredSquare(pick.poi.pos, 1e-6);
      island.pois.push_back(pick.poi);
      const core::NnvResult result = core::NearestNeighborVerify(
          q, 16, {core::PeerData{{vr, island}}}, lambda);
      // Find the island in the heap; it must be unverified for Lemma 3.2
      // to apply.
      const auto& entries = result.heap.entries();
      size_t i = 0;
      while (i < entries.size() && entries[i].poi.id != pick.poi.id) ++i;
      if (i >= entries.size() || entries[i].verified) continue;
      predicted.Add(entries[i].correctness);
      // Ground truth: is the island actually the (i+1)-th NN?
      if (i < truth.size() && entries[i].poi.id == truth[i].poi.id) {
        ++correct;
      }
      ++total;
    }
    std::printf("%8.1f | %12.3f %12.3f %9lld\n", lambda, predicted.mean(),
                total > 0 ? static_cast<double>(correct) /
                                static_cast<double>(total)
                          : 0.0,
                static_cast<long long>(total));
  }

  std::printf("\n=== Surpassing ratio distribution ===\n");
  std::printf("(unverified answers accepted at 50%% correctness, "
              "lambda = 1)\n\n");
  Rng rng(99);
  const geom::Rect world{0.0, 0.0, 12.0, 12.0};
  Histogram ratios(1.0, 3.0, 8);
  for (int trial = 0; trial < 4000; ++trial) {
    const auto pois = spatial::GeneratePoissonPois(&rng, world, 1.0);
    if (pois.size() < 6) continue;
    const geom::Point q{6.0, 6.0};
    core::VerifiedRegion vr;
    vr.region = geom::Rect::CenteredSquare(q, rng.Uniform(0.6, 1.6));
    for (const auto& p : pois) {
      if (vr.region.Contains(p.pos)) vr.pois.push_back(p);
    }
    core::VerifiedRegion wide;
    wide.region = geom::Rect::CenteredSquare(q, 4.0);
    for (const auto& p : pois) {
      if (wide.region.Contains(p.pos)) wide.pois.push_back(p);
    }
    // The peer pool knows everything nearby, but only `vr` is verified
    // coverage for q... simulate by sharing vr plus loose POIs: attach the
    // wide POIs to vr's candidate set via a zero-area region union.
    core::PeerData peer{{vr}};
    for (const auto& p : wide.pois) {
      core::VerifiedRegion dot;
      dot.region = geom::Rect::CenteredSquare(p.pos, 1e-7);
      dot.pois.push_back(p);
      peer.regions.push_back(dot);
    }
    const core::NnvResult result =
        core::NearestNeighborVerify(q, 5, {peer}, 1.0);
    for (const auto& e : result.heap.entries()) {
      if (!e.verified && e.correctness >= 0.5 &&
          std::isfinite(e.surpassing_ratio)) {
        ratios.Add(e.surpassing_ratio);
      }
    }
  }
  std::printf("%s\n", ratios.ToString().c_str());
  std::printf("p50 = %.2f, p90 = %.2f (worst-case extra travel = "
              "d_v * (ratio - 1))\n",
              ratios.Percentile(50.0), ratios.Percentile(90.0));
  return 0;
}
