#include "alloc_counter.h"

#ifdef LBSQ_COUNT_ALLOCS

#include <execinfo.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace lbsq::bench {
namespace {

std::atomic<uint64_t> g_allocs{0};

void* Allocate(std::size_t size) {
  if (lbsq::bench::g_alloc_trap) lbsq::bench::AllocTrapHit();
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* AllocateNothrow(std::size_t size) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* AllocateAligned(std::size_t size, std::size_t alignment) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

bool g_alloc_trap = false;
void AllocTrapHit() {
  g_alloc_trap = false;
  void* frames[16];
  const int n = backtrace(frames, 16);
  backtrace_symbols_fd(frames, n, 2);
  const char sep[] = "====\n";
  (void)!write(2, sep, sizeof(sep) - 1);
  g_alloc_trap = true;
}

uint64_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }

}  // namespace lbsq::bench

void* operator new(std::size_t size) { return lbsq::bench::Allocate(size); }
void* operator new[](std::size_t size) { return lbsq::bench::Allocate(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return lbsq::bench::AllocateNothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return lbsq::bench::AllocateNothrow(size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return lbsq::bench::AllocateAligned(size,
                                      static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return lbsq::bench::AllocateAligned(size,
                                      static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // LBSQ_COUNT_ALLOCS
