// Shard-count sweep of the Hilbert-range sharded deployment.
//
// Builds one metro-style POI database (downtown clusters over a uniform
// background, GenerateMetroPois) and runs the same mixed kNN/window batch
// through core::ShardedQueryEngine at every shard count in the sweep.
// For each count it reports:
//
//   qps            : warm-workspace ExecuteBatch throughput (best of R).
//   latency slots  : mean broadcast access latency. Sharding's entire point
//                    — the channels broadcast concurrently, a query's
//                    latency is the max over the channels it tunes, and
//                    each channel's cycle covers only its slice.
//   tuning slots   : mean receiver-on time (summed over queried channels).
//   allocs/query   : steady-state heap allocations (must be 0).
//
// Correctness rides along: every sweep point's answer plane (neighbor ids +
// bit-exact distances, window POI sequences) is checked against the 1-shard
// reference before anything is timed.
//
// Latencies are measured in broadcast slots — deterministic, machine
// independent — so the checked-in baseline gates `latency_reduction`
// (1-shard latency over max-shard latency) tightly; throughput is reported
// but never gated (absolute qps is machine specific).
//
// Run:  ./build/bench/bench_shard_scale [--out=BENCH_shard.json]
//       ./build/bench/bench_shard_scale --baseline=BENCH_shard.json
// Env:  LBSQ_BENCH_FAST=1  - smaller database/batch for smoke testing.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "alloc_counter.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/sharded_query_engine.h"
#include "geom/rect.h"
#include "spatial/generators.h"

namespace lbsq::bench {
namespace {

constexpr double kWorldSide = 40.0;  // metro service area, 40 x 40 mi
constexpr int kKnnK = 5;
constexpr double kWindowPct = 0.05;  // window = 0.05% of the world
constexpr int kShardSweep[] = {1, 2, 4, 8, 16};

bool FastMode() {
  const char* fast = std::getenv("LBSQ_BENCH_FAST");
  return fast != nullptr && fast[0] == '1';
}

int64_t PoiCount() { return FastMode() ? 20'000 : 100'000; }
int QueryCount() { return FastMode() ? 500 : 2'000; }

// Peerless metro mix: positions uniform over the world so the sweep
// exercises every shard and plenty of seam-straddling windows.
std::vector<core::QueryRequest> MakeWorkload(int n, uint64_t seed) {
  Rng rng(seed);
  const double window_side = kWorldSide * std::sqrt(kWindowPct / 100.0);
  std::vector<core::QueryRequest> requests;
  requests.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const geom::Point q{rng.Uniform(0.0, kWorldSide),
                        rng.Uniform(0.0, kWorldSide)};
    core::QueryRequest r;
    if (rng.NextBool(0.7)) {
      r.kind = core::QueryKind::kKnn;
      r.position = q;
      r.k = kKnnK;
    } else {
      r.kind = core::QueryKind::kWindow;
      r.window = geom::Rect::CenteredSquare(q, window_side);
    }
    // Slots stay inside the first broadcast cycle of every channel in the
    // sweep (the shortest channel cycle is far above this range): the
    // workspace memo is cycle-scoped, and the zero-allocation contract —
    // like bench_batch_throughput's — is defined for cycle-local workloads.
    r.slot = static_cast<int64_t>(rng.NextBelow(64));
    requests.push_back(r);
  }
  return requests;
}

// Answer-plane equality against the 1-shard reference (costs legitimately
// differ across shard counts; the answers may not).
bool AnswerEq(const core::QueryOutcome& a, const core::QueryOutcome& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == core::QueryKind::kKnn) {
    if (!a.knn.has_value() || !b.knn.has_value()) return false;
    if (a.knn->neighbors.size() != b.knn->neighbors.size()) return false;
    for (size_t i = 0; i < a.knn->neighbors.size(); ++i) {
      if (!(a.knn->neighbors[i].poi == b.knn->neighbors[i].poi) ||
          a.knn->neighbors[i].distance != b.knn->neighbors[i].distance) {
        return false;
      }
    }
    return true;
  }
  if (!a.window.has_value() || !b.window.has_value()) return false;
  return a.window->pois == b.window->pois;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct SweepRow {
  int shards = 0;
  double qps = 0.0;
  double avg_latency_slots = 0.0;
  double avg_tuning_slots = 0.0;
  double allocs_per_query = 0.0;
};

struct BenchResult {
  int64_t n_pois = 0;
  int n_queries = 0;
  std::vector<SweepRow> rows;
  double latency_reduction = 0.0;  // latency(1 shard) / latency(max shards)
};

BenchResult RunBench() {
  const geom::Rect world{0.0, 0.0, kWorldSide, kWorldSide};
  BenchResult result;
  result.n_pois = PoiCount();
  result.n_queries = QueryCount();

  Rng rng(7);
  const std::vector<spatial::Poi> pois = spatial::GenerateMetroPois(
      &rng, world, result.n_pois, /*clustered_fraction=*/0.6,
      /*num_clusters=*/48, /*cluster_spread=*/0.5);
  const std::vector<core::QueryRequest> requests =
      MakeWorkload(result.n_queries, /*seed=*/13);

  broadcast::BroadcastParams params;
  params.hilbert_order = 8;
  const core::EngineOptions options = [] {
    core::EngineOptions o;
    o.sbnn.k = kKnnK;
    return o;
  }();

  std::vector<core::QueryOutcome> reference;
  const int repetitions = FastMode() ? 3 : 5;
  for (const int num_shards : kShardSweep) {
    const core::ShardedQueryEngine engine(pois, world, params, options,
                                          num_shards);
    core::ShardedQueryWorkspace workspace;

    // Identity pass (also warms the workspace): every outcome must carry
    // the 1-shard answer plane.
    const std::span<const core::QueryOutcome> first =
        engine.ExecuteBatch(requests, workspace);
    if (num_shards == 1) {
      reference.assign(first.begin(), first.end());
    } else {
      for (size_t i = 0; i < requests.size(); ++i) {
        if (!AnswerEq(reference[i], first[i])) {
          std::fprintf(stderr,
                       "FATAL: outcome %zu at %d shards differs from the "
                       "1-shard answer\n",
                       i, num_shards);
          std::exit(1);
        }
      }
    }

    // Steady state: one more full batch must not touch the heap.
    const uint64_t allocs_before = AllocCount();
    engine.ExecuteBatch(requests, workspace);
    const uint64_t allocs_after = AllocCount();

    SweepRow row;
    row.shards = num_shards;
    row.allocs_per_query = static_cast<double>(allocs_after - allocs_before) /
                           static_cast<double>(requests.size());

#ifdef LBSQ_COUNT_ALLOCS
    // LBSQ_DBG=1: trap (backtrace to stderr) on any warm-batch allocation
    // instead of benchmarking — the fastest way to locate a regression.
    if (std::getenv("LBSQ_DBG") != nullptr && row.allocs_per_query != 0.0) {
      g_alloc_trap = true;
      engine.ExecuteBatch(std::span<const core::QueryRequest>(
                              requests.data(),
                              std::min<size_t>(requests.size(), 50)),
                          workspace);
      g_alloc_trap = false;
      std::exit(0);
    }
#endif

    double best = 1e300;
    for (int rep = 0; rep < repetitions; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      engine.ExecuteBatch(requests, workspace);
      const double s = SecondsSince(start);
      if (s < best) best = s;
    }
    row.qps = static_cast<double>(result.n_queries) / best;

    const std::span<const core::QueryOutcome> outcomes =
        engine.ExecuteBatch(requests, workspace);
    double latency_sum = 0.0;
    double tuning_sum = 0.0;
    for (const core::QueryOutcome& outcome : outcomes) {
      latency_sum += static_cast<double>(outcome.Stats().access_latency);
      tuning_sum += static_cast<double>(outcome.Stats().tuning_time);
    }
    row.avg_latency_slots = latency_sum / static_cast<double>(outcomes.size());
    row.avg_tuning_slots = tuning_sum / static_cast<double>(outcomes.size());
    result.rows.push_back(row);
  }

  const SweepRow& front = result.rows.front();
  const SweepRow& back = result.rows.back();
  result.latency_reduction =
      back.avg_latency_slots > 0.0
          ? front.avg_latency_slots / back.avg_latency_slots
          : 0.0;
  return result;
}

void WriteJson(const BenchResult& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_shard_scale\",\n"
               "  \"workload\": {\n"
               "    \"parameter_set\": \"metro (clustered + uniform)\",\n"
               "    \"poi_number\": %lld,\n"
               "    \"world_side_mi\": %.1f,\n"
               "    \"knn_k\": %d,\n"
               "    \"window_pct\": %.2f,\n"
               "    \"n_queries\": %d\n"
               "  },\n"
               "  \"latency_reduction\": %.4f,\n"
               "  \"alloc_counting\": %s",
               static_cast<long long>(r.n_pois), kWorldSide, kKnnK,
               kWindowPct, r.n_queries, r.latency_reduction,
               kAllocCountingEnabled ? "true" : "false");
  for (const SweepRow& row : r.rows) {
    std::fprintf(f,
                 ",\n"
                 "  \"shards_%d_qps\": %.1f,\n"
                 "  \"shards_%d_avg_latency_slots\": %.2f,\n"
                 "  \"shards_%d_avg_tuning_slots\": %.2f,\n"
                 "  \"shards_%d_allocs_per_query\": %.4f",
                 row.shards, row.qps, row.shards, row.avg_latency_slots,
                 row.shards, row.avg_tuning_slots, row.shards,
                 row.allocs_per_query);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

// Pulls `"key": <number>` out of a flat JSON file (our own output format).
bool ReadJsonNumber(const std::string& path, const std::string& key,
                    double* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

}  // namespace
}  // namespace lbsq::bench

int main(int argc, char** argv) {
  using namespace lbsq::bench;

  std::string out_path = "BENCH_shard.json";
  std::string baseline_path;
  double max_regression = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--max-regression=", 0) == 0) {
      max_regression = std::strtod(arg.c_str() + 17, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=FILE] [--baseline=FILE] "
                   "[--max-regression=FRAC]\n",
                   argv[0]);
      return 2;
    }
  }

  const BenchResult r = RunBench();
  std::printf("Hilbert-range shard sweep, metro workload (%lld POIs, %d "
              "queries%s):\n",
              static_cast<long long>(r.n_pois), r.n_queries,
              FastMode() ? ", fast mode" : "");
  std::printf("  %7s %12s %16s %15s %13s\n", "shards", "qps",
              "latency (slots)", "tuning (slots)", "allocs/query");
  for (const SweepRow& row : r.rows) {
    std::printf("  %7d %12.1f %16.2f %15.2f %13.4f\n", row.shards, row.qps,
                row.avg_latency_slots, row.avg_tuning_slots,
                row.allocs_per_query);
  }
  std::printf("  latency reduction (1 shard / %d shards): %.2fx%s\n",
              r.rows.back().shards, r.latency_reduction,
              kAllocCountingEnabled ? "" : "  (alloc counting compiled out)");

  if (kAllocCountingEnabled) {
    for (const SweepRow& row : r.rows) {
      if (row.allocs_per_query != 0.0) {
        std::fprintf(stderr,
                     "FAIL: steady-state execution at %d shards allocated "
                     "(%.4f allocations/query, expected 0)\n",
                     row.shards, row.allocs_per_query);
        return 1;
      }
    }
  }

  if (!baseline_path.empty()) {
    double baseline_reduction = 0.0;
    if (!ReadJsonNumber(baseline_path, "latency_reduction",
                        &baseline_reduction) ||
        baseline_reduction <= 0.0) {
      std::fprintf(stderr,
                   "FAIL: no usable \"latency_reduction\" in baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    const double floor = baseline_reduction * (1.0 - max_regression);
    std::printf("  baseline reduction: %.2fx (floor %.2fx at %.0f%% "
                "tolerance)\n",
                baseline_reduction, floor, max_regression * 100.0);
    if (r.latency_reduction < floor) {
      std::fprintf(stderr,
                   "FAIL: latency reduction %.2fx regressed more than "
                   "%.0f%% below baseline %.2fx\n",
                   r.latency_reduction, max_regression * 100.0,
                   baseline_reduction);
      return 1;
    }
    std::printf("  perf check        : OK\n");
    return 0;
  }

  WriteJson(r, out_path);
  std::printf("  wrote %s\n", out_path.c_str());
  return 0;
}
