// Figure 13 (a-c): percentage of window queries resolved by SBWQ or the
// broadcast channel, as a function of the wireless transmission range
// (10..200 m), for the three Table 3 parameter sets.

#include "sim_bench_util.h"

int main() {
  lbsq::bench::RunFigure(
      "13", "TxRange(m)", lbsq::sim::QueryType::kWindow,
      {10, 20, 40, 60, 80, 100, 120, 140, 160, 180, 200},
      [](double x, lbsq::sim::SimConfig* config) {
        config->params.tx_range_m = x;
      });
  return 0;
}
