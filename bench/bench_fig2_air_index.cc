// Figure 2 / §2.1: the (1, m) air-index organization and its two defining
// metrics, access latency and tuning time. Sweeps the index replication
// factor m for on-air kNN and window queries over the LA City POI density
// (at full-scale POI count, so cycle lengths are realistic), and quantifies
// what the sharing-based filter saves when peers hold partial knowledge.

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/energy_model.h"
#include "broadcast/system.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/query_engine.h"
#include "onair/onair_knn.h"
#include "onair/onair_window.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

int main() {
  using namespace lbsq;
  const geom::Rect world{0.0, 0.0, 20.0, 20.0};
  Rng rng(1);
  // The full-scale LA City POI count: 2750 objects on the air.
  std::vector<spatial::Poi> pois =
      spatial::GenerateUniformPois(&rng, world, 2750);

  std::printf("=== Fig. 2 / §2.1: the (1, m) broadcast organization ===\n");
  std::printf("(2750 POIs, %d per bucket; 5-NN and 3%%-window queries, 500 "
              "each)\n\n", broadcast::BroadcastParams().bucket_capacity);
  std::printf("%3s %9s | %12s %12s %10s | %12s %12s\n", "m", "cycle",
              "kNN latency", "kNN tuning", "kNN mJ", "win latency",
              "win tuning");
  const analysis::RadioPowerModel radio;
  for (int m : {1, 2, 4, 8, 16, 32}) {
    broadcast::BroadcastParams params;
    params.m = m;
    const auto server_ptr =
        storage::SystemBuilder(world, params).BuildSystemFromPois(pois);
    const broadcast::BroadcastSystem& server = *server_ptr;
    RunningStat knn_latency, knn_tuning, knn_energy, win_latency, win_tuning;
    Rng qrng(7);
    for (int i = 0; i < 500; ++i) {
      const geom::Point q{qrng.Uniform(0.0, 20.0), qrng.Uniform(0.0, 20.0)};
      const int64_t now = static_cast<int64_t>(qrng.NextBelow(
          static_cast<uint64_t>(server.schedule().cycle_length())));
      const auto knn = onair::OnAirKnn(server, q, 5, now);
      knn_latency.Add(static_cast<double>(knn.stats.access_latency));
      knn_tuning.Add(static_cast<double>(knn.stats.tuning_time));
      knn_energy.Add(analysis::QueryEnergyJoules(radio, knn.stats) * 1000.0);
      const double half = 20.0 * std::sqrt(0.03) / 2.0;
      const geom::Rect window = geom::Rect::CenteredSquare(q, half);
      const auto win = onair::OnAirWindow(server, window, now);
      win_latency.Add(static_cast<double>(win.stats.access_latency));
      win_tuning.Add(static_cast<double>(win.stats.tuning_time));
    }
    std::printf("%3d %9lld | %12.1f %12.1f %10.1f | %12.1f %12.1f\n", m,
                static_cast<long long>(server.schedule().cycle_length()),
                knn_latency.mean(), knn_tuning.mean(), knn_energy.mean(),
                win_latency.mean(), win_tuning.mean());
  }

  std::printf("\n=== Flat directory vs hierarchical (B+-tree) air index "
              "===\n");
  std::printf("(m = 4; 500 5-NN queries; identical answers, different "
              "tuning)\n\n");
  std::printf("%6s | %9s %12s %12s %10s\n", "index", "segment", "latency",
              "tuning", "kNN mJ");
  for (const broadcast::IndexKind kind :
       {broadcast::IndexKind::kFlat, broadcast::IndexKind::kTree}) {
    broadcast::BroadcastParams kind_params;
    kind_params.index_kind = kind;
    const auto server_ptr =
        storage::SystemBuilder(world, kind_params).BuildSystemFromPois(pois);
    const broadcast::BroadcastSystem& server = *server_ptr;
    RunningStat latency, tuning, energy;
    Rng qrng(9);
    for (int i = 0; i < 500; ++i) {
      const geom::Point q{qrng.Uniform(0.0, 20.0), qrng.Uniform(0.0, 20.0)};
      const int64_t now = static_cast<int64_t>(qrng.NextBelow(
          static_cast<uint64_t>(server.schedule().cycle_length())));
      const auto result = onair::OnAirKnn(server, q, 5, now);
      latency.Add(static_cast<double>(result.stats.access_latency));
      tuning.Add(static_cast<double>(result.stats.tuning_time));
      energy.Add(analysis::QueryEnergyJoules(radio, result.stats) * 1000.0);
    }
    std::printf("%6s | %9lld %12.1f %12.1f %10.1f\n",
                kind == broadcast::IndexKind::kFlat ? "flat" : "tree",
                static_cast<long long>(server.schedule().index_buckets()),
                latency.mean(), tuning.mean(), energy.mean());
  }

  std::printf("\n=== Sharing-based data filtering on the fallback path "
              "===\n");
  std::printf("(one peer with a verified square around q, k = 10, 4-POI "
              "packets,\n min(index, heap) search radius)\n\n");
  std::printf("%14s | %12s %12s %9s\n", "peer VR side", "latency", "buckets",
              "skipped");
  broadcast::BroadcastParams params;
  params.bucket_capacity = 4;  // finer packets let the lower bound excuse some
  const auto server_ptr =
      storage::SystemBuilder(world, params).BuildSystemFromPois(pois);
  const broadcast::BroadcastSystem& server = *server_ptr;
  core::EngineOptions engine_options;
  engine_options.sbnn.k = 10;
  engine_options.sbnn.accept_approximate = false;
  engine_options.sbnn.tighten_with_index_bound = true;
  const core::QueryEngine engine(server, world, engine_options);
  for (double side : {0.0, 0.4, 0.8, 1.2, 1.6}) {
    RunningStat latency, buckets, skipped;
    Rng qrng(11);
    for (int i = 0; i < 500; ++i) {
      const geom::Point q{qrng.Uniform(1.0, 19.0), qrng.Uniform(1.0, 19.0)};
      const int64_t now = static_cast<int64_t>(qrng.NextBelow(
          static_cast<uint64_t>(server.schedule().cycle_length())));
      std::vector<core::PeerData> peers;
      if (side > 0.0) {
        core::VerifiedRegion vr;
        vr.region = geom::Rect::CenteredSquare(q, side / 2.0);
        for (const spatial::Poi& p : server.pois()) {
          if (vr.region.Contains(p.pos)) vr.pois.push_back(p);
        }
        peers.push_back(core::PeerData{{vr}});
      }
      core::QueryRequest request;
      request.kind = core::QueryKind::kKnn;
      request.position = q;
      request.slot = now;
      request.peers = peers;
      const core::SbnnOutcome outcome = std::move(*engine.Execute(request).knn);
      if (outcome.resolved_by != core::ResolvedBy::kBroadcast) continue;
      latency.Add(static_cast<double>(outcome.stats.access_latency));
      buckets.Add(static_cast<double>(outcome.stats.buckets_read));
      skipped.Add(static_cast<double>(outcome.buckets_skipped));
    }
    std::printf("%14.1f | %12.1f %12.1f %9.2f   (n=%lld)\n", side,
                latency.mean(), buckets.mean(), skipped.mean(),
                static_cast<long long>(latency.count()));
  }
  return 0;
}
