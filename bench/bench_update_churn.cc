// Query throughput, publication latency, and allocation behavior under
// dynamic-world churn.
//
// Runs the Table 3 Los Angeles City workload (2750 POIs, 20 x 20 mi,
// k = 5, 3% windows, 30% of queries carrying peer data) through a
// DynamicQueryEngine while a WorldVersioner applies insert/delete/move
// batches at a swept interval:
//
//   off      : zero updates — the static baseline.
//   sparse   : one batch per 100 queries.
//   heavy    : one batch per 25 queries.
//
// For each setting it reports queries/s (epoch rebuilds included), epochs
// published, and the peer-region revalidation counts. The heavy row is run
// twice — once on the diff-aware incremental publication path (PatchFrom)
// and once with RebuildPolicy::force_full — and the bench reports per-epoch
// publish latency (p50/p99), publication throughput (epochs/s), and the
// incremental-vs-full publish speedup. A default batch nets ~7 dirty file
// positions against 2750 POIs (~0.25% churn), squarely in the regime the
// incremental path is built for.
//
// When built with LBSQ_COUNT_ALLOCS (the default outside sanitizer builds)
// it also counts heap allocations per steady-state query and exits 1 unless
// that count is ZERO: churn must not cost the query path its
// zero-allocation property.
//
// "Steady state" is per epoch: an epoch publication rebinds the workspace
// memo (covers of the old world are gone with the old system), so each
// inter-update chunk of the workload runs twice — once uncounted to warm
// the fresh epoch's memo and the outcome buffers, then measured. The
// marginal cost of a query on a warm epoch must be allocation-free; the
// warm-up work is charged to the epoch switch, exactly like the rebuild
// itself.
//
// Writes the results to BENCH_churn.json (see --out). With --baseline=<file>
// it instead gates: the measured incremental-vs-full speedup must be at
// least 3x absolutely AND must not have regressed more than --max-regression
// (default 0.25) below the checked-in baseline's. The speedup is a ratio of
// two timings on the same machine, so the check transfers across hardware.
//
// Run:  ./build/bench/bench_update_churn [--out=BENCH_churn.json]
//       ./build/bench/bench_update_churn --baseline=BENCH_churn.json
// Env:  LBSQ_BENCH_FAST=1  - smaller workload for smoke testing.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "alloc_counter.h"
#include "broadcast/system.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "dynamic/dynamic_engine.h"
#include "dynamic/rebuild_policy.h"
#include "dynamic/world_versioner.h"
#include "geom/rect.h"
#include "sim/config.h"
#include "sim/update_workload.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

namespace lbsq::bench {
namespace {

constexpr double kWorldSide = 20.0;  // Table 3: 20 x 20 mi service area
constexpr int kPoiNumber = 2750;     // Table 3: Los Angeles City
constexpr int kKnnK = 5;             // Table 3: default k
constexpr double kWindowPct = 3.0;   // Table 3: window = 3% of the world
constexpr int kHeavyInterval = 25;   // heavy churn: one batch per 25 queries

bool FastMode() {
  const char* fast = std::getenv("LBSQ_BENCH_FAST");
  return fast != nullptr && fast[0] == '1';
}

// The requests plus the per-request peer snapshots. Requests carry no peer
// span: dynamic execution takes a mutable snapshot per call (revalidation
// edits it in place), so each measurement pass clones `peers` and hands its
// clone's element to Execute alongside the shared request.
struct ChurnWorkload {
  std::vector<core::QueryRequest> requests;
  std::vector<std::vector<core::PeerData>> peers;
};

ChurnWorkload MakeWorkload(
    const broadcast::BroadcastSystem& system, int n, uint64_t seed) {
  Rng rng(seed);
  const int64_t cycle = system.schedule().cycle_length();
  const double window_side = kWorldSide * std::sqrt(kWindowPct / 100.0);

  std::vector<geom::Point> hotspots;
  for (int c = 0; c < 24; ++c) {
    hotspots.push_back({rng.Uniform(2.0, kWorldSide - 2.0),
                        rng.Uniform(2.0, kWorldSide - 2.0)});
  }

  ChurnWorkload workload;
  workload.requests.reserve(static_cast<size_t>(n));
  workload.peers.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const geom::Point& hub = hotspots[rng.NextBelow(hotspots.size())];
    const geom::Point q{hub.x + rng.Uniform(-1.0, 1.0),
                       hub.y + rng.Uniform(-1.0, 1.0)};
    core::QueryRequest r;
    if (rng.NextBool(0.7)) {
      r.kind = core::QueryKind::kKnn;
      r.position = q;
      r.k = kKnnK;
    } else {
      r.kind = core::QueryKind::kWindow;
      r.window = geom::Rect::CenteredSquare(q, window_side);
    }
    r.slot = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(cycle)));
    if (rng.NextBool(0.3)) {
      // Epoch-0 peer data: under churn these regions age and exercise the
      // revalidate-or-reject path on every execution.
      core::VerifiedRegion vr;
      vr.region = geom::Rect::CenteredSquare(q, rng.Uniform(0.8, 2.0));
      for (const spatial::Poi& p : system.pois()) {
        if (vr.region.Contains(p.pos)) vr.pois.push_back(p);
      }
      workload.peers[static_cast<size_t>(i)].push_back(core::PeerData{{vr}});
    }
    r.fault_stream = static_cast<uint64_t>(i);
    workload.requests.push_back(std::move(r));
  }
  return workload;
}

struct ChurnRow {
  const char* name;
  int interval;  // queries per update batch; 0 = updates off
  double qps = 0.0;
  uint64_t epochs = 0;
  int64_t revalidated = 0;
  int64_t rejected = 0;
  int64_t steady_allocs = 0;
  int64_t steady_queries = 0;
  // Per-epoch publication latency (Apply wall time), milliseconds.
  std::vector<double> publish_ms;
  double publish_seconds = 0.0;
  dynamic::PublicationStats publication;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t rank = static_cast<size_t>(p * static_cast<double>(v.size()));
  return v[std::min(rank, v.size() - 1)];
}

// One run over the workload on a fresh versioner, chunked at the update
// interval: apply the batch (timed — publications are part of the churn
// cost, and each Apply's wall time is recorded as one publish-latency
// sample), warm the fresh epoch's memo with an uncounted pass over the
// chunk, then execute the chunk measured.
ChurnRow RunChurn(const char* name, int interval, bool force_full,
                  const std::vector<spatial::Poi>& pois,
                  const ChurnWorkload& workload) {
  const std::vector<core::QueryRequest>& requests = workload.requests;
  const geom::Rect world{0.0, 0.0, kWorldSide, kWorldSide};
  dynamic::WorldVersioner versioner(pois, world, broadcast::BroadcastParams{},
                                    core::EngineOptions{});
  dynamic::RebuildPolicy policy;
  policy.force_full = force_full;
  versioner.set_rebuild_policy(policy);
  dynamic::DynamicQueryEngine engine(versioner);
  const int64_t base_insert_id = sim::FirstInsertId(pois);
  sim::UpdateWorkloadConfig update_config;
  update_config.interval_events = interval;

  core::QueryWorkspace workspace;
  // Per-request outcome storage, warmed by the warm sub-pass so each
  // measured execution recycles the inner buffers of its own twin.
  std::vector<core::QueryOutcome> outcomes(requests.size());
  // Revalidation edits the peer snapshot in place, so both sub-passes get
  // their own pre-built mutable copy (allocated here, outside the counted
  // region).
  std::vector<std::vector<core::PeerData>> warm_peers = workload.peers;
  std::vector<std::vector<core::PeerData>> measured_peers = workload.peers;

  ChurnRow row;
  row.name = name;
  row.interval = interval;
  dynamic::RevalidationStats stats;
  double seconds = 0.0;
  uint64_t batch_index = 0;

  const size_t n = requests.size();
  for (size_t begin = 0; begin < n;) {
    size_t end = n;
    if (interval > 0) {
      const size_t step = static_cast<size_t>(interval);
      end = std::min(n, (begin / step + 1) * step);
      if (begin > 0 && begin % step == 0) {
        ++batch_index;
        const std::vector<dynamic::PoiUpdate> batch = sim::GenerateUpdateBatch(
            update_config, /*seed=*/29, batch_index,
            versioner.Current()->pois, world, base_insert_id);
        const auto start = std::chrono::steady_clock::now();
        versioner.Apply(batch);
        const double s = SecondsSince(start);
        row.publish_ms.push_back(s * 1e3);
        row.publish_seconds += s;
        seconds += s;
      }
    }
    for (size_t i = begin; i < end; ++i) {
      engine.Execute(requests[i], &warm_peers[i], workspace, &outcomes[i]);
    }
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = begin; i < end; ++i) {
      const uint64_t before = AllocCount();
      engine.Execute(requests[i], &measured_peers[i], workspace, &outcomes[i],
                     &stats);
      row.steady_allocs += static_cast<int64_t>(AllocCount() - before);
      ++row.steady_queries;
    }
    seconds += SecondsSince(start);
    begin = end;
  }

  row.qps = static_cast<double>(n) / seconds;
  row.revalidated = stats.revalidated;
  row.rejected = stats.rejected;
  row.epochs = versioner.latest_epoch();
  row.publication = versioner.publication_stats();
  return row;
}

struct BenchResult {
  int n_queries = 0;
  std::vector<ChurnRow> rows;  // off, sparse, heavy (incremental policy)
  ChurnRow heavy_full;         // heavy rerun with RebuildPolicy::force_full
  double inc_p50_ms = 0.0;
  double inc_p99_ms = 0.0;
  double full_p50_ms = 0.0;
  double full_p99_ms = 0.0;
  double inc_epochs_per_sec = 0.0;
  double speedup = 0.0;  // full publish time / incremental publish time
};

void WriteJson(const BenchResult& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  const ChurnRow& heavy = r.rows.back();
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_update_churn\",\n"
               "  \"workload\": {\n"
               "    \"parameter_set\": \"Los Angeles City\",\n"
               "    \"poi_number\": %d,\n"
               "    \"world_side_mi\": %.1f,\n"
               "    \"knn_k\": %d,\n"
               "    \"window_pct\": %.1f,\n"
               "    \"n_queries\": %d,\n"
               "    \"heavy_interval\": %d\n"
               "  },\n",
               kPoiNumber, kWorldSide, kKnnK, kWindowPct, r.n_queries,
               kHeavyInterval);
  for (const ChurnRow& row : r.rows) {
    std::fprintf(f, "  \"%s_qps\": %.1f,\n", row.name, row.qps);
  }
  std::fprintf(
      f,
      "  \"heavy_epochs\": %llu,\n"
      "  \"heavy_epochs_patched\": %lld,\n"
      "  \"heavy_full_rebuild_fallbacks\": %lld,\n"
      "  \"heavy_buckets_patched\": %lld,\n"
      "  \"heavy_buckets_shared\": %lld,\n"
      "  \"incremental_publish_p50_ms\": %.4f,\n"
      "  \"incremental_publish_p99_ms\": %.4f,\n"
      "  \"incremental_epochs_per_sec\": %.1f,\n"
      "  \"full_publish_p50_ms\": %.4f,\n"
      "  \"full_publish_p99_ms\": %.4f,\n"
      "  \"incremental_vs_full_speedup\": %.4f,\n"
      "  \"alloc_counting\": %s\n"
      "}\n",
      static_cast<unsigned long long>(heavy.epochs),
      static_cast<long long>(heavy.publication.epochs_patched),
      static_cast<long long>(heavy.publication.full_rebuild_fallbacks),
      static_cast<long long>(heavy.publication.buckets_patched),
      static_cast<long long>(heavy.publication.buckets_shared),
      r.inc_p50_ms, r.inc_p99_ms, r.inc_epochs_per_sec, r.full_p50_ms,
      r.full_p99_ms, r.speedup, kAllocCountingEnabled ? "true" : "false");
  std::fclose(f);
}

// Pulls `"key": <number>` out of a flat JSON file. Enough for our own
// output format; no external JSON dependency.
bool ReadJsonNumber(const std::string& path, const std::string& key,
                    double* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

int Run(const std::string& out_path, const std::string& baseline_path,
        double max_regression) {
  const geom::Rect world{0.0, 0.0, kWorldSide, kWorldSide};
  Rng rng(7);
  const std::vector<spatial::Poi> pois =
      spatial::GenerateUniformPois(&rng, world, kPoiNumber);
  const auto system_ptr =
      storage::SystemBuilder(world, broadcast::BroadcastParams{})
          .BuildSystemFromPois(pois);
  const broadcast::BroadcastSystem& system = *system_ptr;
  BenchResult result;
  result.n_queries = FastMode() ? 300 : 1500;
  const ChurnWorkload workload =
      MakeWorkload(system, result.n_queries, /*seed=*/13);

  std::printf("update churn bench: %d queries, %d POIs, alloc counting %s\n",
              result.n_queries, kPoiNumber,
              kAllocCountingEnabled ? "on" : "off");
  std::printf("%-12s %10s %8s %8s %12s %10s %16s\n", "churn", "qps", "epochs",
              "patched", "revalidated", "rejected", "allocs/query");

  bool ok = true;
  const auto print_row = [&ok](const ChurnRow& row) {
    const double allocs_per_query =
        row.steady_queries > 0
            ? static_cast<double>(row.steady_allocs) / row.steady_queries
            : 0.0;
    std::printf("%-12s %10.0f %8llu %8lld %12lld %10lld %16.4f\n", row.name,
                row.qps, static_cast<unsigned long long>(row.epochs),
                static_cast<long long>(row.publication.epochs_patched),
                static_cast<long long>(row.revalidated),
                static_cast<long long>(row.rejected), allocs_per_query);
    if (kAllocCountingEnabled && row.steady_allocs != 0) {
      std::fprintf(stderr,
                   "FATAL: %s churn performed %lld steady-state allocations "
                   "over %lld queries (expected 0)\n",
                   row.name, static_cast<long long>(row.steady_allocs),
                   static_cast<long long>(row.steady_queries));
      ok = false;
    }
  };

  for (const auto& [name, interval] :
       {std::pair<const char*, int>{"off", 0}, {"sparse", 100}}) {
    result.rows.push_back(
        RunChurn(name, interval, /*force_full=*/false, pois, workload));
    print_row(result.rows.back());
  }
  // The two timed heavy passes run best-of-R (keyed on the median publish
  // latency) so one noisy process slice cannot tilt the gated speedup. The
  // full-rebuild pass sees the same update batches: publication is
  // state-identical either way, so the batch sequence is too — only the
  // per-epoch cost differs.
  const int heavy_reps = FastMode() ? 1 : 2;
  const auto best_of = [&](const char* name, bool force_full) {
    ChurnRow best;
    double best_p50 = 1e300;
    for (int rep = 0; rep < heavy_reps; ++rep) {
      ChurnRow row =
          RunChurn(name, kHeavyInterval, force_full, pois, workload);
      const double p50 = Percentile(row.publish_ms, 0.50);
      if (p50 < best_p50) {
        best_p50 = p50;
        best = std::move(row);
      }
    }
    return best;
  };
  result.rows.push_back(best_of("heavy", /*force_full=*/false));
  print_row(result.rows.back());
  result.heavy_full = best_of("heavy-full", /*force_full=*/true);
  print_row(result.heavy_full);

  const ChurnRow& heavy = result.rows.back();
  result.inc_p50_ms = Percentile(heavy.publish_ms, 0.50);
  result.inc_p99_ms = Percentile(heavy.publish_ms, 0.99);
  result.full_p50_ms = Percentile(result.heavy_full.publish_ms, 0.50);
  result.full_p99_ms = Percentile(result.heavy_full.publish_ms, 0.99);
  result.inc_epochs_per_sec =
      heavy.publish_seconds > 0.0
          ? static_cast<double>(heavy.publish_ms.size()) /
                heavy.publish_seconds
          : 0.0;
  // Median-over-median: one scheduler blip in 59 publish samples would skew
  // a totals ratio, so the gated speedup compares the typical epoch instead.
  result.speedup =
      result.inc_p50_ms > 0.0 ? result.full_p50_ms / result.inc_p50_ms : 0.0;

  std::printf("heavy-churn epoch publication (%zu epochs):\n",
              heavy.publish_ms.size());
  std::printf("  incremental publish : p50 %8.3f ms, p99 %8.3f ms "
              "(%.0f epochs/s)\n",
              result.inc_p50_ms, result.inc_p99_ms, result.inc_epochs_per_sec);
  std::printf("  full-rebuild publish: p50 %8.3f ms, p99 %8.3f ms\n",
              result.full_p50_ms, result.full_p99_ms);
  std::printf("  incremental speedup : %10.2fx\n", result.speedup);
  std::printf("  buckets patched/shared: %lld / %lld, fallbacks: %lld\n",
              static_cast<long long>(heavy.publication.buckets_patched),
              static_cast<long long>(heavy.publication.buckets_shared),
              static_cast<long long>(
                  heavy.publication.full_rebuild_fallbacks));

  if (!ok) return 1;

  if (!baseline_path.empty()) {
    // Absolute gate first: the acceptance bar for the incremental path.
    constexpr double kAbsoluteFloor = 3.0;
    if (result.speedup < kAbsoluteFloor) {
      std::fprintf(stderr,
                   "FAIL: incremental publish speedup %.2fx is below the "
                   "%.1fx absolute floor\n",
                   result.speedup, kAbsoluteFloor);
      return 1;
    }
    double baseline_speedup = 0.0;
    if (!ReadJsonNumber(baseline_path, "incremental_vs_full_speedup",
                        &baseline_speedup) ||
        baseline_speedup <= 0.0) {
      std::fprintf(stderr,
                   "FAIL: no usable \"incremental_vs_full_speedup\" in "
                   "baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    const double floor = baseline_speedup * (1.0 - max_regression);
    std::printf("  baseline speedup    : %10.2fx (floor %.2fx at %.0f%% "
                "tolerance)\n",
                baseline_speedup, floor, max_regression * 100.0);
    if (result.speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: incremental publish speedup %.2fx regressed more "
                   "than %.0f%% below baseline %.2fx\n",
                   result.speedup, max_regression * 100.0, baseline_speedup);
      return 1;
    }
    std::printf("  perf check          : OK\n");
    return 0;
  }

  WriteJson(result, out_path);
  std::printf("  wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace lbsq::bench

int main(int argc, char** argv) {
  std::string out_path = "BENCH_churn.json";
  std::string baseline_path;
  double max_regression = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--max-regression=", 0) == 0) {
      max_regression = std::strtod(arg.c_str() + 17, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=FILE] [--baseline=FILE] "
                   "[--max-regression=FRAC]\n",
                   argv[0]);
      return 2;
    }
  }
  return lbsq::bench::Run(out_path, baseline_path, max_regression);
}
