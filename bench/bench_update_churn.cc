// Query throughput and allocation behavior under dynamic-world churn.
//
// Runs the Table 3 Los Angeles City workload (2750 POIs, 20 x 20 mi,
// k = 5, 3% windows, 30% of queries carrying peer data) through a
// DynamicQueryEngine while a WorldVersioner applies insert/delete/move
// batches at a swept interval:
//
//   off      : zero updates — the static baseline.
//   sparse   : one batch per 100 queries.
//   heavy    : one batch per 25 queries.
//
// For each setting it reports queries/s (epoch rebuilds included), epochs
// published, and the peer-region revalidation counts. When built with
// LBSQ_COUNT_ALLOCS (the default outside sanitizer builds) it also counts
// heap allocations per steady-state query and exits 1 unless that count is
// ZERO: churn must not cost the query path its zero-allocation property.
//
// "Steady state" is per epoch: an epoch publication rebinds the workspace
// memo (covers of the old world are gone with the old system), so each
// inter-update chunk of the workload runs twice — once uncounted to warm
// the fresh memo and the outcome buffers, then measured. The marginal cost
// of a query on a warm epoch must be allocation-free; the warm-up work is
// charged to the epoch switch, exactly like the rebuild itself.
//
// Run:  ./build/bench/bench_update_churn
// Env:  LBSQ_BENCH_FAST=1  - smaller workload for smoke testing.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "alloc_counter.h"
#include "broadcast/system.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "dynamic/dynamic_engine.h"
#include "dynamic/world_versioner.h"
#include "geom/rect.h"
#include "sim/config.h"
#include "sim/update_workload.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

namespace lbsq::bench {
namespace {

constexpr double kWorldSide = 20.0;  // Table 3: 20 x 20 mi service area
constexpr int kPoiNumber = 2750;     // Table 3: Los Angeles City
constexpr int kKnnK = 5;             // Table 3: default k
constexpr double kWindowPct = 3.0;   // Table 3: window = 3% of the world

bool FastMode() {
  const char* fast = std::getenv("LBSQ_BENCH_FAST");
  return fast != nullptr && fast[0] == '1';
}

// The requests plus the per-request peer snapshots. Requests carry no peer
// span: dynamic execution takes a mutable snapshot per call (revalidation
// edits it in place), so each measurement pass clones `peers` and hands its
// clone's element to Execute alongside the shared request.
struct ChurnWorkload {
  std::vector<core::QueryRequest> requests;
  std::vector<std::vector<core::PeerData>> peers;
};

ChurnWorkload MakeWorkload(
    const broadcast::BroadcastSystem& system, int n, uint64_t seed) {
  Rng rng(seed);
  const int64_t cycle = system.schedule().cycle_length();
  const double window_side = kWorldSide * std::sqrt(kWindowPct / 100.0);

  std::vector<geom::Point> hotspots;
  for (int c = 0; c < 24; ++c) {
    hotspots.push_back({rng.Uniform(2.0, kWorldSide - 2.0),
                        rng.Uniform(2.0, kWorldSide - 2.0)});
  }

  ChurnWorkload workload;
  workload.requests.reserve(static_cast<size_t>(n));
  workload.peers.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const geom::Point& hub = hotspots[rng.NextBelow(hotspots.size())];
    const geom::Point q{hub.x + rng.Uniform(-1.0, 1.0),
                       hub.y + rng.Uniform(-1.0, 1.0)};
    core::QueryRequest r;
    if (rng.NextBool(0.7)) {
      r.kind = core::QueryKind::kKnn;
      r.position = q;
      r.k = kKnnK;
    } else {
      r.kind = core::QueryKind::kWindow;
      r.window = geom::Rect::CenteredSquare(q, window_side);
    }
    r.slot = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(cycle)));
    if (rng.NextBool(0.3)) {
      // Epoch-0 peer data: under churn these regions age and exercise the
      // revalidate-or-reject path on every execution.
      core::VerifiedRegion vr;
      vr.region = geom::Rect::CenteredSquare(q, rng.Uniform(0.8, 2.0));
      for (const spatial::Poi& p : system.pois()) {
        if (vr.region.Contains(p.pos)) vr.pois.push_back(p);
      }
      workload.peers[static_cast<size_t>(i)].push_back(core::PeerData{{vr}});
    }
    r.fault_stream = static_cast<uint64_t>(i);
    workload.requests.push_back(std::move(r));
  }
  return workload;
}

struct ChurnRow {
  const char* name;
  int interval;  // queries per update batch; 0 = updates off
  double qps = 0.0;
  uint64_t epochs = 0;
  int64_t revalidated = 0;
  int64_t rejected = 0;
  int64_t steady_allocs = 0;
  int64_t steady_queries = 0;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One run over the workload on a fresh versioner, chunked at the update
// interval: apply the batch (timed — rebuilds are part of the churn cost),
// warm the fresh epoch's memo with an uncounted pass over the chunk, then
// execute the chunk measured.
ChurnRow RunChurn(const char* name, int interval,
                  const std::vector<spatial::Poi>& pois,
                  const ChurnWorkload& workload) {
  const std::vector<core::QueryRequest>& requests = workload.requests;
  const geom::Rect world{0.0, 0.0, kWorldSide, kWorldSide};
  dynamic::WorldVersioner versioner(pois, world, broadcast::BroadcastParams{},
                                    core::EngineOptions{});
  dynamic::DynamicQueryEngine engine(versioner);
  const int64_t base_insert_id = sim::FirstInsertId(pois);
  sim::UpdateWorkloadConfig update_config;
  update_config.interval_events = interval;

  core::QueryWorkspace workspace;
  // Per-request outcome storage, warmed by the warm sub-pass so each
  // measured execution recycles the inner buffers of its own twin.
  std::vector<core::QueryOutcome> outcomes(requests.size());
  // Revalidation edits the peer snapshot in place, so both sub-passes get
  // their own pre-built mutable copy (allocated here, outside the counted
  // region).
  std::vector<std::vector<core::PeerData>> warm_peers = workload.peers;
  std::vector<std::vector<core::PeerData>> measured_peers = workload.peers;

  ChurnRow row;
  row.name = name;
  row.interval = interval;
  dynamic::RevalidationStats stats;
  double seconds = 0.0;
  uint64_t batch_index = 0;

  const size_t n = requests.size();
  for (size_t begin = 0; begin < n;) {
    size_t end = n;
    if (interval > 0) {
      const size_t step = static_cast<size_t>(interval);
      end = std::min(n, (begin / step + 1) * step);
      if (begin > 0 && begin % step == 0) {
        ++batch_index;
        const auto start = std::chrono::steady_clock::now();
        versioner.Apply(sim::GenerateUpdateBatch(
            update_config, /*seed=*/29, batch_index,
            versioner.Current()->pois, world, base_insert_id));
        seconds += SecondsSince(start);
      }
    }
    for (size_t i = begin; i < end; ++i) {
      engine.Execute(requests[i], &warm_peers[i], workspace, &outcomes[i]);
    }
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = begin; i < end; ++i) {
      const uint64_t before = AllocCount();
      engine.Execute(requests[i], &measured_peers[i], workspace, &outcomes[i],
                     &stats);
      row.steady_allocs += static_cast<int64_t>(AllocCount() - before);
      ++row.steady_queries;
    }
    seconds += SecondsSince(start);
    begin = end;
  }

  row.qps = static_cast<double>(n) / seconds;
  row.revalidated = stats.revalidated;
  row.rejected = stats.rejected;
  row.epochs = versioner.latest_epoch();
  return row;
}

int Run() {
  const geom::Rect world{0.0, 0.0, kWorldSide, kWorldSide};
  Rng rng(7);
  const std::vector<spatial::Poi> pois =
      spatial::GenerateUniformPois(&rng, world, kPoiNumber);
  const auto system_ptr =
      storage::SystemBuilder(world, broadcast::BroadcastParams{})
          .BuildSystemFromPois(pois);
  const broadcast::BroadcastSystem& system = *system_ptr;
  const int n = FastMode() ? 300 : 1500;
  const ChurnWorkload workload = MakeWorkload(system, n, /*seed=*/13);

  std::printf("update churn bench: %d queries, %d POIs, alloc counting %s\n",
              n, kPoiNumber, kAllocCountingEnabled ? "on" : "off");
  std::printf("%-8s %10s %8s %12s %10s %16s\n", "churn", "qps", "epochs",
              "revalidated", "rejected", "allocs/query");

  bool ok = true;
  for (const auto& [name, interval] :
       {std::pair<const char*, int>{"off", 0}, {"sparse", 100},
        {"heavy", 25}}) {
    const ChurnRow row = RunChurn(name, interval, pois, workload);
    const double allocs_per_query =
        row.steady_queries > 0
            ? static_cast<double>(row.steady_allocs) / row.steady_queries
            : 0.0;
    std::printf("%-8s %10.0f %8llu %12lld %10lld %16.4f\n", row.name, row.qps,
                static_cast<unsigned long long>(row.epochs),
                static_cast<long long>(row.revalidated),
                static_cast<long long>(row.rejected), allocs_per_query);
    if (kAllocCountingEnabled && row.steady_allocs != 0) {
      std::fprintf(stderr,
                   "FATAL: %s churn performed %lld steady-state allocations "
                   "over %lld queries (expected 0)\n",
                   row.name, static_cast<long long>(row.steady_allocs),
                   static_cast<long long>(row.steady_queries));
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lbsq::bench

int main() { return lbsq::bench::Run(); }
