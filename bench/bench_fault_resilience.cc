// Fault-resilience sweep: how the sharing-based system degrades as the
// broadcast channel worsens. Sweeps the Gilbert–Elliott burst-loss level
// (steady-state loss 0..30%) at 0% and 5% CRC-detected corruption, and
// prints the resilience series: queries degraded, broadcast latency
// inflation over the fault-free channel, and channel-level loss accounting.
// The interesting claim is graceful degradation — latency rises with the
// loss rate, but with a bounded retry budget no query blocks forever and
// answer soundness is preserved (degraded queries are reported, not
// miscounted as exact).

#include <cstdio>

#include "sim/parallel_simulator.h"
#include "sim_bench_util.h"

namespace {

using namespace lbsq;

sim::SimMetrics RunOne(double bad_frac, double corruption) {
  sim::SimConfig config =
      bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
  if (bad_frac > 0.0) {
    config.fault.channel.model = fault::LossModel::kGilbertElliott;
    config.fault.channel.loss_bad = 0.8;
    config.fault.channel.p_bad_to_good = 0.1;  // mean burst: 10 slots
    config.fault.channel.p_good_to_bad =
        bad_frac / (1.0 - bad_frac) * config.fault.channel.p_bad_to_good;
  }
  config.fault.channel.corruption_prob = corruption;
  // Tight give-up policy so the degradation series is visible: two retries
  // per bucket. The default budget (32) rides out even 30% burst loss —
  // that regime is covered by fault_resilience_test.
  config.fault.policy.max_retries_per_bucket = 2;
  sim::ParallelSimulator simulator(config);
  return simulator.Run();
}

}  // namespace

int main() {
  std::printf("=== fault resilience (kNN, LA City) ===\n");
  std::printf(
      "burst model: loss_bad=0.8, mean burst 10 slots; 2 retries/bucket\n\n");
  for (double corruption : {0.0, 0.05}) {
    std::printf("--- corruption %.0f%% ---\n", corruption * 100.0);
    std::printf(
        "%-10s %-8s %-10s %-10s %-10s %-10s %-10s\n", "loss(%)", "queries",
        "degraded%", "latency", "baseline", "losses", "crc-rejects");
    for (double frac : {0.0, 0.05, 0.1, 0.2, 0.3}) {
      const double steady = frac * 0.8;  // loss_good is 0
      const sim::SimMetrics m = RunOne(frac, corruption);
      std::printf("%-10.1f %-8lld %-10.2f %-10.1f %-10.1f %-10lld %-10lld\n",
                  steady * 100.0, static_cast<long long>(m.queries),
                  m.queries > 0
                      ? 100.0 * static_cast<double>(m.degraded_queries) /
                            static_cast<double>(m.queries)
                      : 0.0,
                  m.broadcast_latency.mean(), m.baseline_latency.mean(),
                  static_cast<long long>(m.fault_losses),
                  static_cast<long long>(m.fault_corruptions));
    }
    std::printf("\n");
  }
  return 0;
}
