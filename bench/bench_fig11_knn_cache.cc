// Figure 11 (a-c): percentage of kNN queries resolved by SBNN, approximate
// SBNN, or the broadcast channel, as a function of the per-host cache
// capacity (6..30 POIs), for the three Table 3 parameter sets.

#include "sim_bench_util.h"

int main() {
  lbsq::bench::RunFigure(
      "11", "CacheCapacity", lbsq::sim::QueryType::kKnn, {6, 12, 18, 24, 30},
      [](double x, lbsq::sim::SimConfig* config) {
        config->params.csize = static_cast<int>(x);
      });
  return 0;
}
