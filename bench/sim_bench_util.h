#ifndef LBSQ_BENCH_SIM_BENCH_UTIL_H_
#define LBSQ_BENCH_SIM_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/metrics.h"

/// \file
/// Shared harness for the figure-reproduction benchmarks. Each bench sweeps
/// one parameter over the three Table 3 parameter sets and prints the same
/// series the paper's figures plot: the percentage of queries resolved by
/// SBNN / approximate SBNN / the broadcast channel (kNN), or by SBWQ / the
/// broadcast channel (window queries).
///
/// Environment knobs:
///   LBSQ_BENCH_FAST=1   - quarter-length runs for smoke testing.
///   LBSQ_WORLD_SIDE=<mi> - override the simulated world side (default 3;
///                          20 reproduces the paper's full scale).

namespace lbsq::bench {

/// Returns the base configuration for a parameter set, honoring the
/// environment knobs.
sim::SimConfig BaseConfig(const sim::ParameterSet& params,
                          sim::QueryType type);

/// One sweep point: the x value and a mutator applying it to the config.
using ConfigMutator = std::function<void(double x, sim::SimConfig*)>;

/// Runs the sweep for all three parameter sets and prints the series.
/// `xlabel` names the swept parameter (table header), `xs` are the sweep
/// values, `mutate` applies a value to a config.
void RunFigure(const std::string& figure, const std::string& xlabel,
               sim::QueryType type, const std::vector<double>& xs,
               const ConfigMutator& mutate);

}  // namespace lbsq::bench

#endif  // LBSQ_BENCH_SIM_BENCH_UTIL_H_
