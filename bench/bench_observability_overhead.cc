// Overhead of the query observability layer (common/observability.h).
//
// Runs the same simulation twice per repetition — once bare, once with a
// trace sink and a metrics registry attached — and compares queries/s.
// With observability compiled in, the delta prices span/counter recording
// plus JSONL serialization at the fold. Rebuilt with
// -DLBSQ_DISABLE_OBSERVABILITY=ON the Span/Counter calls compile to
// nothing and the attached-observer run must stay within 5% of bare.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/metrics_registry.h"
#include "common/observability.h"
#include "sim/simulator.h"
#include "sim_bench_util.h"

namespace {

using namespace lbsq;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// One full simulation; returns measured queries per wall-clock second.
double TimedRun(const sim::SimConfig& config, bool observed) {
  sim::Simulator simulator(config);
  obs::TraceSink sink;
  MetricsRegistry registry;
  if (observed) {
    const double cycle =
        static_cast<double>(simulator.system().schedule().cycle_length());
    registry.AddHistogram("access_latency", 0.0, 2.0 * cycle, 64);
    registry.AddHistogram("tuning_time", 0.0, cycle, 64);
    simulator.SetObserver(&sink, &registry);
  }
  const auto start = std::chrono::steady_clock::now();
  const sim::SimMetrics metrics = simulator.Run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(metrics.queries) / seconds;
}

}  // namespace

int main() {
  sim::SimConfig config =
      bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
  // The observability cost is per query; a short run with the standard
  // density resolves a 1% difference fine.
  config.warmup_min = 5.0;
  config.duration_min = 10.0;

  std::printf("=== Observability overhead (recording %s) ===\n",
              obs::kObservabilityCompiledIn ? "compiled in" : "compiled OUT");
  std::printf("(LA City kNN, %.1f mi world, %.0f min measured; median of 5 "
              "interleaved reps)\n\n",
              config.world_side_mi, config.duration_min);

  constexpr int kReps = 5;
  std::vector<double> bare, observed;
  TimedRun(config, false);  // warm up the page cache / allocator
  for (int rep = 0; rep < kReps; ++rep) {
    bare.push_back(TimedRun(config, false));
    observed.push_back(TimedRun(config, true));
  }

  const double bare_qps = Median(bare);
  const double observed_qps = Median(observed);
  const double overhead = (bare_qps - observed_qps) / bare_qps * 100.0;
  std::printf("%-28s %12.0f queries/s\n", "no observer", bare_qps);
  std::printf("%-28s %12.0f queries/s\n", "trace sink + registry",
              observed_qps);
  std::printf("%-28s %11.1f%%\n", "overhead", overhead);
  if (!obs::kObservabilityCompiledIn && overhead >= 5.0) {
    std::printf("\nFAIL: compiled-out observability must cost < 5%%\n");
    return 1;
  }
  return 0;
}
