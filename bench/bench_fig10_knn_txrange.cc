// Figure 10 (a-c): percentage of kNN queries resolved by SBNN, approximate
// SBNN, or the broadcast channel, as a function of the wireless transmission
// range (10..200 m), for the three Table 3 parameter sets.

#include "sim_bench_util.h"

int main() {
  lbsq::bench::RunFigure(
      "10", "TxRange(m)", lbsq::sim::QueryType::kKnn,
      {10, 20, 40, 60, 80, 100, 120, 140, 160, 180, 200},
      [](double x, lbsq::sim::SimConfig* config) {
        config->params.tx_range_m = x;
      });
  return 0;
}
