// Micro-benchmarks (google-benchmark) for the hot algorithmic kernels, plus
// the design-choice ablations DESIGN.md calls out: best-first vs depth-first
// R-tree kNN, single-span vs partitioned Hilbert retrieval, and NNV cost as
// a function of the peer count.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "broadcast/system.h"
#include "broadcast/wire.h"
#include "common/rng.h"
#include "core/nnv.h"
#include "geom/rect_region.h"
#include "hilbert/hilbert.h"
#include "kernels/dispatch.h"
#include "kernels/kernels.h"
#include "onair/onair_window.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"
#include "spatial/quadtree.h"
#include "spatial/rstar_tree.h"
#include "spatial/rtree.h"

namespace {

using namespace lbsq;

const geom::Rect kWorld{0.0, 0.0, 100.0, 100.0};

void BM_HilbertEncode(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<hilbert::CellXY> cells;
  for (int i = 0; i < 1024; ++i) {
    cells.push_back({static_cast<uint32_t>(rng.NextBelow(1u << order)),
                     static_cast<uint32_t>(rng.NextBelow(1u << order))});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hilbert::XyToIndex(order, cells[i]));
    i = (i + 1) & 1023;
  }
}
BENCHMARK(BM_HilbertEncode)->Arg(4)->Arg(8)->Arg(16);

void BM_HilbertCoverRect(benchmark::State& state) {
  hilbert::HilbertGrid grid(kWorld, static_cast<int>(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    const geom::Point a{rng.Uniform(0.0, 90.0), rng.Uniform(0.0, 90.0)};
    const geom::Rect query{a.x, a.y, a.x + 10.0, a.y + 10.0};
    benchmark::DoNotOptimize(grid.CoverRect(query));
  }
}
BENCHMARK(BM_HilbertCoverRect)->Arg(4)->Arg(6)->Arg(8);

void BM_RTreeInsert(benchmark::State& state) {
  Rng rng(3);
  const auto pois = spatial::GenerateUniformPois(
      &rng, kWorld, state.range(0));
  for (auto _ : state) {
    spatial::RTree tree;
    tree.InsertAll(pois);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

// Ablation: the two classic kNN strategies on the same tree.
void BM_RTreeKnnBestFirst(benchmark::State& state) {
  Rng rng(4);
  spatial::RTree tree;
  tree.InsertAll(spatial::GenerateUniformPois(&rng, kWorld, 20000));
  for (auto _ : state) {
    const geom::Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    benchmark::DoNotOptimize(
        tree.KnnBestFirst(q, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_RTreeKnnBestFirst)->Arg(1)->Arg(10)->Arg(100);

void BM_RTreeKnnDepthFirst(benchmark::State& state) {
  Rng rng(4);
  spatial::RTree tree;
  tree.InsertAll(spatial::GenerateUniformPois(&rng, kWorld, 20000));
  for (auto _ : state) {
    const geom::Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    benchmark::DoNotOptimize(
        tree.KnnDepthFirst(q, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_RTreeKnnDepthFirst)->Arg(1)->Arg(10)->Arg(100);

// Ablation: the same kNN on the three index structures.
void BM_RStarKnn(benchmark::State& state) {
  Rng rng(4);
  spatial::RStarTree tree;
  tree.InsertAll(spatial::GenerateUniformPois(&rng, kWorld, 20000));
  for (auto _ : state) {
    const geom::Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    benchmark::DoNotOptimize(tree.Knn(q, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_RStarKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_QuadTreeKnn(benchmark::State& state) {
  Rng rng(4);
  spatial::QuadTree tree(kWorld, 8);
  tree.InsertAll(spatial::GenerateUniformPois(&rng, kWorld, 20000));
  for (auto _ : state) {
    const geom::Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    benchmark::DoNotOptimize(tree.Knn(q, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_QuadTreeKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_WindowQueryByIndex(benchmark::State& state) {
  Rng rng(9);
  const auto pois = spatial::GenerateUniformPois(&rng, kWorld, 20000);
  spatial::RTree rtree;
  spatial::RStarTree rstar;
  spatial::QuadTree quad(kWorld, 8);
  rtree.InsertAll(pois);
  rstar.InsertAll(pois);
  quad.InsertAll(pois);
  const int which = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const geom::Point a{rng.Uniform(0.0, 90.0), rng.Uniform(0.0, 90.0)};
    const geom::Rect window{a.x, a.y, a.x + 10.0, a.y + 10.0};
    switch (which) {
      case 0:
        benchmark::DoNotOptimize(rtree.WindowQuery(window));
        break;
      case 1:
        benchmark::DoNotOptimize(rstar.WindowQuery(window));
        break;
      default:
        benchmark::DoNotOptimize(quad.WindowQuery(window));
        break;
    }
  }
  state.SetLabel(which == 0 ? "guttman" : which == 1 ? "rstar" : "quadtree");
}
BENCHMARK(BM_WindowQueryByIndex)->Arg(0)->Arg(1)->Arg(2);

// Wire-format throughput.
void BM_WireBucketRoundTrip(benchmark::State& state) {
  Rng rng(13);
  const geom::Rect world{0.0, 0.0, 16.0, 16.0};
  hilbert::HilbertGrid grid(world, 5);
  const auto pois = spatial::GenerateUniformPois(
      &rng, world, state.range(0));
  const auto buckets = broadcast::BuildBuckets(pois, grid,
                                               static_cast<int>(state.range(0)));
  const auto bytes = broadcast::EncodeBucket(buckets.front());
  for (auto _ : state) {
    broadcast::DataBucket decoded;
    benchmark::DoNotOptimize(
        broadcast::DecodeBucket(bytes.data(), bytes.size(), &decoded));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_WireBucketRoundTrip)->Arg(8)->Arg(64)->Arg(512);

// The merged-verified-region construction that dominates NNV (the paper's
// O(n log n + i log n) MapOverlay step, here as exact rectangle algebra).
void BM_RegionMerge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<geom::Rect> rects;
  for (int i = 0; i < n; ++i) {
    const geom::Point c{rng.Uniform(40.0, 60.0), rng.Uniform(40.0, 60.0)};
    rects.push_back(geom::Rect::CenteredSquare(c, rng.Uniform(2.0, 6.0)));
  }
  for (auto _ : state) {
    geom::RectRegion region;
    for (const auto& r : rects) region.Add(r);
    benchmark::DoNotOptimize(region.BoundaryDistance({50.0, 50.0}));
  }
}
BENCHMARK(BM_RegionMerge)->Arg(4)->Arg(16)->Arg(64);

// Full NNV cost as a function of the number of responding peers.
void BM_NnvByPeerCount(benchmark::State& state) {
  const int peers = static_cast<int>(state.range(0));
  Rng rng(6);
  const auto server = spatial::GenerateUniformPois(&rng, kWorld, 2000);
  std::vector<core::PeerData> peer_data;
  for (int p = 0; p < peers; ++p) {
    core::VerifiedRegion vr;
    vr.region = geom::Rect::CenteredSquare(
        {rng.Uniform(45.0, 55.0), rng.Uniform(45.0, 55.0)},
        rng.Uniform(2.0, 5.0));
    for (const auto& poi : server) {
      if (vr.region.Contains(poi.pos)) vr.pois.push_back(poi);
    }
    peer_data.push_back(core::PeerData{{vr}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::NearestNeighborVerify({50.0, 50.0}, 10, peer_data, 0.2));
  }
}
BENCHMARK(BM_NnvByPeerCount)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// --- SIMD kernels, per dispatch tier (Arg 0 = scalar, 1 = sse2, 2 = avx2).
// Items processed = slab elements, so the report's items/s inverts to
// ns/element at each tier. Tiers the CPU lacks are skipped.

constexpr size_t kSlabN = 2750;  // Table 3 LA City database size

struct KernelFixture {
  std::vector<double> xs, ys, dist;
  std::vector<int64_t> ids;
  std::vector<uint32_t> idx;
  KernelFixture() {
    Rng rng(21);
    xs.reserve(kSlabN), ys.reserve(kSlabN), ids.reserve(kSlabN);
    for (size_t i = 0; i < kSlabN; ++i) {
      xs.push_back(rng.Uniform(0.0, 100.0));
      ys.push_back(rng.Uniform(0.0, 100.0));
      ids.push_back(static_cast<int64_t>(i));
    }
    dist.resize(kSlabN);
    idx.resize(kSlabN);
    kernels::internal::DistanceBatchScalar(xs.data(), ys.data(), kSlabN, 50.0,
                                           50.0, dist.data());
  }
};

bool SkipUnlessRunnable(benchmark::State& state, kernels::SimdTier tier) {
  if (kernels::TierIsRunnable(tier)) return false;
  state.SkipWithError("tier not runnable on this CPU");
  return true;
}

void BM_KernelDistanceBatch(benchmark::State& state) {
  const auto tier = static_cast<kernels::SimdTier>(state.range(0));
  if (SkipUnlessRunnable(state, tier)) return;
  const kernels::KernelOps& ops = kernels::OpsForTier(tier);
  KernelFixture fx;
  for (auto _ : state) {
    ops.distance_batch(fx.xs.data(), fx.ys.data(), kSlabN, 50.0, 50.0,
                       fx.dist.data());
    benchmark::DoNotOptimize(fx.dist.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSlabN));
  state.SetLabel(kernels::TierName(tier));
}
BENCHMARK(BM_KernelDistanceBatch)->Arg(0)->Arg(1)->Arg(2);

void BM_KernelRadiusSelect(benchmark::State& state) {
  const auto tier = static_cast<kernels::SimdTier>(state.range(0));
  if (SkipUnlessRunnable(state, tier)) return;
  const kernels::KernelOps& ops = kernels::OpsForTier(tier);
  KernelFixture fx;
  std::vector<int64_t> out;
  for (auto _ : state) {
    out.clear();
    ops.append_ids_within_radius(fx.xs.data(), fx.ys.data(), fx.ids.data(),
                                 kSlabN, 50.0, 50.0, 15.0 * 15.0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSlabN));
  state.SetLabel(kernels::TierName(tier));
}
BENCHMARK(BM_KernelRadiusSelect)->Arg(0)->Arg(1)->Arg(2);

void BM_KernelWindowMask(benchmark::State& state) {
  const auto tier = static_cast<kernels::SimdTier>(state.range(0));
  if (SkipUnlessRunnable(state, tier)) return;
  const kernels::KernelOps& ops = kernels::OpsForTier(tier);
  KernelFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops.select_in_window(fx.xs.data(), fx.ys.data(), kSlabN, 40.0, 40.0,
                             60.0, 60.0, fx.idx.data()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSlabN));
  state.SetLabel(kernels::TierName(tier));
}
BENCHMARK(BM_KernelWindowMask)->Arg(0)->Arg(1)->Arg(2);

void BM_KernelKSelect(benchmark::State& state) {
  const auto tier = static_cast<kernels::SimdTier>(state.range(0));
  if (SkipUnlessRunnable(state, tier)) return;
  const kernels::KernelOps& ops = kernels::OpsForTier(tier);
  KernelFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.k_smallest(fx.dist.data(), fx.ids.data(),
                                            kSlabN, 5, fx.idx.data()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSlabN));
  state.SetLabel(kernels::TierName(tier));
}
BENCHMARK(BM_KernelKSelect)->Arg(0)->Arg(1)->Arg(2);

// Ablation: single-span vs partitioned window retrieval volumes.
void BM_WindowRetrieval(benchmark::State& state) {
  Rng rng(7);
  broadcast::BroadcastParams params;
  params.hilbert_order = 7;
  const auto server_ptr =
      storage::SystemBuilder(kWorld, params)
          .BuildSystemFromPois(spatial::GenerateUniformPois(&rng, kWorld, 5000));
  const broadcast::BroadcastSystem& server = *server_ptr;
  const auto retrieval = static_cast<onair::WindowRetrieval>(state.range(0));
  int64_t buckets = 0;
  int64_t queries = 0;
  for (auto _ : state) {
    const geom::Point a{rng.Uniform(0.0, 80.0), rng.Uniform(0.0, 80.0)};
    const geom::Rect window{a.x, a.y, a.x + 15.0, a.y + 15.0};
    const auto ids = onair::BucketsForWindow(server, window, retrieval);
    buckets += static_cast<int64_t>(ids.size());
    ++queries;
    benchmark::DoNotOptimize(ids);
  }
  state.counters["buckets_per_query"] =
      static_cast<double>(buckets) / static_cast<double>(queries);
}
BENCHMARK(BM_WindowRetrieval)
    ->Arg(static_cast<int>(onair::WindowRetrieval::kSingleSpan))
    ->Arg(static_cast<int>(onair::WindowRetrieval::kPartitionedRanges));

}  // namespace

BENCHMARK_MAIN();
