// Why the Hilbert curve? Zheng et al. chose it for its "superior locality";
// the paper inherits that choice. This bench makes the claim measurable by
// running the identical broadcast organization and on-air query workload
// over both linearizations (Hilbert vs Morton/Z-order) and comparing the
// retrieval volumes and latencies, plus the raw cover-fragmentation
// statistics of the two curves.

#include <cstdio>
#include <memory>

#include "broadcast/system.h"
#include "common/rng.h"
#include "common/stats.h"
#include "hilbert/hilbert.h"
#include "onair/onair_knn.h"
#include "onair/onair_window.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

namespace {

using namespace lbsq;

const geom::Rect kWorld{0.0, 0.0, 20.0, 20.0};

void MeasureQueries(hilbert::CurveKind curve) {
  Rng rng(1);
  broadcast::BroadcastParams params;
  params.curve = curve;
  const auto server_ptr =
      storage::SystemBuilder(kWorld, params)
          .BuildSystemFromPois(spatial::GenerateUniformPois(&rng, kWorld, 2750));
  const broadcast::BroadcastSystem& server = *server_ptr;
  RunningStat knn_buckets, knn_latency, win_buckets, win_latency;
  RunningStat win_buckets_part;
  Rng qrng(7);
  for (int i = 0; i < 400; ++i) {
    const geom::Point q{qrng.Uniform(0.0, 20.0), qrng.Uniform(0.0, 20.0)};
    const int64_t now = static_cast<int64_t>(qrng.NextBelow(
        static_cast<uint64_t>(server.schedule().cycle_length())));
    const auto knn = onair::OnAirKnn(server, q, 5, now);
    knn_buckets.Add(static_cast<double>(knn.stats.buckets_read));
    knn_latency.Add(static_cast<double>(knn.stats.access_latency));
    const geom::Rect window = geom::Rect::CenteredSquare(q, 1.73);  // ~3%
    const auto win = onair::OnAirWindow(server, window, now);
    win_buckets.Add(static_cast<double>(win.stats.buckets_read));
    win_latency.Add(static_cast<double>(win.stats.access_latency));
    const auto part = onair::BucketsForWindow(
        server, window, onair::WindowRetrieval::kPartitionedRanges);
    win_buckets_part.Add(static_cast<double>(part.size()));
  }
  std::printf("%-8s | %11.1f %11.1f | %11.1f %11.1f %12.1f\n",
              curve == hilbert::CurveKind::kHilbert ? "Hilbert" : "Morton",
              knn_buckets.mean(), knn_latency.mean(), win_buckets.mean(),
              win_latency.mean(), win_buckets_part.mean());
}

void MeasureFragmentation(hilbert::CurveKind curve) {
  hilbert::HilbertGrid grid(kWorld, 6, curve);
  Rng rng(11);
  RunningStat fragments, span;
  for (int i = 0; i < 500; ++i) {
    const geom::Point a{rng.Uniform(0.0, 16.0), rng.Uniform(0.0, 16.0)};
    const geom::Rect query{a.x, a.y, a.x + rng.Uniform(1.0, 4.0),
                           a.y + rng.Uniform(1.0, 4.0)};
    const auto ranges = grid.CoverRect(query);
    if (ranges.empty()) continue;
    fragments.Add(static_cast<double>(ranges.size()));
    span.Add(static_cast<double>(ranges.back().hi - ranges.front().lo + 1));
  }
  std::printf("%-8s | %14.1f %14.1f\n",
              curve == hilbert::CurveKind::kHilbert ? "Hilbert" : "Morton",
              fragments.mean(), span.mean());
}

}  // namespace

int main() {
  std::printf("=== Space-filling-curve ablation: Hilbert vs Morton ===\n");
  std::printf("(2750 POIs, LA density; 400 on-air 5-NN and 3%%-window "
              "queries each)\n\n");
  std::printf("%-8s | %11s %11s | %11s %11s %12s\n", "curve", "kNN bkts",
              "kNN lat", "win bkts", "win lat", "win bkts(p)");
  MeasureQueries(hilbert::CurveKind::kHilbert);
  MeasureQueries(hilbert::CurveKind::kMorton);

  std::printf("\nCover fragmentation of random windows (order-6 grid):\n\n");
  std::printf("%-8s | %14s %14s\n", "curve", "avg fragments", "avg span");
  MeasureFragmentation(hilbert::CurveKind::kHilbert);
  MeasureFragmentation(hilbert::CurveKind::kMorton);

  std::printf("\nHilbert's locality advantage is in *fragmentation* (fewer "
              "contiguous runs per\nwindow), which the partitioned-retrieval "
              "column 'win bkts(p)' and the tuning\ntime it implies benefit "
              "from; hull spans — what the basic single-span client\npays — "
              "are comparable between the curves.\n");
  return 0;
}
