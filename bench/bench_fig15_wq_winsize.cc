// Figure 15 (a-c): percentage of window queries resolved by SBWQ or the
// broadcast channel, as a function of the mean query-window size
// (1..5 % of the search space), for the three Table 3 parameter sets.

#include "sim_bench_util.h"

int main() {
  lbsq::bench::RunFigure(
      "15", "WindowSize(%)", lbsq::sim::QueryType::kWindow, {1, 2, 3, 4, 5},
      [](double x, lbsq::sim::SimConfig* config) {
        config->params.window_pct = x;
      });
  return 0;
}
