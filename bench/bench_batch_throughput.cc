// Throughput and allocation behavior of the batched query path.
//
// Runs the default Table 3 workload (Los Angeles City: 2750 POIs over a
// 20 x 20 mi world, k = 5, 3% windows) through the two QueryEngine
// execution modes:
//
//   per-query : the convenience `Execute(request)` — transient buffers.
//   batch     : `ExecuteBatch` through one warm `QueryWorkspace` — scratch
//               reuse plus the broadcast-cycle memo shared across queries.
//
// Verifies the two modes are field-for-field identical, measures best-of-R
// throughput for each, and (when built with LBSQ_COUNT_ALLOCS, the default
// outside sanitizer builds) asserts the batch path performs ZERO heap
// allocations per query once the workspace is warm.
//
// Writes the results to BENCH_core.json (see --out). With --baseline=<file>
// it instead compares the measured batch speedup against the checked-in
// baseline's and exits 1 when it regressed by more than --max-regression
// (default 0.25). The speedup ratio — not absolute qps — is compared, so
// the check is meaningful across machines of different speeds.
//
// With --via-store the engine under the bench is constructed through a
// WriteStore / OpenFromStore roundtrip over the in-memory page backend
// instead of directly from the POI list — the same baseline gate then also
// covers the storage path (state identity guarantees the workload and
// answers are unchanged; only construction differs).
//
// Run:  ./build/bench/bench_batch_throughput [--out=BENCH_core.json]
//       ./build/bench/bench_batch_throughput --baseline=BENCH_core.json
//       ./build/bench/bench_batch_throughput --via-store --baseline=...
// Env:  LBSQ_BENCH_FAST=1  - smaller batch for smoke testing.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "alloc_counter.h"
#include "broadcast/system.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/query_workspace.h"
#include "geom/rect.h"
#include "kernels/dispatch.h"
#include "kernels/kernels.h"
#include "spatial/generators.h"
#include "storage/system_builder.h"

namespace lbsq::bench {
namespace {

constexpr double kWorldSide = 20.0;    // Table 3: 20 x 20 mi service area
constexpr int kPoiNumber = 2750;       // Table 3: Los Angeles City
constexpr int kKnnK = 5;               // Table 3: default k
constexpr double kWindowPct = 3.0;     // Table 3: window = 3% of the world

bool FastMode() {
  const char* fast = std::getenv("LBSQ_BENCH_FAST");
  return fast != nullptr && fast[0] == '1';
}

// Requests plus the storage their peer spans view. The spans are bound only
// after every backing vector is final (`peer_storage` is sized up front and
// never reallocates), and the struct keeps the storage alive for as long as
// the requests are in use.
struct Workload {
  std::vector<core::QueryRequest> requests;
  std::vector<std::vector<core::PeerData>> peer_storage;
};

// The Table 3 query mix with the spatial locality the memo exploits:
// clients cluster around hot spots (a few dozen per world), so co-located
// queries within a broadcast cycle repeat the same cover rectangles.
Workload MakeWorkload(
    const broadcast::BroadcastSystem& system, int n, uint64_t seed) {
  Rng rng(seed);
  const int64_t cycle = system.schedule().cycle_length();
  const double window_side =
      kWorldSide * std::sqrt(kWindowPct / 100.0);  // 3% of the world's area

  std::vector<geom::Point> hotspots;
  for (int c = 0; c < 24; ++c) {
    hotspots.push_back({rng.Uniform(2.0, kWorldSide - 2.0),
                        rng.Uniform(2.0, kWorldSide - 2.0)});
  }

  Workload workload;
  workload.requests.reserve(static_cast<size_t>(n));
  workload.peer_storage.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const geom::Point& hub = hotspots[rng.NextBelow(hotspots.size())];
    const geom::Point q{hub.x + rng.Uniform(-1.0, 1.0),
                        hub.y + rng.Uniform(-1.0, 1.0)};
    core::QueryRequest r;
    if (rng.NextBool(0.7)) {
      r.kind = core::QueryKind::kKnn;
      r.position = q;
      r.k = kKnnK;
    } else {
      r.kind = core::QueryKind::kWindow;
      r.window = geom::Rect::CenteredSquare(q, window_side);
    }
    r.slot = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(cycle)));
    if (rng.NextBool(0.3)) {
      core::VerifiedRegion vr;
      vr.region = geom::Rect::CenteredSquare(q, rng.Uniform(0.8, 2.0));
      for (const spatial::Poi& p : system.pois()) {
        if (vr.region.Contains(p.pos)) vr.pois.push_back(p);
      }
      workload.peer_storage[static_cast<size_t>(i)].push_back(
          core::PeerData{{vr}});
    }
    r.fault_stream = static_cast<uint64_t>(i);
    workload.requests.push_back(std::move(r));
  }
  for (int i = 0; i < n; ++i) {
    workload.requests[static_cast<size_t>(i)].peers =
        workload.peer_storage[static_cast<size_t>(i)];
  }
  return workload;
}

bool CommonEq(const core::QueryResultCommon& a,
              const core::QueryResultCommon& b) {
  return a.stats.access_latency == b.stats.access_latency &&
         a.stats.tuning_time == b.stats.tuning_time &&
         a.stats.buckets_read == b.stats.buckets_read &&
         a.buckets == b.buckets && a.cacheable.region == b.cacheable.region &&
         a.cacheable.pois == b.cacheable.pois && a.degraded == b.degraded;
}

// Mode-identity check: the batch answer must be bit-identical to the
// per-query answer (the contract bench numbers are meaningless without).
bool OutcomeEq(const core::QueryOutcome& a, const core::QueryOutcome& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == core::QueryKind::kKnn) {
    if (!a.knn.has_value() || !b.knn.has_value()) return false;
    const core::SbnnOutcome& x = *a.knn;
    const core::SbnnOutcome& y = *b.knn;
    if (!CommonEq(x, y) || x.resolved_by != y.resolved_by ||
        x.neighbors.size() != y.neighbors.size()) {
      return false;
    }
    for (size_t i = 0; i < x.neighbors.size(); ++i) {
      if (!(x.neighbors[i].poi == y.neighbors[i].poi) ||
          x.neighbors[i].distance != y.neighbors[i].distance) {
        return false;
      }
    }
    return true;
  }
  if (!a.window.has_value() || !b.window.has_value()) return false;
  const core::SbwqOutcome& x = *a.window;
  const core::SbwqOutcome& y = *b.window;
  return CommonEq(x, y) && x.resolved_by_peers == y.resolved_by_peers &&
         x.pois == y.pois;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct KernelRow {
  const char* name;  // JSON key stem: kernel_<name>_{scalar_ns,active_ns,speedup}
  double scalar_ns_per_element = 0.0;
  double active_ns_per_element = 0.0;
  double speedup = 0.0;  // scalar_ns / active_ns — hardware-comparable ratio
};

struct BenchResult {
  int n_queries = 0;
  double per_query_qps = 0.0;
  double batch_qps = 0.0;
  double speedup = 0.0;
  double steady_state_allocs_per_query = 0.0;
  size_t memo_size = 0;
  std::vector<KernelRow> kernels;
};

// ns/element over the Table 3 slab size, best of 3 timed blocks.
template <typename Fn>
double MeasureKernelNs(size_t n, int block_reps, Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < block_reps; ++i) fn();
    const double s = SecondsSince(start);
    if (s < best) best = s;
  }
  return best * 1e9 / (static_cast<double>(n) * block_reps);
}

// Kernel-level throughput at the scalar tier vs the active dispatch tier,
// on a slab the size of the Table 3 database. The scalar/active ratio is
// what the baseline gate compares: like the batch speedup, it is a ratio of
// two timings on the same machine, so it transfers across hardware.
std::vector<KernelRow> RunKernelBench() {
  constexpr size_t kN = static_cast<size_t>(kPoiNumber);
  const int block_reps = FastMode() ? 50 : 400;
  Rng rng(23);
  std::vector<double> xs, ys, dist(kN);
  std::vector<int64_t> ids;
  std::vector<uint32_t> idx(kN);
  for (size_t i = 0; i < kN; ++i) {
    xs.push_back(rng.Uniform(0.0, kWorldSide));
    ys.push_back(rng.Uniform(0.0, kWorldSide));
    ids.push_back(static_cast<int64_t>(i));
  }
  kernels::internal::DistanceBatchScalar(xs.data(), ys.data(), kN,
                                         kWorldSide / 2, kWorldSide / 2,
                                         dist.data());
  const kernels::KernelOps* scalar =
      &kernels::OpsForTier(kernels::SimdTier::kScalar);
  const kernels::KernelOps* active = &kernels::Ops();
  std::vector<int64_t> radius_out;
  radius_out.reserve(kN);

  std::vector<KernelRow> rows;
  const auto row = [&](const char* name, auto&& fn) {
    KernelRow r;
    r.name = name;
    const kernels::KernelOps* ops = scalar;
    r.scalar_ns_per_element = MeasureKernelNs(kN, block_reps,
                                              [&] { fn(*ops); });
    ops = active;
    r.active_ns_per_element = MeasureKernelNs(kN, block_reps,
                                              [&] { fn(*ops); });
    r.speedup = r.scalar_ns_per_element / r.active_ns_per_element;
    rows.push_back(r);
  };
  row("distance_batch", [&](const kernels::KernelOps& ops) {
    ops.distance_batch(xs.data(), ys.data(), kN, kWorldSide / 2,
                       kWorldSide / 2, dist.data());
  });
  row("radius_select", [&](const kernels::KernelOps& ops) {
    radius_out.clear();
    ops.append_ids_within_radius(xs.data(), ys.data(), ids.data(), kN,
                                 kWorldSide / 2, kWorldSide / 2, 3.0 * 3.0,
                                 &radius_out);
  });
  row("window_mask", [&](const kernels::KernelOps& ops) {
    ops.select_in_window(xs.data(), ys.data(), kN, 8.0, 8.0, 12.0, 12.0,
                         idx.data());
  });
  row("k_select", [&](const kernels::KernelOps& ops) {
    ops.k_smallest(dist.data(), ids.data(), kN, kKnnK, idx.data());
  });
  return rows;
}

BenchResult RunBench(bool via_store) {
  const geom::Rect world{0.0, 0.0, kWorldSide, kWorldSide};
  Rng rng(7);
  const storage::SystemBuilder builder(world, broadcast::BroadcastParams{});
  std::unique_ptr<core::ShardedQueryEngine> sharded = builder.BuildFromPois(
      spatial::GenerateUniformPois(&rng, world, kPoiNumber));
  storage::MemoryStorageManager page_store;
  storage::BufferPool pool(&page_store, /*capacity=*/64);
  if (via_store) {
    // Persist into the in-memory page backend and reopen: the engine under
    // the bench then decoded every POI, bucket, and index entry from pages
    // through the buffer pool, so the baseline gate covers the store path.
    // State identity makes the workload and the answers unchanged.
    if (!builder.WriteStore(*sharded, &page_store)) {
      std::fprintf(stderr, "FATAL: WriteStore to the memory backend failed\n");
      std::exit(1);
    }
    storage::OpenStatus status = storage::OpenStatus::kOk;
    sharded = builder.OpenFromStore(page_store, &pool, &status);
    if (sharded == nullptr) {
      std::fprintf(stderr, "FATAL: OpenFromStore failed: %s\n",
                   storage::OpenStatusName(status));
      std::exit(1);
    }
  }
  const broadcast::BroadcastSystem& system = *sharded->shard_system(0);
  const core::QueryEngine& engine = *sharded->shard_engine(0);

  BenchResult result;
  result.n_queries = FastMode() ? 400 : 2000;
  const Workload workload = MakeWorkload(system, result.n_queries,
                                         /*seed=*/13);
  const std::vector<core::QueryRequest>& requests = workload.requests;

  // Identity first: every batch outcome must match its per-query twin.
  std::vector<core::QueryOutcome> reference;
  reference.reserve(requests.size());
  for (const core::QueryRequest& r : requests) {
    reference.push_back(engine.Execute(r));
  }
  core::QueryWorkspace workspace;
  {
    const std::span<const core::QueryOutcome> batch =
        engine.ExecuteBatch(requests, workspace);
    for (size_t i = 0; i < requests.size(); ++i) {
      if (!OutcomeEq(reference[i], batch[i])) {
        std::fprintf(stderr,
                     "FATAL: batch outcome %zu differs from per-query "
                     "Execute\n",
                     i);
        std::exit(1);
      }
    }
  }
  result.memo_size = workspace.memo_size();

  // Steady state: the workspace is warm after the identity pass; one more
  // full batch must not touch the heap at all.
  const uint64_t allocs_before = AllocCount();
  engine.ExecuteBatch(requests, workspace);
  const uint64_t allocs_after = AllocCount();
  result.steady_state_allocs_per_query =
      static_cast<double>(allocs_after - allocs_before) /
      static_cast<double>(requests.size());

#ifdef LBSQ_COUNT_ALLOCS
  // LBSQ_DBG=1: instead of benchmarking, print a backtrace (to stderr) for
  // every allocation a warm batch performs, then exit — the fastest way to
  // locate a zero-allocation regression. Symbolize with
  // `addr2line -e <binary> -f -C <offsets>`.
  if (std::getenv("LBSQ_DBG") != nullptr) {
    g_alloc_trap = true;
    engine.ExecuteBatch(std::span<const core::QueryRequest>(
                            requests.data(),
                            std::min<size_t>(requests.size(), 50)),
                        workspace);
    g_alloc_trap = false;
    std::exit(0);
  }
#endif

  // Throughput, best of R runs per mode (interleaved so thermal / frequency
  // drift hits both modes alike).
  const int repetitions = FastMode() ? 3 : 5;
  double best_per_query = 1e300;
  double best_batch = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (const core::QueryRequest& r : requests) {
      const core::QueryOutcome out = engine.Execute(r);
      (void)out;
    }
    const double per_query_s = SecondsSince(start);
    if (per_query_s < best_per_query) best_per_query = per_query_s;

    start = std::chrono::steady_clock::now();
    engine.ExecuteBatch(requests, workspace);
    const double batch_s = SecondsSince(start);
    if (batch_s < best_batch) best_batch = batch_s;
  }
  result.per_query_qps = static_cast<double>(result.n_queries) /
                         best_per_query;
  result.batch_qps = static_cast<double>(result.n_queries) / best_batch;
  result.speedup = result.batch_qps / result.per_query_qps;
  result.kernels = RunKernelBench();
  return result;
}

void WriteJson(const BenchResult& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_batch_throughput\",\n"
               "  \"workload\": {\n"
               "    \"parameter_set\": \"Los Angeles City\",\n"
               "    \"poi_number\": %d,\n"
               "    \"world_side_mi\": %.1f,\n"
               "    \"knn_k\": %d,\n"
               "    \"window_pct\": %.1f,\n"
               "    \"n_queries\": %d\n"
               "  },\n"
               "  \"per_query_qps\": %.1f,\n"
               "  \"batch_qps\": %.1f,\n"
               "  \"speedup\": %.4f,\n"
               "  \"steady_state_allocs_per_query\": %.4f,\n"
               "  \"alloc_counting\": %s,\n"
               "  \"memo_size\": %zu,\n"
               "  \"simd_tier\": \"%s\",\n"
               "  \"simd_tier_id\": %d",
               kPoiNumber, kWorldSide, kKnnK, kWindowPct, r.n_queries,
               r.per_query_qps, r.batch_qps, r.speedup,
               r.steady_state_allocs_per_query,
               kAllocCountingEnabled ? "true" : "false", r.memo_size,
               kernels::TierName(kernels::ActiveTier()),
               static_cast<int>(kernels::ActiveTier()));
  for (const KernelRow& k : r.kernels) {
    std::fprintf(f,
                 ",\n"
                 "  \"kernel_%s_scalar_ns\": %.4f,\n"
                 "  \"kernel_%s_active_ns\": %.4f,\n"
                 "  \"kernel_%s_speedup\": %.4f",
                 k.name, k.scalar_ns_per_element, k.name,
                 k.active_ns_per_element, k.name, k.speedup);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

// Pulls `"key": <number>` out of a flat JSON file. Enough for our own
// output format; no external JSON dependency.
bool ReadJsonNumber(const std::string& path, const std::string& key,
                    double* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

}  // namespace
}  // namespace lbsq::bench

int main(int argc, char** argv) {
  using namespace lbsq::bench;

  std::string out_path = "BENCH_core.json";
  std::string baseline_path;
  double max_regression = 0.25;
  bool via_store = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--max-regression=", 0) == 0) {
      max_regression = std::strtod(arg.c_str() + 17, nullptr);
    } else if (arg == "--via-store") {
      via_store = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=FILE] [--baseline=FILE] "
                   "[--max-regression=FRAC] [--via-store]\n",
                   argv[0]);
      return 2;
    }
  }

  const BenchResult r = RunBench(via_store);
  std::printf("batched query execution, Table 3 LA City workload "
              "(%d queries%s%s):\n",
              r.n_queries, FastMode() ? ", fast mode" : "",
              via_store ? ", engine opened from page store" : "");
  std::printf("  per-query Execute : %10.1f queries/s\n", r.per_query_qps);
  std::printf("  ExecuteBatch      : %10.1f queries/s\n", r.batch_qps);
  std::printf("  speedup           : %10.2fx\n", r.speedup);
  std::printf("  steady-state allocations/query: %.4f%s\n",
              r.steady_state_allocs_per_query,
              kAllocCountingEnabled ? "" : " (counting compiled out)");
  std::printf("  cycle memo entries: %zu\n", r.memo_size);
  std::printf("  SIMD dispatch tier: %s\n",
              lbsq::kernels::TierName(lbsq::kernels::ActiveTier()));
  for (const KernelRow& k : r.kernels) {
    std::printf("  kernel %-14s: %7.3f ns/elem scalar, %7.3f ns/elem %s "
                "(%.2fx)\n",
                k.name, k.scalar_ns_per_element, k.active_ns_per_element,
                lbsq::kernels::TierName(lbsq::kernels::ActiveTier()),
                k.speedup);
  }

  if (kAllocCountingEnabled && r.steady_state_allocs_per_query != 0.0) {
    std::fprintf(stderr,
                 "FAIL: steady-state batch execution allocated (%.4f "
                 "allocations/query, expected 0)\n",
                 r.steady_state_allocs_per_query);
    return 1;
  }

  if (!baseline_path.empty()) {
    double baseline_speedup = 0.0;
    if (!ReadJsonNumber(baseline_path, "speedup", &baseline_speedup) ||
        baseline_speedup <= 0.0) {
      std::fprintf(stderr, "FAIL: no usable \"speedup\" in baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    const double floor = baseline_speedup * (1.0 - max_regression);
    std::printf("  baseline speedup  : %10.2fx (floor %.2fx at %.0f%% "
                "tolerance)\n",
                baseline_speedup, floor, max_regression * 100.0);
    if (r.speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: batch speedup %.2fx regressed more than %.0f%% "
                   "below baseline %.2fx\n",
                   r.speedup, max_regression * 100.0, baseline_speedup);
      return 1;
    }
    // Kernel gates: scalar/active ratios, compared only when the baseline
    // ran at the same dispatch tier (on a lesser CPU the ratio is expected
    // to differ; absolute ns are machine-specific so they are never gated).
    double baseline_tier = -1.0;
    const bool same_tier =
        ReadJsonNumber(baseline_path, "simd_tier_id", &baseline_tier) &&
        static_cast<int>(baseline_tier) ==
            static_cast<int>(lbsq::kernels::ActiveTier());
    if (!same_tier) {
      std::printf("  kernel checks     : skipped (baseline tier differs "
                  "from active tier %s)\n",
                  lbsq::kernels::TierName(lbsq::kernels::ActiveTier()));
    } else {
      for (const KernelRow& k : r.kernels) {
        double base = 0.0;
        const std::string key = std::string("kernel_") + k.name + "_speedup";
        if (!ReadJsonNumber(baseline_path, key, &base) || base <= 0.0) {
          std::fprintf(stderr, "FAIL: no usable \"%s\" in baseline %s\n",
                       key.c_str(), baseline_path.c_str());
          return 1;
        }
        const double kernel_floor = base * (1.0 - max_regression);
        if (k.speedup < kernel_floor) {
          std::fprintf(stderr,
                       "FAIL: kernel %s speedup %.2fx regressed more than "
                       "%.0f%% below baseline %.2fx\n",
                       k.name, k.speedup, max_regression * 100.0, base);
          return 1;
        }
      }
      std::printf("  kernel checks     : OK (%zu kernels)\n",
                  r.kernels.size());
    }
    std::printf("  perf check        : OK\n");
    return 0;
  }

  WriteJson(r, out_path);
  std::printf("  wrote %s\n", out_path.c_str());
  return 0;
}
