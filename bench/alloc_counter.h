#ifndef LBSQ_BENCH_ALLOC_COUNTER_H_
#define LBSQ_BENCH_ALLOC_COUNTER_H_

#include <cstdint>

/// \file
/// Heap-allocation counter for the zero-allocation benchmarks. When a bench
/// target compiles alloc_counter.cc with LBSQ_COUNT_ALLOCS defined, the
/// global operator new / operator delete are replaced with counting
/// versions and `AllocCount()` reads the running total. The counter is
/// compiled out under LBSQ_SANITIZE builds: sanitizers interpose the global
/// allocation operators themselves, and a second replacement would fight
/// theirs.

namespace lbsq::bench {

#ifdef LBSQ_COUNT_ALLOCS
inline constexpr bool kAllocCountingEnabled = true;
/// Total global operator new invocations since process start.
uint64_t AllocCount();
extern bool g_alloc_trap;
void AllocTrapHit();
#else
inline constexpr bool kAllocCountingEnabled = false;
inline uint64_t AllocCount() { return 0; }
#endif

}  // namespace lbsq::bench

#endif  // LBSQ_BENCH_ALLOC_COUNTER_H_
