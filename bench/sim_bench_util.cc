#include "sim_bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.h"

namespace lbsq::bench {

namespace {

bool FastMode() {
  const char* fast = std::getenv("LBSQ_BENCH_FAST");
  return fast != nullptr && fast[0] == '1';
}

double WorldSide() {
  if (const char* side = std::getenv("LBSQ_WORLD_SIDE")) {
    const double value = std::atof(side);
    if (value > 0.0) return value;
  }
  return 3.0;
}

}  // namespace

sim::SimConfig BaseConfig(const sim::ParameterSet& params,
                          sim::QueryType type) {
  sim::SimConfig config;
  config.params = params;
  config.query_type = type;
  config.world_side_mi = WorldSide();
  // Window experiments keep the paper's absolute window/cache/POI geometry
  // (see SimConfig::paper_window_geometry).
  config.paper_window_geometry = type == sim::QueryType::kWindow;
  if (FastMode()) {
    config.warmup_min = 15.0;
    config.duration_min = 10.0;
  } else {
    config.warmup_min = 45.0;
    config.duration_min = 30.0;
  }
  config.seed = 20070415;  // ICDE 2007
  return config;
}

void RunFigure(const std::string& figure, const std::string& xlabel,
               sim::QueryType type, const std::vector<double>& xs,
               const ConfigMutator& mutate) {
  const sim::ParameterSet sets[] = {sim::LosAngelesCity(),
                                    sim::SyntheticSuburbia(),
                                    sim::RiversideCounty()};
  const char* subfigures = "abc";
  std::printf("=== %s ===\n", figure.c_str());
  std::printf("(world %.1f mi, warm-up %.0f min, measured %.0f min; "
              "densities per Table 3)\n\n",
              BaseConfig(sets[0], type).world_side_mi,
              BaseConfig(sets[0], type).warmup_min,
              BaseConfig(sets[0], type).duration_min);
  for (int s = 0; s < 3; ++s) {
    std::printf("--- Fig. %s%c: %s ---\n", figure.c_str(), subfigures[s],
                sets[s].name.c_str());
    if (type == sim::QueryType::kKnn) {
      std::printf("%-18s %10s %12s %12s %9s %14s\n", xlabel.c_str(), "SBNN%",
                  "ApproxSBNN%", "Broadcast%", "peers", "latency(slots)");
    } else {
      std::printf("%-18s %10s %12s %9s %14s %12s\n", xlabel.c_str(), "SBWQ%",
                  "Broadcast%", "peers", "latency(slots)", "residual%");
    }
    for (double x : xs) {
      sim::SimConfig config = BaseConfig(sets[s], type);
      mutate(x, &config);
      sim::Simulator simulator(config);
      const sim::SimMetrics m = simulator.Run();
      if (type == sim::QueryType::kKnn) {
        std::printf("%-18g %10.1f %12.1f %12.1f %9.1f %14.1f\n", x,
                    m.PctVerified(), m.PctApproximate(), m.PctBroadcast(),
                    m.peers_per_query.mean(), m.MeanLatencyAllQueries());
      } else {
        std::printf("%-18g %10.1f %12.1f %9.1f %14.1f %12.1f\n", x,
                    m.PctVerified(), m.PctBroadcast(),
                    m.peers_per_query.mean(), m.MeanLatencyAllQueries(),
                    m.residual_fraction.mean() * 100.0);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace lbsq::bench
