// Ablation: the cache-overflow policy. The paper's §4.1 text says a host
// stores "as many received POIs as its cache capacity allows ... and their
// collective MBR". When the capacity binds, that collective MBR contains
// server POIs that were NOT stored — it silently violates the completeness
// invariant Lemma 3.1 requires, which inflates verified regions (and with
// them the sharing hit ratio) while producing wrong answers. Our default
// policy instead shrinks the region until its complete content fits.
//
// This bench quantifies the trade on both query types: resolved-by-sharing
// percentage vs the fraction of exact-path queries whose answer differs from
// the brute-force oracle.

#include <cstdio>

#include "sim_bench_util.h"
#include "sim/simulator.h"

int main() {
  using namespace lbsq;

  std::printf("=== Ablation: sound region shrinking vs the paper's literal "
              "collective-MBR policy ===\n\n");
  std::printf("%-10s %-22s | %10s %12s %12s %10s\n", "query", "policy",
              "sharing%", "approx%", "broadcast%", "errors%");

  const struct {
    sim::QueryType type;
    const char* name;
  } query_kinds[] = {{sim::QueryType::kKnn, "kNN"},
                     {sim::QueryType::kWindow, "window"}};
  const struct {
    core::CachePolicy policy;
    const char* name;
  } policies[] = {{core::CachePolicy::kSoundShrink, "sound shrink"},
                  {core::CachePolicy::kCollectiveMbr, "collective MBR"}};

  for (const auto& kind : query_kinds) {
    for (const auto& policy : policies) {
      sim::SimConfig config =
          bench::BaseConfig(sim::LosAngelesCity(), kind.type);
      config.cache_policy = policy.policy;
      sim::Simulator simulator(config);
      const sim::SimMetrics m = simulator.Run();
      std::printf("%-10s %-22s | %10.1f %12.1f %12.1f %10.2f\n", kind.name,
                  policy.name, m.PctVerified(), m.PctApproximate(),
                  m.PctBroadcast(), m.PctAnswerErrors());
      std::fflush(stdout);
    }
  }
  std::printf("\nThe collective-MBR policy buys its larger sharing "
              "percentage with wrong exact-path\nanswers; the paper's "
              "reported hit ratios are consistent with it, our defaults "
              "are not.\n");
  return 0;
}
