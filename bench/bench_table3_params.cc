// Tables 3 and 4: prints the three simulation parameter sets as published,
// the per-square-mile densities derived from them (the quantities that drive
// every result), and the scaled instantiation the benchmarks actually run.

#include <cstdio>

#include "sim_bench_util.h"

int main() {
  using namespace lbsq;
  const sim::ParameterSet sets[] = {sim::LosAngelesCity(),
                                    sim::SyntheticSuburbia(),
                                    sim::RiversideCounty()};

  std::printf("=== Table 3: simulation parameter sets (full scale, "
              "20 x 20 mi) ===\n\n");
  std::printf("%-16s %12s %12s %18s\n", "Parameter", "LA City", "Suburbia",
              "Riverside County");
  std::printf("%-16s %12.0f %12.0f %18.0f\n", "POINumber", sets[0].poi_number,
              sets[1].poi_number, sets[2].poi_number);
  std::printf("%-16s %12.0f %12.0f %18.0f\n", "MHNumber", sets[0].mh_number,
              sets[1].mh_number, sets[2].mh_number);
  std::printf("%-16s %12d %12d %18d\n", "CSize", sets[0].csize,
              sets[1].csize, sets[2].csize);
  std::printf("%-16s %12.0f %12.0f %18.0f  [1/min]\n", "Query",
              sets[0].query_per_min, sets[1].query_per_min,
              sets[2].query_per_min);
  std::printf("%-16s %12.0f %12.0f %18.0f  [m]\n", "TxRange",
              sets[0].tx_range_m, sets[1].tx_range_m, sets[2].tx_range_m);
  std::printf("%-16s %12.0f %12.0f %18.0f\n", "kNN", sets[0].knn_k,
              sets[1].knn_k, sets[2].knn_k);
  std::printf("%-16s %12.0f %12.0f %18.0f  [%%]\n", "Window",
              sets[0].window_pct, sets[1].window_pct, sets[2].window_pct);
  std::printf("%-16s %12.0f %12.0f %18.0f  [mile]\n", "Distance",
              sets[0].distance_mi, sets[1].distance_mi, sets[2].distance_mi);
  std::printf("%-16s %12.0f %12.0f %18.0f  [hr]\n", "Texecution",
              sets[0].t_execution_hr, sets[1].t_execution_hr,
              sets[2].t_execution_hr);

  std::printf("\n=== Derived densities (per square mile) ===\n\n");
  std::printf("%-16s %12s %12s %18s\n", "Density", "LA City", "Suburbia",
              "Riverside County");
  std::printf("%-16s %12.2f %12.2f %18.2f\n", "POIs",
              sets[0].PoiDensity(), sets[1].PoiDensity(),
              sets[2].PoiDensity());
  std::printf("%-16s %12.2f %12.2f %18.2f\n", "Mobile hosts",
              sets[0].MhDensity(), sets[1].MhDensity(), sets[2].MhDensity());
  std::printf("%-16s %12.2f %12.2f %18.2f\n", "Queries/min",
              sets[0].QueryRatePerSqMiPerMin(),
              sets[1].QueryRatePerSqMiPerMin(),
              sets[2].QueryRatePerSqMiPerMin());

  std::printf("\n=== Scaled instantiation used by the benches ===\n\n");
  std::printf("%-16s %12s %12s %18s\n", "Quantity", "LA City", "Suburbia",
              "Riverside County");
  sim::SimConfig configs[3];
  for (int i = 0; i < 3; ++i) {
    configs[i] = bench::BaseConfig(sets[i], sim::QueryType::kKnn);
  }
  std::printf("%-16s %12.1f %12.1f %18.1f  [mi]\n", "World side",
              configs[0].world_side_mi, configs[1].world_side_mi,
              configs[2].world_side_mi);
  std::printf("%-16s %12lld %12lld %18lld\n", "Mobile hosts",
              static_cast<long long>(configs[0].ScaledMhCount()),
              static_cast<long long>(configs[1].ScaledMhCount()),
              static_cast<long long>(configs[2].ScaledMhCount()));
  std::printf("%-16s %12lld %12lld %18lld\n", "POIs",
              static_cast<long long>(configs[0].ScaledPoiCount()),
              static_cast<long long>(configs[1].ScaledPoiCount()),
              static_cast<long long>(configs[2].ScaledPoiCount()));
  std::printf("%-16s %12.1f %12.1f %18.1f  [1/min]\n", "Queries",
              configs[0].ScaledQueriesPerMin(),
              configs[1].ScaledQueriesPerMin(),
              configs[2].ScaledQueriesPerMin());
  std::printf("\nSet LBSQ_WORLD_SIDE=20 to reproduce the full-scale "
              "instantiation.\n");
  return 0;
}
