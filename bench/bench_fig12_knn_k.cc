// Figure 12 (a-c): percentage of kNN queries resolved by SBNN, approximate
// SBNN, or the broadcast channel, as a function of the mean number of
// requested neighbors k (3..15), for the three Table 3 parameter sets.

#include "sim_bench_util.h"

int main() {
  lbsq::bench::RunFigure(
      "12", "k", lbsq::sim::QueryType::kKnn, {3, 6, 9, 12, 15},
      [](double x, lbsq::sim::SimConfig* config) {
        config->params.knn_k = x;
      });
  return 0;
}
