// The scalability motivation of §1/§2.1: an on-demand (point-to-point)
// server's response time degrades as the client population grows, while the
// broadcast channel serves any number of listeners at a constant (if large)
// latency. This bench sweeps the client count at the paper's per-host query
// rate and prints both curves, including where they cross.

#include <cstdio>

#include "analysis/air_index_model.h"
#include "common/rng.h"
#include "ondemand/ondemand.h"
#include "sim/config.h"

int main() {
  using namespace lbsq;

  // Broadcast side: the LA City file (2750 POIs, 8 per bucket, 344 data
  // buckets) under the default (1, 4) organization; a 5-NN client downloads
  // ~20 buckets, but latency is dominated by the cycle, so model the single
  // (last) bucket wait.
  const analysis::AirIndexModel broadcast_model{344, 2, 4};
  const double broadcast_latency =
      analysis::ExpectedSingleBucketLatency(broadcast_model);

  // On-demand side: one request per query; the server resolves a kNN in 4
  // slots of work (index lookup + a few bucket reads — generous to the
  // server). Per-host query rate from Table 3: 6220/min over 93300 hosts.
  const sim::ParameterSet la = sim::LosAngelesCity();
  const double per_host_rate_per_slot =
      (la.query_per_min / la.mh_number) / 60.0 / 50.0;  // 50 slots/s
  const double service_slots = 4.0;

  std::printf("=== On-demand vs broadcast scalability (LA City rates) "
              "===\n\n");
  std::printf("broadcast access latency (any population): %.0f slots\n\n",
              broadcast_latency);
  std::printf("%10s %12s %14s %14s %12s\n", "clients", "util(rho)",
              "M/M/1 (slots)", "sim (slots)", "winner");

  Rng rng(1);
  for (int64_t clients : {100, 1000, 5000, 10000, 20000, 50000, 100000}) {
    ondemand::OnDemandParams params;
    params.arrival_rate = per_host_rate_per_slot * static_cast<double>(clients);
    params.mean_service_time = service_slots;
    const double rho = ondemand::MM1Utilization(params);
    const double analytic = ondemand::MM1ExpectedResponseTime(params);
    double simulated = -1.0;
    if (rho < 0.99) {
      const ondemand::OnDemandResult result =
          ondemand::SimulateOnDemandServer(params, 100000, &rng);
      simulated = result.response_time.mean();
    }
    const bool ondemand_wins =
        rho < 1.0 && analytic < broadcast_latency;
    if (simulated >= 0.0) {
      std::printf("%10lld %12.3f %14.1f %14.1f %12s\n",
                  static_cast<long long>(clients), rho, analytic, simulated,
                  ondemand_wins ? "on-demand" : "broadcast");
    } else {
      std::printf("%10lld %12.3f %14s %14s %12s\n",
                  static_cast<long long>(clients), rho, "unstable",
                  "unstable", "broadcast");
    }
  }
  std::printf("\nOn-demand wins for small populations; past saturation "
              "(rho -> 1) it is\nunusable while the broadcast channel is "
              "unaffected — the reason the paper\nbuilds on broadcast and "
              "then attacks its latency with P2P sharing.\n");
  return 0;
}
