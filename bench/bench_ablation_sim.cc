// System-level ablations of the design choices DESIGN.md calls out, all on
// the LA City kNN workload:
//   * §3.3.3 broadcast data filtering on vs off,
//   * approximate answers accepted vs exact-only,
//   * cache structure: 1 vs 8 verified regions per host,
//   * mobility: random waypoint vs Manhattan street grid,
//   * peer discovery: single-hop vs multi-hop relaying,
// and the SBWQ window-reduction ablation on the window workload.

#include <cstdio>

#include "sim_bench_util.h"
#include "sim/simulator.h"

namespace {

void Report(const char* label, const lbsq::sim::SimMetrics& m) {
  std::printf("%-36s | %8.1f %8.1f %10.1f %11.1f %11.1f\n", label,
              m.PctVerified(), m.PctApproximate(), m.PctBroadcast(),
              m.MeanLatencyAllQueries(), m.broadcast_tuning.mean());
  std::fflush(stdout);
}

}  // namespace

int main() {
  using namespace lbsq;

  std::printf("=== System ablations (LA City) ===\n\n");
  std::printf("%-36s | %8s %8s %10s %11s %11s\n", "configuration", "SBNN%",
              "approx%", "broadcast%", "latency", "tuning");

  {
    sim::SimConfig base =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
    sim::Simulator s(base);
    Report("kNN baseline (defaults)", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
    config.use_filtering = false;
    sim::Simulator s(config);
    Report("kNN without §3.3.3 data filtering", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
    config.tighten_with_index_bound = true;
    sim::Simulator s(config);
    Report("kNN with min(index, heap) radius", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
    config.accept_approximate = false;
    sim::Simulator s(config);
    Report("kNN exact-only (no approx answers)", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
    config.max_regions_per_host = 1;
    sim::Simulator s(config);
    Report("kNN with 1 cached region per host", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
    config.mobility = sim::MobilityType::kManhattanGrid;
    sim::Simulator s(config);
    Report("kNN on Manhattan street grid", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
    config.params.tx_range_m = 100.0;
    sim::Simulator s(config);
    Report("kNN @100m, single-hop", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
    config.params.tx_range_m = 100.0;
    config.p2p_hops = 2;
    sim::Simulator s(config);
    Report("kNN @100m, 2-hop relaying", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
    config.params.tx_range_m = 100.0;
    config.p2p_hops = 4;
    sim::Simulator s(config);
    Report("kNN @100m, 4-hop relaying", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kKnn);
    config.prefetch_radius_factor = 2.0;
    sim::Simulator s(config);
    Report("kNN with 2x prefetch radius", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kMixed);
    sim::Simulator s(config);
    Report("mixed workload (30% windows)", s.Run());
  }

  std::printf("\n%-36s | %8s %8s %10s %11s %11s\n", "configuration", "SBWQ%",
              "-", "broadcast%", "latency", "tuning");
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kWindow);
    sim::Simulator s(config);
    Report("window baseline (reduction on)", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kWindow);
    config.use_window_reduction = false;
    sim::Simulator s(config);
    Report("window without w' reduction", s.Run());
  }
  {
    sim::SimConfig config =
        bench::BaseConfig(sim::LosAngelesCity(), sim::QueryType::kWindow);
    config.retrieval = onair::WindowRetrieval::kPartitionedRanges;
    sim::Simulator s(config);
    Report("window with partitioned retrieval", s.Run());
  }
  return 0;
}
