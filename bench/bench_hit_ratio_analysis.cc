// Contribution (d): the probabilistic analysis of the sharing hit ratio.
// Compares three estimates of P(kNN query fully answerable from peers):
//   1. the closed-form single-peer lower bound,
//   2. Monte-Carlo evaluation of the coverage model,
//   3. the full agent-based simulation,
// across the three parameter-set densities and the transmission-range sweep.

#include <cstdio>

#include "analysis/hit_ratio.h"
#include "common/rng.h"
#include "core/probability.h"
#include "sim/config.h"
#include "sim/simulator.h"

int main() {
  using namespace lbsq;

  const sim::ParameterSet sets[] = {sim::LosAngelesCity(),
                                    sim::SyntheticSuburbia(),
                                    sim::RiversideCounty()};
  std::printf("=== Hit-ratio analysis: model vs simulation ===\n");
  std::printf("(k = 5; peer VR side from the mean 5-NN disc; spread from "
              "cache-entry age)\n\n");
  std::printf("%-20s %10s | %10s %12s %12s\n", "parameter set", "TxRange(m)",
              "analytic", "MonteCarlo", "simulated");

  for (const sim::ParameterSet& params : sets) {
    for (double tx : {50.0, 100.0, 200.0}) {
      analysis::HitRatioModel model;
      model.peer_density = params.MhDensity();
      model.tx_range = tx * sim::kMilesPerMeter;
      model.poi_density = params.PoiDensity();
      model.k = 5;
      // A cached verified region is the MBR of a 5-NN search circle: side
      // twice the mean 5-NN distance.
      const double d5 = core::KthNeighborDistanceMean(model.poi_density, 5);
      model.vr_side = 2.0 * d5;
      model.center_spread = 0.3;  // miles of drift since the entry was cached

      const double analytic = analysis::AnalyticHitRatioLowerBound(model);
      Rng rng(1234);
      const double mc = analysis::MonteCarloHitRatio(model, &rng, 4000);

      sim::SimConfig config;
      config.params = params;
      config.params.tx_range_m = tx;
      config.query_type = sim::QueryType::kKnn;
      config.world_side_mi = 3.0;
      config.warmup_min = 45.0;
      config.duration_min = 20.0;
      config.accept_approximate = false;  // count only fully verified hits
      config.seed = 5;
      sim::Simulator simulator(config);
      const sim::SimMetrics metrics = simulator.Run();

      std::printf("%-20s %10.0f | %10.3f %12.3f %12.3f\n",
                  params.name.c_str(), tx, analytic, mc,
                  metrics.PctVerified() / 100.0);
    }
  }
  std::printf("\nThe analytic column is a single-peer lower bound; the "
              "Monte-Carlo column\nevaluates the same coverage model with "
              "multi-peer unions; the simulated\ncolumn is the full system "
              "(mobility, caching, replacement, broadcast).\n");
  return 0;
}
