#include "analysis/hit_ratio.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/probability.h"
#include "geom/circle.h"
#include "geom/rect.h"
#include "geom/rect_region.h"

namespace lbsq::analysis {

double SampleKthNeighborDistance(const HitRatioModel& model, Rng* rng) {
  LBSQ_CHECK(model.poi_density > 0.0);
  LBSQ_CHECK(model.k >= 1);
  const double u = rng->NextDouble();
  // Invert P(d_k <= r) = u by bisection on a bracket grown geometrically.
  double hi = core::KthNeighborDistanceMean(model.poi_density, model.k);
  while (core::KthNeighborDistanceCdf(model.poi_density, model.k, hi) < u) {
    hi *= 2.0;
  }
  double lo = 0.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (core::KthNeighborDistanceCdf(model.poi_density, model.k, mid) < u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

namespace {

// Standard normal CDF.
double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

// Expected number of peer VR centers landing in the square of side `side`
// centered on the query point, for peers Poisson(rho) in the tx disc whose
// centers are displaced by an isotropic normal with std `sigma`. A Poisson
// process remains Poisson under independent displacement, so
//   E = rho * Int_{tx disc} P(p + N(0, sigma) in square) dp,
// evaluated by a polar midpoint rule (exact as the grid refines; sigma = 0
// degenerates to rho * area(square ∩ tx disc) <= rho * min(side^2, tx area)).
double ExpectedFavorableCenters(const HitRatioModel& model, double side) {
  if (side <= 0.0 || model.tx_range <= 0.0) return 0.0;
  const double half = side / 2.0;
  if (model.center_spread <= 0.0) {
    // No displacement: centers = peer positions; favorable area is the
    // square clipped to the tx disc (approximated by the smaller of the
    // two areas — exact when one contains the other).
    const double tx_area = M_PI * model.tx_range * model.tx_range;
    return model.peer_density * std::min(side * side, tx_area);
  }
  const int radial_steps = 48;
  const int angular_steps = 48;
  const double sigma = model.center_spread;
  double integral = 0.0;
  for (int i = 0; i < radial_steps; ++i) {
    const double r =
        (static_cast<double>(i) + 0.5) / radial_steps * model.tx_range;
    const double dr = model.tx_range / radial_steps;
    for (int j = 0; j < angular_steps; ++j) {
      const double theta =
          (static_cast<double>(j) + 0.5) / angular_steps * 2.0 * M_PI;
      const double dtheta = 2.0 * M_PI / angular_steps;
      const double px = r * std::cos(theta);
      const double py = r * std::sin(theta);
      const double prob_x =
          NormalCdf((half - px) / sigma) - NormalCdf((-half - px) / sigma);
      const double prob_y =
          NormalCdf((half - py) / sigma) - NormalCdf((-half - py) / sigma);
      integral += prob_x * prob_y * r * dr * dtheta;
    }
  }
  return model.peer_density * integral;
}

}  // namespace

double AnalyticHitRatioLowerBound(const HitRatioModel& model) {
  LBSQ_CHECK(model.poi_density > 0.0);
  LBSQ_CHECK(model.k >= 1);
  // A peer's square (side s, center c) alone contains disc(q, d) iff
  // |q - c|_inf <= s/2 - d, so the hit probability is at least the
  // probability that at least one VR center lands in that square. The
  // center field is Poisson (independent displacement of a Poisson field),
  // so P(hit | d) >= 1 - exp(-E(d)) with E the expected favorable-center
  // count. Integrate over the k-NN radius distribution in probability space
  // (200-point midpoint rule over the inverse CDF; no tail truncation).
  const int steps = 200;
  double total = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double u = (static_cast<double>(i) + 0.5) / steps;
    // Invert the CDF at u by bisection.
    double hi = std::max(
        1e-9, core::KthNeighborDistanceMean(model.poi_density, model.k));
    while (core::KthNeighborDistanceCdf(model.poi_density, model.k, hi) < u) {
      hi *= 2.0;
    }
    double lo = 0.0;
    for (int j = 0; j < 50; ++j) {
      const double mid = (lo + hi) / 2.0;
      if (core::KthNeighborDistanceCdf(model.poi_density, model.k, mid) < u) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const double d = (lo + hi) / 2.0;
    const double expected =
        ExpectedFavorableCenters(model, model.vr_side - 2.0 * d);
    total += 1.0 - std::exp(-expected);
  }
  return total / steps;
}

double MonteCarloHitRatio(const HitRatioModel& model, Rng* rng, int trials) {
  LBSQ_CHECK(trials >= 1);
  LBSQ_CHECK(model.tx_range >= 0.0);
  int hits = 0;
  const geom::Point q{0.0, 0.0};
  for (int t = 0; t < trials; ++t) {
    const double d_k = SampleKthNeighborDistance(model, rng);
    const int64_t peers = rng->Poisson(
        model.peer_density * M_PI * model.tx_range * model.tx_range);
    geom::RectRegion mvr;
    for (int64_t p = 0; p < peers; ++p) {
      // Peer position uniform in the tx disc.
      const double radius = model.tx_range * std::sqrt(rng->NextDouble());
      const double angle = rng->Uniform(0.0, 2.0 * M_PI);
      geom::Point center{radius * std::cos(angle), radius * std::sin(angle)};
      center.x += rng->Normal(0.0, model.center_spread);
      center.y += rng->Normal(0.0, model.center_spread);
      mvr.Add(geom::Rect::CenteredSquare(center, model.vr_side / 2.0));
    }
    if (mvr.ContainsDisc(geom::Circle{q, d_k})) ++hits;
  }
  return static_cast<double>(hits) / trials;
}

}  // namespace lbsq::analysis
