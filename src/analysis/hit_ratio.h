#ifndef LBSQ_ANALYSIS_HIT_RATIO_H_
#define LBSQ_ANALYSIS_HIT_RATIO_H_

#include "common/rng.h"

/// \file
/// Probabilistic analysis of the sharing hit ratio (the paper's contribution
/// (d)): how likely is it that a kNN query can be answered entirely from
/// peer caches? We model peers as a spatial Poisson process, each carrying
/// one square verified region whose center is displaced from the peer by an
/// isotropic normal (cache entries were acquired at past positions), and ask
/// for the probability that the disc of the k-th nearest POI around the
/// query point is fully covered by the union of peer squares.

namespace lbsq::analysis {

/// Parameters of the coverage model. All lengths in the same unit (miles in
/// the simulator's parameter sets).
struct HitRatioModel {
  /// Mobile hosts per square unit.
  double peer_density = 0.0;
  /// Wireless transmission range (peers beyond it share nothing).
  double tx_range = 0.0;
  /// Side length of a peer's square verified region.
  double vr_side = 0.0;
  /// Std-dev of the displacement between a peer's position and its verified
  /// region's center (host movement since the entry was cached).
  double center_spread = 0.0;
  /// POIs per square unit (determines the k-NN disc radius distribution).
  double poi_density = 0.0;
  /// Number of neighbors requested.
  int k = 1;
};

/// Closed-form lower bound on the hit ratio: the probability that at least
/// one single peer's verified square alone contains the k-NN disc,
/// integrated over the k-NN radius distribution. Ignores multi-peer union
/// coverage, hence a lower bound (tight for small transmission ranges).
double AnalyticHitRatioLowerBound(const HitRatioModel& model);

/// Monte-Carlo estimate of the exact model hit ratio (union coverage via the
/// exact rectangle-region algebra). `trials` >= 1.
double MonteCarloHitRatio(const HitRatioModel& model, Rng* rng, int trials);

/// Samples a k-th-nearest-POI distance from the Poisson model by numerically
/// inverting the CDF. Exposed for tests.
double SampleKthNeighborDistance(const HitRatioModel& model, Rng* rng);

}  // namespace lbsq::analysis

#endif  // LBSQ_ANALYSIS_HIT_RATIO_H_
