#ifndef LBSQ_ANALYSIS_ENERGY_MODEL_H_
#define LBSQ_ANALYSIS_ENERGY_MODEL_H_

#include "broadcast/client_protocol.h"

/// \file
/// Energy accounting for broadcast clients. Tuning time "proportionally
/// represents the power consumption of the client" (§2.1, after Imielinski
/// et al.); this module makes the proportionality concrete with
/// representative IEEE 802.11b radio power draws (receive-active vs doze, in
/// the range measured by Feeney & Nilsson), so benches can report joules per
/// query rather than bare slot counts.

namespace lbsq::analysis {

/// Radio power parameters.
struct RadioPowerModel {
  /// Power while actively receiving (W).
  double active_rx_watts = 0.9;
  /// Power while dozing with the receiver off, waiting for a known slot (W).
  double doze_watts = 0.045;
  /// Wall-clock duration of one broadcast slot (s); 50 slots/s by default.
  double slot_seconds = 0.02;
};

/// Energy one query costs the client: tuning slots at active power plus the
/// remaining access-latency slots dozing.
double QueryEnergyJoules(const RadioPowerModel& model,
                         const broadcast::AccessStats& stats);

/// Energy of an always-on client listening for the same duration (the
/// no-air-index strawman): access latency entirely at active power.
double AlwaysOnEnergyJoules(const RadioPowerModel& model,
                            const broadcast::AccessStats& stats);

}  // namespace lbsq::analysis

#endif  // LBSQ_ANALYSIS_ENERGY_MODEL_H_
