#ifndef LBSQ_ANALYSIS_AIR_INDEX_MODEL_H_
#define LBSQ_ANALYSIS_AIR_INDEX_MODEL_H_

#include <cstdint>

/// \file
/// Closed-form expectations for the (1, m) broadcast organization
/// (Imielinski, Viswanathan & Badrinath): the access-latency and tuning-time
/// trade-off that §2.1 of the paper describes and the figure-2 bench
/// measures. All quantities in slots; expectations are over a query instant
/// uniform in the cycle and a needed data bucket uniform over the file.

namespace lbsq::analysis {

/// Parameters of one (1, m) cycle.
struct AirIndexModel {
  /// Data buckets per cycle.
  int64_t num_data_buckets = 1;
  /// Index segment size in buckets.
  int64_t index_buckets = 1;
  /// Replication factor.
  int m = 1;

  /// Cycle length: m * index + data.
  int64_t CycleLength() const {
    return static_cast<int64_t>(m) * index_buckets + num_data_buckets;
  }
};

/// Expected slots from the query instant until the next index segment has
/// been fully read (initial probe + doze + index read).
double ExpectedIndexLatency(const AirIndexModel& model);

/// Expected access latency for retrieving one uniformly chosen data bucket
/// with the three-step protocol.
double ExpectedSingleBucketLatency(const AirIndexModel& model);

/// Tuning time for retrieving `buckets_needed` distinct buckets: probe +
/// index read + one slot per bucket (exact, not an expectation).
int64_t TuningTime(const AirIndexModel& model, int64_t buckets_needed);

/// The m minimizing ExpectedSingleBucketLatency for the given data/index
/// sizes (scans m = 1..num_data_buckets). This is the classic optimal
/// replication factor trade-off: more replicas shorten the index wait but
/// lengthen the cycle.
int OptimalM(int64_t num_data_buckets, int64_t index_buckets);

}  // namespace lbsq::analysis

#endif  // LBSQ_ANALYSIS_AIR_INDEX_MODEL_H_
