#include "analysis/air_index_model.h"

#include <algorithm>

#include "common/check.h"

namespace lbsq::analysis {

namespace {

// Average wait from a uniformly random slot boundary to the next index
// segment start. With m equal segment periods P = C/m the wait is uniform
// over {0..P-1}; uneven chunking perturbs this by O(1).
double ExpectedIndexWait(const AirIndexModel& model) {
  const double period = static_cast<double>(model.CycleLength()) /
                        static_cast<double>(model.m);
  return (period - 1.0) / 2.0;
}

}  // namespace

double ExpectedIndexLatency(const AirIndexModel& model) {
  LBSQ_CHECK(model.m >= 1);
  LBSQ_CHECK(model.num_data_buckets >= model.m);
  // Probe slot + doze to the segment + read the whole segment.
  return 1.0 + ExpectedIndexWait(model) +
         static_cast<double>(model.index_buckets);
}

double ExpectedSingleBucketLatency(const AirIndexModel& model) {
  // After the index read completes (always at a chunk boundary), the needed
  // bucket's next occurrence is on average half a cycle away; +1 for its
  // own transmission slot.
  return ExpectedIndexLatency(model) +
         static_cast<double>(model.CycleLength()) / 2.0 + 1.0;
}

int64_t TuningTime(const AirIndexModel& model, int64_t buckets_needed) {
  LBSQ_CHECK(buckets_needed >= 0);
  return 1 + model.index_buckets + buckets_needed;
}

int OptimalM(int64_t num_data_buckets, int64_t index_buckets) {
  LBSQ_CHECK(num_data_buckets >= 1);
  LBSQ_CHECK(index_buckets >= 1);
  int best_m = 1;
  double best = 0.0;
  for (int m = 1; m <= num_data_buckets; ++m) {
    AirIndexModel model{num_data_buckets, index_buckets, m};
    const double latency = ExpectedSingleBucketLatency(model);
    if (m == 1 || latency < best) {
      best = latency;
      best_m = m;
    }
  }
  return best_m;
}

}  // namespace lbsq::analysis
