#include "analysis/energy_model.h"

#include "common/check.h"

namespace lbsq::analysis {

double QueryEnergyJoules(const RadioPowerModel& model,
                         const broadcast::AccessStats& stats) {
  LBSQ_CHECK(model.active_rx_watts >= 0.0);
  LBSQ_CHECK(model.doze_watts >= 0.0);
  LBSQ_CHECK(model.slot_seconds > 0.0);
  LBSQ_CHECK(stats.tuning_time <= stats.access_latency ||
             stats.access_latency == 0);
  const double active =
      static_cast<double>(stats.tuning_time) * model.slot_seconds;
  const double doze =
      static_cast<double>(stats.access_latency - stats.tuning_time) *
      model.slot_seconds;
  return active * model.active_rx_watts + doze * model.doze_watts;
}

double AlwaysOnEnergyJoules(const RadioPowerModel& model,
                            const broadcast::AccessStats& stats) {
  return static_cast<double>(stats.access_latency) * model.slot_seconds *
         model.active_rx_watts;
}

}  // namespace lbsq::analysis
