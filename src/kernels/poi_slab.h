#ifndef LBSQ_KERNELS_POI_SLAB_H_
#define LBSQ_KERNELS_POI_SLAB_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file
/// Structure-of-arrays point storage for the SIMD kernels (kernels.h). A
/// slab holds parallel `ids[] / xs[] / ys[]` arrays so the distance,
/// radius-select, and window-mask kernels stream contiguous doubles instead
/// of striding over `Poi` structs. Capacity is grow-only: Clear/Assign never
/// release memory, so a slab owned by a warm `QueryWorkspace` keeps the
/// batched query path at zero steady-state allocations.

namespace lbsq::kernels {

/// Grow-only SoA point store. Not thread-safe; one per worker.
class PoiSlab {
 public:
  void Clear() {
    ids_.clear();
    xs_.clear();
    ys_.clear();
  }

  void Reserve(size_t n) {
    ids_.reserve(n);
    xs_.reserve(n);
    ys_.reserve(n);
  }

  void PushBack(int64_t id, double x, double y) {
    ids_.push_back(id);
    xs_.push_back(x);
    ys_.push_back(y);
  }

  /// Replaces the content with the transpose of `n` array-of-structs records
  /// exposing `.id` and `.pos.{x, y}` (spatial::Poi or anything shaped like
  /// it — templated so this layer stays below spatial in the dependency
  /// order).
  template <class P>
  void Assign(const P* p, size_t n) {
    ids_.resize(n);
    xs_.resize(n);
    ys_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      ids_[i] = p[i].id;
      xs_[i] = p[i].pos.x;
      ys_[i] = p[i].pos.y;
    }
  }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  const int64_t* ids() const { return ids_.data(); }
  const double* xs() const { return xs_.data(); }
  const double* ys() const { return ys_.data(); }

  int64_t id(size_t i) const { return ids_[i]; }
  double x(size_t i) const { return xs_[i]; }
  double y(size_t i) const { return ys_[i]; }

 private:
  std::vector<int64_t> ids_;
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// The scratch bundle a slab-kernel call site needs: the slab itself plus a
/// distance array and a selection-index array, all grow-only. One lives in
/// `core::QueryWorkspace`; transient callers make their own.
struct SlabScratch {
  PoiSlab slab;
  std::vector<double> dist;
  std::vector<uint32_t> idx;

  /// Distance buffer of at least n elements (grow-only).
  double* DistFor(size_t n) {
    if (dist.size() < n) dist.resize(n);
    return dist.data();
  }

  /// Index buffer of at least n elements (grow-only).
  uint32_t* IdxFor(size_t n) {
    if (idx.size() < n) idx.resize(n);
    return idx.data();
  }
};

}  // namespace lbsq::kernels

#endif  // LBSQ_KERNELS_POI_SLAB_H_
