// AVX2 (4-lane double) kernel variants. Compiled with -mavx2 but NOT -mfma
// and with -ffp-contract=off: each lane performs exactly the scalar
// reference's subtract / two multiplies / add / correctly-rounded sqrt, so
// results are bit-identical to kernels_scalar.cc at any input. Tails
// shorter than a vector run the scalar reference.

#include "kernels/kernels.h"

#if LBSQ_KERNELS_X86 && defined(__AVX2__)

#include <immintrin.h>

#include <limits>

namespace lbsq::kernels::internal {

namespace {

void DistanceBatchAvx2(const double* xs, const double* ys, size_t n,
                       double qx, double qy, double* out) {
  const __m256d qxv = _mm256_set1_pd(qx);
  const __m256d qyv = _mm256_set1_pd(qy);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), qxv);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), qyv);
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(d2));
  }
  DistanceBatchScalar(xs + i, ys + i, n - i, qx, qy, out + i);
}

void DistanceSquaredBatchAvx2(const double* xs, const double* ys, size_t n,
                              double qx, double qy, double* out) {
  const __m256d qxv = _mm256_set1_pd(qx);
  const __m256d qyv = _mm256_set1_pd(qy);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), qxv);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), qyv);
    _mm256_storeu_pd(
        out + i, _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
  }
  DistanceSquaredBatchScalar(xs + i, ys + i, n - i, qx, qy, out + i);
}

size_t AppendIdsWithinRadiusAvx2(const double* xs, const double* ys,
                                 const int64_t* ids, size_t n, double cx,
                                 double cy, double r2,
                                 std::vector<int64_t>* out) {
  const __m256d cxv = _mm256_set1_pd(cx);
  const __m256d cyv = _mm256_set1_pd(cy);
  const __m256d r2v = _mm256_set1_pd(r2);
  size_t appended = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), cxv);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), cyv);
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    int mask = _mm256_movemask_pd(_mm256_cmp_pd(d2, r2v, _CMP_LE_OQ));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out->push_back(ids[i + static_cast<size_t>(lane)]);
      ++appended;
      mask &= mask - 1;
    }
  }
  appended +=
      AppendIdsWithinRadiusScalar(xs + i, ys + i, ids + i, n - i, cx, cy, r2,
                                  out);
  return appended;
}

size_t SelectInWindowAvx2(const double* xs, const double* ys, size_t n,
                          double x1, double y1, double x2, double y2,
                          uint32_t* idx_out) {
  const __m256d x1v = _mm256_set1_pd(x1);
  const __m256d y1v = _mm256_set1_pd(y1);
  const __m256d x2v = _mm256_set1_pd(x2);
  const __m256d y2v = _mm256_set1_pd(y2);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    const __m256d y = _mm256_loadu_pd(ys + i);
    const __m256d in_x = _mm256_and_pd(_mm256_cmp_pd(x, x1v, _CMP_GE_OQ),
                                       _mm256_cmp_pd(x, x2v, _CMP_LE_OQ));
    const __m256d in_y = _mm256_and_pd(_mm256_cmp_pd(y, y1v, _CMP_GE_OQ),
                                       _mm256_cmp_pd(y, y2v, _CMP_LE_OQ));
    int mask = _mm256_movemask_pd(_mm256_and_pd(in_x, in_y));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      idx_out[count++] = static_cast<uint32_t>(i + static_cast<size_t>(lane));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (xs[i] >= x1 && xs[i] <= x2 && ys[i] >= y1 && ys[i] <= y2) {
      idx_out[count++] = static_cast<uint32_t>(i);
    }
  }
  return count;
}

size_t KSmallestAvx2(const double* dist, const int64_t* ids, size_t n,
                     size_t k, uint32_t* idx_out) {
  if (k == 0) return 0;
  size_t filled = 0;
  double worst = std::numeric_limits<double>::infinity();
  size_t i = 0;
  for (; i < n && filled < k; ++i) {
    if (dist[i] > worst) continue;
    worst = KSmallestOffer(dist, ids, k, idx_out, &filled, i);
  }
  for (; i + 4 <= n; i += 4) {
    // Conservative prefilter (see kernels_sse2.cc): the exact (distance, id)
    // decision is made inside KSmallestOffer, so admitting a lane with a
    // stale `worst` cannot change the selected set.
    const __m256d d = _mm256_loadu_pd(dist + i);
    int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(d, _mm256_set1_pd(worst),
                                         _CMP_LE_OQ));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      worst = KSmallestOffer(dist, ids, k, idx_out, &filled,
                             i + static_cast<size_t>(lane));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (dist[i] > worst) continue;
    worst = KSmallestOffer(dist, ids, k, idx_out, &filled, i);
  }
  return filled;
}

bool IsSortedUniqueI64Avx2(const int64_t* v, size_t n) {
  size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const __m256i prev = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(v + i - 1));
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i gt = _mm256_cmpgt_epi64(cur, prev);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(gt)) != 0xF) return false;
  }
  for (; i < n; ++i) {
    if (v[i - 1] >= v[i]) return false;
  }
  return true;
}

}  // namespace

const KernelOps kAvx2Ops = {
    DistanceBatchAvx2,         DistanceSquaredBatchAvx2,
    AppendIdsWithinRadiusAvx2, SelectInWindowAvx2,
    KSmallestAvx2,             IsSortedUniqueI64Avx2,
};

}  // namespace lbsq::kernels::internal

#else  // !LBSQ_KERNELS_X86 || !__AVX2__

namespace lbsq::kernels::internal {

// AVX2 not compiled in (non-x86, or a compiler without -mavx2): the tier
// aliases the scalar reference.
const KernelOps kAvx2Ops = {
    DistanceBatchScalar,         DistanceSquaredBatchScalar,
    AppendIdsWithinRadiusScalar, SelectInWindowScalar,
    KSmallestScalar,             IsSortedUniqueI64Scalar,
};

}  // namespace lbsq::kernels::internal

#endif  // LBSQ_KERNELS_X86 && __AVX2__
