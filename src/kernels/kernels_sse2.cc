// SSE2 (2-lane double) kernel variants. Every lane performs exactly the
// scalar reference's per-element operations — subtract, two multiplies, one
// add, IEEE-correctly-rounded sqrtpd — so results are bit-identical to
// kernels_scalar.cc; tails shorter than a vector run the scalar reference.
//
// The 64-bit integer kernels stay scalar at this tier: SSE2 has no packed
// 64-bit compare (pcmpgtq is SSE4.2).

#include "kernels/kernels.h"

#if LBSQ_KERNELS_X86 && defined(__SSE2__)

#include <emmintrin.h>

#include <limits>

namespace lbsq::kernels::internal {

namespace {

void DistanceBatchSse2(const double* xs, const double* ys, size_t n,
                       double qx, double qy, double* out) {
  const __m128d qxv = _mm_set1_pd(qx);
  const __m128d qyv = _mm_set1_pd(qy);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), qxv);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), qyv);
    const __m128d d2 =
        _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    _mm_storeu_pd(out + i, _mm_sqrt_pd(d2));
  }
  DistanceBatchScalar(xs + i, ys + i, n - i, qx, qy, out + i);
}

void DistanceSquaredBatchSse2(const double* xs, const double* ys, size_t n,
                              double qx, double qy, double* out) {
  const __m128d qxv = _mm_set1_pd(qx);
  const __m128d qyv = _mm_set1_pd(qy);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), qxv);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), qyv);
    _mm_storeu_pd(out + i,
                  _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
  }
  DistanceSquaredBatchScalar(xs + i, ys + i, n - i, qx, qy, out + i);
}

size_t AppendIdsWithinRadiusSse2(const double* xs, const double* ys,
                                 const int64_t* ids, size_t n, double cx,
                                 double cy, double r2,
                                 std::vector<int64_t>* out) {
  const __m128d cxv = _mm_set1_pd(cx);
  const __m128d cyv = _mm_set1_pd(cy);
  const __m128d r2v = _mm_set1_pd(r2);
  size_t appended = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), cxv);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), cyv);
    const __m128d d2 =
        _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    int mask = _mm_movemask_pd(_mm_cmple_pd(d2, r2v));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out->push_back(ids[i + static_cast<size_t>(lane)]);
      ++appended;
      mask &= mask - 1;
    }
  }
  appended +=
      AppendIdsWithinRadiusScalar(xs + i, ys + i, ids + i, n - i, cx, cy, r2,
                                  out);
  return appended;
}

size_t SelectInWindowSse2(const double* xs, const double* ys, size_t n,
                          double x1, double y1, double x2, double y2,
                          uint32_t* idx_out) {
  const __m128d x1v = _mm_set1_pd(x1);
  const __m128d y1v = _mm_set1_pd(y1);
  const __m128d x2v = _mm_set1_pd(x2);
  const __m128d y2v = _mm_set1_pd(y2);
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_loadu_pd(xs + i);
    const __m128d y = _mm_loadu_pd(ys + i);
    const __m128d in_x = _mm_and_pd(_mm_cmpge_pd(x, x1v),
                                    _mm_cmple_pd(x, x2v));
    const __m128d in_y = _mm_and_pd(_mm_cmpge_pd(y, y1v),
                                    _mm_cmple_pd(y, y2v));
    int mask = _mm_movemask_pd(_mm_and_pd(in_x, in_y));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      idx_out[count++] = static_cast<uint32_t>(i + static_cast<size_t>(lane));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (xs[i] >= x1 && xs[i] <= x2 && ys[i] >= y1 && ys[i] <= y2) {
      idx_out[count++] = static_cast<uint32_t>(i);
    }
  }
  return count;
}

size_t KSmallestSse2(const double* dist, const int64_t* ids, size_t n,
                     size_t k, uint32_t* idx_out) {
  if (k == 0) return 0;
  size_t filled = 0;
  double worst = std::numeric_limits<double>::infinity();
  size_t i = 0;
  // Everything is accepted until the selection fills, so start scalar.
  for (; i < n && filled < k; ++i) {
    if (dist[i] > worst) continue;
    worst = KSmallestOffer(dist, ids, k, idx_out, &filled, i);
  }
  for (; i + 2 <= n; i += 2) {
    // Conservative prefilter: lanes with dist <= current worst may belong in
    // the selection (ties resolve by id inside the exact offer); the rest
    // cannot. `worst` only shrinks, so a stale threshold within the block
    // admits extra lanes but never drops one.
    const __m128d d = _mm_loadu_pd(dist + i);
    int mask = _mm_movemask_pd(_mm_cmple_pd(d, _mm_set1_pd(worst)));
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      worst = KSmallestOffer(dist, ids, k, idx_out, &filled,
                             i + static_cast<size_t>(lane));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (dist[i] > worst) continue;
    worst = KSmallestOffer(dist, ids, k, idx_out, &filled, i);
  }
  return filled;
}

}  // namespace

const KernelOps kSse2Ops = {
    DistanceBatchSse2,         DistanceSquaredBatchSse2,
    AppendIdsWithinRadiusSse2, SelectInWindowSse2,
    KSmallestSse2,             IsSortedUniqueI64Scalar,
};

}  // namespace lbsq::kernels::internal

#else  // !LBSQ_KERNELS_X86 || !__SSE2__

namespace lbsq::kernels::internal {

// SSE2 not compiled in (non-x86 build): the tier aliases the scalar
// reference.
const KernelOps kSse2Ops = {
    DistanceBatchScalar,         DistanceSquaredBatchScalar,
    AppendIdsWithinRadiusScalar, SelectInWindowScalar,
    KSmallestScalar,             IsSortedUniqueI64Scalar,
};

}  // namespace lbsq::kernels::internal

#endif  // LBSQ_KERNELS_X86 && __SSE2__
