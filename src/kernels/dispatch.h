#ifndef LBSQ_KERNELS_DISPATCH_H_
#define LBSQ_KERNELS_DISPATCH_H_

/// \file
/// Runtime SIMD dispatch for the query hot-loop kernels. The instruction-set
/// tier is resolved once at startup: `LBSQ_SIMD=scalar|sse2|avx2|auto`
/// (default auto) intersected with what CPUID reports. Every kernel is
/// written so its result is bit-identical to the scalar reference at every
/// tier — per-element `dx*dx + dy*dy` with no FMA contraction and no
/// reassociated reductions, and IEEE-correctly-rounded `sqrt` — so the tier
/// changes throughput, never content.

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__) || \
    defined(_M_IX86)
#define LBSQ_KERNELS_X86 1
#else
#define LBSQ_KERNELS_X86 0
#endif

namespace lbsq::kernels {

/// Instruction-set tiers, ordered by capability. On non-x86 builds only
/// kScalar exists; the others alias the scalar implementation.
enum class SimdTier { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// "scalar", "sse2", "avx2".
const char* TierName(SimdTier tier);

/// Highest tier this CPU can execute (CPUID probe; kScalar off x86).
SimdTier MaxSupportedTier();

/// True when `tier`'s implementation was compiled in AND the CPU supports
/// it. Scalar is always runnable.
bool TierIsRunnable(SimdTier tier);

/// Parses an LBSQ_SIMD value. "auto" sets `*is_auto`; otherwise `*tier`.
/// Returns false for anything else.
bool ParseTier(const char* text, SimdTier* tier, bool* is_auto);

/// The tier the kernel table currently dispatches to. First use resolves
/// LBSQ_SIMD (an unknown value or a tier the CPU lacks falls back to auto
/// with a warning on stderr).
SimdTier ActiveTier();

/// Forces the active tier (tests and benchmarks). Returns false — leaving
/// the table unchanged — when the tier is not runnable on this machine.
/// Not meant to be called concurrently with kernel execution.
bool SetActiveTier(SimdTier tier);

}  // namespace lbsq::kernels

#endif  // LBSQ_KERNELS_DISPATCH_H_
