// Scalar reference implementations: the semantics every SIMD tier must
// reproduce bit-for-bit. Compiled with -ffp-contract=off so the compiler
// cannot fuse dx*dx + dy*dy into an FMA the vector variants don't perform.

#include <cmath>
#include <limits>

#include "kernels/kernels.h"

namespace lbsq::kernels::internal {

void DistanceBatchScalar(const double* xs, const double* ys, size_t n,
                         double qx, double qy, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - qx;
    const double dy = ys[i] - qy;
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

void DistanceSquaredBatchScalar(const double* xs, const double* ys, size_t n,
                                double qx, double qy, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - qx;
    const double dy = ys[i] - qy;
    out[i] = dx * dx + dy * dy;
  }
}

size_t AppendIdsWithinRadiusScalar(const double* xs, const double* ys,
                                   const int64_t* ids, size_t n, double cx,
                                   double cy, double r2,
                                   std::vector<int64_t>* out) {
  size_t appended = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - cx;
    const double dy = ys[i] - cy;
    if (dx * dx + dy * dy <= r2) {
      out->push_back(ids[i]);
      ++appended;
    }
  }
  return appended;
}

size_t SelectInWindowScalar(const double* xs, const double* ys, size_t n,
                            double x1, double y1, double x2, double y2,
                            uint32_t* idx_out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (xs[i] >= x1 && xs[i] <= x2 && ys[i] >= y1 && ys[i] <= y2) {
      idx_out[count++] = static_cast<uint32_t>(i);
    }
  }
  return count;
}

double KSmallestOffer(const double* dist, const int64_t* ids, size_t k,
                      uint32_t* idx_out, size_t* filled, size_t i) {
  const double d = dist[i];
  const int64_t id = ids[i];
  size_t pos;
  if (*filled == k) {
    const uint32_t w = idx_out[k - 1];
    // Strictly better than the current worst by (distance, id), else keep
    // the incumbent (earliest index wins on fully equal keys).
    if (!(d < dist[w] || (d == dist[w] && id < ids[w]))) return dist[w];
    pos = k - 1;
  } else {
    pos = (*filled)++;
  }
  while (pos > 0) {
    const uint32_t p = idx_out[pos - 1];
    if (dist[p] < d || (dist[p] == d && ids[p] <= id)) break;
    idx_out[pos] = p;
    --pos;
  }
  idx_out[pos] = static_cast<uint32_t>(i);
  return *filled == k ? dist[idx_out[k - 1]]
                      : std::numeric_limits<double>::infinity();
}

size_t KSmallestScalar(const double* dist, const int64_t* ids, size_t n,
                       size_t k, uint32_t* idx_out) {
  if (k == 0) return 0;
  size_t filled = 0;
  double worst = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    // Same conservative prefilter the SIMD tiers apply per lane block; the
    // exact (distance, id) comparison lives in KSmallestOffer.
    if (dist[i] > worst) continue;
    worst = KSmallestOffer(dist, ids, k, idx_out, &filled, i);
  }
  return filled;
}

bool IsSortedUniqueI64Scalar(const int64_t* v, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    if (v[i - 1] >= v[i]) return false;
  }
  return true;
}

const KernelOps kScalarOps = {
    DistanceBatchScalar,         DistanceSquaredBatchScalar,
    AppendIdsWithinRadiusScalar, SelectInWindowScalar,
    KSmallestScalar,             IsSortedUniqueI64Scalar,
};

}  // namespace lbsq::kernels::internal
