#ifndef LBSQ_KERNELS_KERNELS_H_
#define LBSQ_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/dispatch.h"

/// \file
/// Vectorized kernels over structure-of-arrays point slabs (see poi_slab.h).
/// Each kernel exists in a scalar reference implementation plus SSE2/AVX2
/// variants selected at startup (dispatch.h); all tiers are bit-identical by
/// construction. The free functions at the bottom dispatch through the
/// active tier's table; `OpsForTier` exposes a specific tier for the
/// differential tests and micro-benchmarks.
///
/// Determinism contract (enforced by tests/kernels_test.cc):
///  - distances are per-element `sqrt(dx*dx + dy*dy)` — no FMA contraction
///    (the kernel translation units compile with -ffp-contract=off and the
///    SIMD variants use explicit mul/add intrinsics), no reassociated
///    reductions, hardware `sqrt` (IEEE-correctly rounded, so identical to
///    `std::sqrt`);
///  - selections preserve input order and use closed predicates (`<=`),
///    matching `geom::Rect::Contains` / disc membership exactly;
///  - k-smallest orders by `(distance, id)` lexicographically — the
///    `PoiDistance` tie-break — and on fully equal keys keeps the earliest
///    input index, independent of tier.
///
/// Preconditions: coordinates and distances are finite (no NaN ordering
/// traps); selection index outputs use uint32_t, so slabs are capped at
/// 2^32 elements.

namespace lbsq::kernels {

/// Function-pointer table for one instruction-set tier.
struct KernelOps {
  /// out[i] = sqrt((xs[i]-qx)^2 + (ys[i]-qy)^2).
  void (*distance_batch)(const double* xs, const double* ys, size_t n,
                         double qx, double qy, double* out);

  /// out[i] = (xs[i]-qx)^2 + (ys[i]-qy)^2.
  void (*distance_squared_batch)(const double* xs, const double* ys, size_t n,
                                 double qx, double qy, double* out);

  /// Appends ids[i] (ascending i) with (xs[i]-cx)^2 + (ys[i]-cy)^2 <= r2 to
  /// `*out`; returns the number appended.
  size_t (*append_ids_within_radius)(const double* xs, const double* ys,
                                     const int64_t* ids, size_t n, double cx,
                                     double cy, double r2,
                                     std::vector<int64_t>* out);

  /// Writes the indices i (ascending) with x1 <= xs[i] <= x2 and
  /// y1 <= ys[i] <= y2 to idx_out (capacity >= n); returns the count.
  size_t (*select_in_window)(const double* xs, const double* ys, size_t n,
                             double x1, double y1, double x2, double y2,
                             uint32_t* idx_out);

  /// Selects the min(k, n) smallest elements by (dist[i], ids[i])
  /// lexicographic order and writes their indices, sorted by that same
  /// order, to idx_out (capacity >= k). Returns the count.
  size_t (*k_smallest)(const double* dist, const int64_t* ids, size_t n,
                       size_t k, uint32_t* idx_out);

  /// True when v is strictly increasing (sorted with no duplicates).
  bool (*is_sorted_unique_i64)(const int64_t* v, size_t n);
};

/// The active tier's table (resolved on first use; see dispatch.h).
const KernelOps& Ops();

/// A specific tier's table. Requesting a tier that is not compiled in (or
/// not runnable on this CPU) returns the scalar table.
const KernelOps& OpsForTier(SimdTier tier);

// --- Dispatching wrappers -------------------------------------------------

inline void DistanceBatch(const double* xs, const double* ys, size_t n,
                          double qx, double qy, double* out) {
  Ops().distance_batch(xs, ys, n, qx, qy, out);
}

inline void DistanceSquaredBatch(const double* xs, const double* ys, size_t n,
                                 double qx, double qy, double* out) {
  Ops().distance_squared_batch(xs, ys, n, qx, qy, out);
}

inline size_t AppendIdsWithinRadius(const double* xs, const double* ys,
                                    const int64_t* ids, size_t n, double cx,
                                    double cy, double r2,
                                    std::vector<int64_t>* out) {
  return Ops().append_ids_within_radius(xs, ys, ids, n, cx, cy, r2, out);
}

inline size_t SelectInWindow(const double* xs, const double* ys, size_t n,
                             double x1, double y1, double x2, double y2,
                             uint32_t* idx_out) {
  return Ops().select_in_window(xs, ys, n, x1, y1, x2, y2, idx_out);
}

inline size_t KSmallest(const double* dist, const int64_t* ids, size_t n,
                        size_t k, uint32_t* idx_out) {
  return Ops().k_smallest(dist, ids, n, k, idx_out);
}

inline bool IsSortedUniqueI64(const int64_t* v, size_t n) {
  return Ops().is_sorted_unique_i64(v, n);
}

namespace internal {

// Per-tier tables (kernels_{scalar,sse2,avx2}.cc). On non-x86 builds the
// SIMD tables alias the scalar implementations.
extern const KernelOps kScalarOps;
extern const KernelOps kSse2Ops;
extern const KernelOps kAvx2Ops;

// Shared by the scalar table and the SIMD tails: the exact per-element
// reference semantics every tier must reproduce bit-for-bit.
void DistanceBatchScalar(const double* xs, const double* ys, size_t n,
                         double qx, double qy, double* out);
void DistanceSquaredBatchScalar(const double* xs, const double* ys, size_t n,
                                double qx, double qy, double* out);
size_t AppendIdsWithinRadiusScalar(const double* xs, const double* ys,
                                   const int64_t* ids, size_t n, double cx,
                                   double cy, double r2,
                                   std::vector<int64_t>* out);
size_t SelectInWindowScalar(const double* xs, const double* ys, size_t n,
                            double x1, double y1, double x2, double y2,
                            uint32_t* idx_out);
size_t KSmallestScalar(const double* dist, const int64_t* ids, size_t n,
                       size_t k, uint32_t* idx_out);
bool IsSortedUniqueI64Scalar(const int64_t* v, size_t n);

// Bounded-insertion step shared by every k_smallest tier: offers element i
// to the current selection idx_out[0..*filled) (sorted by (dist, id)).
// Returns the new worst selected element's distance (the SIMD prefilter
// threshold), or +inf while the selection is not yet full.
double KSmallestOffer(const double* dist, const int64_t* ids, size_t k,
                      uint32_t* idx_out, size_t* filled, size_t i);

}  // namespace internal

}  // namespace lbsq::kernels

#endif  // LBSQ_KERNELS_KERNELS_H_
