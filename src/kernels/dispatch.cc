#include "kernels/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "kernels/kernels.h"

namespace lbsq::kernels {

namespace {

// Resolved once (first Ops()/ActiveTier() call); SetActiveTier overrides.
// Atomics keep concurrent first-use and reads TSan-clean.
std::atomic<int> g_tier{-1};
std::atomic<const KernelOps*> g_ops{nullptr};
std::once_flag g_resolve_once;

void Resolve() {
  SimdTier tier = MaxSupportedTier();
  const char* env = std::getenv("LBSQ_SIMD");
  if (env != nullptr && env[0] != '\0') {
    SimdTier parsed = SimdTier::kScalar;
    bool is_auto = false;
    if (!ParseTier(env, &parsed, &is_auto)) {
      std::fprintf(stderr,
                   "lbsq: unknown LBSQ_SIMD value '%s' "
                   "(want scalar|sse2|avx2|auto); using auto (%s)\n",
                   env, TierName(tier));
    } else if (!is_auto) {
      if (TierIsRunnable(parsed)) {
        tier = parsed;
      } else {
        std::fprintf(stderr,
                     "lbsq: LBSQ_SIMD=%s is not runnable on this CPU; "
                     "using auto (%s)\n",
                     env, TierName(tier));
      }
    }
  }
  g_ops.store(&OpsForTier(tier), std::memory_order_release);
  g_tier.store(static_cast<int>(tier), std::memory_order_release);
}

void EnsureResolved() { std::call_once(g_resolve_once, Resolve); }

}  // namespace

const char* TierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdTier MaxSupportedTier() {
#if LBSQ_KERNELS_X86 && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdTier::kSse2;
#endif
  return SimdTier::kScalar;
}

bool TierIsRunnable(SimdTier tier) {
  return static_cast<int>(tier) <= static_cast<int>(MaxSupportedTier());
}

bool ParseTier(const char* text, SimdTier* tier, bool* is_auto) {
  *is_auto = false;
  if (std::strcmp(text, "auto") == 0) {
    *is_auto = true;
    return true;
  }
  if (std::strcmp(text, "scalar") == 0) {
    *tier = SimdTier::kScalar;
    return true;
  }
  if (std::strcmp(text, "sse2") == 0) {
    *tier = SimdTier::kSse2;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    *tier = SimdTier::kAvx2;
    return true;
  }
  return false;
}

SimdTier ActiveTier() {
  EnsureResolved();
  return static_cast<SimdTier>(g_tier.load(std::memory_order_acquire));
}

bool SetActiveTier(SimdTier tier) {
  EnsureResolved();
  if (!TierIsRunnable(tier)) return false;
  g_ops.store(&OpsForTier(tier), std::memory_order_release);
  g_tier.store(static_cast<int>(tier), std::memory_order_release);
  return true;
}

const KernelOps& Ops() {
  const KernelOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    EnsureResolved();
    ops = g_ops.load(std::memory_order_acquire);
  }
  return *ops;
}

const KernelOps& OpsForTier(SimdTier tier) {
  if (!TierIsRunnable(tier)) return internal::kScalarOps;
  switch (tier) {
    case SimdTier::kScalar:
      return internal::kScalarOps;
    case SimdTier::kSse2:
      return internal::kSse2Ops;
    case SimdTier::kAvx2:
      return internal::kAvx2Ops;
  }
  return internal::kScalarOps;
}

}  // namespace lbsq::kernels
