#ifndef LBSQ_FAULT_PEER_SCREEN_H_
#define LBSQ_FAULT_PEER_SCREEN_H_

#include <cstdint>
#include <vector>

#include "core/verified_region.h"
#include "geom/rect.h"

/// \file
/// Defensive screening of shared peer data. NNV (Lemma 3.1) is only sound
/// when every shared region satisfies the completeness invariant — every
/// server POI inside the region is listed. A querier cannot prove that
/// invariant locally, but it can *cross-check* peers against each other
/// using the same invariant: any genuine POI claimed by one peer that falls
/// inside another peer's verified region must appear in that region's list,
/// with an identical position. Honest peers (whose entries all derive from
/// the one true server database) can never disagree, so every conflict
/// implicates at least one corrupt region — the screen conservatively drops
/// both sides and lets the query fall back to the on-air path for whatever
/// knowledge it lost. Graceful degradation: fewer peer hits, never an
/// unsound "verified" answer built on data a consistent peer contradicted.

namespace lbsq::fault {

/// Accounting of one screening pass.
struct ScreenResult {
  /// Regions dropped (failed a local sanity check or a cross-check).
  int64_t regions_rejected = 0;
  /// Regions that survived.
  int64_t regions_kept = 0;
};

/// Screens `peers` in place:
///  1. local sanity: region and POI coordinates must be finite and every
///     listed POI must lie inside `world` (server objects always do);
///  2. position consistency: the same POI id claimed at two different
///     positions implicates both claiming regions;
///  3. completeness cross-check: a POI claimed by region A that lies inside
///     region B's rectangle but is missing from B's list implicates both.
/// Rejected regions are removed; peers left with no regions are dropped.
/// Deterministic (no randomness) and conservative: on a conflict between an
/// honest and a corrupt region, both go.
ScreenResult ScreenPeerData(const geom::Rect& world,
                            std::vector<core::PeerData>* peers);

}  // namespace lbsq::fault

#endif  // LBSQ_FAULT_PEER_SCREEN_H_
