#include "fault/peer_screen.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

namespace lbsq::fault {

namespace {

// Flat handle on one shared region plus a sorted (id -> poi index) lookup.
struct RegionRef {
  size_t peer = 0;
  size_t index = 0;
  const core::VerifiedRegion* vr = nullptr;
  std::vector<std::pair<int64_t, size_t>> by_id;  // sorted by id

  const spatial::Poi* Find(int64_t id) const {
    auto it = std::lower_bound(
        by_id.begin(), by_id.end(), std::make_pair(id, size_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == by_id.end() || it->first != id) return nullptr;
    return &vr->pois[it->second];
  }
};

bool Finite(geom::Point p) {
  return std::isfinite(p.x) && std::isfinite(p.y);
}

// Local sanity: coordinates finite, every listed POI inside the world.
// (Honest POIs are copies of server objects, which always lie in the world;
// the *region* may legitimately overhang the world boundary — SBNN caches
// squares centered on near-border queries — so it is not world-checked.)
bool LocallySane(const geom::Rect& world, const core::VerifiedRegion& vr) {
  if (!std::isfinite(vr.region.x1) || !std::isfinite(vr.region.y1) ||
      !std::isfinite(vr.region.x2) || !std::isfinite(vr.region.y2)) {
    return false;
  }
  for (const spatial::Poi& poi : vr.pois) {
    if (poi.id < 0 || !Finite(poi.pos) || !world.Contains(poi.pos)) {
      return false;
    }
  }
  return true;
}

}  // namespace

ScreenResult ScreenPeerData(const geom::Rect& world,
                            std::vector<core::PeerData>* peers) {
  ScreenResult result;

  std::vector<RegionRef> regions;
  for (size_t p = 0; p < peers->size(); ++p) {
    const core::PeerData& peer = (*peers)[p];
    for (size_t r = 0; r < peer.regions.size(); ++r) {
      RegionRef ref;
      ref.peer = p;
      ref.index = r;
      ref.vr = &peer.regions[r];
      ref.by_id.reserve(ref.vr->pois.size());
      for (size_t i = 0; i < ref.vr->pois.size(); ++i) {
        ref.by_id.emplace_back(ref.vr->pois[i].id, i);
      }
      std::sort(ref.by_id.begin(), ref.by_id.end());
      regions.push_back(std::move(ref));
    }
  }

  std::vector<bool> rejected(regions.size(), false);
  for (size_t a = 0; a < regions.size(); ++a) {
    if (!LocallySane(world, *regions[a].vr)) rejected[a] = true;
  }

  // Cross-checks. Honest regions all mirror the one server database, so any
  // disagreement implicates at least one corrupt side; since the screen
  // cannot tell which, it conservatively drops both. Already-rejected
  // regions still participate as witnesses: their POIs may be genuine even
  // when the region as a whole is untrustworthy, but they can no longer
  // condemn others, so checks only run between not-yet-rejected pairs.
  for (size_t a = 0; a < regions.size(); ++a) {
    if (rejected[a]) continue;
    for (size_t b = a + 1; b < regions.size(); ++b) {
      if (rejected[b]) continue;
      if (regions[a].peer == regions[b].peer &&
          regions[a].index == regions[b].index) {
        continue;
      }
      bool conflict = false;
      // Direction A -> B: every POI A claims that lies inside B's region
      // must appear in B's list at the identical position; the same id at a
      // different position is equally a conflict.
      for (const spatial::Poi& poi : regions[a].vr->pois) {
        const spatial::Poi* other = regions[b].Find(poi.id);
        if (other != nullptr) {
          if (!(other->pos == poi.pos)) {
            conflict = true;
            break;
          }
        } else if (regions[b].vr->region.Contains(poi.pos)) {
          conflict = true;  // B's completeness claim is violated
          break;
        }
      }
      // Direction B -> A.
      if (!conflict) {
        for (const spatial::Poi& poi : regions[b].vr->pois) {
          if (regions[a].vr->region.Contains(poi.pos) &&
              regions[a].Find(poi.id) == nullptr) {
            conflict = true;
            break;
          }
        }
      }
      if (conflict) {
        rejected[a] = true;
        rejected[b] = true;
        break;  // a is gone; move on to the next region
      }
    }
  }

  // Rebuild the peer list without the rejected regions.
  std::vector<std::vector<bool>> keep(peers->size());
  for (size_t p = 0; p < peers->size(); ++p) {
    keep[p].assign((*peers)[p].regions.size(), true);
  }
  for (size_t i = 0; i < regions.size(); ++i) {
    if (rejected[i]) {
      keep[regions[i].peer][regions[i].index] = false;
      ++result.regions_rejected;
    } else {
      ++result.regions_kept;
    }
  }
  if (result.regions_rejected == 0) return result;

  std::vector<core::PeerData> survivors;
  survivors.reserve(peers->size());
  for (size_t p = 0; p < peers->size(); ++p) {
    core::PeerData out;
    for (size_t r = 0; r < (*peers)[p].regions.size(); ++r) {
      if (keep[p][r]) out.regions.push_back(std::move((*peers)[p].regions[r]));
    }
    if (!out.empty()) survivors.push_back(std::move(out));
  }
  *peers = std::move(survivors);
  return result;
}

}  // namespace lbsq::fault
