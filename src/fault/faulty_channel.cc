#include "fault/faulty_channel.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace lbsq::fault {

ChannelSession::ChannelSession(const ChannelFaultConfig& channel,
                               const FaultPolicy& policy, uint64_t stream_seed)
    : channel_(channel), policy_(policy), rng_(stream_seed), burst_(channel) {
  channel_.Validate();
  policy_.Validate();
}

int ChannelSession::SampleReception() {
  bool lost = false;
  switch (channel_.model) {
    case LossModel::kNone:
      break;
    case LossModel::kIid:
      lost = rng_.NextBool(channel_.loss_prob);
      break;
    case LossModel::kGilbertElliott:
      lost = burst_.NextLost(&rng_);
      break;
  }
  if (lost) return 1;
  if (channel_.corruption_prob > 0.0 && rng_.NextBool(channel_.corruption_prob)) {
    return 2;
  }
  return 0;
}

FaultyRetrievalResult ChannelSession::Retrieve(
    const broadcast::BroadcastSchedule& schedule, int64_t t,
    const std::vector<int64_t>& buckets, broadcast::IndexReadMode index_mode,
    obs::TraceRecorder* trace) {
  LBSQ_CHECK(t >= 0);
  const int64_t index_read = index_mode.BucketsToRead(schedule);
  LBSQ_CHECK(index_read >= 0);
  LBSQ_CHECK(index_read <= schedule.index_buckets());
  FaultyRetrievalResult result;

  std::vector<int64_t> needed = buckets;
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

  const int64_t deadline = policy_.deadline_slots > 0
                               ? t + policy_.deadline_slots
                               : std::numeric_limits<int64_t>::max();

  // Step 1: initial probe (1 slot). Assumed received: every bucket carries
  // the next-index pointer, so any single good slot suffices — consistent
  // with RetrieveBucketsLossy.
  result.stats.tuning_time += 1;
  if (trace != nullptr) trace->Span("bcast.probe", t, t + 1);

  // Step 2: index search. A segment read fails when any of its index_read
  // receptions is lost or corrupted; the client dozes to the next replica.
  int64_t cursor = t + 1;
  const int64_t first_index_start = schedule.NextIndexSegmentStart(cursor);
  bool index_ok = false;
  int index_attempts = 0;
  for (;;) {
    const int64_t index_start = schedule.NextIndexSegmentStart(cursor);
    const int64_t segment_end = index_start + schedule.index_buckets();
    if (segment_end > deadline) {
      result.deadline_hit = true;
      break;
    }
    cursor = segment_end;
    result.stats.tuning_time += index_read;
    bool ok = true;
    for (int64_t i = 0; i < index_read; ++i) {
      switch (SampleReception()) {
        case 1:
          ++result.losses;
          ok = false;
          break;
        case 2:
          ++result.corruptions;
          ok = false;
          break;
        default:
          break;
      }
    }
    if (ok) {
      index_ok = true;
      break;
    }
    ++index_attempts;
    if (index_attempts > policy_.max_retries_per_bucket) break;
  }
  const int64_t index_end = cursor;
  if (trace != nullptr) trace->Span("bcast.index", first_index_start, index_end);

  int64_t completion = index_end;
  if (!index_ok) {
    // Without the index the client cannot locate any bucket: the whole
    // retrieval fails and the query must degrade.
    result.failed = std::move(needed);
  } else {
    // Step 3: data retrieval, each bucket bounded by the retry budget and
    // all of them by the deadline. Failed attempts still advance the
    // completion horizon — the receiver was on and time passed.
    for (int64_t bucket : needed) {
      int64_t attempt_from = index_end;
      int attempts = 0;
      bool got = false;
      for (;;) {
        const int64_t slot = schedule.NextBucketSlot(attempt_from, bucket);
        if (slot + 1 > deadline) {
          result.deadline_hit = true;
          break;
        }
        result.stats.tuning_time += 1;
        completion = std::max(completion, slot + 1);
        const int reception = SampleReception();
        if (reception == 0) {
          got = true;
          break;
        }
        if (reception == 1) {
          ++result.losses;
        } else {
          ++result.corruptions;
        }
        ++attempts;
        if (attempts > policy_.max_retries_per_bucket) break;
        attempt_from = slot + 1;
      }
      if (got) {
        result.received.push_back(bucket);
      } else {
        result.failed.push_back(bucket);
      }
    }
  }

  result.stats.buckets_read = static_cast<int64_t>(result.received.size());
  result.stats.access_latency = completion - t;
  if (trace != nullptr) {
    trace->Span("bcast.data", index_end, completion);
    trace->Counter("fault.losses", static_cast<double>(result.losses));
    trace->Counter("fault.corruptions",
                   static_cast<double>(result.corruptions));
    trace->Counter("fault.failed_buckets",
                   static_cast<double>(result.failed.size()));
    trace->Counter("fault.deadline_hit", result.deadline_hit ? 1.0 : 0.0);
  }
  return result;
}

}  // namespace lbsq::fault
