#ifndef LBSQ_FAULT_FAULTY_CHANNEL_H_
#define LBSQ_FAULT_FAULTY_CHANNEL_H_

#include <cstdint>
#include <vector>

#include "broadcast/client_protocol.h"
#include "broadcast/schedule.h"
#include "common/observability.h"
#include "common/rng.h"
#include "fault/fault_model.h"

/// \file
/// The client access protocol over a faulty channel. Extends the retry
/// semantics of `RetrieveBucketsLossy` with burst losses (Gilbert–Elliott),
/// CRC-detected corruption, and the bounded retry/deadline policy: instead
/// of retrying forever, the client gives up on buckets whose retry budget or
/// slot deadline is exhausted and reports them as *failed*, letting the
/// query layer degrade gracefully (answer from what was received, claim no
/// verified knowledge it does not have).

namespace lbsq::fault {

/// Outcome of one faulty retrieval.
struct FaultyRetrievalResult {
  /// Latency/tuning/bucket accounting (failed attempts still cost tuning).
  broadcast::AccessStats stats;
  /// Bucket ids fully received (sorted, deduplicated).
  std::vector<int64_t> received;
  /// Bucket ids given up on (retry budget or deadline exhausted; sorted).
  std::vector<int64_t> failed;
  /// Receptions lost to the channel (index and data alike).
  int64_t losses = 0;
  /// Receptions received but discarded for failing the CRC32 frame check.
  int64_t corruptions = 0;
  /// True when the slot deadline cut the retrieval short.
  bool deadline_hit = false;

  /// True when every requested bucket (and the index) was received.
  bool complete() const { return failed.empty(); }
};

/// Per-query channel state: one fault RNG stream plus the burst-channel
/// Markov state, persisting across the retrievals a single query issues.
/// Construct one per query from `ChannelStreamSeed(seed, query_id)`; the
/// resulting fault schedule is then a pure function of (config, seed,
/// query id) — independent of engine, thread count, and other queries.
class ChannelSession {
 public:
  ChannelSession(const ChannelFaultConfig& channel, const FaultPolicy& policy,
                 uint64_t stream_seed);

  /// True when the session can perturb retrievals at all. When false,
  /// callers should use the fault-free RetrieveBuckets path (bit-identical
  /// behavior and trace output).
  bool channel_enabled() const { return channel_.enabled(); }

  /// RetrieveBuckets over this session's faulty channel:
  ///  1. initial probe (1 slot; assumed received — every bucket carries the
  ///     next-index pointer, so a single good slot suffices);
  ///  2. index search with whole-segment retries: the read fails if any of
  ///     its `index_mode` buckets is lost or corrupted, and the client dozes
  ///     to the next replica. An index that cannot be read within the retry
  ///     budget / deadline fails the entire retrieval (every bucket failed).
  ///  3. per-bucket data retrieval with retries at later occurrences, each
  ///     bucket bounded by `policy.max_retries_per_bucket` and all of them
  ///     by the `policy.deadline_slots` cutoff.
  ///
  /// A non-null `trace` receives the protocol-stage spans (`bcast.probe`,
  /// `bcast.index`, `bcast.data`) plus the fault counters `fault.losses`,
  /// `fault.corruptions`, `fault.failed_buckets`, and `fault.deadline_hit`.
  FaultyRetrievalResult Retrieve(const broadcast::BroadcastSchedule& schedule,
                                 int64_t t,
                                 const std::vector<int64_t>& buckets,
                                 broadcast::IndexReadMode index_mode,
                                 obs::TraceRecorder* trace = nullptr);

 private:
  /// Samples one reception: advances the loss process and the corruption
  /// draw. Returns 0 = received, 1 = lost, 2 = corrupted.
  int SampleReception();

  ChannelFaultConfig channel_;
  FaultPolicy policy_;
  Rng rng_;
  GilbertElliottChannel burst_;
};

}  // namespace lbsq::fault

#endif  // LBSQ_FAULT_FAULTY_CHANNEL_H_
