#ifndef LBSQ_FAULT_FAULT_MODEL_H_
#define LBSQ_FAULT_FAULT_MODEL_H_

#include <cstdint>

#include "common/rng.h"

/// \file
/// Fault-injection configuration: the composable fault surface of the
/// system. The paper's premise is that a mobile host can trust *unreliable*
/// inputs — a broadcast channel subject to fading and peer caches reached
/// over a lossy P2P link — so the repro models both fault classes as
/// first-class, deterministic processes:
///
///  * channel faults — bucket loss (iid or Gilbert–Elliott burst fading) and
///    wire-level corruption (a received frame fails its CRC32; see
///    broadcast/wire framing) — handled by `fault::ChannelSession`;
///  * peer faults — stale POIs, truncated regions, flipped coordinates in
///    shared caches — injected by `fault::CorruptPeerData` and defended
///    against by `fault::ScreenPeerData`;
///  * a bounded retry/deadline policy (`FaultPolicy`) deciding when a
///    retrieval gives up and the query degrades gracefully instead of
///    blocking forever.
///
/// All randomness flows through per-query sub-streams of `FaultConfig::seed`
/// (counter-based, see DeriveStreamSeed), so a fault schedule is a pure
/// function of (seed, query id): bitwise reproducible across engines and
/// thread counts.

namespace lbsq::fault {

/// Which loss process the channel follows.
enum class LossModel {
  /// No losses (corruption may still be enabled).
  kNone,
  /// Every reception fails independently with `loss_prob`.
  kIid,
  /// Two-state Gilbert–Elliott burst model: a Good/Bad Markov chain advanced
  /// once per listened slot, each state with its own loss probability.
  /// Captures the time-correlated deep fades of a real wireless channel that
  /// the iid model cannot (a burst can wipe out a whole index segment).
  kGilbertElliott,
};

/// Channel-level fault parameters.
struct ChannelFaultConfig {
  LossModel model = LossModel::kNone;

  /// Loss probability per reception (kIid only). In [0, 1).
  double loss_prob = 0.0;

  /// Gilbert–Elliott parameters (kGilbertElliott only). Transition
  /// probabilities are per listened slot; the chain starts in Good.
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 0.1;
  /// Loss probability while in the Good / Bad state. In [0, 1).
  double loss_good = 0.0;
  double loss_bad = 0.8;

  /// Probability that a reception that was *not* lost arrives corrupted —
  /// i.e., fails its CRC32 frame check (see broadcast/wire framed encoding)
  /// and must be treated exactly like a loss: detected, discarded, retried.
  /// In [0, 1).
  double corruption_prob = 0.0;

  /// True when this configuration can perturb the channel at all.
  bool enabled() const {
    return (model == LossModel::kIid && loss_prob > 0.0) ||
           model == LossModel::kGilbertElliott || corruption_prob > 0.0;
  }

  /// Long-run fraction of receptions lost (before corruption), for
  /// reporting: p for iid, the stationary mixture of loss_good/loss_bad for
  /// Gilbert–Elliott.
  double SteadyStateLossRate() const;

  /// Aborts (LBSQ_CHECK) unless every probability is in its legal range.
  void Validate() const;
};

/// The Gilbert–Elliott burst-loss channel: a two-state Markov chain sampled
/// once per reception. Deterministic given the Rng stream it is driven by.
class GilbertElliottChannel {
 public:
  explicit GilbertElliottChannel(const ChannelFaultConfig& config)
      : config_(config) {}

  /// Advances the chain one slot and samples whether that reception is
  /// lost.
  bool NextLost(Rng* rng);

  /// True while the chain is in the Bad (deep-fade) state.
  bool bad() const { return bad_; }

 private:
  ChannelFaultConfig config_;
  bool bad_ = false;
};

/// Peer-cache fault parameters: the ways a shared `VerifiedRegion` can be
/// wrong. All probabilities are per shared region, in [0, 1].
struct PeerFaultConfig {
  /// Stale data: every POI of the region drifts by a uniform offset in
  /// [-stale_drift, stale_drift] per axis (the peer cached an old snapshot).
  double stale_prob = 0.0;
  double stale_drift = 0.05;
  /// Truncation: the region silently drops every other cached POI while
  /// still claiming the full region — exactly the completeness violation
  /// that makes Lemma 3.1 unsound.
  double truncate_prob = 0.0;
  /// Coordinate flip: POI x/y coordinates are transposed (a classic
  /// serialization bug in the peer).
  double flip_prob = 0.0;

  bool enabled() const {
    return stale_prob > 0.0 || truncate_prob > 0.0 || flip_prob > 0.0;
  }

  /// Aborts (LBSQ_CHECK) unless probabilities are in [0, 1] and
  /// stale_drift >= 0.
  void Validate() const;
};

/// When a faulty retrieval gives up: per-bucket retry budget and a per-query
/// slot deadline. Exhausting either marks the affected buckets failed and
/// the query outcome *degraded* — the client answers from what it has
/// (never claiming verified knowledge it lacks) instead of waiting forever.
struct FaultPolicy {
  /// Retries per bucket after the first attempt. >= 0.
  int max_retries_per_bucket = 32;
  /// Total slots a retrieval may span before giving up; 0 = unlimited.
  int64_t deadline_slots = 0;

  /// Aborts (LBSQ_CHECK) on out-of-range values.
  void Validate() const;
};

/// The full fault surface of one simulation / query engine.
struct FaultConfig {
  ChannelFaultConfig channel;
  PeerFaultConfig peer;
  FaultPolicy policy;
  /// Enables the NNV cross-check screen on incoming peer data (see
  /// fault::ScreenPeerData). Defense, not injection: useful on its own.
  bool screen_peers = false;
  /// Root seed of every fault sub-stream. Independent of the simulation
  /// seed so fault schedules can be varied while holding the workload fixed
  /// (and vice versa).
  uint64_t seed = 1;

  /// True when any injection or defense is active; when false, every fault
  /// code path is bypassed and behavior is bit-identical to a build without
  /// the fault subsystem.
  bool enabled() const {
    return channel.enabled() || peer.enabled() || screen_peers;
  }

  void Validate() const {
    channel.Validate();
    peer.Validate();
    policy.Validate();
  }
};

/// Seed of the channel fault stream of query `query_id` (drives loss,
/// corruption, and burst-state sampling during that query's retrievals).
uint64_t ChannelStreamSeed(uint64_t fault_seed, uint64_t query_id);

/// Seed of the peer fault stream of query `query_id` (drives which shared
/// regions are corrupted, and how).
uint64_t PeerStreamSeed(uint64_t fault_seed, uint64_t query_id);

}  // namespace lbsq::fault

#endif  // LBSQ_FAULT_FAULT_MODEL_H_
