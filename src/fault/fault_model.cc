#include "fault/fault_model.h"

#include "common/check.h"

namespace lbsq::fault {

namespace {

// Sub-stream tags under FaultConfig::seed. Part of the reproducibility
// contract (changing them changes every seeded fault schedule).
constexpr uint64_t kChannelDomain = 0x11;
constexpr uint64_t kPeerDomain = 0x22;

void CheckProbability(double p) { LBSQ_CHECK(p >= 0.0 && p <= 1.0); }

}  // namespace

double ChannelFaultConfig::SteadyStateLossRate() const {
  switch (model) {
    case LossModel::kNone:
      return 0.0;
    case LossModel::kIid:
      return loss_prob;
    case LossModel::kGilbertElliott: {
      const double denom = p_good_to_bad + p_bad_to_good;
      if (denom <= 0.0) return loss_good;  // chain never leaves Good
      const double frac_bad = p_good_to_bad / denom;
      return (1.0 - frac_bad) * loss_good + frac_bad * loss_bad;
    }
  }
  return 0.0;
}

void ChannelFaultConfig::Validate() const {
  LBSQ_CHECK(loss_prob >= 0.0 && loss_prob < 1.0);
  CheckProbability(p_good_to_bad);
  CheckProbability(p_bad_to_good);
  LBSQ_CHECK(loss_good >= 0.0 && loss_good < 1.0);
  LBSQ_CHECK(loss_bad >= 0.0 && loss_bad < 1.0);
  LBSQ_CHECK(corruption_prob >= 0.0 && corruption_prob < 1.0);
}

bool GilbertElliottChannel::NextLost(Rng* rng) {
  // Transition first, then sample the loss in the new state: a fade that
  // begins on this slot already affects this reception.
  if (bad_) {
    if (rng->NextBool(config_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng->NextBool(config_.p_good_to_bad)) bad_ = true;
  }
  return rng->NextBool(bad_ ? config_.loss_bad : config_.loss_good);
}

void PeerFaultConfig::Validate() const {
  CheckProbability(stale_prob);
  CheckProbability(truncate_prob);
  CheckProbability(flip_prob);
  LBSQ_CHECK(stale_drift >= 0.0);
}

void FaultPolicy::Validate() const {
  LBSQ_CHECK(max_retries_per_bucket >= 0);
  LBSQ_CHECK(deadline_slots >= 0);
}

uint64_t ChannelStreamSeed(uint64_t fault_seed, uint64_t query_id) {
  return DeriveStreamSeed(DeriveStreamSeed(fault_seed, kChannelDomain),
                          query_id);
}

uint64_t PeerStreamSeed(uint64_t fault_seed, uint64_t query_id) {
  return DeriveStreamSeed(DeriveStreamSeed(fault_seed, kPeerDomain), query_id);
}

}  // namespace lbsq::fault
