#include "fault/peer_faults.h"

#include <utility>

namespace lbsq::fault {

namespace {

// Stale snapshot: every POI drifted since the peer cached it.
void MakeStale(const PeerFaultConfig& config, Rng* rng,
               core::VerifiedRegion* vr) {
  for (spatial::Poi& poi : vr->pois) {
    poi.pos.x += rng->Uniform(-config.stale_drift, config.stale_drift);
    poi.pos.y += rng->Uniform(-config.stale_drift, config.stale_drift);
  }
}

// Truncation: drop every other POI but keep claiming the full region — the
// completeness violation Lemma 3.1 cannot survive.
void Truncate(core::VerifiedRegion* vr) {
  std::vector<spatial::Poi> kept;
  kept.reserve(vr->pois.size() / 2 + 1);
  for (size_t i = 0; i < vr->pois.size(); i += 2) {
    kept.push_back(vr->pois[i]);
  }
  vr->pois = std::move(kept);
}

// Transposed coordinates: the classic (x, y) / (y, x) serialization bug.
void FlipCoordinates(core::VerifiedRegion* vr) {
  for (spatial::Poi& poi : vr->pois) {
    std::swap(poi.pos.x, poi.pos.y);
  }
}

}  // namespace

PeerFaultStats CorruptPeerData(const PeerFaultConfig& config, Rng* rng,
                               std::vector<core::PeerData>* peers) {
  PeerFaultStats stats;
  if (!config.enabled()) return stats;
  for (core::PeerData& peer : *peers) {
    for (core::VerifiedRegion& vr : peer.regions) {
      // Fixed draw order per region keeps the schedule reproducible even
      // when some probabilities are zero.
      const bool stale = rng->NextBool(config.stale_prob);
      const bool truncate = rng->NextBool(config.truncate_prob);
      const bool flip = rng->NextBool(config.flip_prob);
      if (stale) {
        MakeStale(config, rng, &vr);
        ++stats.regions_stale;
      } else if (truncate && vr.pois.size() > 1) {
        Truncate(&vr);
        ++stats.regions_truncated;
      } else if (flip) {
        FlipCoordinates(&vr);
        ++stats.regions_flipped;
      }
    }
  }
  return stats;
}

}  // namespace lbsq::fault
