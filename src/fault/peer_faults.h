#ifndef LBSQ_FAULT_PEER_FAULTS_H_
#define LBSQ_FAULT_PEER_FAULTS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/verified_region.h"
#include "fault/fault_model.h"

/// \file
/// Peer-cache fault injection: perturbs the `PeerData` a querier gathered,
/// simulating peers whose shared caches are stale, truncated, or corrupted
/// in transit. Injection happens on the querier's copy — the peer's own
/// cache is untouched, exactly like a corruption on the P2P link.

namespace lbsq::fault {

/// Accounting of one injection pass.
struct PeerFaultStats {
  int64_t regions_stale = 0;
  int64_t regions_truncated = 0;
  int64_t regions_flipped = 0;

  int64_t total() const {
    return regions_stale + regions_truncated + regions_flipped;
  }
};

/// Applies `config` to every shared region in `peers`, drawing from `rng`
/// (one Bernoulli draw per fault class per region, in a fixed order, so the
/// outcome is a pure function of the rng stream). At most one fault class
/// fires per region (stale, then truncate, then flip take precedence).
PeerFaultStats CorruptPeerData(const PeerFaultConfig& config, Rng* rng,
                               std::vector<core::PeerData>* peers);

}  // namespace lbsq::fault

#endif  // LBSQ_FAULT_PEER_FAULTS_H_
