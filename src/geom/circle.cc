#include "geom/circle.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace lbsq::geom {

namespace {

// Signed area of the circular sector of radius r from direction a to
// direction b, taking the short way (|angle| < pi). a and b need not be
// normalized.
double SectorArea(Point a, Point b, double r) {
  const double angle = std::atan2(Cross(a, b), Dot(a, b));
  return 0.5 * r * r * angle;
}

// Signed area of disc(origin, r) intersected with triangle(origin, p1, p2).
// The sign follows the orientation of (p1, p2) as seen from the origin.
double CircularTriangleArea(Point p1, Point p2, double r) {
  const double r2 = r * r;
  const bool in1 = Dot(p1, p1) <= r2;
  const bool in2 = Dot(p2, p2) <= r2;
  if (in1 && in2) return 0.5 * Cross(p1, p2);

  // Intersections of the segment p1 + t (p2 - p1), t in [0, 1], with the
  // circle |p| = r: quadratic a t^2 + b t + c = 0.
  const Point d = p2 - p1;
  const double a = Dot(d, d);
  const double b = 2.0 * Dot(p1, d);
  const double c = Dot(p1, p1) - r2;
  double t_lo = 2.0, t_hi = -1.0;  // no roots by default
  if (a > 0.0) {
    const double disc = b * b - 4.0 * a * c;
    if (disc > 0.0) {
      const double sq = std::sqrt(disc);
      t_lo = (-b - sq) / (2.0 * a);
      t_hi = (-b + sq) / (2.0 * a);
    }
  }
  auto at = [&](double t) { return p1 + d * t; };

  if (in1 && !in2) {
    // Leaves the disc at t_hi (the exit root lies in [0, 1]).
    const double t = std::clamp(t_hi, 0.0, 1.0);
    const Point q = at(t);
    return 0.5 * Cross(p1, q) + SectorArea(q, p2, r);
  }
  if (!in1 && in2) {
    const double t = std::clamp(t_lo, 0.0, 1.0);
    const Point q = at(t);
    return SectorArea(p1, q, r) + 0.5 * Cross(q, p2);
  }
  // Both endpoints outside: the chord contributes over the part of the root
  // interval [t_lo, t_hi] that overlaps the segment's parameter range. The
  // clamped-interval rule also covers endpoints sitting numerically ON the
  // circle (classified outside by the r2 test while the quadratic puts a
  // root at t ~ 0 or ~ 1, possibly just out of range): clamping yields the
  // true entry/exit points, and the adjacent sector degenerates to zero. A
  // strict interior test (t_lo > 0 && t_hi < 1) would drop the entire
  // circular-segment area in those corner-exact configurations.
  const double u_lo = std::clamp(t_lo, 0.0, 1.0);
  const double u_hi = std::clamp(t_hi, 0.0, 1.0);
  if (u_hi - u_lo > 1e-12) {
    const Point q1 = at(u_lo);
    const Point q2 = at(u_hi);
    return SectorArea(p1, q1, r) + 0.5 * Cross(q1, q2) + SectorArea(q2, p2, r);
  }
  return SectorArea(p1, p2, r);
}

}  // namespace

double DiscRectIntersectionArea(const Circle& disc, const Rect& rect) {
  if (rect.empty() || disc.radius <= 0.0) return 0.0;
  // Fast paths.
  if (rect.MaxDistance(disc.center) <= disc.radius) return rect.area();
  if (rect.MinDistance(disc.center) >= disc.radius) return 0.0;

  const std::array<Point, 4> corners = {
      Point{rect.x1, rect.y1}, Point{rect.x2, rect.y1},
      Point{rect.x2, rect.y2}, Point{rect.x1, rect.y2}};
  double area = 0.0;
  for (int i = 0; i < 4; ++i) {
    const Point p1 = corners[static_cast<size_t>(i)] - disc.center;
    const Point p2 = corners[static_cast<size_t>((i + 1) % 4)] - disc.center;
    area += CircularTriangleArea(p1, p2, disc.radius);
  }
  // Numerical noise can produce a tiny negative result for near-tangent
  // configurations; clamp to the valid range.
  return std::clamp(area, 0.0, std::min(rect.area(), disc.area()));
}

}  // namespace lbsq::geom
