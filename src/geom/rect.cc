#include "geom/rect.h"

#include <cmath>

namespace lbsq::geom {

double Rect::MinDistance(Point p) const {
  if (empty()) return 0.0;
  const double dx = std::max({x1 - p.x, 0.0, p.x - x2});
  const double dy = std::max({y1 - p.y, 0.0, p.y - y2});
  return std::sqrt(dx * dx + dy * dy);
}

double Rect::MaxDistance(Point p) const {
  if (empty()) return 0.0;
  const double dx = std::max(std::abs(p.x - x1), std::abs(p.x - x2));
  const double dy = std::max(std::abs(p.y - y1), std::abs(p.y - y2));
  return std::sqrt(dx * dx + dy * dy);
}

void SubtractRect(const Rect& a, const Rect& b, std::vector<Rect>* out) {
  if (a.empty()) return;
  const Rect overlap = a.Intersection(b);
  if (overlap.empty() || overlap.area() == 0.0) {
    out->push_back(a);
    return;
  }
  // Slab decomposition: the strip below, the strip above, and the side
  // pieces level with the overlap. Zero-area slivers are dropped.
  auto emit = [out](double x1, double y1, double x2, double y2) {
    if (x2 > x1 && y2 > y1) out->push_back(Rect{x1, y1, x2, y2});
  };
  emit(a.x1, a.y1, a.x2, overlap.y1);          // below
  emit(a.x1, overlap.y2, a.x2, a.y2);          // above
  emit(a.x1, overlap.y1, overlap.x1, overlap.y2);  // left
  emit(overlap.x2, overlap.y1, a.x2, overlap.y2);  // right
}

}  // namespace lbsq::geom
