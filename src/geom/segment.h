#ifndef LBSQ_GEOM_SEGMENT_H_
#define LBSQ_GEOM_SEGMENT_H_

#include "geom/point.h"

/// \file
/// Line segment and point-to-segment distance, used to measure the distance
/// from a query point to the boundary edges of a merged verified region.

namespace lbsq::geom {

/// Closed line segment between two endpoints.
struct Segment {
  Point a;
  Point b;

  /// Segment length.
  double Length() const { return Distance(a, b); }

  /// Minimum Euclidean distance from p to any point of the segment.
  double DistanceTo(Point p) const {
    const Point d = b - a;
    const double len2 = Dot(d, d);
    if (len2 == 0.0) return Distance(p, a);
    double t = Dot(p - a, d) / len2;
    t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
    return Distance(p, a + d * t);
  }
};

}  // namespace lbsq::geom

#endif  // LBSQ_GEOM_SEGMENT_H_
