#ifndef LBSQ_GEOM_RECT_REGION_H_
#define LBSQ_GEOM_RECT_REGION_H_

#include <vector>

#include "geom/circle.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "geom/segment.h"

/// \file
/// `RectRegion` is the workhorse behind the merged verified region MVR of the
/// paper: the union of the peers' verified-region MBRs. Because every input
/// is an axis-aligned rectangle, the union is always a rectilinear polygon
/// (possibly disconnected, possibly with holes), which this class represents
/// exactly as a set of interior-disjoint rectangles. This replaces the
/// general MapOverlay step of the paper with an exact special case.

namespace lbsq::geom {

/// Reusable scratch buffers for RectRegion operations. The geometry kernels
/// (Add, SubtractFrom, BoundarySegments, BoundaryDistance) need transient
/// vectors; the scratch-taking overloads below draw them from here instead
/// of the heap, so a caller that keeps one scratch per thread (e.g. the
/// query engine's QueryWorkspace) runs them allocation-free at steady state.
struct RectRegionScratch {
  std::vector<Rect> remainder;
  std::vector<Rect> next;
  std::vector<Segment> boundary;
  std::vector<std::pair<double, double>> covered;
  std::vector<std::pair<double, double>> open;
};

/// A (closed) region of the plane formed by a union of axis-aligned
/// rectangles, stored as an interior-disjoint decomposition.
class RectRegion {
 public:
  RectRegion() = default;

  /// Region consisting of a single rectangle.
  explicit RectRegion(const Rect& r) { Add(r); }

  /// Unions `r` into the region. Amortized cost O(pieces) per call; the
  /// decomposition only splits along coordinates already present, so no
  /// floating-point arithmetic is introduced (coordinates are copied).
  void Add(const Rect& r);

  /// Add drawing its transient buffers from `*scratch`.
  void Add(const Rect& r, RectRegionScratch* scratch);

  /// Unions every rectangle of `other` into this region.
  void Merge(const RectRegion& other);

  /// Removes all rectangles.
  void Clear() { pieces_.clear(); }

  /// True when the region contains no area.
  bool empty() const { return pieces_.empty(); }

  /// The interior-disjoint decomposition.
  const std::vector<Rect>& pieces() const { return pieces_; }

  /// Exact area of the region.
  double Area() const;

  /// Closed membership test.
  bool Contains(Point p) const;

  /// True when the whole rectangle `r` lies inside the region.
  bool ContainsRect(const Rect& r) const;

  /// True when the whole disc lies inside the region. Exact: the disc is
  /// inside iff its center is inside and its radius does not exceed the
  /// distance to the region boundary.
  bool ContainsDisc(const Circle& disc) const;

  /// The boundary of the region as a set of axis-parallel segments (outer
  /// boundary and hole boundaries alike). Degenerate (zero-length) segments
  /// are omitted.
  std::vector<Segment> BoundarySegments() const;

  /// BoundarySegments appending to `scratch->boundary` (cleared first) and
  /// drawing interval buffers from `*scratch`.
  void BoundarySegments(RectRegionScratch* scratch) const;

  /// Distance from `p` to the nearest boundary point of the region
  /// (the ||q, e_s|| of the paper's NNV algorithm). Returns 0 when `p` is
  /// outside the region or the region is empty.
  double BoundaryDistance(Point p) const;

  /// BoundaryDistance drawing its transient buffers from `*scratch`.
  double BoundaryDistance(Point p, RectRegionScratch* scratch) const;

  /// Exact area of the part of `disc` covered by the region.
  double DiscCoveredArea(const Circle& disc) const;

  /// Exact area of the part of `disc` NOT covered by the region — the
  /// "unverified region" area `u` of Lemma 3.2.
  double DiscUncoveredArea(const Circle& disc) const {
    return disc.area() - DiscCoveredArea(disc);
  }

  /// Computes `r` minus this region as interior-disjoint rectangles appended
  /// to `*out` (the residual query windows w' of the SBWQ algorithm).
  void SubtractFrom(const Rect& r, std::vector<Rect>* out) const;

  /// SubtractFrom drawing its transient buffers from `*scratch`.
  void SubtractFrom(const Rect& r, std::vector<Rect>* out,
                    RectRegionScratch* scratch) const;

  /// The MBR of the whole region (empty rect when the region is empty).
  Rect BoundingBox() const;

 private:
  std::vector<Rect> pieces_;
};

}  // namespace lbsq::geom

#endif  // LBSQ_GEOM_RECT_REGION_H_
