#ifndef LBSQ_GEOM_RECT_H_
#define LBSQ_GEOM_RECT_H_

#include <algorithm>
#include <vector>

#include "geom/point.h"

/// \file
/// Axis-aligned rectangle (the MBR of the spatial-database literature) and the
/// primitive rectangle operations the rest of the library builds on.

namespace lbsq::geom {

/// Closed axis-aligned rectangle [x1, x2] x [y1, y2]. A default-constructed
/// rectangle is "inverted" (empty) and behaves as the identity for Expand().
struct Rect {
  double x1 = 1.0;
  double y1 = 1.0;
  double x2 = 0.0;
  double y2 = 0.0;

  /// Rectangle from two corner coordinates (any order).
  static Rect FromCorners(Point a, Point b) {
    return Rect{std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
                std::max(a.y, b.y)};
  }

  /// Square of side 2*half centered at c (the MBR of a disc of radius half).
  static Rect CenteredSquare(Point c, double half) {
    return Rect{c.x - half, c.y - half, c.x + half, c.y + half};
  }

  /// True when the rectangle contains no points (inverted bounds).
  bool empty() const { return x1 > x2 || y1 > y2; }

  /// Width (0 when empty).
  double width() const { return empty() ? 0.0 : x2 - x1; }
  /// Height (0 when empty).
  double height() const { return empty() ? 0.0 : y2 - y1; }
  /// Area (0 when empty or degenerate).
  double area() const { return width() * height(); }
  /// Center point; meaningless for empty rectangles.
  Point center() const { return {(x1 + x2) / 2.0, (y1 + y2) / 2.0}; }

  /// Closed containment of a point.
  bool Contains(Point p) const {
    return !empty() && p.x >= x1 && p.x <= x2 && p.y >= y1 && p.y <= y2;
  }

  /// True when `other` lies entirely inside this rectangle.
  bool ContainsRect(const Rect& other) const {
    if (other.empty()) return true;
    return !empty() && other.x1 >= x1 && other.x2 <= x2 && other.y1 >= y1 &&
           other.y2 <= y2;
  }

  /// Closed intersection test (touching rectangles intersect).
  bool Intersects(const Rect& other) const {
    return !empty() && !other.empty() && x1 <= other.x2 && other.x1 <= x2 &&
           y1 <= other.y2 && other.y1 <= y2;
  }

  /// Intersection rectangle (empty when disjoint).
  Rect Intersection(const Rect& other) const {
    return Rect{std::max(x1, other.x1), std::max(y1, other.y1),
                std::min(x2, other.x2), std::min(y2, other.y2)};
  }

  /// Smallest rectangle covering both this and `other`.
  Rect Union(const Rect& other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return Rect{std::min(x1, other.x1), std::min(y1, other.y1),
                std::max(x2, other.x2), std::max(y2, other.y2)};
  }

  /// Grows (in place) to cover point p.
  void Expand(Point p) {
    if (empty()) {
      x1 = x2 = p.x;
      y1 = y2 = p.y;
      return;
    }
    x1 = std::min(x1, p.x);
    y1 = std::min(y1, p.y);
    x2 = std::max(x2, p.x);
    y2 = std::max(y2, p.y);
  }

  /// Minimum Euclidean distance from p to the rectangle (0 when inside).
  double MinDistance(Point p) const;

  /// Maximum Euclidean distance from p to any point of the rectangle.
  double MaxDistance(Point p) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.x1 == b.x1 && a.y1 == b.y1 && a.x2 == b.x2 && a.y2 == b.y2;
  }
};

/// Computes `a` minus `b` as up to four disjoint rectangles appended to
/// `*out`. Pieces with zero area are omitted.
void SubtractRect(const Rect& a, const Rect& b, std::vector<Rect>* out);

}  // namespace lbsq::geom

#endif  // LBSQ_GEOM_RECT_H_
