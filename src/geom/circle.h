#ifndef LBSQ_GEOM_CIRCLE_H_
#define LBSQ_GEOM_CIRCLE_H_

#include "geom/point.h"
#include "geom/rect.h"

/// \file
/// Exact disc geometry. The sharing-based NN algorithms need the area of a
/// disc that is *not* covered by a rectilinear region (the "unverified
/// region" of Lemma 3.2); the primitive for that is the exact area of the
/// intersection of a disc with an axis-aligned rectangle.

namespace lbsq::geom {

/// A disc (filled circle).
struct Circle {
  Point center;
  double radius = 0.0;

  /// Disc area.
  double area() const { return M_PI * radius * radius; }

  /// Closed containment of a point.
  bool Contains(Point p) const {
    return DistanceSquared(center, p) <= radius * radius;
  }

  /// True when the whole rectangle lies inside the disc.
  bool ContainsRect(const Rect& r) const {
    return !r.empty() && r.MaxDistance(center) <= radius;
  }

  /// The MBR of the disc (the on-air kNN search range of Zheng et al.).
  Rect Mbr() const { return Rect::CenteredSquare(center, radius); }
};

/// Exact area of the intersection of `disc` with rectangle `rect`.
///
/// Implementation: decompose the (CCW) rectangle into four triangles sharing
/// the disc center as apex and sum the signed disc-triangle intersection
/// areas. Each edge of a rectangle subtends an angle < pi as seen from any
/// point, so the short-way signed sector is always the correct one.
double DiscRectIntersectionArea(const Circle& disc, const Rect& rect);

}  // namespace lbsq::geom

#endif  // LBSQ_GEOM_CIRCLE_H_
