#include "geom/rect_region.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lbsq::geom {

namespace {

// Subtracts the union of `covered` (pairs of [lo, hi]) from [lo, hi] and
// appends the remaining sub-intervals to `*out`.
void SubtractIntervals(double lo, double hi,
                       std::vector<std::pair<double, double>>* covered,
                       std::vector<std::pair<double, double>>* out) {
  std::sort(covered->begin(), covered->end());
  double cursor = lo;
  for (const auto& [c_lo, c_hi] : *covered) {
    if (c_lo > cursor) out->emplace_back(cursor, std::min(c_lo, hi));
    cursor = std::max(cursor, c_hi);
    if (cursor >= hi) break;
  }
  if (cursor < hi) out->emplace_back(cursor, hi);
}

}  // namespace

void RectRegion::Add(const Rect& r) {
  RectRegionScratch scratch;
  Add(r, &scratch);
}

void RectRegion::Add(const Rect& r, RectRegionScratch* scratch) {
  if (r.empty() || r.area() == 0.0) return;
  std::vector<Rect>& remainder = scratch->remainder;
  std::vector<Rect>& next = scratch->next;
  remainder.clear();
  remainder.push_back(r);
  for (const Rect& piece : pieces_) {
    next.clear();
    for (const Rect& part : remainder) SubtractRect(part, piece, &next);
    remainder.swap(next);
    if (remainder.empty()) return;
  }
  pieces_.insert(pieces_.end(), remainder.begin(), remainder.end());
}

void RectRegion::Merge(const RectRegion& other) {
  for (const Rect& r : other.pieces_) Add(r);
}

double RectRegion::Area() const {
  double total = 0.0;
  for (const Rect& r : pieces_) total += r.area();
  return total;
}

bool RectRegion::Contains(Point p) const {
  for (const Rect& r : pieces_) {
    if (r.Contains(p)) return true;
  }
  return false;
}

bool RectRegion::ContainsRect(const Rect& r) const {
  if (r.empty() || r.area() == 0.0) return Contains({r.x1, r.y1});
  std::vector<Rect> residual;
  SubtractFrom(r, &residual);
  return residual.empty();
}

bool RectRegion::ContainsDisc(const Circle& disc) const {
  if (disc.radius <= 0.0) return Contains(disc.center);
  return Contains(disc.center) && BoundaryDistance(disc.center) >= disc.radius;
}

std::vector<Segment> RectRegion::BoundarySegments() const {
  RectRegionScratch scratch;
  BoundarySegments(&scratch);
  return std::move(scratch.boundary);
}

void RectRegion::BoundarySegments(RectRegionScratch* scratch) const {
  std::vector<Segment>& boundary = scratch->boundary;
  std::vector<std::pair<double, double>>& covered = scratch->covered;
  std::vector<std::pair<double, double>>& open = scratch->open;
  boundary.clear();
  for (const Rect& p : pieces_) {
    // Top side (y == p.y2): covered where a piece sits immediately above.
    covered.clear();
    open.clear();
    for (const Rect& q : pieces_) {
      if (q.y1 == p.y2 && q.x1 < p.x2 && q.x2 > p.x1) {
        covered.emplace_back(std::max(q.x1, p.x1), std::min(q.x2, p.x2));
      }
    }
    SubtractIntervals(p.x1, p.x2, &covered, &open);
    for (const auto& [lo, hi] : open) {
      boundary.push_back({{lo, p.y2}, {hi, p.y2}});
    }
    // Bottom side (y == p.y1): covered where a piece sits immediately below.
    covered.clear();
    open.clear();
    for (const Rect& q : pieces_) {
      if (q.y2 == p.y1 && q.x1 < p.x2 && q.x2 > p.x1) {
        covered.emplace_back(std::max(q.x1, p.x1), std::min(q.x2, p.x2));
      }
    }
    SubtractIntervals(p.x1, p.x2, &covered, &open);
    for (const auto& [lo, hi] : open) {
      boundary.push_back({{lo, p.y1}, {hi, p.y1}});
    }
    // Right side (x == p.x2).
    covered.clear();
    open.clear();
    for (const Rect& q : pieces_) {
      if (q.x1 == p.x2 && q.y1 < p.y2 && q.y2 > p.y1) {
        covered.emplace_back(std::max(q.y1, p.y1), std::min(q.y2, p.y2));
      }
    }
    SubtractIntervals(p.y1, p.y2, &covered, &open);
    for (const auto& [lo, hi] : open) {
      boundary.push_back({{p.x2, lo}, {p.x2, hi}});
    }
    // Left side (x == p.x1).
    covered.clear();
    open.clear();
    for (const Rect& q : pieces_) {
      if (q.x2 == p.x1 && q.y1 < p.y2 && q.y2 > p.y1) {
        covered.emplace_back(std::max(q.y1, p.y1), std::min(q.y2, p.y2));
      }
    }
    SubtractIntervals(p.y1, p.y2, &covered, &open);
    for (const auto& [lo, hi] : open) {
      boundary.push_back({{p.x1, lo}, {p.x1, hi}});
    }
  }
}

double RectRegion::BoundaryDistance(Point p) const {
  RectRegionScratch scratch;
  return BoundaryDistance(p, &scratch);
}

double RectRegion::BoundaryDistance(Point p,
                                    RectRegionScratch* scratch) const {
  if (!Contains(p)) return 0.0;
  BoundarySegments(scratch);
  double best = std::numeric_limits<double>::infinity();
  for (const Segment& s : scratch->boundary) {
    best = std::min(best, s.DistanceTo(p));
  }
  return std::isinf(best) ? 0.0 : best;
}

double RectRegion::DiscCoveredArea(const Circle& disc) const {
  double covered = 0.0;
  for (const Rect& r : pieces_) covered += DiscRectIntersectionArea(disc, r);
  // Interior-disjoint pieces cannot cover more than the disc; clamp noise.
  return std::min(covered, disc.area());
}

void RectRegion::SubtractFrom(const Rect& r, std::vector<Rect>* out) const {
  RectRegionScratch scratch;
  SubtractFrom(r, out, &scratch);
}

void RectRegion::SubtractFrom(const Rect& r, std::vector<Rect>* out,
                              RectRegionScratch* scratch) const {
  if (r.empty() || r.area() == 0.0) return;
  std::vector<Rect>& remainder = scratch->remainder;
  std::vector<Rect>& next = scratch->next;
  remainder.clear();
  remainder.push_back(r);
  for (const Rect& piece : pieces_) {
    next.clear();
    for (const Rect& part : remainder) SubtractRect(part, piece, &next);
    remainder.swap(next);
    if (remainder.empty()) return;
  }
  out->insert(out->end(), remainder.begin(), remainder.end());
}

Rect RectRegion::BoundingBox() const {
  Rect box;
  for (const Rect& r : pieces_) box = box.Union(r);
  return box;
}

}  // namespace lbsq::geom
