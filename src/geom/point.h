#ifndef LBSQ_GEOM_POINT_H_
#define LBSQ_GEOM_POINT_H_

#include <cmath>

/// \file
/// Plain 2-D point/vector type. Coordinates are in world units (miles in the
/// simulator); the geometry layer itself is unit-agnostic.

namespace lbsq::geom {

/// A 2-D point, also used as a free vector where convenient.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend Point operator*(double s, Point a) { return a * s; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
};

/// Dot product.
inline double Dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

/// 2-D cross product (z-component of the 3-D cross product).
inline double Cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

/// Squared Euclidean distance; prefer this in comparisons to avoid sqrt.
inline double DistanceSquared(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance ||a, b||.
inline double Distance(Point a, Point b) {
  return std::sqrt(DistanceSquared(a, b));
}

/// Euclidean norm of a vector.
inline double Norm(Point a) { return std::sqrt(a.x * a.x + a.y * a.y); }

}  // namespace lbsq::geom

#endif  // LBSQ_GEOM_POINT_H_
