#ifndef LBSQ_HILBERT_PARTITION_H_
#define LBSQ_HILBERT_PARTITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "hilbert/hilbert.h"

/// \file
/// Contiguous Hilbert-range sharding. A ShardMap cuts the curve domain
/// [0, 4^order) into N contiguous, non-overlapping, domain-covering index
/// ranges — one broadcast shard per range. Because the Hilbert curve
/// preserves locality, a contiguous curve range is a compact blob of world
/// space, so a spatial query touches few shards and the per-shard broadcast
/// channels stay independent.
///
/// Shard assignment is a pure function of the POI's position and the cut
/// points: POIs mapping to the same curve cell always share a shard, and
/// iterating POIs in input order per shard preserves the input order — the
/// 1-shard partition reproduces the unsharded POI list byte-for-byte.

namespace lbsq::hilbert {

/// An immutable partition of the curve domain into contiguous shard ranges.
class ShardMap {
 public:
  /// The identity partition: one shard covering [0, num_cells).
  explicit ShardMap(uint64_t num_cells);

  /// Partition from explicit exclusive upper bounds per shard, ascending,
  /// with `bounds.back() == num_cells` (shard s covers
  /// [bounds[s-1], bounds[s])). Checked.
  ShardMap(uint64_t num_cells, std::vector<uint64_t> bounds);

  int num_shards() const { return static_cast<int>(bounds_.size()); }
  uint64_t num_cells() const { return num_cells_; }

  /// Inclusive curve-index range of `shard`.
  IndexRange RangeOf(int shard) const;

  /// The shard owning curve index `index` (index < num_cells).
  int ShardOfIndex(uint64_t index) const;

  /// Appends to `out` — sorted ascending, deduplicated — every shard whose
  /// range intersects any of `cover` (e.g. HilbertGrid::CoverRect output;
  /// the ranges must be sorted ascending). `out` is cleared first; no
  /// allocation once its capacity covers the shard count.
  void ShardsTouching(std::span<const IndexRange> cover,
                      std::vector<int>* out) const;

  friend bool operator==(const ShardMap& a, const ShardMap& b) {
    return a.num_cells_ == b.num_cells_ && a.bounds_ == b.bounds_;
  }

 private:
  uint64_t num_cells_ = 0;
  /// Ascending exclusive upper bounds, one per shard; back() == num_cells_.
  std::vector<uint64_t> bounds_;
};

/// Builds a load-balanced contiguous partition for `num_shards` shards:
/// sorts the positions' curve indexes and cuts at the rank quantiles
/// i * n / N, snapping every cut to a curve-cell boundary so POIs in the
/// same cell never straddle shards. The ranges always cover the whole
/// domain; a shard may own zero POIs (tiny workloads, large N). With
/// `num_shards == 1` this is the identity partition.
ShardMap PartitionByOccupancy(const HilbertGrid& grid,
                              std::span<const geom::Point> positions,
                              int num_shards);

}  // namespace lbsq::hilbert

#endif  // LBSQ_HILBERT_PARTITION_H_
