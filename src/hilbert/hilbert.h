#ifndef LBSQ_HILBERT_HILBERT_H_
#define LBSQ_HILBERT_HILBERT_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

/// \file
/// Hilbert space-filling curve. The broadcast server linearizes the POI set
/// in Hilbert order (Zheng et al.; Jagadish for the locality analysis), so
/// packets holding spatially close objects are close on the broadcast cycle.

namespace lbsq::hilbert {

/// Cell coordinates on the 2^order x 2^order Hilbert grid.
struct CellXY {
  uint32_t x = 0;
  uint32_t y = 0;

  friend bool operator==(CellXY a, CellXY b) { return a.x == b.x && a.y == b.y; }
};

/// Converts cell coordinates to the Hilbert index (distance along the curve)
/// for a curve of the given order. Requires x, y < 2^order and order <= 31.
uint64_t XyToIndex(int order, CellXY cell);

/// Converts a Hilbert index back to cell coordinates. Requires
/// index < 4^order.
CellXY IndexToXy(int order, uint64_t index);

/// Morton (Z-order) curve: bit interleaving. Provided as the classic
/// alternative linearization so the locality advantage of the Hilbert curve
/// (the reason Zheng et al. chose it for the air index) can be measured
/// rather than asserted. Same domain contracts as the Hilbert functions.
uint64_t MortonXyToIndex(int order, CellXY cell);
CellXY MortonIndexToXy(int order, uint64_t index);

/// Which space-filling curve a grid linearizes with.
enum class CurveKind {
  kHilbert,
  kMorton,
};

/// A half-open interval [lo, hi] of Hilbert indexes (inclusive bounds).
struct IndexRange {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const IndexRange& a, const IndexRange& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Maps a rectangular world domain onto the Hilbert grid and back. All
/// spatial-to-curve conversions in the broadcast stack go through this class.
class HilbertGrid {
 public:
  /// Curve of `order` over `world` (must be non-empty; order in [1, 31]).
  /// `curve` selects the linearization (Hilbert by default).
  HilbertGrid(const geom::Rect& world, int order,
              CurveKind curve = CurveKind::kHilbert);

  /// Curve order.
  int order() const { return order_; }
  /// The linearization in use.
  CurveKind curve() const { return curve_; }
  /// Cells per axis (2^order).
  uint32_t cells_per_axis() const { return cells_; }
  /// Total number of cells (4^order).
  uint64_t num_cells() const {
    return static_cast<uint64_t>(cells_) * cells_;
  }
  /// The world domain.
  const geom::Rect& world() const { return world_; }

  /// Cell containing `p` (points outside the world clamp to the border).
  CellXY CellOf(geom::Point p) const;

  /// Curve index of the cell containing `p`.
  uint64_t IndexOf(geom::Point p) const { return ToIndex(CellOf(p)); }

  /// Curve index of a cell / cell of a curve index under the configured
  /// linearization.
  uint64_t ToIndex(CellXY cell) const;
  CellXY ToXy(uint64_t index) const;

  /// World-space rectangle covered by the cell with the given index.
  geom::Rect CellRect(uint64_t index) const;

  /// World-space rectangle of cell (x, y).
  geom::Rect CellRect(CellXY cell) const;

  /// Minimal sorted list of Hilbert index ranges whose cells together cover
  /// every cell intersecting `query` (adjacent/overlapping ranges merged).
  /// This is the "search-space partition" retrieval set of the on-air window
  /// query; the single [min, max] span of the basic algorithm is the hull of
  /// the returned ranges.
  std::vector<IndexRange> CoverRect(const geom::Rect& query) const;

  /// Allocation-free variant: clears and fills `*out` (same content as the
  /// returning overload), using `*scratch` for the cell-index sort. Both
  /// vectors keep their capacity across calls.
  void CoverRect(const geom::Rect& query, std::vector<uint64_t>* scratch,
                 std::vector<IndexRange>* out) const;

 private:
  geom::Rect world_;
  int order_;
  CurveKind curve_;
  uint32_t cells_;
  double cell_w_;
  double cell_h_;
};

}  // namespace lbsq::hilbert

#endif  // LBSQ_HILBERT_HILBERT_H_
