#include "hilbert/hilbert.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lbsq::hilbert {

namespace {

// Rotates/flips a quadrant so the curve orientation is canonical.
void Rot(uint32_t n, uint32_t* x, uint32_t* y, uint32_t rx, uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    std::swap(*x, *y);
  }
}

}  // namespace

uint64_t XyToIndex(int order, CellXY cell) {
  LBSQ_CHECK(order >= 1 && order <= 31);
  const uint32_t n = 1u << order;
  LBSQ_CHECK(cell.x < n && cell.y < n);
  uint32_t x = cell.x;
  uint32_t y = cell.y;
  uint64_t d = 0;
  for (uint32_t s = n / 2; s > 0; s /= 2) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rot(n, &x, &y, rx, ry);
  }
  return d;
}

CellXY IndexToXy(int order, uint64_t index) {
  LBSQ_CHECK(order >= 1 && order <= 31);
  const uint32_t n = 1u << order;
  LBSQ_CHECK(index < (static_cast<uint64_t>(n) * n));
  uint32_t x = 0;
  uint32_t y = 0;
  uint64_t t = index;
  for (uint32_t s = 1; s < n; s *= 2) {
    const uint32_t rx = static_cast<uint32_t>(1 & (t / 2));
    const uint32_t ry = static_cast<uint32_t>(1 & (t ^ rx));
    Rot(s, &x, &y, rx, ry);
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  return CellXY{x, y};
}

uint64_t MortonXyToIndex(int order, CellXY cell) {
  LBSQ_CHECK(order >= 1 && order <= 31);
  const uint32_t n = 1u << order;
  LBSQ_CHECK(cell.x < n && cell.y < n);
  uint64_t result = 0;
  for (int bit = 0; bit < order; ++bit) {
    result |= static_cast<uint64_t>((cell.x >> bit) & 1u) << (2 * bit);
    result |= static_cast<uint64_t>((cell.y >> bit) & 1u) << (2 * bit + 1);
  }
  return result;
}

CellXY MortonIndexToXy(int order, uint64_t index) {
  LBSQ_CHECK(order >= 1 && order <= 31);
  LBSQ_CHECK(index < (1ull << (2 * order)));
  CellXY cell;
  for (int bit = 0; bit < order; ++bit) {
    cell.x |= static_cast<uint32_t>((index >> (2 * bit)) & 1u) << bit;
    cell.y |= static_cast<uint32_t>((index >> (2 * bit + 1)) & 1u) << bit;
  }
  return cell;
}

HilbertGrid::HilbertGrid(const geom::Rect& world, int order, CurveKind curve)
    : world_(world), order_(order), curve_(curve), cells_(1u << order) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(order >= 1 && order <= 31);
  cell_w_ = world.width() / static_cast<double>(cells_);
  cell_h_ = world.height() / static_cast<double>(cells_);
  LBSQ_CHECK(cell_w_ > 0.0 && cell_h_ > 0.0);
}

CellXY HilbertGrid::CellOf(geom::Point p) const {
  auto clamp_cell = [this](double v) {
    const int64_t c = static_cast<int64_t>(std::floor(v));
    return static_cast<uint32_t>(
        std::clamp<int64_t>(c, 0, static_cast<int64_t>(cells_) - 1));
  };
  return CellXY{clamp_cell((p.x - world_.x1) / cell_w_),
                clamp_cell((p.y - world_.y1) / cell_h_)};
}

uint64_t HilbertGrid::ToIndex(CellXY cell) const {
  return curve_ == CurveKind::kHilbert ? XyToIndex(order_, cell)
                                       : MortonXyToIndex(order_, cell);
}

CellXY HilbertGrid::ToXy(uint64_t index) const {
  return curve_ == CurveKind::kHilbert ? IndexToXy(order_, index)
                                       : MortonIndexToXy(order_, index);
}

geom::Rect HilbertGrid::CellRect(uint64_t index) const {
  return CellRect(ToXy(index));
}

geom::Rect HilbertGrid::CellRect(CellXY cell) const {
  const double x = world_.x1 + cell_w_ * static_cast<double>(cell.x);
  const double y = world_.y1 + cell_h_ * static_cast<double>(cell.y);
  return geom::Rect{x, y, x + cell_w_, y + cell_h_};
}

std::vector<IndexRange> HilbertGrid::CoverRect(const geom::Rect& query) const {
  std::vector<IndexRange> ranges;
  std::vector<uint64_t> scratch;
  CoverRect(query, &scratch, &ranges);
  return ranges;
}

void HilbertGrid::CoverRect(const geom::Rect& query,
                            std::vector<uint64_t>* scratch,
                            std::vector<IndexRange>* out) const {
  LBSQ_CHECK(scratch != nullptr && out != nullptr);
  out->clear();
  const geom::Rect q = query.Intersection(world_);
  if (q.empty()) return;
  const CellXY lo = CellOf({q.x1, q.y1});
  const CellXY hi = CellOf({q.x2, q.y2});
  std::vector<uint64_t>& indexes = *scratch;
  indexes.clear();
  indexes.reserve(static_cast<size_t>(hi.x - lo.x + 1) * (hi.y - lo.y + 1));
  for (uint32_t y = lo.y; y <= hi.y; ++y) {
    for (uint32_t x = lo.x; x <= hi.x; ++x) {
      indexes.push_back(ToIndex(CellXY{x, y}));
    }
  }
  std::sort(indexes.begin(), indexes.end());
  for (uint64_t idx : indexes) {
    if (!out->empty() && out->back().hi + 1 == idx) {
      out->back().hi = idx;
    } else {
      out->push_back(IndexRange{idx, idx});
    }
  }
}

}  // namespace lbsq::hilbert
