#include "hilbert/partition.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace lbsq::hilbert {

ShardMap::ShardMap(uint64_t num_cells) : num_cells_(num_cells) {
  LBSQ_CHECK(num_cells >= 1);
  bounds_.push_back(num_cells);
}

ShardMap::ShardMap(uint64_t num_cells, std::vector<uint64_t> bounds)
    : num_cells_(num_cells), bounds_(std::move(bounds)) {
  LBSQ_CHECK(num_cells >= 1);
  LBSQ_CHECK(!bounds_.empty());
  LBSQ_CHECK(bounds_.back() == num_cells_);
  for (size_t s = 0; s < bounds_.size(); ++s) {
    const uint64_t lo = s == 0 ? 0 : bounds_[s - 1];
    LBSQ_CHECK(bounds_[s] > lo);  // every shard owns at least one cell
  }
}

IndexRange ShardMap::RangeOf(int shard) const {
  LBSQ_CHECK(shard >= 0 && shard < num_shards());
  const size_t s = static_cast<size_t>(shard);
  IndexRange range;
  range.lo = s == 0 ? 0 : bounds_[s - 1];
  range.hi = bounds_[s] - 1;
  return range;
}

int ShardMap::ShardOfIndex(uint64_t index) const {
  LBSQ_CHECK(index < num_cells_);
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), index);
  return static_cast<int>(it - bounds_.begin());
}

void ShardMap::ShardsTouching(std::span<const IndexRange> cover,
                              std::vector<int>* out) const {
  LBSQ_CHECK(out != nullptr);
  out->clear();
  // Both lists are sorted ascending, so one forward sweep suffices; the
  // dedup falls out of only appending shards greater than the last.
  for (const IndexRange& range : cover) {
    const int first = ShardOfIndex(range.lo);
    const int last = ShardOfIndex(range.hi);
    for (int s = first; s <= last; ++s) {
      if (out->empty() || out->back() < s) out->push_back(s);
    }
  }
}

ShardMap PartitionByOccupancy(const HilbertGrid& grid,
                              std::span<const geom::Point> positions,
                              int num_shards) {
  LBSQ_CHECK(num_shards >= 1);
  const uint64_t num_cells = grid.num_cells();
  LBSQ_CHECK(static_cast<uint64_t>(num_shards) <= num_cells);
  if (num_shards == 1) return ShardMap(num_cells);

  std::vector<uint64_t> indexes;
  indexes.reserve(positions.size());
  for (const geom::Point& p : positions) indexes.push_back(grid.IndexOf(p));
  std::sort(indexes.begin(), indexes.end());

  const uint64_t n = indexes.size();
  const uint64_t shards = static_cast<uint64_t>(num_shards);
  std::vector<uint64_t> bounds;
  bounds.reserve(shards);
  uint64_t prev = 0;  // exclusive upper bound of the previous shard
  for (uint64_t s = 1; s < shards; ++s) {
    // Cut at the rank quantile; the POIs at the cut's cell go to the shard
    // above it (the cut is their cell index, an exclusive upper bound for
    // shard s-1), so cell-mates never straddle the cut.
    uint64_t cut = n == 0 ? s * num_cells / shards : indexes[s * n / shards];
    // Keep every shard at least one cell wide: the remaining shards need
    // (shards - s) cells above the cut and the finished ones end at `prev`.
    cut = std::max(cut, prev + 1);
    cut = std::min(cut, num_cells - (shards - s));
    bounds.push_back(cut);
    prev = cut;
  }
  bounds.push_back(num_cells);
  return ShardMap(num_cells, std::move(bounds));
}

}  // namespace lbsq::hilbert
