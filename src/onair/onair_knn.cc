#include "onair/onair_knn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lbsq::onair {

std::vector<int64_t> BucketsForCircle(
    const broadcast::BroadcastSystem& system, const geom::Circle& circle,
    KnnRetrieval retrieval) {
  const std::vector<hilbert::IndexRange> ranges =
      system.grid().CoverRect(circle.Mbr());
  if (ranges.empty()) return {};
  if (retrieval == KnnRetrieval::kSingleSpan) {
    // Basic algorithm: one contiguous span from the first to the last curve
    // position inside the range (the "a to b" segment of the paper's
    // Figure 4).
    return system.index().BucketsForSpan(ranges.front().lo, ranges.back().hi);
  }
  return system.index().BucketsForRanges(ranges);
}

OnAirKnnResult OnAirKnn(const broadcast::BroadcastSystem& system,
                        geom::Point q, int k, int64_t now) {
  LBSQ_CHECK(k >= 1);
  OnAirKnnResult result;

  // Pass 1 (index scan): search circle guaranteed to contain the top k.
  double radius = system.index().KthDistanceUpperBound(q, k);
  if (!std::isfinite(radius)) {
    // Fewer than k objects exist: the search range is the whole world.
    const geom::Rect& world = system.grid().world();
    radius = world.MaxDistance(q);
  }
  result.search_circle = geom::Circle{q, radius};

  // Pass 2 (data retrieval): download the span covering the circle's MBR.
  result.buckets = BucketsForCircle(system, result.search_circle);
  broadcast::IndexReadMode index_mode = broadcast::IndexReadMode::FlatDirectory();
  if (system.tree_index() != nullptr) {
    index_mode = broadcast::IndexReadMode::TreePaths(system.IndexReadBuckets(
        system.grid().CoverRect(result.search_circle.Mbr())));
  }
  result.stats = broadcast::RetrieveBuckets(system.schedule(), now,
                                            result.buckets, index_mode);
  const std::vector<spatial::Poi> received = system.CollectPois(result.buckets);
  result.neighbors = spatial::BruteForceKnn(received, q, k);
  return result;
}

}  // namespace lbsq::onair
