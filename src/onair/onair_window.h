#ifndef LBSQ_ONAIR_ONAIR_WINDOW_H_
#define LBSQ_ONAIR_ONAIR_WINDOW_H_

#include <cstdint>
#include <vector>

#include "broadcast/client_protocol.h"
#include "broadcast/system.h"
#include "geom/rect.h"
#include "spatial/poi.h"

/// \file
/// The on-air window-query baseline (after Zheng, Lee & Lee): find the first
/// point `a` and last point `b` of the query window along the Hilbert curve
/// and download every bucket between them, filtering out objects outside the
/// window. The optional search-space partition refinement downloads only the
/// buckets overlapping the exact Hilbert interval cover of the window.

namespace lbsq::onair {

/// Retrieval strategy for the on-air window query.
enum class WindowRetrieval {
  /// One contiguous span from a to b (the basic algorithm).
  kSingleSpan,
  /// The exact interval cover of the window (the partition refinement the
  /// paper mentions as still insufficient without sharing).
  kPartitionedRanges,
};

/// Result of an on-air window query.
struct OnAirWindowResult {
  /// Exactly the POIs inside the window, sorted by id.
  std::vector<spatial::Poi> pois;
  /// Broadcast cost of the retrieval.
  broadcast::AccessStats stats;
  /// Buckets downloaded.
  std::vector<int64_t> buckets;
};

/// Executes an on-air window query for `window` issued at slot `now`.
OnAirWindowResult OnAirWindow(const broadcast::BroadcastSystem& system,
                              const geom::Rect& window, int64_t now,
                              WindowRetrieval retrieval =
                                  WindowRetrieval::kSingleSpan);

/// The bucket set the chosen retrieval strategy downloads for `window`.
/// Exposed for the sharing-based window query, which applies it to the
/// residual windows w'.
std::vector<int64_t> BucketsForWindow(const broadcast::BroadcastSystem& system,
                                      const geom::Rect& window,
                                      WindowRetrieval retrieval);

}  // namespace lbsq::onair

#endif  // LBSQ_ONAIR_ONAIR_WINDOW_H_
