#include "onair/onair_window.h"

#include <algorithm>

namespace lbsq::onair {

std::vector<int64_t> BucketsForWindow(const broadcast::BroadcastSystem& system,
                                      const geom::Rect& window,
                                      WindowRetrieval retrieval) {
  const std::vector<hilbert::IndexRange> ranges =
      system.grid().CoverRect(window);
  if (ranges.empty()) return {};
  if (retrieval == WindowRetrieval::kSingleSpan) {
    return system.index().BucketsForSpan(ranges.front().lo, ranges.back().hi);
  }
  return system.index().BucketsForRanges(ranges);
}

OnAirWindowResult OnAirWindow(const broadcast::BroadcastSystem& system,
                              const geom::Rect& window, int64_t now,
                              WindowRetrieval retrieval) {
  OnAirWindowResult result;
  result.buckets = BucketsForWindow(system, window, retrieval);
  broadcast::IndexReadMode index_mode = broadcast::IndexReadMode::FlatDirectory();
  if (system.tree_index() != nullptr) {
    index_mode = broadcast::IndexReadMode::TreePaths(
        system.IndexReadBuckets(system.grid().CoverRect(window)));
  }
  result.stats = broadcast::RetrieveBuckets(system.schedule(), now,
                                            result.buckets, index_mode);
  for (const spatial::Poi& poi : system.CollectPois(result.buckets)) {
    if (window.Contains(poi.pos)) result.pois.push_back(poi);
  }
  return result;
}

}  // namespace lbsq::onair
