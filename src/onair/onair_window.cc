#include "onair/onair_window.h"

#include <algorithm>

#include "kernels/kernels.h"
#include "kernels/poi_slab.h"

namespace lbsq::onair {

std::vector<int64_t> BucketsForWindow(const broadcast::BroadcastSystem& system,
                                      const geom::Rect& window,
                                      WindowRetrieval retrieval) {
  const std::vector<hilbert::IndexRange> ranges =
      system.grid().CoverRect(window);
  if (ranges.empty()) return {};
  if (retrieval == WindowRetrieval::kSingleSpan) {
    return system.index().BucketsForSpan(ranges.front().lo, ranges.back().hi);
  }
  return system.index().BucketsForRanges(ranges);
}

OnAirWindowResult OnAirWindow(const broadcast::BroadcastSystem& system,
                              const geom::Rect& window, int64_t now,
                              WindowRetrieval retrieval) {
  OnAirWindowResult result;
  result.buckets = BucketsForWindow(system, window, retrieval);
  broadcast::IndexReadMode index_mode = broadcast::IndexReadMode::FlatDirectory();
  if (system.tree_index() != nullptr) {
    index_mode = broadcast::IndexReadMode::TreePaths(
        system.IndexReadBuckets(system.grid().CoverRect(window)));
  }
  result.stats = broadcast::RetrieveBuckets(system.schedule(), now,
                                            result.buckets, index_mode);
  const std::vector<spatial::Poi> received = system.CollectPois(result.buckets);
  kernels::SlabScratch scratch;
  scratch.slab.Assign(received.data(), received.size());
  uint32_t* idx = scratch.IdxFor(received.size());
  const size_t m = kernels::SelectInWindow(
      scratch.slab.xs(), scratch.slab.ys(), received.size(), window.x1,
      window.y1, window.x2, window.y2, idx);
  result.pois.reserve(m);
  for (size_t j = 0; j < m; ++j) result.pois.push_back(received[idx[j]]);
  return result;
}

}  // namespace lbsq::onair
