#ifndef LBSQ_ONAIR_ONAIR_KNN_H_
#define LBSQ_ONAIR_ONAIR_KNN_H_

#include <cstdint>
#include <vector>

#include "broadcast/client_protocol.h"
#include "broadcast/system.h"
#include "geom/circle.h"
#include "geom/point.h"
#include "spatial/poi.h"

/// \file
/// The on-air kNN baseline (after Zheng, Lee & Lee): scan the air index to
/// derive a search circle guaranteed to contain the k nearest objects, take
/// the MBR of that circle as the search range, and download every data
/// bucket whose Hilbert span falls within the range's span. This is the
/// algorithm the paper's sharing-based approach improves upon.

namespace lbsq::onair {

/// Result of an on-air query.
struct OnAirKnnResult {
  /// The exact k nearest neighbors (ascending distance).
  std::vector<spatial::PoiDistance> neighbors;
  /// Broadcast cost of the retrieval.
  broadcast::AccessStats stats;
  /// The search circle derived from the index.
  geom::Circle search_circle;
  /// Buckets downloaded.
  std::vector<int64_t> buckets;
};

/// Executes an on-air kNN for query point `q` issued at slot `now`.
OnAirKnnResult OnAirKnn(const broadcast::BroadcastSystem& system,
                        geom::Point q, int k, int64_t now);

/// Retrieval strategy for the on-air kNN.
enum class KnnRetrieval {
  /// One contiguous span covering the search MBR (the basic algorithm and
  /// the paper's client).
  kSingleSpan,
  /// The exact interval cover of the search MBR (the search-space partition
  /// refinement applied to kNN).
  kPartitionedRanges,
};

/// Computes the set of buckets the baseline would download for a search
/// circle. Exposed for the sharing-based filter, which starts from the same
/// set.
std::vector<int64_t> BucketsForCircle(
    const broadcast::BroadcastSystem& system, const geom::Circle& circle,
    KnnRetrieval retrieval = KnnRetrieval::kSingleSpan);

}  // namespace lbsq::onair

#endif  // LBSQ_ONAIR_ONAIR_KNN_H_
