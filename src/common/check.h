#ifndef LBSQ_COMMON_CHECK_H_
#define LBSQ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Contract-checking macros. The library does not use C++ exceptions; a failed
/// check indicates a programming error and aborts the process with a message
/// naming the violated condition and its source location.

namespace lbsq::internal {

[[noreturn]] inline void CheckFailed(const char* condition, const char* file, int line) {
  std::fprintf(stderr, "LBSQ_CHECK failed: %s at %s:%d\n", condition, file, line);
  std::abort();
}

}  // namespace lbsq::internal

/// Aborts the process when `condition` evaluates to false. Always enabled,
/// including in release builds: the simulator's correctness accounting relies
/// on these invariants holding.
#define LBSQ_CHECK(condition)                                            \
  do {                                                                   \
    if (!(condition)) {                                                  \
      ::lbsq::internal::CheckFailed(#condition, __FILE__, __LINE__);     \
    }                                                                    \
  } while (false)

/// Convenience comparison checks (report the expression, not the values).
#define LBSQ_CHECK_EQ(a, b) LBSQ_CHECK((a) == (b))
#define LBSQ_CHECK_NE(a, b) LBSQ_CHECK((a) != (b))
#define LBSQ_CHECK_LE(a, b) LBSQ_CHECK((a) <= (b))
#define LBSQ_CHECK_LT(a, b) LBSQ_CHECK((a) < (b))
#define LBSQ_CHECK_GE(a, b) LBSQ_CHECK((a) >= (b))
#define LBSQ_CHECK_GT(a, b) LBSQ_CHECK((a) > (b))

#endif  // LBSQ_COMMON_CHECK_H_
