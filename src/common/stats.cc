#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace lbsq {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t n = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(n);
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  LBSQ_CHECK(lo < hi);
  LBSQ_CHECK(buckets > 0);
  counts_.assign(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  int64_t idx = static_cast<int64_t>(std::floor((x - lo_) / width));
  if (x < lo_) ++underflow_;
  if (x >= hi_) ++overflow_;
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
  sample_min_ = std::min(sample_min_, x);
  sample_max_ = std::max(sample_max_, x);
}

double Histogram::Percentile(double p) const {
  LBSQ_CHECK(p >= 0.0 && p <= 100.0);
  if (total_ == 0) return lo_;
  // The extremes are tracked exactly; buckets cannot do better (and the
  // overflow bucket in particular knows nothing about its tail).
  if (p == 0.0) return sample_min_;
  if (p == 100.0) return sample_max_;
  const double target = p / 100.0 * static_cast<double>(total_);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double cumulative = 0.0;
  double estimate = hi_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(counts_[i]);
      estimate = lo_ + (static_cast<double>(i) + frac) * width;
      break;
    }
    cumulative = next;
  }
  // A bucket only bounds its samples; the exact extremes bound them tighter
  // (a single observation reports itself, and clamped overflow samples never
  // push a percentile past the true maximum).
  return std::clamp(estimate, sample_min_, sample_max_);
}

void Histogram::Merge(const Histogram& other) {
  LBSQ_CHECK(lo_ == other.lo_ && hi_ == other.hi_);
  LBSQ_CHECK(counts_.size() == other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  overflow_ += other.overflow_;
  underflow_ += other.underflow_;
  sample_min_ = std::min(sample_min_, other.sample_min_);
  sample_max_ = std::max(sample_max_, other.sample_max_);
}

std::string Histogram::ToString() const {
  std::string out;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  for (size_t i = 0; i < counts_.size(); ++i) {
    char line[128];
    const int bars =
        static_cast<int>(40.0 * static_cast<double>(counts_[i]) /
                         static_cast<double>(peak));
    std::snprintf(line, sizeof(line), "[%8.3f, %8.3f) %8lld |",
                  lo_ + static_cast<double>(i) * width,
                  lo_ + static_cast<double>(i + 1) * width,
                  static_cast<long long>(counts_[i]));
    out += line;
    out.append(static_cast<size_t>(bars), '#');
    out += '\n';
  }
  return out;
}

}  // namespace lbsq
