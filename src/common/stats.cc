#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace lbsq {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t n = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(n);
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  LBSQ_CHECK(lo < hi);
  LBSQ_CHECK(buckets > 0);
  counts_.assign(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  int64_t idx = static_cast<int64_t>(std::floor((x - lo_) / width));
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::Percentile(double p) const {
  LBSQ_CHECK(p >= 0.0 && p <= 100.0);
  if (total_ == 0) return lo_;
  const double target = p / 100.0 * static_cast<double>(total_);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double cumulative = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::ToString() const {
  std::string out;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  for (size_t i = 0; i < counts_.size(); ++i) {
    char line[128];
    const int bars =
        static_cast<int>(40.0 * static_cast<double>(counts_[i]) /
                         static_cast<double>(peak));
    std::snprintf(line, sizeof(line), "[%8.3f, %8.3f) %8lld |",
                  lo_ + static_cast<double>(i) * width,
                  lo_ + static_cast<double>(i + 1) * width,
                  static_cast<long long>(counts_[i]));
    out += line;
    out.append(static_cast<size_t>(bars), '#');
    out += '\n';
  }
  return out;
}

}  // namespace lbsq
