#ifndef LBSQ_COMMON_RNG_H_
#define LBSQ_COMMON_RNG_H_

#include <cstdint>

/// \file
/// Deterministic pseudo-random number generation. All stochastic behaviour in
/// the library flows through `Rng` so that every simulation run is
/// bit-reproducible from its seed, independent of the standard library's
/// distribution implementations.

namespace lbsq {

/// xoshiro256** generator seeded via SplitMix64. Small, fast, and of far
/// higher quality than `std::minstd_rand`; the state is value-copyable so
/// sub-streams can be forked deterministically with `Fork()`.
class Rng {
 public:
  /// Creates a generator whose entire state is derived from `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  /// Re-initializes the state from `seed` (SplitMix64 expansion).
  void Seed(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling so the
  /// result is exactly uniform.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability `p`.
  bool NextBool(double p);

  /// Exponentially distributed value with rate `lambda` (mean 1/lambda).
  double Exponential(double lambda);

  /// Poisson-distributed count with mean `mean`. Uses Knuth's method for small
  /// means and a normal approximation above 64 (adequate for workload sizing).
  int64_t Poisson(double mean);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double Normal(double mean, double stddev);

  /// Returns an independent generator deterministically derived from this
  /// generator's stream (consumes one output).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Counter-based sub-stream derivation: hashes (seed, stream) into the seed
/// of an independent generator. Unlike Fork(), the result depends only on the
/// two inputs — not on how many draws any generator has made — so stream
/// `i` of seed `s` can be reconstructed from anywhere, in any order, on any
/// thread. This is the basis of the simulator's per-mobile-host RNG streams:
/// host `h` always owns `Rng(DeriveStreamSeed(domain_seed, h))`, which makes
/// its trajectory and query parameters independent of every other host and
/// of the engine's degree of parallelism.
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream);

}  // namespace lbsq

#endif  // LBSQ_COMMON_RNG_H_
