#include "common/thread_pool.h"

#include "common/check.h"

namespace lbsq {

ThreadPool::ThreadPool(int num_threads) {
  LBSQ_CHECK(num_threads >= 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::RunOnAll(const std::function<void(int)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  LBSQ_CHECK(pending_ == 0);
  job_ = &fn;
  pending_ = num_threads();
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(int index) {
  int64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    (*job)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace lbsq
