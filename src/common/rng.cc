#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace lbsq {

namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  LBSQ_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  LBSQ_CHECK(n > 0);
  const uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  LBSQ_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::Exponential(double lambda) {
  LBSQ_CHECK(lambda > 0);
  // 1 - U in (0, 1] avoids log(0).
  return -std::log(1.0 - NextDouble()) / lambda;
}

int64_t Rng::Poisson(double mean) {
  LBSQ_CHECK(mean >= 0);
  if (mean == 0) return 0;
  if (mean < 64) {
    const double limit = std::exp(-mean);
    double product = NextDouble();
    int64_t count = 0;
    while (product > limit) {
      product *= NextDouble();
      ++count;
    }
    return count;
  }
  const double value = Normal(mean, std::sqrt(mean));
  return value < 0 ? 0 : static_cast<int64_t>(value + 0.5);
}

double Rng::Normal(double mean, double stddev) {
  const double u1 = 1.0 - NextDouble();  // (0, 1]
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream) {
  // Two SplitMix64 applications with the stream id injected between them:
  // one multiplicative step alone would map adjacent streams to correlated
  // states, and the xoshiro seeding expands whatever we return here anyway.
  uint64_t x = seed;
  uint64_t h = SplitMix64(x);
  x ^= stream * 0xbf58476d1ce4e5b9ull;
  h ^= SplitMix64(x);
  return h;
}

}  // namespace lbsq
