#ifndef LBSQ_COMMON_STATS_H_
#define LBSQ_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Streaming statistics accumulators used by the simulator's metric
/// collection and by the benchmark harness.

namespace lbsq {

/// Welford-style online accumulator for mean/variance/min/max.
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added.
  int64_t count() const { return count_; }
  /// Arithmetic mean (0 when empty).
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (0 with fewer than two observations).
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest observation (+inf when empty).
  double min() const { return min_; }
  /// Largest observation (-inf when empty).
  double max() const { return max_; }
  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const RunningStat& other);

  /// Bitwise state equality (exact double comparison on every moment) —
  /// the currency of the parallel engine's determinism tests.
  friend bool operator==(const RunningStat& a, const RunningStat& b) {
    return a.count_ == b.count_ && a.mean_ == b.mean_ && a.m2_ == b.m2_ &&
           a.sum_ == b.sum_ && a.min_ == b.min_ && a.max_ == b.max_;
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 1.0 / 0.0 * 1.0;   // +inf without <limits> in the header
  double max_ = -(1.0 / 0.0);      // -inf
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket (the last bucket doubles as the overflow bucket), and
/// the exact sample extremes are tracked alongside so the tail is never
/// silently truncated. Used to report latency distributions.
class Histogram {
 public:
  /// Creates `buckets` equal-width buckets spanning [lo, hi). Requires
  /// lo < hi and buckets > 0.
  Histogram(double lo, double hi, int buckets);

  /// Adds one observation.
  void Add(double x);

  /// Count in bucket `i`.
  int64_t bucket_count(int i) const { return counts_[static_cast<size_t>(i)]; }
  /// Number of buckets.
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  /// Total observations.
  int64_t total() const { return total_; }
  /// Lower / upper bound of the bucketed range.
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// Exact smallest / largest observation (+inf / -inf when empty) — in
  /// particular, `sample_max()` reports the true tail even when samples
  /// landed in the overflow bucket.
  double sample_min() const { return sample_min_; }
  double sample_max() const { return sample_max_; }
  /// Observations at or above `hi` (they were clamped into the last bucket).
  int64_t overflow_count() const { return overflow_; }
  /// Observations below `lo` (clamped into the first bucket).
  int64_t underflow_count() const { return underflow_; }

  /// Approximate p-th percentile (p in [0, 100]) by linear interpolation
  /// within the containing bucket, clamped to the exact sample extremes (so
  /// a single sample reports itself, and no percentile exceeds the true
  /// max). p = 0 and p = 100 report the exact sample min / max — in
  /// particular the true overflow tail. Returns `lo` when empty.
  double Percentile(double p) const;

  /// Headline distribution summary.
  double P50() const { return Percentile(50.0); }
  double P95() const { return Percentile(95.0); }
  double P99() const { return Percentile(99.0); }

  /// Folds another histogram with identical geometry (same lo/hi/buckets)
  /// into this one. Bucket counts are integers, so merging is exact and
  /// order-independent.
  void Merge(const Histogram& other);

  /// Bitwise state equality.
  friend bool operator==(const Histogram& a, const Histogram& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_ && a.counts_ == b.counts_ &&
           a.total_ == b.total_ && a.overflow_ == b.overflow_ &&
           a.underflow_ == b.underflow_ && a.sample_min_ == b.sample_min_ &&
           a.sample_max_ == b.sample_max_;
  }

  /// Multi-line ASCII rendering for logs.
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  int64_t overflow_ = 0;
  int64_t underflow_ = 0;
  double sample_min_ = 1.0 / 0.0 * 1.0;  // +inf
  double sample_max_ = -(1.0 / 0.0);     // -inf
};

}  // namespace lbsq

#endif  // LBSQ_COMMON_STATS_H_
