#include "common/observability.h"

#include <cstdio>

namespace lbsq::obs {

std::string FormatDouble(double x) {
  char buffer[40];
  // Shortest representation that round-trips: try increasing precision and
  // keep the first that parses back to the same bits.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, x);
    double parsed = 0.0;
    std::sscanf(buffer, "%lf", &parsed);
    if (parsed == x) break;
  }
  return buffer;
}

void TraceSink::Append(const TraceRecorder& recorder) {
  char buffer[192];
  for (const TraceEvent& event : recorder.events()) {
    if (event.kind == TraceEvent::Kind::kSpan) {
      std::snprintf(buffer, sizeof(buffer),
                    "{\"q\":%lld,\"host\":%lld,\"type\":\"%s\","
                    "\"kind\":\"span\",\"name\":\"%s\","
                    "\"begin\":%lld,\"end\":%lld}\n",
                    static_cast<long long>(recorder.query_id()),
                    static_cast<long long>(recorder.host()),
                    recorder.query_type(), event.name,
                    static_cast<long long>(event.begin),
                    static_cast<long long>(event.end));
      jsonl_ += buffer;
    } else {
      std::snprintf(buffer, sizeof(buffer),
                    "{\"q\":%lld,\"host\":%lld,\"type\":\"%s\","
                    "\"kind\":\"counter\",\"name\":\"%s\",\"value\":%s}\n",
                    static_cast<long long>(recorder.query_id()),
                    static_cast<long long>(recorder.host()),
                    recorder.query_type(), event.name,
                    FormatDouble(event.value).c_str());
      jsonl_ += buffer;
    }
    ++event_count_;
  }
}

bool TraceSink::WriteFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const size_t written = std::fwrite(jsonl_.data(), 1, jsonl_.size(), file);
  const bool closed = std::fclose(file) == 0;
  return written == jsonl_.size() && closed;
}

}  // namespace lbsq::obs
