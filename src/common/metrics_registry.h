#ifndef LBSQ_COMMON_METRICS_REGISTRY_H_
#define LBSQ_COMMON_METRICS_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/stats.h"

/// \file
/// A named collection of histograms and counters, populated during a run and
/// rendered by the JSON / CSV exporters. Registration order is preserved and
/// determines export order, so export output is deterministic for a
/// deterministic run. Observations into unregistered names are dropped —
/// the driver chooses which distributions to pay for (`--hist=...`), and the
/// instrumented code does not need to know the choice.
///
/// Not thread-safe by design: the simulation engines fold observations on a
/// single thread in global event order (the same contract as SimMetrics).

namespace lbsq {

class MetricsRegistry {
 public:
  /// Registers (or re-fetches) a histogram. Re-registering an existing name
  /// returns the existing histogram (its geometry wins). The pointer is
  /// stable for the registry's lifetime.
  Histogram* AddHistogram(const std::string& name, double lo, double hi,
                          int buckets);

  /// The histogram registered under `name`, or null.
  Histogram* FindHistogram(const std::string& name);
  const Histogram* FindHistogram(const std::string& name) const;

  /// Adds an observation to the named histogram; silently dropped when the
  /// name is not registered.
  void Observe(const std::string& name, double x);

  /// Increments the named counter, creating it at zero on first use.
  void IncrementCounter(const std::string& name, int64_t delta = 1);

  /// Current value of the named counter (0 when absent).
  int64_t counter(const std::string& name) const;

  /// Registered histogram names, in registration order.
  std::vector<std::string> HistogramNames() const;

  /// Renders every histogram (geometry, bucket counts, count/min/max and
  /// p50/p95/p99) and counter as one JSON object.
  std::string ExportJson() const;

  /// Renders the same content as CSV: one `histogram_bucket` row per bucket,
  /// one `histogram_summary` row per histogram, one `counter` row each.
  std::string ExportCsv() const;

 private:
  struct NamedHistogram {
    std::string name;
    Histogram histogram;
  };
  struct NamedCounter {
    std::string name;
    int64_t value = 0;
  };

  // Insertion-ordered; lookups are linear scans over a handful of entries
  // (the per-observation cost is a few string compares). Deques keep the
  // pointers AddHistogram hands out stable across later registrations.
  std::deque<NamedHistogram> histograms_;
  std::deque<NamedCounter> counters_;
};

}  // namespace lbsq

#endif  // LBSQ_COMMON_METRICS_REGISTRY_H_
