#ifndef LBSQ_COMMON_THREAD_POOL_H_
#define LBSQ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// A minimal fixed-size worker pool for the parallel simulation engine. The
/// pool runs one job function on every worker and blocks the caller until
/// all workers have returned — a fork/join barrier per call, which is the
/// only coordination pattern the epoch-based engine needs. Workers persist
/// across calls so per-epoch dispatch costs two condition-variable round
/// trips, not thread creation.

namespace lbsq {

/// Fixed crew of worker threads executing fork/join jobs.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1). The workers idle until RunOnAll().
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Must not race with a RunOnAll() in flight.
  ~ThreadPool();

  /// Number of workers.
  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Invokes `fn(i)` once on worker `i` for every i in [0, num_threads())
  /// and returns when every invocation has finished. Not reentrant.
  void RunOnAll(const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int index);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;  // valid while pending_ > 0
  int64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace lbsq

#endif  // LBSQ_COMMON_THREAD_POOL_H_
