#ifndef LBSQ_COMMON_OBSERVABILITY_H_
#define LBSQ_COMMON_OBSERVABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Query-level tracing. A `TraceRecorder` collects span and counter events
/// for one query execution; a `TraceSink` folds recorders — in global event
/// order — into a JSON-lines document. All recording is keyed to *simulated*
/// time (broadcast slots), never wall-clock time, so trace output is a pure
/// function of the configuration and seed: the parallel simulation engine
/// produces byte-identical trace files at any thread count.
///
/// Threading model: a recorder is thread-private (each worker records into
/// the recorder of the event it owns; no locks, no sharing), and the sink is
/// only ever appended to by the fold thread. Recording costs one branch when
/// no recorder is attached, and compiles out entirely under
/// `-DLBSQ_DISABLE_OBSERVABILITY=ON` (the `LBSQ_NO_OBSERVABILITY` macro),
/// leaving the instrumented hot paths bit-identical to uninstrumented code.

namespace lbsq::obs {

/// True when tracing support is compiled in. Under LBSQ_NO_OBSERVABILITY the
/// recording methods are empty inline stubs and every recorder stays empty.
inline constexpr bool kObservabilityCompiledIn =
#ifdef LBSQ_NO_OBSERVABILITY
    false;
#else
    true;
#endif

/// One recorded event. Spans carry a [begin, end) interval in broadcast
/// slots; counters carry a value. Names are string literals with static
/// storage duration (the recorder stores the pointer, not a copy).
struct TraceEvent {
  enum class Kind { kSpan, kCounter };
  Kind kind = Kind::kCounter;
  const char* name = "";
  /// Span interval in slots (kSpan only).
  int64_t begin = 0;
  int64_t end = 0;
  /// Counter value (kCounter only).
  double value = 0.0;

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.kind == b.kind && std::string(a.name) == b.name &&
           a.begin == b.begin && a.end == b.end && a.value == b.value;
  }
};

/// Per-query event collector. Create (or Reset) one per query execution and
/// pass it down the query path; a null recorder pointer disables recording
/// at every instrumentation site.
class TraceRecorder {
 public:
  TraceRecorder() = default;

  /// Rebinds the recorder to a new query and discards prior events.
  /// `query_type` must be a string literal ("knn" / "window").
  void Reset(int64_t query_id, int64_t host, const char* query_type) {
    query_id_ = query_id;
    host_ = host;
    query_type_ = query_type;
    events_.clear();
  }

  /// Records a span covering slots [begin, end).
  void Span(const char* name, int64_t begin, int64_t end) {
#ifdef LBSQ_NO_OBSERVABILITY
    (void)name;
    (void)begin;
    (void)end;
#else
    events_.push_back(
        TraceEvent{TraceEvent::Kind::kSpan, name, begin, end, 0.0});
#endif
  }

  /// Records a counter observation.
  void Counter(const char* name, double value) {
#ifdef LBSQ_NO_OBSERVABILITY
    (void)name;
    (void)value;
#else
    events_.push_back(
        TraceEvent{TraceEvent::Kind::kCounter, name, 0, 0, value});
#endif
  }

  int64_t query_id() const { return query_id_; }
  int64_t host() const { return host_; }
  const char* query_type() const { return query_type_; }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  int64_t query_id_ = 0;
  int64_t host_ = 0;
  const char* query_type_ = "";
  std::vector<TraceEvent> events_;
};

/// Run-level trace accumulator. Appending a recorder serializes its events
/// as JSON lines, so the document's bytes are determined purely by the
/// append order — the fold contract the simulation engines uphold.
class TraceSink {
 public:
  /// Serializes and appends every event of `recorder`.
  void Append(const TraceRecorder& recorder);

  /// Total events appended so far.
  int64_t event_count() const { return event_count_; }
  /// The JSON-lines document built so far (one event per line).
  const std::string& jsonl() const { return jsonl_; }

  /// Writes the document to `path`; false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::string jsonl_;
  int64_t event_count_ = 0;
};

/// Formats a double so the text round-trips exactly (shortest form first,
/// widening to 17 significant digits when needed). Shared by the trace and
/// metrics exporters so equal values always render as equal bytes.
std::string FormatDouble(double x);

}  // namespace lbsq::obs

#endif  // LBSQ_COMMON_OBSERVABILITY_H_
