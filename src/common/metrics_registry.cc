#include "common/metrics_registry.h"

#include <cmath>
#include <cstdio>

#include "common/observability.h"

namespace lbsq {

namespace {

// Renders a double as a JSON value (JSON has no inf/nan; an empty
// histogram's +/-inf extremes render as null).
std::string JsonNumber(double x) {
  if (!std::isfinite(x)) return "null";
  return obs::FormatDouble(x);
}

}  // namespace

Histogram* MetricsRegistry::AddHistogram(const std::string& name, double lo,
                                         double hi, int buckets) {
  if (Histogram* existing = FindHistogram(name)) return existing;
  histograms_.push_back(NamedHistogram{name, Histogram(lo, hi, buckets)});
  return &histograms_.back().histogram;
}

Histogram* MetricsRegistry::FindHistogram(const std::string& name) {
  for (NamedHistogram& entry : histograms_) {
    if (entry.name == name) return &entry.histogram;
  }
  return nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  for (const NamedHistogram& entry : histograms_) {
    if (entry.name == name) return &entry.histogram;
  }
  return nullptr;
}

void MetricsRegistry::Observe(const std::string& name, double x) {
  if (Histogram* histogram = FindHistogram(name)) histogram->Add(x);
}

void MetricsRegistry::IncrementCounter(const std::string& name,
                                       int64_t delta) {
  for (NamedCounter& entry : counters_) {
    if (entry.name == name) {
      entry.value += delta;
      return;
    }
  }
  counters_.push_back(NamedCounter{name, delta});
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  for (const NamedCounter& entry : counters_) {
    if (entry.name == name) return entry.value;
  }
  return 0;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const NamedHistogram& entry : histograms_) names.push_back(entry.name);
  return names;
}

std::string MetricsRegistry::ExportJson() const {
  std::string out = "{\n  \"histograms\": {";
  bool first = true;
  for (const NamedHistogram& entry : histograms_) {
    const Histogram& h = entry.histogram;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + entry.name + "\": {";
    out += "\"lo\": " + JsonNumber(h.lo());
    out += ", \"hi\": " + JsonNumber(h.hi());
    out += ", \"count\": " + std::to_string(h.total());
    out += ", \"underflow\": " + std::to_string(h.underflow_count());
    out += ", \"overflow\": " + std::to_string(h.overflow_count());
    out += ", \"min\": " + JsonNumber(h.sample_min());
    out += ", \"max\": " + JsonNumber(h.sample_max());
    out += ", \"p50\": " + JsonNumber(h.P50());
    out += ", \"p95\": " + JsonNumber(h.P95());
    out += ", \"p99\": " + JsonNumber(h.P99());
    out += ", \"buckets\": [";
    for (int i = 0; i < h.num_buckets(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.bucket_count(i));
    }
    out += "]}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"counters\": {";
  first = true;
  for (const NamedCounter& entry : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + entry.name + "\": " + std::to_string(entry.value);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsRegistry::ExportCsv() const {
  std::string out = "row,name,field1,field2,field3\n";
  char line[160];
  for (const NamedHistogram& entry : histograms_) {
    const Histogram& h = entry.histogram;
    const double width =
        (h.hi() - h.lo()) / static_cast<double>(h.num_buckets());
    for (int i = 0; i < h.num_buckets(); ++i) {
      std::snprintf(line, sizeof(line), "histogram_bucket,%s,%s,%s,%lld\n",
                    entry.name.c_str(),
                    obs::FormatDouble(h.lo() + width * i).c_str(),
                    obs::FormatDouble(h.lo() + width * (i + 1)).c_str(),
                    static_cast<long long>(h.bucket_count(i)));
      out += line;
    }
    std::snprintf(line, sizeof(line), "histogram_summary,%s,%lld,%s,%s\n",
                  entry.name.c_str(), static_cast<long long>(h.total()),
                  obs::FormatDouble(h.P50()).c_str(),
                  obs::FormatDouble(h.P99()).c_str());
    out += line;
  }
  for (const NamedCounter& entry : counters_) {
    std::snprintf(line, sizeof(line), "counter,%s,%lld,,\n",
                  entry.name.c_str(), static_cast<long long>(entry.value));
    out += line;
  }
  return out;
}

}  // namespace lbsq
