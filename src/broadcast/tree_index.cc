#include "broadcast/tree_index.h"

#include <algorithm>

#include "common/check.h"

namespace lbsq::broadcast {

TreeAirIndex::TreeAirIndex(const std::vector<AirIndex::Entry>& entries,
                           int entries_per_bucket) {
  LBSQ_CHECK(entries_per_bucket >= 2);
  for (size_t i = 1; i < entries.size(); ++i) {
    LBSQ_CHECK(entries[i - 1].hilbert <= entries[i].hilbert);
  }

  // Build bottom-up in level order (leaves first), then reverse into BFS
  // (root-first) order so a sequentially broadcast segment streams parents
  // before children.
  struct Staged {
    Node node;
    // Indexes into the previous staged level (for internal nodes).
    std::vector<int64_t> staged_children;
  };
  std::vector<std::vector<Staged>> levels;

  // Leaf level.
  std::vector<Staged> leaves;
  const size_t per = static_cast<size_t>(entries_per_bucket);
  if (entries.empty()) {
    Staged empty;
    empty.node.leaf = true;
    empty.node.lo = 0;
    empty.node.hi = 0;
    leaves.push_back(std::move(empty));
  }
  for (size_t start = 0; start < entries.size(); start += per) {
    const size_t end = std::min(start + per, entries.size());
    Staged staged;
    staged.node.leaf = true;
    staged.node.lo = entries[start].hilbert;
    staged.node.hi = entries[end - 1].hilbert;
    for (size_t i = start; i < end; ++i) {
      staged.node.keys.push_back(entries[i].hilbert);
    }
    leaves.push_back(std::move(staged));
  }
  levels.push_back(std::move(leaves));

  // Internal levels until a single root remains.
  while (levels.back().size() > 1) {
    const std::vector<Staged>& below = levels.back();
    std::vector<Staged> level;
    for (size_t start = 0; start < below.size(); start += per) {
      const size_t end = std::min(start + per, below.size());
      Staged staged;
      staged.node.leaf = false;
      staged.node.lo = below[start].node.lo;
      staged.node.hi = below[end - 1].node.hi;
      for (size_t i = start; i < end; ++i) {
        staged.node.keys.push_back(below[i].node.lo);
        staged.staged_children.push_back(static_cast<int64_t>(i));
      }
      level.push_back(std::move(staged));
    }
    levels.push_back(std::move(level));
  }
  height_ = static_cast<int>(levels.size());

  // Emit BFS: levels from root (last built) down to leaves; record each
  // staged node's final offset so parents can point at children.
  std::vector<std::vector<int64_t>> offsets(levels.size());
  int64_t next_offset = 0;
  for (size_t level = levels.size(); level-- > 0;) {
    offsets[level].resize(levels[level].size());
    for (size_t i = 0; i < levels[level].size(); ++i) {
      offsets[level][i] = next_offset++;
    }
  }
  nodes_.resize(static_cast<size_t>(next_offset));
  for (size_t level = 0; level < levels.size(); ++level) {
    for (size_t i = 0; i < levels[level].size(); ++i) {
      Node node = std::move(levels[level][i].node);
      for (int64_t staged_child : levels[level][i].staged_children) {
        node.children.push_back(
            offsets[level - 1][static_cast<size_t>(staged_child)]);
      }
      nodes_[static_cast<size_t>(offsets[level][i])] = std::move(node);
    }
  }
  root_ = 0;
  LBSQ_CHECK_EQ(offsets.back()[0], 0);
}

std::vector<int64_t> TreeAirIndex::IndexBucketsForSpan(uint64_t lo,
                                                       uint64_t hi) const {
  LBSQ_CHECK(lo <= hi);
  std::vector<int64_t> visited;
  std::vector<int64_t> stack = {root_};
  while (!stack.empty()) {
    const int64_t offset = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(offset)];
    if (node.hi < lo || node.lo > hi) continue;
    visited.push_back(offset);
    if (!node.leaf) {
      for (size_t i = 0; i < node.children.size(); ++i) {
        // Child i covers [keys[i], next key); prune without descending.
        const uint64_t child_lo = node.keys[i];
        const uint64_t child_hi =
            nodes_[static_cast<size_t>(node.children[i])].hi;
        if (child_hi < lo || child_lo > hi) continue;
        stack.push_back(node.children[i]);
      }
    }
  }
  std::sort(visited.begin(), visited.end());
  return visited;
}

int64_t TreeAirIndex::ReadCostForRanges(
    const std::vector<hilbert::IndexRange>& ranges) const {
  std::vector<int64_t> all;
  for (const hilbert::IndexRange& range : ranges) {
    const std::vector<int64_t> part = IndexBucketsForSpan(range.lo, range.hi);
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  // The root is always read (it is the entry point), even for a miss.
  return std::max<int64_t>(1, static_cast<int64_t>(all.size()));
}

}  // namespace lbsq::broadcast
