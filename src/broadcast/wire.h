#ifndef LBSQ_BROADCAST_WIRE_H_
#define LBSQ_BROADCAST_WIRE_H_

#include <cstdint>
#include <vector>

#include "broadcast/air_index.h"
#include "broadcast/packet.h"

/// \file
/// Wire format for the broadcast channel: the byte-level encoding of data
/// buckets and air-index segments a real transmitter would emit. The
/// simulator's slot-based cost model abstracts packets as unit slots; this
/// module grounds that abstraction (and the byte budget per slot) and gives
/// downstream users a concrete, versioned serialization.
///
/// Layout (little-endian):
///   bucket  := magic 'LBQB' | u8 version | [varint epoch] | varint id
///              | varint hilbert_lo | varint hilbert_hi
///              | f64 mbr.x1 y1 x2 y2 | varint poi_count
///              | poi_count * (varint id | f64 x | f64 y)
///   segment := magic 'LBQI' | u8 version | [varint epoch]
///              | varint entry_count
///              | entry_count * (varint hilbert | varint bucket)
/// Varints are LEB128 (7 bits per byte). Decoders are bounds-checked and
/// reject bad magic, bad version, truncation, and trailing garbage.
///
/// Versioning: v1 frames carry no epoch field and decode as epoch 0 (the
/// initial static world); v2 frames carry the epoch varint right after the
/// version byte. Encoders emit v1 whenever the epoch is 0 — so a static
/// world produces bytes identical to the pre-dynamic format — and decoders
/// reject a v2 frame whose epoch is 0 (non-canonical: it must be v1),
/// keeping encode/decode a bijection.
///
/// Framed variants append a CRC-32 trailer (4 bytes, little-endian) so the
/// receiver can detect corruption in transit:
///   frame := payload | u32le crc32(payload)
/// A framed decode first verifies the trailer, then parses the payload; any
/// bit flip anywhere in the frame is rejected (up to CRC collision odds).

namespace lbsq::broadcast {

/// Legacy (epoch-free) wire version; still emitted for epoch-0 frames.
inline constexpr uint8_t kWireVersion = 1;
/// Epoch-carrying wire version (see the versioning note above).
inline constexpr uint8_t kWireVersionEpoch = 2;

/// Append-only byte buffer with the primitive encoders.
class ByteWriter {
 public:
  /// The bytes written so far.
  const std::vector<uint8_t>& bytes() const { return buffer_; }

  void PutU8(uint8_t value) { buffer_.push_back(value); }
  /// LEB128 unsigned varint.
  void PutVarint(uint64_t value);
  /// IEEE-754 binary64, little-endian byte order.
  void PutDouble(double value);
  /// Raw bytes.
  void PutBytes(const uint8_t* data, size_t size);

 private:
  std::vector<uint8_t> buffer_;
};

/// Bounds-checked sequential reader. Any failed read latches the error flag
/// and makes all further reads return zero values.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  /// True while no read has failed.
  bool ok() const { return ok_; }
  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - position_; }

  uint8_t GetU8();
  uint64_t GetVarint();
  double GetDouble();

 private:
  const uint8_t* data_;
  size_t size_;
  size_t position_ = 0;
  bool ok_ = true;
};

/// Serializes one data bucket (v1 when bucket.epoch == 0, v2 otherwise).
std::vector<uint8_t> EncodeBucket(const DataBucket& bucket);

/// Parses a data bucket; returns false (leaving *out unspecified) on any
/// malformed input. The entire buffer must be consumed. Accepts v1 (legacy,
/// out->epoch = 0) and v2 frames.
bool DecodeBucket(const uint8_t* data, size_t size, DataBucket* out);

/// Serializes an index segment (a slice of the directory) for epoch 0.
std::vector<uint8_t> EncodeIndexSegment(
    const std::vector<AirIndex::Entry>& entries);

/// Epoch-tagged index segment (v1 when epoch == 0, v2 otherwise).
std::vector<uint8_t> EncodeIndexSegment(
    const std::vector<AirIndex::Entry>& entries, uint64_t epoch);

/// Parses an index segment; same error contract as DecodeBucket.
bool DecodeIndexSegment(const uint8_t* data, size_t size,
                        std::vector<AirIndex::Entry>* out);

/// As above, also reporting the segment's epoch (0 for legacy v1 frames).
bool DecodeIndexSegment(const uint8_t* data, size_t size,
                        std::vector<AirIndex::Entry>* out, uint64_t* epoch);

/// Wire size of a bucket in bytes (without encoding it).
int64_t BucketWireSize(const DataBucket& bucket);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320, init/final 0xFFFFFFFF)
/// over `size` bytes. Crc32(nullptr, 0) == 0.
uint32_t Crc32(const uint8_t* data, size_t size);

/// Appends the little-endian CRC-32 of the current buffer contents.
void AppendCrc32(std::vector<uint8_t>* buffer);

/// True when `data` ends with a CRC-32 trailer matching the bytes before it.
/// Requires size >= 4; the payload is data[0 .. size-4).
bool VerifyCrc32(const uint8_t* data, size_t size);

/// EncodeBucket plus the CRC-32 trailer.
std::vector<uint8_t> EncodeBucketFramed(const DataBucket& bucket);

/// Verifies the trailer, then parses the payload. Returns false on a CRC
/// mismatch (corruption) or any malformed payload.
bool DecodeBucketFramed(const uint8_t* data, size_t size, DataBucket* out);

/// EncodeIndexSegment plus the CRC-32 trailer.
std::vector<uint8_t> EncodeIndexSegmentFramed(
    const std::vector<AirIndex::Entry>& entries);

/// Epoch-tagged framed index segment.
std::vector<uint8_t> EncodeIndexSegmentFramed(
    const std::vector<AirIndex::Entry>& entries, uint64_t epoch);

/// Framed counterpart of DecodeIndexSegment; same error contract as
/// DecodeBucketFramed.
bool DecodeIndexSegmentFramed(const uint8_t* data, size_t size,
                              std::vector<AirIndex::Entry>* out);

/// As above, also reporting the segment's epoch (0 for legacy v1 frames).
bool DecodeIndexSegmentFramed(const uint8_t* data, size_t size,
                              std::vector<AirIndex::Entry>* out,
                              uint64_t* epoch);

}  // namespace lbsq::broadcast

#endif  // LBSQ_BROADCAST_WIRE_H_
