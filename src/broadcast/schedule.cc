#include "broadcast/schedule.h"

#include "common/check.h"

namespace lbsq::broadcast {

BroadcastSchedule::BroadcastSchedule(int64_t num_data_buckets,
                                     int64_t index_buckets, int m,
                                     uint64_t epoch)
    : num_data_(num_data_buckets),
      index_len_(index_buckets),
      m_(m),
      epoch_(epoch) {
  LBSQ_CHECK(num_data_ >= 1);
  LBSQ_CHECK(index_len_ >= 1);
  LBSQ_CHECK(m_ >= 1);
  LBSQ_CHECK(static_cast<int64_t>(m_) <= num_data_);
  cycle_ = static_cast<int64_t>(m_) * index_len_ + num_data_;
}

int64_t BroadcastSchedule::ChunkBegin(int64_t j) const {
  return j * num_data_ / m_;
}

int64_t BroadcastSchedule::SegmentStart(int64_t j) const {
  return j * index_len_ + ChunkBegin(j);
}

BroadcastSchedule::Slot BroadcastSchedule::SlotAt(int64_t t) const {
  LBSQ_CHECK(t >= 0);
  const int64_t offset = t % cycle_;
  // Find the segment j this offset falls into: largest j with
  // SegmentStart(j) <= offset.
  int64_t lo = 0, hi = m_ - 1;
  while (lo < hi) {
    const int64_t mid = (lo + hi + 1) / 2;
    if (SegmentStart(mid) <= offset) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const int64_t within = offset - SegmentStart(lo);
  if (within < index_len_) {
    return Slot{Slot::Kind::kIndex, within};
  }
  return Slot{Slot::Kind::kData, ChunkBegin(lo) + (within - index_len_)};
}

int64_t BroadcastSchedule::NextIndexSegmentStart(int64_t t) const {
  LBSQ_CHECK(t >= 0);
  const int64_t cycle_base = t / cycle_ * cycle_;
  const int64_t offset = t - cycle_base;
  for (int64_t j = 0; j < m_; ++j) {
    if (SegmentStart(j) >= offset) return cycle_base + SegmentStart(j);
  }
  return cycle_base + cycle_;  // segment 0 of the next cycle
}

int64_t BroadcastSchedule::NextBucketSlot(int64_t t, int64_t bucket) const {
  LBSQ_CHECK(t >= 0);
  LBSQ_CHECK(bucket >= 0 && bucket < num_data_);
  // Chunk containing the bucket: largest j with ChunkBegin(j) <= bucket.
  int64_t lo = 0, hi = m_ - 1;
  while (lo < hi) {
    const int64_t mid = (lo + hi + 1) / 2;
    if (ChunkBegin(mid) <= bucket) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const int64_t slot_in_cycle =
      SegmentStart(lo) + index_len_ + (bucket - ChunkBegin(lo));
  const int64_t cycle_base = t / cycle_ * cycle_;
  int64_t candidate = cycle_base + slot_in_cycle;
  if (candidate < t) candidate += cycle_;
  return candidate;
}

}  // namespace lbsq::broadcast
