#ifndef LBSQ_BROADCAST_PACKET_H_
#define LBSQ_BROADCAST_PACKET_H_

#include <cstdint>
#include <vector>

#include "geom/rect.h"
#include "hilbert/hilbert.h"
#include "spatial/poi.h"

/// \file
/// Data buckets: the unit of wireless broadcast. The server sorts the POI
/// set in Hilbert order and chunks it into fixed-capacity buckets, so
/// spatially close objects are broadcast close together in time.

namespace lbsq::broadcast {

/// One broadcast data bucket. Bucket ids equal their position in the data
/// file (0-based); one bucket occupies one slot on the air.
struct DataBucket {
  int64_t id = 0;
  /// World epoch this bucket was built from (0 = the initial static world).
  /// Stamped by BroadcastSystem; rides the wire in v2 frames so receivers
  /// can tell broadcast cycles of different epochs apart.
  uint64_t epoch = 0;
  /// Hilbert index of the first/last contained POI (inclusive).
  uint64_t hilbert_lo = 0;
  uint64_t hilbert_hi = 0;
  /// MBR of the contained POIs.
  geom::Rect mbr;
  /// The payload, in Hilbert order.
  std::vector<spatial::Poi> pois;
};

/// Sorts `pois` in (Hilbert index, id) order on `grid` and chunks them into
/// buckets of at most `capacity` POIs. Returns at least one bucket even for
/// an empty data set (an empty broadcast cycle is not representable).
std::vector<DataBucket> BuildBuckets(const std::vector<spatial::Poi>& pois,
                                     const hilbert::HilbertGrid& grid,
                                     int capacity);

}  // namespace lbsq::broadcast

#endif  // LBSQ_BROADCAST_PACKET_H_
