#ifndef LBSQ_BROADCAST_INCREMENTAL_H_
#define LBSQ_BROADCAST_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "spatial/poi.h"

/// \file
/// Diff-aware epoch publication: the vocabulary for patching a
/// `BroadcastSystem` from its predecessor instead of rebuilding it from
/// scratch. A `SystemDelta` is the *net* effect of one update batch against
/// the base snapshot — one removal per POI that left its base position, one
/// addition per POI live in the new snapshot at a position the base did not
/// carry (a moved POI contributes one of each). `BroadcastSystem::PatchFrom`
/// consumes the delta and rebucketizes only the curve ranges it dirtied;
/// every clean bucket's payload, air-index entry run, cell-center row, and
/// id-sorted CSR run is taken verbatim from the base, so the published
/// system is bit-identical to a cold full build at a fraction of the cost.
///
/// The types live in `broadcast` (not `dynamic`) so the layering stays
/// acyclic: the dynamic world derives deltas from its update batches and
/// hands them down; the broadcast layer knows nothing about update logs.

namespace lbsq::broadcast {

/// One POI leaving the base snapshot. `pos` is the position the POI held in
/// the *base* epoch (a delete's position, or a move's departure point) — it
/// locates the POI on the base curve without re-deriving anything from the
/// new snapshot.
struct PoiRemoval {
  geom::Point pos;
  int64_t id = -1;
};

/// Net difference between the base snapshot and its successor. At most one
/// removal and one addition per id.
struct SystemDelta {
  std::vector<PoiRemoval> removals;
  std::vector<spatial::Poi> additions;

  size_t size() const { return removals.size() + additions.size(); }
  bool empty() const { return removals.empty() && additions.empty(); }
};

/// What one PatchFrom call did, for the publication counters.
struct PatchStats {
  /// Buckets rebuilt because the delta shifted or rewrote their content.
  int64_t buckets_patched = 0;
  /// Buckets copied verbatim from the base (payload, entry run, centers,
  /// CSR run — no recomputation).
  int64_t buckets_shared = 0;
};

}  // namespace lbsq::broadcast

#endif  // LBSQ_BROADCAST_INCREMENTAL_H_
