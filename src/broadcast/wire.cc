#include "broadcast/wire.h"

#include <array>
#include <cstring>

namespace lbsq::broadcast {

namespace {

constexpr uint8_t kBucketMagic[4] = {'L', 'B', 'Q', 'B'};
constexpr uint8_t kIndexMagic[4] = {'L', 'B', 'Q', 'I'};

// Zig-zag is unnecessary: ids are non-negative by contract, but the wire
// must not break on a negative id from a hostile peer — encode as two's
// complement u64 and range-check on decode.
uint64_t IdToWire(int64_t id) { return static_cast<uint64_t>(id); }
int64_t IdFromWire(uint64_t wire) { return static_cast<int64_t>(wire); }

int VarintSize(uint64_t value) {
  int size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

void PutMagic(ByteWriter* writer, const uint8_t magic[4]) {
  writer->PutBytes(magic, 4);
}

bool CheckMagic(ByteReader* reader, const uint8_t magic[4]) {
  for (int i = 0; i < 4; ++i) {
    if (reader->GetU8() != magic[i]) return false;
  }
  return reader->ok();
}

// Emits the version byte and, for a non-zero epoch, the v2 epoch varint.
// Epoch 0 stays on the legacy v1 layout byte for byte.
void PutVersionAndEpoch(ByteWriter* writer, uint64_t epoch) {
  if (epoch == 0) {
    writer->PutU8(kWireVersion);
  } else {
    writer->PutU8(kWireVersionEpoch);
    writer->PutVarint(epoch);
  }
}

// Reads the version byte and the v2 epoch field. Rejects unknown versions
// and the non-canonical v2-with-epoch-0 encoding.
bool GetVersionAndEpoch(ByteReader* reader, uint64_t* epoch) {
  const uint8_t version = reader->GetU8();
  if (!reader->ok()) return false;
  if (version == kWireVersion) {
    *epoch = 0;
    return true;
  }
  if (version != kWireVersionEpoch) return false;
  *epoch = reader->GetVarint();
  return reader->ok() && *epoch != 0;
}

}  // namespace

void ByteWriter::PutVarint(uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(value));
}

void ByteWriter::PutDouble(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

void ByteWriter::PutBytes(const uint8_t* data, size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

uint8_t ByteReader::GetU8() {
  if (!ok_ || position_ >= size_) {
    ok_ = false;
    return 0;
  }
  return data_[position_++];
}

uint64_t ByteReader::GetVarint() {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const uint8_t byte = GetU8();
    if (!ok_) return 0;
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical over-long encodings in the final byte.
      if (shift == 63 && byte > 1) {
        ok_ = false;
        return 0;
      }
      return value;
    }
  }
  ok_ = false;  // more than 10 continuation bytes
  return 0;
}

double ByteReader::GetDouble() {
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(GetU8()) << (8 * i);
  }
  if (!ok_) return 0.0;
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::vector<uint8_t> EncodeBucket(const DataBucket& bucket) {
  ByteWriter writer;
  PutMagic(&writer, kBucketMagic);
  PutVersionAndEpoch(&writer, bucket.epoch);
  writer.PutVarint(IdToWire(bucket.id));
  writer.PutVarint(bucket.hilbert_lo);
  writer.PutVarint(bucket.hilbert_hi);
  writer.PutDouble(bucket.mbr.x1);
  writer.PutDouble(bucket.mbr.y1);
  writer.PutDouble(bucket.mbr.x2);
  writer.PutDouble(bucket.mbr.y2);
  writer.PutVarint(bucket.pois.size());
  for (const spatial::Poi& poi : bucket.pois) {
    writer.PutVarint(IdToWire(poi.id));
    writer.PutDouble(poi.pos.x);
    writer.PutDouble(poi.pos.y);
  }
  return writer.bytes();
}

bool DecodeBucket(const uint8_t* data, size_t size, DataBucket* out) {
  ByteReader reader(data, size);
  if (!CheckMagic(&reader, kBucketMagic)) return false;
  if (!GetVersionAndEpoch(&reader, &out->epoch)) return false;
  out->id = IdFromWire(reader.GetVarint());
  out->hilbert_lo = reader.GetVarint();
  out->hilbert_hi = reader.GetVarint();
  out->mbr.x1 = reader.GetDouble();
  out->mbr.y1 = reader.GetDouble();
  out->mbr.x2 = reader.GetDouble();
  out->mbr.y2 = reader.GetDouble();
  const uint64_t count = reader.GetVarint();
  if (!reader.ok()) return false;
  // A POI needs at least 17 bytes; reject absurd counts before allocating.
  if (count > reader.remaining() / 17) return false;
  out->pois.clear();
  out->pois.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    spatial::Poi poi;
    poi.id = IdFromWire(reader.GetVarint());
    poi.pos.x = reader.GetDouble();
    poi.pos.y = reader.GetDouble();
    out->pois.push_back(poi);
  }
  return reader.ok() && reader.remaining() == 0;
}

std::vector<uint8_t> EncodeIndexSegment(
    const std::vector<AirIndex::Entry>& entries) {
  return EncodeIndexSegment(entries, 0);
}

std::vector<uint8_t> EncodeIndexSegment(
    const std::vector<AirIndex::Entry>& entries, uint64_t epoch) {
  ByteWriter writer;
  PutMagic(&writer, kIndexMagic);
  PutVersionAndEpoch(&writer, epoch);
  writer.PutVarint(entries.size());
  for (const AirIndex::Entry& entry : entries) {
    writer.PutVarint(entry.hilbert);
    writer.PutVarint(IdToWire(entry.bucket));
  }
  return writer.bytes();
}

bool DecodeIndexSegment(const uint8_t* data, size_t size,
                        std::vector<AirIndex::Entry>* out) {
  uint64_t epoch = 0;
  return DecodeIndexSegment(data, size, out, &epoch);
}

bool DecodeIndexSegment(const uint8_t* data, size_t size,
                        std::vector<AirIndex::Entry>* out, uint64_t* epoch) {
  ByteReader reader(data, size);
  if (!CheckMagic(&reader, kIndexMagic)) return false;
  if (!GetVersionAndEpoch(&reader, epoch)) return false;
  const uint64_t count = reader.GetVarint();
  if (!reader.ok()) return false;
  if (count > reader.remaining()) return false;  // >= 2 bytes per entry
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    AirIndex::Entry entry;
    entry.hilbert = reader.GetVarint();
    entry.bucket = IdFromWire(reader.GetVarint());
    out->push_back(entry);
  }
  return reader.ok() && reader.remaining() == 0;
}

uint32_t Crc32(const uint8_t* data, size_t size) {
  // Table-driven reflected CRC-32; the table is built once on first use.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendCrc32(std::vector<uint8_t>* buffer) {
  const uint32_t crc = Crc32(buffer->data(), buffer->size());
  for (int i = 0; i < 4; ++i) {
    buffer->push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
}

bool VerifyCrc32(const uint8_t* data, size_t size) {
  if (size < 4) return false;
  const size_t payload = size - 4;
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(data[payload + i]) << (8 * i);
  }
  return Crc32(data, payload) == stored;
}

std::vector<uint8_t> EncodeBucketFramed(const DataBucket& bucket) {
  std::vector<uint8_t> frame = EncodeBucket(bucket);
  AppendCrc32(&frame);
  return frame;
}

bool DecodeBucketFramed(const uint8_t* data, size_t size, DataBucket* out) {
  if (!VerifyCrc32(data, size)) return false;
  return DecodeBucket(data, size - 4, out);
}

std::vector<uint8_t> EncodeIndexSegmentFramed(
    const std::vector<AirIndex::Entry>& entries) {
  return EncodeIndexSegmentFramed(entries, 0);
}

std::vector<uint8_t> EncodeIndexSegmentFramed(
    const std::vector<AirIndex::Entry>& entries, uint64_t epoch) {
  std::vector<uint8_t> frame = EncodeIndexSegment(entries, epoch);
  AppendCrc32(&frame);
  return frame;
}

bool DecodeIndexSegmentFramed(const uint8_t* data, size_t size,
                              std::vector<AirIndex::Entry>* out) {
  uint64_t epoch = 0;
  return DecodeIndexSegmentFramed(data, size, out, &epoch);
}

bool DecodeIndexSegmentFramed(const uint8_t* data, size_t size,
                              std::vector<AirIndex::Entry>* out,
                              uint64_t* epoch) {
  if (!VerifyCrc32(data, size)) return false;
  return DecodeIndexSegment(data, size - 4, out, epoch);
}

int64_t BucketWireSize(const DataBucket& bucket) {
  int64_t size = 4 + 1;  // magic + version
  if (bucket.epoch != 0) size += VarintSize(bucket.epoch);
  size += VarintSize(IdToWire(bucket.id));
  size += VarintSize(bucket.hilbert_lo);
  size += VarintSize(bucket.hilbert_hi);
  size += 4 * 8;  // MBR
  size += VarintSize(bucket.pois.size());
  for (const spatial::Poi& poi : bucket.pois) {
    size += VarintSize(IdToWire(poi.id)) + 16;
  }
  return size;
}

}  // namespace lbsq::broadcast
