#ifndef LBSQ_BROADCAST_AIR_INDEX_H_
#define LBSQ_BROADCAST_AIR_INDEX_H_

#include <cstdint>
#include <vector>

#include "broadcast/packet.h"
#include "geom/point.h"
#include "hilbert/hilbert.h"

/// \file
/// The air index: a flat directory, broadcast as part of every index
/// segment, mapping each object's Hilbert index to the data bucket that
/// carries it. A client that has read one index segment can compute the
/// arrival slot of any data bucket and an approximate position (the Hilbert
/// cell center) for every object.

namespace lbsq::broadcast {

/// Immutable air-index directory built from the bucketized data file.
class AirIndex {
 public:
  /// One directory entry per object.
  struct Entry {
    uint64_t hilbert = 0;
    int64_t bucket = 0;
  };

  /// Builds the directory for `buckets` on `grid`; the serialized index
  /// occupies ceil(entries / entries_per_bucket) index buckets.
  AirIndex(const std::vector<DataBucket>& buckets,
           const hilbert::HilbertGrid& grid, int entries_per_bucket);

  /// Reassembles the directory from precomputed parts — the incremental
  /// patch path, which copies every clean bucket's entry run and center row
  /// from the previous epoch's index. The parts must be exactly what the
  /// building constructor would produce for the same data file (the sorted-
  /// entries and sorted-ranges contracts are still checked).
  AirIndex(std::vector<Entry> entries,
           std::vector<hilbert::IndexRange> bucket_ranges,
           std::vector<double> center_xs, std::vector<double> center_ys,
           double half_cell_diagonal, const hilbert::HilbertGrid& grid,
           int entries_per_bucket);

  /// All entries, sorted by (hilbert, bucket).
  const std::vector<Entry>& entries() const { return entries_; }

  /// Per bucket: the covered curve range [hilbert_lo, hilbert_hi],
  /// ascending by bucket id.
  const std::vector<hilbert::IndexRange>& bucket_ranges() const {
    return bucket_ranges_;
  }

  /// The SoA cell-center columns, parallel to entries() (the incremental
  /// patch path copies clean rows from these; also handy for tests).
  const std::vector<double>& center_xs() const { return center_xs_; }
  const std::vector<double>& center_ys() const { return center_ys_; }
  /// Half a grid-cell diagonal (the KthDistanceUpperBound slack term).
  double half_cell_diagonal() const { return half_cell_diagonal_; }

  /// Size of the serialized index in buckets (>= 1).
  int64_t SizeInBuckets() const;

  /// Upper bound on the distance from `q` to its k-th nearest object,
  /// derived from the index alone: the k-th smallest cell-center distance
  /// plus half a cell diagonal. This is how the on-air kNN derives its
  /// search circle before any data bucket arrives. Returns +infinity when
  /// the index holds fewer than k entries.
  double KthDistanceUpperBound(geom::Point q, int k) const;

  /// KthDistanceUpperBound using `*scratch` for the distance selection
  /// buffer (cleared and refilled; capacity is reused across calls).
  double KthDistanceUpperBound(geom::Point q, int k,
                               std::vector<double>* scratch) const;

  /// Ids of the buckets whose Hilbert range intersects [lo, hi], ascending.
  std::vector<int64_t> BucketsForSpan(uint64_t lo, uint64_t hi) const;

  /// Ids of the buckets whose Hilbert range intersects any of `ranges`
  /// (sorted ascending ranges as produced by HilbertGrid::CoverRect).
  /// Deduplicated, ascending.
  std::vector<int64_t> BucketsForRanges(
      const std::vector<hilbert::IndexRange>& ranges) const;

 private:
  const hilbert::HilbertGrid* grid_;
  int entries_per_bucket_;
  std::vector<Entry> entries_;
  // Per bucket: [hilbert_lo, hilbert_hi], ascending by bucket id.
  std::vector<hilbert::IndexRange> bucket_ranges_;
  // Entry cell centers, transposed entry-for-entry into SoA columns at build
  // time so KthDistanceUpperBound is one distance-batch kernel pass instead
  // of a Hilbert decode per entry per query.
  std::vector<double> center_xs_;
  std::vector<double> center_ys_;
  double half_cell_diagonal_ = 0.0;
};

}  // namespace lbsq::broadcast

#endif  // LBSQ_BROADCAST_AIR_INDEX_H_
