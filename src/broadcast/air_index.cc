#include "broadcast/air_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "kernels/kernels.h"

namespace lbsq::broadcast {

AirIndex::AirIndex(const std::vector<DataBucket>& buckets,
                   const hilbert::HilbertGrid& grid, int entries_per_bucket)
    : grid_(&grid), entries_per_bucket_(entries_per_bucket) {
  LBSQ_CHECK(entries_per_bucket_ >= 1);
  for (const DataBucket& bucket : buckets) {
    bucket_ranges_.push_back(
        hilbert::IndexRange{bucket.hilbert_lo, bucket.hilbert_hi});
    for (const spatial::Poi& poi : bucket.pois) {
      entries_.push_back(Entry{grid.IndexOf(poi.pos), bucket.id});
    }
  }
  // Buckets are built in Hilbert order, so entries are already sorted; the
  // check documents (and enforces) the contract.
  for (size_t i = 1; i < entries_.size(); ++i) {
    LBSQ_CHECK(entries_[i - 1].hilbert <= entries_[i].hilbert);
  }
  for (size_t i = 1; i < bucket_ranges_.size(); ++i) {
    LBSQ_CHECK(bucket_ranges_[i - 1].lo <= bucket_ranges_[i].lo);
  }
  center_xs_.reserve(entries_.size());
  center_ys_.reserve(entries_.size());
  for (const Entry& e : entries_) {
    const geom::Point center = grid.CellRect(e.hilbert).center();
    center_xs_.push_back(center.x);
    center_ys_.push_back(center.y);
  }
  if (!entries_.empty()) {
    const geom::Rect cell = grid.CellRect(entries_.front().hilbert);
    half_cell_diagonal_ = 0.5 * std::sqrt(cell.width() * cell.width() +
                                          cell.height() * cell.height());
  }
}

AirIndex::AirIndex(std::vector<Entry> entries,
                   std::vector<hilbert::IndexRange> bucket_ranges,
                   std::vector<double> center_xs,
                   std::vector<double> center_ys, double half_cell_diagonal,
                   const hilbert::HilbertGrid& grid, int entries_per_bucket)
    : grid_(&grid),
      entries_per_bucket_(entries_per_bucket),
      entries_(std::move(entries)),
      bucket_ranges_(std::move(bucket_ranges)),
      center_xs_(std::move(center_xs)),
      center_ys_(std::move(center_ys)),
      half_cell_diagonal_(half_cell_diagonal) {
  LBSQ_CHECK(entries_per_bucket_ >= 1);
  LBSQ_CHECK(center_xs_.size() == entries_.size());
  LBSQ_CHECK(center_ys_.size() == entries_.size());
  // Same ordering contracts as the building constructor: the patch path
  // must hand over a directory indistinguishable from a cold build.
  for (size_t i = 1; i < entries_.size(); ++i) {
    LBSQ_CHECK(entries_[i - 1].hilbert <= entries_[i].hilbert);
  }
  for (size_t i = 1; i < bucket_ranges_.size(); ++i) {
    LBSQ_CHECK(bucket_ranges_[i - 1].lo <= bucket_ranges_[i].lo);
  }
}

int64_t AirIndex::SizeInBuckets() const {
  const int64_t n = static_cast<int64_t>(entries_.size());
  return std::max<int64_t>(1, (n + entries_per_bucket_ - 1) /
                                  entries_per_bucket_);
}

double AirIndex::KthDistanceUpperBound(geom::Point q, int k) const {
  std::vector<double> distances;
  return KthDistanceUpperBound(q, k, &distances);
}

double AirIndex::KthDistanceUpperBound(geom::Point q, int k,
                                       std::vector<double>* scratch) const {
  LBSQ_CHECK(k >= 1);
  if (static_cast<int>(entries_.size()) < k) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double>& distances = *scratch;
  distances.resize(entries_.size());
  kernels::DistanceBatch(center_xs_.data(), center_ys_.data(),
                         entries_.size(), q.x, q.y, distances.data());
  std::nth_element(distances.begin(), distances.begin() + (k - 1),
                   distances.end());
  return distances[static_cast<size_t>(k - 1)] + half_cell_diagonal_;
}

std::vector<int64_t> AirIndex::BucketsForSpan(uint64_t lo, uint64_t hi) const {
  std::vector<int64_t> out;
  for (size_t b = 0; b < bucket_ranges_.size(); ++b) {
    if (bucket_ranges_[b].lo <= hi && bucket_ranges_[b].hi >= lo) {
      out.push_back(static_cast<int64_t>(b));
    }
  }
  return out;
}

std::vector<int64_t> AirIndex::BucketsForRanges(
    const std::vector<hilbert::IndexRange>& ranges) const {
  std::vector<int64_t> out;
  for (size_t b = 0; b < bucket_ranges_.size(); ++b) {
    for (const hilbert::IndexRange& r : ranges) {
      if (bucket_ranges_[b].lo <= r.hi && bucket_ranges_[b].hi >= r.lo) {
        out.push_back(static_cast<int64_t>(b));
        break;
      }
    }
  }
  return out;
}

}  // namespace lbsq::broadcast
