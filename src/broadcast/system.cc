#include "broadcast/system.h"

#include <algorithm>

#include "common/check.h"

namespace lbsq::broadcast {

namespace {

// The (1, m) schedule requires m <= number of data buckets; clamp so tiny
// data sets still build.
int ClampM(int m, int64_t num_buckets) {
  return static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(m, num_buckets)));
}

}  // namespace

BroadcastSystem::BroadcastSystem(std::vector<spatial::Poi> pois,
                                 const geom::Rect& world,
                                 const BroadcastParams& params)
    : params_(params),
      pois_(std::move(pois)),
      grid_(world, params.hilbert_order, params.curve),
      buckets_(BuildBuckets(pois_, grid_, params.bucket_capacity)),
      index_(buckets_, grid_, params.index_entries_per_bucket),
      tree_index_(params.index_kind == IndexKind::kTree
                      ? std::make_unique<TreeAirIndex>(
                            index_.entries(), params.index_entries_per_bucket)
                      : nullptr),
      schedule_(static_cast<int64_t>(buckets_.size()), IndexSegmentBuckets(),
                ClampM(params.m, static_cast<int64_t>(buckets_.size()))) {}

int64_t BroadcastSystem::IndexSegmentBuckets() const {
  return tree_index_ ? tree_index_->SizeInBuckets() : index_.SizeInBuckets();
}

int64_t BroadcastSystem::IndexReadBuckets(
    const std::vector<hilbert::IndexRange>& lookups) const {
  if (!tree_index_) return IndexSegmentBuckets();
  return tree_index_->ReadCostForRanges(lookups);
}

std::vector<spatial::Poi> BroadcastSystem::CollectPois(
    const std::vector<int64_t>& bucket_ids) const {
  std::vector<spatial::Poi> out;
  CollectPois(bucket_ids, &out);
  return out;
}

void BroadcastSystem::CollectPois(const std::vector<int64_t>& bucket_ids,
                                  std::vector<spatial::Poi>* out) const {
  out->clear();
  for (int64_t id : bucket_ids) {
    LBSQ_CHECK(id >= 0 && id < static_cast<int64_t>(buckets_.size()));
    const DataBucket& bucket = buckets_[static_cast<size_t>(id)];
    out->insert(out->end(), bucket.pois.begin(), bucket.pois.end());
  }
  std::sort(out->begin(), out->end(),
            [](const spatial::Poi& a, const spatial::Poi& b) {
              return a.id < b.id;
            });
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace lbsq::broadcast
