#include "broadcast/system.h"

#include <algorithm>
#include <cstddef>

#include "common/check.h"
#include "kernels/kernels.h"

namespace lbsq::broadcast {

namespace {

// The (1, m) schedule requires m <= number of data buckets; clamp so tiny
// data sets still build.
int ClampM(int m, int64_t num_buckets) {
  return static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(m, num_buckets)));
}

}  // namespace

BroadcastSystem::BroadcastSystem(std::vector<spatial::Poi> pois,
                                 const geom::Rect& world,
                                 const BroadcastParams& params)
    : params_(params),
      pois_(std::move(pois)),
      grid_(world, params.hilbert_order, params.curve),
      buckets_(BuildBuckets(pois_, grid_, params.bucket_capacity)),
      index_(buckets_, grid_, params.index_entries_per_bucket),
      tree_index_(params.index_kind == IndexKind::kTree
                      ? std::make_unique<TreeAirIndex>(
                            index_.entries(), params.index_entries_per_bucket)
                      : nullptr),
      schedule_(static_cast<int64_t>(buckets_.size()), IndexSegmentBuckets(),
                ClampM(params.m, static_cast<int64_t>(buckets_.size())),
                params.epoch) {
  FinishConstruction();
}

BroadcastSystem::BroadcastSystem(std::vector<spatial::Poi> pois,
                                 std::vector<DataBucket> buckets,
                                 const geom::Rect& world,
                                 const BroadcastParams& params)
    : params_(params),
      pois_(std::move(pois)),
      grid_(world, params.hilbert_order, params.curve),
      buckets_(std::move(buckets)),
      index_(buckets_, grid_, params.index_entries_per_bucket),
      tree_index_(params.index_kind == IndexKind::kTree
                      ? std::make_unique<TreeAirIndex>(
                            index_.entries(), params.index_entries_per_bucket)
                      : nullptr),
      schedule_(static_cast<int64_t>(buckets_.size()), IndexSegmentBuckets(),
                ClampM(params.m, static_cast<int64_t>(buckets_.size())),
                params.epoch) {
  // The prebuilt data file must be a valid bucketization: ids equal to
  // positions (the schedule and CollectPois address buckets by position) and
  // the buckets together partition exactly the POI database.
  size_t bucketized = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    LBSQ_CHECK_EQ(buckets_[i].id, static_cast<int64_t>(i));
    bucketized += buckets_[i].pois.size();
  }
  LBSQ_CHECK_EQ(bucketized, pois_.size());
  FinishConstruction();
}

void BroadcastSystem::FinishConstruction() {
  for (DataBucket& bucket : buckets_) bucket.epoch = params_.epoch;
  sorted_start_.reserve(buckets_.size() + 1);
  sorted_start_.push_back(0);
  sorted_pois_.reserve(pois_.size());
  for (const DataBucket& bucket : buckets_) {
    sorted_pois_.insert(sorted_pois_.end(), bucket.pois.begin(),
                        bucket.pois.end());
    std::sort(sorted_pois_.begin() +
                  static_cast<ptrdiff_t>(sorted_start_.back()),
              sorted_pois_.end(),
              [](const spatial::Poi& a, const spatial::Poi& b) {
                return a.id < b.id;
              });
    sorted_start_.push_back(sorted_pois_.size());
  }
}

int64_t BroadcastSystem::IndexSegmentBuckets() const {
  return tree_index_ ? tree_index_->SizeInBuckets() : index_.SizeInBuckets();
}

int64_t BroadcastSystem::IndexReadBuckets(
    const std::vector<hilbert::IndexRange>& lookups) const {
  if (!tree_index_) return IndexSegmentBuckets();
  return tree_index_->ReadCostForRanges(lookups);
}

std::vector<spatial::Poi> BroadcastSystem::CollectPois(
    const std::vector<int64_t>& bucket_ids) const {
  std::vector<spatial::Poi> out;
  CollectPois(bucket_ids, &out);
  return out;
}

void BroadcastSystem::CollectPois(const std::vector<int64_t>& bucket_ids,
                                  std::vector<spatial::Poi>* out) const {
  CollectScratch scratch;
  CollectPois(bucket_ids, &scratch, out);
}

void BroadcastSystem::CollectPois(const std::vector<int64_t>& bucket_ids,
                                  CollectScratch* scratch,
                                  std::vector<spatial::Poi>* out) const {
  out->clear();
  // Buckets partition the database and each bucket's run in sorted_pois_ is
  // id-sorted, so the id-sorted deduplicated output is a k-way merge of the
  // runs named by the (canonicalized) bucket list — no per-call sort. The
  // merge state lives in the caller's scratch, so the call is allocation-
  // free once that scratch has grown to its steady-state size.
  using Cursor = CollectScratch::Cursor;
  std::vector<Cursor>& runs = scratch->runs;
  std::vector<int64_t>& canonical = scratch->canonical;
  const int64_t* ids = bucket_ids.data();
  size_t num_ids = bucket_ids.size();
  if (!kernels::IsSortedUniqueI64(ids, num_ids)) {
    canonical.assign(bucket_ids.begin(), bucket_ids.end());
    std::sort(canonical.begin(), canonical.end());
    canonical.erase(std::unique(canonical.begin(), canonical.end()),
                    canonical.end());
    ids = canonical.data();
    num_ids = canonical.size();
  }
  runs.clear();
  size_t total = 0;
  for (size_t i = 0; i < num_ids; ++i) {
    const int64_t id = ids[i];
    LBSQ_CHECK(id >= 0 && id < static_cast<int64_t>(buckets_.size()));
    const spatial::Poi* lo = sorted_pois_.data() + sorted_start_[id];
    const spatial::Poi* hi = sorted_pois_.data() + sorted_start_[id + 1];
    if (lo != hi) {
      runs.push_back(Cursor{lo, hi});
      total += static_cast<size_t>(hi - lo);
    }
  }
  out->reserve(total);
  if (runs.size() == 1) {
    out->assign(runs.front().cur, runs.front().end);
    return;
  }
  const auto later = [](const Cursor& a, const Cursor& b) {
    return a.cur->id > b.cur->id;
  };
  std::make_heap(runs.begin(), runs.end(), later);
  while (!runs.empty()) {
    std::pop_heap(runs.begin(), runs.end(), later);
    Cursor& c = runs.back();
    out->push_back(*c.cur++);
    if (c.cur == c.end) {
      runs.pop_back();
    } else {
      std::push_heap(runs.begin(), runs.end(), later);
    }
  }
}

}  // namespace lbsq::broadcast
