#ifndef LBSQ_BROADCAST_CLIENT_PROTOCOL_H_
#define LBSQ_BROADCAST_CLIENT_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "broadcast/schedule.h"
#include "common/observability.h"
#include "common/rng.h"

/// \file
/// The client side of the general broadcast access protocol (Imielinski et
/// al.): initial probe, index search, data retrieval. Produces the two
/// metrics that characterize the broadcast model: access latency (time from
/// query to last needed bucket) and tuning time (time spent listening, a
/// proxy for power consumption).

namespace lbsq::broadcast {

/// Outcome of one retrieval. All times in slots.
struct AccessStats {
  /// Slots from the query instant until the last needed bucket has been
  /// fully received (0 when nothing was retrieved).
  int64_t access_latency = 0;
  /// Slots spent with the receiver on: the initial probe, one full index
  /// segment, and one slot per retrieved data bucket.
  int64_t tuning_time = 0;
  /// Number of data buckets downloaded.
  int64_t buckets_read = 0;

  /// Accumulates another retrieval's cost (latencies add: retrievals in one
  /// query are sequential).
  void Accumulate(const AccessStats& other) {
    access_latency += other.access_latency;
    tuning_time += other.tuning_time;
    buckets_read += other.buckets_read;
  }
};

/// How much of an index segment the client must read during the index-search
/// step. Replaces the old `index_read_buckets` integer whose magic value -1
/// meant "the whole segment".
struct IndexReadMode {
  enum class Kind {
    /// Flat directory: the client reads the entire index segment.
    kFlatDirectory,
    /// Hierarchical air index: the client reads only the root-to-leaf path
    /// buckets (`buckets` of them), dozing in between.
    kTreePaths,
  };

  Kind kind = Kind::kFlatDirectory;
  /// Index buckets actually read (kTreePaths only).
  int64_t buckets = 0;

  static IndexReadMode FlatDirectory() { return IndexReadMode{}; }
  static IndexReadMode TreePaths(int64_t buckets) {
    return IndexReadMode{Kind::kTreePaths, buckets};
  }

  /// Index buckets read under this mode for the given schedule.
  int64_t BucketsToRead(const BroadcastSchedule& schedule) const {
    return kind == Kind::kFlatDirectory ? schedule.index_buckets() : buckets;
  }
};

/// Simulates retrieving `buckets` (data bucket ids, duplicates allowed)
/// starting at slot `t`:
///  1. initial probe: listen to the current slot to learn the offset of the
///     next index segment (1 slot of tuning);
///  2. index search: doze until the segment starts, then read the part of it
///     `index_mode` prescribes — the whole segment for a flat directory (the
///     default), or just the root-to-leaf paths for a tree index (the client
///     dozes between path buckets; data retrieval still begins at the end of
///     the segment);
///  3. data retrieval: doze between needed buckets, waking for each (1 slot
///     of tuning per distinct bucket).
/// With an empty bucket set the client still pays steps 1-2 (it cannot know
/// the set is empty without the index).
///
/// A non-null `trace` receives one span per protocol stage (`bcast.probe`,
/// `bcast.index`, `bcast.data`, in slots).
AccessStats RetrieveBuckets(const BroadcastSchedule& schedule, int64_t t,
                            const std::vector<int64_t>& buckets,
                            IndexReadMode index_mode = IndexReadMode{},
                            obs::TraceRecorder* trace = nullptr);

/// RetrieveBuckets over an unreliable channel: every bucket reception (index
/// and data alike) independently fails with probability `loss_prob` (fading,
/// collisions — wireless broadcast has no retransmission), and the client
/// retries at the bucket's next on-air occurrence. `loss_prob` in [0, 1);
/// with 0 this is exactly RetrieveBuckets. Failed receptions still cost
/// tuning time (the receiver was on).
///
/// A non-null `trace` receives the per-stage spans plus the
/// `bcast.index_retries` / `bcast.data_retries` loss counters.
AccessStats RetrieveBucketsLossy(const BroadcastSchedule& schedule, int64_t t,
                                 const std::vector<int64_t>& buckets,
                                 double loss_prob, Rng* rng,
                                 obs::TraceRecorder* trace = nullptr);

}  // namespace lbsq::broadcast

#endif  // LBSQ_BROADCAST_CLIENT_PROTOCOL_H_
