#ifndef LBSQ_BROADCAST_SYSTEM_H_
#define LBSQ_BROADCAST_SYSTEM_H_

#include <cstdint>
#include <vector>

#include <memory>

#include "broadcast/air_index.h"
#include "broadcast/incremental.h"
#include "broadcast/packet.h"
#include "broadcast/schedule.h"
#include "broadcast/tree_index.h"
#include "geom/rect.h"
#include "hilbert/hilbert.h"
#include "spatial/poi.h"

/// \file
/// The wireless information server: owns the POI database, the Hilbert
/// bucketization, the air index, and the (1, m) broadcast schedule. One
/// instance is shared by all mobile hosts in a simulation (it is the single
/// transmitter of the broadcast model).

namespace lbsq::broadcast {

/// How the air index is organized on the channel.
enum class IndexKind {
  /// A flat directory: clients read the whole index segment (simple, large
  /// tuning cost).
  kFlat,
  /// A level-order B+-tree: clients read only root-to-leaf paths, dozing
  /// between index buckets (the classic air-indexing design).
  kTree,
};

/// Tuning knobs for the broadcast organization.
struct BroadcastParams {
  /// POIs per data bucket.
  int bucket_capacity = 8;
  /// Directory entries per index bucket (an index entry is much smaller
  /// than a POI record, hence the larger fan-in).
  int index_entries_per_bucket = 64;
  /// Index replication factor of the (1, m) allocation.
  int m = 4;
  /// Curve order (2^order cells per axis).
  int hilbert_order = 7;
  /// Space-filling curve the data file is linearized with. Hilbert is the
  /// paper's choice; Morton is provided for the locality ablation.
  hilbert::CurveKind curve = hilbert::CurveKind::kHilbert;
  /// Air-index organization (see IndexKind).
  IndexKind index_kind = IndexKind::kFlat;
  /// World epoch this channel broadcasts (0 = the initial static world).
  /// Set by the dynamic-world versioner when it publishes a rebuilt cycle;
  /// stamped into every data bucket and onto the wire (v2 frames).
  uint64_t epoch = 0;
};

/// Reusable merge state for `BroadcastSystem::CollectPois`: the k-way-merge
/// cursor heap and the canonicalized bucket-id list. Owned by the caller —
/// per-thread scratch like every other query buffer (`QueryWorkspace` holds
/// one) — so the merge is allocation-free once the scratch has grown to its
/// steady-state size and the capacity is visible to the alloc counter
/// instead of hiding in function-local TLS.
struct CollectScratch {
  struct Cursor {
    const spatial::Poi* cur = nullptr;
    const spatial::Poi* end = nullptr;
  };
  std::vector<Cursor> runs;
  std::vector<int64_t> canonical;
};

/// Immutable server state for one broadcast channel.
class BroadcastSystem {
 public:
  /// Builds the channel for `pois` over `world`.
  BroadcastSystem(std::vector<spatial::Poi> pois, const geom::Rect& world,
                  const BroadcastParams& params);

  /// Reassembles the channel from a previously built data file (e.g. decoded
  /// from a persisted store): `buckets` must be the exact bucketization the
  /// primary constructor would produce for `pois` (ids equal to positions,
  /// together partitioning the database). Skips the Hilbert sort and
  /// bucketization — the dominant cold-start cost — and rebuilds the
  /// deterministic derived state (air index, schedule, CSR runs).
  BroadcastSystem(std::vector<spatial::Poi> pois,
                  std::vector<DataBucket> buckets, const geom::Rect& world,
                  const BroadcastParams& params);

  BroadcastSystem(const BroadcastSystem&) = delete;
  BroadcastSystem& operator=(const BroadcastSystem&) = delete;

  /// Diff-aware epoch publication: builds the system for `pois` (the new
  /// generation-order snapshot) by patching `base` with the net `delta`
  /// instead of re-running the global Hilbert sort. Only buckets whose curve
  /// range the delta dirtied (or shifted, via the fixed-capacity chunking)
  /// are rebucketized; every clean bucket's payload, air-index entry run,
  /// cell-center row, and id-sorted CSR run is copied verbatim from the
  /// base. The result is **bit-identical** to
  /// `BroadcastSystem(pois, world, params)` — same buckets, same index
  /// entries, same schedule — which the incremental-rebuild property suite
  /// CI-diffs. Returns null when patching does not apply (empty base or new
  /// data set, or `params` disagreeing with the base's in anything but the
  /// epoch) — the caller falls back to a full build and counts it.
  /// Implemented in incremental.cc.
  static std::unique_ptr<BroadcastSystem> PatchFrom(
      const BroadcastSystem& base, std::vector<spatial::Poi> pois,
      const SystemDelta& delta, const BroadcastParams& params,
      PatchStats* stats);

  /// The full POI database (the ground truth oracles test against).
  const std::vector<spatial::Poi>& pois() const { return pois_; }
  /// The Hilbert grid the data is linearized on.
  const hilbert::HilbertGrid& grid() const { return grid_; }
  /// The bucketized data file, in broadcast order.
  const std::vector<DataBucket>& buckets() const { return buckets_; }
  /// The air-index directory.
  const AirIndex& index() const { return index_; }
  /// The (1, m) cycle layout.
  const BroadcastSchedule& schedule() const { return schedule_; }
  /// The parameters the channel was built with.
  const BroadcastParams& params() const { return params_; }
  /// The world epoch this channel broadcasts (see BroadcastParams::epoch).
  uint64_t epoch() const { return params_.epoch; }

  /// The hierarchical index (null under IndexKind::kFlat).
  const TreeAirIndex* tree_index() const { return tree_index_.get(); }

  /// Index buckets a client must read to resolve the given curve-interval
  /// lookups: the whole segment under the flat directory, the union of
  /// root-to-leaf paths under the tree.
  int64_t IndexReadBuckets(
      const std::vector<hilbert::IndexRange>& lookups) const;

  /// POIs contained in the given buckets (what a client that downloaded
  /// them holds), deduplicated by id.
  std::vector<spatial::Poi> CollectPois(
      const std::vector<int64_t>& bucket_ids) const;

  /// Allocation-free variant: clears and fills `*out` (same content as the
  /// returning overload; capacity is reused) using `*scratch` for the merge
  /// state. Steady-state query execution passes its workspace's scratch.
  void CollectPois(const std::vector<int64_t>& bucket_ids,
                   CollectScratch* scratch,
                   std::vector<spatial::Poi>* out) const;

  /// Convenience overload with transient merge scratch (allocates; the
  /// modeled-client and test paths that do not carry a workspace).
  void CollectPois(const std::vector<int64_t>& bucket_ids,
                   std::vector<spatial::Poi>* out) const;

 private:
  /// Precomputed state of a patched epoch (filled by PatchFrom; defined in
  /// incremental.cc). The constructor below adopts it without recomputing.
  struct PatchedParts;
  /// Disambiguation tag: keeps the adopting constructor out of overload
  /// resolution for brace-initialized POI lists.
  struct PatchedTag {};

  /// Adopts patched parts verbatim (the PatchFrom tail): no bucketization,
  /// no index build, no per-bucket sort — just the epoch restamp and the
  /// cheap schedule arithmetic.
  BroadcastSystem(PatchedTag, PatchedParts parts, const geom::Rect& world,
                  const BroadcastParams& params);
  /// Index segment size under the configured organization.
  int64_t IndexSegmentBuckets() const;

  /// Shared constructor tail: stamps the epoch onto every bucket and builds
  /// the id-sorted CSR runs backing CollectPois.
  void FinishConstruction();

  BroadcastParams params_;
  std::vector<spatial::Poi> pois_;
  hilbert::HilbertGrid grid_;
  std::vector<DataBucket> buckets_;
  AirIndex index_;
  std::unique_ptr<TreeAirIndex> tree_index_;
  BroadcastSchedule schedule_;
  // Each bucket's POIs re-sorted by id, concatenated in bucket order (CSR:
  // bucket b's run is [sorted_start_[b], sorted_start_[b + 1])). Buckets
  // partition the database, so CollectPois is a k-way merge of these runs
  // instead of a sort per call.
  std::vector<spatial::Poi> sorted_pois_;
  std::vector<size_t> sorted_start_;
};

}  // namespace lbsq::broadcast

#endif  // LBSQ_BROADCAST_SYSTEM_H_
