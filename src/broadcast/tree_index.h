#ifndef LBSQ_BROADCAST_TREE_INDEX_H_
#define LBSQ_BROADCAST_TREE_INDEX_H_

#include <cstdint>
#include <vector>

#include "broadcast/air_index.h"
#include "hilbert/hilbert.h"

/// \file
/// Hierarchical air index: a bulk-loaded B+-tree over the (hilbert → data
/// bucket) directory, serialized level by level — root first — into the
/// index segment. A client reads the root bucket, picks the children
/// covering its search interval, and dozes until those buckets pass, so the
/// tuning cost of an index lookup is the path count, not the whole segment
/// (the reason the air-indexing literature broadcasts trees). The flat
/// directory remains the default; the broadcast system selects per
/// BroadcastParams::index_kind.

namespace lbsq::broadcast {

/// Immutable bulk-loaded B+-tree over a sorted directory.
class TreeAirIndex {
 public:
  /// Builds the tree for `entries` (sorted by hilbert, as produced by
  /// AirIndex) with `entries_per_bucket` directory entries per leaf bucket
  /// (internal buckets hold the same number of router keys).
  TreeAirIndex(const std::vector<AirIndex::Entry>& entries,
               int entries_per_bucket);

  /// Total index buckets (all levels; >= 1).
  int64_t SizeInBuckets() const {
    return static_cast<int64_t>(nodes_.size());
  }

  /// Tree height in levels (1 = a single root leaf).
  int height() const { return height_; }

  /// Offsets (within the index segment, root = 0) of the index buckets a
  /// client must read to resolve every directory entry with hilbert value
  /// in [lo, hi]: the root-to-leaf paths to all intersecting leaves, with
  /// shared prefixes counted once. Sorted ascending.
  std::vector<int64_t> IndexBucketsForSpan(uint64_t lo, uint64_t hi) const;

  /// Convenience: |IndexBucketsForSpan| for several disjoint ranges, with
  /// shared buckets counted once.
  int64_t ReadCostForRanges(const std::vector<hilbert::IndexRange>& ranges)
      const;

 private:
  struct Node {
    bool leaf = true;
    // Minimum hilbert key covered by each child (or entry); parallel to
    // `children` for internal nodes.
    std::vector<uint64_t> keys;
    // Offsets of child nodes in `nodes_` (internal nodes only).
    std::vector<int64_t> children;
    // Covered key range [lo, hi] of the whole subtree.
    uint64_t lo = 0;
    uint64_t hi = 0;
  };

  int height_ = 1;
  int64_t root_ = 0;
  std::vector<Node> nodes_;  // BFS order: root first
};

}  // namespace lbsq::broadcast

#endif  // LBSQ_BROADCAST_TREE_INDEX_H_
