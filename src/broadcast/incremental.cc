#include "broadcast/incremental.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <utility>

#include "broadcast/system.h"
#include "common/check.h"

/// \file
/// BroadcastSystem::PatchFrom — the diff-aware epoch rebuild.
///
/// The data file is the POI set sorted by (hilbert, id) and chunked into
/// fixed-capacity buckets, so bucket k always covers file positions
/// [k*cap, (k+1)*cap). The base file never needs re-encoding: position p's
/// sort key is (base entry p's hilbert, base bucket POI p's id), because the
/// air index stores one entry per POI in file order. Patching is one
/// provenance-tracked merge of (base file minus removals) with the
/// (hilbert, id)-sorted additions: output position j remembers which base
/// position (or which addition) produced it. Bucket k is *clean* exactly
/// when every one of its output positions j came from base position j and
/// the base bucket k has the same size — then its payload, entry run,
/// center row, curve range, and id-sorted CSR run are copied verbatim.
/// Dirty buckets are rebuilt from the merged stream; only *added* POIs ever
/// pay a Hilbert encode + cell decode. Everything downstream (tree index,
/// schedule) is recomputed from the patched directory — both are cheap
/// relative to the global sort, and re-deriving them keeps the result
/// bit-identical to a cold build by construction.

namespace lbsq::broadcast {

struct BroadcastSystem::PatchedParts {
  std::vector<spatial::Poi> pois;
  std::vector<DataBucket> buckets;
  std::vector<AirIndex::Entry> entries;
  std::vector<hilbert::IndexRange> bucket_ranges;
  std::vector<double> center_xs;
  std::vector<double> center_ys;
  double half_cell_diagonal = 0.0;
  std::vector<spatial::Poi> sorted_pois;
  std::vector<size_t> sorted_start;
};

BroadcastSystem::BroadcastSystem(PatchedTag, PatchedParts parts,
                                 const geom::Rect& world,
                                 const BroadcastParams& params)
    : params_(params),
      pois_(std::move(parts.pois)),
      grid_(world, params.hilbert_order, params.curve),
      buckets_(std::move(parts.buckets)),
      index_(std::move(parts.entries), std::move(parts.bucket_ranges),
             std::move(parts.center_xs), std::move(parts.center_ys),
             parts.half_cell_diagonal, grid_,
             params.index_entries_per_bucket),
      tree_index_(params.index_kind == IndexKind::kTree
                      ? std::make_unique<TreeAirIndex>(
                            index_.entries(), params.index_entries_per_bucket)
                      : nullptr),
      schedule_(static_cast<int64_t>(buckets_.size()), IndexSegmentBuckets(),
                static_cast<int>(std::max<int64_t>(
                    1, std::min<int64_t>(
                           params.m, static_cast<int64_t>(buckets_.size())))),
                params.epoch) {
  // The FinishConstruction tail minus the per-bucket sorts: the CSR runs
  // arrive prebuilt, only the epoch stamp is fresh.
  for (DataBucket& bucket : buckets_) bucket.epoch = params_.epoch;
  sorted_pois_ = std::move(parts.sorted_pois);
  sorted_start_ = std::move(parts.sorted_start);
}

namespace {

/// True when `params` describes the same channel organization as `base`
/// (everything but the epoch label must agree for a patch to make sense).
bool SameOrganization(const BroadcastParams& a, const BroadcastParams& b) {
  return a.bucket_capacity == b.bucket_capacity &&
         a.index_entries_per_bucket == b.index_entries_per_bucket &&
         a.m == b.m && a.hilbert_order == b.hilbert_order &&
         a.curve == b.curve && a.index_kind == b.index_kind;
}

struct KeyedAddition {
  uint64_t hilbert = 0;
  spatial::Poi poi;
};

}  // namespace

std::unique_ptr<BroadcastSystem> BroadcastSystem::PatchFrom(
    const BroadcastSystem& base, std::vector<spatial::Poi> pois,
    const SystemDelta& delta, const BroadcastParams& params,
    PatchStats* stats) {
  // Structural decliners: the placeholder bucket of an empty file has no
  // per-POI entries to merge against, and an empty successor would need
  // one. Both are rare edges the caller full-builds (and counts).
  if (base.pois_.empty() || pois.empty()) return nullptr;
  if (!SameOrganization(base.params_, params)) return nullptr;

  const hilbert::HilbertGrid& grid = base.grid_;
  const std::vector<DataBucket>& old_buckets = base.buckets_;
  const std::vector<AirIndex::Entry>& old_entries = base.index_.entries();
  const std::vector<double>& old_cx = base.index_.center_xs();
  const std::vector<double>& old_cy = base.index_.center_ys();
  const size_t old_n = base.pois_.size();
  const size_t cap = static_cast<size_t>(params.bucket_capacity);
  LBSQ_CHECK_EQ(old_entries.size(), old_n);

  // Base file position -> the POI stored there. Buckets are full cap-sized
  // chunks (the last possibly short), so the split is pure arithmetic.
  const auto old_poi = [&](size_t p) -> const spatial::Poi& {
    return old_buckets[p / cap].pois[p % cap];
  };

  // Locate each removal on the base curve by binary search on the
  // (hilbert, id) file order; the hilbert key comes from one encode of the
  // removal's base-epoch position. A removal that misses the base file is a
  // broken delta (the dynamic layer only logs applied updates).
  std::vector<size_t> removed;
  removed.reserve(delta.removals.size());
  for (const PoiRemoval& r : delta.removals) {
    const uint64_t h = grid.IndexOf(r.pos);
    size_t lo = 0, hi = old_n;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      const uint64_t mh = old_entries[mid].hilbert;
      if (mh < h || (mh == h && old_poi(mid).id < r.id)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    LBSQ_CHECK(lo < old_n);
    LBSQ_CHECK(old_entries[lo].hilbert == h && old_poi(lo).id == r.id);
    removed.push_back(lo);
  }
  std::sort(removed.begin(), removed.end());

  // Only additions pay the Hilbert encode; sort them into file order.
  std::vector<KeyedAddition> adds;
  adds.reserve(delta.additions.size());
  for (const spatial::Poi& p : delta.additions) {
    adds.push_back(KeyedAddition{grid.IndexOf(p.pos), p});
  }
  std::sort(adds.begin(), adds.end(),
            [](const KeyedAddition& a, const KeyedAddition& b) {
              if (a.hilbert != b.hilbert) return a.hilbert < b.hilbert;
              return a.poi.id < b.poi.id;
            });

  const size_t new_n = old_n - removed.size() + adds.size();
  LBSQ_CHECK_EQ(new_n, pois.size());
  if (new_n == 0) return nullptr;

  // Provenance merge: src[j] = base position (>= 0) or ~addition index.
  std::vector<ptrdiff_t> src(new_n);
  {
    size_t p = 0, r = 0, a = 0, j = 0;
    while (p < old_n || a < adds.size()) {
      if (r < removed.size() && removed[r] == p) {
        ++p;
        ++r;
        continue;
      }
      bool take_add;
      if (p >= old_n) {
        take_add = true;
      } else if (a >= adds.size()) {
        take_add = false;
      } else {
        const uint64_t oh = old_entries[p].hilbert;
        take_add = adds[a].hilbert < oh ||
                   (adds[a].hilbert == oh && adds[a].poi.id < old_poi(p).id);
      }
      src[j++] = take_add ? ~static_cast<ptrdiff_t>(a++)
                          : static_cast<ptrdiff_t>(p++);
    }
    LBSQ_CHECK_EQ(j, new_n);
  }

  PatchedParts parts;
  parts.pois = std::move(pois);
  const size_t num_buckets = (new_n + cap - 1) / cap;
  parts.buckets.reserve(num_buckets);
  parts.entries.reserve(new_n);
  parts.bucket_ranges.reserve(num_buckets);
  parts.center_xs.reserve(new_n);
  parts.center_ys.reserve(new_n);
  parts.sorted_pois.reserve(new_n);
  parts.sorted_start.reserve(num_buckets + 1);
  parts.sorted_start.push_back(0);

  for (size_t k = 0; k < num_buckets; ++k) {
    const size_t lo = k * cap;
    const size_t hi = std::min(lo + cap, new_n);
    // Clean test: bucket k of the base covers exactly base positions
    // [k*cap, k*cap + size), so identity provenance over [lo, hi) plus an
    // equal base bucket size means byte-equality with the base bucket.
    bool clean = k < old_buckets.size() &&
                 old_buckets[k].pois.size() == hi - lo;
    for (size_t j = lo; clean && j < hi; ++j) {
      clean = src[j] == static_cast<ptrdiff_t>(j);
    }
    if (clean) {
      parts.buckets.push_back(old_buckets[k]);
      parts.entries.insert(parts.entries.end(), old_entries.begin() + lo,
                           old_entries.begin() + hi);
      parts.bucket_ranges.push_back(base.index_.bucket_ranges()[k]);
      parts.center_xs.insert(parts.center_xs.end(), old_cx.begin() + lo,
                             old_cx.begin() + hi);
      parts.center_ys.insert(parts.center_ys.end(), old_cy.begin() + lo,
                             old_cy.begin() + hi);
      parts.sorted_pois.insert(
          parts.sorted_pois.end(),
          base.sorted_pois_.begin() + static_cast<ptrdiff_t>(lo),
          base.sorted_pois_.begin() + static_cast<ptrdiff_t>(hi));
      parts.sorted_start.push_back(parts.sorted_pois.size());
      if (stats != nullptr) ++stats->buckets_shared;
      continue;
    }
    DataBucket bucket;
    bucket.id = static_cast<int64_t>(k);
    for (size_t j = lo; j < hi; ++j) {
      uint64_t h;
      if (src[j] >= 0) {
        const size_t p = static_cast<size_t>(src[j]);
        h = old_entries[p].hilbert;
        bucket.pois.push_back(old_poi(p));
        parts.center_xs.push_back(old_cx[p]);
        parts.center_ys.push_back(old_cy[p]);
      } else {
        const KeyedAddition& add = adds[static_cast<size_t>(~src[j])];
        h = add.hilbert;
        bucket.pois.push_back(add.poi);
        const geom::Point center = grid.CellRect(h).center();
        parts.center_xs.push_back(center.x);
        parts.center_ys.push_back(center.y);
      }
      if (j == lo) bucket.hilbert_lo = h;
      bucket.hilbert_hi = h;
      bucket.mbr.Expand(bucket.pois.back().pos);
      parts.entries.push_back(
          AirIndex::Entry{h, static_cast<int64_t>(k)});
    }
    parts.bucket_ranges.push_back(
        hilbert::IndexRange{bucket.hilbert_lo, bucket.hilbert_hi});
    parts.sorted_pois.insert(parts.sorted_pois.end(), bucket.pois.begin(),
                             bucket.pois.end());
    std::sort(parts.sorted_pois.begin() +
                  static_cast<ptrdiff_t>(parts.sorted_start.back()),
              parts.sorted_pois.end(),
              [](const spatial::Poi& a, const spatial::Poi& b) {
                return a.id < b.id;
              });
    parts.sorted_start.push_back(parts.sorted_pois.size());
    parts.buckets.push_back(std::move(bucket));
    if (stats != nullptr) ++stats->buckets_patched;
  }

  // Identical derivation to the building AirIndex constructor (cell sizes
  // are uniform, but recomputing from the first entry keeps the value
  // bit-identical rather than merely equal).
  {
    const geom::Rect cell = grid.CellRect(parts.entries.front().hilbert);
    parts.half_cell_diagonal = 0.5 * std::sqrt(cell.width() * cell.width() +
                                               cell.height() * cell.height());
  }

  return std::unique_ptr<BroadcastSystem>(new BroadcastSystem(
      PatchedTag{}, std::move(parts), grid.world(), params));
}

}  // namespace lbsq::broadcast
