#include "broadcast/client_protocol.h"

#include <algorithm>

#include "common/check.h"
#include "kernels/kernels.h"

namespace lbsq::broadcast {

namespace {

// True when `buckets` is already sorted with no adjacent duplicates, in
// which case the retrieval loops can walk the caller's vector directly
// instead of copying it. The query engine always passes canonical lists, so
// this vectorized scan is the common case and the copy below is cold-path
// only.
bool IsSortedUnique(const std::vector<int64_t>& buckets) {
  return kernels::IsSortedUniqueI64(buckets.data(), buckets.size());
}

}  // namespace

AccessStats RetrieveBucketsLossy(const BroadcastSchedule& schedule, int64_t t,
                                 const std::vector<int64_t>& buckets,
                                 double loss_prob, Rng* rng,
                                 obs::TraceRecorder* trace) {
  LBSQ_CHECK(t >= 0);
  LBSQ_CHECK(loss_prob >= 0.0 && loss_prob < 1.0);
  LBSQ_CHECK(rng != nullptr);
  AccessStats stats;

  // Initial probe (assumed to succeed: only the next-index pointer is
  // needed, and it is carried by every bucket).
  stats.tuning_time += 1;
  if (trace != nullptr) trace->Span("bcast.probe", t, t + 1);

  // Index search with per-segment retry: a lost segment means dozing until
  // the next replica.
  int64_t cursor = t + 1;
  int64_t index_retries = 0;
  const int64_t first_index_start = schedule.NextIndexSegmentStart(cursor);
  for (;;) {
    const int64_t index_start = schedule.NextIndexSegmentStart(cursor);
    cursor = index_start + schedule.index_buckets();
    stats.tuning_time += schedule.index_buckets();
    if (!rng->NextBool(loss_prob)) break;
    ++index_retries;
  }
  const int64_t index_end = cursor;
  if (trace != nullptr) {
    trace->Span("bcast.index", first_index_start, index_end);
    trace->Counter("bcast.index_retries", static_cast<double>(index_retries));
  }

  // Data retrieval with per-bucket retries at subsequent cycle occurrences.
  std::vector<int64_t> canonical;
  const std::vector<int64_t>* needed = &buckets;
  if (!IsSortedUnique(buckets)) {
    canonical = buckets;
    std::sort(canonical.begin(), canonical.end());
    canonical.erase(std::unique(canonical.begin(), canonical.end()),
                    canonical.end());
    needed = &canonical;
  }
  int64_t completion = index_end;
  int64_t data_retries = 0;
  for (int64_t bucket : *needed) {
    int64_t attempt_from = index_end;
    for (;;) {
      const int64_t slot = schedule.NextBucketSlot(attempt_from, bucket);
      stats.tuning_time += 1;
      if (!rng->NextBool(loss_prob)) {
        completion = std::max(completion, slot + 1);
        break;
      }
      ++data_retries;
      attempt_from = slot + 1;
    }
  }
  stats.buckets_read = static_cast<int64_t>(needed->size());
  stats.access_latency = completion - t;
  if (trace != nullptr) {
    trace->Span("bcast.data", index_end, completion);
    trace->Counter("bcast.data_retries", static_cast<double>(data_retries));
  }
  return stats;
}

AccessStats RetrieveBuckets(const BroadcastSchedule& schedule, int64_t t,
                            const std::vector<int64_t>& buckets,
                            IndexReadMode index_mode,
                            obs::TraceRecorder* trace) {
  LBSQ_CHECK(t >= 0);
  const int64_t index_read_buckets = index_mode.BucketsToRead(schedule);
  LBSQ_CHECK(index_read_buckets >= 0);
  LBSQ_CHECK(index_read_buckets <= schedule.index_buckets());
  AccessStats stats;

  // Step 1: initial probe. The client listens to the slot in progress; every
  // bucket carries a pointer to the next index segment.
  stats.tuning_time += 1;
  const int64_t after_probe = t + 1;
  if (trace != nullptr) trace->Span("bcast.probe", t, after_probe);

  // Step 2: index search. Read the needed part of the next index segment
  // (dozing between tree-path buckets when a hierarchical index is in use).
  const int64_t index_start = schedule.NextIndexSegmentStart(after_probe);
  const int64_t index_end = index_start + schedule.index_buckets();
  stats.tuning_time += index_read_buckets;
  if (trace != nullptr) trace->Span("bcast.index", index_start, index_end);

  // Step 3: data retrieval.
  std::vector<int64_t> canonical;
  const std::vector<int64_t>* needed = &buckets;
  if (!IsSortedUnique(buckets)) {
    canonical = buckets;
    std::sort(canonical.begin(), canonical.end());
    canonical.erase(std::unique(canonical.begin(), canonical.end()),
                    canonical.end());
    needed = &canonical;
  }
  int64_t completion = index_end;
  for (int64_t bucket : *needed) {
    completion =
        std::max(completion, schedule.NextBucketSlot(index_end, bucket) + 1);
  }
  stats.tuning_time += static_cast<int64_t>(needed->size());
  stats.buckets_read = static_cast<int64_t>(needed->size());
  stats.access_latency = completion - t;
  if (trace != nullptr) trace->Span("bcast.data", index_end, completion);
  return stats;
}

}  // namespace lbsq::broadcast
