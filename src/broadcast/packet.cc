#include "broadcast/packet.h"

#include <algorithm>

#include "common/check.h"

namespace lbsq::broadcast {

std::vector<DataBucket> BuildBuckets(const std::vector<spatial::Poi>& pois,
                                     const hilbert::HilbertGrid& grid,
                                     int capacity) {
  LBSQ_CHECK(capacity >= 1);
  struct Keyed {
    uint64_t hilbert;
    spatial::Poi poi;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(pois.size());
  for (const spatial::Poi& p : pois) {
    keyed.push_back(Keyed{grid.IndexOf(p.pos), p});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.hilbert != b.hilbert) return a.hilbert < b.hilbert;
    return a.poi.id < b.poi.id;
  });

  std::vector<DataBucket> buckets;
  const size_t cap = static_cast<size_t>(capacity);
  for (size_t start = 0; start < keyed.size(); start += cap) {
    const size_t end = std::min(start + cap, keyed.size());
    DataBucket bucket;
    bucket.id = static_cast<int64_t>(buckets.size());
    bucket.hilbert_lo = keyed[start].hilbert;
    bucket.hilbert_hi = keyed[end - 1].hilbert;
    for (size_t i = start; i < end; ++i) {
      bucket.mbr.Expand(keyed[i].poi.pos);
      bucket.pois.push_back(keyed[i].poi);
    }
    buckets.push_back(std::move(bucket));
  }
  if (buckets.empty()) {
    buckets.push_back(DataBucket{});  // placeholder bucket for an empty set
  }
  return buckets;
}

}  // namespace lbsq::broadcast
