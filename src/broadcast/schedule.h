#ifndef LBSQ_BROADCAST_SCHEDULE_H_
#define LBSQ_BROADCAST_SCHEDULE_H_

#include <cstdint>

/// \file
/// The (1, m) index allocation of Imielinski, Viswanathan & Badrinath: the
/// whole air index is broadcast m times per cycle, each copy preceding 1/m of
/// the data file. Time is measured in *slots*; one bucket (index or data)
/// occupies exactly one slot.

namespace lbsq::broadcast {

/// Deterministic, arithmetic model of the broadcast cycle layout. Slot `t`
/// (absolute, from simulation start) maps to either an index bucket or a
/// data bucket; the schedule repeats with period cycle_length().
class BroadcastSchedule {
 public:
  /// A cycle carrying `num_data_buckets` data buckets, an index of
  /// `index_buckets` buckets replicated `m` times. Requires all >= 1 and
  /// m <= num_data_buckets. `epoch` labels the world version the cycle
  /// carries (0 = the initial static world); it does not affect the layout.
  BroadcastSchedule(int64_t num_data_buckets, int64_t index_buckets, int m,
                    uint64_t epoch = 0);

  /// Number of data buckets per cycle.
  int64_t num_data_buckets() const { return num_data_; }
  /// World epoch the cycle carries (layout-neutral label).
  uint64_t epoch() const { return epoch_; }
  /// Size of one index segment in buckets.
  int64_t index_buckets() const { return index_len_; }
  /// Index replication factor.
  int m() const { return m_; }
  /// Total slots per broadcast cycle: m * index_buckets + num_data_buckets.
  int64_t cycle_length() const { return cycle_; }

  /// What is on the air during slot `t`.
  struct Slot {
    enum class Kind { kIndex, kData };
    Kind kind = Kind::kIndex;
    /// Offset within the index segment, or the data bucket id.
    int64_t value = 0;
  };
  Slot SlotAt(int64_t t) const;

  /// First slot >= t at which an index segment begins.
  int64_t NextIndexSegmentStart(int64_t t) const;

  /// First slot >= t during which data bucket `bucket` is on the air. The
  /// bucket has been fully received at the *end* of that slot, i.e., at time
  /// NextBucketSlot(t, bucket) + 1.
  int64_t NextBucketSlot(int64_t t, int64_t bucket) const;

 private:
  /// Slot offset (within a cycle) at which index segment `j` begins.
  int64_t SegmentStart(int64_t j) const;
  /// First data bucket of chunk `j` (chunks are as even as possible).
  int64_t ChunkBegin(int64_t j) const;

  int64_t num_data_;
  int64_t index_len_;
  int m_;
  int64_t cycle_;
  uint64_t epoch_;
};

}  // namespace lbsq::broadcast

#endif  // LBSQ_BROADCAST_SCHEDULE_H_
