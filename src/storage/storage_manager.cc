#include "storage/storage_manager.h"

#include <algorithm>
#include <cstring>

#include "broadcast/wire.h"
#include "common/check.h"
#include "storage/buffer_pool.h"

namespace lbsq::storage {

namespace {

/// Store-file magic: 8 bytes at offset 0.
constexpr char kMagic[8] = {'L', 'B', 'S', 'Q', 'S', 'T', 'R', '1'};
constexpr uint8_t kHeaderVersion = 1;
/// magic + u32le payload length.
constexpr size_t kHeaderPrefix = sizeof(kMagic) + 4;
/// Chain pointer at the head of every blob page.
constexpr size_t kChainPointerBytes = 8;

void PutI64Le(uint8_t* out, int64_t value) {
  uint64_t u = static_cast<uint64_t>(value);
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(u >> (8 * i));
}

int64_t GetI64Le(const uint8_t* in) {
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) u |= static_cast<uint64_t>(in[i]) << (8 * i);
  return static_cast<int64_t>(u);
}

/// Varint-friendly encoding of a page id that may be kInvalidPage.
uint64_t EncodePageId(int64_t page) {
  return static_cast<uint64_t>(page + 1);
}
int64_t DecodePageId(uint64_t raw) { return static_cast<int64_t>(raw) - 1; }

/// Serializes (page_size, page_count, free_head, meta) — everything the
/// header carries besides the magic/length framing.
std::vector<uint8_t> EncodeHeaderPayload(size_t page_size, int64_t page_count,
                                         int64_t free_head,
                                         const StoreMeta& meta) {
  broadcast::ByteWriter writer;
  writer.PutU8(kHeaderVersion);
  writer.PutVarint(page_size);
  writer.PutVarint(static_cast<uint64_t>(page_count));
  writer.PutVarint(EncodePageId(free_head));
  writer.PutVarint(meta.dataset_digest);
  writer.PutVarint(meta.epoch);
  writer.PutVarint(meta.shards);
  writer.PutDouble(meta.world_x1);
  writer.PutDouble(meta.world_y1);
  writer.PutDouble(meta.world_x2);
  writer.PutDouble(meta.world_y2);
  writer.PutVarint(meta.bucket_capacity);
  writer.PutVarint(meta.index_entries_per_bucket);
  writer.PutVarint(meta.m);
  writer.PutVarint(meta.hilbert_order);
  writer.PutU8(meta.curve);
  writer.PutU8(meta.index_kind);
  writer.PutVarint(meta.poi_count);
  writer.PutVarint(EncodePageId(meta.catalog_page));
  writer.PutVarint(meta.catalog_size);
  return writer.bytes();
}

/// Parses the header payload (CRC already verified). Returns kOk, or
/// kBadVersion / kBadHeaderChecksum on a malformed payload.
OpenStatus DecodeHeaderPayload(const uint8_t* data, size_t size,
                               size_t* page_size, int64_t* page_count,
                               int64_t* free_head, StoreMeta* meta) {
  broadcast::ByteReader reader(data, size);
  const uint8_t version = reader.GetU8();
  if (!reader.ok()) return OpenStatus::kBadHeaderChecksum;
  if (version != kHeaderVersion) return OpenStatus::kBadVersion;
  *page_size = static_cast<size_t>(reader.GetVarint());
  *page_count = static_cast<int64_t>(reader.GetVarint());
  *free_head = DecodePageId(reader.GetVarint());
  meta->dataset_digest = reader.GetVarint();
  meta->epoch = reader.GetVarint();
  meta->shards = static_cast<uint32_t>(reader.GetVarint());
  meta->world_x1 = reader.GetDouble();
  meta->world_y1 = reader.GetDouble();
  meta->world_x2 = reader.GetDouble();
  meta->world_y2 = reader.GetDouble();
  meta->bucket_capacity = static_cast<uint32_t>(reader.GetVarint());
  meta->index_entries_per_bucket = static_cast<uint32_t>(reader.GetVarint());
  meta->m = static_cast<uint32_t>(reader.GetVarint());
  meta->hilbert_order = static_cast<uint32_t>(reader.GetVarint());
  meta->curve = reader.GetU8();
  meta->index_kind = reader.GetU8();
  meta->poi_count = reader.GetVarint();
  meta->catalog_page = DecodePageId(reader.GetVarint());
  meta->catalog_size = reader.GetVarint();
  if (!reader.ok() || reader.remaining() != 0) {
    return OpenStatus::kBadHeaderChecksum;
  }
  if (*page_size < kMinPageSize || *page_count < 1) {
    return OpenStatus::kBadHeaderChecksum;
  }
  return OpenStatus::kOk;
}

}  // namespace

const char* OpenStatusName(OpenStatus status) {
  switch (status) {
    case OpenStatus::kOk:
      return "ok";
    case OpenStatus::kIoError:
      return "io-error";
    case OpenStatus::kBadMagic:
      return "bad-magic";
    case OpenStatus::kBadVersion:
      return "bad-version";
    case OpenStatus::kBadHeaderChecksum:
      return "bad-header-checksum";
    case OpenStatus::kTruncated:
      return "truncated";
    case OpenStatus::kBadBlob:
      return "bad-blob";
    case OpenStatus::kDatasetMismatch:
      return "dataset-mismatch";
    case OpenStatus::kParamsMismatch:
      return "params-mismatch";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// MemoryStorageManager

MemoryStorageManager::MemoryStorageManager(size_t page_size)
    : page_size_(page_size) {
  LBSQ_CHECK_GE(page_size_, kMinPageSize);
  pages_.emplace_back();  // page 0: header placeholder, never written
}

int64_t MemoryStorageManager::AllocatePage() {
  if (!free_pages_.empty()) {
    const int64_t page = free_pages_.back();
    free_pages_.pop_back();
    return page;
  }
  pages_.emplace_back(page_size_, uint8_t{0});
  return static_cast<int64_t>(pages_.size()) - 1;
}

void MemoryStorageManager::WritePage(int64_t page, const uint8_t* data) {
  LBSQ_CHECK(page >= 1 && page < page_count());
  std::vector<uint8_t>& slot = pages_[static_cast<size_t>(page)];
  slot.assign(data, data + page_size_);
}

void MemoryStorageManager::ReadPage(int64_t page, uint8_t* out) const {
  LBSQ_CHECK(page >= 1 && page < page_count());
  const std::vector<uint8_t>& slot = pages_[static_cast<size_t>(page)];
  LBSQ_CHECK_EQ(slot.size(), page_size_);
  std::memcpy(out, slot.data(), page_size_);
}

void MemoryStorageManager::FreePage(int64_t page) {
  LBSQ_CHECK(page >= 1 && page < page_count());
  free_pages_.push_back(page);
}

// ---------------------------------------------------------------------------
// FileStorageManager

FileStorageManager::FileStorageManager(std::FILE* file, size_t page_size)
    : file_(file), page_size_(page_size) {}

FileStorageManager::~FileStorageManager() {
  if (file_ != nullptr) std::fclose(file_);
}

std::unique_ptr<FileStorageManager> FileStorageManager::Create(
    const std::string& path, size_t page_size) {
  LBSQ_CHECK_GE(page_size, kMinPageSize);
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) return nullptr;
  return std::unique_ptr<FileStorageManager>(
      new FileStorageManager(file, page_size));
}

std::unique_ptr<FileStorageManager> FileStorageManager::Open(
    const std::string& path, OpenStatus* status) {
  *status = OpenStatus::kIoError;
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) return nullptr;
  // The header must fit in the smallest legal page, so kMinPageSize bytes
  // are enough to parse it — before the page size is known.
  uint8_t head[kMinPageSize];
  const size_t got = std::fread(head, 1, sizeof(head), file);
  if (got < kHeaderPrefix + 4) {
    *status = OpenStatus::kTruncated;
    std::fclose(file);
    return nullptr;
  }
  if (std::memcmp(head, kMagic, sizeof(kMagic)) != 0) {
    *status = OpenStatus::kBadMagic;
    std::fclose(file);
    return nullptr;
  }
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, head + sizeof(kMagic), 4);
  if (payload_len < 4 || kHeaderPrefix + payload_len > sizeof(head) ||
      kHeaderPrefix + payload_len > got) {
    *status = OpenStatus::kBadHeaderChecksum;
    std::fclose(file);
    return nullptr;
  }
  const uint8_t* payload = head + kHeaderPrefix;
  if (!broadcast::VerifyCrc32(payload, payload_len)) {
    *status = OpenStatus::kBadHeaderChecksum;
    std::fclose(file);
    return nullptr;
  }
  size_t page_size = 0;
  int64_t page_count = 0;
  int64_t free_head = kInvalidPage;
  StoreMeta meta;
  const OpenStatus header_status = DecodeHeaderPayload(
      payload, payload_len - 4, &page_size, &page_count, &free_head, &meta);
  if (header_status != OpenStatus::kOk) {
    *status = header_status;
    std::fclose(file);
    return nullptr;
  }
  // Every page the header declares must be present in full.
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return nullptr;
  }
  const long file_size = std::ftell(file);
  if (file_size < 0) {
    std::fclose(file);
    return nullptr;
  }
  if (static_cast<uint64_t>(file_size) <
      static_cast<uint64_t>(page_count) * page_size) {
    *status = OpenStatus::kTruncated;
    std::fclose(file);
    return nullptr;
  }
  auto store = std::unique_ptr<FileStorageManager>(
      new FileStorageManager(file, page_size));
  store->page_count_ = page_count;
  store->free_head_ = free_head;
  store->meta_ = meta;
  *status = OpenStatus::kOk;
  return store;
}

int64_t FileStorageManager::AllocatePage() {
  if (free_head_ != kInvalidPage) {
    const int64_t page = free_head_;
    uint8_t next[8];
    LBSQ_CHECK_EQ(
        std::fseek(file_, static_cast<long>(page * static_cast<int64_t>(
                                                       page_size_)),
                   SEEK_SET),
        0);
    LBSQ_CHECK_EQ(std::fread(next, 1, sizeof(next), file_), sizeof(next));
    free_head_ = GetI64Le(next);
    return page;
  }
  const int64_t page = page_count_++;
  // Materialize the page so the file always covers page_count_ pages (the
  // truncation check at Open relies on it).
  std::vector<uint8_t> zeros(page_size_, 0);
  WritePage(page, zeros.data());
  return page;
}

void FileStorageManager::WritePage(int64_t page, const uint8_t* data) {
  LBSQ_CHECK(page >= 1 && page < page_count_);
  LBSQ_CHECK_EQ(
      std::fseek(file_,
                 static_cast<long>(page * static_cast<int64_t>(page_size_)),
                 SEEK_SET),
      0);
  LBSQ_CHECK_EQ(std::fwrite(data, 1, page_size_, file_), page_size_);
}

void FileStorageManager::ReadPage(int64_t page, uint8_t* out) const {
  LBSQ_CHECK(page >= 1 && page < page_count_);
  LBSQ_CHECK_EQ(
      std::fseek(file_,
                 static_cast<long>(page * static_cast<int64_t>(page_size_)),
                 SEEK_SET),
      0);
  LBSQ_CHECK_EQ(std::fread(out, 1, page_size_, file_), page_size_);
}

void FileStorageManager::FreePage(int64_t page) {
  LBSQ_CHECK(page >= 1 && page < page_count_);
  uint8_t next[8];
  PutI64Le(next, free_head_);
  LBSQ_CHECK_EQ(
      std::fseek(file_,
                 static_cast<long>(page * static_cast<int64_t>(page_size_)),
                 SEEK_SET),
      0);
  LBSQ_CHECK_EQ(std::fwrite(next, 1, sizeof(next), file_), sizeof(next));
  free_head_ = page;
}

bool FileStorageManager::Flush() {
  const std::vector<uint8_t> payload =
      EncodeHeaderPayload(page_size_, page_count_, free_head_, meta_);
  std::vector<uint8_t> framed = payload;
  broadcast::AppendCrc32(&framed);
  LBSQ_CHECK_LE(kHeaderPrefix + framed.size(), kMinPageSize);
  std::vector<uint8_t> page(page_size_, 0);
  std::memcpy(page.data(), kMagic, sizeof(kMagic));
  const uint32_t len = static_cast<uint32_t>(framed.size());
  std::memcpy(page.data() + sizeof(kMagic), &len, 4);
  std::memcpy(page.data() + kHeaderPrefix, framed.data(), framed.size());
  if (std::fseek(file_, 0, SEEK_SET) != 0) return false;
  if (std::fwrite(page.data(), 1, page.size(), file_) != page.size()) {
    return false;
  }
  return std::fflush(file_) == 0;
}

// ---------------------------------------------------------------------------
// Blob chains

BlobRef WriteBlob(IStorageManager* store, const uint8_t* data, size_t size) {
  std::vector<uint8_t> framed(data, data + size);
  broadcast::AppendCrc32(&framed);
  const size_t page_size = store->page_size();
  const size_t payload_per_page = page_size - kChainPointerBytes;
  const size_t num_pages = (framed.size() + payload_per_page - 1) /
                           payload_per_page;
  std::vector<int64_t> pages(num_pages);
  for (size_t i = 0; i < num_pages; ++i) pages[i] = store->AllocatePage();
  std::vector<uint8_t> page(page_size, 0);
  for (size_t i = 0; i < num_pages; ++i) {
    const int64_t next = i + 1 < num_pages ? pages[i + 1] : kInvalidPage;
    PutI64Le(page.data(), next);
    const size_t offset = i * payload_per_page;
    const size_t take = std::min(payload_per_page, framed.size() - offset);
    std::memcpy(page.data() + kChainPointerBytes, framed.data() + offset,
                take);
    std::fill(page.begin() + static_cast<ptrdiff_t>(kChainPointerBytes + take),
              page.end(), uint8_t{0});
    store->WritePage(pages[i], page.data());
  }
  BlobRef ref;
  ref.first_page = num_pages > 0 ? pages[0] : kInvalidPage;
  ref.size = framed.size();
  return ref;
}

bool ReadBlob(const IStorageManager& store, BufferPool* pool,
              const BlobRef& ref, std::vector<uint8_t>* out) {
  out->clear();
  const size_t page_size = store.page_size();
  const size_t payload_per_page = page_size - kChainPointerBytes;
  out->reserve(ref.size);
  std::vector<uint8_t> scratch;
  int64_t page = ref.first_page;
  uint64_t remaining = ref.size;
  while (remaining > 0) {
    if (page < 1 || page >= store.page_count()) return false;
    const uint8_t* frame = nullptr;
    if (pool != nullptr) {
      frame = pool->Pin(page);
    } else {
      scratch.resize(page_size);
      store.ReadPage(page, scratch.data());
      frame = scratch.data();
    }
    const int64_t next = GetI64Le(frame);
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(payload_per_page, remaining));
    out->insert(out->end(), frame + kChainPointerBytes,
                frame + kChainPointerBytes + take);
    if (pool != nullptr) pool->Unpin(page);
    remaining -= take;
    page = next;
  }
  if (page != kInvalidPage) return false;
  // Every blob carries a CRC-32 trailer over its payload.
  if (out->size() < 4 || !broadcast::VerifyCrc32(out->data(), out->size())) {
    return false;
  }
  out->resize(out->size() - 4);
  return true;
}

}  // namespace lbsq::storage
