#include "storage/system_builder.h"

#include <utility>

#include "broadcast/wire.h"
#include "common/check.h"
#include "hilbert/hilbert.h"
#include "hilbert/partition.h"

namespace lbsq::storage {

namespace {

/// Catalog blob kinds.
enum BlobKind : uint8_t {
  kBlobShardMap = 0,
  kBlobPois = 1,
  kBlobBuckets = 2,
  kBlobIndex = 3,
};

struct CatalogEntry {
  uint8_t kind = 0;
  uint32_t shard = 0;
  BlobRef ref;
};

uint64_t EncodePageId(int64_t page) {
  return static_cast<uint64_t>(page + 1);
}
int64_t DecodePageId(uint64_t raw) { return static_cast<int64_t>(raw) - 1; }

std::vector<uint8_t> EncodePois(const std::vector<spatial::Poi>& pois) {
  broadcast::ByteWriter writer;
  writer.PutVarint(pois.size());
  for (const spatial::Poi& poi : pois) {
    writer.PutVarint(static_cast<uint64_t>(poi.id));
    writer.PutDouble(poi.pos.x);
    writer.PutDouble(poi.pos.y);
  }
  return writer.bytes();
}

bool DecodePois(const std::vector<uint8_t>& bytes,
                std::vector<spatial::Poi>* out) {
  broadcast::ByteReader reader(bytes.data(), bytes.size());
  const uint64_t count = reader.GetVarint();
  if (!reader.ok()) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    spatial::Poi poi;
    poi.id = static_cast<int64_t>(reader.GetVarint());
    poi.pos.x = reader.GetDouble();
    poi.pos.y = reader.GetDouble();
    if (!reader.ok()) return false;
    out->push_back(poi);
  }
  return reader.remaining() == 0;
}

/// The bucket blob is the data file verbatim: each bucket's CRC-framed wire
/// bytes, length-prefixed — exactly what the channel transmits.
std::vector<uint8_t> EncodeBuckets(
    const std::vector<broadcast::DataBucket>& buckets) {
  broadcast::ByteWriter writer;
  writer.PutVarint(buckets.size());
  for (const broadcast::DataBucket& bucket : buckets) {
    const std::vector<uint8_t> frame = broadcast::EncodeBucketFramed(bucket);
    writer.PutVarint(frame.size());
    writer.PutBytes(frame.data(), frame.size());
  }
  return writer.bytes();
}

bool DecodeBuckets(const std::vector<uint8_t>& bytes, uint64_t expected_epoch,
                   std::vector<broadcast::DataBucket>* out) {
  broadcast::ByteReader reader(bytes.data(), bytes.size());
  const uint64_t count = reader.GetVarint();
  if (!reader.ok()) return false;
  out->clear();
  out->reserve(count);
  size_t offset = bytes.size() - reader.remaining();
  for (uint64_t i = 0; i < count; ++i) {
    broadcast::ByteReader len_reader(bytes.data() + offset,
                                     bytes.size() - offset);
    const uint64_t frame_len = len_reader.GetVarint();
    if (!len_reader.ok() || frame_len > len_reader.remaining()) return false;
    offset = bytes.size() - len_reader.remaining();
    broadcast::DataBucket bucket;
    if (!broadcast::DecodeBucketFramed(bytes.data() + offset,
                                       static_cast<size_t>(frame_len),
                                       &bucket)) {
      return false;
    }
    // The data file is positional: bucket i of the store is bucket i of the
    // channel, at the epoch the header declares.
    if (bucket.id != static_cast<int64_t>(i)) return false;
    if (bucket.epoch != expected_epoch) return false;
    offset += static_cast<size_t>(frame_len);
    out->push_back(std::move(bucket));
  }
  return offset == bytes.size();
}

std::vector<uint8_t> EncodeShardMap(const hilbert::ShardMap& map) {
  broadcast::ByteWriter writer;
  writer.PutVarint(map.num_cells());
  writer.PutVarint(static_cast<uint64_t>(map.num_shards()));
  for (int s = 0; s < map.num_shards(); ++s) {
    writer.PutVarint(map.RangeOf(s).hi + 1);
  }
  return writer.bytes();
}

bool DecodeShardMap(const std::vector<uint8_t>& bytes, uint64_t* num_cells,
                    std::vector<uint64_t>* bounds) {
  broadcast::ByteReader reader(bytes.data(), bytes.size());
  *num_cells = reader.GetVarint();
  const uint64_t num_shards = reader.GetVarint();
  if (!reader.ok()) return false;
  bounds->clear();
  bounds->reserve(num_shards);
  uint64_t prev = 0;
  for (uint64_t s = 0; s < num_shards; ++s) {
    const uint64_t bound = reader.GetVarint();
    if (!reader.ok()) return false;
    // ShardMap's own constructor re-checks; failing here keeps a malformed
    // store a typed error instead of an abort.
    if (bound <= prev) return false;
    prev = bound;
    bounds->push_back(bound);
  }
  if (reader.remaining() != 0) return false;
  return !bounds->empty() && bounds->back() == *num_cells;
}

std::vector<uint8_t> EncodeCatalog(const std::vector<CatalogEntry>& entries) {
  broadcast::ByteWriter writer;
  writer.PutVarint(entries.size());
  for (const CatalogEntry& entry : entries) {
    writer.PutU8(entry.kind);
    writer.PutVarint(entry.shard);
    writer.PutVarint(EncodePageId(entry.ref.first_page));
    writer.PutVarint(entry.ref.size);
  }
  return writer.bytes();
}

bool DecodeCatalog(const std::vector<uint8_t>& bytes,
                   std::vector<CatalogEntry>* out) {
  broadcast::ByteReader reader(bytes.data(), bytes.size());
  const uint64_t count = reader.GetVarint();
  if (!reader.ok()) return false;
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CatalogEntry entry;
    entry.kind = reader.GetU8();
    entry.shard = static_cast<uint32_t>(reader.GetVarint());
    entry.ref.first_page = DecodePageId(reader.GetVarint());
    entry.ref.size = reader.GetVarint();
    if (!reader.ok()) return false;
    out->push_back(entry);
  }
  return reader.remaining() == 0;
}

bool SameRect(const geom::Rect& a, double x1, double y1, double x2,
              double y2) {
  return a.x1 == x1 && a.y1 == y1 && a.x2 == x2 && a.y2 == y2;
}

}  // namespace

SystemBuilder::SystemBuilder(const geom::Rect& world,
                             const broadcast::BroadcastParams& params)
    : world_(world), params_(params) {}

SystemBuilder& SystemBuilder::SetOptions(const core::EngineOptions& options) {
  options_ = options;
  return *this;
}

SystemBuilder& SystemBuilder::SetShards(int shards) {
  LBSQ_CHECK_GE(shards, 1);
  shards_ = shards;
  return *this;
}

SystemBuilder& SystemBuilder::SetDatasetTag(uint64_t tag) {
  dataset_tag_ = tag;
  return *this;
}

std::unique_ptr<core::ShardedQueryEngine> SystemBuilder::BuildFromPois(
    std::vector<spatial::Poi> pois) const {
  return std::make_unique<core::ShardedQueryEngine>(
      std::move(pois), world_, params_, options_, shards_);
}

std::unique_ptr<broadcast::BroadcastSystem> SystemBuilder::BuildSystemFromPois(
    std::vector<spatial::Poi> pois) const {
  return std::make_unique<broadcast::BroadcastSystem>(std::move(pois), world_,
                                                      params_);
}

std::unique_ptr<broadcast::BroadcastSystem> SystemBuilder::PatchSystemFromBase(
    const broadcast::BroadcastSystem& base, std::vector<spatial::Poi> pois,
    const broadcast::SystemDelta& delta, broadcast::PatchStats* stats) const {
  return broadcast::BroadcastSystem::PatchFrom(base, std::move(pois), delta,
                                               params_, stats);
}

bool SystemBuilder::WriteStore(const core::ShardedQueryEngine& engine,
                               IStorageManager* store) const {
  // The store must be freshly created (header page only) and the engine
  // must be the builder's own deployment shape.
  LBSQ_CHECK_EQ(store->page_count(), int64_t{1});
  LBSQ_CHECK_EQ(engine.num_shards(), shards_);
  LBSQ_CHECK(engine.world().x1 == world_.x1 && engine.world().y1 == world_.y1 &&
             engine.world().x2 == world_.x2 && engine.world().y2 == world_.y2);

  std::vector<CatalogEntry> entries;
  {
    const std::vector<uint8_t> bytes = EncodeShardMap(engine.map());
    entries.push_back(
        {kBlobShardMap, 0, WriteBlob(store, bytes.data(), bytes.size())});
  }
  for (int s = 0; s < engine.num_shards(); ++s) {
    const broadcast::BroadcastSystem* system = engine.shard_system(s);
    if (system == nullptr) continue;  // empty shard: no blobs
    const uint32_t shard = static_cast<uint32_t>(s);
    const std::vector<uint8_t> pois = EncodePois(system->pois());
    entries.push_back(
        {kBlobPois, shard, WriteBlob(store, pois.data(), pois.size())});
    const std::vector<uint8_t> buckets = EncodeBuckets(system->buckets());
    entries.push_back(
        {kBlobBuckets, shard, WriteBlob(store, buckets.data(), buckets.size())});
    const std::vector<uint8_t> index = broadcast::EncodeIndexSegmentFramed(
        system->index().entries(), params_.epoch);
    entries.push_back(
        {kBlobIndex, shard, WriteBlob(store, index.data(), index.size())});
  }
  const std::vector<uint8_t> catalog = EncodeCatalog(entries);
  const BlobRef catalog_ref =
      WriteBlob(store, catalog.data(), catalog.size());

  StoreMeta meta;
  meta.dataset_digest = dataset_tag_;
  meta.epoch = params_.epoch;
  meta.shards = static_cast<uint32_t>(shards_);
  meta.world_x1 = world_.x1;
  meta.world_y1 = world_.y1;
  meta.world_x2 = world_.x2;
  meta.world_y2 = world_.y2;
  meta.bucket_capacity = static_cast<uint32_t>(params_.bucket_capacity);
  meta.index_entries_per_bucket =
      static_cast<uint32_t>(params_.index_entries_per_bucket);
  meta.m = static_cast<uint32_t>(params_.m);
  meta.hilbert_order = static_cast<uint32_t>(params_.hilbert_order);
  meta.curve = static_cast<uint8_t>(params_.curve);
  meta.index_kind = static_cast<uint8_t>(params_.index_kind);
  meta.poi_count = engine.total_pois();
  meta.catalog_page = catalog_ref.first_page;
  meta.catalog_size = catalog_ref.size;
  store->set_meta(meta);
  return store->Flush();
}

std::unique_ptr<core::ShardedQueryEngine> SystemBuilder::OpenFromStore(
    const IStorageManager& store, BufferPool* pool, OpenStatus* status) const {
  const StoreMeta& meta = store.meta();
  // Refuse to serve the wrong world: the dataset digest and every build
  // parameter must match the requested deployment exactly.
  if (meta.dataset_digest != dataset_tag_) {
    *status = OpenStatus::kDatasetMismatch;
    return nullptr;
  }
  if (meta.epoch != params_.epoch ||
      meta.shards != static_cast<uint32_t>(shards_) ||
      !SameRect(world_, meta.world_x1, meta.world_y1, meta.world_x2,
                meta.world_y2) ||
      meta.bucket_capacity != static_cast<uint32_t>(params_.bucket_capacity) ||
      meta.index_entries_per_bucket !=
          static_cast<uint32_t>(params_.index_entries_per_bucket) ||
      meta.m != static_cast<uint32_t>(params_.m) ||
      meta.hilbert_order != static_cast<uint32_t>(params_.hilbert_order) ||
      meta.curve != static_cast<uint8_t>(params_.curve) ||
      meta.index_kind != static_cast<uint8_t>(params_.index_kind)) {
    *status = OpenStatus::kParamsMismatch;
    return nullptr;
  }

  *status = OpenStatus::kBadBlob;
  std::vector<uint8_t> bytes;
  if (!ReadBlob(store, pool, {meta.catalog_page, meta.catalog_size}, &bytes)) {
    return nullptr;
  }
  std::vector<CatalogEntry> catalog;
  if (!DecodeCatalog(bytes, &catalog)) return nullptr;

  // Group the catalog by shard; exactly one shard-map blob.
  struct ShardBlobs {
    BlobRef pois, buckets, index;
  };
  std::vector<ShardBlobs> shard_blobs(static_cast<size_t>(shards_));
  BlobRef map_ref;
  for (const CatalogEntry& entry : catalog) {
    if (entry.kind == kBlobShardMap) {
      map_ref = entry.ref;
      continue;
    }
    if (entry.shard >= static_cast<uint32_t>(shards_)) return nullptr;
    ShardBlobs& blobs = shard_blobs[entry.shard];
    switch (entry.kind) {
      case kBlobPois:
        blobs.pois = entry.ref;
        break;
      case kBlobBuckets:
        blobs.buckets = entry.ref;
        break;
      case kBlobIndex:
        blobs.index = entry.ref;
        break;
      default:
        return nullptr;
    }
  }
  if (map_ref.first_page == kInvalidPage) return nullptr;

  if (!ReadBlob(store, pool, map_ref, &bytes)) return nullptr;
  uint64_t num_cells = 0;
  std::vector<uint64_t> bounds;
  if (!DecodeShardMap(bytes, &num_cells, &bounds)) return nullptr;
  const hilbert::HilbertGrid grid(world_, params_.hilbert_order,
                                  params_.curve);
  if (num_cells != grid.num_cells() ||
      bounds.size() != static_cast<size_t>(shards_)) {
    return nullptr;
  }
  hilbert::ShardMap map(num_cells, std::move(bounds));

  std::vector<std::shared_ptr<const broadcast::BroadcastSystem>> systems(
      static_cast<size_t>(shards_));
  uint64_t total_pois = 0;
  for (int s = 0; s < shards_; ++s) {
    const ShardBlobs& blobs = shard_blobs[static_cast<size_t>(s)];
    if (blobs.pois.first_page == kInvalidPage &&
        blobs.buckets.first_page == kInvalidPage &&
        blobs.index.first_page == kInvalidPage) {
      continue;  // empty shard
    }
    if (blobs.pois.first_page == kInvalidPage ||
        blobs.buckets.first_page == kInvalidPage ||
        blobs.index.first_page == kInvalidPage) {
      return nullptr;  // partial shard record
    }
    std::vector<spatial::Poi> pois;
    if (!ReadBlob(store, pool, blobs.pois, &bytes) ||
        !DecodePois(bytes, &pois)) {
      return nullptr;
    }
    std::vector<broadcast::DataBucket> buckets;
    if (!ReadBlob(store, pool, blobs.buckets, &bytes) ||
        !DecodeBuckets(bytes, meta.epoch, &buckets)) {
      return nullptr;
    }
    size_t bucketized = 0;
    for (const broadcast::DataBucket& bucket : buckets) {
      bucketized += bucket.pois.size();
    }
    if (bucketized != pois.size()) return nullptr;
    std::vector<broadcast::AirIndex::Entry> stored_entries;
    uint64_t index_epoch = 0;
    if (!ReadBlob(store, pool, blobs.index, &bytes) ||
        !broadcast::DecodeIndexSegmentFramed(bytes.data(), bytes.size(),
                                             &stored_entries, &index_epoch) ||
        index_epoch != meta.epoch) {
      return nullptr;
    }
    total_pois += pois.size();
    auto system = std::make_shared<broadcast::BroadcastSystem>(
        std::move(pois), std::move(buckets), world_, params_);
    // The persisted directory must agree with the one rebuilt from the
    // buckets — a full structural cross-check of the store's two views of
    // the data file.
    const std::vector<broadcast::AirIndex::Entry>& rebuilt =
        system->index().entries();
    if (stored_entries.size() != rebuilt.size()) return nullptr;
    for (size_t i = 0; i < rebuilt.size(); ++i) {
      if (stored_entries[i].hilbert != rebuilt[i].hilbert ||
          stored_entries[i].bucket != rebuilt[i].bucket) {
        return nullptr;
      }
    }
    systems[static_cast<size_t>(s)] = std::move(system);
  }
  if (total_pois != meta.poi_count) return nullptr;

  auto engine = std::make_unique<core::ShardedQueryEngine>(
      world_, params_, options_, std::move(map), std::move(systems));
  *status = OpenStatus::kOk;
  return engine;
}

}  // namespace lbsq::storage
