#ifndef LBSQ_STORAGE_STORAGE_MANAGER_H_
#define LBSQ_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

/// \file
/// The paged storage layer. `IStorageManager` is the brepdb-style page
/// abstraction under the persisted broadcast artifacts: fixed-size pages
/// with stable ids, allocated/freed through a free list, read and written
/// whole. Two backends:
///
///  - `MemoryStorageManager` — a page vector; the default, with no
///    persistence and no I/O. Byte-compatible with the file backend (the
///    same blob/catalog bytes land in the same page layout), which is what
///    the differential store tests diff against.
///  - `FileStorageManager` — a single-file page store. Page 0 is a
///    checksummed header carrying the store metadata (dataset digest,
///    Hilbert order and curve, epoch, broadcast parameters, world rect) so
///    an open can reject a store built for a different deployment before
///    decoding a single payload page.
///
/// File layout:
///   page 0  := magic "LBSQSTR1" | u32le len | header payload | u32le crc32
///   page k  := payload page (k >= 1); free pages chain through their first
///              8 bytes (i64le next-free, -1 terminates)
///
/// Blobs — byte strings larger than a page — are stored as page chains:
/// each page of a blob starts with the i64le id of the next page in the
/// chain (-1 for the last), followed by payload bytes. Every blob carries a
/// CRC-32 trailer, verified on read. The catalog (what blobs exist and
/// where) is itself a blob whose location lives in the header.
///
/// Error handling follows the repo contract: programming errors (bad page
/// id, wrong buffer size) abort via LBSQ_CHECK; *environmental* failures —
/// a corrupt, truncated, or mismatched store file — surface as typed
/// `OpenStatus` values so servers can refuse to serve the wrong world with
/// a diagnosable message instead of a crash.

namespace lbsq::storage {

/// Sentinel page id: "no page" (free-list/chain terminator).
inline constexpr int64_t kInvalidPage = -1;

/// Smallest supported page size: the header and a chain pointer plus CRC
/// must fit with room for payload.
inline constexpr size_t kMinPageSize = 256;

/// Default page size of the file store (a filesystem-friendly 4 KiB).
inline constexpr size_t kDefaultPageSize = 4096;

/// Why an open (or the system-level decode above it) failed. kOk is the
/// success value so callers can branch on a single status.
enum class OpenStatus {
  kOk,
  /// The file could not be read (missing, permissions, short read).
  kIoError,
  /// The header magic is not "LBSQSTR1" — not a store file.
  kBadMagic,
  /// The store format version is newer than this build understands.
  kBadVersion,
  /// The header CRC-32 does not match its payload — corrupted header.
  kBadHeaderChecksum,
  /// The file is shorter than the page count the header declares.
  kTruncated,
  /// A payload blob failed its CRC or decoded inconsistently.
  kBadBlob,
  /// The header's dataset digest differs from the requested deployment's.
  kDatasetMismatch,
  /// The header's build parameters (Hilbert order, curve, epoch, bucket
  /// geometry, world rect) differ from the requested deployment's.
  kParamsMismatch,
};

/// Human-readable name for diagnostics ("dataset-mismatch", ...).
const char* OpenStatusName(OpenStatus status);

/// The deployment identity stamped into the store header. Scalars only —
/// the storage layer does not depend on the broadcast module; the system
/// builder translates to/from `broadcast::BroadcastParams`.
struct StoreMeta {
  /// Digest of the dataset the store was built from (builder-chosen; the
  /// tools use sim::DatasetSpec::Digest()).
  uint64_t dataset_digest = 0;
  /// World epoch of the persisted channel state.
  uint64_t epoch = 0;
  uint32_t shards = 1;
  /// World rectangle the channels were built over.
  double world_x1 = 0.0, world_y1 = 0.0, world_x2 = 0.0, world_y2 = 0.0;
  /// broadcast::BroadcastParams scalars.
  uint32_t bucket_capacity = 0;
  uint32_t index_entries_per_bucket = 0;
  uint32_t m = 0;
  uint32_t hilbert_order = 0;
  uint8_t curve = 0;       ///< hilbert::CurveKind
  uint8_t index_kind = 0;  ///< broadcast::IndexKind
  /// Total POIs across all shards.
  uint64_t poi_count = 0;
  /// Location of the catalog blob (kInvalidPage until WriteStore runs).
  int64_t catalog_page = kInvalidPage;
  uint64_t catalog_size = 0;
};

/// A stored byte string: the head of its page chain and its on-store size
/// (payload plus the 4-byte CRC trailer).
struct BlobRef {
  int64_t first_page = kInvalidPage;
  uint64_t size = 0;
};

/// The page-level storage interface. Page 0 is reserved for the backend's
/// header; payload pages have ids >= 1. Not thread-safe: builds are
/// single-threaded, and the serving path reads through a BufferPool.
class IStorageManager {
 public:
  virtual ~IStorageManager() = default;

  /// Fixed page size in bytes (>= kMinPageSize).
  virtual size_t page_size() const = 0;
  /// Pages in the store, including page 0.
  virtual int64_t page_count() const = 0;

  /// Allocates a page (reusing a freed one when available) and returns its
  /// id, stable for the life of the store. The page's contents are
  /// unspecified until the first WritePage.
  virtual int64_t AllocatePage() = 0;
  /// Writes one full page (`data` holds page_size() bytes). `page` must be
  /// a live payload page.
  virtual void WritePage(int64_t page, const uint8_t* data) = 0;
  /// Reads one full page into `out` (page_size() bytes).
  virtual void ReadPage(int64_t page, uint8_t* out) const = 0;
  /// Returns a page to the free list.
  virtual void FreePage(int64_t page) = 0;

  /// Persists header + metadata (no-op for the memory backend). Returns
  /// false on an I/O failure.
  virtual bool Flush() = 0;

  /// The deployment metadata carried by the store header.
  const StoreMeta& meta() const { return meta_; }
  void set_meta(const StoreMeta& meta) { meta_ = meta; }

 protected:
  StoreMeta meta_;
};

/// In-memory page store; the default backend. No persistence: Flush is a
/// no-op and the store dies with the process.
class MemoryStorageManager : public IStorageManager {
 public:
  explicit MemoryStorageManager(size_t page_size = kDefaultPageSize);

  size_t page_size() const override { return page_size_; }
  int64_t page_count() const override {
    return static_cast<int64_t>(pages_.size());
  }
  int64_t AllocatePage() override;
  void WritePage(int64_t page, const uint8_t* data) override;
  void ReadPage(int64_t page, uint8_t* out) const override;
  void FreePage(int64_t page) override;
  bool Flush() override { return true; }

 private:
  size_t page_size_;
  /// pages_[0] exists but is never written (header is meta_ directly).
  std::vector<std::vector<uint8_t>> pages_;
  std::vector<int64_t> free_pages_;
};

/// Single-file page store. Create() starts an empty store (the header page
/// is materialized on Flush); Open() validates magic, version, checksum,
/// and length before returning a readable store.
class FileStorageManager : public IStorageManager {
 public:
  /// Creates (truncating) `path` as an empty store. Returns null on an I/O
  /// failure. Call Flush() after writing to persist the header.
  static std::unique_ptr<FileStorageManager> Create(const std::string& path,
                                                    size_t page_size);

  /// Opens an existing store read/write. On failure returns null and sets
  /// `*status` (kIoError / kBadMagic / kBadVersion / kBadHeaderChecksum /
  /// kTruncated); on success sets kOk.
  static std::unique_ptr<FileStorageManager> Open(const std::string& path,
                                                  OpenStatus* status);

  ~FileStorageManager() override;
  FileStorageManager(const FileStorageManager&) = delete;
  FileStorageManager& operator=(const FileStorageManager&) = delete;

  size_t page_size() const override { return page_size_; }
  int64_t page_count() const override { return page_count_; }
  int64_t AllocatePage() override;
  void WritePage(int64_t page, const uint8_t* data) override;
  void ReadPage(int64_t page, uint8_t* out) const override;
  void FreePage(int64_t page) override;
  bool Flush() override;

 private:
  FileStorageManager(std::FILE* file, size_t page_size);

  std::FILE* file_;
  size_t page_size_;
  int64_t page_count_ = 1;  // page 0 = header
  int64_t free_head_ = kInvalidPage;
};

class BufferPool;

/// Writes `size` bytes as a page chain with a CRC-32 trailer; returns its
/// ref. Pages come from `store->AllocatePage()`.
BlobRef WriteBlob(IStorageManager* store, const uint8_t* data, size_t size);

/// Reads a blob back into `*out` (payload only — the CRC trailer is
/// verified and stripped). Reads go through `pool` when non-null, straight
/// from the store otherwise. Returns false on an inconsistent chain or a
/// CRC mismatch (the kBadBlob condition).
bool ReadBlob(const IStorageManager& store, BufferPool* pool,
              const BlobRef& ref, std::vector<uint8_t>* out);

}  // namespace lbsq::storage

#endif  // LBSQ_STORAGE_STORAGE_MANAGER_H_
