#include "storage/buffer_pool.h"

#include "common/check.h"

namespace lbsq::storage {

BufferPool::BufferPool(const IStorageManager* store, size_t capacity)
    : store_(store), frames_(capacity) {
  LBSQ_CHECK(store != nullptr);
  LBSQ_CHECK_GE(capacity, size_t{1});
  page_to_frame_.reserve(capacity);
}

const uint8_t* BufferPool::Pin(int64_t page) {
  LBSQ_CHECK(page >= 1 && page < store_->page_count());
  const auto it = page_to_frame_.find(page);
  if (it != page_to_frame_.end()) {
    ++hits_;
    Frame& frame = frames_[it->second];
    ++frame.pins;
    frame.referenced = true;
    return frame.data.data();
  }
  ++misses_;
  const size_t slot = FindVictim();
  Frame& frame = frames_[slot];
  if (frame.page != kInvalidPage) {
    ++evictions_;
    page_to_frame_.erase(frame.page);
  }
  frame.page = page;
  frame.pins = 1;
  frame.referenced = true;
  frame.data.resize(store_->page_size());
  store_->ReadPage(page, frame.data.data());
  page_to_frame_.emplace(page, slot);
  return frame.data.data();
}

void BufferPool::Unpin(int64_t page) {
  const auto it = page_to_frame_.find(page);
  LBSQ_CHECK(it != page_to_frame_.end());
  Frame& frame = frames_[it->second];
  LBSQ_CHECK_GT(frame.pins, 0);
  --frame.pins;
}

size_t BufferPool::FindVictim() {
  // Two full sweeps suffice: the first clears every reference bit the hand
  // passes, so the second must find an unpinned frame — unless every frame
  // is pinned, which is a caller bug.
  const size_t limit = 2 * frames_.size() + 1;
  for (size_t step = 0; step < limit; ++step) {
    Frame& frame = frames_[clock_hand_];
    const size_t slot = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (frame.page == kInvalidPage) return slot;
    if (frame.pins > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    return slot;
  }
  LBSQ_CHECK(false && "BufferPool: all frames pinned");
  return 0;
}

double BufferPool::HitRatio() const {
  const uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

void BufferPool::ExportMetrics(MetricsRegistry* registry) const {
  registry->IncrementCounter("storage.pool_hits",
                             static_cast<int64_t>(hits_));
  registry->IncrementCounter("storage.pool_misses",
                             static_cast<int64_t>(misses_));
  registry->IncrementCounter("storage.pool_evictions",
                             static_cast<int64_t>(evictions_));
}

}  // namespace lbsq::storage
