#ifndef LBSQ_STORAGE_SYSTEM_BUILDER_H_
#define LBSQ_STORAGE_SYSTEM_BUILDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "broadcast/system.h"
#include "core/query_engine.h"
#include "core/sharded_query_engine.h"
#include "geom/rect.h"
#include "spatial/poi.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"

/// \file
/// The one vocabulary for constructing broadcast systems. Every driver —
/// simulator, server, benches, examples, the dynamic-world versioner —
/// builds channels through `SystemBuilder` instead of calling
/// `BroadcastSystem` / `ShardedQueryEngine` constructors directly, so the
/// two dataset sources compose with every deployment shape:
///
///  - `BuildFromPois(pois)` — build from a POI list (today's path).
///  - `OpenFromStore(store, pool)` — reassemble from a persisted page
///    store: decode the CRC-framed bucket wire bytes, the air-index
///    segment, and the shard map; skip the Hilbert sort/bucketization that
///    dominates cold starts. The result is *state-identical* to the
///    equivalent BuildFromPois — same POIs in the same order, same
///    buckets, same index, same schedule — so answer digests are
///    bit-identical by construction (system_store_test diffs them on the
///    Table-3 LA workload).
///
/// `WriteStore` persists a built engine into any `IStorageManager`; the
/// header carries the builder's dataset digest and build parameters, and
/// `OpenFromStore` rejects a store whose header disagrees with the
/// requested deployment (typed `OpenStatus`, no silent wrong-world
/// serving).

namespace lbsq::storage {

class SystemBuilder {
 public:
  /// A builder for deployments over `world` with channel organization
  /// `params`. The setters return *this for chaining.
  SystemBuilder(const geom::Rect& world,
                const broadcast::BroadcastParams& params);

  /// Engine options shared by every shard (default: EngineOptions{}).
  SystemBuilder& SetOptions(const core::EngineOptions& options);
  /// Hilbert-range shard count (default 1; >= 1).
  SystemBuilder& SetShards(int shards);
  /// Dataset digest stamped into stores and verified on open (default 0 =
  /// unchecked identity; the tools pass sim::DatasetSpec::Digest()).
  SystemBuilder& SetDatasetTag(uint64_t tag);

  /// Builds the sharded engine from a POI list: partitions into the
  /// configured shard count and builds one broadcast system per non-empty
  /// shard. With 1 shard this is byte-identical to an unsharded system.
  std::unique_ptr<core::ShardedQueryEngine> BuildFromPois(
      std::vector<spatial::Poi> pois) const;

  /// Builds one standalone broadcast channel (no sharding, no engine) —
  /// the examples / dynamic-rebuild path.
  std::unique_ptr<broadcast::BroadcastSystem> BuildSystemFromPois(
      std::vector<spatial::Poi> pois) const;

  /// Diff-aware variant of BuildSystemFromPois: patches `base` with the net
  /// `delta` instead of re-running the global sort (see
  /// broadcast::BroadcastSystem::PatchFrom — the result is bit-identical to
  /// the full build, exactly as OpenFromStore is state-identical). Returns
  /// null when patching does not apply; the caller falls back to
  /// BuildSystemFromPois and counts it. Composes with OpenFromStore: a
  /// system reopened from a store is a valid `base`.
  std::unique_ptr<broadcast::BroadcastSystem> PatchSystemFromBase(
      const broadcast::BroadcastSystem& base, std::vector<spatial::Poi> pois,
      const broadcast::SystemDelta& delta,
      broadcast::PatchStats* stats) const;

  /// Persists every built artifact of `engine` — per-shard POIs, the
  /// CRC-framed bucket wire bytes, the air-index segment bytes, the shard
  /// map — into `store` (which must be freshly created) and stamps the
  /// checksummed header. Flushes the store; returns false on an I/O
  /// failure.
  bool WriteStore(const core::ShardedQueryEngine& engine,
                  IStorageManager* store) const;

  /// Reassembles an engine from a persisted store. Header validation
  /// happens first: the store's dataset digest must equal the builder's
  /// tag (kDatasetMismatch) and its build parameters must equal the
  /// builder's world + params (kParamsMismatch). Blob decode failures
  /// surface as kBadBlob. Page reads go through `pool` when non-null.
  /// Returns null and sets `*status` on failure; kOk on success.
  std::unique_ptr<core::ShardedQueryEngine> OpenFromStore(
      const IStorageManager& store, BufferPool* pool,
      OpenStatus* status) const;

  const geom::Rect& world() const { return world_; }
  const broadcast::BroadcastParams& params() const { return params_; }
  int shards() const { return shards_; }
  uint64_t dataset_tag() const { return dataset_tag_; }

 private:
  geom::Rect world_;
  broadcast::BroadcastParams params_;
  core::EngineOptions options_;
  int shards_ = 1;
  uint64_t dataset_tag_ = 0;
};

}  // namespace lbsq::storage

#endif  // LBSQ_STORAGE_SYSTEM_BUILDER_H_
