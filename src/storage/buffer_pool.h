#ifndef LBSQ_STORAGE_BUFFER_POOL_H_
#define LBSQ_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/metrics_registry.h"
#include "storage/storage_manager.h"

/// \file
/// A fixed-capacity read cache over an `IStorageManager`: `capacity` frames
/// of one page each, replaced with the clock (second-chance) policy. Pinned
/// pages are never evicted; pinning an all-pinned full pool is a
/// programming error (LBSQ_CHECK). Hit / miss / eviction counters flow into
/// the `MetricsRegistry` under `storage.*`.
///
/// The pool is read-only by design: the store is written once by the
/// builder and served immutable thereafter (writes go straight to the
/// storage manager), so there are no dirty frames and eviction never does
/// I/O. Not thread-safe — each reader owns its pool, mirroring the
/// per-thread `QueryWorkspace` discipline.

namespace lbsq::storage {

class BufferPool {
 public:
  /// A pool of `capacity` frames (>= 1) over `store`. The store must
  /// outlive the pool.
  BufferPool(const IStorageManager* store, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the frame holding `page`, faulting it in (and possibly
  /// evicting an unpinned frame) on a miss. The frame stays valid — and
  /// ineligible for eviction — until the matching Unpin. Pins nest.
  const uint8_t* Pin(int64_t page);

  /// Releases one pin on `page` (which must be pinned).
  void Unpin(int64_t page);

  size_t capacity() const { return frames_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  /// Fraction of Pins served from the pool (0 when never used).
  double HitRatio() const;

  /// Folds the counters into `registry` as `storage.pool_hits`,
  /// `storage.pool_misses`, `storage.pool_evictions`.
  void ExportMetrics(MetricsRegistry* registry) const;

 private:
  struct Frame {
    int64_t page = kInvalidPage;
    int pins = 0;
    /// The clock's second-chance bit, set on every Pin hit.
    bool referenced = false;
    std::vector<uint8_t> data;
  };

  /// Picks the frame to load into: an empty one, else the first unpinned
  /// frame the clock hand reaches whose reference bit is clear.
  size_t FindVictim();

  const IStorageManager* store_;
  std::vector<Frame> frames_;
  std::unordered_map<int64_t, size_t> page_to_frame_;
  size_t clock_hand_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace lbsq::storage

#endif  // LBSQ_STORAGE_BUFFER_POOL_H_
