#ifndef LBSQ_SPATIAL_QUADTREE_H_
#define LBSQ_SPATIAL_QUADTREE_H_

#include <memory>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "spatial/poi.h"

/// \file
/// Point-region (PR) quadtree. The paper's related work uses the quadtree
/// family for window queries (Aboulnaga & Aref); we provide it as an
/// alternative window-query index and as a cross-check for the R-tree.

namespace lbsq::spatial {

/// Bucket PR quadtree over a fixed world rectangle.
class QuadTree {
 public:
  /// Tree over `world`; leaves split when they exceed `bucket_capacity`
  /// POIs (unless `max_depth` is reached, in which case leaves overflow).
  explicit QuadTree(const geom::Rect& world, int bucket_capacity = 8,
                    int max_depth = 16);

  QuadTree(const QuadTree&) = delete;
  QuadTree& operator=(const QuadTree&) = delete;

  /// Inserts one POI; its position must lie inside the world rectangle.
  void Insert(const Poi& poi);

  /// Inserts a batch of POIs.
  void InsertAll(const std::vector<Poi>& pois);

  /// Number of stored POIs.
  int64_t size() const { return size_; }

  /// All POIs inside `window` (closed), sorted by id.
  std::vector<Poi> WindowQuery(const geom::Rect& window) const;

  /// k nearest neighbors via best-first distance browsing over the quadrant
  /// hierarchy (Hjaltason-Samet applied to the quadtree).
  std::vector<PoiDistance> Knn(geom::Point q, int k) const;

  /// Nodes visited by the most recent query.
  int64_t last_node_accesses() const { return node_accesses_; }

 private:
  struct Node {
    geom::Rect bounds;
    std::vector<Poi> pois;                  // leaf payload
    std::unique_ptr<Node> children[4];      // null for leaves
    bool leaf() const { return children[0] == nullptr; }
  };

  void InsertInto(Node* node, const Poi& poi, int depth);
  void Split(Node* node, int depth);
  static int ChildIndex(const Node& node, geom::Point p);

  int bucket_capacity_;
  int max_depth_;
  int64_t size_ = 0;
  std::unique_ptr<Node> root_;
  mutable int64_t node_accesses_ = 0;
};

}  // namespace lbsq::spatial

#endif  // LBSQ_SPATIAL_QUADTREE_H_
