#ifndef LBSQ_SPATIAL_POI_H_
#define LBSQ_SPATIAL_POI_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "kernels/poi_slab.h"

/// \file
/// Point of interest. Following the paper's notation, an object identifier
/// also stands for its position coordinates.

namespace lbsq::spatial {

/// A point of interest (gas station, hospital, ...). `id` is unique within a
/// data set and is the unit of caching and exchange between peers.
struct Poi {
  int64_t id = -1;
  geom::Point pos;

  friend bool operator==(const Poi& a, const Poi& b) {
    return a.id == b.id && a.pos == b.pos;
  }
};

/// A POI together with its distance to some query point; the currency of the
/// kNN algorithms.
struct PoiDistance {
  Poi poi;
  double distance = 0.0;

  friend bool operator<(const PoiDistance& a, const PoiDistance& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.poi.id < b.poi.id;  // deterministic tie-break
  }
};

/// Brute-force k nearest neighbors — the oracle the index implementations and
/// the sharing algorithms are tested against. Returns min(k, n) results in
/// ascending distance order with deterministic tie-breaking.
std::vector<PoiDistance> BruteForceKnn(const std::vector<Poi>& pois,
                                       geom::Point q, int k);

/// Allocation-free variant through the SoA slab kernels: `*scratch` holds
/// the transpose of `pois` plus the distance/selection buffers (all
/// grow-only), `*out` receives the min(k, n) results. After the call
/// `scratch->slab` still holds the transpose of `pois` — callers may reuse
/// it for follow-up selections over the same set.
void BruteForceKnn(const std::vector<Poi>& pois, geom::Point q, int k,
                   kernels::SlabScratch* scratch,
                   std::vector<PoiDistance>* out);

/// Transient-scratch convenience overload; same result, capacity of `*out`
/// is reused.
void BruteForceKnn(const std::vector<Poi>& pois, geom::Point q, int k,
                   std::vector<PoiDistance>* out);

/// Brute-force window query oracle; results sorted by id.
std::vector<Poi> BruteForceWindow(const std::vector<Poi>& pois,
                                  const geom::Rect& window);

/// Allocation-free variant (see the kNN overload for the scratch contract).
void BruteForceWindow(const std::vector<Poi>& pois, const geom::Rect& window,
                      kernels::SlabScratch* scratch, std::vector<Poi>* out);

}  // namespace lbsq::spatial

#endif  // LBSQ_SPATIAL_POI_H_
