#ifndef LBSQ_SPATIAL_GRID_INDEX_H_
#define LBSQ_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

/// \file
/// Uniform grid over a rectangular world for radius queries on moving
/// points. The simulator uses it to find the single-hop peers of a querying
/// mobile host (all hosts within the wireless transmission range).

namespace lbsq::spatial {

/// Bucketed uniform grid. Rebuild() is O(n); QueryDisc() touches only the
/// buckets overlapping the disc's MBR.
class GridIndex {
 public:
  /// Grid over `world` with roughly `cell_size`-sized square cells. The cell
  /// size is clamped so there are at most ~1M cells.
  GridIndex(const geom::Rect& world, double cell_size);

  /// Replaces the content with `positions`; item i gets id i.
  void Rebuild(const std::vector<geom::Point>& positions);

  /// Appends the ids of all items within distance `radius` of `center`
  /// (closed ball, torus wrap disabled) to `*out`.
  void QueryDisc(geom::Point center, double radius,
                 std::vector<int64_t>* out) const;

  /// Number of indexed items.
  int64_t size() const { return static_cast<int64_t>(positions_.size()); }

  /// Position of item `id` as of the last Rebuild().
  geom::Point position(int64_t id) const {
    return positions_[static_cast<size_t>(id)];
  }

 private:
  int CellIndex(geom::Point p) const;

  geom::Rect world_;
  int nx_;
  int ny_;
  double cell_w_;
  double cell_h_;
  std::vector<geom::Point> positions_;
  std::vector<std::vector<int64_t>> buckets_;
};

}  // namespace lbsq::spatial

#endif  // LBSQ_SPATIAL_GRID_INDEX_H_
