#ifndef LBSQ_SPATIAL_GRID_INDEX_H_
#define LBSQ_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

/// \file
/// Uniform grid over a rectangular world for radius queries on moving
/// points. The simulator uses it to find the single-hop peers of a querying
/// mobile host (all hosts within the wireless transmission range).

namespace lbsq::spatial {

/// Bucketed uniform grid. Rebuild() is O(n); QueryDisc() touches only the
/// buckets overlapping the disc's MBR. Storage is a CSR-style slab: one
/// contiguous structure-of-arrays block (`ids/xs/ys`) ordered by cell with a
/// per-cell offset table, so a disc query streams each row of overlapped
/// cells through the SIMD radius-select kernel in a single contiguous scan.
class GridIndex {
 public:
  /// Grid over `world` with roughly `cell_size`-sized square cells. The cell
  /// size is clamped so there are at most ~1M cells.
  GridIndex(const geom::Rect& world, double cell_size);

  /// Replaces the content with `positions`; item i gets id i.
  void Rebuild(const std::vector<geom::Point>& positions);

  /// Diff-aware Rebuild for the common case where the same items moved a
  /// little: items that stayed in their cell are updated in place in the
  /// slab (no re-count, no scatter), and only the rows of cells someone
  /// crossed into or out of are re-merged; clean rows are block-copied.
  /// Falls back to Rebuild when the item count changed. The resulting index
  /// is bit-identical to `Rebuild(positions)` — same CSR offsets, same
  /// ascending-id rows — so query results cannot depend on which path built
  /// it.
  void ApplyMoves(const std::vector<geom::Point>& positions);

  /// Appends the ids of all items within distance `radius` of `center`
  /// (closed ball, torus wrap disabled) to `*out`. `*out` is reserved up
  /// front from the overlapped buckets' exact population, so the appends
  /// never reallocate beyond that bound.
  void QueryDisc(geom::Point center, double radius,
                 std::vector<int64_t>* out) const;

  /// Number of indexed items.
  int64_t size() const { return static_cast<int64_t>(positions_.size()); }

  /// Position of item `id` as of the last Rebuild().
  geom::Point position(int64_t id) const {
    return positions_[static_cast<size_t>(id)];
  }

 private:
  int CellIndex(geom::Point p) const;

  geom::Rect world_;
  int nx_;
  int ny_;
  double cell_w_;
  double cell_h_;
  std::vector<geom::Point> positions_;
  /// CSR offsets: cell c's items live at slab positions
  /// [cell_start_[c], cell_start_[c + 1]), in insertion (ascending id)
  /// order. cell_cursor_ is Rebuild's scatter scratch (grow-only).
  std::vector<int64_t> cell_start_;
  std::vector<int64_t> cell_cursor_;
  /// The SoA slab, ordered by cell.
  std::vector<int64_t> ids_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  /// Reverse maps maintained by Rebuild/ApplyMoves: item id -> its cell and
  /// its slab slot (what lets ApplyMoves patch in place).
  std::vector<int> cell_of_;
  std::vector<int64_t> slot_of_;

  /// ApplyMoves scratch (grow-only, reused across calls).
  struct Mover {
    int64_t id;
    int from;
    int to;
  };
  std::vector<Mover> movers_;
  std::vector<int> dirty_cells_;
  std::vector<std::pair<int, int64_t>> leavers_;
  std::vector<std::pair<int, int64_t>> arrivers_;
  std::vector<int64_t> new_start_;
  std::vector<int64_t> new_ids_;
  std::vector<double> new_xs_;
  std::vector<double> new_ys_;
};

}  // namespace lbsq::spatial

#endif  // LBSQ_SPATIAL_GRID_INDEX_H_
