#ifndef LBSQ_SPATIAL_RTREE_H_
#define LBSQ_SPATIAL_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "spatial/poi.h"

/// \file
/// Guttman R-tree with quadratic split, plus the two classic kNN search
/// strategies the paper's related-work section cites: depth-first
/// branch-and-bound (Roussopoulos et al.) and best-first distance browsing
/// (Hjaltason & Samet). The server-side spatial database and several test
/// oracles are built on this index.

namespace lbsq::spatial {

/// Dynamic R-tree over POIs.
class RTree {
 public:
  /// Creates a tree with the given node fan-out. `max_entries` >= 4;
  /// `min_entries` defaults to max/2 as in Guttman's evaluation.
  explicit RTree(int max_entries = 8, int min_entries = 0);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  /// Inserts one POI.
  void Insert(const Poi& poi);

  /// Inserts a batch of POIs.
  void InsertAll(const std::vector<Poi>& pois);

  /// Builds a packed tree with Sort-Tile-Recursive bulk loading (Leutenegger
  /// et al.): leaves tile the data in sqrt(n/M) x sqrt(n/M) x-then-y sorted
  /// runs, upper levels pack recursively. Produces near-100% node occupancy
  /// and tighter MBRs than one-at-a-time insertion; tail nodes are rebalanced
  /// so the min-occupancy invariant holds everywhere.
  static RTree BulkLoadStr(const std::vector<Poi>& pois, int max_entries = 8,
                           int min_entries = 0);

  /// Number of stored POIs.
  int64_t size() const { return size_; }

  /// Height of the tree (0 when empty, 1 for a single leaf).
  int Height() const;

  /// All POIs whose position lies inside `window` (closed), sorted by id.
  std::vector<Poi> WindowQuery(const geom::Rect& window) const;

  /// k nearest neighbors via best-first distance browsing (optimal in node
  /// accesses). Ascending distance, deterministic ties.
  std::vector<PoiDistance> KnnBestFirst(geom::Point q, int k) const;

  /// k nearest neighbors via depth-first branch-and-bound with MINDIST
  /// ordering and pruning. Same results as KnnBestFirst.
  std::vector<PoiDistance> KnnDepthFirst(geom::Point q, int k) const;

  /// Node accesses performed by the most recent query on this tree;
  /// the currency of the ablation benchmark comparing the two kNN searches.
  int64_t last_node_accesses() const { return node_accesses_; }

  /// Validates the R-tree structural invariants (MBR containment, entry
  /// counts, uniform leaf depth). Intended for tests; aborts on violation.
  void CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    geom::Rect mbr;
    std::unique_ptr<Node> child;  // null for leaf entries
    Poi poi;                      // valid for leaf entries
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
    geom::Rect Mbr() const;
  };

  std::unique_ptr<Node> SplitNode(Node* node) const;
  static void PickSeeds(const std::vector<Entry>& entries, size_t* a,
                        size_t* b);

  int max_entries_;
  int min_entries_;
  int64_t size_ = 0;
  std::unique_ptr<Node> root_;
  mutable int64_t node_accesses_ = 0;
};

}  // namespace lbsq::spatial

#endif  // LBSQ_SPATIAL_RTREE_H_
