#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lbsq::spatial {

GridIndex::GridIndex(const geom::Rect& world, double cell_size)
    : world_(world) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(cell_size > 0.0);
  const double min_cell_w = world.width() / 1024.0;
  const double min_cell_h = world.height() / 1024.0;
  cell_w_ = std::max(cell_size, min_cell_w);
  cell_h_ = std::max(cell_size, min_cell_h);
  nx_ = std::max(1, static_cast<int>(std::ceil(world.width() / cell_w_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(world.height() / cell_h_)));
  buckets_.resize(static_cast<size_t>(nx_) * static_cast<size_t>(ny_));
}

int GridIndex::CellIndex(geom::Point p) const {
  int cx = static_cast<int>(std::floor((p.x - world_.x1) / cell_w_));
  int cy = static_cast<int>(std::floor((p.y - world_.y1) / cell_h_));
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return cy * nx_ + cx;
}

void GridIndex::Rebuild(const std::vector<geom::Point>& positions) {
  for (auto& bucket : buckets_) bucket.clear();
  positions_ = positions;
  for (size_t i = 0; i < positions_.size(); ++i) {
    buckets_[static_cast<size_t>(CellIndex(positions_[i]))].push_back(
        static_cast<int64_t>(i));
  }
}

void GridIndex::QueryDisc(geom::Point center, double radius,
                          std::vector<int64_t>* out) const {
  const double r2 = radius * radius;
  int cx_lo = static_cast<int>(std::floor((center.x - radius - world_.x1) / cell_w_));
  int cx_hi = static_cast<int>(std::floor((center.x + radius - world_.x1) / cell_w_));
  int cy_lo = static_cast<int>(std::floor((center.y - radius - world_.y1) / cell_h_));
  int cy_hi = static_cast<int>(std::floor((center.y + radius - world_.y1) / cell_h_));
  cx_lo = std::clamp(cx_lo, 0, nx_ - 1);
  cx_hi = std::clamp(cx_hi, 0, nx_ - 1);
  cy_lo = std::clamp(cy_lo, 0, ny_ - 1);
  cy_hi = std::clamp(cy_hi, 0, ny_ - 1);
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      for (int64_t id : buckets_[static_cast<size_t>(cy * nx_ + cx)]) {
        if (geom::DistanceSquared(positions_[static_cast<size_t>(id)],
                                  center) <= r2) {
          out->push_back(id);
        }
      }
    }
  }
}

}  // namespace lbsq::spatial
