#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "kernels/kernels.h"

namespace lbsq::spatial {

GridIndex::GridIndex(const geom::Rect& world, double cell_size)
    : world_(world) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(cell_size > 0.0);
  const double min_cell_w = world.width() / 1024.0;
  const double min_cell_h = world.height() / 1024.0;
  cell_w_ = std::max(cell_size, min_cell_w);
  cell_h_ = std::max(cell_size, min_cell_h);
  nx_ = std::max(1, static_cast<int>(std::ceil(world.width() / cell_w_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(world.height() / cell_h_)));
  cell_start_.assign(
      static_cast<size_t>(nx_) * static_cast<size_t>(ny_) + 1, 0);
}

int GridIndex::CellIndex(geom::Point p) const {
  int cx = static_cast<int>(std::floor((p.x - world_.x1) / cell_w_));
  int cy = static_cast<int>(std::floor((p.y - world_.y1) / cell_h_));
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return cy * nx_ + cx;
}

void GridIndex::Rebuild(const std::vector<geom::Point>& positions) {
  positions_ = positions;
  const size_t n = positions_.size();
  const size_t ncells =
      static_cast<size_t>(nx_) * static_cast<size_t>(ny_);
  // Counting sort into the CSR slab: count, prefix-sum, scatter. Scatter in
  // ascending id order keeps each cell's items in insertion order, exactly
  // the per-bucket order the old vector-of-vectors layout produced.
  cell_start_.assign(ncells + 1, 0);
  for (const geom::Point& p : positions_) {
    ++cell_start_[static_cast<size_t>(CellIndex(p)) + 1];
  }
  for (size_t c = 0; c < ncells; ++c) cell_start_[c + 1] += cell_start_[c];
  ids_.resize(n);
  xs_.resize(n);
  ys_.resize(n);
  cell_cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    const geom::Point p = positions_[i];
    const size_t slot = static_cast<size_t>(
        cell_cursor_[static_cast<size_t>(CellIndex(p))]++);
    ids_[slot] = static_cast<int64_t>(i);
    xs_[slot] = p.x;
    ys_[slot] = p.y;
  }
}

void GridIndex::QueryDisc(geom::Point center, double radius,
                          std::vector<int64_t>* out) const {
  const double r2 = radius * radius;
  int cx_lo = static_cast<int>(std::floor((center.x - radius - world_.x1) / cell_w_));
  int cx_hi = static_cast<int>(std::floor((center.x + radius - world_.x1) / cell_w_));
  int cy_lo = static_cast<int>(std::floor((center.y - radius - world_.y1) / cell_h_));
  int cy_hi = static_cast<int>(std::floor((center.y + radius - world_.y1) / cell_h_));
  cx_lo = std::clamp(cx_lo, 0, nx_ - 1);
  cx_hi = std::clamp(cx_hi, 0, nx_ - 1);
  cy_lo = std::clamp(cy_lo, 0, ny_ - 1);
  cy_hi = std::clamp(cy_hi, 0, ny_ - 1);
  // The cells of one row are adjacent in the CSR slab, so each row is one
  // contiguous [lo, hi) scan. First pass sizes the output exactly from the
  // bucket populations; second streams the rows through the radius kernel.
  size_t candidates = 0;
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    const size_t row = static_cast<size_t>(cy) * static_cast<size_t>(nx_);
    candidates += static_cast<size_t>(
        cell_start_[row + static_cast<size_t>(cx_hi) + 1] -
        cell_start_[row + static_cast<size_t>(cx_lo)]);
  }
  out->reserve(out->size() + candidates);
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    const size_t row = static_cast<size_t>(cy) * static_cast<size_t>(nx_);
    const size_t lo = static_cast<size_t>(
        cell_start_[row + static_cast<size_t>(cx_lo)]);
    const size_t hi = static_cast<size_t>(
        cell_start_[row + static_cast<size_t>(cx_hi) + 1]);
    kernels::AppendIdsWithinRadius(xs_.data() + lo, ys_.data() + lo,
                                   ids_.data() + lo, hi - lo, center.x,
                                   center.y, r2, out);
  }
}

}  // namespace lbsq::spatial
