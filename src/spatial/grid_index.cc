#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "kernels/kernels.h"

namespace lbsq::spatial {

GridIndex::GridIndex(const geom::Rect& world, double cell_size)
    : world_(world) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(cell_size > 0.0);
  const double min_cell_w = world.width() / 1024.0;
  const double min_cell_h = world.height() / 1024.0;
  cell_w_ = std::max(cell_size, min_cell_w);
  cell_h_ = std::max(cell_size, min_cell_h);
  nx_ = std::max(1, static_cast<int>(std::ceil(world.width() / cell_w_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(world.height() / cell_h_)));
  cell_start_.assign(
      static_cast<size_t>(nx_) * static_cast<size_t>(ny_) + 1, 0);
}

int GridIndex::CellIndex(geom::Point p) const {
  int cx = static_cast<int>(std::floor((p.x - world_.x1) / cell_w_));
  int cy = static_cast<int>(std::floor((p.y - world_.y1) / cell_h_));
  cx = std::clamp(cx, 0, nx_ - 1);
  cy = std::clamp(cy, 0, ny_ - 1);
  return cy * nx_ + cx;
}

void GridIndex::Rebuild(const std::vector<geom::Point>& positions) {
  positions_ = positions;
  const size_t n = positions_.size();
  const size_t ncells =
      static_cast<size_t>(nx_) * static_cast<size_t>(ny_);
  // Counting sort into the CSR slab: count, prefix-sum, scatter. Scatter in
  // ascending id order keeps each cell's items in insertion order, exactly
  // the per-bucket order the old vector-of-vectors layout produced.
  cell_start_.assign(ncells + 1, 0);
  for (const geom::Point& p : positions_) {
    ++cell_start_[static_cast<size_t>(CellIndex(p)) + 1];
  }
  for (size_t c = 0; c < ncells; ++c) cell_start_[c + 1] += cell_start_[c];
  ids_.resize(n);
  xs_.resize(n);
  ys_.resize(n);
  cell_cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
  cell_of_.resize(n);
  slot_of_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const geom::Point p = positions_[i];
    const int cell = CellIndex(p);
    const size_t slot =
        static_cast<size_t>(cell_cursor_[static_cast<size_t>(cell)]++);
    ids_[slot] = static_cast<int64_t>(i);
    xs_[slot] = p.x;
    ys_[slot] = p.y;
    cell_of_[i] = cell;
    slot_of_[i] = static_cast<int64_t>(slot);
  }
}

void GridIndex::ApplyMoves(const std::vector<geom::Point>& positions) {
  const size_t n = positions.size();
  if (n != positions_.size() || cell_of_.size() != n) {
    Rebuild(positions);
    return;
  }
  // Pass 1: stayers are patched in place (one cell hash + two stores; no
  // counting pass, no scatter); cell-crossers are queued for the merge.
  movers_.clear();
  for (size_t i = 0; i < n; ++i) {
    const geom::Point p = positions[i];
    positions_[i] = p;
    const int cell = CellIndex(p);
    if (cell == cell_of_[i]) {
      const size_t slot = static_cast<size_t>(slot_of_[i]);
      xs_[slot] = p.x;
      ys_[slot] = p.y;
    } else {
      movers_.push_back(Mover{static_cast<int64_t>(i), cell_of_[i], cell});
    }
  }
  if (movers_.empty()) return;

  // Dirty cells: every cell a mover left or entered. All other rows are
  // byte-identical to what Rebuild would produce and get block-copied —
  // Rebuild scatters in ascending id order and the merge below preserves it.
  dirty_cells_.clear();
  leavers_.clear();
  arrivers_.clear();
  for (const Mover& m : movers_) {
    dirty_cells_.push_back(m.from);
    dirty_cells_.push_back(m.to);
    leavers_.emplace_back(m.from, m.id);
    arrivers_.emplace_back(m.to, m.id);
    cell_of_[static_cast<size_t>(m.id)] = m.to;
  }
  std::sort(dirty_cells_.begin(), dirty_cells_.end());
  dirty_cells_.erase(std::unique(dirty_cells_.begin(), dirty_cells_.end()),
                     dirty_cells_.end());
  std::sort(leavers_.begin(), leavers_.end());
  std::sort(arrivers_.begin(), arrivers_.end());

  const size_t ncells = static_cast<size_t>(nx_) * static_cast<size_t>(ny_);
  new_start_.resize(ncells + 1);
  new_ids_.resize(n);
  new_xs_.resize(n);
  new_ys_.resize(n);

  // One sweep over the cell range: between consecutive dirty cells every
  // row keeps its size, so the whole span shifts by one constant delta and
  // copies as a single block; a dirty cell re-merges its stayers (already
  // ascending by id) with its arrivers (sorted above).
  size_t li = 0;
  size_t ai = 0;
  size_t out = 0;
  int prev = 0;  // First cell of the pending clean span.
  const auto copy_span = [&](int span_end) {
    const size_t src_lo = static_cast<size_t>(cell_start_[size_t(prev)]);
    const size_t src_hi = static_cast<size_t>(cell_start_[size_t(span_end)]);
    const int64_t delta =
        static_cast<int64_t>(out) - static_cast<int64_t>(src_lo);
    for (int c = prev; c < span_end; ++c) {
      new_start_[static_cast<size_t>(c)] = cell_start_[size_t(c)] + delta;
    }
    std::copy(ids_.begin() + static_cast<ptrdiff_t>(src_lo),
              ids_.begin() + static_cast<ptrdiff_t>(src_hi),
              new_ids_.begin() + static_cast<ptrdiff_t>(out));
    std::copy(xs_.begin() + static_cast<ptrdiff_t>(src_lo),
              xs_.begin() + static_cast<ptrdiff_t>(src_hi),
              new_xs_.begin() + static_cast<ptrdiff_t>(out));
    std::copy(ys_.begin() + static_cast<ptrdiff_t>(src_lo),
              ys_.begin() + static_cast<ptrdiff_t>(src_hi),
              new_ys_.begin() + static_cast<ptrdiff_t>(out));
    if (delta != 0) {
      for (size_t j = out; j < out + (src_hi - src_lo); ++j) {
        slot_of_[static_cast<size_t>(new_ids_[j])] = static_cast<int64_t>(j);
      }
    }
    out += src_hi - src_lo;
  };
  for (const int dc : dirty_cells_) {
    copy_span(dc);
    new_start_[static_cast<size_t>(dc)] = static_cast<int64_t>(out);
    // Merge this cell's stayers with its arrivers, ascending by id.
    size_t p = static_cast<size_t>(cell_start_[size_t(dc)]);
    const size_t p_end = static_cast<size_t>(cell_start_[size_t(dc) + 1]);
    while (p < p_end || (ai < arrivers_.size() && arrivers_[ai].first == dc)) {
      if (p < p_end && li < leavers_.size() && leavers_[li].first == dc &&
          leavers_[li].second == ids_[p]) {
        ++p;
        ++li;
        continue;
      }
      const bool take_arriver =
          ai < arrivers_.size() && arrivers_[ai].first == dc &&
          (p >= p_end || arrivers_[ai].second < ids_[p]);
      if (take_arriver) {
        const int64_t id = arrivers_[ai++].second;
        const geom::Point q = positions_[static_cast<size_t>(id)];
        new_ids_[out] = id;
        new_xs_[out] = q.x;
        new_ys_[out] = q.y;
      } else {
        new_ids_[out] = ids_[p];
        new_xs_[out] = xs_[p];
        new_ys_[out] = ys_[p];
        ++p;
      }
      slot_of_[static_cast<size_t>(new_ids_[out])] =
          static_cast<int64_t>(out);
      ++out;
    }
    prev = dc + 1;
  }
  copy_span(static_cast<int>(ncells));
  new_start_[ncells] = static_cast<int64_t>(n);
  LBSQ_CHECK_EQ(out, n);

  cell_start_.swap(new_start_);
  ids_.swap(new_ids_);
  xs_.swap(new_xs_);
  ys_.swap(new_ys_);
}

void GridIndex::QueryDisc(geom::Point center, double radius,
                          std::vector<int64_t>* out) const {
  const double r2 = radius * radius;
  int cx_lo = static_cast<int>(std::floor((center.x - radius - world_.x1) / cell_w_));
  int cx_hi = static_cast<int>(std::floor((center.x + radius - world_.x1) / cell_w_));
  int cy_lo = static_cast<int>(std::floor((center.y - radius - world_.y1) / cell_h_));
  int cy_hi = static_cast<int>(std::floor((center.y + radius - world_.y1) / cell_h_));
  cx_lo = std::clamp(cx_lo, 0, nx_ - 1);
  cx_hi = std::clamp(cx_hi, 0, nx_ - 1);
  cy_lo = std::clamp(cy_lo, 0, ny_ - 1);
  cy_hi = std::clamp(cy_hi, 0, ny_ - 1);
  // The cells of one row are adjacent in the CSR slab, so each row is one
  // contiguous [lo, hi) scan. First pass sizes the output exactly from the
  // bucket populations; second streams the rows through the radius kernel.
  size_t candidates = 0;
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    const size_t row = static_cast<size_t>(cy) * static_cast<size_t>(nx_);
    candidates += static_cast<size_t>(
        cell_start_[row + static_cast<size_t>(cx_hi) + 1] -
        cell_start_[row + static_cast<size_t>(cx_lo)]);
  }
  out->reserve(out->size() + candidates);
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    const size_t row = static_cast<size_t>(cy) * static_cast<size_t>(nx_);
    const size_t lo = static_cast<size_t>(
        cell_start_[row + static_cast<size_t>(cx_lo)]);
    const size_t hi = static_cast<size_t>(
        cell_start_[row + static_cast<size_t>(cx_hi) + 1]);
    kernels::AppendIdsWithinRadius(xs_.data() + lo, ys_.data() + lo,
                                   ids_.data() + lo, hi - lo, center.x,
                                   center.y, r2, out);
  }
}

}  // namespace lbsq::spatial
