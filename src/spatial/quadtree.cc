#include "spatial/quadtree.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace lbsq::spatial {

QuadTree::QuadTree(const geom::Rect& world, int bucket_capacity, int max_depth)
    : bucket_capacity_(bucket_capacity), max_depth_(max_depth) {
  LBSQ_CHECK(!world.empty());
  LBSQ_CHECK(bucket_capacity >= 1);
  LBSQ_CHECK(max_depth >= 1);
  root_ = std::make_unique<Node>();
  root_->bounds = world;
}

int QuadTree::ChildIndex(const Node& node, geom::Point p) {
  const geom::Point c = node.bounds.center();
  return (p.x >= c.x ? 1 : 0) + (p.y >= c.y ? 2 : 0);
}

void QuadTree::Split(Node* node, int depth) {
  (void)depth;
  const geom::Rect& b = node->bounds;
  const geom::Point c = b.center();
  node->children[0] = std::make_unique<Node>();
  node->children[0]->bounds = geom::Rect{b.x1, b.y1, c.x, c.y};
  node->children[1] = std::make_unique<Node>();
  node->children[1]->bounds = geom::Rect{c.x, b.y1, b.x2, c.y};
  node->children[2] = std::make_unique<Node>();
  node->children[2]->bounds = geom::Rect{b.x1, c.y, c.x, b.y2};
  node->children[3] = std::make_unique<Node>();
  node->children[3]->bounds = geom::Rect{c.x, c.y, b.x2, b.y2};
  std::vector<Poi> pois = std::move(node->pois);
  node->pois.clear();
  for (const Poi& p : pois) {
    node->children[static_cast<size_t>(ChildIndex(*node, p.pos))]
        ->pois.push_back(p);
  }
}

void QuadTree::InsertInto(Node* node, const Poi& poi, int depth) {
  if (!node->leaf()) {
    InsertInto(node->children[static_cast<size_t>(ChildIndex(*node, poi.pos))]
                   .get(),
               poi, depth + 1);
    return;
  }
  node->pois.push_back(poi);
  if (static_cast<int>(node->pois.size()) > bucket_capacity_ &&
      depth < max_depth_) {
    Split(node, depth);
  }
}

void QuadTree::Insert(const Poi& poi) {
  LBSQ_CHECK(root_->bounds.Contains(poi.pos));
  InsertInto(root_.get(), poi, 0);
  ++size_;
}

void QuadTree::InsertAll(const std::vector<Poi>& pois) {
  for (const Poi& p : pois) Insert(p);
}

std::vector<Poi> QuadTree::WindowQuery(const geom::Rect& window) const {
  node_accesses_ = 0;
  std::vector<Poi> result;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++node_accesses_;
    if (!window.Intersects(node->bounds)) continue;
    if (node->leaf()) {
      for (const Poi& p : node->pois) {
        if (window.Contains(p.pos)) result.push_back(p);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Poi& a, const Poi& b) { return a.id < b.id; });
  return result;
}

std::vector<PoiDistance> QuadTree::Knn(geom::Point q, int k) const {
  node_accesses_ = 0;
  std::vector<PoiDistance> result;
  if (k <= 0 || size_ == 0) return result;
  struct QueueItem {
    double distance;
    int64_t tie;       // POI id for objects, -1 for nodes
    const Node* node;  // null for object items
    Poi poi;
  };
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    if (a.distance != b.distance) return a.distance > b.distance;
    return a.tie > b.tie;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> queue(
      cmp);
  queue.push(QueueItem{root_->bounds.MinDistance(q), -1, root_.get(), Poi{}});
  while (!queue.empty()) {
    QueueItem item = queue.top();
    queue.pop();
    if (item.node == nullptr) {
      result.push_back(PoiDistance{item.poi, item.distance});
      if (static_cast<int>(result.size()) == k) break;
      continue;
    }
    ++node_accesses_;
    if (item.node->leaf()) {
      for (const Poi& p : item.node->pois) {
        queue.push(QueueItem{geom::Distance(p.pos, q), p.id, nullptr, p});
      }
    } else {
      for (const auto& child : item.node->children) {
        queue.push(QueueItem{child->bounds.MinDistance(q), -1, child.get(),
                             Poi{}});
      }
    }
  }
  return result;
}

}  // namespace lbsq::spatial
