#include "spatial/poi.h"

#include <algorithm>

#include "geom/rect.h"

namespace lbsq::spatial {

std::vector<PoiDistance> BruteForceKnn(const std::vector<Poi>& pois,
                                       geom::Point q, int k) {
  std::vector<PoiDistance> all;
  BruteForceKnn(pois, q, k, &all);
  return all;
}

void BruteForceKnn(const std::vector<Poi>& pois, geom::Point q, int k,
                   std::vector<PoiDistance>* out) {
  out->clear();
  out->reserve(pois.size());
  for (const Poi& p : pois) {
    out->push_back(PoiDistance{p, geom::Distance(p.pos, q)});
  }
  const size_t take = std::min<size_t>(static_cast<size_t>(k), out->size());
  std::partial_sort(out->begin(), out->begin() + static_cast<long>(take),
                    out->end());
  out->resize(take);
}

std::vector<Poi> BruteForceWindow(const std::vector<Poi>& pois,
                                  const geom::Rect& window) {
  std::vector<Poi> result;
  for (const Poi& p : pois) {
    if (window.Contains(p.pos)) result.push_back(p);
  }
  std::sort(result.begin(), result.end(),
            [](const Poi& a, const Poi& b) { return a.id < b.id; });
  return result;
}

}  // namespace lbsq::spatial
